package repro

import (
	"context"

	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/sim"
	"repro/internal/vpred"
	"repro/internal/workload"
)

const goldenVPredPath = "testdata/golden_vpred.json"

// goldenVPredFile pins the selective value-prediction ablation at a fixed
// small budget, per (benchmark × predictor × selection) cell. Regenerate
// intentional changes with:
//
//	go test -run TestGoldenVPred -update .
type goldenVPredFile struct {
	Note   string                  `json:"note"`
	Params sim.VPredParams         `json:"params"`
	Stats  map[string]vpred.Result `json:"stats"` // "bench/predictor/all|sel" → result
}

func goldenVPredParams() sim.VPredParams {
	return sim.DefaultVPredParams(20_000)
}

func vpredCellName(bench, predictor string, selective bool) string {
	sel := "all"
	if selective {
		sel = "sel"
	}
	return fmt.Sprintf("%s/%s/%s", bench, predictor, sel)
}

func computeGoldenVPred(t *testing.T) goldenVPredFile {
	t.Helper()
	params := goldenVPredParams()
	g := goldenVPredFile{
		Note:   "regenerate with: go test -run TestGoldenVPred -update .",
		Params: params,
		Stats:  make(map[string]vpred.Result),
	}
	eng := &sim.Engine{}
	grid, err := eng.RunVPredGrid(context.Background(), workload.Names, sim.VPredPredictors, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range workload.Names {
		for _, p := range sim.VPredPredictors {
			for _, sel := range []bool{false, true} {
				st, ok := grid.Lookup(b, p, sel)
				if !ok {
					t.Fatalf("%s: missing cell", vpredCellName(b, p, sel))
				}
				g.Stats[vpredCellName(b, p, sel)] = st
			}
		}
	}
	return g
}

func TestGoldenVPred(t *testing.T) {
	got := computeGoldenVPred(t)

	if *updateGolden {
		writeGoldenFile(t, goldenVPredPath, got)
		return
	}

	raw, err := os.ReadFile(goldenVPredPath)
	if err != nil {
		t.Fatalf("%v (generate it with: go test -run TestGoldenVPred -update .)", err)
	}
	var want goldenVPredFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if want.Params != got.Params {
		t.Fatalf("golden config drifted: file %+v vs test %+v; -update after verifying",
			want.Params, got.Params)
	}
	for name, g := range got.Stats {
		w, ok := want.Stats[name]
		if !ok {
			t.Errorf("%s: missing from golden file; -update after verifying", name)
			continue
		}
		if g != w {
			t.Errorf("%s: stats drifted from golden corpus:\ngolden  %+v\ncurrent %+v\n"+
				"If this change is intentional, regenerate with: go test -run TestGoldenVPred -update .",
				name, w, g)
		}
	}
	for name := range want.Stats {
		if _, ok := got.Stats[name]; !ok {
			t.Errorf("golden file has unknown cell %q", name)
		}
	}
}

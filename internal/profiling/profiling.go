// Package profiling provides the shared -cpuprofile/-memprofile plumbing
// for the command-line drivers (cmd/experiments, cmd/arvisim), so hot-path
// work on the simulator can be profiled on exactly the workloads the paper
// runs. See README "Performance" for usage.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// StartCPU begins a CPU profile to path and returns the function that
// stops it and closes the file. The stop function is idempotent, so a
// driver can both defer it and call it from its fatal-exit path (os.Exit
// skips defers; an unstopped profile is a truncated, unusable file). An
// empty path is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			pprof.StopCPUProfile()
			// A close failure here means a possibly truncated profile;
			// stop() has no error return, so say so rather than hide it.
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		})
	}, nil
}

// Setup wires both profiles for a command-line driver: it starts the CPU
// profile and returns an idempotent flush that stops it and writes the
// heap profile, reporting flush errors to stderr under the given prefix.
// The driver should both defer the flush and call it from its fatal-exit
// helper (os.Exit skips defers). Empty paths are no-ops.
func Setup(cpuPath, memPath, prefix string) (flush func(), err error) {
	stop, err := StartCPU(cpuPath)
	if err != nil {
		return nil, err
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			stop()
			if err := WriteHeap(memPath); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", prefix, err)
			}
		})
	}, nil
}

// WriteHeap writes an allocation profile to path after a final GC (so the
// numbers reflect live steady-state memory, not collectable garbage). An
// empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	return f.Close()
}

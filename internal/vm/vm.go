// Package vm implements the architectural (functional) simulator for the
// ISA. It executes a program in program order and produces the dynamic
// instruction trace the timing core replays: one Event per retired
// instruction carrying operand/result values, memory addresses and branch
// outcomes. The VM is the oracle: the ARVI "perfect value" configuration and
// the load-back disambiguation checks read values from these events.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// pageBits selects the sparse-memory page size (4 KiB).
const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse byte-addressable memory backed by 4 KiB pages that are
// allocated on first touch.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty sparse memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr (0 for untouched memory).
func (m *Memory) LoadByte(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&(pageSize-1)]
	}
	return 0
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&(pageSize-1)] = b
}

// LoadWord returns the little-endian 8-byte word at addr. Words may straddle
// page boundaries.
func (m *Memory) LoadWord(addr uint64) int64 {
	if addr&(pageSize-1) <= pageSize-8 {
		if p := m.page(addr, false); p != nil {
			off := addr & (pageSize - 1)
			var u uint64
			for i := uint64(0); i < 8; i++ {
				u |= uint64(p[off+i]) << (8 * i)
			}
			return int64(u)
		}
		return 0
	}
	var u uint64
	for i := uint64(0); i < 8; i++ {
		u |= uint64(m.LoadByte(addr+i)) << (8 * i)
	}
	return int64(u)
}

// StoreWord stores v little-endian at addr.
func (m *Memory) StoreWord(addr uint64, v int64) {
	u := uint64(v)
	if addr&(pageSize-1) <= pageSize-8 {
		p := m.page(addr, true)
		off := addr & (pageSize - 1)
		for i := uint64(0); i < 8; i++ {
			p[off+i] = byte(u >> (8 * i))
		}
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.StoreByte(addr+i, byte(u>>(8*i)))
	}
}

// LoadImage copies data into memory starting at base.
func (m *Memory) LoadImage(base uint64, data []byte) {
	for i, b := range data {
		m.StoreByte(base+uint64(i), b)
	}
}

// Pages reports how many distinct pages have been touched.
func (m *Memory) Pages() int { return len(m.pages) }

// Event describes one dynamically executed (retired) instruction. It is the
// unit of the trace consumed by the timing core.
type Event struct {
	Seq    int64      // dynamic instruction number, starting at 0
	PC     int        // instruction index
	Inst   isa.Inst   // the decoded instruction
	NextPC int        // architectural next PC (fall-through or target)
	Taken  bool       // for conditional branches: outcome
	Addr   uint64     // effective address for loads/stores
	Val    int64      // result value written to Rd (loads: loaded value)
	Src    [2]int64   // source operand values read (by SrcRegs order)
	SrcReg [2]isa.Reg // which logical registers Src came from
	NSrc   int
}

// VM is the architectural simulator state.
type VM struct {
	Prog  *prog.Program
	Regs  [isa.NumRegs]int64
	Mem   *Memory
	PC    int
	Seq   int64
	Halt  bool
	fault error
}

// ErrHalted is returned by Step after the program executed HALT.
var ErrHalted = errors.New("vm: halted")

// New creates a VM with the program image loaded and the stack pointer
// initialised to prog.DefaultStackTop.
func New(p *prog.Program) *VM {
	v := &VM{Prog: p, Mem: NewMemory(), PC: p.Entry}
	v.Mem.LoadImage(p.DataBase, p.Data)
	v.Regs[isa.SP] = int64(prog.DefaultStackTop)
	return v
}

// Fault returns the sticky execution fault, if any (e.g. PC out of range).
func (v *VM) Fault() error { return v.fault }

func (v *VM) faultf(format string, args ...any) error {
	v.fault = fmt.Errorf("vm: pc=%d seq=%d: %s", v.PC, v.Seq, fmt.Sprintf(format, args...))
	return v.fault
}

// Step executes one instruction and fills ev with its trace record.
// It returns ErrHalted once the program has halted.
func (v *VM) Step(ev *Event) error {
	if v.Halt {
		return ErrHalted
	}
	if v.fault != nil {
		return v.fault
	}
	if v.PC < 0 || v.PC >= len(v.Prog.Text) {
		return v.faultf("pc outside text segment")
	}
	in := v.Prog.Text[v.PC]
	*ev = Event{Seq: v.Seq, PC: v.PC, Inst: in, NextPC: v.PC + 1}

	// Record source operands.
	var srcBuf [2]isa.Reg
	srcs := in.SrcRegs(srcBuf[:0])
	ev.NSrc = len(srcs)
	for k, r := range srcs {
		ev.SrcReg[k] = r
		ev.Src[k] = v.Regs[r]
	}

	r1, r2 := v.Regs[in.Rs1], v.Regs[in.Rs2]
	setRd := func(val int64) {
		ev.Val = val
		if in.Rd != isa.Zero {
			v.Regs[in.Rd] = val
		}
	}

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		setRd(r1 + r2)
	case isa.OpSub:
		setRd(r1 - r2)
	case isa.OpAnd:
		setRd(r1 & r2)
	case isa.OpOr:
		setRd(r1 | r2)
	case isa.OpXor:
		setRd(r1 ^ r2)
	case isa.OpSll:
		setRd(r1 << (uint64(r2) & 63))
	case isa.OpSrl:
		setRd(int64(uint64(r1) >> (uint64(r2) & 63)))
	case isa.OpSra:
		setRd(r1 >> (uint64(r2) & 63))
	case isa.OpSlt:
		setRd(b2i(r1 < r2))
	case isa.OpSltu:
		setRd(b2i(uint64(r1) < uint64(r2)))
	case isa.OpMul:
		setRd(r1 * r2)
	case isa.OpDiv:
		if r2 == 0 {
			setRd(0)
		} else if r1 == -1<<63 && r2 == -1 {
			setRd(r1)
		} else {
			setRd(r1 / r2)
		}
	case isa.OpRem:
		if r2 == 0 {
			setRd(r1)
		} else if r1 == -1<<63 && r2 == -1 {
			setRd(0)
		} else {
			setRd(r1 % r2)
		}
	case isa.OpAddi:
		setRd(r1 + in.Imm)
	case isa.OpAndi:
		setRd(r1 & in.Imm)
	case isa.OpOri:
		setRd(r1 | in.Imm)
	case isa.OpXori:
		setRd(r1 ^ in.Imm)
	case isa.OpSlti:
		setRd(b2i(r1 < in.Imm))
	case isa.OpSlli:
		setRd(r1 << (uint64(in.Imm) & 63))
	case isa.OpSrli:
		setRd(int64(uint64(r1) >> (uint64(in.Imm) & 63)))
	case isa.OpSrai:
		setRd(r1 >> (uint64(in.Imm) & 63))
	case isa.OpLi:
		setRd(in.Imm)
	case isa.OpLw:
		ev.Addr = uint64(r1 + in.Imm)
		setRd(v.Mem.LoadWord(ev.Addr))
	case isa.OpLb:
		ev.Addr = uint64(r1 + in.Imm)
		setRd(int64(int8(v.Mem.LoadByte(ev.Addr))))
	case isa.OpSw:
		ev.Addr = uint64(r1 + in.Imm)
		ev.Val = r2
		v.Mem.StoreWord(ev.Addr, r2)
	case isa.OpSb:
		ev.Addr = uint64(r1 + in.Imm)
		ev.Val = r2
		v.Mem.StoreByte(ev.Addr, byte(r2))
	case isa.OpBeq:
		ev.Taken = r1 == r2
	case isa.OpBne:
		ev.Taken = r1 != r2
	case isa.OpBlt:
		ev.Taken = r1 < r2
	case isa.OpBge:
		ev.Taken = r1 >= r2
	case isa.OpBltz:
		ev.Taken = r1 < 0
	case isa.OpBgez:
		ev.Taken = r1 >= 0
	case isa.OpJ:
		ev.NextPC = int(in.Imm)
	case isa.OpJal:
		setRd(int64(v.PC + 1))
		ev.NextPC = int(in.Imm)
	case isa.OpJr:
		ev.NextPC = int(r1)
	case isa.OpHalt:
		v.Halt = true
	default:
		return v.faultf("undefined opcode %v", in.Op)
	}

	if in.IsCondBranch() && ev.Taken {
		ev.NextPC = int(in.Imm)
	}
	if ev.NextPC < 0 || (ev.NextPC >= len(v.Prog.Text) && !v.Halt) {
		return v.faultf("control transfer to %d outside text", ev.NextPC)
	}
	v.PC = ev.NextPC
	v.Seq++
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes up to max instructions (or until halt/fault if max <= 0),
// invoking fn for each event when fn is non-nil. It returns the number of
// instructions retired.
func (v *VM) Run(max int64, fn func(*Event)) (int64, error) {
	var ev Event
	var n int64
	for max <= 0 || n < max {
		if err := v.Step(&ev); err != nil {
			if errors.Is(err, ErrHalted) {
				return n, nil
			}
			return n, err
		}
		n++
		if fn != nil {
			fn(&ev)
		}
		if v.Halt {
			return n, nil
		}
	}
	return n, nil
}

// Collect runs up to max instructions and returns the accumulated trace.
// Intended for tests and small examples; experiment runs stream events.
func Collect(p *prog.Program, max int64) ([]Event, error) {
	v := New(p)
	var out []Event
	_, err := v.Run(max, func(e *Event) {
		out = append(out, *e)
	})
	return out, err
}

package vm

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
)

func run(t *testing.T, src string, max int64) (*VM, []Event) {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	v := New(p)
	var evs []Event
	if _, err := v.Run(max, func(e *Event) { evs = append(evs, *e) }); err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, evs
}

func TestMemoryByteWord(t *testing.T) {
	m := NewMemory()
	if m.LoadByte(100) != 0 || m.LoadWord(100) != 0 {
		t.Error("untouched memory must read zero")
	}
	m.StoreWord(64, -2)
	if got := m.LoadWord(64); got != -2 {
		t.Errorf("word roundtrip = %d", got)
	}
	if got := m.LoadByte(64); got != 0xfe {
		t.Errorf("byte of word = %#x", got)
	}
	m.StoreByte(7, 0x80)
	if got := m.LoadByte(7); got != 0x80 {
		t.Errorf("byte roundtrip = %#x", got)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3)
	m.StoreWord(addr, 0x0102030405060708)
	if got := m.LoadWord(addr); got != 0x0102030405060708 {
		t.Errorf("straddling word = %#x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("pages = %d, want 2", m.Pages())
	}
}

func TestMemoryWordQuick(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v int64) bool {
		a := uint64(addr)
		m.StoreWord(a, v)
		return m.LoadWord(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	v, _ := run(t, `
main:
    li   r1, 7
    li   r2, 3
    add  r3, r1, r2
    sub  r4, r1, r2
    mul  r5, r1, r2
    div  r6, r1, r2
    rem  r7, r1, r2
    and  r8, r1, r2
    or   r9, r1, r2
    xor  r10, r1, r2
    slt  r11, r2, r1
    slt  r12, r1, r2
    sll  r13, r1, r2
    srl  r14, r13, r2
    halt
`, 0)
	want := map[isa.Reg]int64{
		3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4,
		11: 1, 12: 0, 13: 56, 14: 7,
	}
	for r, w := range want {
		if v.Regs[r] != w {
			t.Errorf("r%d = %d, want %d", r, v.Regs[r], w)
		}
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	v, _ := run(t, `
main:
    li  r1, 5
    li  r2, 0
    div r3, r1, r2      # /0 -> 0
    rem r4, r1, r2      # %0 -> dividend
    li  r5, -9223372036854775808
    li  r6, -1
    div r7, r5, r6      # overflow -> dividend
    rem r8, r5, r6      # -> 0
    halt
`, 0)
	if v.Regs[3] != 0 || v.Regs[4] != 5 {
		t.Errorf("div/rem by zero: r3=%d r4=%d", v.Regs[3], v.Regs[4])
	}
	if v.Regs[7] != -9223372036854775808 || v.Regs[8] != 0 {
		t.Errorf("overflow div: r7=%d r8=%d", v.Regs[7], v.Regs[8])
	}
}

func TestR0IsZero(t *testing.T) {
	v, _ := run(t, `
main:
    li   r0, 99
    addi r0, r0, 5
    add  r1, r0, r0
    halt
`, 0)
	if v.Regs[0] != 0 || v.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d, want 0, 0", v.Regs[0], v.Regs[1])
	}
}

func TestLoadsStores(t *testing.T) {
	v, _ := run(t, `
    .data
tab: .word 11, 22, 33
buf: .space 16
    .text
main:
    la  r1, tab
    lw  r2, 8(r1)       # 22
    la  r3, buf
    sw  r2, 0(r3)
    lw  r4, buf(r0)
    li  r5, -1
    sb  r5, 8(r3)
    lb  r6, 8(r3)       # sign-extended -1
    halt
`, 0)
	if v.Regs[2] != 22 || v.Regs[4] != 22 {
		t.Errorf("lw/sw: r2=%d r4=%d", v.Regs[2], v.Regs[4])
	}
	if v.Regs[6] != -1 {
		t.Errorf("lb sign extension: r6=%d", v.Regs[6])
	}
}

func TestBranchOutcomes(t *testing.T) {
	_, evs := run(t, `
main:
    li   r1, 2
loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    bltz r1, main       # not taken (r1 == 0)
    bgez r1, end        # taken
    nop
end:
    halt
`, 0)
	var outcomes []bool
	for _, e := range evs {
		if e.Inst.IsCondBranch() {
			outcomes = append(outcomes, e.Taken)
		}
	}
	want := []bool{true, false, false, true}
	if len(outcomes) != len(want) {
		t.Fatalf("branch count = %d, want %d (%v)", len(outcomes), len(want), outcomes)
	}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Errorf("branch %d taken = %v, want %v", i, outcomes[i], want[i])
		}
	}
}

func TestCallReturn(t *testing.T) {
	v, _ := run(t, `
main:
    li   r1, 5
    call double
    add  r3, r2, r0
    halt
double:
    add  r2, r1, r1
    ret
`, 0)
	if v.Regs[3] != 10 {
		t.Errorf("r3 = %d, want 10", v.Regs[3])
	}
}

func TestEventFields(t *testing.T) {
	_, evs := run(t, `
    .data
x: .word 42
    .text
main:
    lw  r1, x(r0)
    add r2, r1, r1
    beq r2, r0, main
    halt
`, 0)
	lw := evs[0]
	if !lw.Inst.IsLoad() || lw.Addr != prog.DefaultDataBase || lw.Val != 42 {
		t.Errorf("load event = %+v", lw)
	}
	add := evs[1]
	if add.Val != 84 || add.NSrc != 2 || add.Src[0] != 42 || add.Src[1] != 42 {
		t.Errorf("add event = %+v", add)
	}
	br := evs[2]
	if br.Taken || br.NextPC != 3 {
		t.Errorf("branch event = %+v", br)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Error("seq numbering wrong")
	}
}

func TestHalted(t *testing.T) {
	v, _ := run(t, "main:\n  halt\n", 0)
	var ev Event
	if err := v.Step(&ev); !errors.Is(err, ErrHalted) {
		t.Errorf("step after halt = %v, want ErrHalted", err)
	}
}

func TestMaxInstructions(t *testing.T) {
	p := asm.MustAssemble("loop", "main:\n  j main\n")
	v := New(p)
	n, err := v.Run(100, nil)
	if err != nil || n != 100 {
		t.Errorf("Run = %d, %v; want 100, nil", n, err)
	}
}

func TestJrFault(t *testing.T) {
	p := asm.MustAssemble("bad", "main:\n  li r1, 500\n  jr r1\n  halt")
	v := New(p)
	if _, err := v.Run(0, nil); err == nil {
		t.Error("expected fault on wild jr")
	}
	if v.Fault() == nil {
		t.Error("fault must be sticky")
	}
}

func TestCollect(t *testing.T) {
	p := asm.MustAssemble("c", "main:\n  li r1, 1\n  halt")
	evs, err := Collect(p, 0)
	if err != nil || len(evs) != 2 {
		t.Fatalf("Collect = %d events, %v", len(evs), err)
	}
}

// Property: a random straight-line arithmetic computation matches a Go
// reference evaluation of the same expression DAG.
func TestQuickArithmeticVsReference(t *testing.T) {
	f := func(a, b, c int64) bool {
		p := asm.MustAssemble("q", `
main:
    add r4, r1, r2
    xor r5, r4, r3
    sub r6, r5, r1
    mul r7, r6, r2
    halt
`)
		v := New(p)
		v.Regs[1], v.Regs[2], v.Regs[3] = a, b, c
		if _, err := v.Run(0, nil); err != nil {
			return false
		}
		r4 := a + b
		r5 := r4 ^ c
		r6 := r5 - a
		r7 := r6 * b
		return v.Regs[4] == r4 && v.Regs[5] == r5 && v.Regs[6] == r6 && v.Regs[7] == r7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: store then load round-trips through VM memory at random
// addresses within the data segment.
func TestQuickStoreLoadRoundTrip(t *testing.T) {
	p := asm.MustAssemble("q", `
    .data
buf: .space 4096
    .text
main:
    la r3, buf
    add r3, r3, r1
    sw r2, 0(r3)
    lw r4, 0(r3)
    halt
`)
	f := func(off uint16, val int64) bool {
		v := New(p)
		v.Regs[1] = int64(off % 4088)
		v.Regs[2] = val
		if _, err := v.Run(0, nil); err != nil {
			return false
		}
		return v.Regs[4] == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

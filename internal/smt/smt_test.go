package smt

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/prog"
)

// parallelProg: independent single-cycle work (a "fast" thread).
func parallelProg(t *testing.T, n int) *prog.Program {
	t.Helper()
	var b strings.Builder
	b.WriteString("main:\n  li r9, 0\n  li r8, " + itoa(n) + "\nloop:\n")
	for i := 0; i < 8; i++ {
		b.WriteString("  addi r" + itoa(11+i) + ", r0, 1\n")
	}
	b.WriteString("  addi r9, r9, 1\n  bne r9, r8, loop\n  halt\n")
	p, err := asm.Assemble("par", b.String())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// serialProg: one long dependence chain with loads (a "slow" thread).
func serialProg(t *testing.T, n int) *prog.Program {
	t.Helper()
	src := `
    .data
cell: .word 1
    .text
main:
  li r9, 0
  li r8, ` + itoa(n) + `
loop:
  lw  r1, cell(r0)
  add r2, r2, r1
  mul r2, r2, r1
  sw  r2, cell(r0)
  addi r9, r9, 1
  bne r9, r8, loop
  halt
`
	p, err := asm.Assemble("ser", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(nil, ICOUNT, DefaultConfig()); err == nil {
		t.Error("no threads accepted")
	}
	bad := DefaultConfig()
	bad.Window = 0
	if _, err := Run([]*prog.Program{parallelProg(t, 10)}, ICOUNT, bad); err == nil {
		t.Error("zero window accepted")
	}
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	p := parallelProg(t, 200)
	res, err := Run([]*prog.Program{p}, RoundRobin, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PerThread[0] == 0 || res.Throughput() <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	// All fetched instructions eventually retire.
	if res.TotalInsts != res.PerThread[0] {
		t.Errorf("totals disagree: %+v", res)
	}
}

func TestPoliciesAreDeterministic(t *testing.T) {
	progs := []*prog.Program{parallelProg(t, 300), serialProg(t, 300)}
	for _, pol := range []Policy{RoundRobin, ICOUNT, DepLength} {
		a, err := Run(progs, pol, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(progs, pol, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if a.Throughput() != b.Throughput() || a.Cycles != b.Cycles {
			t.Errorf("%v: nondeterministic", pol)
		}
	}
}

func TestSmartPoliciesBeatRoundRobinOnMixedThreads(t *testing.T) {
	// A fast parallel thread paired with a slow serial thread: both
	// ICOUNT and the dependence policy should outperform blind
	// round-robin in combined throughput over a fixed horizon.
	progs := []*prog.Program{parallelProg(t, 4000), serialProg(t, 4000)}
	cfg := DefaultConfig()
	cfg.MaxCycles = 3000

	through := map[Policy]float64{}
	for _, pol := range []Policy{RoundRobin, ICOUNT, DepLength} {
		res, err := Run(progs, pol, cfg)
		if err != nil {
			t.Fatal(err)
		}
		through[pol] = res.Throughput()
	}
	if through[ICOUNT] <= through[RoundRobin] {
		t.Errorf("icount (%.3f) must beat round-robin (%.3f)",
			through[ICOUNT], through[RoundRobin])
	}
	if through[DepLength] <= through[RoundRobin] {
		t.Errorf("dep-length (%.3f) must beat round-robin (%.3f)",
			through[DepLength], through[RoundRobin])
	}
}

// TestSharedWindowNeverExceeded pins the model's core resource contract:
// the combined in-flight occupancy of all threads never exceeds the shared
// window budget, under every policy, even when the budget is small enough
// that every cycle contends for it.
func TestSharedWindowNeverExceeded(t *testing.T) {
	progs := []*prog.Program{parallelProg(t, 800), serialProg(t, 800), parallelProg(t, 800)}
	for _, window := range []int{4, 7, 16} {
		cfg := DefaultConfig()
		cfg.Window = window
		cfg.MaxCycles = 5000
		for _, pol := range []Policy{RoundRobin, ICOUNT, DepLength} {
			res, err := Run(progs, pol, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.PeakWindow > window {
				t.Errorf("%v window=%d: peak occupancy %d exceeds shared window",
					pol, window, res.PeakWindow)
			}
			if res.PeakWindow == 0 {
				t.Errorf("%v window=%d: peak occupancy never observed", pol, window)
			}
		}
	}
}

// TestDepLengthAtLeastRoundRobin pins the paper's Section 3 ordering on a
// serial-vs-parallel mix: the dependence-length policy must achieve at
// least round-robin's combined throughput — a chain-aware fetch signal
// cannot do worse than blind alternation here.
func TestDepLengthAtLeastRoundRobin(t *testing.T) {
	progs := []*prog.Program{parallelProg(t, 4000), serialProg(t, 4000)}
	cfg := DefaultConfig()
	cfg.MaxCycles = 3000
	rr, err := Run(progs, RoundRobin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Run(progs, DepLength, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Throughput() < rr.Throughput() {
		t.Errorf("dep-length throughput %.3f below round-robin %.3f on a serial/parallel mix",
			dep.Throughput(), rr.Throughput())
	}
}

func TestDepLengthStarvationFree(t *testing.T) {
	// The dependence policy must still advance the serial thread.
	progs := []*prog.Program{parallelProg(t, 2000), serialProg(t, 500)}
	cfg := DefaultConfig()
	cfg.MaxCycles = 4000
	res, err := Run(progs, DepLength, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerThread[1] == 0 {
		t.Error("serial thread starved under dep-length policy")
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() == "" || ICOUNT.String() == "" || DepLength.String() == "" {
		t.Error("policy names missing")
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Error("unknown policy string")
	}
}

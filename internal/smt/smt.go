package smt

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/vm"
)

// Policy selects which thread fetches each cycle.
type Policy int

const (
	// RoundRobin alternates threads regardless of state.
	RoundRobin Policy = iota
	// ICOUNT picks the thread with the fewest in-flight instructions
	// (Tullsen's policy, cited by the paper).
	ICOUNT
	// DepLength picks the thread with the smallest average
	// dependence-chain length among its in-flight instructions, computed
	// from its private DDT (the paper's proposal).
	DepLength
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case ICOUNT:
		return "icount"
	case DepLength:
		return "dep-length"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config parameterises the SMT model.
type Config struct {
	FetchWidth int // instructions fetched per cycle from the chosen thread
	// Window is the *shared* in-flight window (ROB/issue-queue budget all
	// threads compete for). A thread with slow, serial instructions clogs
	// it — the phenomenon ICOUNT and the dependence policy manage.
	Window    int
	LoadLat   int // fixed load-to-use latency
	MaxCycles int64
}

// DefaultConfig returns a 4-wide, 64-entry-window model.
func DefaultConfig() Config {
	return Config{FetchWidth: 4, Window: 64, LoadLat: 6, MaxCycles: 200_000}
}

// Result summarises one SMT run.
type Result struct {
	Policy     Policy
	Cycles     int64
	PerThread  []int64 // retired instructions per thread
	TotalInsts int64
	// PeakWindow is the largest combined in-flight occupancy observed
	// across all threads; the shared-window invariant is
	// PeakWindow <= Config.Window.
	PeakWindow int
}

// Throughput is combined instructions per cycle.
func (r Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalInsts) / float64(r.Cycles)
}

type inflight struct {
	doneC     int64
	displaced core.PhysReg
	chainLen  int
}

type thread struct {
	machine  *vm.VM
	ddt      *core.DDT
	mapTable [isa.NumRegs]core.PhysReg
	freeList []core.PhysReg
	doneC    []int64 // per physical register
	window   []inflight
	chainBuf bitvec.Vec // reused per-instruction chain read (DDT.ChainInto)
	chainSum int64      // sum of chain lengths of in-flight instructions
	retired  int64
	halted   bool
}

func newThread(p *prog.Program, window int) (*thread, error) {
	physRegs := isa.NumRegs + window + 1
	ddt, err := core.NewDDT(core.Config{Entries: window, PhysRegs: physRegs})
	if err != nil {
		return nil, err
	}
	t := &thread{
		machine:  vm.New(p),
		ddt:      ddt,
		doneC:    make([]int64, physRegs),
		chainBuf: bitvec.New(window),
	}
	for i := 0; i < isa.NumRegs; i++ {
		t.mapTable[i] = core.PhysReg(i)
	}
	for i := isa.NumRegs; i < physRegs; i++ {
		t.freeList = append(t.freeList, core.PhysReg(i))
	}
	return t, nil
}

// avgChain is the thread's dependence metric: mean chain length over the
// in-flight window (0 for an empty window).
func (t *thread) avgChain() float64 {
	if len(t.window) == 0 {
		return 0
	}
	return float64(t.chainSum) / float64(len(t.window))
}

// retireReady drains completed instructions from the window head.
func (t *thread) retireReady(now int64) {
	for len(t.window) > 0 && t.window[0].doneC <= now {
		f := t.window[0]
		t.window = t.window[1:]
		t.chainSum -= int64(f.chainLen)
		if _, err := t.ddt.Commit(); err != nil {
			panic("smt: window desync: " + err.Error())
		}
		if f.displaced != core.NoPReg {
			t.freeList = append(t.freeList, f.displaced)
		}
		t.retired++
	}
}

// fetchOne renames and "executes" one instruction, returning false when the
// thread cannot fetch (halted or private DDT full).
func (t *thread) fetchOne(now int64, loadLat int) bool {
	if t.halted || len(t.window) >= cap0(t.ddt) {
		return false
	}
	var ev vm.Event
	if err := t.machine.Step(&ev); err != nil {
		t.halted = true
		return false
	}
	in := ev.Inst
	var srcBuf [2]isa.Reg
	srcs := in.SrcRegs(srcBuf[:0])
	ready := now
	var srcPregs [2]core.PhysReg
	n := 0
	for _, r := range srcs {
		p := t.mapTable[r]
		srcPregs[n] = p
		n++
		if t.doneC[p] > ready {
			ready = t.doneC[p]
		}
	}
	dest := core.NoPReg
	displaced := core.NoPReg
	if in.HasDest() {
		dest = t.freeList[0]
		t.freeList = t.freeList[1:]
		displaced = t.mapTable[in.Rd]
		t.mapTable[in.Rd] = dest
	}
	if _, err := t.ddt.Insert(dest, srcPregs[:n], in.IsLoad()); err != nil {
		panic("smt: DDT insert failed: " + err.Error())
	}
	lat := int64(in.ExecLatency())
	if in.IsLoad() {
		lat += int64(loadLat)
	}
	done := ready + lat
	if dest != core.NoPReg {
		t.doneC[dest] = done
		destReg := [1]core.PhysReg{dest}
		t.ddt.ChainInto(t.chainBuf, destReg[:])
		cl := t.chainBuf.Count()
		t.window = append(t.window, inflight{doneC: done, displaced: displaced, chainLen: cl})
		t.chainSum += int64(cl)
	} else {
		t.window = append(t.window, inflight{doneC: done, displaced: displaced})
	}
	if t.machine.Halt {
		t.halted = true
	}
	return true
}

func cap0(d *core.DDT) int { return d.Config().Entries }

// Run executes the programs as SMT threads under the policy until every
// thread halts or MaxCycles elapse.
func Run(progs []*prog.Program, policy Policy, cfg Config) (Result, error) {
	if len(progs) == 0 {
		return Result{}, fmt.Errorf("smt: no threads")
	}
	if cfg.FetchWidth <= 0 || cfg.Window <= 0 || cfg.MaxCycles <= 0 {
		return Result{}, fmt.Errorf("smt: non-positive config %+v", cfg)
	}
	threads := make([]*thread, len(progs))
	for i, p := range progs {
		t, err := newThread(p, cfg.Window)
		if err != nil {
			return Result{}, err
		}
		threads[i] = t
	}

	res := Result{Policy: policy, PerThread: make([]int64, len(threads))}
	rr := 0
	for cycle := int64(0); cycle < cfg.MaxCycles; cycle++ {
		allHalted := true
		shared := 0
		for _, t := range threads {
			t.retireReady(cycle)
			shared += len(t.window)
			if !t.halted || len(t.window) > 0 {
				allHalted = false
			}
		}
		if allHalted {
			res.Cycles = cycle
			break
		}
		pick := choose(threads, policy, &rr, cfg.Window-shared)
		if pick >= 0 {
			budget := cfg.Window - shared
			if budget > cfg.FetchWidth {
				budget = cfg.FetchWidth
			}
			for k := 0; k < budget; k++ {
				if !threads[pick].fetchOne(cycle, cfg.LoadLat) {
					break
				}
				shared++
			}
		}
		// Post-fetch occupancy is the cycle's true shared-window pressure.
		if shared > res.PeakWindow {
			res.PeakWindow = shared
		}
		res.Cycles = cycle + 1
	}
	for i, t := range threads {
		res.PerThread[i] = t.retired
		res.TotalInsts += t.retired
	}
	return res, nil
}

// choose applies the fetch policy; -1 means no thread can fetch.
func choose(threads []*thread, policy Policy, rr *int, sharedFree int) int {
	fetchable := func(t *thread) bool {
		return sharedFree > 0 && !t.halted && len(t.window) < cap0(t.ddt)
	}
	switch policy {
	case RoundRobin:
		for k := 0; k < len(threads); k++ {
			i := (*rr + k) % len(threads)
			if fetchable(threads[i]) {
				*rr = (i + 1) % len(threads)
				return i
			}
		}
		return -1
	case ICOUNT:
		best, bestN := -1, 1<<30
		for i, t := range threads {
			if fetchable(t) && len(t.window) < bestN {
				best, bestN = i, len(t.window)
			}
		}
		return best
	default: // DepLength
		best := -1
		bestM := 0.0
		for i, t := range threads {
			if !fetchable(t) {
				continue
			}
			m := t.avgChain()
			if best < 0 || m < bestM {
				best, bestM = i, m
			}
		}
		return best
	}
}

// Package smt implements the Section 3 SMT application: using per-thread
// dependence-chain information from per-thread DDTs as a fetch-priority
// signal, compared against Tullsen's ICOUNT policy and blind round-robin.
//
// The model is deliberately lean — the point under study is the fetch
// policy, not the memory system: N threads each run a program on a private
// functional VM; a shared front end fetches up to FetchWidth instructions
// per cycle from the single highest-priority thread (ICOUNT.1.W style).
// Instructions enter the thread's private window, become ready when their
// register sources complete (loads carry a fixed latency), and leave the
// window at completion. Each thread maintains a private DDT, and the
// dependence policy prioritises the thread whose in-flight instructions
// have the shortest average dependence chains — the paper's "more accurate
// measure of the likelihood of a particular thread making forward
// progress".
//
// Main entry points: Run executes one (programs × Policy × Config) cell
// and returns a Result (combined cycles, per-thread retired counts, peak
// shared-window occupancy); Policy enumerates RoundRobin, ICOUNT and
// DepLength; DefaultConfig is the study's 4-wide, 64-entry-window
// operating point. The experiment harness wraps this package as
// sim.SMTStudy (cells of `experiments -only smt` and the service's
// POST /v1/study/smt).
package smt

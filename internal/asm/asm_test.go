package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

func mustAsm(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAsm(t, `
# simple countdown
main:
    li   r1, 3
loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`)
	if len(p.Text) != 4 {
		t.Fatalf("text len = %d, want 4", len(p.Text))
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0", p.Entry)
	}
	if p.Text[0].Op != isa.OpLi || p.Text[0].Imm != 3 {
		t.Errorf("inst 0 = %v", p.Text[0])
	}
	if p.Text[2].Op != isa.OpBne || p.Text[2].Imm != 1 {
		t.Errorf("branch = %v, want target 1", p.Text[2])
	}
}

func TestForwardReference(t *testing.T) {
	p := mustAsm(t, `
main:
    beq r0, r0, done
    nop
done:
    halt
`)
	if p.Text[0].Imm != 2 {
		t.Errorf("forward branch target = %d, want 2", p.Text[0].Imm)
	}
}

func TestDataSegment(t *testing.T) {
	p := mustAsm(t, `
    .data
tab: .word 1, 2, -3
buf: .space 5
    .align 8
msg: .asciiz "ab"
b:   .byte 7, 0x10
    .text
main:
    la  r1, tab
    lw  r2, 8(r1)
    lw  r3, tab(r0)
    halt
`)
	if p.DataBase != prog.DefaultDataBase {
		t.Errorf("data base = %#x", p.DataBase)
	}
	// tab occupies 24 bytes, buf 5, aligned to 32, msg 3 bytes, b 2 bytes.
	if len(p.Data) != 24+5+3+3+2 {
		t.Errorf("data len = %d, want 37", len(p.Data))
	}
	if p.Data[8] != 2 {
		t.Errorf("word value wrong: %v", p.Data[:24])
	}
	// -3 little-endian
	if p.Data[16] != 0xfd || p.Data[23] != 0xff {
		t.Errorf("negative word encoding wrong: %v", p.Data[16:24])
	}
	if got := p.Symbols["msg"]; got != p.DataBase+32 {
		t.Errorf("msg = %#x, want %#x", got, p.DataBase+32)
	}
	if string(p.Data[32:34]) != "ab" || p.Data[34] != 0 {
		t.Errorf("asciiz wrong: %v", p.Data[32:35])
	}
	if p.Text[0].Op != isa.OpLi || p.Text[0].Imm != int64(p.DataBase) {
		t.Errorf("la = %v", p.Text[0])
	}
	if p.Text[2].Imm != int64(p.DataBase) {
		t.Errorf("label as offset = %v", p.Text[2])
	}
}

func TestPseudoOps(t *testing.T) {
	p := mustAsm(t, `
main:
    mv   r1, r2
    neg  r3, r4
    not  r5, r6
    beqz r1, main
    bnez r1, main
    ble  r1, r2, main
    bgt  r1, r2, main
    b    main
    call main
    ret
    push r7
    pop  r8
    halt
`)
	want := []struct {
		i  int
		op isa.Op
	}{
		{0, isa.OpAddi}, {1, isa.OpSub}, {2, isa.OpXori},
		{3, isa.OpBeq}, {4, isa.OpBne}, {5, isa.OpBge}, {6, isa.OpBlt},
		{7, isa.OpJ}, {8, isa.OpJal}, {9, isa.OpJr},
		{10, isa.OpAddi}, {11, isa.OpSw}, {12, isa.OpLw}, {13, isa.OpAddi},
	}
	for _, w := range want {
		if p.Text[w.i].Op != w.op {
			t.Errorf("inst %d = %v, want op %v", w.i, p.Text[w.i], w.op)
		}
	}
	// ble a,b -> bge b,a: operands swapped.
	if p.Text[5].Rs1 != 2 || p.Text[5].Rs2 != 1 {
		t.Errorf("ble swap wrong: %v", p.Text[5])
	}
}

func TestEntryDirective(t *testing.T) {
	p := mustAsm(t, `
    .entry start
pre:
    nop
start:
    halt
`)
	if p.Entry != 1 {
		t.Errorf("entry = %d, want 1", p.Entry)
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAsm(t, `
main:
    addi sp, sp, -16
    sw   ra, 0(sp)
    mv   fp, zero
    halt
`)
	if p.Text[0].Rd != isa.SP || p.Text[1].Rs2 != isa.RA || p.Text[2].Rd != isa.FP {
		t.Error("register aliases mis-parsed")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main:\n  frob r1\n  halt", "unknown mnemonic"},
		{"main:\n  add r1, r2\n  halt", "needs 3 operands"},
		{"main:\n  add r1, r2, r99\n  halt", "bad register"},
		{"main:\n  beq r1, r0, nowhere\n  halt", "undefined label"},
		{"main:\nmain:\n  halt", "duplicate label"},
		{".word 5\nmain:\n  halt", ".word outside .data"},
		{"main:\n  lw r1, r2\n  halt", "bad memory operand"},
		{".data\nx: .word zzz\n.text\nmain:\n halt", "bad .word"},
		{"main:\n  .oops\n  halt", "unknown directive"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil {
			t.Errorf("src %q: expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestBranchTargetValidation(t *testing.T) {
	// A numeric out-of-range target must be caught by Validate.
	_, err := Assemble("t", "main:\n  j 99\n  halt")
	if err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Errorf("out-of-range jump accepted: %v", err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	p := mustAsm(t, "main: halt # trailing\n   \n\t\n; full line comment\n")
	if len(p.Text) != 1 {
		t.Errorf("text len = %d, want 1", len(p.Text))
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bad", "main:\n  frob\n")
}

func TestStaticStats(t *testing.T) {
	p := mustAsm(t, `
    .data
v: .word 0
    .text
main:
    lw  r1, v(r0)
    sw  r1, v(r0)
    beq r1, r0, main
    j   main
`)
	s := p.StaticStats()
	if s.Loads != 1 || s.Stores != 1 || s.CondBranches != 1 || s.Jumps != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.DataBytes != 8 {
		t.Errorf("data bytes = %d", s.DataBytes)
	}
}

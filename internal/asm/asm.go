// Package asm implements a two-pass assembler for the simulator's ISA.
//
// Syntax overview (one statement per line, '#' and ';' start comments):
//
//	        .data                 # switch to data segment
//	tab:    .word 1, 2, 3         # 8-byte little-endian words
//	buf:    .space 64             # zeroed bytes
//	msg:    .asciiz "hi"          # NUL-terminated bytes
//	        .align 8              # pad data to an 8-byte boundary
//	        .text                 # switch to text segment (default)
//	main:   li   r1, 10
//	loop:   addi r1, r1, -1
//	        bne  r1, r0, loop
//	        halt
//
// Registers are written r0..r31 or by alias (zero, sp, fp, ra). Branch and
// jump targets are labels or absolute instruction indices. Memory operands
// use the offset(base) form; the offset may be a label (data address) or an
// integer. Pseudo-instructions: la (load address), mv, neg, not, b
// (unconditional branch), call, ret, ble/bgt (operand-swapped blt/bge),
// beqz/bnez, push/pop (sp-relative word).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Error describes an assembly failure with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

type fixup struct {
	instIdx int    // instruction needing patching
	label   string // referenced label
	line    int
	field   int // 0 = Imm
}

type assembler struct {
	name     string
	text     []isa.Inst
	data     []byte
	dataBase uint64
	sec      section
	labels   map[string]uint64 // text labels: inst index; data labels: absolute byte addr
	isText   map[string]bool
	fixups   []fixup
	entry    string
}

var regAliases = map[string]isa.Reg{
	"zero": isa.Zero, "sp": isa.SP, "fp": isa.FP, "ra": isa.RA,
}

// Assemble translates source into an executable program. name is used in
// diagnostics and stamped on the returned program.
func Assemble(name, src string) (*prog.Program, error) {
	a := &assembler{
		name:     name,
		dataBase: prog.DefaultDataBase,
		labels:   make(map[string]uint64),
		isText:   make(map[string]bool),
		entry:    "main",
	}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		if err := a.line(ln+1, raw); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	entry := 0
	if e, ok := a.labels[a.entry]; ok && a.isText[a.entry] {
		entry = int(e)
	}
	p := &prog.Program{
		Name:     name,
		Text:     a.text,
		Data:     a.data,
		DataBase: a.dataBase,
		Entry:    entry,
		Symbols:  a.labels,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble but panics on error; intended for compiled-in
// workload sources that are validated by tests.
func MustAssemble(name, src string) *prog.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, "#;"); i >= 0 {
		return s[:i]
	}
	return s
}

func (a *assembler) line(ln int, raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}
	// Labels (possibly several on one line).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		lbl := strings.TrimSpace(s[:i])
		if !isIdent(lbl) {
			break // a ':' inside an operand (none in this syntax, but be safe)
		}
		if _, dup := a.labels[lbl]; dup {
			return a.errf(ln, "duplicate label %q", lbl)
		}
		if a.sec == secText {
			a.labels[lbl] = uint64(len(a.text))
			a.isText[lbl] = true
		} else {
			a.labels[lbl] = a.dataBase + uint64(len(a.data))
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(ln, s)
	}
	return a.instruction(ln, s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (a *assembler) directive(ln int, s string) error {
	fields := strings.SplitN(s, " ", 2)
	dir := strings.TrimSpace(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".entry":
		if !isIdent(rest) {
			return a.errf(ln, ".entry needs a label, got %q", rest)
		}
		a.entry = rest
	case ".word":
		if a.sec != secData {
			return a.errf(ln, ".word outside .data")
		}
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseInt(f, 0, 64)
			if err != nil {
				return a.errf(ln, "bad .word value %q", f)
			}
			var b [8]byte
			putWord(b[:], v)
			a.data = append(a.data, b[:]...)
		}
	case ".byte":
		if a.sec != secData {
			return a.errf(ln, ".byte outside .data")
		}
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseInt(f, 0, 64)
			if err != nil {
				return a.errf(ln, "bad .byte value %q", f)
			}
			a.data = append(a.data, byte(v))
		}
	case ".space":
		if a.sec != secData {
			return a.errf(ln, ".space outside .data")
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return a.errf(ln, "bad .space size %q", rest)
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		if a.sec != secData {
			return a.errf(ln, ".align outside .data")
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 {
			return a.errf(ln, "bad .align %q", rest)
		}
		for len(a.data)%n != 0 {
			a.data = append(a.data, 0)
		}
	case ".asciiz":
		if a.sec != secData {
			return a.errf(ln, ".asciiz outside .data")
		}
		str, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf(ln, "bad .asciiz string %s", rest)
		}
		a.data = append(a.data, []byte(str)...)
		a.data = append(a.data, 0)
	default:
		return a.errf(ln, "unknown directive %q", dir)
	}
	return nil
}

func putWord(b []byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (a *assembler) reg(ln int, s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, a.errf(ln, "bad register %q", s)
}

// imm parses an integer immediate or records a label fixup for instruction
// index idx and returns 0 in that case.
func (a *assembler) imm(ln, idx int, s string) (int64, error) {
	s = strings.TrimSpace(s)
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if isIdent(s) {
		a.fixups = append(a.fixups, fixup{instIdx: idx, label: s, line: ln})
		return 0, nil
	}
	return 0, a.errf(ln, "bad immediate %q", s)
}

// memOperand parses "off(base)" where off may be an integer or a label.
func (a *assembler) memOperand(ln, idx int, s string) (isa.Reg, int64, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf(ln, "bad memory operand %q (want off(base))", s)
	}
	base, err := a.reg(ln, s[open+1:len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return base, 0, nil
	}
	off, err := a.imm(ln, idx, offStr)
	if err != nil {
		return 0, 0, err
	}
	return base, off, nil
}

func (a *assembler) emit(in isa.Inst) int {
	a.text = append(a.text, in)
	return len(a.text) - 1
}

func (a *assembler) instruction(ln int, s string) error {
	if a.sec != secText {
		return a.errf(ln, "instruction outside .text")
	}
	var mn, rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mn, rest = s[:i], strings.TrimSpace(s[i+1:])
	} else {
		mn = s
	}
	mn = strings.ToLower(mn)
	ops := splitOperands(rest)
	idx := len(a.text)

	need := func(n int) error {
		if len(ops) != n {
			return a.errf(ln, "%s needs %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}

	rrr := map[string]isa.Op{
		"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr,
		"xor": isa.OpXor, "sll": isa.OpSll, "srl": isa.OpSrl, "sra": isa.OpSra,
		"slt": isa.OpSlt, "sltu": isa.OpSltu, "mul": isa.OpMul,
		"div": isa.OpDiv, "rem": isa.OpRem,
	}
	rri := map[string]isa.Op{
		"addi": isa.OpAddi, "andi": isa.OpAndi, "ori": isa.OpOri,
		"xori": isa.OpXori, "slti": isa.OpSlti, "slli": isa.OpSlli,
		"srli": isa.OpSrli, "srai": isa.OpSrai,
	}
	branches2 := map[string]isa.Op{
		"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt, "bge": isa.OpBge,
	}
	branches1 := map[string]isa.Op{"bltz": isa.OpBltz, "bgez": isa.OpBgez}

	switch {
	case rrr[mn] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(ln, ops[1])
		if err != nil {
			return err
		}
		rs2, err := a.reg(ln, ops[2])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: rrr[mn], Rd: rd, Rs1: rs1, Rs2: rs2})
	case rri[mn] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(ln, ops[1])
		if err != nil {
			return err
		}
		imm, err := a.imm(ln, idx, ops[2])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: rri[mn], Rd: rd, Rs1: rs1, Imm: imm})
	case mn == "li" || mn == "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(ln, idx, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpLi, Rd: rd, Imm: imm})
	case mn == "mv":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ln, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rs})
	case mn == "neg":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ln, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpSub, Rd: rd, Rs1: isa.Zero, Rs2: rs})
	case mn == "not":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ln, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpXori, Rd: rd, Rs1: rs, Imm: -1})
	case mn == "lw" || mn == "lb":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		base, off, err := a.memOperand(ln, idx, ops[1])
		if err != nil {
			return err
		}
		op := isa.OpLw
		if mn == "lb" {
			op = isa.OpLb
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
	case mn == "sw" || mn == "sb":
		if err := need(2); err != nil {
			return err
		}
		rs2, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		base, off, err := a.memOperand(ln, idx, ops[1])
		if err != nil {
			return err
		}
		op := isa.OpSw
		if mn == "sb" {
			op = isa.OpSb
		}
		a.emit(isa.Inst{Op: op, Rs1: base, Rs2: rs2, Imm: off})
	case branches2[mn] != 0:
		if err := need(3); err != nil {
			return err
		}
		rs1, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		rs2, err := a.reg(ln, ops[1])
		if err != nil {
			return err
		}
		imm, err := a.imm(ln, idx, ops[2])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: branches2[mn], Rs1: rs1, Rs2: rs2, Imm: imm})
	case mn == "ble" || mn == "bgt": // swapped-operand forms
		if err := need(3); err != nil {
			return err
		}
		rs1, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		rs2, err := a.reg(ln, ops[1])
		if err != nil {
			return err
		}
		imm, err := a.imm(ln, idx, ops[2])
		if err != nil {
			return err
		}
		op := isa.OpBge // ble a,b == bge b,a
		if mn == "bgt" {
			op = isa.OpBlt // bgt a,b == blt b,a
		}
		a.emit(isa.Inst{Op: op, Rs1: rs2, Rs2: rs1, Imm: imm})
	case mn == "beqz" || mn == "bnez":
		if err := need(2); err != nil {
			return err
		}
		rs1, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(ln, idx, ops[1])
		if err != nil {
			return err
		}
		op := isa.OpBeq
		if mn == "bnez" {
			op = isa.OpBne
		}
		a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: isa.Zero, Imm: imm})
	case branches1[mn] != 0:
		if err := need(2); err != nil {
			return err
		}
		rs1, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(ln, idx, ops[1])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: branches1[mn], Rs1: rs1, Imm: imm})
	case mn == "j" || mn == "b":
		if err := need(1); err != nil {
			return err
		}
		imm, err := a.imm(ln, idx, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpJ, Imm: imm})
	case mn == "jal" || mn == "call":
		if err := need(1); err != nil {
			return err
		}
		imm, err := a.imm(ln, idx, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpJal, Rd: isa.RA, Imm: imm})
	case mn == "jr":
		if err := need(1); err != nil {
			return err
		}
		rs1, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpJr, Rs1: rs1})
	case mn == "ret":
		if err := need(0); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpJr, Rs1: isa.RA})
	case mn == "push":
		if err := need(1); err != nil {
			return err
		}
		rs, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: -8})
		a.emit(isa.Inst{Op: isa.OpSw, Rs1: isa.SP, Rs2: rs})
	case mn == "pop":
		if err := need(1); err != nil {
			return err
		}
		rd, err := a.reg(ln, ops[0])
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpLw, Rd: rd, Rs1: isa.SP})
		a.emit(isa.Inst{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: 8})
	case mn == "nop":
		a.emit(isa.Inst{Op: isa.OpNop})
	case mn == "halt":
		a.emit(isa.Inst{Op: isa.OpHalt})
	default:
		return a.errf(ln, "unknown mnemonic %q", mn)
	}
	return nil
}

func (a *assembler) resolve() error {
	for _, f := range a.fixups {
		v, ok := a.labels[f.label]
		if !ok {
			return a.errf(f.line, "undefined label %q", f.label)
		}
		a.text[f.instIdx].Imm = int64(v)
	}
	return nil
}

// Package shadow implements the arvivet analyzer that flags suspicious
// variable shadowing, standing in for the x/tools vet pass of the same
// name (the dependency-free toolchain policy rules out importing it).
//
// A declaration shadows when an inner scope redeclares a name that an
// outer scope of the same function also declares with the same type. That
// is only worth reporting when it can change behaviour: the outer
// variable must be referenced again after the inner scope closes —
// otherwise the inner declaration, however named, cannot have been
// intended to update it. This is the same "used after shadow scope"
// heuristic the stock pass applies.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the shadow pass.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "inner declarations must not shadow same-typed outer variables that are used afterwards",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue
			}
			checkShadow(pass, fd, id, obj)
		}
		return true
	})
}

// checkShadow reports obj (newly declared at id) if it shadows a
// same-typed function-local variable that is read again after obj's
// scope ends before being rewritten.
func checkShadow(pass *analysis.Pass, fd *ast.FuncDecl, id *ast.Ident, obj types.Object) {
	scope := obj.Parent()
	if scope == nil || scope.Parent() == nil {
		return
	}
	_, outer := scope.Parent().LookupParent(id.Name, id.Pos())
	ov, ok := outer.(*types.Var)
	if !ok || ov.IsField() {
		return
	}
	// Function-local outer variables only: package-level names are a
	// different (deliberate) pattern, and fields never shadow.
	if ov.Pos() <= fd.Pos() || ov.Pos() >= fd.End() {
		return
	}
	if !types.Identical(obj.Type(), ov.Type()) {
		return
	}
	// Behaviour can only diverge if the outer variable can be read after
	// control leaves the shadowing scope, before anything rewrites it —
	// a CFG-path-aware liveness question, so a read on a disjoint branch
	// below the scope no longer triggers a report.
	if !analysis.VarReadAfter(pass.Pkg.Info, fd.Body, ov, scope.Pos(), scope.End()) {
		return
	}
	pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s (outer variable is read after this scope)",
		id.Name, pass.World.Fset.Position(ov.Pos()))
}

// Package f exercises the shadow analyzer: an inner redeclaration is
// flagged only when the outer variable is read again after the shadowing
// scope closes while still holding its pre-shadow value.
package f

func liveShadow(xs []int) int {
	total := 0
	for _, x := range xs {
		total := total + x // want `declaration of "total" shadows declaration`
		_ = total
	}
	return total
}

func renamed(xs []int) int {
	total := 0
	for _, x := range xs {
		next := total + x
		total = next
	}
	return total
}

func deadOuter(xs []int) int {
	n := len(xs)
	if n > 0 {
		n := xs[0]
		return n
	}
	return -1
}

func rewrittenBeforeRead(xs []int) int {
	n := len(xs)
	if n > 0 {
		n := xs[0]
		_ = n
	}
	n = 7
	return n
}

func differentType(xs []int) int {
	n := len(xs)
	if n > 0 {
		n := "inner"
		_ = n
	}
	return n
}

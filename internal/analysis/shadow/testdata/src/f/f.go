// Package f exercises the shadow analyzer: an inner redeclaration is
// flagged only when the outer variable is read again after the shadowing
// scope closes while still holding its pre-shadow value.
package f

func liveShadow(xs []int) int {
	total := 0
	for _, x := range xs {
		total := total + x // want `declaration of "total" shadows declaration`
		_ = total
	}
	return total
}

func renamed(xs []int) int {
	total := 0
	for _, x := range xs {
		next := total + x
		total = next
	}
	return total
}

func deadOuter(xs []int) int {
	n := len(xs)
	if n > 0 {
		n := xs[0]
		return n
	}
	return -1
}

func rewrittenBeforeRead(xs []int) int {
	n := len(xs)
	if n > 0 {
		n := xs[0]
		_ = n
	}
	n = 7
	return n
}

func differentType(xs []int) int {
	n := len(xs)
	if n > 0 {
		n := "inner"
		_ = n
	}
	return n
}

// disjointBranch is the false-positive class the CFG liveness upgrade
// kills: the outer read sits below the shadowing scope in source order
// but on a branch control can never reach from it.
func disjointBranch(xs []int, flip bool) int {
	n := len(xs)
	if flip {
		n := xs[0]
		return n
	} else {
		return n
	}
}

// redeclaredOnBackEdge must NOT be flagged: the back-edge does reach a
// read of the outer ok, but the short declaration at the loop head
// rewrites it first, so the shadowed value can never be observed.
func redeclaredOnBackEdge(xs []any) int {
	total := 0
	for _, x := range xs {
		n, ok := x.(int)
		if !ok {
			continue
		}
		if n > 0 {
			ok := n > 1
			_ = ok
		}
		total += n
	}
	return total
}

// loopCarried is the dual: the only outer read is *above* the scope in
// source order, but a loop back-edge carries the stale value to it, so
// the shadow is live and must still be reported.
func loopCarried(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		_ = total
		if xs[i] > 0 {
			total := xs[i] // want `declaration of "total" shadows declaration`
			_ = total
		}
	}
	return 0
}

package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// set is the hand-built lattice used by every test here: a set of names,
// with join either intersection (must-facts) or union (may-facts).
type set map[string]bool

func (s set) String() string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

func cloneSet(s set) set {
	c := make(set, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func equalSet(a, b set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func intersect(dst, src set) set {
	for k := range dst {
		if !src[k] {
			delete(dst, k)
		}
	}
	return dst
}

func union(dst, src set) set {
	for k := range src {
		dst[k] = true
	}
	return dst
}

func buildGraph(t *testing.T, body string) (*cfg.Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f(cond bool) {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return cfg.Build("f", fd.Body), fset
}

func blockWithNode(t *testing.T, g *cfg.Graph, fset *token.FileSet, text string) *cfg.Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			var sb strings.Builder
			ast.Fprint(&sb, fset, n, nil)
			if strings.Contains(sb.String(), `"`+text+`"`) {
				return b
			}
		}
	}
	t.Fatalf("no block contains %q", text)
	return nil
}

// TestForwardDefiniteAssignment runs a must-analysis (join = intersection):
// a name is a fact iff every path to the point assigns it. The diamond
// assigns x on both arms but y on one, so after the join only x survives.
func TestForwardDefiniteAssignment(t *testing.T) {
	g, fset := buildGraph(t, `
	if cond {
		x := 1
		y := x
		_ = y
	} else {
		x := 2
		_ = x
	}
	after()
`)
	spec := dataflow.Spec[set]{
		Forward:  true,
		Boundary: func() set { return set{} },
		Transfer: func(n ast.Node, f set) set {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						f[id.Name] = true
					}
				}
			}
			return f
		},
		Join:  intersect,
		Clone: cloneSet,
		Equal: equalSet,
	}
	r := dataflow.Solve(g, spec)
	join := blockWithNode(t, g, fset, "after")
	if got := r.In[join.Index].String(); got != "x" {
		t.Errorf("definitely-assigned at join = %q, want %q", got, "x")
	}
}

// TestBackwardLiveness runs a may-analysis (join = union) with a loop
// back-edge: u is read inside the loop body, so it must be live at the
// loop head even though the only read is "after" the head in block order.
func TestBackwardLiveness(t *testing.T) {
	g, fset := buildGraph(t, `
	u := 1
	v := 2
	for cond {
		use(u)
	}
	done()
	_ = v
`)
	spec := dataflow.Spec[set]{
		Forward:  false,
		Boundary: func() set { return set{} },
		Transfer: func(n ast.Node, f set) set {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						delete(f, id.Name)
					}
				}
			case *ast.ExprStmt:
				ast.Inspect(n, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && (id.Name == "u" || id.Name == "v") {
						f[id.Name] = true
					}
					return true
				})
			}
			return f
		},
		Join:  union,
		Clone: cloneSet,
		Equal: equalSet,
	}
	r := dataflow.Solve(g, spec)
	var head *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	if got := r.In[head.Index].String(); got != "u" {
		t.Errorf("live-in at loop head = %q, want %q (u flows around the back-edge)", got, "u")
	}
	done := blockWithNode(t, g, fset, "done")
	if r.In[done.Index]["u"] {
		t.Errorf("u live at done(); it is dead after the loop")
	}
}

// TestBranchRefinement checks the per-edge hook: Branch sees succ index 0
// on the true edge and 1 on the false edge of a cond block.
func TestBranchRefinement(t *testing.T) {
	g, fset := buildGraph(t, `
	if cond {
		then()
	} else {
		other()
	}
`)
	spec := dataflow.Spec[set]{
		Forward:  true,
		Boundary: func() set { return set{} },
		Transfer: func(n ast.Node, f set) set { return f },
		Branch: func(b *cfg.Block, f set, succ int) set {
			if succ == 0 {
				f["cond-true"] = true
			} else {
				f["cond-false"] = true
			}
			return f
		},
		Join:  intersect,
		Clone: cloneSet,
		Equal: equalSet,
	}
	r := dataflow.Solve(g, spec)
	then := blockWithNode(t, g, fset, "then")
	other := blockWithNode(t, g, fset, "other")
	if got := r.In[then.Index].String(); got != "cond-true" {
		t.Errorf("then-branch fact = %q, want cond-true", got)
	}
	if got := r.In[other.Index].String(); got != "cond-false" {
		t.Errorf("else-branch fact = %q, want cond-false", got)
	}
}

// TestUnreachedBlocks: code after return must be flagged unreached and
// keep zero-value facts.
func TestUnreachedBlocks(t *testing.T) {
	g, fset := buildGraph(t, `
	live()
	return
dead:
	deadCode()
	goto dead
`)
	spec := dataflow.Spec[set]{
		Forward:  true,
		Boundary: func() set { return set{"seed": true} },
		Transfer: func(n ast.Node, f set) set { return f },
		Join:     intersect,
		Clone:    cloneSet,
		Equal:    equalSet,
	}
	r := dataflow.Solve(g, spec)
	live := blockWithNode(t, g, fset, "live")
	if !r.Reached[live.Index] || !r.In[live.Index]["seed"] {
		t.Errorf("live block not reached with boundary fact")
	}
	dead := blockWithNode(t, g, fset, "deadCode")
	if r.Reached[dead.Index] {
		t.Errorf("block after return marked reached")
	}
	if r.In[dead.Index] != nil {
		t.Errorf("unreached block has non-zero fact %v", r.In[dead.Index])
	}
}

// Package dataflow is a generic worklist solver for intra-function
// dataflow problems over the CFGs built by internal/analysis/cfg.
//
// A client describes its problem as a Spec: a join-semilattice of facts F
// with a per-node transfer function. The solver iterates to a fixpoint and
// returns the fact at entry and exit of every reached block. Facts of
// unreached blocks are left as zero values and flagged in Result.Reached —
// analyzers must not report from them.
//
// The solver is deterministic: blocks are swept in index order (reverse
// order for backward problems) until a full sweep changes nothing, so two
// runs over the same graph always produce identical Results.
package dataflow

import (
	"go/ast"

	"repro/internal/analysis/cfg"
)

// Spec describes one dataflow problem over fact type F.
//
// F must form a join-semilattice under Join, with Equal as its equality.
// The solver treats facts as values it owns: Transfer and Branch receive
// clones and may mutate them freely.
type Spec[F any] struct {
	// Forward selects the direction. Forward problems seed the entry
	// block with Boundary and propagate along successor edges; backward
	// problems seed every successor-less block and propagate along
	// predecessor edges.
	Forward bool

	// Boundary returns the fact at the boundary (function entry for
	// forward problems, each exit for backward problems).
	Boundary func() F

	// Transfer applies one node's effect to a fact and returns the
	// result. It may mutate its argument and return it.
	Transfer func(n ast.Node, f F) F

	// Branch, if non-nil, refines the fact flowing along one successor
	// edge of a block — succ is the index into b.Succs (for cond blocks,
	// 0 is the true edge and 1 the false edge; for range headers, 0 is
	// the iterate edge and 1 the done edge). It receives a clone of the
	// block's out fact and may mutate it. Ignored for backward problems.
	Branch func(b *cfg.Block, f F, succ int) F

	// Join merges src into dst and returns the result; it may mutate
	// dst. Join must be an upper bound: information true in only one
	// input must not survive.
	Join func(dst, src F) F

	// Clone returns an independent copy of f.
	Clone func(f F) F

	// Equal reports whether two facts carry the same information; the
	// solver stops when a sweep leaves every fact Equal to its prior
	// value.
	Equal func(a, b F) bool
}

// Result holds the fixpoint. In[i] and Out[i] are the facts at entry and
// exit of block i, in execution order — for backward problems In[i] is
// still the fact before the block's first node and Out[i] the fact after
// its last, i.e. information flows from Out to In.
type Result[F any] struct {
	In, Out []F
	Reached []bool
}

// Solve runs spec over g to a fixpoint.
func Solve[F any](g *cfg.Graph, spec Spec[F]) *Result[F] {
	n := len(g.Blocks)
	r := &Result[F]{In: make([]F, n), Out: make([]F, n), Reached: make([]bool, n)}
	if n == 0 {
		return r
	}
	var mark func(b *cfg.Block)
	mark = func(b *cfg.Block) {
		if r.Reached[b.Index] {
			return
		}
		r.Reached[b.Index] = true
		for _, s := range b.Succs {
			mark(s)
		}
	}
	mark(g.Blocks[0])
	if spec.Forward {
		solveForward(g, spec, r)
	} else {
		solveBackward(g, spec, r)
	}
	return r
}

func solveForward[F any](g *cfg.Graph, spec Spec[F], r *Result[F]) {
	init := make([]bool, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			i := b.Index
			if !r.Reached[i] {
				continue
			}
			var in F
			seeded := false
			if i == g.Blocks[0].Index {
				in = spec.Boundary()
				seeded = true
			}
			for _, p := range b.Preds {
				if !r.Reached[p.Index] || !init[p.Index] {
					continue
				}
				// A pred can have several edges to b (e.g. a cond whose
				// branches converge); each edge contributes separately
				// because Branch refines per edge.
				for si, s := range p.Succs {
					if s != b {
						continue
					}
					ev := spec.Clone(r.Out[p.Index])
					if spec.Branch != nil {
						ev = spec.Branch(p, ev, si)
					}
					if !seeded {
						in, seeded = ev, true
					} else {
						in = spec.Join(in, ev)
					}
				}
			}
			if !seeded {
				continue // no initialized pred yet; a later sweep feeds it
			}
			out := spec.Clone(in)
			for _, nd := range b.Nodes {
				out = spec.Transfer(nd, out)
			}
			if !init[i] || !spec.Equal(r.In[i], in) || !spec.Equal(r.Out[i], out) {
				changed = true
			}
			r.In[i], r.Out[i], init[i] = in, out, true
		}
	}
}

func solveBackward[F any](g *cfg.Graph, spec Spec[F], r *Result[F]) {
	init := make([]bool, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for bi := len(g.Blocks) - 1; bi >= 0; bi-- {
			b := g.Blocks[bi]
			i := b.Index
			if !r.Reached[i] {
				continue
			}
			var out F
			seeded := false
			if len(b.Succs) == 0 {
				out = spec.Boundary()
				seeded = true
			}
			for _, s := range b.Succs {
				if !init[s.Index] {
					continue
				}
				ev := spec.Clone(r.In[s.Index])
				if !seeded {
					out, seeded = ev, true
				} else {
					out = spec.Join(out, ev)
				}
			}
			if !seeded {
				continue
			}
			in := spec.Clone(out)
			for ni := len(b.Nodes) - 1; ni >= 0; ni-- {
				in = spec.Transfer(b.Nodes[ni], in)
			}
			if !init[i] || !spec.Equal(r.In[i], in) || !spec.Equal(r.Out[i], out) {
				changed = true
			}
			r.In[i], r.Out[i], init[i] = in, out, true
		}
	}
}

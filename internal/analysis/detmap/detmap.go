// Package detmap implements the arvivet analyzer that keeps map iteration
// order out of the repository's output bytes.
//
// The cache keys, golden corpora and service responses are all promised
// byte-identical across runs; Go map iteration order is deliberately
// randomized. detmap therefore flags any `range` over a map whose body
// writes somewhere ordered output could leak: an encoder (json/csv/gob),
// a hash, a strings.Builder or bytes.Buffer, an io.Writer, an HTTP
// response, or fmt printing. The fix is the standard idiom — collect the
// keys, sort them, range over the sorted slice (which detmap no longer
// sees as a map range). If iteration order provably cannot reach output,
// say why on the line: //arvi:unordered <why>.
//
// The sink test is one level deep by design: it looks at calls made
// textually inside the range body, identified by package (fmt, encoding/*)
// or by method name (Write*, Encode, Sum, Fprint*). Order dependence
// laundered through a helper function is caught by the nondet analyzer's
// call-path walk on the deterministic tiers instead.
package detmap

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the detmap pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "map ranges feeding encoders, hashes, writers or responses must iterate sorted keys",
	Run:  run,
}

// sinkPackages are stdlib packages whose calls emit or encode bytes.
var sinkPackages = map[string]bool{
	"fmt":           true,
	"encoding/json": true,
	"encoding/csv":  true,
	"encoding/gob":  true,
}

// sinkMethods are method names that emit bytes on any plausible receiver
// (io.Writer, strings.Builder, bytes.Buffer, hash.Hash, http.ResponseWriter,
// json.Encoder, csv.Writer).
var sinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"WriteAll":    true,
	"Sum":         true,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			sink := findSink(info, rs.Body)
			if sink == nil {
				return true
			}
			if d, ok := pass.World.LineDirective(rs.Pos(), "unordered"); ok {
				if d.Arg == "" {
					pass.Reportf(rs.Pos(), "//arvi:unordered needs a justification")
				}
				return true
			}
			pass.Reportf(rs.Pos(), "map range feeds %s; iterate sorted keys (or justify with //arvi:unordered <why>)", sink.desc)
			return true
		})
	}
	return nil
}

type sinkUse struct{ desc string }

// findSink returns the first output sink called inside the range body.
func findSink(info *types.Info, body *ast.BlockStmt) *sinkUse {
	var found *sinkUse
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Method call: sink-named methods on any receiver.
		if s, ok := info.Selections[sel]; ok {
			if s.Kind() == types.MethodVal && sinkMethods[sel.Sel.Name] {
				found = &sinkUse{desc: methodDesc(s)}
			}
			return true
		}
		// Package-qualified call: sink packages.
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if pkg := fn.Pkg(); pkg != nil && sinkPackages[pkg.Path()] {
				found = &sinkUse{desc: pkg.Name() + "." + fn.Name()}
			}
		}
		return true
	})
	return found
}

func methodDesc(s *types.Selection) string {
	recv := s.Recv().String()
	if i := strings.LastIndexByte(recv, '/'); i >= 0 {
		recv = recv[i+1:]
	}
	return recv + "." + s.Obj().Name()
}

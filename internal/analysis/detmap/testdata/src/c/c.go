// Package c exercises the detmap analyzer: map ranges that feed output
// sinks are flagged, the sort-the-keys idiom and justified unordered
// ranges are not.
package c

import (
	"fmt"
	"sort"
	"strings"
)

func emit(m map[string]int, b *strings.Builder) int {
	for k, v := range m { // want `map range feeds fmt.Println`
		fmt.Println(k, v)
	}
	for k := range m { // want `map range feeds .strings.Builder.WriteString`
		b.WriteString(k)
	}
	total := 0
	for _, v := range m {
		total += v
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
	//arvi:unordered every iteration writes the same single byte
	for range m {
		b.WriteByte('.')
	}
	//arvi:unordered
	for k := range m { // want `needs a justification`
		fmt.Println(k)
	}
	return total
}

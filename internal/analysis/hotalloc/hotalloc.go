// Package hotalloc implements the arvivet analyzer that keeps
// //arvi:hotpath functions allocation-free.
//
// The simulator's per-instruction kernel (DDT insert, bitvec kernels, the
// cpu engine step, the predictors) promises zero allocations per
// instruction; PR 4 proved it with runtime AllocsPerRun guards. hotalloc
// turns that promise into a build-time contract: inside an annotated
// function every allocation-inducing construct is a diagnostic —
// make/new, slice and map literals, address-taken composite literals,
// append to anything but a caller-supplied parameter or an //arvi:scratch
// buffer, closures, go/defer, channel operations, map writes, string
// concatenation and string<->[]byte conversions, conversions to interface
// types, and panic (which boxes its argument).
//
// Calls from hot code must stay on the hot path: a static call is legal
// only if the callee is itself //arvi:hotpath, a builtin, or in a small
// allowlisted set of leaf stdlib packages (math, math/bits). Indirect
// calls (func values, interface methods) defeat the analysis and require
// an //arvi:dyncall justification on the call line. Error and panic
// branches that are provably off the per-instruction path are exempted by
// an //arvi:cold directive on the enclosing statement.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//arvi:hotpath functions must not allocate and may only call hot or allowlisted code",
	Run:  run,
}

// stdlibAllowed are out-of-module packages hot code may call freely:
// allocation-free leaf math kernels.
var stdlibAllowed = map[string]bool{
	"math":      true,
	"math/bits": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !pass.World.Hotpath[fn] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc walks one hotpath function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{
		pass:   pass,
		info:   pass.Pkg.Info,
		params: paramObjects(pass.Pkg.Info, fd),
		cold:   coldRanges(pass, fd.Body),
	}
	ast.Inspect(fd.Body, c.visit)
}

type checker struct {
	pass   *analysis.Pass
	info   *types.Info
	params map[types.Object]bool
	cold   []posRange
}

type posRange struct{ lo, hi token.Pos }

// coldRanges collects the spans of statements annotated //arvi:cold
// (error and panic branches off the per-instruction path).
func coldRanges(pass *analysis.Pass, body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if _, ok := pass.World.LineDirective(stmt.Pos(), "cold"); ok {
			out = append(out, posRange{stmt.Pos(), stmt.End()})
			return false
		}
		return true
	})
	return out
}

func (c *checker) inCold(pos token.Pos) bool {
	for _, r := range c.cold {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.inCold(pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		c.reportf(n.Pos(), "closure in hot path (allocates; hoist or pass state explicitly)")
		return false // the literal's body is not on this hot path
	case *ast.GoStmt:
		c.reportf(n.Pos(), "go statement in hot path")
	case *ast.DeferStmt:
		c.reportf(n.Pos(), "defer in hot path")
	case *ast.SendStmt:
		c.reportf(n.Pos(), "channel send in hot path")
	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			c.reportf(n.Pos(), "channel receive in hot path")
		case token.AND:
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				c.reportf(n.Pos(), "address-taken composite literal in hot path (heap-allocates)")
			}
		}
	case *ast.CompositeLit:
		switch c.info.TypeOf(n).Underlying().(type) {
		case *types.Slice:
			c.reportf(n.Pos(), "slice literal in hot path (allocates)")
		case *types.Map:
			c.reportf(n.Pos(), "map literal in hot path (allocates)")
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(c.info.TypeOf(n)) {
			c.reportf(n.Pos(), "string concatenation in hot path (allocates)")
		}
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if _, isMap := c.info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
					c.reportf(ix.Pos(), "map write in hot path (may grow and allocate)")
				}
			}
		}
	case *ast.CallExpr:
		c.checkCall(n)
	}
	return true
}

// checkCall classifies one call in hot code: builtin, conversion, static
// call (must be hot or allowlisted) or indirect call (needs //arvi:dyncall).
func (c *checker) checkCall(call *ast.CallExpr) {
	// Conversions.
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			c.checkBuiltin(call, b.Name())
			return
		}
	}
	if fn := analysis.StaticCallee(c.info, call); fn != nil {
		c.checkStaticCall(call, fn)
		return
	}
	// Indirect: a func value or interface method. The analysis cannot see
	// the target, so the call must carry a justified //arvi:dyncall.
	if d, ok := c.pass.World.LineDirective(call.Pos(), "dyncall"); ok {
		if d.Arg == "" {
			c.reportf(call.Pos(), "//arvi:dyncall needs a justification")
		}
		return
	}
	c.reportf(call.Pos(), "indirect call in hot path (unanalyzable; annotate //arvi:dyncall <why> if the target is hot)")
}

func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	from := c.info.TypeOf(call.Args[0])
	switch {
	case isString(to) && !isString(from) && !isUntypedOrNumeric(from):
		c.reportf(call.Pos(), "conversion to string in hot path (allocates)")
	case isByteOrRuneSlice(to) && isString(from):
		c.reportf(call.Pos(), "string-to-slice conversion in hot path (allocates)")
	case types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()):
		c.reportf(call.Pos(), "conversion to interface in hot path (boxes the value)")
	}
}

func (c *checker) checkBuiltin(call *ast.CallExpr, name string) {
	switch name {
	case "make":
		c.reportf(call.Pos(), "make in hot path (allocates)")
	case "new":
		c.reportf(call.Pos(), "new in hot path (allocates)")
	case "panic":
		c.reportf(call.Pos(), "panic in hot path (boxes its argument; mark the branch //arvi:cold if unreachable per instruction)")
	case "append":
		c.checkAppend(call)
	}
	// len, cap, copy, clear, delete, min, max and friends do not allocate.
}

// checkAppend allows appends only into caller-supplied parameters (the
// caller owns the capacity) or //arvi:scratch buffers (pre-sized at
// construction); anything else can grow on the per-instruction path.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		obj := c.info.Uses[dst]
		if c.params[obj] || c.pass.World.Scratch[obj] {
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[dst]; ok && c.pass.World.Scratch[sel.Obj()] {
			return
		}
	}
	c.reportf(call.Pos(), "append to non-scratch destination in hot path (may grow and allocate; mark the buffer //arvi:scratch if pre-sized)")
}

func (c *checker) checkStaticCall(call *ast.CallExpr, fn *types.Func) {
	w := c.pass.World
	if w.Hotpath[fn] {
		return
	}
	if _, inModule := w.Decls[fn]; inModule {
		c.reportf(call.Pos(), "call to non-hotpath function %s (annotate it //arvi:hotpath or move the call to an //arvi:cold branch)", fn.FullName())
		return
	}
	pkg := fn.Pkg()
	if pkg != nil && stdlibAllowed[pkg.Path()] {
		return
	}
	c.reportf(call.Pos(), "call to non-allowlisted function %s in hot path", fn.FullName())
}

func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedOrNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsNumeric|types.IsUntyped) != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

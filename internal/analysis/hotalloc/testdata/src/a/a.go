// Package a exercises the hotalloc analyzer: every construct that can
// allocate on the per-instruction path is flagged, the sanctioned escape
// hatches (scratch buffers, caller-supplied capacity, cold branches,
// justified dynamic calls) are not.
package a

import (
	"math/bits"
	"strings"
)

type ring struct {
	// buf is pre-sized at construction.
	//arvi:scratch
	buf []int
	out []int
	m   map[int]int
}

// helper is on the hot path with step.
//
//arvi:hotpath
func helper(x int) int { return bits.OnesCount(uint(x)) }

func coldHelper() int { return 0 }

//arvi:hotpath
func step(r *ring, dst []int, s string, raw []byte, ch chan int, fn func()) {
	r.buf = append(r.buf, 1)
	dst = append(dst, 2)
	_ = dst
	r.out = append(r.out, 3) // want `append to non-scratch destination`
	_ = helper(4)
	_ = len(r.buf)
	_ = make([]int, 4) // want `make in hot path`
	_ = new(int)       // want `new in hot path`
	_ = []int{1, 2}    // want `slice literal in hot path`
	_ = map[int]int{}  // want `map literal in hot path`
	p := &ring{}       // want `address-taken composite literal`
	_ = p
	_ = ring{}
	_ = s + "x"            // want `string concatenation in hot path`
	_ = []byte(s)          // want `string-to-slice conversion in hot path`
	_ = string(raw)        // want `conversion to string in hot path`
	_ = any(r)             // want `conversion to interface in hot path`
	r.m[1] = 2             // want `map write in hot path`
	_ = coldHelper()       // want `call to non-hotpath function`
	_ = strings.ToUpper(s) // want `call to non-allowlisted function`
	fn()                   // want `indirect call in hot path`
	fn()                   //arvi:dyncall the only registered callback is hot by construction
	f := func() {}         // want `closure in hot path`
	_ = f
	defer helper(5) // want `defer in hot path`
	go helper(6)    // want `go statement in hot path`
	ch <- 1         // want `channel send in hot path`
	<-ch            // want `channel receive in hot path`
	if r.m == nil {
		//arvi:cold
		panic("table missing: " + s)
	}
	panic("boom") // want `panic in hot path`
}

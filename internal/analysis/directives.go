package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //arvi: annotation comment. The grammar (documented in
// DESIGN.md's static contracts section):
//
//	//arvi:hotpath            — on a func: must be allocation-free (hotalloc)
//	//arvi:scratch            — on a field/var: legal append destination in hot code
//	//arvi:cold               — on a statement: error/panic path, exempt from hotalloc
//	//arvi:dyncall <why>      — on a call line: indirect call allowed in hot code
//	//arvi:det                — on a func: determinism root (nondet walks from here)
//	//arvi:len <dim>          — on a field or method: bitvec length dimension tag
//	//arvi:lencheck <why>     — on a kernel call line: unproven lengths, justified
//	//arvi:unordered <why>    — on a map range line: order cannot reach output
//	//arvi:nondet-ok <why>    — on a line: nondeterminism source allowed in det path
//	//arvi:errdrop-ok <why>   — on a line: discarded error is intentional
//	//arvi:nonnil <why>       — on a line: value nilness cannot prove non-nil, justified
//	//arvi:panicfree <why>    — on a line or func doc: panic-freedom argued by hand
//	//arvi:mask <dim>         — on an int field: always holds (size of dim) − 1,
//	                            dim a power of two, so x&mask indexes dim safely;
//	                            on a method: the result is an in-bounds index
//	                            into any //arvi:len <dim> slice of the same base
//	//arvi:idx <dim>          — on an int field or method: the value is always
//	                            in [0, size of dim) — a maintained index
//	                            invariant (ring pointers, wrap arithmetic)
//
// Directives that carry <why> demand a non-empty justification; the
// analyzers reject a bare suppression.
type Directive struct {
	Name string // "hotpath", "lencheck", ...
	Arg  string // justification or dimension tag; "" if none given
	Pos  token.Pos
	Line int
}

// parseDirectives extracts every //arvi: directive in the file, keyed by
// the line the comment appears on.
func parseDirectives(fset *token.FileSet, f *ast.File) map[int][]Directive {
	out := make(map[int][]Directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//arvi:")
			if !ok {
				continue
			}
			name, arg, _ := strings.Cut(text, " ")
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], Directive{
				Name: name,
				Arg:  strings.TrimSpace(arg),
				Pos:  c.Pos(),
				Line: line,
			})
		}
	}
	return out
}

// directivesFor returns the directives attached to a declaration's doc
// comment (or a field's doc or trailing comment).
func directivesIn(byLine map[int][]Directive, fset *token.FileSet, groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		start := fset.Position(g.Pos()).Line
		end := fset.Position(g.End()).Line
		for line := start; line <= end; line++ {
			out = append(out, byLine[line]...)
		}
	}
	return out
}

// LineDirective reports whether a directive of the given name is present
// on the line of pos or the line directly above it (covering both trailing
// and leading comment placement), returning it if so.
func (w *World) LineDirective(pos token.Pos, name string) (Directive, bool) {
	p := w.Fset.Position(pos)
	byLine, ok := w.directives[p.Filename]
	if !ok {
		return Directive{}, false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range byLine[line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
)

// NewWorld builds a World directly from checked packages; the fixture
// runner uses it where Load is the production entry point.
func NewWorld(fset *token.FileSet, module string, pkgs []*Package) *World {
	return buildWorld(fset, module, pkgs)
}

// LoadFixture loads the single package in dir (every *.go file) as a
// World, for analysistest-style fixtures under testdata. Imports —
// including module-internal ones like repro/internal/bitvec — resolve
// from compiler export data via `go list -export`, so fixtures may
// exercise the real kernel APIs. The fixture package itself is
// type-checked from source, so its //arvi: directives index normally.
func LoadFixture(dir string) (*World, error) {
	module, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no fixture sources in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing fixture %s: %w", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}

	exportFiles := make(map[string]string)
	delete(imports, "unsafe")
	if len(imports) > 0 {
		args := make([]string, 0, len(imports))
		for path := range imports {
			args = append(args, path)
		}
		sort.Strings(args)
		listed, err := goList(dir, args)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exportFiles[lp.ImportPath] = lp.Export
			}
		}
	}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &worldImporter{srcPkgs: nil, exp: gc},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkgPath := "fixture/" + files[0].Name.Name
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", dir, err)
	}
	pkg := &Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	return buildWorld(fset, module, []*Package{pkg}), nil
}

// Package bitveclen implements the arvivet analyzer that checks the
// bitvec equal-length contract statically.
//
// Every binary bitvec kernel (CopyFrom, Or, And, AndNot, OrOf, OrAnd,
// OrAndInto, OrOfAndNot, and the summary-guided OrSparse, OrAndSparse,
// AndSparse) requires all operands to be the same length; the
// kernels trust it and index unchecked (the bitvecdebug build tag adds
// runtime assertions, but the default build has none). bitveclen proves
// the lengths equal at each call site when every operand's provenance
// resolves to the same origin:
//
//   - the same bitvec.New(n) expression text — vectors allocated with the
//     one size expression are the same length;
//   - fields or methods tagged //arvi:len <dim> reached from the same
//     base object — e.g. d.row(s), d.valid and d.chainBuf all tagged
//     "entries" on one DDT d are all Entries wide by construction.
//
// Local variables assigned exactly once are traced through to their
// initializer, so `keep := d.keepBuf; dst.OrAnd(d.row(s), keep)` resolves
// keep to the tagged field. When provenance cannot be established (a
// caller-supplied parameter, mixed dimensions), the call site must carry
// //arvi:lencheck <why> stating why the lengths agree — an auditable
// obligation instead of a silent assumption. bitvec.ClearColumn's
// contract (len(m) = rows*words) is outside the prover's reach, so its
// call sites always carry the justification.
package bitveclen

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the bitveclen pass.
var Analyzer = &analysis.Analyzer{
	Name: "bitveclen",
	Doc:  "bitvec kernel call sites must have provably equal-length operands or //arvi:lencheck",
	Run:  run,
}

// vecKernels are the Vec methods whose receiver and every argument must
// be equal length.
var vecKernels = map[string]bool{
	"CopyFrom":    true,
	"Or":          true,
	"And":         true,
	"AndNot":      true,
	"OrOf":        true,
	"OrAnd":       true,
	"OrAndInto":   true,
	"OrOfAndNot":  true,
	"OrSparse":    true,
	"OrAndSparse": true,
	"AndSparse":   true,
}

func run(pass *analysis.Pass) error {
	bvPath := pass.World.Module + "/internal/bitvec"
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			env := singleAssignments(info, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, bvPath, env, call)
				return true
			})
		}
	}
	return nil
}

// checkCall tests one call expression against the kernel contract.
func checkCall(pass *analysis.Pass, bvPath string, env map[types.Object]ast.Expr, call *ast.CallExpr) {
	info := pass.Pkg.Info
	fn := analysis.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != bvPath {
		return
	}
	switch {
	case fn.Name() == "ClearColumn":
		// len(m) must equal rows*words: a relation, not a length, and out
		// of the prover's reach by design.
		requireJustification(pass, call, "ClearColumn's len(m) = rows*words contract cannot be proven statically")
	case vecKernels[fn.Name()] && fn.Type().(*types.Signature).Recv() != nil:
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		// Only Vec-typed arguments carry the contract; the sparse kernels
		// also take a uint64 summary, which is not a vector operand.
		operands := []ast.Expr{sel.X}
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && isVec(tv.Type, bvPath) {
				operands = append(operands, arg)
			}
		}
		if allSameProvenance(pass, info, env, operands) {
			return
		}
		requireJustification(pass, call, "cannot prove the operands of "+fn.Name()+" are equal length")
	}
}

// isVec reports whether t is bitvec.Vec (possibly named via alias).
func isVec(t types.Type, bvPath string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Vec" && obj.Pkg() != nil && obj.Pkg().Path() == bvPath
}

// requireJustification demands a justified //arvi:lencheck on the call line.
func requireJustification(pass *analysis.Pass, call *ast.CallExpr, why string) {
	if d, ok := pass.World.LineDirective(call.Pos(), "lencheck"); ok {
		if d.Arg == "" {
			pass.Reportf(call.Pos(), "//arvi:lencheck needs a justification")
		}
		return
	}
	pass.Reportf(call.Pos(), "%s; derive all operands from one allocation or one //arvi:len dimension, or justify with //arvi:lencheck <why>", why)
}

// provKey is a resolved operand origin. Two operands are provably equal
// length when their keys are equal: same allocation expression, or same
// tagged dimension on the same base object.
type provKey struct {
	kind string       // "new" or "dim"
	obj  types.Object // base object for "dim"
	text string       // allocation size text for "new", dimension tag for "dim"
}

func allSameProvenance(pass *analysis.Pass, info *types.Info, env map[types.Object]ast.Expr, operands []ast.Expr) bool {
	var first provKey
	for i, op := range operands {
		k, ok := resolve(pass, info, env, op, 0)
		if !ok {
			return false
		}
		if i == 0 {
			first = k
		} else if k != first {
			return false
		}
	}
	return true
}

// resolve computes an operand's provenance key, tracing conversions and
// single-assignment locals.
func resolve(pass *analysis.Pass, info *types.Info, env map[types.Object]ast.Expr, e ast.Expr, depth int) (provKey, bool) {
	if depth > 8 {
		return provKey{}, false
	}
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return provKey{}, false
		}
		if rhs, ok := env[obj]; ok {
			return resolve(pass, info, env, rhs, depth+1)
		}
		return provKey{}, false
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok {
			return provKey{}, false
		}
		dim, tagged := pass.World.LenDim[sel.Obj()]
		if !tagged {
			return provKey{}, false
		}
		base, ok := baseObject(info, e.X)
		if !ok {
			return provKey{}, false
		}
		return provKey{kind: "dim", obj: base, text: dim}, true
	case *ast.CallExpr:
		// Conversion (e.g. bitvec.Vec(x)): trace the operand.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			return resolve(pass, info, env, e.Args[0], depth+1)
		}
		fn := analysis.StaticCallee(info, e)
		if fn == nil {
			return provKey{}, false
		}
		// bitvec.New(n): same size expression, same length.
		if fn.Name() == "New" && fn.Pkg() != nil && fn.Pkg().Path() == pass.World.Module+"/internal/bitvec" && len(e.Args) == 1 {
			return provKey{kind: "new", text: types.ExprString(e.Args[0])}, true
		}
		// A method tagged //arvi:len returns a vector of that dimension;
		// key it by the base object the method was called on.
		if dim, tagged := pass.World.LenDim[fn]; tagged {
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if base, ok := baseObject(info, sel.X); ok {
					return provKey{kind: "dim", obj: base, text: dim}, true
				}
			}
		}
		return provKey{}, false
	}
	return provKey{}, false
}

// baseObject resolves the object a selector chain is rooted at (the d in
// d.row(s) or d.valid).
func baseObject(info *types.Info, e ast.Expr) (types.Object, bool) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj, true
		}
	}
	return nil, false
}

// singleAssignments maps each local declared with := and never reassigned
// to its initializer expression, so provenance traces through simple
// aliases like `keep := d.keepBuf`.
func singleAssignments(info *types.Info, body *ast.BlockStmt) map[types.Object]ast.Expr {
	env := make(map[types.Object]ast.Expr)
	assigned := make(map[types.Object]int)
	note := func(id *ast.Ident) types.Object {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			assigned[obj]++
		}
		return obj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := note(id)
				if obj != nil && len(n.Lhs) == len(n.Rhs) {
					env[obj] = n.Rhs[i]
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				note(id)
			}
		case *ast.RangeStmt:
			for _, x := range []ast.Expr{n.Key, n.Value} {
				if id, ok := x.(*ast.Ident); ok && id.Name != "_" {
					note(id)
				}
			}
		case *ast.UnaryExpr:
			// Address-taken locals can be rewritten through the pointer.
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					note(id)
				}
			}
		}
		return true
	})
	for obj, n := range assigned {
		if n != 1 {
			delete(env, obj)
		}
	}
	return env
}

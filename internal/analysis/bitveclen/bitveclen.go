// Package bitveclen implements the arvivet analyzer that checks the
// bitvec equal-length contract statically.
//
// Every binary bitvec kernel (CopyFrom, Or, And, AndNot, OrOf, OrAnd,
// OrAndInto, OrOfAndNot, and the summary-guided OrSparse, OrAndSparse,
// AndSparse) requires all operands to be the same length; the
// kernels trust it and index unchecked (the bitvecdebug build tag adds
// runtime assertions, but the default build has none). bitveclen proves
// the lengths equal at each call site when every operand's provenance
// resolves to the same origin:
//
//   - the same bitvec.New(n) expression text — vectors allocated with the
//     one size expression are the same length;
//   - fields or methods tagged //arvi:len <dim> reached from the same
//     base object — e.g. d.row(s), d.valid and d.chainBuf all tagged
//     "entries" on one DDT d are all Entries wide by construction.
//
// Local provenance is flow-sensitive: the analyzer runs the shared
// provenance dataflow (analysis.ProvSpec) over the function's CFG, so an
// alias holds its origin at exactly the program points where every path
// assigned it one — `keep := d.keepBuf` resolves, and so does a local
// assigned the same dimension on both arms of a branch, which the old
// single-assignment environment had to reject. When provenance cannot be
// established (a caller-supplied parameter, mixed dimensions), the call
// site must carry //arvi:lencheck <why> stating why the lengths agree —
// an auditable obligation instead of a silent assumption.
// bitvec.ClearColumn's contract (len(m) = rows*words) is outside the
// prover's reach, so its call sites always carry the justification.
package bitveclen

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the bitveclen pass.
var Analyzer = &analysis.Analyzer{
	Name: "bitveclen",
	Doc:  "bitvec kernel call sites must have provably equal-length operands or //arvi:lencheck",
	Run:  run,
}

// VecKernels are the Vec methods whose receiver and every argument must
// be equal length. hotpanic reuses the set for its kernel-sibling rule:
// inside these methods the Vec operands are one equal-length group,
// because this analyzer discharges the proof at every call site.
var VecKernels = map[string]bool{
	"CopyFrom":    true,
	"Or":          true,
	"And":         true,
	"AndNot":      true,
	"OrOf":        true,
	"OrAnd":       true,
	"OrAndInto":   true,
	"OrOfAndNot":  true,
	"OrSparse":    true,
	"OrAndSparse": true,
	"AndSparse":   true,
}

func run(pass *analysis.Pass) error {
	bvPath := pass.World.Module + "/internal/bitvec"
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			excluded := analysis.AddressTaken(info, fd.Body)
			spec := analysis.ProvSpec(pass.World, info, excluded)
			for _, g := range analysis.FuncGraphs(fd.Name.Name, fd.Body) {
				r := dataflow.Solve(g, spec)
				for _, blk := range g.Blocks {
					if blk == g.Exit {
						continue // exit nodes are defer-call copies, checked at the defer site
					}
					f := analysis.ProvFact{}
					if r.Reached[blk.Index] {
						f = analysis.CloneProv(r.In[blk.Index])
					}
					for _, n := range blk.Nodes {
						analysis.InspectNode(n, func(m ast.Node) bool {
							if call, ok := m.(*ast.CallExpr); ok {
								checkCall(pass, bvPath, f, call)
							}
							return true
						})
						f = analysis.ProvTransfer(pass.World, info, excluded, n, f)
					}
				}
			}
		}
	}
	return nil
}

// checkCall tests one call expression against the kernel contract.
func checkCall(pass *analysis.Pass, bvPath string, f analysis.ProvFact, call *ast.CallExpr) {
	info := pass.Pkg.Info
	fn := analysis.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != bvPath {
		return
	}
	switch {
	case fn.Name() == "ClearColumn":
		// len(m) must equal rows*words: a relation, not a length, and out
		// of the prover's reach by design.
		requireJustification(pass, call, "ClearColumn's len(m) = rows*words contract cannot be proven statically")
	case VecKernels[fn.Name()] && fn.Type().(*types.Signature).Recv() != nil:
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		// Only Vec-typed arguments carry the contract; the sparse kernels
		// also take a uint64 summary, which is not a vector operand.
		operands := []ast.Expr{sel.X}
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && isVec(tv.Type, bvPath) {
				operands = append(operands, arg)
			}
		}
		if allSameProvenance(pass, info, f, operands) {
			return
		}
		requireJustification(pass, call, "cannot prove the operands of "+fn.Name()+" are equal length")
	}
}

// isVec reports whether t is bitvec.Vec (possibly named via alias).
func isVec(t types.Type, bvPath string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Vec" && obj.Pkg() != nil && obj.Pkg().Path() == bvPath
}

// requireJustification demands a justified //arvi:lencheck on the call line.
func requireJustification(pass *analysis.Pass, call *ast.CallExpr, why string) {
	if d, ok := pass.World.LineDirective(call.Pos(), "lencheck"); ok {
		if d.Arg == "" {
			pass.Reportf(call.Pos(), "//arvi:lencheck needs a justification")
		}
		return
	}
	pass.Reportf(call.Pos(), "%s; derive all operands from one allocation or one //arvi:len dimension, or justify with //arvi:lencheck <why>", why)
}

func allSameProvenance(pass *analysis.Pass, info *types.Info, f analysis.ProvFact, operands []ast.Expr) bool {
	var first analysis.ProvKey
	for i, op := range operands {
		k, ok := analysis.ResolveProv(pass.World, info, f, op)
		if !ok {
			return false
		}
		if i == 0 {
			first = k
		} else if k != first {
			return false
		}
	}
	return true
}

// Package b exercises the bitveclen analyzer against the real bitvec
// kernels: same-allocation and same-dimension operands are proven, mixed
// or unknown provenance demands a justified //arvi:lencheck.
package b

import "repro/internal/bitvec"

type table struct {
	//arvi:len entries
	valid bitvec.Vec
	//arvi:len entries
	chain bitvec.Vec
	//arvi:len regs
	set bitvec.Vec
}

// row returns an entries-wide vector.
//
//arvi:len entries
func (t *table) row(i int) bitvec.Vec { return t.valid }

func kernels(t, u *table, n int, other bitvec.Vec, m []uint64, words int) {
	a := bitvec.New(n)
	b := bitvec.New(n)
	c := bitvec.New(n + 1)
	a.Or(b)
	a.OrAndInto(b, a, b)
	a.And(c) // want `cannot prove the operands of And`
	t.chain.Or(t.valid)
	t.chain.OrAnd(t.row(3), t.valid)
	t.chain.Or(t.set)   // want `cannot prove the operands of Or`
	t.chain.Or(u.chain) // want `cannot prove the operands of Or`
	t.chain.Or(other)   // want `cannot prove the operands of Or`
	t.chain.And(other)  //arvi:lencheck callers pass entries-wide vectors only
	//arvi:lencheck
	t.chain.AndNot(other) // want `needs a justification`
	alias := t.valid
	alias.CopyFrom(t.chain)
	// Summary-guided sparse kernels carry the same equal-length contract
	// on their Vec operands; the uint64 summary is not a vector operand.
	_ = t.chain.OrSparse(t.row(1), 0)
	_ = t.chain.OrAndSparse(t.row(2), t.valid, 0)
	_ = t.chain.AndSparse(t.valid, 0)
	_ = t.chain.OrSparse(other, 0)             // want `cannot prove the operands of OrSparse`
	_ = t.chain.OrAndSparse(t.set, t.valid, 0) // want `cannot prove the operands of OrAndSparse`
	_ = t.chain.AndSparse(other, 0)            // want `cannot prove the operands of AndSparse`
	bitvec.ClearColumn(m, words, 0)            // want `ClearColumn`
	//arvi:lencheck m is rows strides of words uint64s
	bitvec.ClearColumn(m, words, 1)
}

// flowSensitive needs the CFG-aware provenance: a local resolves when
// every path to the use assigned it the same dimension, even though no
// single assignment dominates — the old one-assignment environment had
// to give up on all of these.
func flowSensitive(t *table, pick bool, other bitvec.Vec) {
	src := t.valid
	if pick {
		src = t.chain // still entries-wide on the same base
	}
	t.chain.Or(src)
	dst := t.valid
	if pick {
		dst = t.set // regs-wide: the merge loses the provenance
	}
	t.chain.Or(dst) // want `cannot prove the operands of Or`
	mixed := t.valid
	if pick {
		mixed = other // unknown provenance on one path
	}
	t.chain.Or(mixed) // want `cannot prove the operands of Or`
	// After the merge a fresh assignment re-establishes provenance.
	mixed = t.chain
	t.valid.Or(mixed)
	// A reassigned local is resolved per program point, not per function:
	// reuse after retargeting to another base must re-prove there.
	hop := t.valid
	t.chain.Or(hop)
	hop = u2(t)
	t.chain.Or(hop) // want `cannot prove the operands of Or`
}

func u2(t *table) bitvec.Vec { return t.set }

package bitveclen_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bitveclen"
)

func TestBitveclen(t *testing.T) {
	analysistest.Run(t, bitveclen.Analyzer, "b")
}

// Package nondet implements the arvivet analyzer that keeps
// nondeterminism sources out of the deterministic tiers.
//
// Functions annotated //arvi:det are determinism roots: the program
// fingerprint, the sim cache keys, the trace-store identity, CSV/JSON
// rendering and the service response writers — everything whose output is
// promised byte-identical given the same inputs. nondet builds the static
// call graph of the module, walks it from every root, and inside the
// reachable set flags:
//
//   - calls into the time package that read the clock (time.Now,
//     time.Since, time.Until),
//   - any call into math/rand or math/rand/v2,
//   - format strings containing %p (pointer addresses vary per run), and
//   - ranges over maps (iteration order is randomized; sort the keys).
//
// Suppress a clock/rand/%p finding with //arvi:nondet-ok <why> and a map
// range with //arvi:unordered <why> (shared with detmap; one directive
// answers both analyzers).
//
// The walk follows static calls only: a func value or interface method is
// a graph edge nondet cannot see. On the hot replay path those indirect
// calls already require //arvi:dyncall justifications from hotalloc, and
// the deterministic tiers' own indirection (cpu.EventSource) is into
// //arvi:hotpath code, which hotalloc bars from calling the clock-bearing
// stdlib in the first place.
package nondet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the nondet pass.
var Analyzer = &analysis.Analyzer{
	Name:     "nondet",
	Doc:      "no clocks, rand, %p or unordered map iteration on //arvi:det call paths",
	RunWorld: run,
}

// clockFuncs are time-package functions that read the wall clock.
var clockFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

func run(pass *analysis.WorldPass) error {
	w := pass.World

	// BFS the static call graph from every det root, remembering which
	// root first reached each function so diagnostics can say why the
	// function is constrained.
	rootOf := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	var roots []*types.Func
	for fn := range w.DetRoot {
		roots = append(roots, fn)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })
	for _, fn := range roots {
		if _, seen := rootOf[fn]; seen {
			continue
		}
		rootOf[fn] = fn
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := w.Decls[fn]
		if info == nil || info.Decl.Body == nil {
			continue
		}
		root := rootOf[fn]
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.StaticCallee(info.Pkg.Info, call)
			if callee == nil {
				return true
			}
			if _, inModule := w.Decls[callee]; !inModule {
				return true
			}
			if _, seen := rootOf[callee]; !seen {
				rootOf[callee] = root
				queue = append(queue, callee)
			}
			return true
		})
	}

	// Check every reached function, in deterministic order.
	var reached []*types.Func
	for fn := range rootOf {
		if w.Decls[fn] != nil {
			reached = append(reached, fn)
		}
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i].FullName() < reached[j].FullName() })
	for _, fn := range reached {
		checkFunc(pass, fn, rootOf[fn])
	}
	return nil
}

// checkFunc scans one det-reachable function body for nondeterminism.
func checkFunc(pass *analysis.WorldPass, fn, root *types.Func) {
	w := pass.World
	info := w.Decls[fn]
	if info.Decl.Body == nil {
		return
	}
	tinfo := info.Pkg.Info
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := analysis.StaticCallee(tinfo, n)
			if callee != nil && callee.Pkg() != nil {
				full := callee.Pkg().Path() + "." + callee.Name()
				switch {
				case clockFuncs[full]:
					report(pass, n.Pos(), root, "reads the clock via %s", full)
				case callee.Pkg().Path() == "math/rand" || callee.Pkg().Path() == "math/rand/v2":
					report(pass, n.Pos(), root, "uses %s", full)
				}
			}
			checkFormat(pass, tinfo, n, root)
		case *ast.RangeStmt:
			if _, isMap := tinfo.TypeOf(n.X).Underlying().(*types.Map); isMap {
				if d, ok := w.LineDirective(n.Pos(), "unordered"); ok {
					if d.Arg == "" {
						pass.Reportf(n.Pos(), "//arvi:unordered needs a justification")
					}
					return true
				}
				report(pass, n.Pos(), root, "ranges over a map (iteration order is randomized; sort the keys or justify with //arvi:unordered <why>)")
			}
		}
		return true
	})
}

// checkFormat flags %p verbs in constant format strings passed to calls.
func checkFormat(pass *analysis.WorldPass, info *types.Info, callExpr *ast.CallExpr, root *types.Func) {
	for _, arg := range callExpr.Args {
		tv, ok := info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		s := constant.StringVal(tv.Value)
		if strings.Contains(s, "%p") || strings.Contains(s, "%#p") {
			report(pass, arg.Pos(), root, "formats a pointer address with %%p")
		}
	}
}

// report emits a diagnostic naming the det root that makes the position
// deterministic-path, honoring //arvi:nondet-ok line suppressions.
func report(pass *analysis.WorldPass, pos token.Pos, root *types.Func, format string, args ...any) {
	if d, ok := pass.World.LineDirective(pos, "nondet-ok"); ok {
		if d.Arg == "" {
			pass.Reportf(pos, "//arvi:nondet-ok needs a justification")
		}
		return
	}
	args = append(args, root.FullName())
	pass.Reportf(pos, format+" in a deterministic path (reachable from //arvi:det root %s)", args...)
}

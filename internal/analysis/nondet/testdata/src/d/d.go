// Package d exercises the nondet analyzer: clocks, rand, %p and map
// ranges are forbidden in the call paths of //arvi:det roots, and code
// not reachable from a root is unconstrained.
package d

import (
	"fmt"
	"math/rand"
	"time"
)

// Fingerprint is a determinism root; everything it calls inherits the
// contract.
//
//arvi:det
func Fingerprint(m map[string]int) string {
	s := helper()
	for k := range m { // want `ranges over a map`
		s += k
	}
	//arvi:unordered accumulates an order-independent sum
	for _, v := range m {
		s += fmt.Sprint(v)
	}
	return s
}

func helper() string {
	t := time.Now() // want `reads the clock via time.Now`
	_ = rand.Int()  // want `uses math/rand.Int`
	//arvi:nondet-ok fixed seed would make this reproducible here
	_ = rand.Uint32()
	return fmt.Sprintf("%p", &t) // want `formats a pointer address`
}

func unconstrained() time.Time {
	return time.Now()
}

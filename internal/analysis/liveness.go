package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/dataflow"
)

// VarReadAfter reports whether v can be read after control leaves the
// region [regionPos, regionEnd) inside body, before being written again.
// It is the liveness test behind the shadowing rules: an inner
// redeclaration of a name only matters if someone later reads the outer
// variable expecting it to hold the inner result — a fresh write in
// between re-establishes intent, and no later read means the shadow
// cannot change behaviour.
//
// The test is CFG-path-aware: it runs a backward liveness pass over the
// function's control-flow graph and asks whether v is live on any edge
// that leaves the region. A read that merely sits below the region in
// source order but on a disjoint branch (the conservative false-positive
// class of the syntactic version) is not reachable from the region's
// exits and no longer counts; a read on a loop back-edge above the region
// is reachable and now correctly does.
//
// Reads and writes are classified syntactically: an identifier on the
// left of an assignment (including short redeclarations that reuse the
// variable), an IncDec statement, or a range clause is a write; every
// other use is a read. Taking the variable's address counts as a read —
// the analysis cannot track the pointer, so it stays conservative. When
// the region maps to no CFG node (e.g. a scope nested inside a function
// literal, which the outer graph keeps opaque), the positional fallback
// answers instead.
func VarReadAfter(info *types.Info, body *ast.BlockStmt, v types.Object, regionPos, regionEnd token.Pos) bool {
	writes := writeIdents(body)
	// scan visits one CFG node without crossing into a range statement's
	// body (those statements are nodes of other blocks); function literals
	// are included — a closure read keeps the variable live.
	scan := func(n ast.Node, want bool) bool {
		found := false
		visit := func(m ast.Node) bool {
			// A declaring occurrence (info.Defs) is a write too: a loop
			// back-edge re-executes the short declaration, overwriting the
			// variable before any read can observe the shadowed value.
			if id, ok := m.(*ast.Ident); ok && (info.Uses[id] == v || info.Defs[id] == v) && writes[id] == want {
				found = true
			}
			return !found
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
				if e != nil {
					ast.Inspect(e, visit)
				}
			}
		} else {
			ast.Inspect(n, visit)
		}
		return found
	}
	reads := func(n ast.Node) bool { return scan(n, false) }
	kills := func(n ast.Node) bool { return scan(n, true) }

	g := FuncGraphs("liveness", body)[0]
	inRegion := func(n ast.Node) bool {
		return n.Pos() >= regionPos && n.End() <= regionEnd
	}
	any := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if inRegion(n) {
				any = true
			}
		}
	}
	if !any {
		return varReadAfterPositional(info, body, v, regionEnd)
	}

	r := dataflow.Solve(g, dataflow.Spec[bool]{
		Forward:  false,
		Boundary: func() bool { return false },
		Transfer: func(n ast.Node, live bool) bool {
			if reads(n) {
				return true
			}
			if kills(n) {
				return false
			}
			return live
		},
		Join:  func(dst, src bool) bool { return dst || src },
		Clone: func(f bool) bool { return f },
		Equal: func(a, b bool) bool { return a == b },
	})

	for _, blk := range g.Blocks {
		if !r.Reached[blk.Index] {
			continue
		}
		// Live-before each node, walking backward from the block's out fact.
		liveBefore := make([]bool, len(blk.Nodes))
		live := r.Out[blk.Index]
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			if reads(blk.Nodes[i]) {
				live = true
			} else if kills(blk.Nodes[i]) {
				live = false
			}
			liveBefore[i] = live
		}
		// Exit within the block: an in-region node directly followed by an
		// out-of-region one.
		for i := 1; i < len(blk.Nodes); i++ {
			if inRegion(blk.Nodes[i-1]) && !inRegion(blk.Nodes[i]) && liveBefore[i] {
				return true
			}
		}
		// Exit over a block edge: the block ends inside the region and a
		// successor starts outside it (an empty successor counts as
		// outside — its live-in already aggregates whatever follows).
		if len(blk.Nodes) == 0 || !inRegion(blk.Nodes[len(blk.Nodes)-1]) {
			continue
		}
		for _, s := range blk.Succs {
			if len(s.Nodes) > 0 && inRegion(s.Nodes[0]) {
				continue
			}
			if r.Reached[s.Index] && r.In[s.Index] {
				return true
			}
		}
	}
	return false
}

// varReadAfterPositional is the syntactic fallback: the first use of v
// positioned after pos decides the answer.
func varReadAfterPositional(info *types.Info, body *ast.BlockStmt, v types.Object, pos token.Pos) bool {
	writes := writeIdents(body)
	type event struct {
		pos   token.Pos
		write bool
	}
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || (info.Uses[id] != v && info.Defs[id] != v) {
			return true
		}
		events = append(events, event{pos: id.Pos(), write: writes[id]})
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, ev := range events {
		if ev.pos <= pos {
			continue
		}
		return !ev.write
	}
	return false
}

// writeIdents classifies every identifier in body that appears in a write
// position: assignment LHS, IncDec operand, or range clause variable.
func writeIdents(body *ast.BlockStmt) map[*ast.Ident]bool {
	writes := make(map[*ast.Ident]bool)
	markWrite := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			writes[id] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		case *ast.RangeStmt:
			if n.Key != nil {
				markWrite(n.Key)
			}
			if n.Value != nil {
				markWrite(n.Value)
			}
		case *ast.ValueSpec:
			// var x T declares-and-zeroes: a write for liveness purposes.
			for _, name := range n.Names {
				markWrite(name)
			}
		}
		return true
	})
	return writes
}

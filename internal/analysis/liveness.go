package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// VarReadAfter reports whether v is read after pos inside body before
// being written again. It is the liveness test behind the shadowing
// rules: an inner redeclaration of a name only matters if someone later
// reads the outer variable expecting it to hold the inner result — a
// fresh write in between re-establishes intent, and no later read means
// the shadow cannot change behaviour.
//
// Reads and writes are classified syntactically: an identifier on the
// left of an assignment (including short redeclarations that reuse the
// variable), an IncDec statement, or a range clause is a write; every
// other use is a read. Taking the variable's address counts as a read —
// the analysis cannot track the pointer, so it stays conservative.
func VarReadAfter(info *types.Info, body *ast.BlockStmt, v types.Object, pos token.Pos) bool {
	writes := make(map[*ast.Ident]bool)
	markWrite := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			writes[id] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		case *ast.RangeStmt:
			if n.Key != nil {
				markWrite(n.Key)
			}
			if n.Value != nil {
				markWrite(n.Value)
			}
		}
		return true
	})

	type event struct {
		pos   token.Pos
		write bool
	}
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != v {
			return true
		}
		events = append(events, event{pos: id.Pos(), write: writes[id]})
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, ev := range events {
		if ev.pos <= pos {
			continue
		}
		return !ev.write
	}
	return false
}

package analysis_test

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/hotpanic"
)

// hotcoverExempt lists module functions a benchkit timed region may call
// without carrying //arvi:hotpath, each with the reason the hot-path
// contract does not apply to it. Keep this list justified and short: an
// entry here is a hole in what the trajectory numbers guard.
var hotcoverExempt = map[string]string{
	"(*repro/internal/trace.Decoded).Cursor": "allocates one per-replay cursor by design; amortised over the full replay it starts",
}

// TestBenchmarkBodiesAreHotpath asserts that every module function called
// from a benchkit timed region (the statements after b.ResetTimer) carries
// //arvi:hotpath — so the code the BENCH_*.json trajectory measures is
// exactly the code the hotalloc analyzer keeps allocation-free. A benchmark
// that drifts onto an unannotated path fails here rather than silently
// reporting numbers the static contracts no longer cover.
func TestBenchmarkBodiesAreHotpath(t *testing.T) {
	world, err := analysis.Load("../..", "./internal/benchkit")
	if err != nil {
		t.Fatal(err)
	}
	var benchPkg *analysis.Package
	for _, p := range world.Pkgs {
		if strings.HasSuffix(p.Path, "/benchkit") {
			benchPkg = p
		}
	}
	if benchPkg == nil {
		t.Fatal("benchkit package not loaded")
	}

	found := forEachTimedCall(t, world, func(fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func) {
		if world.Hotpath[fn] {
			return
		}
		if _, ok := hotcoverExempt[fn.FullName()]; ok {
			return
		}
		pos := world.Fset.Position(call.Pos())
		t.Errorf("%s: timed region of %s calls %s, which is not //arvi:hotpath (annotate it, or add a justified hotcoverExempt entry)",
			pos, fd.Name.Name, fn.FullName())
	})
	if !found {
		t.Fatal("found no timed benchmark bodies; did benchkit change shape?")
	}
}

// TestTimedCalleesAreHotpanicClean asserts that every module function a
// benchkit timed region calls survives the hotpanic prover with zero
// undischarged obligations — the code the trajectory measures cannot hide
// an unproven implicit panic site behind the benchmark numbers. Functions
// in hotcoverExempt are outside the hot-path contract and therefore
// outside this proof too; that is part of what an exemption costs.
func TestTimedCalleesAreHotpanicClean(t *testing.T) {
	world, err := analysis.Load("../..", "./internal/benchkit")
	if err != nil {
		t.Fatal(err)
	}
	callees := make(map[*types.Func]bool)
	forEachTimedCall(t, world, func(_ *ast.FuncDecl, _ *ast.CallExpr, fn *types.Func) {
		callees[fn] = true
	})
	diags, err := analysis.Run(world, []*analysis.Analyzer{hotpanic.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		for fn := range callees {
			decl, ok := world.Decls[fn]
			if !ok {
				continue
			}
			start := world.Fset.Position(decl.Decl.Pos())
			end := world.Fset.Position(decl.Decl.End())
			if d.Pos.Filename == start.Filename && d.Pos.Line >= start.Line && d.Pos.Line <= end.Line {
				t.Errorf("%s: benchkit-timed %s has an undischarged panic obligation: %s",
					d.Pos, fn.FullName(), d.Message)
			}
		}
	}
}

// forEachTimedCall invokes visit for every static call to a module
// function made from a benchkit timed region (the statements after
// b.ResetTimer), reporting whether any timed body was found at all.
func forEachTimedCall(t *testing.T, world *analysis.World, visit func(fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func)) bool {
	t.Helper()
	var benchPkg *analysis.Package
	for _, p := range world.Pkgs {
		if strings.HasSuffix(p.Path, "/benchkit") {
			benchPkg = p
		}
	}
	if benchPkg == nil {
		t.Fatal("benchkit package not loaded")
	}
	timedBodies := 0
	for _, file := range benchPkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasBenchParam(benchPkg.Info, fd) {
				continue
			}
			timed := timedRegion(benchPkg.Info, fd.Body)
			if timed == nil {
				continue // no ResetTimer: a wrapper delegating to a shared body
			}
			timedBodies++
			for _, stmt := range timed {
				ast.Inspect(stmt, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := analysis.StaticCallee(benchPkg.Info, call)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					path := fn.Pkg().Path()
					if path != world.Module && !strings.HasPrefix(path, world.Module+"/") {
						return true // stdlib (testing.B methods and the like)
					}
					visit(fd, call, fn)
					return true
				})
			}
		}
	}
	return timedBodies > 0
}

// hasBenchParam reports whether fd takes a *testing.B parameter.
func hasBenchParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok &&
			types.TypeString(tv.Type, nil) == "*testing.B" {
			return true
		}
	}
	return false
}

// timedRegion returns the statements after the last top-level
// b.ResetTimer() call, or nil if the body never resets the timer.
func timedRegion(info *types.Info, body *ast.BlockStmt) []ast.Stmt {
	last := -1
	for i, stmt := range body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn := analysis.StaticCallee(info, call); fn != nil &&
			fn.FullName() == "(*testing.B).ResetTimer" {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	return body.List[last+1:]
}

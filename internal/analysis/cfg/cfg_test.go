package cfg_test

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
)

var update = flag.Bool("update", false, "rewrite the golden CFG dumps")

// TestGoldenDumps builds the CFG of every function in testdata/funcs.go and
// compares the dumps against testdata/funcs.golden — pinning the graph
// shapes for the tricky constructs (labeled goto, select, wrapped range,
// short-circuit conditions, switch fallthrough, defer/panic/return edges).
func TestGoldenDumps(t *testing.T) {
	fset := token.NewFileSet()
	src := filepath.Join("testdata", "funcs.go")
	f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		g := cfg.Build(fd.Name.Name, fd.Body)
		sb.WriteString(g.Dump(fset))
		sb.WriteString("\n")
	}
	got := sb.String()

	golden := filepath.Join("testdata", "funcs.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dumps differ from golden; run `go test ./internal/analysis/cfg -update` if the change is intended.\ngot:\n%s", got)
	}
}

// TestEveryBlockConsistent checks structural invariants over the golden
// corpus: cond blocks have exactly two successors with the cond as their
// last node, range headers have exactly two successors, and preds mirror
// succs.
func TestEveryBlockConsistent(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "funcs.go"), nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		g := cfg.Build(fd.Name.Name, fd.Body)
		for _, b := range g.Blocks {
			if b.Cond != nil {
				if len(b.Succs) != 2 {
					t.Errorf("%s .%d: cond block has %d succs", g.Name, b.Index, len(b.Succs))
				}
				if len(b.Nodes) == 0 || b.Nodes[len(b.Nodes)-1] != ast.Node(b.Cond) {
					t.Errorf("%s .%d: cond is not the last node", g.Name, b.Index)
				}
			}
			if b.Range != nil && len(b.Succs) != 2 {
				t.Errorf("%s .%d: range block has %d succs", g.Name, b.Index, len(b.Succs))
			}
			for _, s := range b.Succs {
				found := false
				for _, p := range s.Preds {
					if p == b {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: edge .%d -> .%d missing from preds", g.Name, b.Index, s.Index)
				}
			}
		}
	}
}

// Package funcs is the golden-dump corpus for the CFG builder: each
// function exercises one tricky shape. The file is parsed, never compiled.
package funcs

func straightLine(a, b int) int {
	c := a + b
	c *= 2
	return c
}

func ifElse(x int) int {
	if x > 0 {
		x--
	} else {
		x++
	}
	return x
}

func shortCircuit(p *int, n int) int {
	if p != nil && *p > 0 || n < 0 {
		return *p
	}
	return n
}

func forLoop(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

func wrappedRange(v []uint64, from int) int {
	// A wrapped circular scan: range with break/continue back-edges.
	for wi := range v {
		if wi < from {
			continue
		}
		if v[wi] != 0 {
			return wi
		}
	}
	for wi := range v {
		if v[wi] != 0 {
			return wi
		}
	}
	return -1
}

func labeledGoto(n int) int {
	i := 0
retry:
	i++
	if i < n {
		goto retry
	}
	return i
}

func labeledLoops(grid [][]int) int {
outer:
	for _, row := range grid {
		for _, cell := range row {
			if cell < 0 {
				continue outer
			}
			if cell == 0 {
				break outer
			}
		}
	}
	return 0
}

func switchTag(x int) string {
	switch x {
	case 0, 1:
		return "small"
	case 2:
		fallthrough
	case 3:
		return "medium"
	default:
		return "large"
	}
}

func switchNoTag(x int) int {
	switch {
	case x > 10:
		x /= 2
	case x > 0:
		x--
	}
	return x
}

func typeSwitch(v any) int {
	switch t := v.(type) {
	case int:
		return t
	case nil:
		return 0
	default:
		return -1
	}
}

func selectLoop(a, b chan int, done chan struct{}) int {
	total := 0
	for {
		select {
		case x := <-a:
			total += x
		case y := <-b:
			total -= y
		case <-done:
			return total
		}
	}
}

func deferPanicReturn(f func() error) error {
	defer close(make(chan int))
	if f == nil {
		panic("nil f")
	}
	if err := f(); err != nil {
		return err
	}
	return nil
}

// Package cfg builds intra-function control-flow graphs over go/ast, the
// flow-sensitive tier underneath the arvivet analyzers (nilness, hotpanic,
// the CFG-aware shadow liveness and bitveclen provenance). It is purely
// syntactic — no type information is needed to build a graph — and
// stdlib-only, playing the role golang.org/x/tools/go/cfg plays for the
// x/tools analyzers. The lowering rules and the analyses built on top are
// documented in DESIGN.md's flow-sensitive contracts section.
//
// A Graph is a list of basic blocks. Block 0 is the entry; a distinguished
// exit block collects every return edge and holds the function's deferred
// calls (they run between any return and the actual exit, which is what
// makes liveness through defers come out right). Within a block, Nodes are
// the statements and condition expressions in evaluation order.
//
// Branching is explicit so dataflow analyses can refine facts per edge:
//
//   - A block with Cond != nil ends in a boolean branch: Succs[0] is the
//     true edge, Succs[1] the false edge. Short-circuit && and || are split
//     into separate condition blocks, so every Cond is an atomic condition
//     and a refinement like "x != nil" or "i < len(s)" applies exactly on
//     its edge.
//   - A block with Range != nil is a range-loop header: Succs[0] iterates
//     (the key/value facts hold there), Succs[1] leaves the loop.
//   - Any other block with multiple successors (select, switch case tests)
//     chooses nondeterministically as far as the analyses are concerned.
//
// panic calls terminate their block with no successors; return edges go to
// the exit block; goto, labeled break and labeled continue resolve to their
// targets. Statements made unreachable by a terminator land in successor-
// less, predecessor-less blocks so analyses still see their syntax.
package cfg

import (
	"go/ast"
	"go/token"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Name labels the graph in dumps (the function name).
	Name string
	// Blocks holds every block; Blocks[0] is the entry. Order is stable
	// for a given body (creation order), so dumps are deterministic.
	Blocks []*Block
	// Exit is the single exit block: every return edge lands here, and its
	// Nodes are the function's deferred calls in reverse lexical order.
	Exit *Block
}

// Block is one basic block.
type Block struct {
	Index int
	Kind  string
	// Nodes are the statements and condition expressions evaluated in this
	// block, in order. When Cond is set it is also the last node.
	Nodes []ast.Node
	// Cond, when non-nil, is the atomic boolean condition the block
	// branches on: Succs[0] is the true edge, Succs[1] the false edge.
	Cond ast.Expr
	// Range, when non-nil, marks a range-loop header: Succs[0] is the
	// iteration edge (loop body), Succs[1] the done edge.
	Range *ast.RangeStmt
	Succs []*Block
	Preds []*Block
}

// builder threads the current block through statement construction.
type builder struct {
	g     *Graph
	cur   *Block
	exit  *Block
	scope []ctrlScope
	// labels maps a label name to its target block (the statement after
	// the label), created on demand so forward gotos resolve.
	labels map[string]*Block
	// pendingLabel is the label naming the next loop/switch/select, so
	// labeled break/continue resolve to the right construct.
	pendingLabel string
}

// ctrlScope is one enclosing breakable construct; continueTo is nil for
// switch and select.
type ctrlScope struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

// Build constructs the CFG of one function body. The name only labels
// dumps; pass the function's name (or a synthetic one for func literals).
func Build(name string, body *ast.BlockStmt) *Graph {
	g := &Graph{Name: name}
	b := &builder{g: g, labels: make(map[string]*Block)}
	entry := b.newBlock("entry")
	b.exit = b.newBlock("exit")
	g.Exit = b.exit
	b.cur = entry
	b.stmtList(body.List)
	b.jump(b.exit)

	// Deferred calls run between every return and the real exit; surface
	// them in the exit block in reverse lexical order (LIFO, as close as a
	// static order gets to the dynamic one).
	var defers []ast.Node
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok {
				defers = append(defers, d.Call)
			}
		}
	}
	for i := len(defers) - 1; i >= 0; i-- {
		b.exit.Nodes = append(b.exit.Nodes, defers[i])
	}

	g.prune()
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// prune drops empty unreachable stub blocks (no nodes, no predecessors —
// the fresh blocks opened after return/panic/goto when nothing followed)
// and renumbers. Unreachable blocks that hold statements are kept so
// analyses still see their syntax.
func (g *Graph) prune() {
	for {
		nPreds := make(map[*Block]int)
		for _, blk := range g.Blocks {
			for _, s := range blk.Succs {
				nPreds[s]++
			}
		}
		kept := g.Blocks[:0]
		removed := false
		for _, blk := range g.Blocks {
			if blk != g.Blocks[0] && blk != g.Exit && len(blk.Nodes) == 0 && nPreds[blk] == 0 {
				removed = true
				continue
			}
			kept = append(kept, blk)
		}
		g.Blocks = kept
		if !removed {
			break
		}
		dead := make(map[*Block]bool)
		for _, blk := range g.Blocks {
			dead[blk] = false
		}
		for _, blk := range g.Blocks {
			succs := blk.Succs[:0]
			for _, s := range blk.Succs {
				if _, ok := dead[s]; ok {
					succs = append(succs, s)
				}
			}
			blk.Succs = succs
		}
	}
	for i, blk := range g.Blocks {
		blk.Index = i
	}
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump ends the current block with an unconditional edge to dst and leaves
// no current block.
func (b *builder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
		b.cur = nil
	}
}

// startUnreachable opens a fresh block for statements that follow a
// terminator; it has no predecessors.
func (b *builder) startUnreachable() {
	b.cur = b.newBlock("unreachable")
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.startUnreachable()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	if b.cur == nil {
		b.startUnreachable()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.EmptyStmt:
		// nothing
	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.jump(target)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur = nil // panic: no fallthrough to the next statement
			b.startUnreachable()
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.exit)
		b.startUnreachable()
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	default:
		// Assign, IncDec, Decl, Send, Defer, Go: straight-line nodes.
		b.add(s)
	}
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.scope) - 1; i >= 0; i-- {
			if label == "" || b.scope[i].label == label {
				b.jump(b.scope[i].breakTo)
				b.startUnreachable()
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.scope) - 1; i >= 0; i-- {
			if b.scope[i].continueTo != nil && (label == "" || b.scope[i].label == label) {
				b.jump(b.scope[i].continueTo)
				b.startUnreachable()
				return
			}
		}
	case token.GOTO:
		if s.Label != nil {
			b.jump(b.labelBlock(s.Label.Name))
			b.startUnreachable()
			return
		}
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt; nothing to do here.
		return
	}
	// Malformed branch (no matching scope): treat as a terminator so the
	// graph stays well formed on code the type checker would reject anyway.
	b.cur = nil
	b.startUnreachable()
}

// cond splits e into atomic condition blocks: the current block chain
// evaluates e and branches to t when true, f when false.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	if b.cur == nil {
		b.startUnreachable()
	}
	leaf := ast.Unparen(e)
	b.cur.Nodes = append(b.cur.Nodes, leaf)
	b.cur.Cond = leaf
	b.cur.Succs = append(b.cur.Succs, t, f)
	b.cur = nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	els := done
	if s.Else != nil {
		els = b.newBlock("if.else")
	}
	b.cond(s.Cond, then, els)
	b.cur = then
	b.stmtList(s.Body.List)
	b.jump(done)
	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else)
		b.jump(done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		contTo = post
	}
	b.jump(head)
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, done)
	} else {
		b.jump(body)
	}
	b.cur = body
	b.scope = append(b.scope, ctrlScope{label: label, breakTo: done, continueTo: contTo})
	b.stmtList(s.Body.List)
	b.scope = b.scope[:len(b.scope)-1]
	b.jump(contTo)
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.jump(head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.jump(head)
	head.Nodes = append(head.Nodes, s)
	head.Range = s
	head.Succs = append(head.Succs, body, done)
	b.cur = body
	b.scope = append(b.scope, ctrlScope{label: label, breakTo: done, continueTo: head})
	b.stmtList(s.Body.List)
	b.scope = b.scope[:len(b.scope)-1]
	b.jump(head)
	b.cur = done
}

// switchStmt lowers an expression switch to a chain of case tests. With a
// tag, each test block holds the clause's expressions and branches
// two ways (matched body / next test) without a refinable condition; a
// tagless switch is an if/else-if chain, so each case expression becomes an
// atomic condition block. The default clause runs after every test misses.
func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	done := b.newBlock("switch.done")
	clauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	var defaultBody *Block
	for i, c := range clauses {
		bodies[i] = b.newBlock("case.body")
		if c.List == nil {
			defaultBody = bodies[i]
		}
	}
	noMatch := done
	if defaultBody != nil {
		noMatch = defaultBody
	}

	// Test chain in source order, skipping default.
	for i, c := range clauses {
		if c.List == nil {
			continue
		}
		// Where a miss goes: the next non-default test, else noMatch.
		next := noMatch
		for j := i + 1; j < len(clauses); j++ {
			if clauses[j].List != nil {
				next = b.newBlock("case.test")
				break
			}
		}
		if s.Tag == nil {
			// if/else-if chain: each expression is an atomic condition.
			var or ast.Expr = c.List[0]
			for _, e := range c.List[1:] {
				or = &ast.BinaryExpr{X: or, OpPos: e.Pos(), Op: token.LOR, Y: e}
			}
			b.cond(or, bodies[i], next)
		} else {
			if b.cur == nil {
				b.startUnreachable()
			}
			for _, e := range c.List {
				b.cur.Nodes = append(b.cur.Nodes, e)
			}
			b.cur.Succs = append(b.cur.Succs, bodies[i], next)
			b.cur = nil
		}
		if next != noMatch {
			b.cur = next
		}
	}
	if b.cur != nil {
		// No non-default tests at all: fall straight through.
		b.jump(noMatch)
	}

	b.scope = append(b.scope, ctrlScope{label: label, breakTo: done})
	for i, c := range clauses {
		b.cur = bodies[i]
		b.stmtList(c.Body)
		if fallsThrough(c.Body) && i+1 < len(clauses) {
			b.jump(bodies[i+1])
		} else {
			b.jump(done)
		}
	}
	b.scope = b.scope[:len(b.scope)-1]
	b.cur = done
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	done := b.newBlock("typeswitch.done")
	clauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	var defaultBody *Block
	for i, c := range clauses {
		bodies[i] = b.newBlock("typecase.body")
		if c.List == nil {
			defaultBody = bodies[i]
		}
	}
	noMatch := done
	if defaultBody != nil {
		noMatch = defaultBody
	}
	for i, c := range clauses {
		if c.List == nil {
			continue
		}
		next := noMatch
		for j := i + 1; j < len(clauses); j++ {
			if clauses[j].List != nil {
				next = b.newBlock("typecase.test")
				break
			}
		}
		if b.cur == nil {
			b.startUnreachable()
		}
		b.cur.Succs = append(b.cur.Succs, bodies[i], next)
		b.cur = nil
		if next != noMatch {
			b.cur = next
		}
	}
	if b.cur != nil {
		b.jump(noMatch)
	}
	b.scope = append(b.scope, ctrlScope{label: label, breakTo: done})
	for i, c := range clauses {
		b.cur = bodies[i]
		b.stmtList(c.Body)
		b.jump(done) // no fallthrough in type switches
	}
	b.scope = b.scope[:len(b.scope)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		b.startUnreachable()
		head = b.cur
	}
	done := b.newBlock("select.done")
	b.cur = nil
	b.scope = append(b.scope, ctrlScope{label: label, breakTo: done})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock("select.comm")
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	b.scope = b.scope[:len(b.scope)-1]
	// select{} with no clauses blocks forever: done is unreachable then.
	b.cur = done
}

// fallsThrough reports whether a case body ends in a fallthrough statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	bs, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && bs.Tok == token.FALLTHROUGH
}

// isPanicCall reports whether e is a direct call of the panic builtin.
// Purely syntactic (cfg has no type information): a local function named
// panic would be misclassified, which only makes the graph conservative
// for code nobody writes.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dump renders the graph in a deterministic, diffable text form for golden
// tests. One block per paragraph:
//
//	.2 for.head
//	    i < len(xs)
//	    if -> .3 else -> .4
//
// Nodes print as single-space-normalized source text; the terminator line
// spells the branch kind (if/range/select or a plain ->). A block with no
// successors prints "(terminal)".
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s\n", g.Name)
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, ".%d %s\n", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			if blk.Cond != nil && n == blk.Cond {
				continue // rendered on the terminator line
			}
			fmt.Fprintf(&sb, "    %s\n", nodeText(fset, n))
		}
		sb.WriteString("    " + g.terminator(fset, blk) + "\n")
	}
	return sb.String()
}

func (g *Graph) terminator(fset *token.FileSet, blk *Block) string {
	switch {
	case blk.Cond != nil:
		return fmt.Sprintf("if %s -> .%d else -> .%d",
			nodeText(fset, blk.Cond), blk.Succs[0].Index, blk.Succs[1].Index)
	case blk.Range != nil:
		return fmt.Sprintf("range -> .%d done -> .%d",
			blk.Succs[0].Index, blk.Succs[1].Index)
	case len(blk.Succs) == 0:
		return "(terminal)"
	default:
		parts := make([]string, len(blk.Succs))
		for i, s := range blk.Succs {
			parts[i] = fmt.Sprintf(".%d", s.Index)
		}
		return "-> " + strings.Join(parts, " ")
	}
}

// nodeText renders one node as whitespace-normalized source text.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf strings.Builder
	if rs, ok := n.(*ast.RangeStmt); ok {
		// The body is its own block; print only the header.
		buf.WriteString("for ")
		if rs.Key != nil {
			printNode(&buf, fset, rs.Key)
			if rs.Value != nil {
				buf.WriteString(", ")
				printNode(&buf, fset, rs.Value)
			}
			buf.WriteString(" " + rs.Tok.String() + " ")
		}
		buf.WriteString("range ")
		printNode(&buf, fset, rs.X)
	} else {
		printNode(&buf, fset, n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

func printNode(sb *strings.Builder, fset *token.FileSet, n ast.Node) {
	if err := printer.Fprint(sb, fset, n); err != nil {
		fmt.Fprintf(sb, "<print error: %v>", err)
	}
}

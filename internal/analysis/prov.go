package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// ProvKey is a resolved length-provenance origin. Two slice/vector values
// are provably equal length when their keys are equal: same allocation
// expression, or same //arvi:len dimension reached from the same base
// object.
type ProvKey struct {
	Kind string       // "new" (one allocation expression) or "dim" (//arvi:len tag)
	Obj  types.Object // base object for "dim"; nil for "new"
	Text string       // allocation size text for "new", dimension tag for "dim"
}

// ProvFact is the flow-sensitive provenance lattice: the provenance every
// tracked local definitely has on all paths to a point. Absent = unknown.
// The join is pointwise agreement, so an alias assigned the same dimension
// on both arms of a branch stays resolved after the merge.
type ProvFact map[types.Object]ProvKey

// ProvSpec returns the dataflow problem computing ProvFacts over one
// function body. excluded holds objects that must never be tracked
// (address-taken locals); compute it with AddressTaken.
func ProvSpec(w *World, info *types.Info, excluded map[types.Object]bool) dataflow.Spec[ProvFact] {
	return dataflow.Spec[ProvFact]{
		Forward:  true,
		Boundary: func() ProvFact { return ProvFact{} },
		Transfer: func(n ast.Node, f ProvFact) ProvFact {
			return ProvTransfer(w, info, excluded, n, f)
		},
		Join:  ProvJoin,
		Clone: CloneProv,
		Equal: EqualProv,
	}
}

// ProvTransfer applies one CFG node's effect to a provenance fact.
func ProvTransfer(w *World, info *types.Info, excluded map[types.Object]bool, n ast.Node, f ProvFact) ProvFact {
	set := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || id.Name == "_" || excluded[obj] {
			return
		}
		if rhs != nil {
			if k, ok := ResolveProv(w, info, f, rhs); ok {
				f[obj] = k
				return
			}
		}
		delete(f, obj)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					set(id, n.Rhs[i])
				}
			}
		} else {
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					set(id, nil)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && len(vs.Values) == len(vs.Names) {
						set(name, vs.Values[i])
					} else {
						set(name, nil)
					}
				}
			}
		}
	case *ast.RangeStmt:
		for _, x := range []ast.Expr{n.Key, n.Value} {
			if id, ok := x.(*ast.Ident); ok && id.Name != "_" {
				set(id, nil)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			set(id, nil)
		}
	}
	return f
}

// ProvJoin keeps only entries present and equal in both facts.
func ProvJoin(dst, src ProvFact) ProvFact {
	for obj, k := range dst {
		if sk, ok := src[obj]; !ok || sk != k {
			delete(dst, obj)
		}
	}
	return dst
}

func CloneProv(f ProvFact) ProvFact {
	c := make(ProvFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func EqualProv(a, b ProvFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// ResolveProv computes an expression's provenance key: a bitvec.New call,
// an //arvi:len-tagged field or method on a resolvable base, a conversion
// of either, or a local the fact map has already resolved.
func ResolveProv(w *World, info *types.Info, f ProvFact, e ast.Expr) (ProvKey, bool) {
	for depth := 0; depth < 8; depth++ {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				return ProvKey{}, false
			}
			k, ok := f[obj]
			return k, ok
		case *ast.SelectorExpr:
			sel, ok := info.Selections[x]
			if !ok {
				return ProvKey{}, false
			}
			kind := "dim"
			dim, tagged := w.LenDim[sel.Obj()]
			if !tagged {
				// An //arvi:mask field is provenance too: a local copy of
				// b.mask keeps licensing x&mask indexing (hotpanic).
				if dim, tagged = w.MaskDim[sel.Obj()]; !tagged {
					return ProvKey{}, false
				}
				kind = "mask"
			}
			base, ok := BaseObject(info, x.X)
			if !ok {
				return ProvKey{}, false
			}
			return ProvKey{Kind: kind, Obj: base, Text: dim}, true
		case *ast.CallExpr:
			// Conversion (e.g. bitvec.Vec(x)): trace the operand.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				e = x.Args[0]
				continue
			}
			fn := StaticCallee(info, x)
			if fn == nil {
				return ProvKey{}, false
			}
			// bitvec.New(n): same size expression, same length.
			if fn.Name() == "New" && fn.Pkg() != nil && fn.Pkg().Path() == w.Module+"/internal/bitvec" && len(x.Args) == 1 {
				return ProvKey{Kind: "new", Text: types.ExprString(x.Args[0])}, true
			}
			// A method tagged //arvi:len returns a vector of that dimension;
			// key it by the base object the method was called on.
			if dim, tagged := w.LenDim[fn]; tagged {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if base, ok := BaseObject(info, sel.X); ok {
						return ProvKey{Kind: "dim", Obj: base, Text: dim}, true
					}
				}
			}
			return ProvKey{}, false
		default:
			return ProvKey{}, false
		}
	}
	return ProvKey{}, false
}

// BaseObject resolves the object a selector chain is rooted at (the d in
// d.row(s) or d.valid).
func BaseObject(info *types.Info, e ast.Expr) (types.Object, bool) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj, true
		}
	}
	return nil, false
}

// AddressTaken collects the locals whose address is taken inside body, or
// that are written from inside a nested function literal: flow-sensitive
// analyses cannot track them and must leave them unknown.
func AddressTaken(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	note := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	var inLit int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				note(n.X)
			}
		case *ast.FuncLit:
			inLit++
			ast.Inspect(n.Body, walk)
			inLit--
			return false
		case *ast.AssignStmt:
			if inLit > 0 {
				for _, lhs := range n.Lhs {
					note(lhs)
				}
			}
		case *ast.IncDecStmt:
			if inLit > 0 {
				note(n.X)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// InspectNode visits one CFG node's subtree for checking, without crossing
// into regions that other blocks own: function literal bodies (each
// literal gets its own graph via FuncGraphs) and a range statement's body
// (its statements are nodes of the range-body block).
func InspectNode(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
			if e != nil {
				InspectNode(e, f)
			}
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	})
}

// FuncGraphs builds the CFG of fd's body and of every function literal
// nested in it, outermost first. Each graph is analyzed independently:
// facts do not flow across the closure boundary in either direction.
func FuncGraphs(name string, body *ast.BlockStmt) []*cfg.Graph {
	graphs := []*cfg.Graph{cfg.Build(name, body)}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			graphs = append(graphs, cfg.Build(name+".func", lit.Body))
		}
		return true
	})
	return graphs
}

// Package analysistest runs an arvivet analyzer over a fixture package
// and checks its diagnostics against // want expectations, in the style
// of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under the analyzer's testdata/src/<name>/ directory as
// an ordinary Go package (it may import real module packages such as
// repro/internal/bitvec). Lines that should produce a diagnostic carry a
// trailing expectation comment:
//
//	v.Or(w) // want `cannot prove the operands`
//
// The backquoted string is a regular expression matched against the
// diagnostic message; several expectations may sit on one line. Every
// expectation must be matched by a diagnostic on its line and every
// diagnostic must match an expectation, so fixtures pin both the positive
// and the negative behaviour of an analyzer.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one // want pattern at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the backquoted patterns of a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads testdata/src/<name> relative to the caller's package
// directory and checks the analyzer's diagnostics against the fixture's
// // want comments.
func Run(t *testing.T, a *analysis.Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	world, err := analysis.LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(world, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	diags = append(world.Malformed, diags...)

	expects := collectWants(t, world)

	for _, d := range diags {
		matched := false
		for _, ex := range expects {
			if ex.file == d.Pos.Filename && ex.line == d.Pos.Line && ex.re.MatchString(d.Message) {
				ex.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ex := range expects {
		if !ex.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", ex.file, ex.line, ex.re)
		}
	}
}

// collectWants scans the fixture's comments for // want expectations.
func collectWants(t *testing.T, world *analysis.World) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range world.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := world.Fset.Position(c.Pos())
					ms := wantRE.FindAllStringSubmatch(text, -1)
					if len(ms) == 0 {
						t.Fatalf("%s:%d: malformed want comment (patterns must be backquoted)", pos.Filename, pos.Line)
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
						}
						out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return out
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// Load builds a World for the packages matching patterns (resolved in
// dir), using the standard toolchain as the source of truth:
//
//   - `go list -export -deps -json` enumerates the import graph in
//     dependency order and compiles export data for every package.
//   - Packages belonging to the current module are parsed and
//     type-checked from source — in that dependency order, with each
//     package's importer preferring the already-checked source packages —
//     so one types.Object identity space spans the whole module and the
//     World's annotation maps (keyed by *types.Func / *types.Var) resolve
//     across package boundaries without fact serialization.
//   - Out-of-module imports (the standard library) are loaded from the
//     compiler's export data.
//
// Only non-test sources are loaded: the contracts the suite enforces are
// production-tree properties, and `go list` applies build constraints, so
// tag-gated files (e.g. bitvecdebug) follow the default build.
func Load(dir string, patterns ...string) (*World, error) {
	modPath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exportFiles := make(map[string]string)
	srcPkgs := make(map[string]*types.Package)
	imp := &worldImporter{srcPkgs: srcPkgs}
	imp.exp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Export != "" {
			exportFiles[lp.ImportPath] = lp.Export
		}
		inModule := lp.Module != nil && lp.Module.Path == modPath
		if !inModule {
			continue
		}
		pkg, err := checkPackage(fset, lp, imp)
		if err != nil {
			return nil, err
		}
		srcPkgs[lp.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no module packages matched %v", patterns)
	}
	return buildWorld(fset, modPath, pkgs), nil
}

// modulePath reports the module the directory belongs to.
func modulePath(dir string) (string, error) {
	out, err := runGo(dir, "list", "-m")
	if err != nil {
		return "", err
	}
	mod := strings.TrimSpace(string(out))
	if mod == "" {
		return "", fmt.Errorf("analysis: %s is not inside a module", dir)
	}
	return mod, nil
}

// goList runs `go list -export -deps -json` over the patterns and decodes
// the package stream (dependency order: every package follows its deps).
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// runGo executes the go tool in dir and returns stdout, folding stderr
// into the error on failure.
func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// checkPackage parses and type-checks one module package from source.
func checkPackage(fset *token.FileSet, lp *listedPackage, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// worldImporter resolves imports for source-checked module packages:
// module-internal imports come from the packages already checked from
// source (dependency order guarantees they exist), everything else from
// compiler export data.
type worldImporter struct {
	srcPkgs map[string]*types.Package
	exp     types.Importer
}

func (im *worldImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.srcPkgs[path]; ok {
		return p, nil
	}
	return im.exp.Import(path)
}

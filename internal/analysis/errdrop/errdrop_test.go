package errdrop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "e")
}

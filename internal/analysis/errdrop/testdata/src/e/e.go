// Package e exercises the errdrop analyzer: dropped error results and
// live shadowed error variables are flagged; explicit discards, justified
// drops, init-clause scoping and never-failing writers are not.
package e

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
)

func drops(path string) error {
	os.Remove(path) // want `result of os.Remove includes an error that is dropped`
	_ = os.Remove(path)
	//arvi:errdrop-ok best-effort cleanup of a temp file
	os.Remove(path)
	//arvi:errdrop-ok
	os.Remove(path) // want `needs a justification`
	var b strings.Builder
	b.WriteString("builders cannot fail")
	fmt.Println("stdout printing is exempt")
	h := sha256.New()
	h.Write([]byte(path)) // hash.Hash documents that Write never fails

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if _, err := f.Stat(); err != nil {
		_ = f.Close()
		return err
	}
	data := make([]byte, 4)
	if len(data) > 0 {
		_, err := f.Read(data) // want `shadows the error variable`
		_ = err
	}
	_ = f.Close()
	return err
}

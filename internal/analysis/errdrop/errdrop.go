// Package errdrop implements the arvivet analyzer that keeps error values
// from disappearing.
//
// The sim/server tiers promise the errors.Join partial-result contract:
// a sweep returns every cell it could compute plus the joined errors of
// the cells it could not. That contract dies silently the moment a callee
// error is dropped on the floor, so errdrop flags:
//
//   - call statements whose result includes an error that nobody reads
//     (e.g. a bare os.Remove(...) or w.Write(...)). Explicitly assigning
//     the error to _ is allowed — it is visible intent a reviewer can
//     veto — as are println-to-stderr style calls and writers that
//     document they cannot fail (strings.Builder, bytes.Buffer, hash.Hash).
//   - short variable declarations that shadow an error variable from an
//     outer scope of the same function (outside if/for/switch init
//     clauses) while the outer error is still live — read again after the
//     shadowing scope closes, before being rewritten. That is the classic
//     way a checked error silently replaces the one that was supposed to
//     be returned; shadows of a dead error are the ordinary check-and-fail
//     idiom and stay quiet.
//
// Suppress a deliberate drop with //arvi:errdrop-ok <why> on the line.
package errdrop

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "error results must be read, explicitly discarded, or justified; no shadowed errors",
	Run:  run,
}

// neverFails lists methods whose error result is documented to always be
// nil; dropping it is idiomatic, not a contract violation.
var neverFails = map[string]bool{
	"(*strings.Builder).Write":       true,
	"(*strings.Builder).WriteString": true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*bytes.Buffer).Write":          true,
	"(*bytes.Buffer).WriteString":    true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,
	"(hash.Hash).Write":              true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	inits := initStmts(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDroppedCall(pass, call)
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && !inits[n] {
				checkShadowedError(pass, fd, n)
			}
		}
		return true
	})
}

// checkDroppedCall flags a call statement whose error result is unread.
func checkDroppedCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if !returnsError(info, call) {
		return
	}
	// hash.Hash documents that Write never returns an error, but the
	// method resolves to the embedded (io.Writer).Write, so the callee
	// name cannot identify it; the receiver's static type can.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := info.TypeOf(sel.X); t != nil && types.TypeString(t, nil) == "hash.Hash" {
			return
		}
	}
	if name := calleeName(info, call); name != "" {
		if neverFails[name] {
			return
		}
		// Diagnostic printing to the user's terminal: the write either
		// works or there is nowhere to report that it did not.
		if strings.HasPrefix(name, "fmt.Print") || strings.HasPrefix(name, "fmt.Fprint") {
			return
		}
	}
	if d, ok := pass.World.LineDirective(call.Pos(), "errdrop-ok"); ok {
		if d.Arg == "" {
			pass.Reportf(call.Pos(), "//arvi:errdrop-ok needs a justification")
		}
		return
	}
	pass.Reportf(call.Pos(), "result of %s includes an error that is dropped (handle it, assign to _, or justify with //arvi:errdrop-ok)", callDesc(info, call))
}

// checkShadowedError flags `x, err := ...` where err redeclares an
// error-typed variable of an outer scope in the same function.
func checkShadowedError(pass *analysis.Pass, fd *ast.FuncDecl, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil || !isErrorType(obj.Type()) {
			continue // not newly declared here, or not an error
		}
		scope := obj.Parent()
		if scope == nil || scope.Parent() == nil {
			continue
		}
		_, outer := scope.Parent().LookupParent(id.Name, as.Pos())
		ov, ok := outer.(*types.Var)
		if !ok || !isErrorType(ov.Type()) {
			continue
		}
		// Only function-local shadowing: the outer declaration must live
		// inside this function.
		if ov.Pos() <= fd.Pos() || ov.Pos() >= fd.End() {
			continue
		}
		// The shadow is only hazardous if the outer error can be read
		// after control leaves the shadowing scope while still holding
		// its stale value (CFG-path-aware, like the shadow analyzer).
		if !analysis.VarReadAfter(info, fd.Body, ov, scope.Pos(), scope.End()) {
			continue
		}
		if d, ok := pass.World.LineDirective(as.Pos(), "errdrop-ok"); ok {
			if d.Arg == "" {
				pass.Reportf(as.Pos(), "//arvi:errdrop-ok needs a justification")
			}
			continue
		}
		pass.Reportf(as.Pos(), "declaration of %q shadows the error variable declared at %s (use = or rename)",
			id.Name, pass.World.Fset.Position(ov.Pos()))
	}
}

// initStmts collects the init clauses of if/for/switch statements, where
// `err :=` shadowing is the scoped-check idiom rather than a bug.
func initStmts(body *ast.BlockStmt) map[ast.Stmt]bool {
	out := make(map[ast.Stmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if n.Init != nil {
				out[n.Init] = true
			}
		case *ast.ForStmt:
			if n.Init != nil {
				out[n.Init] = true
			}
		case *ast.SwitchStmt:
			if n.Init != nil {
				out[n.Init] = true
			}
		case *ast.TypeSwitchStmt:
			if n.Init != nil {
				out[n.Init] = true
			}
		}
		return true
	})
	return out
}

// returnsError reports whether any result of the call is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// calleeName renders the callee in the form used by the neverFails table:
// pkg.Func, (pkg.Type).Method or (*pkg.Type).Method.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.FullName()
		}
	case *ast.SelectorExpr:
		var obj types.Object
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
		if fn, ok := obj.(*types.Func); ok {
			return fn.FullName()
		}
	}
	return ""
}

// callDesc names the call for the diagnostic, falling back to "call" for
// indirect calls.
func callDesc(info *types.Info, call *ast.CallExpr) string {
	if name := calleeName(info, call); name != "" {
		return name
	}
	return "call"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// Package n exercises the nilness analyzer: only definite nil
// dereferences and nil-map writes report; anything unknown stays quiet.
package n

type box struct{ v int }

type speaker interface{ speak() }

func zeroValues() {
	var p *box
	_ = p.v // want `field or method access through nil pointer p`
	var m map[string]int
	m["k"] = 1 // want `write to nil map m`
	var i speaker
	i.speak() // want `method call on nil interface i`
	var f func()
	f() // want `call of nil function f`
}

func derefStar() int {
	var p *int
	return *p // want `dereference of nil pointer p`
}

func guarded(p *box) int {
	if p == nil {
		return 0
	}
	return p.v // non-nil on this path: proven by the guard
}

func guardedWrong(p *box) int {
	if p != nil {
		return 0
	}
	return p.v // want `field or method access through nil pointer p`
}

func reassigned() int {
	var p *box
	p = &box{v: 1}
	return p.v // non-nil: literal address
}

func mergeLosesProof(cond bool) int {
	var p *box
	if cond {
		p = &box{}
	}
	// p is nil on one path, non-nil on the other: unknown, no report.
	return p.v
}

func mergeKeepsNil(cond bool) int {
	var p *box
	if cond {
		p = nil
	}
	return p.v // want `field or method access through nil pointer p`
}

func loopRefinement(ps []*box) int {
	total := 0
	for _, p := range ps {
		if p == nil {
			continue
		}
		total += p.v // the continue guard proves non-nil here
	}
	return total
}

func mapOps() {
	m := make(map[string]int)
	m["k"] = 1 // non-nil: make
	var dead map[string]int
	_ = dead["k"] // reads of a nil map are legal
	dead["k"]++   // want `write to nil map dead`
}

func conversions() {
	p := (*box)(nil)
	_ = p.v // want `field or method access through nil pointer p`
}

func waived() int {
	var p *box
	//arvi:nonnil exercised to prove the waiver path, never executed
	return p.v
	// A bare waiver is rejected:
}

func waivedBare() int {
	var p *box
	//arvi:nonnil
	return p.v // want `//arvi:nonnil needs a justification`
}

func addressTaken() int {
	var p *box
	fill(&p)
	return p.v // p escapes: not tracked, no report
}

func fill(pp **box) { *pp = &box{} }

func closureWrites() int {
	var p *box
	set := func() { p = &box{} }
	set()
	return p.v // written by the closure: not tracked, no report
}

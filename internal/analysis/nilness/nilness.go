// Package nilness implements the arvivet analyzer that reports definite
// nil dereferences and nil-map writes, the flow-sensitive check the
// static-contracts tier documented as out of scope until the CFG layer
// existed.
//
// The analyzer runs a forward dataflow over each function's control-flow
// graph. The fact is, per tracked local, one of three states: definitely
// nil, definitely non-nil, or unknown (absent). Only definite errors are
// reported — a value the analysis cannot prove nil never produces a
// diagnostic, so the pass is quiet by construction and every report is a
// real crash on the path that reaches it:
//
//   - dereferencing a pointer proven nil (*p, p.f, or a method call on p);
//   - calling a method on an interface proven nil;
//   - calling a function value proven nil;
//   - writing to (or updating an element of) a map proven nil.
//
// Facts come from zero-value declarations (var p *T starts nil), literal
// assignments (&x, new, make, composite literals and function literals
// are non-nil; a nil conversion is nil), and branch refinement: on the
// true edge of p == nil the fact p-is-nil holds, on the false edge
// p-is-non-nil, and symmetrically for !=. The join is agreement — a state
// survives a merge only if every incoming path proved it.
//
// Locals whose address is taken, or that a nested function literal
// writes, are never tracked. A site the analyzer gets wrong (say, a
// helper that always panics before the deref) can be waived with
// //arvi:nonnil <why> on the line; a bare waiver is rejected.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the nilness pass.
var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "no definite nil dereference or nil-map write may survive on any path",
	Run:  run,
}

type state uint8

const (
	isNil state = iota + 1
	nonNil
)

// fact maps each tracked local to its proven state; absent = unknown.
type fact map[types.Object]state

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, info: info, excluded: analysis.AddressTaken(info, fd.Body)}
			for _, g := range analysis.FuncGraphs(fd.Name.Name, fd.Body) {
				c.checkGraph(g)
			}
		}
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	info     *types.Info
	excluded map[types.Object]bool
}

func (c *checker) checkGraph(g *cfg.Graph) {
	r := dataflow.Solve(g, dataflow.Spec[fact]{
		Forward:  true,
		Boundary: func() fact { return fact{} },
		Transfer: c.transfer,
		Branch:   c.branch,
		Join: func(dst, src fact) fact {
			for obj, s := range dst {
				if src[obj] != s {
					delete(dst, obj)
				}
			}
			return dst
		},
		Clone: func(f fact) fact {
			out := make(fact, len(f))
			for k, v := range f {
				out[k] = v
			}
			return out
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if b[k] != v {
					return false
				}
			}
			return true
		},
	})
	for _, blk := range g.Blocks {
		if blk == g.Exit || !r.Reached[blk.Index] {
			continue // unreached code cannot crash; exit nodes are defer copies
		}
		f := fact{}
		for k, v := range r.In[blk.Index] {
			f[k] = v
		}
		for _, n := range blk.Nodes {
			c.checkNode(n, f)
			f = c.transfer(n, f)
		}
	}
}

// transfer applies one node's assignments to the fact.
func (c *checker) transfer(n ast.Node, f fact) fact {
	set := func(id *ast.Ident, rhs ast.Expr) {
		obj := c.info.Defs[id]
		if obj == nil {
			obj = c.info.Uses[id]
		}
		if obj == nil || id.Name == "_" || c.excluded[obj] || !nilable(obj.Type()) {
			return
		}
		if rhs != nil {
			if s := c.eval(rhs, f); s != 0 {
				f[obj] = s
				return
			}
		}
		delete(f, obj)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					set(id, n.Rhs[i])
				}
			}
		} else {
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					set(id, nil)
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return f
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				switch {
				case len(vs.Values) == 0:
					// Zero value: nil for every nilable type.
					obj := c.info.Defs[name]
					if obj != nil && name.Name != "_" && !c.excluded[obj] && nilable(obj.Type()) {
						f[obj] = isNil
					}
				case len(vs.Values) == len(vs.Names):
					set(name, vs.Values[i])
				default:
					set(name, nil)
				}
			}
		}
	case *ast.RangeStmt:
		for _, x := range []ast.Expr{n.Key, n.Value} {
			if id, ok := x.(*ast.Ident); ok && id.Name != "_" {
				set(id, nil)
			}
		}
	}
	return f
}

// eval computes the state an expression's value is proven to have.
func (c *checker) eval(e ast.Expr, f fact) state {
	e = ast.Unparen(e)
	if tv, ok := c.info.Types[e]; ok && tv.IsNil() {
		return isNil
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := c.info.Uses[e]; obj != nil {
			return f[obj]
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return nonNil
		}
	case *ast.CompositeLit, *ast.FuncLit:
		return nonNil
	case *ast.CallExpr:
		if tv, ok := c.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.eval(e.Args[0], f) // conversion preserves nilness
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch c.info.Uses[id] {
			case types.Universe.Lookup("new"), types.Universe.Lookup("make"):
				return nonNil
			}
		}
	}
	return 0
}

// branch refines the fact along the edges of a nil-comparison condition.
func (c *checker) branch(b *cfg.Block, f fact, succ int) fact {
	cmp, ok := ast.Unparen(b.Cond).(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
		return f
	}
	literallyNil := func(e ast.Expr) bool {
		tv, ok := c.info.Types[ast.Unparen(e)]
		return ok && tv.IsNil()
	}
	var target ast.Expr
	switch {
	case literallyNil(cmp.Y):
		target = cmp.X
	case literallyNil(cmp.X):
		target = cmp.Y
	default:
		return f
	}
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return f
	}
	obj := c.info.Uses[id]
	if obj == nil || c.excluded[obj] || !nilable(obj.Type()) {
		return f
	}
	onNilEdge := (cmp.Op == token.EQL) == (succ == 0)
	if onNilEdge {
		f[obj] = isNil
	} else {
		f[obj] = nonNil
	}
	return f
}

// checkNode reports the definite-crash sites reachable with fact f.
func (c *checker) checkNode(n ast.Node, f fact) {
	// Map writes appear as assignment targets and element updates.
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				c.checkMapWrite(ix, f)
			}
		}
	case *ast.IncDecStmt:
		if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
			c.checkMapWrite(ix, f)
		}
	}
	analysis.InspectNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.StarExpr:
			if tv, ok := c.info.Types[m.X]; ok && tv.IsValue() {
				if c.provenNil(m.X, f) {
					c.report(m.Pos(), "dereference of nil pointer %s", exprName(m.X))
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := c.info.Selections[m]; ok && c.provenNil(m.X, f) {
				switch sel.Recv().Underlying().(type) {
				case *types.Pointer:
					c.report(m.X.Pos(), "field or method access through nil pointer %s", exprName(m.X))
				case *types.Interface:
					c.report(m.X.Pos(), "method call on nil interface %s", exprName(m.X))
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
				if obj, ok := c.info.Uses[id].(*types.Var); ok && f[obj] == isNil {
					if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
						c.report(m.Pos(), "call of nil function %s", id.Name)
					}
				}
			}
		}
		return true
	})
}

func (c *checker) checkMapWrite(ix *ast.IndexExpr, f fact) {
	tv, ok := c.info.Types[ix.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if c.provenNil(ix.X, f) {
		c.report(ix.Pos(), "write to nil map %s", exprName(ix.X))
	}
}

// provenNil reports whether e is an identifier the fact proves nil.
func (c *checker) provenNil(e ast.Expr, f fact) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.info.Uses[id]
	return obj != nil && f[obj] == isNil
}

// report emits unless the line carries a justified //arvi:nonnil waiver.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if d, ok := c.pass.World.LineDirective(pos, "nonnil"); ok {
		if d.Arg == "" {
			c.pass.Reportf(pos, "//arvi:nonnil needs a justification")
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// nilable reports whether t can hold nil and is a kind the analyzer
// tracks: pointer, map, interface, or function value. Slices and
// channels are excluded — indexing a nil slice of length zero and
// blocking on a nil channel are not the crash class this pass hunts.
func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Interface, *types.Signature:
		return true
	}
	return false
}

func exprName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "value"
}

package nilness_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, nilness.Analyzer, "n")
}

package hotpanic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpanic"
)

func TestHotpanic(t *testing.T) {
	analysistest.Run(t, hotpanic.Analyzer, "h")
}

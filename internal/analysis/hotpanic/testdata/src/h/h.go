// Package h exercises the hotpanic analyzer: every implicit panic site
// in an //arvi:hotpath function must be proven safe or justified.
package h

type table struct {
	//arvi:len entries
	valid []uint64
	//arvi:len entries
	chain []uint64
	//arvi:mask entries
	mask uint32
	//arvi:idx entries
	head int
	buf  []uint64 // untagged: length facts about it are mortal
	n    int
}

func touch(t *table) {}

// coldIndex is not hot: no obligations.
func coldIndex(xs []int, i int) int {
	return xs[i]
}

//arvi:hotpath
func unguarded(t *table, i int) uint64 {
	return t.valid[i] // want `cannot prove 0 <= i < len\(t.valid\)`
}

//arvi:hotpath
func guarded(t *table, i int) uint64 {
	if i < 0 || i >= len(t.valid) {
		return 0
	}
	return t.valid[i] // proven by the dominating guard
}

//arvi:hotpath
func rangeDim(t *table) uint64 {
	var s uint64
	for i := range t.valid {
		s += t.valid[i] // proven by the range header
		s += t.chain[i] // proven: same //arvi:len dimension, same base
	}
	return s
}

//arvi:hotpath
func forLen(t *table) uint64 {
	var s uint64
	for i := 0; i < len(t.valid); i++ {
		s += t.chain[i] // proven: i >= 0 survives the back-edge join
	}
	return s
}

//arvi:hotpath
func dimSurvivesCalls(t *table) uint64 {
	var s uint64
	for i := range t.valid {
		touch(t)
		s += t.chain[i] // proven: //arvi:len is a declared invariant
	}
	return s
}

//arvi:hotpath
func callKillsMortalLen(t *table, i int) uint64 {
	if i < 0 || i >= len(t.buf) {
		return 0
	}
	touch(t)
	return t.buf[i] // want `cannot prove 0 <= i < len\(t.buf\)`
}

//arvi:hotpath
func mortalLenStraightLine(t *table, i int) uint64 {
	if i < 0 || i >= len(t.buf) {
		return 0
	}
	return t.buf[i] // proven: nothing killed the guard facts
}

//arvi:hotpath
func masked(t *table, x uint32) uint64 {
	return t.valid[x&t.mask] // proven: mask and table share a dimension
}

//arvi:hotpath
func maskedAlias(t *table, x uint32) uint64 {
	m := t.mask
	idx := x & m
	return t.valid[idx] // proven: provenance traces m to the mask field
}

//arvi:hotpath
func maskedWrongTable(t, u *table, x uint32) uint64 {
	return u.valid[x&t.mask] // want `cannot prove 0 <= x & t.mask < len\(u.valid\)`
}

// idx is declared to return an in-bounds index for the entries dim.
//
//arvi:mask entries
func (t *table) idx(x uint32) uint32 { return x & t.mask }

//arvi:hotpath
func maskedMethod(t *table, x uint32) uint64 {
	return t.valid[t.idx(x)] // proven: //arvi:mask method on the same base
}

//arvi:hotpath
func maskedMethodLocal(t *table, x uint32) uint64 {
	i := t.idx(x)
	return t.chain[i] // proven: i carries 0 <= i < size(entries)
}

//arvi:hotpath
func maskedMethodWrongBase(t, u *table, x uint32) uint64 {
	return u.valid[t.idx(x)] // want `cannot prove 0 <= t.idx\(x\) < len\(u.valid\)`
}

// wrap is a ring decrement: the result stays a valid entries index.
//
//arvi:idx entries
func (t *table) wrap(e int) int {
	if e == 0 {
		return len(t.valid) - 1
	}
	return e - 1
}

//arvi:hotpath
func idxField(t *table) uint64 {
	return t.valid[t.head] // proven: //arvi:idx declares 0 <= head < size(entries)
}

//arvi:hotpath
func idxFieldLocal(t *table) uint64 {
	e := t.head
	return t.chain[e] // proven: provenance traces e to the idx field
}

//arvi:hotpath
func idxMethod(t *table, e int) uint64 {
	return t.valid[t.wrap(e)] // proven: //arvi:idx method on the same base
}

//arvi:hotpath
func idxFieldWrongBase(t, u *table) uint64 {
	return u.valid[t.head] // want `cannot prove 0 <= t.head < len\(u.valid\)`
}

//arvi:hotpath
func lenAlias(t *table, i int) uint64 {
	n := len(t.buf)
	if i < 0 || i >= n {
		return 0
	}
	return t.buf[i] // proven: n == len(t.buf) substitutes
}

//arvi:hotpath
func arrayConst() int {
	var a [4]int
	return a[3] // proven: constant below the array length
}

//arvi:hotpath
func constAndMask(a *[8]int, x, y int) int {
	return a[(x+y)&7] // proven: AND with a constant bounds any operand
}

//arvi:hotpath
func constAndMaskTooWide(a *[8]int, x int) int {
	return a[x&15] // want `cannot prove 0 <= x & 15 < len\(a\)`
}

//arvi:hotpath
func resliceEmpty(t *table) []uint64 {
	return t.buf[:0] // proven: 0 <= len holds for every length
}

//arvi:hotpath
func arrayGuarded(a *[8]int, i int) int {
	if i >= 0 && i < 8 {
		return a[i] // proven against the array length
	}
	return 0
}

//arvi:hotpath
func divGuarded(a, b int) int {
	if b == 0 {
		return 0
	}
	return a / b // proven: b != 0 on this path
}

//arvi:hotpath
func divUnknown(a, b int) int {
	return a / b // want `cannot prove divisor b is nonzero`
}

//arvi:hotpath
func divConstAndAssign(a, b int) int {
	a /= 8 // proven: constant divisor
	if b > 0 {
		a %= b // proven: positive divisor
	}
	return a
}

//arvi:hotpath
func assertCommaOK(v any) int {
	if n, ok := v.(int); ok {
		return n
	}
	return 0
}

//arvi:hotpath
func assertPanics(v any) int {
	return v.(int) // want `single-result type assertion can panic`
}

//arvi:hotpath
func sliceGuarded(t *table, lo, hi int) []uint64 {
	if lo < 0 || hi > len(t.valid) || lo > hi {
		return nil
	}
	return t.valid[lo:hi] // proven: 0 <= lo <= hi <= len
}

//arvi:hotpath
func sliceBad(xs []uint64, hi int) []uint64 {
	return xs[:hi] // want `cannot prove slice bounds of xs`
}

//arvi:hotpath
func siteWaiver(xs []int, i int) int {
	//arvi:panicfree i is a validated id: callers allocate it from this slice
	return xs[i]
}

//arvi:hotpath
func siteWaiverBare(xs []int, i int) int {
	//arvi:panicfree
	return xs[i] // want `//arvi:panicfree needs a justification`
}

// funcWaiver's whole body rides on one invariant argument.
//
//arvi:hotpath
//arvi:panicfree the dispatcher validates every index before entry
func funcWaiver(xs []int, i, j int) int {
	return xs[i] + xs[j]
}

// staleWaiver no longer has an unprovable site; the waiver must go.
//
//arvi:hotpath
//arvi:panicfree nothing here can panic
func staleWaiver(xs []int) int { // want `stale //arvi:panicfree`
	for i := range xs {
		_ = xs[i]
	}
	return 0
}

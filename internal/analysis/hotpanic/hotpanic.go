// Package hotpanic implements the arvivet analyzer that proves every
// //arvi:hotpath function free of implicit runtime panics. A resident
// arvid daemon runs the hot path on every request; one unguarded index,
// division, or single-result type assertion is a crash, so the sites
// where the compiler would emit a panic check become proof obligations:
//
//   - x[i] and x[lo:hi] on slices, arrays and strings: every bound must
//     be provably within [0, len(x)];
//   - integer / and % (and /=, %=): the divisor must be provably nonzero;
//   - x.(T) in single-result form: always an obligation — use the
//     comma-ok form or justify.
//
// Obligations are discharged by a forward dataflow over the function's
// CFG whose facts are relational must-facts (i < len(v), 0 <= i, n != 0)
// gathered from dominating guards, loop headers and assignments, joined
// by intersection so only path-invariant knowledge survives a merge.
// Length terms are canonicalized through the shared //arvi:len dimension
// provenance, so `for i := range d.valid { d.chainBuf[i] }` proves when
// both fields carry the same dimension tag on the same base. Two further
// dimension rules close the remaining idioms:
//
//   - //arvi:mask <dim> on an integer field asserts it always holds
//     (size of dim) − 1, so x & b.mask indexes any //arvi:len <dim>
//     slice of the same base in bounds; on a method it asserts the
//     result is already such an in-bounds index, covering the
//     `t.table[t.index(pc)]` idiom;
//   - //arvi:idx <dim> on an integer field or method declares the value
//     is always in [0, size of dim) — the maintained-invariant form for
//     ring pointers and wrap arithmetic (d.head, d.entryAt(age)) whose
//     bound is not a bit mask;
//   - inside the bitvec kernels listed in bitveclen.VecKernels, the
//     Vec-typed receiver and parameters form one equal-length group,
//     because bitveclen discharges that proof at every call site.
//
// Facts rooted in mutable memory (selector values, untagged lengths) die
// at calls and pointer stores; //arvi:len, //arvi:mask and //arvi:idx
// facts are declared invariants and survive. An obligation the prover cannot reach
// demands //arvi:panicfree <why> — on the site's line, or on the function
// doc comment to cover a whole body with one invariant argument. A
// function-level waiver with zero unprovable sites is itself reported as
// stale, so waivers cannot outlive the code they excuse. The proof rules
// and waiver economics are documented in
// DESIGN.md's flow-sensitive contracts section.
package hotpanic

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/bitveclen"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the hotpanic pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpanic",
	Doc:  "//arvi:hotpath functions must be provably free of implicit runtime panics",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok || !pass.World.Hotpath[fn] {
				continue
			}
			checkFunc(pass, fd, fn)
		}
	}
	return nil
}

// term is one canonical operand of a relational fact.
type term struct {
	kind byte         // 'c' const, 'v' var, 's' selector value, 'l' syntactic len, 'd' dimension len, 'K' kernel-sibling len
	obj  types.Object // root object for v/s/l/d
	sel  string       // selector path, dimension tag, or kernel id
	c    int64        // constant value for 'c'
}

func constTerm(c int64) term { return term{kind: 'c', c: c} }

// relFact is one must-fact `a op b` with op ∈ {LSS, LEQ, EQL, NEQ}.
// GTR/GEQ are normalized away by swapping the operands.
type relFact struct {
	op   token.Token
	a, b term
}

// fact is the lattice element: relational must-facts plus the shared
// length provenance of locals.
type fact struct {
	rel  map[relFact]bool
	prov analysis.ProvFact
}

func newFact() fact {
	return fact{rel: make(map[relFact]bool), prov: make(analysis.ProvFact)}
}

func cloneFact(f fact) fact {
	c := fact{rel: make(map[relFact]bool, len(f.rel)), prov: analysis.CloneProv(f.prov)}
	for k := range f.rel {
		c.rel[k] = true
	}
	return c
}

func joinFact(dst, src fact) fact {
	for k := range dst.rel {
		if !src.rel[k] {
			delete(dst.rel, k)
		}
	}
	dst.prov = analysis.ProvJoin(dst.prov, src.prov)
	return dst
}

func equalFact(a, b fact) bool {
	if len(a.rel) != len(b.rel) || !analysis.EqualProv(a.prov, b.prov) {
		return false
	}
	for k := range a.rel {
		if !b.rel[k] {
			return false
		}
	}
	return true
}

type checker struct {
	pass     *analysis.Pass
	info     *types.Info
	fn       *types.Func
	excluded map[types.Object]bool
	// siblings is the equal-length Vec group inside a bitvec kernel;
	// nil outside them. siblingID keys the canonical 'K' term.
	siblings   map[types.Object]bool
	siblingID  string
	commaOK    map[*ast.TypeAssertExpr]bool
	waiver     *analysis.Directive // function-level //arvi:panicfree
	waiverUsed bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, fn *types.Func) {
	info := pass.Pkg.Info
	c := &checker{
		pass:     pass,
		info:     info,
		fn:       fn,
		excluded: analysis.AddressTaken(info, fd.Body),
		commaOK:  collectCommaOK(fd.Body),
	}
	if d, ok := pass.World.PanicFree[fn]; ok {
		c.waiver = &d
		if d.Arg == "" {
			pass.Reportf(fd.Name.Pos(), "//arvi:panicfree needs a justification")
		}
	}
	c.initSiblings(fd)

	g := cfg.Build(fd.Name.Name, fd.Body)
	r := dataflow.Solve(g, dataflow.Spec[fact]{
		Forward:  true,
		Boundary: func() fact { return newFact() },
		Transfer: c.transfer,
		Branch:   c.branch,
		Join:     joinFact,
		Clone:    cloneFact,
		Equal:    equalFact,
	})
	for _, blk := range g.Blocks {
		if blk == g.Exit || !r.Reached[blk.Index] {
			continue // exit nodes are defer copies, checked at the defer site
		}
		f := cloneFact(r.In[blk.Index])
		for _, n := range blk.Nodes {
			c.checkNode(n, f)
			f = c.transfer(n, f)
		}
	}
	if c.waiver != nil && !c.waiverUsed && c.waiver.Arg != "" {
		pass.Reportf(fd.Name.Pos(), "stale //arvi:panicfree on %s: every implicit panic site is provable; drop the waiver", fn.Name())
	}
}

// initSiblings builds the equal-length Vec group when fd is one of the
// bitvec kernels whose call sites bitveclen proves.
func (c *checker) initSiblings(fd *ast.FuncDecl) {
	if c.fn.Pkg() == nil || c.fn.Pkg().Path() != c.pass.World.Module+"/internal/bitvec" {
		return
	}
	if !bitveclen.VecKernels[fd.Name.Name] {
		return
	}
	sig := c.fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return
	}
	group := make(map[types.Object]bool)
	add := func(v *types.Var) {
		if named, ok := v.Type().(*types.Named); ok && named.Obj().Name() == "Vec" {
			group[v] = true
		}
	}
	add(sig.Recv())
	for i := 0; i < sig.Params().Len(); i++ {
		add(sig.Params().At(i))
	}
	if len(group) > 1 {
		c.siblings = group
		c.siblingID = c.fn.FullName()
	}
}

// collectCommaOK records the type assertions used in v, ok := x.(T) form.
func collectCommaOK(body *ast.BlockStmt) map[*ast.TypeAssertExpr]bool {
	out := make(map[*ast.TypeAssertExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if ta, ok := ast.Unparen(n.Rhs[0]).(*ast.TypeAssertExpr); ok {
					out[ta] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == 2 && len(n.Values) == 1 {
				if ta, ok := ast.Unparen(n.Values[0]).(*ast.TypeAssertExpr); ok {
					out[ta] = true
				}
			}
		}
		return true
	})
	return out
}

// ---- transfer ----

func (c *checker) transfer(n ast.Node, f fact) fact {
	f.prov = analysis.ProvTransfer(c.pass.World, c.info, c.excluded, n, f.prov)
	// Calls can mutate anything reachable through memory: selector values
	// and untagged lengths die; //arvi:len, //arvi:mask and kernel-group
	// facts are declared invariants and survive.
	if nodeHasImpureCall(c.info, n) {
		c.killMemoryFacts(f)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.transferAssign(n, f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						var rhs ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i]
						} else if len(vs.Values) == 0 {
							// Zero value: integers start at 0.
							c.killObjFacts(f, c.objOf(name))
							if obj := c.objOf(name); obj != nil && isInteger(obj.Type()) {
								f.rel[relFact{op: token.EQL, a: term{kind: 'v', obj: obj}, b: constTerm(0)}] = true
								f.rel[relFact{op: token.LEQ, a: constTerm(0), b: term{kind: 'v', obj: obj}}] = true
							}
							continue
						}
						c.assignTo(f, name, rhs)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			obj := c.objOf(id)
			wasNonneg := obj != nil && c.proveNonneg(ast.Unparen(n.X), f)
			c.killObjFacts(f, obj)
			if n.Tok == token.INC && wasNonneg && obj != nil {
				// i >= 0 survives ++ (overflow wrap is out of scope).
				f.rel[relFact{op: token.LEQ, a: constTerm(0), b: term{kind: 'v', obj: obj}}] = true
			}
		} else {
			c.killHeapWrite(f)
		}
	case *ast.RangeStmt:
		for _, x := range []ast.Expr{n.Key, n.Value} {
			if id, ok := x.(*ast.Ident); ok && id.Name != "_" {
				c.killObjFacts(f, c.objOf(id))
			}
		}
	}
	return f
}

func (c *checker) transferAssign(n *ast.AssignStmt, f fact) {
	if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					c.assignTo(f, id, n.Rhs[i])
				} else {
					c.killHeapWrite(f)
				}
			}
		} else {
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					c.killObjFacts(f, c.objOf(id))
				} else {
					c.killHeapWrite(f)
				}
			}
		}
		return
	}
	// Compound assignment (+=, &=, ...): kill, then keep nonnegativity
	// for the shapes that preserve it.
	lhs := ast.Unparen(n.Lhs[0])
	id, ok := lhs.(*ast.Ident)
	if !ok {
		c.killHeapWrite(f)
		return
	}
	obj := c.objOf(id)
	wasNonneg := obj != nil && c.proveNonneg(lhs, f)
	rhsNonneg := c.proveNonneg(n.Rhs[0], f)
	c.killObjFacts(f, obj)
	if obj == nil {
		return
	}
	keep := false
	switch n.Tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.SHL_ASSIGN:
		keep = wasNonneg && rhsNonneg
	case token.SHR_ASSIGN:
		keep = wasNonneg
	case token.AND_ASSIGN:
		keep = wasNonneg || rhsNonneg
	case token.REM_ASSIGN:
		keep = wasNonneg
	}
	if keep {
		f.rel[relFact{op: token.LEQ, a: constTerm(0), b: term{kind: 'v', obj: obj}}] = true
	}
}

// assignTo kills the target's facts and derives fresh ones from the rhs.
func (c *checker) assignTo(f fact, id *ast.Ident, rhs ast.Expr) {
	obj := c.objOf(id)
	if obj == nil || id.Name == "_" {
		return
	}
	// Evaluate rhs properties against the pre-assignment fact, except
	// self-references (i = i + 1), which the kill would invalidate.
	nonneg := !mentionsObj(c.info, rhs, obj) && c.proveNonneg(rhs, f)
	rt, rtOK := c.termOf(rhs, f)
	if rtOK && termMentions(rt, obj) {
		rtOK = false
	}
	upper, upperOK := c.maskUpper(rhs, f)
	c.killObjFacts(f, obj)
	if c.excluded[obj] || !isInteger(obj.Type()) {
		return
	}
	vt := term{kind: 'v', obj: obj}
	if rtOK {
		f.rel[relFact{op: token.EQL, a: vt, b: rt}] = true
	}
	if nonneg {
		f.rel[relFact{op: token.LEQ, a: constTerm(0), b: vt}] = true
	}
	if upperOK {
		// x := e & b.mask: 0 <= x < size(dim).
		f.rel[relFact{op: token.LSS, a: vt, b: upper}] = true
		f.rel[relFact{op: token.LEQ, a: constTerm(0), b: vt}] = true
	}
}

// maskUpper recognizes expressions provably in [0, size(dim)): `e & m`
// with m an //arvi:mask field, a call of an //arvi:mask-tagged index
// method, or the mask value itself (which equals size − 1). It returns
// the dimension-length term the result is strictly below.
func (c *checker) maskUpper(e ast.Expr, f fact) (term, bool) {
	if dim, root, ok := c.maskKey(e, f); ok {
		// Same canonical form lenTerm produces for the dimension.
		return term{kind: 'd', obj: root, sel: "dim:" + dim}, true
	}
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.AND {
		return term{}, false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if dim, root, ok := c.maskKey(side, f); ok {
			return term{kind: 'd', obj: root, sel: "dim:" + dim}, true
		}
	}
	return term{}, false
}

// maskKey resolves an expression to an //arvi:mask dimension: a tagged
// field selector, a local the provenance facts traced to one, or a call
// of an //arvi:mask-tagged method (whose result is declared to be an
// in-bounds index for the dimension) on a resolvable base.
func (c *checker) maskKey(e ast.Expr, f fact) (dim string, root types.Object, ok bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		sel, selOK := c.info.Selections[x]
		if !selOK {
			return "", nil, false
		}
		dim, tagged := c.pass.World.MaskDim[sel.Obj()]
		if !tagged {
			return "", nil, false
		}
		base, baseOK := analysis.BaseObject(c.info, x.X)
		if !baseOK {
			return "", nil, false
		}
		return dim, base, true
	case *ast.Ident:
		obj := c.info.Uses[x]
		if obj == nil {
			return "", nil, false
		}
		if k, kOK := f.prov[obj]; kOK && k.Kind == "mask" {
			return k.Text, k.Obj, true
		}
	case *ast.CallExpr:
		fn := analysis.StaticCallee(c.info, x)
		if fn == nil {
			return "", nil, false
		}
		dim, tagged := c.pass.World.MaskDim[fn]
		if !tagged {
			return "", nil, false
		}
		sel, selOK := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !selOK {
			return "", nil, false
		}
		base, baseOK := analysis.BaseObject(c.info, sel.X)
		if !baseOK {
			return "", nil, false
		}
		return dim, base, true
	}
	return "", nil, false
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.info.Defs[id]; obj != nil {
		return obj
	}
	return c.info.Uses[id]
}

// killObjFacts removes every fact mentioning a term rooted at obj.
func (c *checker) killObjFacts(f fact, obj types.Object) {
	if obj == nil {
		return
	}
	for k := range f.rel {
		if termMentions(k.a, obj) || termMentions(k.b, obj) {
			delete(f.rel, k)
		}
	}
}

// killHeapWrite removes facts rooted in mutable memory after a store
// through a pointer, selector or index expression.
func (c *checker) killHeapWrite(f fact) {
	for k := range f.rel {
		if memoryTerm(k.a) || memoryTerm(k.b) {
			delete(f.rel, k)
		}
	}
}

func (c *checker) killMemoryFacts(f fact) {
	for k := range f.rel {
		if memoryTerm(k.a) || memoryTerm(k.b) {
			delete(f.rel, k)
		}
	}
}

// memoryTerm reports whether a term reads mutable memory: selector
// values and untagged lengths. Dimension and kernel-group lengths are
// declared invariants.
func memoryTerm(t term) bool {
	return t.kind == 's' || t.kind == 'l'
}

func termMentions(t term, obj types.Object) bool {
	return t.obj == obj
}

// nodeHasImpureCall reports whether the node calls anything that could
// mutate memory: any non-builtin call outside math and math/bits.
func nodeHasImpureCall(info *types.Info, n ast.Node) bool {
	impure := false
	analysis.InspectNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || impure {
			return !impure
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		if fn := analysis.StaticCallee(info, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "math", "math/bits":
				return true
			}
		}
		impure = true
		return false
	})
	return impure
}

func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// ---- branch refinement ----

func (c *checker) branch(b *cfg.Block, f fact, succ int) fact {
	if b.Range != nil {
		if succ == 0 {
			c.rangeFacts(b.Range, f)
		}
		return f
	}
	cmp, ok := ast.Unparen(b.Cond).(*ast.BinaryExpr)
	if !ok {
		return f
	}
	at, aOK := c.termOf(cmp.X, f)
	bt, bOK := c.termOf(cmp.Y, f)
	if !aOK || !bOK {
		return f
	}
	op := cmp.Op
	if succ == 1 { // false edge: negate
		switch op {
		case token.LSS:
			op, at, bt = token.LEQ, bt, at
		case token.LEQ:
			op, at, bt = token.LSS, bt, at
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		case token.EQL:
			op = token.NEQ
		case token.NEQ:
			op = token.EQL
		default:
			return f
		}
	}
	switch op {
	case token.GTR: // a > b  ->  b < a
		op, at, bt = token.LSS, bt, at
	case token.GEQ:
		op, at, bt = token.LEQ, bt, at
	case token.LSS, token.LEQ, token.EQL, token.NEQ:
	default:
		return f
	}
	f.rel[relFact{op: op, a: at, b: bt}] = true
	return f
}

// rangeFacts adds the loop-header invariants on the iterate edge:
// 0 <= key < len(X) for slices, arrays and strings; 0 <= key < X for
// range-over-int.
func (c *checker) rangeFacts(rs *ast.RangeStmt, f fact) {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := c.objOf(id)
	if obj == nil || c.excluded[obj] {
		return
	}
	kt := term{kind: 'v', obj: obj}
	f.rel[relFact{op: token.LEQ, a: constTerm(0), b: kt}] = true
	tv, ok := c.info.Types[rs.X]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
		var upper term
		var upperOK bool
		if isInteger(tv.Type) {
			upper, upperOK = c.termOf(rs.X, f)
		} else if isIndexable(tv.Type) {
			upper, upperOK = c.lenTerm(rs.X, f)
		}
		if upperOK {
			f.rel[relFact{op: token.LSS, a: kt, b: upper}] = true
		}
	}
}

// ---- terms ----

// termOf canonicalizes an expression into a fact operand.
func (c *checker) termOf(e ast.Expr, f fact) (term, bool) {
	e = ast.Unparen(e)
	if tv, ok := c.info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return constTerm(v), true
		}
		return term{}, false
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := c.info.Uses[x]
		if obj == nil || c.excluded[obj] {
			return term{}, false
		}
		return term{kind: 'v', obj: obj}, true
	case *ast.SelectorExpr:
		root, ok := analysis.BaseObject(c.info, x.X)
		if !ok {
			return term{}, false
		}
		return term{kind: 's', obj: root, sel: types.ExprString(x)}, true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 1 {
			if b, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "len" {
				return c.lenTerm(x.Args[0], f)
			}
		}
	}
	return term{}, false
}

// lenTerm canonicalizes len(e): dimension provenance first (so all
// same-dimension slices share one term), then the kernel-sibling group,
// then the syntactic root.
func (c *checker) lenTerm(e ast.Expr, f fact) (term, bool) {
	e = ast.Unparen(e)
	if k, ok := analysis.ResolveProv(c.pass.World, c.info, f.prov, e); ok && k.Kind != "mask" {
		return term{kind: 'd', obj: k.Obj, sel: k.Kind + ":" + k.Text}, true
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := c.info.Uses[id]
		if obj == nil {
			return term{}, false
		}
		if c.siblings[obj] {
			return term{kind: 'K', sel: c.siblingID}, true
		}
		if c.excluded[obj] {
			return term{}, false
		}
		return term{kind: 'l', obj: obj}, true
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if root, ok := analysis.BaseObject(c.info, sel.X); ok {
			return term{kind: 'l', obj: root, sel: types.ExprString(sel)}, true
		}
	}
	return term{}, false
}

// ---- the prover ----

// candidates expands a term through one step of EQ substitution.
func (c *checker) candidates(t term, f fact) []term {
	out := []term{t}
	for k := range f.rel {
		if k.op != token.EQL {
			continue
		}
		if k.a == t {
			out = append(out, k.b)
		} else if k.b == t {
			out = append(out, k.a)
		}
	}
	return out
}

// proveRel proves a REL b (REL ∈ LSS, LEQ) from the fact set, modulo one
// EQ-substitution step on each side and constant arithmetic.
func (c *checker) proveRel(op token.Token, a, b term, f fact) bool {
	for _, ca := range c.candidates(a, f) {
		for _, cb := range c.candidates(b, f) {
			if c.proveRelDirect(op, ca, cb, f) {
				return true
			}
		}
	}
	return false
}

func (c *checker) proveRelDirect(op token.Token, a, b term, f fact) bool {
	if a.kind == 'c' && b.kind == 'c' {
		if op == token.LSS {
			return a.c < b.c
		}
		return a.c <= b.c
	}
	if a == b {
		return op == token.LEQ
	}
	// Lengths are nonnegative: every nonpositive constant is <= them
	// (strictly below only when negative — a length can be zero).
	if a.kind == 'c' && (b.kind == 'l' || b.kind == 'd' || b.kind == 'K') {
		if a.c < 0 || a.c == 0 && op == token.LEQ {
			return true
		}
	}
	if f.rel[relFact{op: token.LSS, a: a, b: b}] {
		return true
	}
	if op == token.LEQ && (f.rel[relFact{op: token.LEQ, a: a, b: b}] || f.rel[relFact{op: token.EQL, a: a, b: b}] || f.rel[relFact{op: token.EQL, a: b, b: a}]) {
		return true
	}
	// Constant widening: a <= c' < b or a < c'' <= b via one stored fact.
	if a.kind == 'c' {
		for k := range f.rel {
			if k.b != b || k.a.kind != 'c' {
				continue
			}
			switch {
			case k.op == token.LSS && (op == token.LSS && k.a.c >= a.c || op == token.LEQ && k.a.c >= a.c):
				return true
			case k.op == token.LEQ && (op == token.LSS && k.a.c > a.c || op == token.LEQ && k.a.c >= a.c):
				return true
			}
		}
	}
	if b.kind == 'c' {
		for k := range f.rel {
			if k.a != a || k.b.kind != 'c' {
				continue
			}
			switch {
			case k.op == token.LSS && (op == token.LSS && k.b.c <= b.c || op == token.LEQ && k.b.c <= b.c):
				return true
			case k.op == token.LEQ && (op == token.LSS && k.b.c < b.c || op == token.LEQ && k.b.c <= b.c):
				return true
			}
		}
	}
	return false
}

// proveNonneg proves 0 <= e syntactically and from facts.
func (c *checker) proveNonneg(e ast.Expr, f fact) bool {
	e = ast.Unparen(e)
	if tv, ok := c.info.Types[e]; ok {
		if tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				return v >= 0
			}
			return false
		}
		if isUnsigned(tv.Type) {
			return true
		}
	}
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if t, ok := c.termOf(e, f); ok {
			return c.proveRel(token.LEQ, constTerm(0), t, f)
		}
	case *ast.CallExpr:
		if tv, ok := c.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			// A conversion keeps nonnegativity when the target can hold
			// every source value.
			src, srcOK := c.info.Types[x.Args[0]]
			if srcOK && integerFits(src.Type, tv.Type) {
				return c.proveNonneg(x.Args[0], f)
			}
			return false
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin && (b.Name() == "len" || b.Name() == "cap") {
				return true
			}
		}
		if fn := analysis.StaticCallee(c.info, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math/bits" {
			// TrailingZeros*, LeadingZeros*, OnesCount*, Len*: all in [0, 64].
			name := fn.Name()
			for _, p := range []string{"TrailingZeros", "LeadingZeros", "OnesCount", "Len"} {
				if strings.HasPrefix(name, p) {
					return true
				}
			}
		}
		return false
	case *ast.UnaryExpr:
		if x.Op == token.ADD {
			return c.proveNonneg(x.X, f)
		}
		return false
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.MUL, token.SHL:
			// Overflow wrap is declared out of scope for index arithmetic.
			return c.proveNonneg(x.X, f) && c.proveNonneg(x.Y, f)
		case token.SHR, token.REM:
			return c.proveNonneg(x.X, f)
		case token.AND:
			return c.proveNonneg(x.X, f) || c.proveNonneg(x.Y, f)
		case token.SUB:
			xt, xOK := c.termOf(x.X, f)
			yt, yOK := c.termOf(x.Y, f)
			return xOK && yOK && c.proveRel(token.LEQ, yt, xt, f)
		}
	}
	if t, ok := c.termOf(e, f); ok {
		return c.proveRel(token.LEQ, constTerm(0), t, f)
	}
	return false
}

// proveIndex proves 0 <= i < length-of-x.
func (c *checker) proveIndex(x, i ast.Expr, f fact) bool {
	// x & mask against a same-dimension, same-base table proves both
	// bounds at once.
	if dim, root, ok := c.maskIndex(i, f); ok {
		if k, kOK := analysis.ResolveProv(c.pass.World, c.info, f.prov, x); kOK && k.Kind == "dim" && k.Obj == root && k.Text == dim {
			return true
		}
	}
	// e & k with k a nonnegative constant lies in [0, k] whatever e is:
	// enough whenever the indexed length provably exceeds k.
	if k, ok := constAndBound(c.info, i); ok {
		if n, aOK := arrayLen(c.info, x); aOK && k < n {
			return true
		}
		if lt, lOK := c.lenTerm(x, f); lOK && c.proveRel(token.LSS, constTerm(k), lt, f) {
			return true
		}
	}
	if !c.proveNonneg(i, f) {
		return false
	}
	it, iOK := c.termOf(i, f)
	// An array's length is a constant bound.
	if n, ok := arrayLen(c.info, x); ok && iOK && c.proveRel(token.LSS, it, constTerm(n), f) {
		return true
	}
	lt, lOK := c.lenTerm(x, f)
	if iOK && lOK && c.proveRel(token.LSS, it, lt, f) {
		return true
	}
	// A masked index whose mask dimension matches x's length dimension.
	if iOK {
		if up, upOK := c.maskUpper(i, f); upOK && lOK && up == lt {
			return true
		}
	}
	return false
}

// maskIndex recognizes an index expression licensed by an //arvi:mask
// dimension: `e & m` with m a mask field (directly or through
// provenance), or a call of a mask-tagged index method.
func (c *checker) maskIndex(i ast.Expr, f fact) (dim string, root types.Object, ok bool) {
	if dim, root, ok := c.maskKey(i, f); ok {
		return dim, root, true
	}
	be, isAnd := ast.Unparen(i).(*ast.BinaryExpr)
	if !isAnd || be.Op != token.AND {
		return "", nil, false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if dim, root, ok := c.maskKey(side, f); ok {
			return dim, root, true
		}
	}
	return "", nil, false
}

// ---- obligation sites ----

func (c *checker) checkNode(n ast.Node, f fact) {
	analysis.InspectNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.IndexExpr:
			if !indexableExpr(c.info, m.X) {
				return true
			}
			if !c.proveIndex(m.X, m.Index, f) {
				c.obligation(m.Pos(), fmt.Sprintf("cannot prove 0 <= %s < len(%s)",
					types.ExprString(m.Index), types.ExprString(m.X)))
			}
		case *ast.SliceExpr:
			c.checkSlice(m, f)
		case *ast.BinaryExpr:
			if (m.Op == token.QUO || m.Op == token.REM) && isInteger(typeOf(c.info, m.X)) {
				if !c.proveNonzero(m.Y, f) {
					c.obligation(m.OpPos, fmt.Sprintf("cannot prove divisor %s is nonzero", types.ExprString(m.Y)))
				}
			}
		case *ast.AssignStmt:
			if (m.Tok == token.QUO_ASSIGN || m.Tok == token.REM_ASSIGN) && isInteger(typeOf(c.info, m.Lhs[0])) {
				if !c.proveNonzero(m.Rhs[0], f) {
					c.obligation(m.TokPos, fmt.Sprintf("cannot prove divisor %s is nonzero", types.ExprString(m.Rhs[0])))
				}
			}
		case *ast.TypeAssertExpr:
			if m.Type != nil && !c.commaOK[m] {
				c.obligation(m.Pos(), "single-result type assertion can panic; use the comma-ok form")
			}
		}
		return true
	})
}

// checkSlice proves 0 <= low <= high <= max <= len(x), with absent
// bounds defaulting to 0 and len(x). high >= 0 is implied when a proven
// low <= high chains from a proven low >= 0.
func (c *checker) checkSlice(se *ast.SliceExpr, f fact) {
	if !indexableExpr(c.info, se.X) {
		return
	}
	lt, lOK := c.lenTerm(se.X, f)
	if n, haveArr := arrayLen(c.info, se.X); haveArr {
		lt, lOK = constTerm(n), true
	}
	fail := func(what string) {
		c.obligation(se.Pos(), fmt.Sprintf("cannot prove slice bounds of %s: %s", types.ExprString(se.X), what))
	}
	// leq proves a <= b where either side may be the implicit bound.
	leq := func(a, b ast.Expr, bIsLen bool) bool {
		at, aOK := c.termOf(a, f)
		if !aOK {
			return false
		}
		if bIsLen {
			return lOK && c.proveRel(token.LEQ, at, lt, f)
		}
		bt, bOK := c.termOf(b, f)
		return bOK && c.proveRel(token.LEQ, at, bt, f)
	}
	if se.Low != nil && !c.proveNonneg(se.Low, f) {
		fail(types.ExprString(se.Low) + " >= 0")
		return
	}
	// The tightest present upper neighbour of each bound, ending at len.
	chain := []ast.Expr{se.Low, se.High, se.Max}
	prev := se.Low
	for _, b := range chain[1:] {
		if b == nil {
			continue
		}
		if prev == nil {
			// No lower neighbour: the bound itself must be nonnegative.
			if !c.proveNonneg(b, f) {
				fail(types.ExprString(b) + " >= 0")
				return
			}
		} else if !leq(prev, b, false) {
			fail(types.ExprString(prev) + " <= " + types.ExprString(b))
			return
		}
		prev = b
	}
	if prev != nil && !leq(prev, nil, true) {
		fail(types.ExprString(prev) + " <= len(" + types.ExprString(se.X) + ")")
	}
}

func (c *checker) proveNonzero(e ast.Expr, f fact) bool {
	e = ast.Unparen(e)
	if tv, ok := c.info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v != 0
		}
		return false
	}
	t, ok := c.termOf(e, f)
	if !ok {
		return false
	}
	for _, ct := range c.candidates(t, f) {
		if ct.kind == 'c' && ct.c != 0 {
			return true
		}
		if f.rel[relFact{op: token.NEQ, a: ct, b: constTerm(0)}] || f.rel[relFact{op: token.NEQ, a: constTerm(0), b: ct}] {
			return true
		}
		// 0 < t or t < 0.
		if c.proveRelDirect(token.LSS, constTerm(0), ct, f) || c.proveRelDirect(token.LSS, ct, constTerm(0), f) {
			return true
		}
		// 1 <= t.
		if c.proveRelDirect(token.LEQ, constTerm(1), ct, f) {
			return true
		}
	}
	return false
}

// obligation reports an unprovable site unless a justified waiver covers
// it: //arvi:panicfree on the line, or on the function's doc comment.
func (c *checker) obligation(pos token.Pos, what string) {
	if d, ok := c.pass.World.LineDirective(pos, "panicfree"); ok {
		// A one-line function body sits right under its doc comment, so
		// the function-level waiver is also found as the line directive;
		// record the use so it is not reported stale.
		if c.waiver != nil && d.Pos == c.waiver.Pos {
			c.waiverUsed = true
		}
		if d.Arg == "" {
			c.pass.Reportf(pos, "//arvi:panicfree needs a justification")
		}
		return
	}
	if c.waiver != nil {
		c.waiverUsed = true
		return
	}
	c.pass.Reportf(pos, "%s in //arvi:hotpath %s; guard it or justify with //arvi:panicfree <why>", what, c.fn.Name())
}

// ---- type helpers ----

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isUnsigned(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

func isIndexable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// indexableExpr reports whether x[i] on this x is a bounds-checked
// indexing (not a map access).
func indexableExpr(info *types.Info, x ast.Expr) bool {
	t := typeOf(info, x)
	return t != nil && isIndexable(t)
}

// arrayLen returns the length when x is an array or pointer-to-array.
// constAndBound recognizes `e & k` (either operand order) with k a
// nonnegative integer constant, which bounds the result to [0, k]
// regardless of e's sign.
func constAndBound(info *types.Info, e ast.Expr) (int64, bool) {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.AND {
		return 0, false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		tv, tvOK := info.Types[side]
		if !tvOK || tv.Value == nil {
			continue
		}
		if k, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && k >= 0 {
			return k, true
		}
	}
	return 0, false
}

func arrayLen(info *types.Info, x ast.Expr) (int64, bool) {
	t := typeOf(info, x)
	if t == nil {
		return 0, false
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	if a, ok := u.(*types.Array); ok {
		return a.Len(), true
	}
	return 0, false
}

// integerFits reports whether every value of src fits in dst.
func integerFits(src, dst types.Type) bool {
	sb, sOK := src.Underlying().(*types.Basic)
	db, dOK := dst.Underlying().(*types.Basic)
	if !sOK || !dOK || sb.Info()&types.IsInteger == 0 || db.Info()&types.IsInteger == 0 {
		return false
	}
	w := func(k types.BasicKind) int {
		switch k {
		case types.Int8, types.Uint8:
			return 8
		case types.Int16, types.Uint16:
			return 16
		case types.Int32, types.Uint32:
			return 32
		default:
			return 64
		}
	}
	sw, dw := w(sb.Kind()), w(db.Kind())
	su, du := sb.Info()&types.IsUnsigned != 0, db.Info()&types.IsUnsigned != 0
	switch {
	case su && du:
		return dw >= sw
	case !su && !du:
		return dw >= sw
	case su && !du:
		return dw > sw // unsigned needs one extra bit of signed headroom
	default: // signed into unsigned: negative values never fit
		return false
	}
}

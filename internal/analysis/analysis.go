// Package analysis is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis driver model, built for this repository's
// arvivet suite (cmd/arvivet). The build environment is dependency-free by
// policy (go.mod declares no requirements), so instead of importing the
// x/tools framework the package provides the small subset the suite needs:
//
//   - Analyzer / Pass: the familiar unit-of-modularity contract. An
//     analyzer inspects one type-checked package at a time through Run,
//     or the whole loaded module at once through RunWorld (used by the
//     call-path analyzers that x/tools would express with Facts).
//   - Loader (loader.go): type-checks every module package from source in
//     dependency order — sharing one types object identity space, which
//     is what lets cross-package annotation lookups use plain maps where
//     x/tools needs fact serialization — and resolves out-of-module
//     imports from the compiler's export data via `go list -export`.
//   - World (world.go): the module-wide index of //arvi: directives and
//     function declarations the analyzers consult.
//
// The suite's annotation grammar and what each analyzer proves are
// documented in DESIGN.md's static contracts section.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. At least one of Run and RunWorld
// must be set; an analyzer may set both (Run for per-package diagnostics,
// RunWorld for cross-package ones).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is the analyzer's documentation: first line is a summary.
	Doc string
	// Run, if non-nil, is invoked once per loaded package.
	Run func(*Pass) error
	// RunWorld, if non-nil, is invoked once with the whole loaded world.
	RunWorld func(*WorldPass) error
}

// Pass carries one package through an analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	World    *World

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.World.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// WorldPass carries the whole loaded world through an analyzer's RunWorld.
type WorldPass struct {
	Analyzer *Analyzer
	World    *World

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *WorldPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.World.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position and a message, attributed to the
// analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one type-checked compilation unit with its syntax.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run executes the analyzers over the world and returns every diagnostic,
// sorted by position then analyzer name (a deterministic order, so arvivet
// output is diffable). Analyzer errors — misconfiguration, not findings —
// abort the run.
func Run(world *World, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Run == nil && a.RunWorld == nil {
			return nil, fmt.Errorf("analysis: analyzer %q has neither Run nor RunWorld", a.Name)
		}
		if a.Run != nil {
			for _, pkg := range world.Pkgs {
				pass := &Pass{Analyzer: a, Pkg: pkg, World: world, report: collect}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
				}
			}
		}
		if a.RunWorld != nil {
			pass := &WorldPass{Analyzer: a, World: world, report: collect}
			if err := a.RunWorld(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s (world): %w", a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

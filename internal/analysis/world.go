package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// World is the fully loaded module: every package with syntax and types in
// one shared object-identity space, plus the module-wide //arvi: directive
// index the analyzers consult. It plays the role go/analysis facts play in
// the x/tools framework — cross-package annotation knowledge — as plain
// maps, which the shared identity space makes sound.
type World struct {
	Fset   *token.FileSet
	Module string
	Pkgs   []*Package

	// Hotpath marks functions annotated //arvi:hotpath.
	Hotpath map[*types.Func]bool
	// DetRoot marks functions annotated //arvi:det.
	DetRoot map[*types.Func]bool
	// Scratch marks fields and variables annotated //arvi:scratch.
	Scratch map[types.Object]bool
	// LenDim maps fields and methods annotated //arvi:len to their
	// length-dimension tag (e.g. "entries", "physregs").
	LenDim map[types.Object]string
	// MaskDim maps integer fields annotated //arvi:mask to the length
	// dimension whose size-minus-one they always hold, so x&mask proves
	// in-bounds for any slice tagged //arvi:len with the same dimension.
	// Fields and methods annotated //arvi:idx land here too: both forms
	// declare a value in [0, size of dim), which is exactly what the
	// masked-index proofs consume.
	MaskDim map[types.Object]string
	// PanicFree records function-level //arvi:panicfree waivers: the whole
	// body is covered by one justified invariant argument.
	PanicFree map[*types.Func]Directive
	// Decls locates the declaration of every module function.
	Decls map[*types.Func]*FuncInfo

	// Malformed records directive-grammar misuse (unknown names) found
	// while indexing; the driver reports these like any diagnostic.
	Malformed []Diagnostic

	directives map[string]map[int][]Directive // filename -> line -> directives
}

// FuncInfo is a module function's declaration and the package that holds it.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// knownDirectives is the complete annotation grammar; anything else under
// the //arvi: prefix is a typo worth failing on.
var knownDirectives = map[string]bool{
	"hotpath":    true,
	"scratch":    true,
	"cold":       true,
	"dyncall":    true,
	"det":        true,
	"len":        true,
	"lencheck":   true,
	"unordered":  true,
	"nondet-ok":  true,
	"errdrop-ok": true,
	"nonnil":     true,
	"panicfree":  true,
	"mask":       true,
	"idx":        true,
}

// buildWorld indexes directives and declarations over the checked packages.
func buildWorld(fset *token.FileSet, module string, pkgs []*Package) *World {
	w := &World{
		Fset:       fset,
		Module:     module,
		Pkgs:       pkgs,
		Hotpath:    make(map[*types.Func]bool),
		DetRoot:    make(map[*types.Func]bool),
		Scratch:    make(map[types.Object]bool),
		LenDim:     make(map[types.Object]string),
		MaskDim:    make(map[types.Object]string),
		PanicFree:  make(map[*types.Func]Directive),
		Decls:      make(map[*types.Func]*FuncInfo),
		directives: make(map[string]map[int][]Directive),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			byLine := parseDirectives(fset, file)
			w.directives[fset.Position(file.Pos()).Filename] = byLine
			lines := make([]int, 0, len(byLine))
			for line := range byLine {
				lines = append(lines, line)
			}
			sort.Ints(lines)
			for _, line := range lines {
				for _, d := range byLine[line] {
					if !knownDirectives[d.Name] {
						w.Malformed = append(w.Malformed, Diagnostic{
							Analyzer: "arvivet",
							Pos:      fset.Position(d.Pos),
							Message:  fmt.Sprintf("unknown directive //arvi:%s", d.Name),
						})
					}
				}
			}
			w.indexFile(pkg, file, byLine)
		}
	}
	return w
}

// indexFile records the declaration-attached directives of one file.
func (w *World) indexFile(pkg *Package, file *ast.File, byLine map[int][]Directive) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		w.Decls[fn] = &FuncInfo{Decl: fd, Pkg: pkg}
		for _, d := range directivesIn(byLine, w.Fset, fd.Doc) {
			switch d.Name {
			case "hotpath":
				w.Hotpath[fn] = true
			case "det":
				w.DetRoot[fn] = true
			case "len":
				w.LenDim[fn] = d.Arg
			case "mask", "idx":
				// On a method: the result is a proven in-bounds index
				// for any //arvi:len <dim> slice of the same base.
				w.MaskDim[fn] = d.Arg
			case "panicfree":
				w.PanicFree[fn] = d
			}
		}
	}
	// Field and variable annotations (scratch buffers, length dimensions)
	// sit on struct fields and value specs anywhere in the file.
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				for _, d := range directivesIn(byLine, w.Fset, field.Doc, field.Comment) {
					w.indexObjectDirective(pkg, d, field.Names)
				}
			}
		case *ast.ValueSpec:
			for _, d := range directivesIn(byLine, w.Fset, n.Doc, n.Comment) {
				w.indexObjectDirective(pkg, d, n.Names)
			}
		}
		return true
	})
}

func (w *World) indexObjectDirective(pkg *Package, d Directive, names []*ast.Ident) {
	for _, name := range names {
		obj := pkg.Info.Defs[name]
		if obj == nil {
			continue
		}
		switch d.Name {
		case "scratch":
			w.Scratch[obj] = true
		case "len":
			w.LenDim[obj] = d.Arg
		case "mask", "idx":
			w.MaskDim[obj] = d.Arg
		}
	}
}

// StaticCallee resolves a call expression to the declared function or
// method it invokes, or nil for indirect calls (func values, interface
// methods) and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	if fn == nil {
		return nil
	}
	// An interface method has no body to analyze; it is an indirect call.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			return nil
		}
	}
	return fn
}

package apps

import (
	"testing"

	"repro/internal/core"
)

// buildChain constructs the running example: a diamond DAG plus a long
// dependent tail on entry 0.
//
//	e0: p1 = ...          (3 dependents)
//	e1: p2 = f(p1)        (2 dependents)
//	e2: p3 = f(p2)        (1 dependent)
//	e3: p4 = f(p3, p1)    (0 dependents)
//	e4: p5 = ...          (independent, 0 dependents)
func buildChain(t *testing.T) *core.DDT {
	t.Helper()
	d := core.MustNewDDT(core.Config{Entries: 16, PhysRegs: 16, TrackDepCounts: true})
	ins := func(tgt core.PhysReg, srcs ...core.PhysReg) int {
		e, err := d.Insert(tgt, srcs, false)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ins(1)
	ins(2, 1)
	ins(3, 2)
	ins(4, 3, 1)
	ins(5)
	return d
}

func TestPriorityOrder(t *testing.T) {
	d := buildChain(t)
	s := NewPriorityScheduler(d)
	got := s.Order([]int{4, 2, 0, 1})
	// Dependent counts: e0=3, e1=2, e2=1, e4=0.
	want := []int{0, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestPriorityTieBreakByAge(t *testing.T) {
	d := core.MustNewDDT(core.Config{Entries: 8, PhysRegs: 8, TrackDepCounts: true})
	d.Insert(1, nil, false) // e0
	d.Insert(2, nil, false) // e1: same dep count (0)
	s := NewPriorityScheduler(d)
	got := s.Order([]int{1, 0})
	if got[0] != 0 {
		t.Errorf("tie must break toward the older entry, got %v", got)
	}
}

func TestCriticalEntries(t *testing.T) {
	d := buildChain(t)
	s := NewPriorityScheduler(d)
	crit := s.CriticalEntries(2)
	if len(crit) != 2 || crit[0] != 0 || crit[1] != 1 {
		t.Errorf("critical = %v, want [0 1]", crit)
	}
	if got := s.CriticalEntries(100); len(got) != 0 {
		t.Errorf("impossible threshold returned %v", got)
	}
	// After commit of e0 the candidate set shrinks.
	d.Commit()
	crit = s.CriticalEntries(2)
	if len(crit) != 1 || crit[0] != 1 {
		t.Errorf("critical after commit = %v, want [1]", crit)
	}
}

func TestBranchSlice(t *testing.T) {
	d := buildChain(t)
	x := NewChainExtractor(d)
	// A branch on p4 depends on e3 <- {e2 <- e1 <- e0, e0}.
	slice := x.BranchSlice(4)
	want := []int{0, 1, 2, 3}
	if len(slice) != len(want) {
		t.Fatalf("slice = %v, want %v", slice, want)
	}
	for i := range want {
		if slice[i] != want[i] {
			t.Fatalf("slice = %v, want %v (oldest first)", slice, want)
		}
	}
	// p5's slice is just its own producer.
	if s := x.BranchSlice(5); len(s) != 1 || s[0] != 4 {
		t.Errorf("independent slice = %v, want [4]", s)
	}
}

func TestSliceFraction(t *testing.T) {
	d := buildChain(t)
	x := NewChainExtractor(d)
	if f := x.SliceFraction(4); f != 4.0/5.0 {
		t.Errorf("fraction = %v, want 0.8", f)
	}
	if f := x.SliceFraction(5); f != 1.0/5.0 {
		t.Errorf("fraction = %v, want 0.2", f)
	}
	empty := core.MustNewDDT(core.Config{Entries: 4, PhysRegs: 4})
	if f := NewChainExtractor(empty).SliceFraction(1); f != 0 {
		t.Errorf("empty fraction = %v", f)
	}
}

func TestParallelismEstimate(t *testing.T) {
	d := buildChain(t)
	// Longest chain among {p4} is 4 members; 5 in flight -> ILP 1.25.
	if got := ParallelismEstimate(d, []core.PhysReg{4}); got != 1.25 {
		t.Errorf("ILP = %v, want 1.25", got)
	}
	// A wide window with no chains is fully parallel.
	w := core.MustNewDDT(core.Config{Entries: 8, PhysRegs: 8})
	w.Insert(1, nil, false)
	w.Insert(2, nil, false)
	if got := ParallelismEstimate(w, []core.PhysReg{7}); got != 2 {
		t.Errorf("no-chain ILP = %v, want 2", got)
	}
	if got := ParallelismEstimate(core.MustNewDDT(core.Config{Entries: 4, PhysRegs: 4}), nil); got != 0 {
		t.Errorf("empty ILP = %v, want 0", got)
	}
}

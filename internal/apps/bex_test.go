package apps

import (
	"testing"

	"repro/internal/workload"
)

func TestEvaluateBEXOnWorkloads(t *testing.T) {
	for _, name := range []string{"m88ksim", "vortex"} {
		res, err := EvaluateBEX(workload.ByName(name).Prog, 60_000, 64, 12)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Branches == 0 {
			t.Fatalf("%s: no branches", name)
		}
		if res.Coverage() <= 0 || res.Coverage() > 1 {
			t.Errorf("%s: coverage %v out of range", name, res.Coverage())
		}
		if res.AvgSlice() <= 0 || res.MaxSlice <= 0 {
			t.Errorf("%s: degenerate slices %+v", name, res)
		}
		if res.MaxSlice > res.WindowSize {
			t.Errorf("%s: slice exceeds window: %d > %d", name, res.MaxSlice, res.WindowSize)
		}
	}
}

func TestBEXBudgetMonotonicity(t *testing.T) {
	p := workload.ByName("li").Prog
	small, err := EvaluateBEX(p, 40_000, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	large, err := EvaluateBEX(p, 40_000, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if large.Covered < small.Covered {
		t.Errorf("bigger budget must cover at least as many branches: %d < %d",
			large.Covered, small.Covered)
	}
	if small.Branches != large.Branches {
		t.Errorf("branch counts differ: %d vs %d", small.Branches, large.Branches)
	}
}

func TestBEXZeroResultHelpers(t *testing.T) {
	var z BEXResult
	if z.Coverage() != 0 || z.AvgSlice() != 0 {
		t.Error("zero-result helpers wrong")
	}
}

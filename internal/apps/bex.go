package apps

import (
	"repro/internal/prog"
	"repro/internal/wtrace"
)

// BEXResult summarises a branch-decoupled-execution coverage study: how
// many dynamic conditional branches have dependence slices small enough to
// replicate on a separate branch-execution engine (Section 3, "dynamic
// branch decoupled architectures", and the Farcy/Tyagi designs of
// Section 7 that lacked a chain-discovery mechanism — the DDT supplies it).
type BEXResult struct {
	Branches   int64 // dynamic conditional branches observed
	Covered    int64 // branches whose slice fits the BEX budget
	SliceSum   int64 // summed slice sizes (instructions)
	MaxSlice   int
	WindowSize int
	Budget     int
}

// Coverage is the fraction of branches a BEX engine with the given budget
// could pre-execute.
func (r BEXResult) Coverage() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Branches)
}

// AvgSlice is the mean dependence-slice size per branch.
func (r BEXResult) AvgSlice() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.SliceSum) / float64(r.Branches)
}

// EvaluateBEX measures, over the program's dynamic trace with an in-flight
// window of windowSize, the dependence-slice size of every conditional
// branch (read straight from the DDT, as the paper proposes) and the
// fraction coverable by a BEX engine that can replicate at most budget
// instructions per branch.
func EvaluateBEX(p *prog.Program, maxInsts int64, windowSize, budget int) (BEXResult, error) {
	res := BEXResult{WindowSize: windowSize, Budget: budget}
	err := wtrace.Walk(p, maxInsts, windowSize, false, func(s *wtrace.Step) error {
		if !s.Event.Inst.IsCondBranch() {
			return nil
		}
		res.Branches++
		n := s.DDT.Chain(s.SrcPregs...).Count()
		res.SliceSum += int64(n)
		if n > res.MaxSlice {
			res.MaxSlice = n
		}
		if n <= budget {
			res.Covered++
		}
		return nil
	})
	return res, err
}

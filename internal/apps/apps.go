// Package apps implements the Section 3 applications of on-line data
// dependence tracking: dependence-aware issue prioritisation, selective
// value-prediction candidate selection, and dependence-chain extraction for
// branch-decoupled execution. Each application consumes the DDT of package
// core exactly as the paper sketches.
package apps

import (
	"sort"

	"repro/internal/bitvec"
	"repro/internal/core"
)

// PriorityScheduler ranks ready instructions by the length of the dependence
// chain *waiting on them* (the per-row counter extension of Section 3,
// "Dynamic scheduling"): an instruction with many trailing dependents is
// issued first because resolving it unblocks the most work.
type PriorityScheduler struct {
	ddt *core.DDT
}

// NewPriorityScheduler wraps a DDT configured with TrackDepCounts.
func NewPriorityScheduler(d *core.DDT) *PriorityScheduler {
	return &PriorityScheduler{ddt: d}
}

// Order returns the given ready entries sorted by descending dependent
// count (ties broken by age: older first). The slice is sorted in place.
func (s *PriorityScheduler) Order(ready []int) []int {
	sort.SliceStable(ready, func(i, j int) bool {
		di, dj := s.ddt.DepCount(ready[i]), s.ddt.DepCount(ready[j])
		if di != dj {
			return di > dj
		}
		return s.ddt.Age(ready[i]) > s.ddt.Age(ready[j])
	})
	return ready
}

// CriticalEntries returns the in-flight entries whose dependent count meets
// the threshold — the Calder-style selective value prediction candidates of
// Section 3 ("those instructions that exceed a threshold count may be
// selected for value prediction").
func (s *PriorityScheduler) CriticalEntries(threshold int) []int {
	var out []int
	n := s.ddt.Config().Entries
	for e := 0; e < n; e++ {
		if s.ddt.InFlight(e) && s.ddt.DepCount(e) >= threshold {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return s.ddt.Age(out[i]) > s.ddt.Age(out[j]) })
	return out
}

// ChainExtractor selects the instructions feeding a branch for execution on
// a decoupled branch-execution (BEX) unit, per Section 3 ("Dynamic branch
// decoupled architectures: ... In the DDT table, the data dependence chain
// is immediately available").
type ChainExtractor struct {
	ddt *core.DDT
}

// NewChainExtractor wraps a DDT.
func NewChainExtractor(d *core.DDT) *ChainExtractor {
	return &ChainExtractor{ddt: d}
}

// BranchSlice returns the in-flight instruction entries composing the
// dependence chain of a branch with the given source registers, ordered
// oldest first — the instruction slice a BEX unit would pre-execute.
func (x *ChainExtractor) BranchSlice(branchSrcs ...core.PhysReg) []int {
	chain := x.ddt.Chain(branchSrcs...)
	var out []int
	chain.ForEach(func(e int) { out = append(out, e) })
	sort.Slice(out, func(i, j int) bool { return x.ddt.Age(out[i]) > x.ddt.Age(out[j]) })
	return out
}

// SliceFraction returns |chain| / in-flight — the fraction of the window a
// BEX unit would need to replicate for this branch. Small fractions are the
// paper's argument for decoupled branch execution.
func (x *ChainExtractor) SliceFraction(branchSrcs ...core.PhysReg) float64 {
	if x.ddt.Len() == 0 {
		return 0
	}
	chain := x.ddt.Chain(branchSrcs...)
	return float64(chain.Count()) / float64(x.ddt.Len())
}

// ParallelismEstimate implements the Section 3 "optimizations driven by
// parallelism metrics": given the DDT, it estimates the window's inherent
// ILP as in-flight instructions divided by the depth of the longest
// dependence chain among the given live registers (chain depth approximates
// the critical path). Callers use it to gate resources (issue-queue sizing,
// pipeline gating).
func ParallelismEstimate(d *core.DDT, liveRegs []core.PhysReg) float64 {
	if d.Len() == 0 {
		return 0
	}
	maxLen := 0
	for _, r := range liveRegs {
		c := d.Chain(r)
		if n := chainLength(d, c); n > maxLen {
			maxLen = n
		}
	}
	if maxLen == 0 {
		return float64(d.Len())
	}
	return float64(d.Len()) / float64(maxLen)
}

// chainLength counts the chain's members (a proxy for serial work).
func chainLength(_ *core.DDT, c bitvec.Vec) int { return c.Count() }

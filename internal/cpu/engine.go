package cpu

import (
	"context"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/arvi"
	"repro/internal/bitvec"
	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/vm"
)

// slotLimiter enforces a per-cycle bandwidth for monotonically advancing
// pipeline stages (fetch, commit).
type slotLimiter struct {
	cycle int64
	used  int
	width int
}

// take grants a slot at the earliest cycle >= c and returns it.
//
//arvi:hotpath
func (s *slotLimiter) take(c int64) int64 {
	if c > s.cycle {
		s.cycle, s.used = c, 0
	}
	if s.used < s.width {
		s.used++
		return s.cycle
	}
	s.cycle++
	s.used = 1
	return s.cycle
}

// issueLimiter enforces a per-cycle issue width for non-monotonic issue
// cycles using a stamped ring of counters.
type issueLimiter struct {
	//arvi:len ilring
	counts []uint8
	//arvi:len ilring
	stamps []int64
	width  uint8
	//arvi:mask ilring
	mask int64
}

func newIssueLimiter(width int) *issueLimiter {
	const ring = 1 << 15
	return &issueLimiter{
		counts: make([]uint8, ring),
		stamps: make([]int64, ring),
		width:  uint8(width),
		mask:   ring - 1,
	}
}

// reset restores the freshly built state (stamp 0 rows with zero counts
// are indistinguishable from untouched ones at cycle 0).
//
//arvi:hotpath
func (l *issueLimiter) reset() {
	clear(l.counts)
	clear(l.stamps)
}

//arvi:hotpath
func (l *issueLimiter) take(c int64) int64 {
	for {
		i := c & l.mask
		if l.stamps[i] != c {
			l.stamps[i] = c
			l.counts[i] = 0
		}
		if l.counts[i] < l.width {
			l.counts[i]++
			return c
		}
		c++
	}
}

// funcUnits models one class of functional units.
type funcUnits struct {
	nextFree  []int64
	pipelined bool
	occupancy int // cycles a non-pipelined unit stays busy
}

// issue finds the earliest cycle >= ready at which a unit is free, books it
// and returns the cycle.
//
//arvi:hotpath
//arvi:panicfree cfg.validate demands at least one unit per class, so nextFree is nonempty and best stays a scanned index below its length
func (f *funcUnits) issue(ready int64, busy int) int64 {
	best := 0
	for i := 1; i < len(f.nextFree); i++ {
		if f.nextFree[i] < f.nextFree[best] {
			best = i
		}
	}
	c := ready
	if f.nextFree[best] > c {
		c = f.nextFree[best]
	}
	if f.pipelined {
		f.nextFree[best] = c + 1
	} else {
		f.nextFree[best] = c + int64(busy)
	}
	return c
}

// pregMeta is the per-physical-register bookkeeping used for ARVI value
// resolution (the shadow register file and shadow map table of Figure 4,
// plus timing metadata).
type pregMeta struct {
	doneC      int64  // writeback cycle of the current producer
	commitC    int64  // commit cycle of the current producer
	hoistAvail int64  // earliest availability under load-back hoisting
	val        uint16 // low value bits the producer writes (shadow regfile)
	prevVal    uint16 // previous occupant's value (StalePhysical reads)
	logical    uint8  // shadow map table: low logical-register bits
	isLoad     bool
}

type storeRec struct {
	seq     int64
	addrW   uint64 // word-aligned address
	readyC  int64  // when address + data are computed
	commitC int64
}

// Engine runs one configuration over one program.
type Engine struct {
	cfg  Config
	hier *mem.Hierarchy
	prog *prog.Program

	l1   *bpred.Gskew2Bc
	l2   *bpred.Gskew2Bc
	conf *bpred.Confidence
	av   *arvi.Predictor
	ddt  *core.DDT
	hist bpred.History

	// Rename state. The free list is a fixed ring (FIFO pop at freeHead,
	// push behind it): the paper's rotating free list, without the
	// append/reslice churn that re-allocated the backing array every
	// ~PhysRegs renames. FIFO order is load-bearing — StalePhysical reads
	// the previous occupant of a physical register, so the allocation
	// order is part of the simulated semantics.
	mapTable [isa.NumRegs]core.PhysReg
	//arvi:len pregs
	freeRing []core.PhysReg
	// freeHead stays in [0, physRegs) by the ring arithmetic of
	// freePop/freePushFront; freeLen may reach physRegs.
	//arvi:idx pregs
	freeHead int
	freeLen  int
	//arvi:len pregs
	meta []pregMeta

	// Per-seq rings.
	commitRing  []int64        // commit cycle by seq
	prevMapRing []core.PhysReg // displaced mapping by seq (freed at commit)
	destRing    []uint8        // logical destination by seq (0xff = none)
	valRing     []uint16       // low value bits written by seq
	memRing     []int64        // commit cycle by memory-op ordinal
	stores      []storeRec     // LSQ-window store history (ring)

	// archVal is the shadow architectural register file: the low value
	// bits of each logical register as of the commit frontier. Leaves
	// whose values are not yet available read this committed copy
	// (32 x 11 bits of state, cheaper than shadowing every physical
	// register as the paper sizes it; see DESIGN.md).
	archVal [isa.NumRegs]uint16

	fetchSlots     slotLimiter
	commitSlots    slotLimiter
	issue          *issueLimiter
	alu, mul, memu *funcUnits

	frontier     int64 // next seq to retire from the DDT
	nextFetchMin int64
	lastCommitC  int64
	memSeq       int64
	frontLat     int64
	l2Lat        int64

	// Return-address stack: a fixed ring holding the youngest rasDepth
	// entries (pushing onto a full stack drops the oldest), replacing the
	// sliding-slice version whose backing array re-allocated as the slice
	// start crept forward.
	ras      [rasDepth]int64
	rasStart int
	rasLen   int

	// Per-branch pending front-end effects, set by predictBranch or
	// predictJump and consumed by resolveControl once the resolution
	// cycle is known.
	pendingOverride   int64
	pendingMispredict bool

	st Stats

	// Scratch, pre-sized by NewEngine and reused every event.

	//arvi:scratch
	srcPregs []core.PhysReg
	//arvi:scratch
	leafBuf []arvi.LeafValue
	//arvi:scratch
	srcRegBuf []isa.Reg
	//arvi:scratch
	wpUndo []wpUndo
	evBuf  vm.Event // RunSource's event cursor: a local would escape
	// through the EventSource interface call and heap-allocate per run
}

// rasDepth is the return-address stack capacity (power of two).
const rasDepth = 64

// rasPush pushes a predicted return address, dropping the oldest entry
// when the stack is full.
//
//arvi:hotpath
func (e *Engine) rasPush(v int64) {
	if e.rasLen == rasDepth {
		e.rasStart = (e.rasStart + 1) & (rasDepth - 1)
		e.rasLen--
	}
	e.ras[(e.rasStart+e.rasLen)&(rasDepth-1)] = v
	e.rasLen++
}

// rasPop pops the youngest return address; ok is false on an empty stack.
//
//arvi:hotpath
func (e *Engine) rasPop() (v int64, ok bool) {
	if e.rasLen == 0 {
		return 0, false
	}
	e.rasLen--
	return e.ras[(e.rasStart+e.rasLen)&(rasDepth-1)], true
}

// freePop takes the oldest free physical register (FIFO).
//
//arvi:hotpath
func (e *Engine) freePop() core.PhysReg {
	p := e.freeRing[e.freeHead]
	e.freeHead++
	if e.freeHead == len(e.freeRing) {
		e.freeHead = 0
	}
	e.freeLen--
	return p
}

// freePush returns a register to the back of the free list.
//
//arvi:hotpath
//arvi:panicfree freeHead < len(freeRing) and freeLen <= len(freeRing), so one wrap subtraction lands the write index in range
func (e *Engine) freePush(p core.PhysReg) {
	i := e.freeHead + e.freeLen
	if i >= len(e.freeRing) {
		i -= len(e.freeRing)
	}
	e.freeRing[i] = p
	e.freeLen++
}

// freePushFront puts a register back at the front of the free list — the
// wrong-path recovery undo, which must restore the exact pre-speculation
// allocation order.
//
//arvi:hotpath
func (e *Engine) freePushFront(p core.PhysReg) {
	e.freeHead--
	if e.freeHead < 0 {
		e.freeHead = len(e.freeRing) - 1
	}
	e.freeRing[e.freeHead] = p
	e.freeLen++
}

// NewEngine builds an engine for the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	physRegs := isa.NumRegs + cfg.ROB + 8
	ddt, err := core.NewDDT(core.Config{
		Entries:    cfg.ROB,
		PhysRegs:   physRegs,
		CutAtLoads: cfg.CutAtLoads,
	})
	if err != nil {
		return nil, err
	}
	l1, err := bpred.NewGskew2Bc(cfg.L1PredEntries)
	if err != nil {
		return nil, err
	}
	l2, err := bpred.NewGskew2Bc(cfg.L2PredEntries)
	if err != nil {
		return nil, err
	}
	conf, err := bpred.NewConfidence(4096, cfg.ConfThreshold)
	if err != nil {
		return nil, err
	}
	av, err := arvi.New(cfg.ARVI)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		hier: mem.NewHierarchy(mem.LatenciesForDepth(cfg.Depth)),
		l1:   l1, l2: l2, conf: conf, av: av, ddt: ddt,
		meta:        make([]pregMeta, physRegs),
		commitRing:  make([]int64, cfg.ROB+1),
		prevMapRing: make([]core.PhysReg, cfg.ROB+1),
		destRing:    make([]uint8, cfg.ROB+1),
		valRing:     make([]uint16, cfg.ROB+1),
		memRing:     make([]int64, cfg.LSQ+1),
		stores:      make([]storeRec, cfg.LSQ),
		fetchSlots:  slotLimiter{width: cfg.FetchWidth},
		commitSlots: slotLimiter{width: cfg.CommitWidth},
		issue:       newIssueLimiter(cfg.FetchWidth),
		alu:         &funcUnits{nextFree: make([]int64, cfg.IntALU), pipelined: true},
		mul:         &funcUnits{nextFree: make([]int64, cfg.IntMul)},
		memu:        &funcUnits{nextFree: make([]int64, cfg.MemPorts), pipelined: true},
		frontLat:    int64(cfg.FrontLatency()),
		l2Lat:       int64(cfg.L2Latency()),
	}
	e.freeRing = make([]core.PhysReg, physRegs)
	e.srcPregs = make([]core.PhysReg, 0, 4)
	e.srcRegBuf = make([]isa.Reg, 0, 4)
	e.leafBuf = make([]arvi.LeafValue, 0, 64)
	e.wpUndo = make([]wpUndo, 0, wrongPathBurst)
	e.resetArchState()
	return e, nil
}

// resetArchState (re)initialises every piece of engine state that varies
// over a run, leaving configuration-derived allocations in place. It is
// shared by NewEngine and Reset, so a reset engine is bit-for-bit
// equivalent to a fresh one (pinned by TestEngineResetDeterminism).
//
//arvi:hotpath
func (e *Engine) resetArchState() {
	for l := 0; l < isa.NumRegs; l++ {
		e.mapTable[l] = core.PhysReg(l)
	}
	clear(e.meta)
	for l := 0; l < isa.NumRegs; l++ {
		//arvi:panicfree meta holds physRegs = isa.NumRegs+ROB+8 entries, so the first NumRegs always exist
		e.meta[l].logical = uint8(l)
	}
	e.freeHead, e.freeLen = 0, 0
	for p := isa.NumRegs; p < len(e.meta); p++ {
		//arvi:panicfree freeLen == p - isa.NumRegs here, below len(meta) == len(freeRing)
		e.freeRing[e.freeLen] = core.PhysReg(p)
		e.freeLen++
	}
	clear(e.commitRing)
	clear(e.prevMapRing)
	clear(e.destRing)
	clear(e.valRing)
	clear(e.memRing)
	for i := range e.stores {
		e.stores[i] = storeRec{seq: -1}
	}
	e.archVal = [isa.NumRegs]uint16{}
	e.hist = bpred.History{}
	e.fetchSlots = slotLimiter{width: e.cfg.FetchWidth}
	e.commitSlots = slotLimiter{width: e.cfg.CommitWidth}
	e.issue.reset()
	clear(e.alu.nextFree)
	clear(e.mul.nextFree)
	clear(e.memu.nextFree)
	e.frontier, e.nextFetchMin, e.lastCommitC, e.memSeq = 0, 0, 0, 0
	e.rasStart, e.rasLen = 0, 0
	e.pendingOverride, e.pendingMispredict = 0, false
	e.st = Stats{}
	e.prog = nil
}

// Reset returns the engine to its freshly constructed state without
// re-allocating any of its structures (tables, rings, the DDT matrix), so
// a sweep can reuse one engine per configuration instead of churning the
// allocator per matrix cell. A reset engine produces bit-identical
// statistics to a new one.
//
//arvi:hotpath
func (e *Engine) Reset() {
	e.hier.Reset()
	e.l1.Reset()
	e.l2.Reset()
	e.conf.Reset()
	e.av.Reset()
	e.ddt.Reset()
	e.resetArchState()
}

// Hierarchy exposes the memory system for inspection after a run.
func (e *Engine) Hierarchy() *mem.Hierarchy { return e.hier }

// Run executes the program on the functional VM and replays it through the
// timing model, returning the run statistics.
func Run(p *prog.Program, cfg Config) (Stats, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Stats{}, err
	}
	return e.Run(p)
}

// EventSource streams the correct-path dynamic trace into the timing
// model. Next fills ev and returns io.EOF at the end of the trace.
type EventSource interface {
	Next(ev *vm.Event) error
}

// vmSource adapts the functional VM to EventSource.
type vmSource struct{ m *vm.VM }

// Next implements EventSource over live functional execution.
func (s *vmSource) Next(ev *vm.Event) error {
	if s.m.Halt {
		return io.EOF
	}
	if err := s.m.Step(ev); err != nil {
		if err == vm.ErrHalted {
			return io.EOF
		}
		return err
	}
	return nil
}

// Run executes the program on the functional VM and replays it through the
// timing model, returning the run statistics.
func (e *Engine) Run(p *prog.Program) (Stats, error) {
	return e.RunSource(p, &vmSource{m: vm.New(p)})
}

// RunSource replays an externally supplied trace of the given program
// (e.g. one recorded by package trace) through the timing model.
//
//arvi:hotpath
func (e *Engine) RunSource(p *prog.Program, src EventSource) (Stats, error) {
	e.prog = p
	n, _, err := e.replay(src, 0, e.cfg.MaxInsts)
	if err != nil {
		return e.st, err
	}
	return e.finish(n), nil
}

// cancelChunk is how many instructions RunSourceContext replays between
// context checks. At simulator speed a chunk is well under a millisecond,
// so cancellation lands promptly without putting a context branch — or
// any interface call that could not be allocation-audited — inside the
// per-instruction hot loop.
const cancelChunk = 65536

// RunContext is Run with cooperative cancellation: the replay stops with
// ctx.Err() at the next chunk boundary after ctx is done. Statistics from
// a canceled run are meaningless and must be discarded.
func (e *Engine) RunContext(ctx context.Context, p *prog.Program) (Stats, error) {
	return e.RunSourceContext(ctx, p, &vmSource{m: vm.New(p)})
}

// RunSourceContext is RunSource with cooperative cancellation, checking
// ctx between cancelChunk-sized replay chunks. The per-instruction loop
// itself (replay) stays context-free by design — see
// DESIGN.md's failure domains section. An uncanceled run is
// bit-identical to RunSource: the chunking only changes where the
// instruction-budget comparison happens, not what is replayed.
func (e *Engine) RunSourceContext(ctx context.Context, p *prog.Program, src EventSource) (Stats, error) {
	e.prog = p
	var n int64
	for {
		if err := ctx.Err(); err != nil {
			return e.st, err
		}
		limit := n + cancelChunk
		if e.cfg.MaxInsts > 0 && limit > e.cfg.MaxInsts {
			limit = e.cfg.MaxInsts
		}
		next, eof, err := e.replay(src, n, limit)
		if err != nil {
			return e.st, err
		}
		n = next
		if eof || (e.cfg.MaxInsts > 0 && n >= e.cfg.MaxInsts) {
			break
		}
	}
	return e.finish(n), nil
}

// replay streams events through the timing model starting from
// instruction count n until the source is exhausted, an event fails, or
// the count reaches limit (<= 0 for unlimited). It returns the updated
// count and whether the source reported EOF. This is the per-instruction
// hot loop; cancellation is layered above it in RunSourceContext.
//
//arvi:hotpath
func (e *Engine) replay(src EventSource, n, limit int64) (int64, bool, error) {
	ev := &e.evBuf
	for limit <= 0 || n < limit {
		if err := src.Next(ev); err != nil { //arvi:dyncall EventSource impls (VM, trace cursor, replay reader) are allocation-audited
			if err == io.EOF {
				return n, true, nil
			}
			//arvi:cold a failing trace source aborts the run; per-instruction it never fires
			return n, false, fmt.Errorf("cpu: trace source failed: %w", err)
		}
		e.process(ev)
		n++
	}
	return n, false, nil
}

// finish stamps the end-of-run statistics for a replay of n instructions.
//
//arvi:hotpath
func (e *Engine) finish(n int64) Stats {
	e.st.Insts = n
	e.st.Cycles = e.lastCommitC
	if e.st.Cycles == 0 {
		e.st.Cycles = 1
	}
	e.st.L1DMissRate = e.hier.L1D.MissRate()
	e.st.L2MissRate = e.hier.L2.MissRate()
	e.st.L1IMissRate = e.hier.L1I.MissRate()
	a := e.av.Stats()
	e.st.ARVILookups = a.Lookups
	e.st.ARVIHits = a.Hits
	return e.st
}

// advanceFrontier retires every instruction whose commit cycle has passed
// now: its DDT entry is freed and the physical register it displaced
// returns to the free list — exactly the in-order commit the hardware
// performs.
//
//arvi:hotpath
//arvi:panicfree e.frontier counts retired events (nonnegative) and the per-seq rings hold ROB+1 entries, so the modulo-reduced idx is in range; destRing values other than 0xff are logical registers below isa.NumRegs
func (e *Engine) advanceFrontier(seq, now int64) {
	for e.frontier < seq {
		idx := e.frontier % int64(len(e.commitRing))
		if e.commitRing[idx] > now {
			return
		}
		if _, err := e.ddt.Commit(); err != nil {
			//arvi:cold invariant trap; Commit cannot fail while frontier < seq
			panic("cpu: DDT/frontier desync: " + err.Error())
		}
		if old := e.prevMapRing[idx]; old != core.NoPReg {
			e.freePush(old)
		}
		if d := e.destRing[idx]; d != 0xff {
			e.archVal[d] = e.valRing[idx] // shadow architectural file
		}
		e.frontier++
	}
}

// process replays one trace event through the timing model.
//
//arvi:hotpath
//arvi:panicfree seq and memSeq are nonnegative event ordinals and the per-seq rings hold ROB+1/LSQ+1 entries, so modulo-reduced indexes are in range; decoded registers (SrcRegs, in.Rd) are below isa.NumRegs, and renamed physical registers are below physRegs == len(meta)
func (e *Engine) process(ev *vm.Event) {
	in := ev.Inst
	seq := ev.Seq

	// ---- Fetch ----------------------------------------------------------
	c := e.nextFetchMin
	// ROB occupancy: rename (at fetch, per Section 4.1's early rename)
	// needs a free entry.
	if seq >= int64(e.cfg.ROB) {
		if t := e.commitRing[(seq-int64(e.cfg.ROB))%int64(len(e.commitRing))] + 1; t > c {
			c = t
		}
	}
	// LSQ occupancy for memory operations.
	if in.IsMem() && e.memSeq >= int64(e.cfg.LSQ) {
		if t := e.memRing[(e.memSeq-int64(e.cfg.LSQ))%int64(len(e.memRing))] + 1; t > c {
			c = t
		}
	}
	// Instruction cache.
	if lat := e.hier.FetchAccess(ev.PC); lat > 0 {
		c += int64(lat)
	}
	fetchC := e.fetchSlots.take(c)
	if fetchC > e.nextFetchMin {
		e.nextFetchMin = fetchC
	}

	// ---- In-order retirement up to this fetch point ---------------------
	e.advanceFrontier(seq, fetchC)

	// ---- Branch prediction ----------------------------------------------
	if in.IsCondBranch() {
		e.predictBranch(ev, fetchC)
	} else if in.IsJump() {
		e.predictJump(ev, fetchC)
	}

	// ---- Source operands (old mappings, before renaming the dest) -------
	e.srcRegBuf = in.SrcRegs(e.srcRegBuf[:0])
	e.srcPregs = e.srcPregs[:0]
	readyC := fetchC + e.frontLat
	addrReady := int64(0) // readiness of the address operand (loads)
	for k, r := range e.srcRegBuf {
		p := e.mapTable[r]
		e.srcPregs = append(e.srcPregs, p)
		if t := e.meta[p].doneC + 1; t > readyC {
			readyC = t
		}
		if in.IsLoad() && k == 0 {
			addrReady = e.meta[p].doneC + 1
		}
	}

	// ---- Rename + DDT insert --------------------------------------------
	var dest = core.NoPReg
	var displaced = core.NoPReg
	if in.HasDest() {
		if e.freeLen == 0 {
			//arvi:cold invariant trap; the ring holds ROB+8 spare registers
			panic("cpu: free list exhausted (rename invariant violated)")
		}
		dest = e.freePop()
		displaced = e.mapTable[in.Rd]
		e.mapTable[in.Rd] = dest
	}
	if _, err := e.ddt.Insert(dest, e.srcPregs, in.IsLoad()); err != nil {
		//arvi:cold invariant trap; the ROB occupancy stall keeps the table un-full
		panic("cpu: DDT insert failed: " + err.Error())
	}
	ri := seq % int64(len(e.prevMapRing))
	e.prevMapRing[ri] = displaced
	if dest != core.NoPReg {
		e.destRing[ri] = uint8(in.Rd)
		e.valRing[ri] = uint16(uint64(ev.Val)) & (1<<e.cfg.ARVI.ValueBits - 1)
	} else {
		e.destRing[ri] = 0xff
	}

	// ---- Issue and execute ----------------------------------------------
	var issueC, doneC int64
	switch in.FU() {
	case isa.FUIntMul:
		lat := int64(in.ExecLatency())
		issueC = e.issue.take(e.mul.issue(readyC, in.ExecLatency()))
		doneC = issueC + lat
	case isa.FUMem:
		issueC = e.issue.take(e.memu.issue(readyC, 1))
		if in.IsLoad() {
			doneC = e.executeLoad(ev, seq, issueC)
		} else {
			doneC = issueC + 1
			e.st.Stores++
		}
	default:
		issueC = e.issue.take(e.alu.issue(readyC, 1))
		doneC = issueC + int64(in.ExecLatency())
	}

	// ---- Branch resolution penalties ------------------------------------
	if in.IsCondBranch() || in.IsJump() {
		e.resolveControl(ev, fetchC, doneC)
	}

	// ---- Commit ----------------------------------------------------------
	cc := doneC + 1
	if cc < e.lastCommitC {
		cc = e.lastCommitC
	}
	commitC := e.commitSlots.take(cc)
	e.lastCommitC = commitC
	e.commitRing[seq%int64(len(e.commitRing))] = commitC
	if in.IsMem() {
		e.memRing[e.memSeq%int64(len(e.memRing))] = commitC
		if in.IsStore() {
			s := &e.stores[e.memSeq%int64(len(e.stores))]
			*s = storeRec{seq: seq, addrW: ev.Addr &^ 7, readyC: doneC, commitC: commitC}
		}
		e.memSeq++
	}

	// ---- Wrong-path exercise (optional) ----------------------------------
	if e.cfg.WrongPathInject && e.pendingMispredict && in.IsCondBranch() {
		e.injectWrongPath(ev)
	}

	// ---- Destination metadata (shadow register file update) --------------
	if dest != core.NoPReg {
		m := &e.meta[dest]
		m.prevVal = m.val
		m.val = uint16(uint64(ev.Val)) & (1<<e.cfg.ARVI.ValueBits - 1)
		m.doneC = doneC
		m.commitC = commitC
		m.logical = uint8(in.Rd)
		m.isLoad = in.IsLoad()
		if in.IsLoad() {
			m.hoistAvail = e.hoistAvailability(ev, seq, addrReady, doneC, issueC)
		} else {
			m.hoistAvail = doneC + 1
		}
	}
}

// executeLoad computes a load's completion cycle: store-to-load forwarding
// from the LSQ when an older in-flight store matches the word address,
// otherwise a cache hierarchy access.
//
//arvi:hotpath
func (e *Engine) executeLoad(ev *vm.Event, seq, issueC int64) int64 {
	e.st.Loads++
	addrW := ev.Addr &^ 7
	if st := e.findForwardingStore(seq, addrW, issueC); st != nil {
		e.st.StoreForwarded++
		d := issueC
		if st.readyC > d {
			d = st.readyC
		}
		return d + 1
	}
	return issueC + int64(e.hier.DataAccess(ev.Addr))
}

// findForwardingStore returns the youngest older store to the same word
// still in the store queue at cycle at, or nil.
//
//arvi:hotpath
func (e *Engine) findForwardingStore(seq int64, addrW uint64, at int64) *storeRec {
	var best *storeRec
	for i := range e.stores {
		st := &e.stores[i]
		if st.seq < 0 || st.seq >= seq || st.addrW != addrW {
			continue
		}
		if st.commitC <= at { // already drained to the cache
			continue
		}
		if best == nil || st.seq > best.seq {
			best = st
		}
	}
	return best
}

// hoistAvailability implements the load-back model: the earliest cycle at
// which the loaded value would have been available had the load been moved
// back as far as its address operands (and conflicting older stores,
// resolved by run-time disambiguation) allow.
//
//arvi:hotpath
func (e *Engine) hoistAvailability(ev *vm.Event, seq, addrReady, doneC, issueC int64) int64 {
	start := addrReady
	addrW := ev.Addr &^ 7
	for i := range e.stores {
		st := &e.stores[i]
		if st.seq < 0 || st.seq >= seq || st.addrW != addrW {
			continue
		}
		if st.readyC > start {
			start = st.readyC // must wait for the forwarding data
		}
	}
	// The hoisted load takes the same memory latency the real one saw.
	lat := doneC - issueC
	if lat < 1 {
		lat = 1
	}
	avail := start + lat
	if avail > doneC {
		avail = doneC
	}
	return avail + 1
}

// predictBranch performs the full two-level prediction for a conditional
// branch fetched at fetchC and applies training updates.
//
//arvi:hotpath
func (e *Engine) predictBranch(ev *vm.Event, fetchC int64) {
	in := ev.Inst
	pc := uint64(ev.PC)
	taken := ev.Taken
	hist := e.hist.Bits
	e.st.CondBranches++
	if taken {
		e.st.TakenBranches++
	}

	l1 := e.l1.Predict(pc, hist)
	final := l1
	overrode := false

	if e.cfg.Mode == PredBaseline2Lvl {
		l2 := e.l2.Predict(pc, hist)
		if l2 != l1 {
			final = l2
			overrode = true
		}
		e.l2.Update(pc, hist, taken)
	} else {
		highConf := e.conf.High(pc, hist)
		// DDT read: dependence chain and leaf set for the branch sources.
		e.srcRegBuf = in.SrcRegs(e.srcRegBuf[:0])
		e.srcPregs = e.srcPregs[:0]
		for _, r := range e.srcRegBuf {
			//arvi:panicfree decoded source registers are below isa.NumRegs == len(mapTable)
			e.srcPregs = append(e.srcPregs, e.mapTable[r])
		}
		_, set, depth := e.ddt.LeafSet(e.srcPregs)
		leaves, class := e.resolveLeaves(set, fetchC)
		e.st.ChainDepthSum += int64(depth)
		e.st.LeafCountSum += int64(len(leaves))
		if class == ClassLoad {
			e.st.LoadBranches++
		} else {
			e.st.CalcBranches++
		}

		if !highConf {
			key := e.av.MakeKey(pc, leaves, depth)
			apred, hit, perf, strong := e.av.LookupEx(key)
			var used bool
			switch e.cfg.ARVIGateMode {
			case 1:
				used = hit && (strong || perf >= 3)
			case 2:
				used = hit && (strong || perf >= 2)
			default:
				used = hit && perf >= e.cfg.ARVIUseThreshold &&
					(!e.cfg.ARVIRequireStrong || strong)
			}
			if used {
				final = apred
				e.st.ARVIUsed++
				if final != l1 {
					overrode = true
				}
			}
			e.av.Update(key, taken, used)
		}
		if final != taken {
			if class == ClassLoad {
				e.st.LoadMispreds++
			} else {
				e.st.CalcMispreds++
			}
		}
	}

	if l1 != taken {
		e.st.L1Mispredicts++
	}
	if overrode {
		e.st.Overrides++
		if final == taken {
			e.st.OverrideGood++
		}
	}
	if final != taken {
		e.st.Mispredicts++
	}

	// Train the shared structures in program order.
	e.l1.Update(pc, hist, taken)
	e.conf.Update(pc, hist, l1 == taken)
	e.hist.Push(taken)

	// Front-end effects other than full misprediction are applied here;
	// the misprediction redirect needs the resolution cycle and is applied
	// in resolveControl.
	e.pendingOverride = 0
	if final == taken {
		if overrode {
			// The override restarted fetch at the L2 latency.
			e.pendingOverride = e.l2Lat
		} else if taken {
			e.pendingOverride = 1 // taken-branch fetch break
		}
	}
	e.pendingMispredict = final != taken
}

// predictJump models unconditional control flow: direct jumps are fully
// predicted (1-cycle taken bubble); JR uses a return-address stack pushed
// by JAL, with a misprediction redirect on a wrong target.
//
//arvi:hotpath
func (e *Engine) predictJump(ev *vm.Event, fetchC int64) {
	in := ev.Inst
	e.pendingOverride = 1 // taken redirect bubble
	e.pendingMispredict = false
	switch in.Op {
	case isa.OpJal:
		e.rasPush(int64(ev.PC + 1))
	case isa.OpJr:
		predicted := int64(-1)
		if v, ok := e.rasPop(); ok {
			predicted = v
		}
		if predicted != int64(ev.NextPC) {
			e.st.JumpMispreds++
			e.pendingMispredict = true
		}
	}
}

// resolveControl applies the front-end redirect cost decided during
// prediction, now that the resolution cycle is known.
//
//arvi:hotpath
func (e *Engine) resolveControl(ev *vm.Event, fetchC, doneC int64) {
	if e.pendingMispredict {
		if t := doneC + 1; t > e.nextFetchMin {
			e.nextFetchMin = t
		}
		return
	}
	if e.pendingOverride > 0 {
		if t := fetchC + e.pendingOverride; t > e.nextFetchMin {
			e.nextFetchMin = t
		}
	}
}

// resolveLeaves turns the RSE leaf register set into (logical id, value)
// pairs according to the configured value-availability mode, and classifies
// the branch instance as calculated or load. The set is iterated with a
// direct word scan — a ForEach closure here escapes (it captures class by
// reference) and would heap-allocate on every predicted branch.
//
//arvi:hotpath
//arvi:panicfree set is a physRegs-bit vector (DDT contract), so its bit positions index meta, and pregMeta.logical always holds a logical register below isa.NumRegs == len(archVal)
func (e *Engine) resolveLeaves(set bitvec.Vec, fetchC int64) ([]arvi.LeafValue, BranchClass) {
	e.leafBuf = e.leafBuf[:0]
	class := ClassCalculated
	for wi, w := range set {
		base := wi << 6
		for w != 0 {
			p := base + bits.TrailingZeros64(w)
			w &= w - 1
			m := &e.meta[p]
			avail := m.commitC <= fetchC || m.doneC+1 <= fetchC
			if !avail && e.cfg.Mode == PredARVILoadBack && m.isLoad && m.hoistAvail <= fetchC {
				avail = true
			}
			if !avail {
				class = ClassLoad
			}
			val := m.val
			if !avail && e.cfg.Mode != PredARVIPerfect {
				switch e.cfg.StalePolicy {
				case StaleArchValue:
					// Committed architectural value of the leaf's logical
					// register (shadow architectural register file).
					val = e.archVal[m.logical]
				case StaleMask:
					val = 0
				default: // StalePhysical: the paper's shadow regfile read
					val = m.prevVal
				}
			}
			e.leafBuf = append(e.leafBuf, arvi.LeafValue{Logical: m.logical, Value: val})
		}
	}
	return e.leafBuf, class
}

package cpu

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/vm"
)

// wrongPathBurst is how many wrong-path instructions a misprediction
// injects: roughly the front end's runahead before resolution.
const wrongPathBurst = 12

// wpUndo records one wrong-path rename so recovery can restore the
// checkpointed state. The engine keeps a reusable scratch slice of these
// (e.wpUndo) so injection allocates nothing in steady state.
type wpUndo struct {
	rd        isa.Reg
	newP      core.PhysReg
	oldP      core.PhysReg
	savedMeta pregMeta
}

// injectWrongPath renames a burst of wrong-path instructions into the DDT
// after a mispredicted conditional branch, then recovers exactly as the
// hardware would: the DDT head pointer rewinds (core.DDT.Rollback) and the
// rename map, free list and shadow state are restored from the checkpoint.
// The net effect on simulation state is nil; the value is exercising the
// recovery machinery under the full pipeline.
//
//arvi:hotpath
//arvi:panicfree decoded registers (SrcRegs, win.Rd, the recorded u.rd) are below isa.NumRegs == len(mapTable); freePop results and saved u.newP are below physRegs == len(meta); the recovery index starts at len(wpUndo)-1 and only decrements
func (e *Engine) injectWrongPath(ev *vm.Event) {
	in := ev.Inst
	// The wrong path is the direction fetch actually followed: the target
	// when the branch was really not taken, the fall-through otherwise.
	wpc := ev.PC + 1
	if !ev.Taken {
		wpc = int(in.Imm)
	}
	text := e.prog.Text

	e.wpUndo = e.wpUndo[:0]
	inserted := 0

	for k := 0; k < wrongPathBurst && wpc >= 0 && wpc < len(text); k++ {
		win := text[wpc]
		if win.Op == isa.OpHalt || e.ddt.Full() {
			break
		}
		e.srcRegBuf = win.SrcRegs(e.srcRegBuf[:0])
		e.srcPregs = e.srcPregs[:0]
		for _, r := range e.srcRegBuf {
			e.srcPregs = append(e.srcPregs, e.mapTable[r])
		}
		dest := core.NoPReg
		if win.HasDest() {
			if e.freeLen == 0 {
				break
			}
			dest = e.freePop()
			e.wpUndo = append(e.wpUndo, wpUndo{
				rd: win.Rd, newP: dest, oldP: e.mapTable[win.Rd],
				savedMeta: e.meta[dest],
			})
			e.mapTable[win.Rd] = dest
			// A real rename would start tracking the new producer; give
			// the recovery something to undo.
			e.meta[dest].logical = uint8(win.Rd)
			e.meta[dest].isLoad = win.IsLoad()
		}
		if _, err := e.ddt.Insert(dest, e.srcPregs, win.IsLoad()); err != nil {
			//arvi:cold invariant trap; the loop breaks before the table fills
			panic("cpu: wrong-path DDT insert failed: " + err.Error())
		}
		inserted++

		// Follow the wrong path through unconditional direct jumps; stop
		// at anything whose target we cannot know statically.
		switch {
		case win.Op == isa.OpJ || win.Op == isa.OpJal:
			wpc = int(win.Imm)
		case win.Op == isa.OpJr:
			wpc = len(text) // terminate
		default:
			wpc++
		}
	}

	// Recovery: the paper's Section 2 rollback plus rename checkpoint
	// restore, applied youngest-first. Registers return to the *front* of
	// the free ring so the pre-speculation allocation order is restored
	// exactly.
	if err := e.ddt.Rollback(inserted); err != nil {
		//arvi:cold invariant trap; inserted never exceeds the in-flight count
		panic("cpu: wrong-path rollback failed: " + err.Error())
	}
	for i := len(e.wpUndo) - 1; i >= 0; i-- {
		u := e.wpUndo[i]
		e.mapTable[u.rd] = u.oldP
		e.meta[u.newP] = u.savedMeta
		e.freePushFront(u.newP)
	}
}

package cpu

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// Fingerprint returns a stable content hash of the configuration, suitable
// for keying persistent result caches: two configs produce the same
// fingerprint iff every timing-relevant field (including the nested ARVI
// sizing) is identical. The hash covers the JSON encoding of the struct,
// so adding a field to Config changes every fingerprint — which is the
// safe direction for a cache key.
func (c Config) Fingerprint() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Config is a plain value struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("cpu: fingerprint config: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

package cpu

import (
	"io"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/prog"
	"repro/internal/vm"
)

func runSrc(t *testing.T, src string, cfg Config) Stats {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	st, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return st
}

// genIndependent builds a program of n fully independent single-cycle ALU
// instructions spread over many registers.
func genIndependent(n int) string {
	var b strings.Builder
	b.WriteString("main:\n")
	for i := 0; i < n; i++ {
		r := 1 + i%20
		b.WriteString("    addi r")
		b.WriteString(itoa(r))
		b.WriteString(", r0, 7\n")
	}
	b.WriteString("    halt\n")
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func TestIPCIndependentOps(t *testing.T) {
	st := runSrc(t, genIndependent(4000), DefaultConfig(20, PredBaseline2Lvl))
	if ipc := st.IPC(); ipc < 3.0 {
		t.Errorf("independent-op IPC = %.2f, want near 4", ipc)
	}
	if st.Insts != 4001 {
		t.Errorf("insts = %d", st.Insts)
	}
}

func TestIPCSerialChain(t *testing.T) {
	var b strings.Builder
	b.WriteString("main:\n")
	for i := 0; i < 2000; i++ {
		b.WriteString("    addi r1, r1, 1\n")
	}
	b.WriteString("    halt\n")
	st := runSrc(t, b.String(), DefaultConfig(20, PredBaseline2Lvl))
	if ipc := st.IPC(); ipc > 1.2 {
		t.Errorf("serial-chain IPC = %.2f, want ~1", ipc)
	}
}

func TestMulUnitContention(t *testing.T) {
	var b strings.Builder
	b.WriteString("main:\n")
	for i := 0; i < 1000; i++ {
		r := 1 + i%8
		b.WriteString("    mul r" + itoa(r) + ", r0, r0\n")
	}
	b.WriteString("    halt\n")
	st := runSrc(t, b.String(), DefaultConfig(20, PredBaseline2Lvl))
	// One non-pipelined 3-cycle multiplier: throughput bounded by 1/3.
	if ipc := st.IPC(); ipc > 0.45 {
		t.Errorf("mul-bound IPC = %.2f, want <= ~0.33", ipc)
	}
}

func TestDeeperPipelineSlowerOnMispredicts(t *testing.T) {
	// LCG-driven unpredictable branches: every depth pays per mispredict,
	// deeper pays more.
	src := `
main:
    li  r1, 12345      # lcg state
    li  r2, 1103515245
    li  r3, 12345
    li  r4, 0          # counter
    li  r5, 3000       # iterations
loop:
    mul r1, r1, r2
    add r1, r1, r3
    srli r6, r1, 16
    andi r6, r6, 1
    beq r6, r0, skip
    addi r7, r7, 1
skip:
    addi r4, r4, 1
    bne r4, r5, loop
    halt
`
	st20 := runSrc(t, src, DefaultConfig(20, PredBaseline2Lvl))
	st60 := runSrc(t, src, DefaultConfig(60, PredBaseline2Lvl))
	if st20.IPC() <= st60.IPC() {
		t.Errorf("20-stage IPC (%.3f) must exceed 60-stage (%.3f)", st20.IPC(), st60.IPC())
	}
	// The random branch should be mispredicted a lot.
	if acc := st20.PredAccuracy(); acc > 0.9 {
		t.Errorf("accuracy on random branches = %.3f, suspiciously high", acc)
	}
}

func TestPredictableLoopBranches(t *testing.T) {
	src := `
main:
    li r1, 0
    li r2, 5000
loop:
    addi r1, r1, 1
    bne r1, r2, loop
    halt
`
	st := runSrc(t, src, DefaultConfig(20, PredBaseline2Lvl))
	if acc := st.PredAccuracy(); acc < 0.99 {
		t.Errorf("loop-branch accuracy = %.4f, want ~1", acc)
	}
	if st.CondBranches != 5000 {
		t.Errorf("cond branches = %d", st.CondBranches)
	}
}

// miniM88k is the m88ksim-style kernel: an inner while loop whose trip
// count is fully determined by a value computed (and committed) well before
// the loop — the paper's Figure 7 scenario.
const miniM88k = `
main:
    li  r1, 98765      # lcg state
    li  r2, 16807
    li  r10, 0         # outer counter
    li  r11, 800       # outer iterations
outer:
    mul r1, r1, r2
    addi r1, r1, 11
    srli r3, r1, 12
    andi r3, r3, 7     # inner trip count 0..7 ("key")
    # padding so the trip count is committed before the inner loop
    addi r20, r20, 1
    addi r21, r21, 1
    addi r22, r22, 1
    addi r23, r23, 1
    li  r4, 0          # inner counter
inner:
    beq r4, r3, done   # exit branch: value-determined
    addi r4, r4, 1
    j   inner
done:
    addi r10, r10, 1
    bne r10, r11, outer
    halt
`

func TestARVIBeatsBaselineOnValueDeterminedBranch(t *testing.T) {
	base := runSrc(t, miniM88k, DefaultConfig(20, PredBaseline2Lvl))
	av := runSrc(t, miniM88k, DefaultConfig(20, PredARVICurrent))
	if av.PredAccuracy() <= base.PredAccuracy() {
		t.Errorf("ARVI accuracy (%.4f) must beat baseline (%.4f)",
			av.PredAccuracy(), base.PredAccuracy())
	}
	if av.IPC() <= base.IPC() {
		t.Errorf("ARVI IPC (%.3f) must beat baseline (%.3f)", av.IPC(), base.IPC())
	}
	if av.ARVILookups == 0 || av.ARVIUsed == 0 {
		t.Errorf("ARVI never consulted: %+v", av)
	}
}

func TestBranchClassification(t *testing.T) {
	// A branch directly on a freshly loaded value (pointer-chase style)
	// must classify as a load branch; a branch on long-committed values
	// must classify as calculated.
	src := `
    .data
tab: .word 1, 2, 3, 4, 5, 6, 7, 0
    .text
main:
    li  r9, 0
    li  r8, 2000
loop:
    andi r2, r9, 7
    slli r2, r2, 3
    la  r3, tab
    add r3, r3, r2
    lw  r4, 0(r3)       # load
    beq r4, r0, zero    # branch on loaded value -> load branch
zero:
    addi r9, r9, 1
    bne r9, r8, loop    # branch on committed counter -> mixed/calc
    halt
`
	st := runSrc(t, src, DefaultConfig(20, PredARVICurrent))
	if st.LoadBranches == 0 {
		t.Error("no load branches classified")
	}
	if st.CalcBranches == 0 {
		t.Error("no calculated branches classified")
	}
	if st.LoadBranches+st.CalcBranches != st.CondBranches {
		t.Errorf("class counts %d+%d != branches %d",
			st.LoadBranches, st.CalcBranches, st.CondBranches)
	}
}

func TestLoadBranchFractionGrowsWithDepth(t *testing.T) {
	src := `
    .data
tab: .word 3, 1, 4, 1, 5, 9, 2, 6
    .text
main:
    li  r9, 0
    li  r8, 3000
loop:
    andi r2, r9, 7
    slli r2, r2, 3
    la  r3, tab
    add r3, r3, r2
    lw  r4, 0(r3)
    andi r4, r4, 1
    bne r4, r0, odd
odd:
    addi r9, r9, 1
    bne r9, r8, loop
    halt
`
	st20 := runSrc(t, src, DefaultConfig(20, PredARVICurrent))
	st60 := runSrc(t, src, DefaultConfig(60, PredARVICurrent))
	if st20.LoadBranchFraction() > st60.LoadBranchFraction() {
		t.Errorf("load-branch fraction must not shrink with depth: %.3f -> %.3f",
			st20.LoadBranchFraction(), st60.LoadBranchFraction())
	}
}

func TestPerfectValueAtLeastAsGoodAsCurrent(t *testing.T) {
	src := `
    .data
tab: .word 0, 1, 0, 1, 1, 0, 1, 0
    .text
main:
    li  r1, 5555
    li  r9, 0
    li  r8, 2500
loop:
    mul r1, r1, r1
    addi r1, r1, 17
    srli r2, r1, 9
    andi r2, r2, 7
    slli r2, r2, 3
    la  r3, tab
    add r3, r3, r2
    lw  r4, 0(r3)
    beq r4, r0, skip    # outcome = loaded value, random index
    addi r6, r6, 1
skip:
    addi r9, r9, 1
    bne r9, r8, loop
    halt
`
	cur := runSrc(t, src, DefaultConfig(20, PredARVICurrent))
	per := runSrc(t, src, DefaultConfig(20, PredARVIPerfect))
	if per.PredAccuracy()+1e-9 < cur.PredAccuracy() {
		t.Errorf("perfect (%.4f) must be >= current (%.4f)",
			per.PredAccuracy(), cur.PredAccuracy())
	}
}

func TestStoreForwarding(t *testing.T) {
	src := `
    .data
buf: .space 64
    .text
main:
    li r9, 0
    li r8, 1000
loop:
    la r3, buf
    sw r9, 0(r3)
    lw r4, 0(r3)       # forwarded from the store
    addi r9, r9, 1
    bne r9, r8, loop
    halt
`
	st := runSrc(t, src, DefaultConfig(20, PredBaseline2Lvl))
	if st.StoreForwarded == 0 {
		t.Error("no store-to-load forwarding observed")
	}
}

func TestCacheMissesSlowLoads(t *testing.T) {
	mk := func(stride int) string {
		return `
    .data
buf: .space 2097152
    .text
main:
    li r9, 0
    li r8, 3000
    la r3, buf
loop:
    lw r4, 0(r3)
    addi r3, r3, ` + itoa(stride) + `
    addi r9, r9, 1
    bne r9, r8, loop
    halt
`
	}
	dense := runSrc(t, mk(8), DefaultConfig(20, PredBaseline2Lvl))
	sparse := runSrc(t, mk(512), DefaultConfig(20, PredBaseline2Lvl))
	if sparse.IPC() >= dense.IPC() {
		t.Errorf("strided misses must hurt: dense %.3f vs sparse %.3f",
			dense.IPC(), sparse.IPC())
	}
	if sparse.L1DMissRate <= dense.L1DMissRate {
		t.Errorf("miss rates: dense %.3f, sparse %.3f", dense.L1DMissRate, sparse.L1DMissRate)
	}
}

func TestCallReturnPredictedByRAS(t *testing.T) {
	src := `
main:
    li r9, 0
    li r8, 2000
loop:
    call fn
    addi r9, r9, 1
    bne r9, r8, loop
    halt
fn:
    addi r5, r5, 1
    ret
`
	st := runSrc(t, src, DefaultConfig(20, PredBaseline2Lvl))
	if st.JumpMispreds > 2 {
		t.Errorf("RAS mispredicts = %d, want ~0", st.JumpMispreds)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(20, PredBaseline2Lvl)
	bad.ROB = 0
	if _, err := NewEngine(bad); err == nil {
		t.Error("zero ROB accepted")
	}
	bad = DefaultConfig(0, PredBaseline2Lvl)
	if _, err := NewEngine(bad); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestL2LatencyTable4(t *testing.T) {
	// Table 4: hybrid 2/4/6, ARVI 6/12/18 for 20/40/60 stages.
	cases := []struct {
		depth int
		mode  PredMode
		want  int
	}{
		{20, PredBaseline2Lvl, 2}, {40, PredBaseline2Lvl, 4}, {60, PredBaseline2Lvl, 6},
		{20, PredARVICurrent, 6}, {40, PredARVICurrent, 12}, {60, PredARVICurrent, 18},
	}
	for _, c := range cases {
		if got := DefaultConfig(c.depth, c.mode).L2Latency(); got != c.want {
			t.Errorf("L2Latency(%d, %v) = %d, want %d", c.depth, c.mode, got, c.want)
		}
	}
}

func TestMaxInsts(t *testing.T) {
	cfg := DefaultConfig(20, PredBaseline2Lvl)
	cfg.MaxInsts = 100
	p := asm.MustAssemble("inf", "main:\n  j main\n")
	st, err := Run(p, cfg)
	if err != nil || st.Insts != 100 {
		t.Errorf("MaxInsts run = %d, %v", st.Insts, err)
	}
}

func TestROBLimitsWindow(t *testing.T) {
	// A long-latency load followed by thousands of independent ops: the
	// ROB caps how much parallelism is exposed, so a tiny ROB must be
	// slower than the default.
	src := `
    .data
buf: .space 4194304
    .text
main:
    li r9, 0
    li r8, 40
    la r3, buf
loop:
    lw r4, 0(r3)
    add r5, r5, r4
` + strings.Repeat("    addi r6, r6, 1\n", 100) + `
    addi r3, r3, 65536
    addi r9, r9, 1
    bne r9, r8, loop
    halt
`
	small := DefaultConfig(20, PredBaseline2Lvl)
	small.ROB = 16
	big := DefaultConfig(20, PredBaseline2Lvl)
	sSmall := runSrc(t, src, small)
	sBig := runSrc(t, src, big)
	if sSmall.IPC() >= sBig.IPC() {
		t.Errorf("ROB=16 IPC %.3f must be below ROB=256 IPC %.3f", sSmall.IPC(), sBig.IPC())
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Insts: 100, Cycles: 50, CondBranches: 10, Mispredicts: 2,
		CalcBranches: 6, CalcMispreds: 3, LoadBranches: 4, LoadMispreds: 1}
	if s.IPC() != 2 {
		t.Errorf("IPC = %v", s.IPC())
	}
	if s.PredAccuracy() != 0.8 {
		t.Errorf("acc = %v", s.PredAccuracy())
	}
	if s.ClassAccuracy(ClassCalculated) != 0.5 {
		t.Errorf("calc acc = %v", s.ClassAccuracy(ClassCalculated))
	}
	if s.ClassAccuracy(ClassLoad) != 0.75 {
		t.Errorf("load acc = %v", s.ClassAccuracy(ClassLoad))
	}
	if s.LoadBranchFraction() != 0.4 {
		t.Errorf("lbf = %v", s.LoadBranchFraction())
	}
	var z Stats
	if z.IPC() != 0 || z.PredAccuracy() != 1 || z.LoadBranchFraction() != 0 {
		t.Error("zero-stats helpers wrong")
	}
	if z.ClassAccuracy(ClassCalculated) != 1 || z.ClassAccuracy(ClassLoad) != 1 {
		t.Error("zero class accuracy wrong")
	}
}

func TestProgramValidation(t *testing.T) {
	p := &prog.Program{Name: "empty"}
	if _, err := Run(p, DefaultConfig(20, PredBaseline2Lvl)); err == nil {
		t.Error("empty program accepted")
	}
}

// resetTestKernel mixes serial chains, unpredictable and loop branches,
// loads, stores and calls so an engine run touches every per-run structure:
// the DDT, RAS, free ring, store queue, ARVI, confidence and both gskew
// levels.
const resetTestKernel = `
main:
    li  r1, 424242     # lcg state
    li  r2, 1103515245
    li  r9, 0          # counter
    li  r10, 1500      # iterations
    li  r12, 256       # data base
loop:
    mul r1, r1, r2
    addi r1, r1, 12345
    srli r3, r1, 13
    andi r3, r3, 63
    add r4, r12, r3
    sw  r1, 0(r4)      # store to a hashed slot
    lw  r5, 0(r4)      # forwarded load
    andi r6, r5, 1
    beq r6, r0, even
    addi r7, r7, 1
even:
    jal helper
    addi r9, r9, 1
    bne r9, r10, loop
    halt
helper:
    addi r8, r8, 3
    jr  r31
`

// TestEngineResetDeterminism pins the Reset contract the sim-layer engine
// pool depends on: a reset engine must reproduce a fresh engine's
// statistics bit for bit, for every predictor mode.
func TestEngineResetDeterminism(t *testing.T) {
	p, err := asm.Assemble("t", resetTestKernel)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	for _, mode := range []PredMode{PredBaseline2Lvl, PredARVICurrent, PredARVILoadBack, PredARVIPerfect} {
		cfg := DefaultConfig(20, mode)
		cfg.MaxInsts = 15_000
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := eng.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		// A second run on dirty state must diverge-proof via Reset only.
		for i := 0; i < 2; i++ {
			eng.Reset()
			again, err := eng.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if again != fresh {
				t.Errorf("%v: reset run %d diverged:\nfresh %+v\nreset %+v", mode, i, fresh, again)
			}
		}
	}
}

// TestEngineResetMatchesWrongPathInjection extends the Reset contract to
// the wrong-path exercise machinery (its undo scratch and free-ring
// front-pushes must also reset cleanly).
func TestEngineResetMatchesWrongPathInjection(t *testing.T) {
	p, err := asm.Assemble("t", resetTestKernel)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cfg := DefaultConfig(20, PredARVICurrent)
	cfg.MaxInsts = 10_000
	cfg.WrongPathInject = true
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := eng.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	eng.Reset()
	again, err := eng.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if again != fresh {
		t.Errorf("wrong-path inject reset diverged:\nfresh %+v\nreset %+v", fresh, again)
	}
}

// sliceSource replays pre-recorded events (test-local EventSource).
type sliceSource struct {
	evs []vm.Event
	i   int
}

func (s *sliceSource) Next(ev *vm.Event) error {
	if s.i >= len(s.evs) {
		return io.EOF
	}
	*ev = s.evs[s.i]
	s.i++
	return nil
}

// TestSteadyStateAllocFree is the per-event allocation regression guard of
// the hot path: after warm-up, replaying the full timing model (fetch,
// rename, DDT insert, ARVI prediction, issue, commit) must not allocate at
// all. The free-list and RAS rings plus the closure-free leaf resolution
// are what make this hold; any regression shows up as a non-zero
// AllocsPerRun.
func TestSteadyStateAllocFree(t *testing.T) {
	p, err := asm.Assemble("t", resetTestKernel)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	// Pre-record the dynamic trace so the VM is outside the measured loop.
	var evs []vm.Event
	m := vm.New(p)
	for len(evs) < 12_000 && !m.Halt {
		var ev vm.Event
		if err := m.Step(&ev); err != nil {
			break
		}
		evs = append(evs, ev)
	}
	for _, mode := range []PredMode{PredBaseline2Lvl, PredARVICurrent} {
		cfg := DefaultConfig(20, mode)
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := &sliceSource{evs: evs}
		run := func() {
			eng.Reset()
			src.i = 0
			if _, err := eng.RunSource(p, src); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm-up: scratch buffers reach steady-state capacity
		if avg := testing.AllocsPerRun(5, run); avg != 0 {
			t.Errorf("%v: steady-state run allocates %.1f times, want 0", mode, avg)
		}
	}
}

// Package cpu implements the out-of-order superscalar timing model of
// Table 2: 4-wide fetch/decode/commit, a 256-entry ROB, a 32-entry
// load/store queue, 4 integer ALUs + 1 multiplier, and configurable
// pipeline depth (20/40/60 stages).
//
// The model is an analytic replay over the correct-path dynamic trace
// produced by the functional VM: for each retired instruction the engine
// computes fetch, dispatch, ready, issue, completion and commit cycles
// under bandwidth, functional-unit, ROB/LSQ occupancy and data-dependence
// constraints. Branch mispredictions redirect fetch at branch resolution,
// so the penalty scales with pipeline depth exactly as the paper requires;
// wrong-path fetch appears as front-end bubbles (no wrong-path pollution —
// see DESIGN.md).
//
// The engine maintains the paper's machinery exactly in rename order:
// register rename onto a physical register file (early rename at fetch, as
// ARVI requires), the DDT/RSE (package core) and the two-level override
// predictor (level-1 2Bc-gskew plus either a large 2Bc-gskew or ARVI at
// level 2).
package cpu

import (
	"fmt"

	"repro/internal/arvi"
)

// PredMode selects the level-2 predictor configuration (Section 5).
type PredMode int

const (
	// PredBaseline2Lvl: level-1 4 KB 2Bc-gskew + level-2 32 KB 2Bc-gskew.
	PredBaseline2Lvl PredMode = iota
	// PredARVICurrent: ARVI at level 2 using currently available values.
	PredARVICurrent
	// PredARVILoadBack: ARVI with the load-back hoisting optimisation.
	PredARVILoadBack
	// PredARVIPerfect: ARVI with oracle values (upper bound).
	PredARVIPerfect
)

var predModeNames = map[PredMode]string{
	PredBaseline2Lvl: "2lvl-2bc-gskew",
	PredARVICurrent:  "arvi-current",
	PredARVILoadBack: "arvi-loadback",
	PredARVIPerfect:  "arvi-perfect",
}

// String returns the mode's report name.
func (m PredMode) String() string { return predModeNames[m] }

// UsesARVI reports whether the mode places ARVI at level 2.
func (m PredMode) UsesARVI() bool { return m != PredBaseline2Lvl }

// Config parameterises one simulation.
type Config struct {
	// Depth is the pipeline depth in stages: 20, 40 or 60. It sets the
	// fetch-to-execute latency and, with it, the misprediction penalty.
	Depth int
	// Mode selects the level-2 predictor.
	Mode PredMode

	FetchWidth  int // instructions fetched per cycle (4)
	CommitWidth int // instructions committed per cycle (4)
	ROB         int // reorder-buffer entries (256)
	LSQ         int // load/store queue entries (32)
	IntALU      int // single-cycle integer units (4)
	IntMul      int // multiply/divide units (1)
	MemPorts    int // cache ports (2)

	// L1PredEntries is the per-bank size of the level-1 2Bc-gskew
	// (4096 two-bit counters = 1 KB per bank, 4 KB total).
	L1PredEntries int
	// L2PredEntries is the per-bank size of the baseline level-2 hybrid
	// (32768 counters = 8 KB per bank, 32 KB total).
	L2PredEntries int
	// ConfThreshold is the JRS confidence threshold gating ARVI use.
	ConfThreshold uint8
	// ARVIUseThreshold is the minimum Heil performance-counter value an
	// ARVI entry needs before its prediction overrides the level-1
	// predictor. Entries below it keep training but do not steer fetch.
	ARVIUseThreshold uint8
	// StalePolicy selects what an unavailable leaf contributes to the
	// BVIT index (see the constants).
	StalePolicy StalePolicy
	// ARVIRequireStrong, when set, lets ARVI override the level-1
	// prediction only when the matched entry's direction counter is
	// saturated. Oscillating entries (value-unpredictable branches) then
	// train without steering fetch.
	ARVIRequireStrong bool
	// ARVIGateMode selects experimental composite gates (used by the
	// gating ablation): 0 = plain (threshold + optional strong),
	// 1 = use when strong OR perf>=3, 2 = use when strong OR perf>=2.
	ARVIGateMode int

	// ARVI is the BVIT configuration.
	ARVI arvi.Config
	// CutAtLoads selects the DDT chain ablation (DESIGN.md).
	CutAtLoads bool

	// MaxInsts bounds the simulation length (0 = run to halt).
	MaxInsts int64

	// WrongPathInject, when set, renames a burst of wrong-path
	// instructions into the DDT after every direction misprediction and
	// then recovers with the paper's rollback (head-pointer rewind plus
	// rename-map restore). Timing and statistics are unaffected by
	// construction — the flag exists to exercise the recovery machinery
	// under the full pipeline (see TestWrongPathInjectionIsTransparent).
	WrongPathInject bool
}

// DefaultConfig returns the Table 2 machine at the given depth and mode.
func DefaultConfig(depth int, mode PredMode) Config {
	return Config{
		Depth: depth, Mode: mode,
		FetchWidth: 4, CommitWidth: 4,
		ROB: 256, LSQ: 32,
		IntALU: 4, IntMul: 1, MemPorts: 2,
		L1PredEntries: 4096, L2PredEntries: 32768,
		ConfThreshold: 8, ARVIUseThreshold: 1,
		ARVI: arvi.DefaultConfig(),
	}
}

// L2Latency returns the level-2 predictor access latency (Table 4).
func (c Config) L2Latency() int {
	base := c.Depth / 20
	if base < 1 {
		base = 1
	}
	if c.Mode.UsesARVI() {
		return 6 * base // 6 / 12 / 18
	}
	return 2 * base // 2 / 4 / 6
}

// FrontLatency returns the fetch-to-execute pipeline latency implied by the
// depth: an instruction cannot begin execution earlier than
// fetch + FrontLatency.
func (c Config) FrontLatency() int {
	f := c.Depth - 4 // leave a few back-end stages
	if f < 1 {
		f = 1
	}
	return f
}

func (c Config) validate() error {
	if c.Depth <= 0 || c.FetchWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("cpu: non-positive width/depth in config")
	}
	if c.ROB <= 0 || c.LSQ <= 0 || c.IntALU <= 0 || c.IntMul <= 0 || c.MemPorts <= 0 {
		return fmt.Errorf("cpu: non-positive structure size in config")
	}
	return nil
}

// StalePolicy selects the value an unavailable leaf register contributes
// to the BVIT index hash.
type StalePolicy int

const (
	// StalePhysical is the paper's literal semantics and the default: the
	// shadow register file mirrors the *physical* register file, so an
	// unavailable leaf reads whatever the previous occupant of that
	// physical register left behind. In steady-state loops the free list
	// rotates with the loop, so this stale content is surprisingly well
	// correlated with the path (it is why li benefits strongly from ARVI).
	StalePhysical StalePolicy = iota
	// StaleMask contributes nothing for unavailable leaves: the index is
	// formed from the available values only, keeping it deterministic for
	// a given program point. The availability information comes from the
	// issue scoreboard the rename stage already consults.
	StaleMask
	// StaleArchValue reads the committed architectural value of the
	// leaf's logical register (a 32-entry shadow of the architectural
	// file). Cheap, but the lag between fetch and commit makes the read
	// timing dependent.
	StaleArchValue
)

// BranchClass labels a dynamic conditional branch per Section 4.1.
type BranchClass int

const (
	// ClassCalculated: every leaf value was available at prediction time.
	ClassCalculated BranchClass = iota
	// ClassLoad: the chain terminated in a pending load.
	ClassLoad
)

// Stats aggregates one simulation run.
type Stats struct {
	Insts  int64
	Cycles int64

	CondBranches   int64
	Mispredicts    int64 // final (post-override) direction mispredictions
	L1Mispredicts  int64 // what the level-1 alone would have missed
	Overrides      int64 // level-2 changed the level-1 direction
	OverrideGood   int64 // ... and was right to do so
	JumpMispreds   int64 // indirect-jump target mispredictions
	TakenBranches  int64
	CalcBranches   int64 // dynamic calculated branches (ARVI modes)
	LoadBranches   int64 // dynamic load branches (ARVI modes)
	CalcMispreds   int64
	LoadMispreds   int64
	ARVIUsed       int64 // branches where ARVI steered the prediction
	ARVIHits       int64
	ARVILookups    int64
	ChainDepthSum  int64 // summed dependence-chain depth over lookups
	LeafCountSum   int64 // summed leaf-set size over lookups
	Loads, Stores  int64
	L1DMissRate    float64
	L2MissRate     float64
	L1IMissRate    float64
	StoreForwarded int64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// PredAccuracy returns the final conditional-branch prediction accuracy.
func (s Stats) PredAccuracy() float64 {
	if s.CondBranches == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.CondBranches)
}

// ClassAccuracy returns the prediction accuracy for the given class.
func (s Stats) ClassAccuracy(c BranchClass) float64 {
	switch c {
	case ClassCalculated:
		if s.CalcBranches == 0 {
			return 1
		}
		return 1 - float64(s.CalcMispreds)/float64(s.CalcBranches)
	default:
		if s.LoadBranches == 0 {
			return 1
		}
		return 1 - float64(s.LoadMispreds)/float64(s.LoadBranches)
	}
}

// LoadBranchFraction returns the Figure 5(a) metric.
func (s Stats) LoadBranchFraction() float64 {
	t := s.CalcBranches + s.LoadBranches
	if t == 0 {
		return 0
	}
	return float64(s.LoadBranches) / float64(t)
}

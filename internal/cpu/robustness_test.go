package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// TestRandomConfigsRobust sweeps randomized machine configurations through
// a short run to shake out structural-size edge cases (tiny ROBs, single
// ports, narrow widths) in the timing model.
func TestRandomConfigsRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := workload.ByName("gcc").Prog
	depths := []int{20, 40, 60}
	modes := []PredMode{PredBaseline2Lvl, PredARVICurrent, PredARVILoadBack, PredARVIPerfect}
	for i := 0; i < 24; i++ {
		cfg := DefaultConfig(depths[rng.Intn(3)], modes[rng.Intn(4)])
		cfg.ROB = 8 << rng.Intn(6)        // 8..256
		cfg.LSQ = 4 << rng.Intn(4)        // 4..32
		cfg.FetchWidth = 1 + rng.Intn(4)  // 1..4
		cfg.CommitWidth = 1 + rng.Intn(4) // 1..4
		cfg.IntALU = 1 + rng.Intn(4)      // 1..4
		cfg.MemPorts = 1 + rng.Intn(2)    // 1..2
		cfg.StalePolicy = StalePolicy(rng.Intn(3))
		cfg.ARVIGateMode = rng.Intn(3)
		cfg.CutAtLoads = rng.Intn(2) == 0
		cfg.WrongPathInject = rng.Intn(2) == 0
		cfg.MaxInsts = 3000

		st, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("config %d (%+v): %v", i, cfg, err)
		}
		if st.Insts != 3000 {
			t.Fatalf("config %d: insts = %d", i, st.Insts)
		}
		if st.Cycles < st.Insts/int64(cfg.FetchWidth) {
			t.Errorf("config %d: cycles %d below the fetch bound", i, st.Cycles)
		}
		if st.IPC() <= 0 || st.IPC() > float64(cfg.FetchWidth) {
			t.Errorf("config %d: IPC %v outside (0,%d]", i, st.IPC(), cfg.FetchWidth)
		}
	}
}

// TestNarrowMachineSlower checks that width actually constrains throughput.
func TestNarrowMachineSlower(t *testing.T) {
	p := workload.ByName("ijpeg").Prog
	wide := DefaultConfig(20, PredBaseline2Lvl)
	wide.MaxInsts = 30_000
	narrow := wide
	narrow.FetchWidth = 1
	narrow.CommitWidth = 1
	narrow.IntALU = 1
	sWide, err := Run(p, wide)
	if err != nil {
		t.Fatal(err)
	}
	sNarrow, err := Run(p, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if sNarrow.IPC() >= sWide.IPC() {
		t.Errorf("narrow IPC %.3f must trail wide IPC %.3f", sNarrow.IPC(), sWide.IPC())
	}
	if sNarrow.IPC() > 1.0 {
		t.Errorf("single-wide machine cannot exceed IPC 1, got %.3f", sNarrow.IPC())
	}
}

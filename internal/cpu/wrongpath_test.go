package cpu

import (
	"testing"

	"repro/internal/workload"
)

// TestWrongPathInjectionIsTransparent is the integration test for the
// paper's Section 2 rollback: after every misprediction a burst of
// wrong-path instructions is renamed into the DDT and then squashed via
// Rollback plus a rename-map checkpoint restore. If recovery is exact, the
// run's statistics are bit-identical to a run without injection.
func TestWrongPathInjectionIsTransparent(t *testing.T) {
	for _, bench := range []string{"gcc", "li", "m88ksim"} {
		p := workload.ByName(bench).Prog
		plain := DefaultConfig(20, PredARVICurrent)
		plain.MaxInsts = 40_000
		inject := plain
		inject.WrongPathInject = true

		a, err := Run(p, plain)
		if err != nil {
			t.Fatalf("%s plain: %v", bench, err)
		}
		b, err := Run(p, inject)
		if err != nil {
			t.Fatalf("%s inject: %v", bench, err)
		}
		if a != b {
			t.Errorf("%s: wrong-path injection changed results\nplain:  %+v\ninject: %+v",
				bench, a, b)
		}
		if a.Mispredicts == 0 {
			t.Errorf("%s: no mispredicts — injection path never exercised", bench)
		}
	}
}

// TestWrongPathInjectionKeepsAggregatesCoherent pins the incremental RSE
// against the wrong-path undo: injected inserts evict tracked slots from
// the running aggregates, the rollback leaves their marks in place, and
// subsequent LeafSet reads must still diff cleanly. A drifted counter would
// not necessarily change the run's stats (the leaf set could coincide), so
// the aggregate state is checked directly after the run.
func TestWrongPathInjectionKeepsAggregatesCoherent(t *testing.T) {
	for _, bench := range []string{"gcc", "li"} {
		p := workload.ByName(bench).Prog
		cfg := DefaultConfig(20, PredARVICurrent)
		cfg.MaxInsts = 40_000
		cfg.WrongPathInject = true
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		stats, err := e.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if stats.Mispredicts == 0 {
			t.Fatalf("%s: no mispredicts — injection path never exercised", bench)
		}
		if err := e.ddt.VerifyRSEAggregates(); err != nil {
			t.Errorf("%s: aggregates drifted after wrong-path bursts: %v", bench, err)
		}
	}
}

// TestWrongPathInjectionBaselineMode covers injection under the baseline
// predictor (no ARVI reads between insert and rollback).
func TestWrongPathInjectionBaselineMode(t *testing.T) {
	p := workload.ByName("go").Prog
	cfg := DefaultConfig(20, PredBaseline2Lvl)
	cfg.MaxInsts = 30_000
	inj := cfg
	inj.WrongPathInject = true
	a, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, inj)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("baseline injection changed results")
	}
}

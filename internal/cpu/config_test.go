package cpu

import (
	"testing"

	"repro/internal/workload"
)

func runLi(t *testing.T, mutate func(*Config)) Stats {
	t.Helper()
	cfg := DefaultConfig(20, PredARVICurrent)
	cfg.MaxInsts = 20_000
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := Run(workload.ByName("li").Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStalePoliciesAllRun(t *testing.T) {
	for _, pol := range []StalePolicy{StalePhysical, StaleMask, StaleArchValue} {
		st := runLi(t, func(c *Config) { c.StalePolicy = pol })
		if st.Insts != 20_000 || st.ARVILookups == 0 {
			t.Errorf("policy %d: degenerate run %+v", pol, st)
		}
		if acc := st.PredAccuracy(); acc < 0.5 || acc > 1 {
			t.Errorf("policy %d: accuracy %v out of range", pol, acc)
		}
	}
}

func TestGateModesAllRun(t *testing.T) {
	var used [3]int64
	for gate := 0; gate < 3; gate++ {
		st := runLi(t, func(c *Config) { c.ARVIGateMode = gate })
		used[gate] = st.ARVIUsed
		if st.CondBranches == 0 {
			t.Fatalf("gate %d: no branches", gate)
		}
	}
	// Stricter gates must not use ARVI more often than the plain gate.
	if used[1] > used[0] || used[2] > used[0] {
		t.Errorf("gating did not restrict usage: %v", used)
	}
}

func TestRequireStrongRestrictsUsage(t *testing.T) {
	plain := runLi(t, nil)
	strict := runLi(t, func(c *Config) { c.ARVIRequireStrong = true })
	if strict.ARVIUsed > plain.ARVIUsed {
		t.Errorf("require-strong used ARVI more: %d > %d", strict.ARVIUsed, plain.ARVIUsed)
	}
}

func TestCutAtLoadsRuns(t *testing.T) {
	st := runLi(t, func(c *Config) { c.CutAtLoads = true })
	if st.ARVILookups == 0 {
		t.Error("cut-at-loads run degenerate")
	}
}

func TestHierarchyAccessor(t *testing.T) {
	e, err := NewEngine(DefaultConfig(20, PredBaseline2Lvl))
	if err != nil {
		t.Fatal(err)
	}
	h := e.Hierarchy()
	if h == nil || h.L1D == nil || h.L2 == nil {
		t.Fatal("hierarchy not exposed")
	}
	cfg := DefaultConfig(20, PredBaseline2Lvl)
	cfg.MaxInsts = 5000
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(workload.ByName("gcc").Prog); err != nil {
		t.Fatal(err)
	}
	if eng.Hierarchy().L1D.Accesses() == 0 {
		t.Error("no data-cache traffic recorded")
	}
}

func TestPredModeStrings(t *testing.T) {
	for _, m := range []PredMode{PredBaseline2Lvl, PredARVICurrent, PredARVILoadBack, PredARVIPerfect} {
		if m.String() == "" {
			t.Errorf("mode %d has no name", m)
		}
	}
	if PredBaseline2Lvl.UsesARVI() || !PredARVIPerfect.UsesARVI() {
		t.Error("UsesARVI wrong")
	}
}

func TestFrontLatencyScalesWithDepth(t *testing.T) {
	l20 := DefaultConfig(20, PredBaseline2Lvl).FrontLatency()
	l60 := DefaultConfig(60, PredBaseline2Lvl).FrontLatency()
	if l60 <= l20 || l20 < 1 {
		t.Errorf("front latency: 20-stage %d, 60-stage %d", l20, l60)
	}
}

package cpu

import "testing"

func TestFingerprintStability(t *testing.T) {
	a := DefaultConfig(20, PredARVICurrent)
	b := DefaultConfig(20, PredARVICurrent)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical configs must share a fingerprint")
	}
	if len(a.Fingerprint()) != 64 {
		t.Errorf("fingerprint %q not a sha256 hex digest", a.Fingerprint())
	}
}

func TestFingerprintCoversEveryKnob(t *testing.T) {
	base := DefaultConfig(20, PredARVICurrent)
	mutations := map[string]func(*Config){
		"depth":          func(c *Config) { c.Depth = 40 },
		"mode":           func(c *Config) { c.Mode = PredBaseline2Lvl },
		"max insts":      func(c *Config) { c.MaxInsts = 123 },
		"conf threshold": func(c *Config) { c.ConfThreshold = 3 },
		"cut at loads":   func(c *Config) { c.CutAtLoads = true },
		"stale policy":   func(c *Config) { c.StalePolicy = StaleMask },
		"gate mode":      func(c *Config) { c.ARVIGateMode = 2 },
		"require strong": func(c *Config) { c.ARVIRequireStrong = true },
		"arvi sets":      func(c *Config) { c.ARVI.Sets = 1024 },
		"rob":            func(c *Config) { c.ROB = 128 },
	}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		if c.Fingerprint() == base.Fingerprint() {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// The streaming matrix format (/v1/matrix?stream=1) is chunked JSON
// lines: one compact JSON object per line, each carrying exactly one of
//
//	{"result": <sim.Result>}   — a completed cell, in completion order
//	{"done": <StreamTrailer>}  — the trailer; always the last line
//
// Cells arrive in completion order, which is nondeterministic; the
// byte-identity contract therefore lives one level up: the reassembled
// cell *set* matches the non-streamed response exactly, and the trailer
// carries the totals and the joined partial-failure error the blocking
// response would have carried. A stream that ends without a trailer was
// truncated (worker death, connection loss) and must be treated as a
// failed request, never as a short result set.

// MaxStreamLine caps one stream line's length. A sim.Result encodes in
// well under a kilobyte; a megabyte line means a confused or hostile
// sender and fails the decode instead of ballooning memory.
const MaxStreamLine = 1 << 20

// StreamLine is one line of the matrix stream.
type StreamLine struct {
	Result *sim.Result    `json:"result,omitempty"`
	Done   *StreamTrailer `json:"done,omitempty"`
}

// StreamTrailer ends a matrix stream: the request's budget and cell
// count (so a client can detect missing cells without knowing the grid
// shape) and the joined error under the partial-result contract.
type StreamTrailer struct {
	MaxInsts int64  `json:"max_insts"`
	Cells    int    `json:"cells"`
	Error    string `json:"error,omitempty"`
}

// EncodeStreamLine renders one line, newline-terminated. Unlike the
// blocking responses the stream is compact (one object per line is the
// framing; indentation would break it).
func EncodeStreamLine(l StreamLine) []byte {
	b, err := json.Marshal(l)
	if err != nil {
		// StreamLine is a plain value struct; this is a programming error,
		// not an input error.
		panic(fmt.Sprintf("dist: marshal stream line: %v", err))
	}
	return append(b, '\n')
}

// DecodeMatrixStream reads a full matrix stream and returns the
// reassembled cells plus the trailer. Malformed input — junk lines, a
// line carrying both or neither field, data after the trailer, an
// oversized line, or a stream that ends without a trailer — fails with
// an error and whatever cells decoded before the corruption, so a caller
// can degrade without ever mistaking a truncated stream for a complete
// one.
func DecodeMatrixStream(r io.Reader) ([]sim.Result, *StreamTrailer, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxStreamLine)
	var results []sim.Result
	var trailer *StreamTrailer
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if trailer != nil {
			return results, nil, fmt.Errorf("dist: stream line %d: data after trailer", line)
		}
		l, err := decodeStreamLine(raw)
		if err != nil {
			return results, nil, fmt.Errorf("dist: stream line %d: %w", line, err)
		}
		if l.Result != nil {
			results = append(results, *l.Result)
		} else {
			trailer = l.Done
		}
	}
	if err := sc.Err(); err != nil {
		return results, nil, fmt.Errorf("dist: stream read: %w", err)
	}
	if trailer == nil {
		return results, nil, fmt.Errorf("dist: stream truncated: no trailer after %d cells", len(results))
	}
	return results, trailer, nil
}

// decodeStreamLine strictly decodes one line: unknown fields, trailing
// data, and anything but exactly one of result/done are errors.
func decodeStreamLine(raw []byte) (StreamLine, error) {
	var l StreamLine
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&l); err != nil {
		return StreamLine{}, fmt.Errorf("bad line: %v", err)
	}
	if dec.More() {
		return StreamLine{}, fmt.Errorf("trailing data after line object")
	}
	if (l.Result == nil) == (l.Done == nil) {
		return StreamLine{}, fmt.Errorf("line must carry exactly one of result, done")
	}
	return l, nil
}

package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// newTestCoordinator builds a coordinator over fake worker URLs with
// fast retry tuning. No HTTP happens in this file: runJob takes the
// remote attempt as a closure, so placement, retries, cooldown and
// fallback are all testable in-process.
func newTestCoordinator(bases ...string) *Coordinator {
	c := &Coordinator{Backoff: time.Millisecond, Cooldown: time.Minute}
	c.SetWorkers(bases)
	return c
}

func rankedBases(c *Coordinator, key string) []string {
	order := c.rank(key)
	bases := make([]string, len(order))
	for i, w := range order {
		bases[i] = w.base
	}
	return bases
}

// TestRendezvousPlacementStableAndSpread pins the placement properties
// the cache-locality story rests on: a key's worker order is a pure
// function of (workers, key) — stable across calls and independent of
// registration order — and different keys spread across all workers.
func TestRendezvousPlacementStableAndSpread(t *testing.T) {
	bases := []string{"http://w0", "http://w1", "http://w2"}
	c := newTestCoordinator(bases...)
	reversed := newTestCoordinator(bases[2], bases[1], bases[0])

	first := make(map[string]int)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		got := rankedBases(c, key)
		if again := rankedBases(c, key); strings.Join(got, " ") != strings.Join(again, " ") {
			t.Fatalf("rank(%q) unstable: %v then %v", key, got, again)
		}
		if other := rankedBases(reversed, key); strings.Join(got, " ") != strings.Join(other, " ") {
			t.Fatalf("rank(%q) depends on registration order: %v vs %v", key, got, other)
		}
		first[got[0]]++
	}
	for _, b := range bases {
		if first[b] == 0 {
			t.Errorf("worker %s never ranked first in 100 keys; rendezvous is not spreading", b)
		}
	}
}

// TestRankDeprioritisesCoolingWorker pins the health policy: a failing
// worker moves to the back of every ranking for the cooldown — never
// out of it — and returns to its rendezvous position afterwards.
func TestRankDeprioritisesCoolingWorker(t *testing.T) {
	c := newTestCoordinator("http://w0", "http://w1", "http://w2")
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	// Find a key that prefers w0, then fail w0.
	key := ""
	for i := 0; ; i++ {
		key = fmt.Sprintf("key-%d", i)
		if rankedBases(c, key)[0] == "http://w0" {
			break
		}
	}
	c.workers[0].fail(now, c.cooldown())

	order := rankedBases(c, key)
	if order[len(order)-1] != "http://w0" {
		t.Errorf("cooling worker not moved to the back: %v", order)
	}
	if len(order) != 3 {
		t.Errorf("cooling worker excluded from placement entirely: %v", order)
	}
	st := c.Workers()
	if !st[0].Down || st[0].Failures != 1 {
		t.Errorf("worker status after failure: %+v", st[0])
	}

	// Past the cooldown the worker is first again without any explicit
	// recovery signal.
	now = now.Add(c.cooldown() + time.Second)
	if got := rankedBases(c, key)[0]; got != "http://w0" {
		t.Errorf("worker still deprioritised after cooldown: first = %s", got)
	}
}

// TestRunJobRetriesAcrossWorkersThenLocal walks one job through the full
// failure ladder: every worker refuses, the local fallback answers, and
// the counters account for each step.
func TestRunJobRetriesAcrossWorkersThenLocal(t *testing.T) {
	c := newTestCoordinator("http://w0", "http://w1")
	var tried []string
	err := c.runJob(context.Background(), "somekey",
		func(_ context.Context, base string) error {
			tried = append(tried, base)
			return errors.New("boom")
		},
		func(context.Context) error { return nil })
	if err != nil {
		t.Fatalf("job with a working local fallback failed: %v", err)
	}
	if len(tried) != 2 || tried[0] == tried[1] {
		t.Errorf("remote attempts %v, want one per distinct worker", tried)
	}
	if c.RetriedJobs() != 1 || c.LocalJobs() != 1 || c.RemoteJobs() != 0 {
		t.Errorf("counters retried=%d local=%d remote=%d, want 1/1/0", c.RetriedJobs(), c.LocalJobs(), c.RemoteJobs())
	}

	// Without a local fallback the job reports every worker's error.
	err = c.runJob(context.Background(), "somekey",
		func(_ context.Context, base string) error { return fmt.Errorf("down: %s", base) },
		nil)
	if err == nil || !strings.Contains(err.Error(), "http://w0") || !strings.Contains(err.Error(), "http://w1") {
		t.Errorf("joined error missing a worker: %v", err)
	}
}

// TestRunJobNoWorkersNoLocal pins the useless-coordinator error.
func TestRunJobNoWorkersNoLocal(t *testing.T) {
	c := &Coordinator{}
	err := c.runJob(context.Background(), "k", func(context.Context, string) error { return nil }, nil)
	if err == nil || !strings.Contains(err.Error(), "no workers registered and no local engine") {
		t.Errorf("err = %v", err)
	}
}

// TestRunJobHonorsCancellation pins that a canceled sweep stops spending
// attempts: the job reports the cancellation itself, not worker noise.
func TestRunJobHonorsCancellation(t *testing.T) {
	c := newTestCoordinator("http://w0", "http://w1")
	ctx, cancel := context.WithCancel(context.Background())
	err := c.runJob(ctx, "k",
		func(context.Context, string) error {
			cancel() // the failure below is "our" cancellation propagating
			return context.Canceled
		},
		func(context.Context) error { t.Error("local fallback ran after cancel"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if c.RetriedJobs() != 0 {
		t.Errorf("canceled job recorded %d retries", c.RetriedJobs())
	}
}

// TestWorkerRegistration pins SetWorkers/AddWorker hygiene: trailing
// slashes normalise, duplicates and empties are dropped, AddWorker
// reports newness.
func TestWorkerRegistration(t *testing.T) {
	c := &Coordinator{}
	c.SetWorkers([]string{"http://w0/", "http://w0", "", "http://w1"})
	st := c.Workers()
	if len(st) != 2 || st[0].URL != "http://w0" || st[1].URL != "http://w1" {
		t.Fatalf("workers after SetWorkers: %+v", st)
	}
	if c.AddWorker("http://w1/") {
		t.Error("AddWorker reported an existing worker as new")
	}
	if !c.AddWorker("http://w2") {
		t.Error("AddWorker reported a new worker as known")
	}
	if got := len(c.Workers()); got != 3 {
		t.Errorf("worker count = %d, want 3", got)
	}
}

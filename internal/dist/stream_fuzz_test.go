package dist

// Fuzz over the streaming wire format: DecodeMatrixStream consumes bytes
// straight off a network connection, so arbitrary input must never
// panic, a truncated or corrupted stream must always report an error
// (never pass as a short-but-complete result set), and anything the
// encoder produces must round-trip.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func FuzzDecodeMatrixStream(f *testing.F) {
	spec := sim.Spec{Bench: "li", Depth: 20, MaxInsts: 5000}
	var valid bytes.Buffer
	valid.Write(EncodeStreamLine(StreamLine{Result: &sim.Result{Spec: spec}}))
	valid.Write(EncodeStreamLine(StreamLine{Done: &StreamTrailer{MaxInsts: 5000, Cells: 1}}))
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte(`{"done":{"max_insts":1,"cells":0}}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"result":{}}{"done":{}}`))
	f.Add([]byte(strings.Repeat("x", 4096)))

	f.Fuzz(func(t *testing.T, raw []byte) {
		results, trailer, err := DecodeMatrixStream(bytes.NewReader(raw))
		if err != nil {
			if trailer != nil {
				t.Fatalf("failed decode still returned a trailer: %+v", trailer)
			}
			return
		}
		if trailer == nil {
			t.Fatal("clean decode without a trailer")
		}
		// Whatever decoded cleanly must re-encode to a stream that decodes
		// to the same shape: the codec is closed over its own output.
		var rt bytes.Buffer
		for i := range results {
			rt.Write(EncodeStreamLine(StreamLine{Result: &results[i]}))
		}
		rt.Write(EncodeStreamLine(StreamLine{Done: trailer}))
		results2, trailer2, err := DecodeMatrixStream(&rt)
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if len(results2) != len(results) || *trailer2 != *trailer {
			t.Fatalf("round trip drifted: %d/%d cells, trailer %+v vs %+v", len(results), len(results2), trailer, trailer2)
		}
	})
}

package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/smt"
	"repro/internal/workload"
)

// Tuning defaults; see the corresponding Coordinator fields.
const (
	// DefaultRetries is how many *additional* workers a failed job is
	// offered before falling back to local compute.
	DefaultRetries = 2
	// DefaultBackoff is the base delay before a job's first retry; each
	// further retry doubles it.
	DefaultBackoff = 50 * time.Millisecond
	// DefaultCooldown is how long a worker that just failed is
	// deprioritised in placement rankings.
	DefaultCooldown = 2 * time.Second
	// maxResponse caps how much of a worker response the coordinator will
	// read; a confused worker must not balloon coordinator memory. Study
	// responses carry a full grid slice, so the cap is generous.
	maxResponse = 8 << 20
)

// Coordinator fans per-cell jobs out to worker arvid daemons and merges
// their answers. The zero value is not useful — at minimum register
// workers with SetWorkers/AddWorker or provide a Local engine; a
// Coordinator with neither fails every job.
//
// All fields are read-only after first use; the worker set itself may be
// mutated concurrently through AddWorker.
type Coordinator struct {
	// Local, when non-nil, computes jobs whose remote attempts are all
	// spent — the cluster can lose every worker and a sweep still
	// completes, just slower. Nil means remote-only (a fully failed job
	// reports its joined worker errors).
	Local *sim.Engine
	// Client issues worker requests; nil means a client with a 60-second
	// timeout. Per-request contexts still apply, so a canceled sweep
	// abandons in-flight calls immediately.
	Client *http.Client
	// Retries bounds the additional workers a failed job is offered
	// (total remote attempts = Retries+1, clipped to the worker count).
	// <= 0 means DefaultRetries.
	Retries int
	// Backoff is the delay before a job's first retry, doubling per
	// further retry. <= 0 means DefaultBackoff.
	Backoff time.Duration
	// Cooldown is how long a failing worker is deprioritised (never
	// excluded: a wrong health guess costs latency, not correctness).
	// <= 0 means DefaultCooldown.
	Cooldown time.Duration
	// PerWorker bounds concurrent jobs in flight to one worker. It should
	// not exceed the worker's -max-inflight, or bursts bounce off the
	// worker's 429 guard and burn retries. <= 0 means GOMAXPROCS (half
	// the worker default, leaving room for the worker's other clients).
	PerWorker int
	// MaxInflight bounds this coordinator's total concurrently dispatched
	// jobs (and goroutine spawn, like sim.Engine's pool). <= 0 means
	// 4×GOMAXPROCS.
	MaxInflight int

	// now is a test seam for health bookkeeping; nil means time.Now.
	now func() time.Time

	mu      sync.RWMutex
	workers []*worker

	remote  atomic.Int64 // jobs answered by a worker
	retried atomic.Int64 // extra remote attempts after a failure
	local   atomic.Int64 // jobs that fell back to the local engine
}

// worker tracks one registered worker daemon and its health.
type worker struct {
	base string // normalised base URL, no trailing slash
	sem  chan struct{}

	mu        sync.Mutex
	failures  int64
	downUntil time.Time
}

// fail records a failed call, starting (or extending) the cooldown.
func (w *worker) fail(now time.Time, cooldown time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failures++
	w.downUntil = now.Add(cooldown)
}

// ok records a successful call, ending any cooldown.
func (w *worker) ok() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.downUntil = time.Time{}
}

// available reports whether the worker is outside its failure cooldown.
func (w *worker) available(now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !now.Before(w.downUntil)
}

func (w *worker) failureCount() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failures
}

// SetWorkers replaces the worker set with the given base URLs
// (deduplicated, trailing slashes trimmed).
func (c *Coordinator) SetWorkers(bases []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers = nil
	for _, b := range bases {
		c.addLocked(b)
	}
}

// AddWorker registers one worker base URL; it reports whether the worker
// was new. Safe to call while sweeps are in flight — jobs dispatched
// after the call may land on the new worker.
func (c *Coordinator) AddWorker(base string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addLocked(base)
}

func (c *Coordinator) addLocked(base string) bool {
	base = normalizeBase(base)
	if base == "" {
		return false
	}
	for _, w := range c.workers {
		if w.base == base {
			return false
		}
	}
	per := c.PerWorker
	if per <= 0 {
		per = runtime.GOMAXPROCS(0)
	}
	c.workers = append(c.workers, &worker{base: base, sem: make(chan struct{}, per)})
	return true
}

func normalizeBase(base string) string {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return base
}

// WorkerStatus is one worker's health snapshot, for /healthz.
type WorkerStatus struct {
	URL      string `json:"url"`
	Failures int64  `json:"failures"`
	Down     bool   `json:"down"`
}

// Workers snapshots the registered workers in registration order.
func (c *Coordinator) Workers() []WorkerStatus {
	now := c.clock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]WorkerStatus, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerStatus{URL: w.base, Failures: w.failureCount(), Down: !w.available(now)}
	}
	return out
}

// RemoteJobs, RetriedJobs and LocalJobs report lifetime counters: jobs a
// worker answered, extra remote attempts spent on failures, and jobs the
// local engine computed after remote attempts were exhausted. The chaos
// suite pins loss cost with these (a worker death mid-sweep must cost
// only the lost cells' recompute).
func (c *Coordinator) RemoteJobs() int64  { return c.remote.Load() }
func (c *Coordinator) RetriedJobs() int64 { return c.retried.Load() }
func (c *Coordinator) LocalJobs() int64   { return c.local.Load() }

func (c *Coordinator) clock() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return defaultClient
}

var defaultClient = &http.Client{Timeout: 60 * time.Second}

// rank orders the workers for one job: rendezvous (highest-random-weight)
// hashing over (worker, job key), with workers in failure cooldown
// stably moved to the back. Rendezvous gives each key a stable worker
// preference independent of registration order, so a cell keeps hitting
// the worker whose cache holds it, and adding a worker only moves the
// keys that now rank it first.
func (c *Coordinator) rank(key string) []*worker {
	c.mu.RLock()
	ws := make([]*worker, len(c.workers))
	copy(ws, c.workers)
	c.mu.RUnlock()
	scores := make(map[*worker]uint64, len(ws))
	for _, w := range ws {
		scores[w] = rendezvousScore(w.base, key)
	}
	sort.SliceStable(ws, func(i, j int) bool { return scores[ws[i]] > scores[ws[j]] })
	now := c.clock()
	ordered := make([]*worker, 0, len(ws))
	var cooling []*worker
	for _, w := range ws {
		if w.available(now) {
			ordered = append(ordered, w)
		} else {
			cooling = append(cooling, w)
		}
	}
	return append(ordered, cooling...)
}

// rendezvousScore hashes (worker, key) into the weight the ranking
// maximises.
func rendezvousScore(base, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(base))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// retries resolves the Retries default.
func (c *Coordinator) retries() int {
	if c.Retries <= 0 {
		return DefaultRetries
	}
	return c.Retries
}

// sleepBackoff waits out the delay before retry number attempt (1-based),
// doubling per attempt, unless ctx ends first.
func (c *Coordinator) sleepBackoff(ctx context.Context, attempt int) error {
	d := c.Backoff
	if d <= 0 {
		d = DefaultBackoff
	}
	d <<= attempt - 1
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// runJob drives one job through placement, bounded retries and the local
// fallback. remote performs the job against one worker base URL; local
// (nil when no fallback exists) computes it on the coordinator.
func (c *Coordinator) runJob(ctx context.Context, key string, remote func(ctx context.Context, base string) error, local func(ctx context.Context) error) error {
	order := c.rank(key)
	attempts := c.retries() + 1
	if attempts > len(order) {
		attempts = len(order)
	}
	var errs []error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i > 0 {
			c.retried.Add(1)
			if err := c.sleepBackoff(ctx, i); err != nil {
				return err
			}
		}
		w := order[i]
		err := c.withWorker(ctx, w, remote)
		if err == nil {
			w.ok()
			c.remote.Add(1)
			return nil
		}
		if ctx.Err() != nil {
			// The failure is our own cancellation propagating, not the
			// worker's; report it as such and spend no more attempts.
			return ctx.Err()
		}
		w.fail(c.clock(), c.cooldown())
		errs = append(errs, fmt.Errorf("worker %s: %w", w.base, err))
	}
	if local != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.local.Add(1)
		if err := local(ctx); err != nil {
			return errors.Join(append(errs, err)...)
		}
		return nil
	}
	if len(errs) == 0 {
		return errors.New("dist: no workers registered and no local engine")
	}
	return errors.Join(errs...)
}

func (c *Coordinator) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return DefaultCooldown
	}
	return c.Cooldown
}

// withWorker runs one remote attempt under the worker's inflight bound
// (so a burst of jobs cannot bounce off the worker's 429 guard).
func (c *Coordinator) withWorker(ctx context.Context, w *worker, remote func(ctx context.Context, base string) error) error {
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-w.sem }()
	return remote(ctx, w.base)
}

// pool executes n independent jobs with bounded concurrency and bounded
// goroutine spawn, mirroring sim.Engine's pool: a slot is acquired before
// each goroutine exists, canceled jobs run inline on the fast-fail path,
// and pool never returns with a spawned goroutine still live.
func (c *Coordinator) pool(ctx context.Context, n int, job func(i int)) {
	inflight := c.MaxInflight
	if inflight <= 0 {
		inflight = 4 * runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			job(i) // fast-fail path: records the cancellation error
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			job(i)
		}(i)
	}
	wg.Wait()
}

// --- wire helpers ---------------------------------------------------------

// errorBody mirrors the server's uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// postJSON POSTs req to base+path and decodes a 200 response into out.
// Any other status is surfaced as an error carrying the worker's own
// message when it sent one.
func (c *Coordinator) postJSON(ctx context.Context, base, path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("encode request: %w", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponse))
	if err != nil {
		return fmt.Errorf("read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("status %d: %s", resp.StatusCode, eb.Error)
		}
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(b, out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// runRequest mirrors the server's /v1/run request body. The mode travels
// as its report name (sim.ParseMode accepts both spellings), so the job
// a worker validates is spelled exactly like the result it returns.
type runRequest struct {
	Bench         string `json:"bench"`
	Depth         int    `json:"depth"`
	Mode          string `json:"mode"`
	MaxInsts      int64  `json:"max_insts"`
	CutAtLoads    bool   `json:"cut_at_loads"`
	ConfThreshold uint   `json:"conf_threshold"`
}

// runSpec computes one matrix cell: remotely via POST /v1/run with
// bounded retries, locally as the last resort.
func (c *Coordinator) runSpec(ctx context.Context, spec sim.Spec) (sim.Result, error) {
	var out sim.Result
	req := runRequest{
		Bench: spec.Bench, Depth: spec.Depth, Mode: spec.Mode.String(),
		MaxInsts: spec.MaxInsts, CutAtLoads: spec.CutAtLoads,
		ConfThreshold: uint(spec.ConfThreshold),
	}
	err := c.runJob(ctx, sim.CacheKey(spec, spec.Config()),
		func(ctx context.Context, base string) error {
			var r sim.Result
			if err := c.postJSON(ctx, base, "/v1/run", req, &r); err != nil {
				return err
			}
			// A worker answering for the wrong cell is a protocol bug, not
			// data; treat it as a failed attempt so a healthy worker (or the
			// local engine) re-answers.
			if r.Spec.Bench != spec.Bench || r.Spec.Depth != spec.Depth || r.Spec.Mode != spec.Mode {
				return fmt.Errorf("answered for %s, asked for %s", r.Spec, spec)
			}
			out = r
			return nil
		},
		c.localSpec(spec, &out))
	if err != nil {
		return sim.Result{}, fmt.Errorf("dist: %s: %w", spec, err)
	}
	return out, nil
}

// localSpec builds the local-fallback closure for one spec, or nil
// without a local engine.
func (c *Coordinator) localSpec(spec sim.Spec, out *sim.Result) func(context.Context) error {
	if c.Local == nil {
		return nil
	}
	return func(ctx context.Context) error {
		results, err := c.Local.Run(ctx, []sim.Spec{spec})
		if err != nil {
			return fmt.Errorf("local: %w", err)
		}
		*out = results[0]
		return nil
	}
}

// RunSpecs executes the specs as distributed jobs and returns the
// completed results in spec order, mirroring sim.Engine.RunEach: done
// (when non-nil) fires per spec as it settles, partial results survive
// partial failure, and per-spec errors are joined.
func (c *Coordinator) RunSpecs(ctx context.Context, specs []sim.Spec, done func(i int, r sim.Result, err error)) ([]sim.Result, error) {
	results := make([]sim.Result, len(specs))
	errs := make([]error, len(specs))
	c.pool(ctx, len(specs), func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("dist: %s: %w", specs[i], err)
		} else {
			results[i], errs[i] = c.runSpec(ctx, specs[i])
		}
		if done != nil {
			done(i, results[i], errs[i])
		}
	})
	finished := results[:0]
	for i := range results {
		if errs[i] == nil {
			finished = append(finished, results[i])
		}
	}
	return finished, errors.Join(errs...)
}

// Matrix runs the (bench × depth × mode) grid distributed and folds the
// answers into a sim.Matrix. Rendering the returned matrix through the
// same Records path as a local run is what makes distributed output
// byte-identical to single-node output: cell identity (the cache key)
// and iteration order are shared, only the executor differs.
func (c *Coordinator) Matrix(ctx context.Context, benches []string, depths []int, modes []cpu.PredMode, maxInsts int64) (*sim.Matrix, error) {
	res, err := c.RunSpecs(ctx, sim.MatrixSpecs(benches, depths, modes, maxInsts), nil)
	mx := &sim.Matrix{MaxInsts: maxInsts}
	for _, r := range res {
		mx.Add(r)
	}
	return mx, err
}

// --- study jobs -----------------------------------------------------------

// smtRequest and smtResponse mirror the server's /v1/study/smt bodies.
type smtRequest struct {
	Mixes     []string `json:"mixes"`
	MaxCycles int64    `json:"max_cycles"`
}

type smtResponse struct {
	Config smt.Config      `json:"config"`
	Cells  []sim.SMTRecord `json:"cells"`
	Error  string          `json:"error,omitempty"`
}

// SMTGrid runs the SMT fetch-policy study distributed, one job per mix
// (a mix's policy cells share its thread set; splitting finer would buy
// little and cost the worker its per-mix program resolution). The
// returned records concatenate the per-mix answers in request order —
// exactly sim.SMTGrid.Records' mix-major iteration, so the merged slice
// is byte-compatible with a single-node run.
func (c *Coordinator) SMTGrid(ctx context.Context, mixes []workload.Mix, cfg smt.Config) ([]sim.SMTRecord, error) {
	perMix := make([][]sim.SMTRecord, len(mixes))
	errs := make([]error, len(mixes))
	c.pool(ctx, len(mixes), func(i int) {
		perMix[i], errs[i] = c.runSMTMix(ctx, mixes[i], cfg)
	})
	var out []sim.SMTRecord
	for _, cells := range perMix {
		out = append(out, cells...)
	}
	return out, errors.Join(errs...)
}

func (c *Coordinator) runSMTMix(ctx context.Context, mix workload.Mix, cfg smt.Config) ([]sim.SMTRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: smt %s: %w", mix.Name, err)
	}
	// The job key is the mix's first policy cell's study key: any of the
	// mix's cells pins the full configuration, and one stable choice keeps
	// the mix's placement (and so its cache locality) consistent.
	key, err := sim.StudyKey(sim.SMTStudy{Mix: mix, Policy: sim.SMTPolicies[0], Config: cfg})
	if err != nil {
		return nil, fmt.Errorf("dist: smt %s: %w", mix.Name, err)
	}
	var cells []sim.SMTRecord
	err = c.runJob(ctx, key,
		func(ctx context.Context, base string) error {
			var resp smtResponse
			req := smtRequest{Mixes: []string{mix.Name}, MaxCycles: cfg.MaxCycles}
			if perr := c.postJSON(ctx, base, "/v1/study/smt", req, &resp); perr != nil {
				return perr
			}
			if len(resp.Cells) != len(sim.SMTPolicies) {
				return fmt.Errorf("answered %d cells for mix %s, want %d", len(resp.Cells), mix.Name, len(sim.SMTPolicies))
			}
			for _, cell := range resp.Cells {
				if cell.Mix != mix.Name {
					return fmt.Errorf("answered for mix %s, asked for %s", cell.Mix, mix.Name)
				}
			}
			cells = resp.Cells
			return nil
		},
		c.localSMT(mix, cfg, &cells))
	if err != nil {
		return nil, fmt.Errorf("dist: smt %s: %w", mix.Name, err)
	}
	return cells, nil
}

func (c *Coordinator) localSMT(mix workload.Mix, cfg smt.Config, out *[]sim.SMTRecord) func(context.Context) error {
	if c.Local == nil {
		return nil
	}
	return func(ctx context.Context) error {
		g, err := c.Local.RunSMTGrid(ctx, []workload.Mix{mix}, sim.SMTPolicies, cfg)
		if err != nil {
			return fmt.Errorf("local: %w", err)
		}
		*out = g.Records()
		return nil
	}
}

// vpredRequest and vpredResponse mirror the server's /v1/study/vpred
// bodies.
type vpredRequest struct {
	Benches      []string `json:"benches"`
	Predictors   []string `json:"predictors"`
	MaxInsts     int64    `json:"max_insts"`
	DepThreshold int      `json:"dep_threshold"`
}

type vpredResponse struct {
	Params sim.VPredParams   `json:"params"`
	Cells  []sim.VPredRecord `json:"cells"`
	Error  string            `json:"error,omitempty"`
}

// VPredGrid runs the value-prediction study distributed, one job per
// (bench × predictor) pair (its all/selective cells share the bench's
// trace). Per-pair answers concatenate in request order — exactly
// sim.VPredGrid.Records' bench-major iteration.
func (c *Coordinator) VPredGrid(ctx context.Context, benches, predictors []string, params sim.VPredParams) ([]sim.VPredRecord, error) {
	type pair struct{ bench, pred string }
	var pairs []pair
	for _, b := range benches {
		for _, p := range predictors {
			pairs = append(pairs, pair{b, p})
		}
	}
	perPair := make([][]sim.VPredRecord, len(pairs))
	errs := make([]error, len(pairs))
	c.pool(ctx, len(pairs), func(i int) {
		perPair[i], errs[i] = c.runVPredPair(ctx, pairs[i].bench, pairs[i].pred, params)
	})
	var out []sim.VPredRecord
	for _, cells := range perPair {
		out = append(out, cells...)
	}
	return out, errors.Join(errs...)
}

func (c *Coordinator) runVPredPair(ctx context.Context, bench, pred string, params sim.VPredParams) ([]sim.VPredRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: vpred %s/%s: %w", bench, pred, err)
	}
	key, err := sim.StudyKey(sim.VPredStudy{Bench: bench, Predictor: pred, Selective: false, Params: params})
	if err != nil {
		return nil, fmt.Errorf("dist: vpred %s/%s: %w", bench, pred, err)
	}
	var cells []sim.VPredRecord
	err = c.runJob(ctx, key,
		func(ctx context.Context, base string) error {
			var resp vpredResponse
			req := vpredRequest{
				Benches: []string{bench}, Predictors: []string{pred},
				MaxInsts: params.MaxInsts, DepThreshold: params.DepThreshold,
			}
			if perr := c.postJSON(ctx, base, "/v1/study/vpred", req, &resp); perr != nil {
				return perr
			}
			if len(resp.Cells) != 2 {
				return fmt.Errorf("answered %d cells for %s/%s, want 2", len(resp.Cells), bench, pred)
			}
			for _, cell := range resp.Cells {
				if cell.Bench != bench || cell.Predictor != pred {
					return fmt.Errorf("answered for %s/%s, asked for %s/%s", cell.Bench, cell.Predictor, bench, pred)
				}
			}
			cells = resp.Cells
			return nil
		},
		c.localVPred(bench, pred, params, &cells))
	if err != nil {
		return nil, fmt.Errorf("dist: vpred %s/%s: %w", bench, pred, err)
	}
	return cells, nil
}

func (c *Coordinator) localVPred(bench, pred string, params sim.VPredParams, out *[]sim.VPredRecord) func(context.Context) error {
	if c.Local == nil {
		return nil
	}
	return func(ctx context.Context) error {
		g, err := c.Local.RunVPredGrid(ctx, []string{bench}, []string{pred}, params)
		if err != nil {
			return fmt.Errorf("local: %w", err)
		}
		*out = g.Records()
		return nil
	}
}

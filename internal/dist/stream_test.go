package dist

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestStreamRoundTrip encodes a small stream and decodes it back.
func TestStreamRoundTrip(t *testing.T) {
	spec := sim.Spec{Bench: "li", Depth: 20, MaxInsts: 5000}
	var b strings.Builder
	b.Write(EncodeStreamLine(StreamLine{Result: &sim.Result{Spec: spec}}))
	b.WriteString("\n") // blank lines are tolerated between objects
	b.Write(EncodeStreamLine(StreamLine{Done: &StreamTrailer{MaxInsts: 5000, Cells: 1}}))

	results, trailer, err := DecodeMatrixStream(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Spec != spec {
		t.Errorf("results = %+v", results)
	}
	if trailer.Cells != 1 || trailer.MaxInsts != 5000 || trailer.Error != "" {
		t.Errorf("trailer = %+v", trailer)
	}
}

// TestStreamDecodeRejects pins the decoder's strictness: every malformed
// shape fails with an error rather than passing as a short result set.
func TestStreamDecodeRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "no trailer"},
		{"truncated", `{"result":{}}` + "\n", "no trailer"},
		{"junk line", "not json\n", "bad line"},
		{"unknown field", `{"shrug":1}` + "\n", "bad line"},
		{"neither field", `{}` + "\n", "exactly one"},
		{"both fields", `{"result":{},"done":{"max_insts":1,"cells":0}}` + "\n", "exactly one"},
		{"data after trailer", `{"done":{"max_insts":1,"cells":0}}` + "\n" + `{"result":{}}` + "\n", "data after trailer"},
		{"two objects one line", `{"result":{}} {"result":{}}` + "\n", "trailing data"},
		{"oversized line", `{"result":{"Spec":{"Bench":"` + strings.Repeat("a", MaxStreamLine) + `"}}}` + "\n", "stream read"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeMatrixStream(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestStreamDecodeKeepsCellsBeforeCorruption pins the partial-result
// contract: cells decoded before the corruption survive, so a client can
// degrade (e.g. recompute only the tail) instead of starting over.
func TestStreamDecodeKeepsCellsBeforeCorruption(t *testing.T) {
	in := `{"result":{"Spec":{"Bench":"li"}}}` + "\ngarbage\n"
	results, trailer, err := DecodeMatrixStream(strings.NewReader(in))
	if err == nil || trailer != nil {
		t.Fatalf("corrupt stream decoded cleanly: trailer=%+v err=%v", trailer, err)
	}
	if len(results) != 1 || results[0].Spec.Bench != "li" {
		t.Errorf("surviving cells = %+v, want the one pre-corruption cell", results)
	}
}

// Package dist is the coordinator tier of arvid's distributed sweep
// execution: one daemon in the coordinator role decomposes a matrix or
// study request into per-cell jobs and fans them out over HTTP to a
// registered set of worker arvid daemons, then merges the answers into
// exactly the response a single node would have produced.
//
// The design leans entirely on identities the system already has:
//
//   - Job identity is cache identity. A matrix cell's job key is its
//     result-cache key (canonical-JSON + SHA-256 over Spec and the full
//     derived cpu.Config); a study job's key is its sim.StudyKey. Two
//     coordinators — or a coordinator and a local run — can never
//     disagree about what a job means, because the key pins every
//     parameter that affects the answer.
//   - Placement is rendezvous hashing over (worker, job key), so a given
//     cell lands on the same worker across sweeps and retries walk the
//     same deterministic preference order. That gives cache affinity
//     without any assignment state to persist or repair.
//   - The wire protocol is the public worker API. A matrix cell is one
//     POST /v1/run; an SMT mix is one POST /v1/study/smt with a single
//     mix; a vpred (bench, predictor) pair is one POST /v1/study/vpred.
//     Workers validate with the same internal/sim rules as always — the
//     coordinator holds no privileged channel.
//
// Failure handling is bounded and local: a failed or timed-out job is
// retried on the next worker in its preference order with exponential
// backoff, a worker that failed recently is deprioritised (never
// excluded — a wrong health guess must cost latency, not correctness),
// and when every worker attempt is spent the coordinator computes the
// cell on its own engine. Per-job errors merge under the same
// errors.Join partial-result contract the engine uses, so a distributed
// sweep degrades exactly like a local one.
//
// Merging preserves the single-node byte-identity contract. Matrix
// results are folded into a sim.Matrix and rendered through the same
// Records path as a local run; study grids are reassembled by
// concatenating per-job record slices in request order, which is the
// grids' own iteration order. The cluster tests pin distributed output
// byte-for-byte against single-node output.
//
// See DESIGN.md's distributed execution section for the full contract,
// including the cache-peer protocol (internal/storage.PeerKV) that lets
// workers warm each other's caches, and the chunked-JSON streaming
// format (stream.go) for incremental matrix results.
package dist

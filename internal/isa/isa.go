// Package isa defines the instruction set architecture used throughout the
// simulator: a small 64-bit RISC with 32 integer registers, in the spirit of
// the PISA/Alpha ISAs used by the paper. Instructions are fixed-width
// (one word of the text segment each); values are 64-bit two's complement.
//
// Register r0 is hardwired to zero. r31 doubles as the link register for JAL.
package isa

import "fmt"

// Reg is a logical (architectural) register number, 0..31.
type Reg uint8

// NumRegs is the number of logical integer registers defined by the ISA.
const NumRegs = 32

// Conventional register aliases.
const (
	Zero Reg = 0  // hardwired zero
	SP   Reg = 29 // stack pointer (convention only)
	FP   Reg = 30 // frame pointer (convention only)
	RA   Reg = 31 // link register written by JAL
)

// Op enumerates the operations of the ISA.
type Op uint8

const (
	OpNop Op = iota

	// ALU register-register.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll // shift left logical (by register, low 6 bits)
	OpSrl // shift right logical
	OpSra // shift right arithmetic
	OpSlt // set if less than (signed)
	OpSltu
	OpMul
	OpDiv // signed divide; division by zero yields 0
	OpRem // signed remainder; remainder by zero yields the dividend

	// ALU register-immediate.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpSlli
	OpSrli
	OpSrai
	OpLi // load (sign-extended) immediate into Rd; Rs1 unused

	// Memory. Addresses are byte addresses; LW/SW move 8-byte words,
	// LB/SB move single bytes (LB sign-extends). Effective address is
	// Rs1 + Imm.
	OpLw
	OpLb
	OpSw // stores Rs2 to [Rs1+Imm]
	OpSb

	// Control transfer. Conditional branches compare Rs1 against Rs2 (or
	// zero for the -z forms) and, if taken, transfer to the absolute
	// instruction index Imm. J jumps unconditionally; JAL also writes the
	// return index to Rd (conventionally RA); JR jumps to the instruction
	// index held in Rs1.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltz
	OpBgez
	OpJ
	OpJal
	OpJr

	OpHalt

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt",
	OpSltu: "sltu", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlti: "slti", OpSlli: "slli", OpSrli: "srli", OpSrai: "srai",
	OpLi: "li", OpLw: "lw", OpLb: "lb", OpSw: "sw", OpSb: "sb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltz: "bltz", OpBgez: "bgez", OpJ: "j", OpJal: "jal", OpJr: "jr",
	OpHalt: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is one decoded instruction. PC values and branch targets are
// instruction indices into the text segment, not byte addresses.
type Inst struct {
	Op  Op
	Rd  Reg   // destination register (if any)
	Rs1 Reg   // first source
	Rs2 Reg   // second source (also the store-data register)
	Imm int64 // immediate / branch target / jump target
}

// HasDest reports whether the instruction writes a destination register.
//
//arvi:hotpath
func (i Inst) HasDest() bool {
	switch i.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpMul, OpDiv, OpRem,
		OpAddi, OpAndi, OpOri, OpXori, OpSlti, OpSlli, OpSrli, OpSrai, OpLi,
		OpLw, OpLb, OpJal:
		return i.Rd != Zero
	}
	return false
}

// IsLoad reports whether the instruction reads data memory.
//
//arvi:hotpath
func (i Inst) IsLoad() bool { return i.Op == OpLw || i.Op == OpLb }

// IsStore reports whether the instruction writes data memory.
//
//arvi:hotpath
func (i Inst) IsStore() bool { return i.Op == OpSw || i.Op == OpSb }

// IsMem reports whether the instruction accesses data memory.
//
//arvi:hotpath
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// IsCondBranch reports whether the instruction is a conditional branch.
//
//arvi:hotpath
func (i Inst) IsCondBranch() bool {
	switch i.Op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltz, OpBgez:
		return true
	}
	return false
}

// IsJump reports whether the instruction is an unconditional control
// transfer (J, JAL, JR).
//
//arvi:hotpath
func (i Inst) IsJump() bool {
	return i.Op == OpJ || i.Op == OpJal || i.Op == OpJr
}

// IsControl reports whether the instruction can redirect the PC.
//
//arvi:hotpath
func (i Inst) IsControl() bool { return i.IsCondBranch() || i.IsJump() }

// SrcRegs appends the logical source registers the instruction reads to dst
// and returns the extended slice. r0 is included when named (it still renames
// to the canonical zero physical register). Immediate forms read only Rs1.
//
//arvi:hotpath
func (i Inst) SrcRegs(dst []Reg) []Reg {
	switch i.Op {
	case OpNop, OpLi, OpJ, OpJal, OpHalt:
		return dst
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpMul, OpDiv, OpRem, OpBeq, OpBne, OpBlt, OpBge:
		return append(dst, i.Rs1, i.Rs2)
	case OpAddi, OpAndi, OpOri, OpXori, OpSlti, OpSlli, OpSrli, OpSrai,
		OpLw, OpLb, OpBltz, OpBgez, OpJr:
		return append(dst, i.Rs1)
	case OpSw, OpSb:
		return append(dst, i.Rs1, i.Rs2)
	}
	return dst
}

// FUClass identifies the functional-unit class an instruction issues to.
type FUClass uint8

const (
	FUIntALU FUClass = iota // single-cycle integer ops, branches, jumps
	FUIntMul                // multiply/divide/remainder
	FUMem                   // loads and stores (address generation + access)
	NumFUClasses
)

// FU returns the functional-unit class for the instruction.
//
//arvi:hotpath
func (i Inst) FU() FUClass {
	switch {
	case i.Op == OpMul || i.Op == OpDiv || i.Op == OpRem:
		return FUIntMul
	case i.IsMem():
		return FUMem
	default:
		return FUIntALU
	}
}

// ExecLatency returns the execution latency in cycles, excluding any memory
// hierarchy latency for loads (the timing core adds cache latency).
//
//arvi:hotpath
func (i Inst) ExecLatency() int {
	switch i.Op {
	case OpMul:
		return 3
	case OpDiv, OpRem:
		return 12
	case OpLw, OpLb, OpSw, OpSb:
		return 1 // address generation; memory latency added by the core
	default:
		return 1
	}
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	r := func(x Reg) string { return fmt.Sprintf("r%d", x) }
	switch i.Op {
	case OpNop, OpHalt:
		return i.Op.String()
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpMul, OpDiv, OpRem:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.Rd), r(i.Rs1), r(i.Rs2))
	case OpAddi, OpAndi, OpOri, OpXori, OpSlti, OpSlli, OpSrli, OpSrai:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Rs1), i.Imm)
	case OpLi:
		return fmt.Sprintf("li %s, %d", r(i.Rd), i.Imm)
	case OpLw, OpLb:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, r(i.Rd), i.Imm, r(i.Rs1))
	case OpSw, OpSb:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, r(i.Rs2), i.Imm, r(i.Rs1))
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rs1), r(i.Rs2), i.Imm)
	case OpBltz, OpBgez:
		return fmt.Sprintf("%s %s, %d", i.Op, r(i.Rs1), i.Imm)
	case OpJ:
		return fmt.Sprintf("j %d", i.Imm)
	case OpJal:
		return fmt.Sprintf("jal %s, %d", r(i.Rd), i.Imm)
	case OpJr:
		return fmt.Sprintf("jr %s", r(i.Rs1))
	}
	return fmt.Sprintf("%s ?", i.Op)
}

// Validate checks structural well-formedness of the instruction (register
// numbers in range, opcode defined). It does not validate branch targets,
// which depend on program length; see prog.Program.Validate.
func (i Inst) Validate() error {
	if int(i.Op) >= NumOps {
		return fmt.Errorf("isa: undefined opcode %d", i.Op)
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return fmt.Errorf("isa: register out of range in %v", i)
	}
	return nil
}

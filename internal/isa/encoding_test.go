package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpLi, Rd: 9, Imm: -6364136223846793005},
		{Op: OpLw, Rd: 4, Rs1: 5, Imm: 1 << 40},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 77},
		{Op: OpHalt},
	}
	for _, in := range cases {
		h, m := in.Encode()
		got, err := Decode(h, m)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if got != in {
			t.Errorf("round trip %v -> %v", in, got)
		}
	}
}

func TestDecodeRejectsBadWords(t *testing.T) {
	if _, err := Decode(1<<40, 0); err == nil {
		t.Error("reserved bits accepted")
	}
	if _, err := Decode(uint64(200), 0); err == nil {
		t.Error("undefined opcode accepted")
	}
	if _, err := Decode(uint64(OpAdd)|77<<8, 0); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func TestEncodeDecodeText(t *testing.T) {
	text := []Inst{
		{Op: OpLi, Rd: 1, Imm: 5},
		{Op: OpAddi, Rd: 1, Rs1: 1, Imm: -1},
		{Op: OpBne, Rs1: 1, Rs2: 0, Imm: 1},
		{Op: OpHalt},
	}
	words := EncodeText(text)
	if len(words) != 8 {
		t.Fatalf("words = %d", len(words))
	}
	got, err := DecodeText(words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range text {
		if got[i] != text[i] {
			t.Errorf("inst %d: %v != %v", i, got[i], text[i])
		}
	}
	if _, err := DecodeText(words[:3]); err == nil {
		t.Error("odd word count accepted")
	}
	if _, err := DecodeText([]uint64{1 << 40, 0}); err == nil {
		t.Error("corrupt text accepted")
	}
}

// Property: every structurally valid instruction round-trips.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(op, rd, rs1, rs2 uint8, imm int64) bool {
		in := Inst{
			Op: Op(op % uint8(NumOps)), Rd: Reg(rd % 32),
			Rs1: Reg(rs1 % 32), Rs2: Reg(rs2 % 32), Imm: imm,
		}
		h, m := in.Encode()
		got, err := Decode(h, m)
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

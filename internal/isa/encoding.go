package isa

import "fmt"

// Binary instruction encoding. Each instruction encodes to a fixed 16-byte
// pair of words: a header word carrying the opcode and register fields, and
// a full 64-bit immediate word (the ISA allows 64-bit literals in LI, so
// immediates are not squeezed into the header). The timing model's
// instruction-cache geometry treats instructions as 8-byte units — the
// header word — which matches RISC fetch behaviour; the immediate word is
// considered part of the decode stream.
//
// Header layout (LSB first):
//
//	bits  0..7   opcode
//	bits  8..15  Rd
//	bits 16..23  Rs1
//	bits 24..31  Rs2
//	bits 32..63  reserved (must be zero)

// Encode packs the instruction into its two-word binary form.
func (i Inst) Encode() (header, imm uint64) {
	header = uint64(i.Op) | uint64(i.Rd)<<8 | uint64(i.Rs1)<<16 | uint64(i.Rs2)<<24
	return header, uint64(i.Imm)
}

// Decode unpacks a two-word binary instruction, validating every field.
func Decode(header, imm uint64) (Inst, error) {
	if header>>32 != 0 {
		return Inst{}, fmt.Errorf("isa: reserved header bits set: %#x", header)
	}
	in := Inst{
		Op:  Op(header & 0xff),
		Rd:  Reg(header >> 8 & 0xff),
		Rs1: Reg(header >> 16 & 0xff),
		Rs2: Reg(header >> 24 & 0xff),
		Imm: int64(imm),
	}
	if err := in.Validate(); err != nil {
		return Inst{}, err
	}
	return in, nil
}

// EncodeText packs a whole text segment into a flat word slice
// (2 words per instruction).
func EncodeText(text []Inst) []uint64 {
	out := make([]uint64, 0, 2*len(text))
	for _, in := range text {
		h, m := in.Encode()
		out = append(out, h, m)
	}
	return out
}

// DecodeText unpacks a flat word slice produced by EncodeText.
func DecodeText(words []uint64) ([]Inst, error) {
	if len(words)%2 != 0 {
		return nil, fmt.Errorf("isa: odd word count %d in text image", len(words))
	}
	out := make([]Inst, 0, len(words)/2)
	for i := 0; i < len(words); i += 2 {
		in, err := Decode(words[i], words[i+1])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i/2, err)
		}
		out = append(out, in)
	}
	return out, nil
}

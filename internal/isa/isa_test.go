package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpNop: "nop", OpAdd: "add", OpLw: "lw", OpHalt: "halt",
		OpBgez: "bgez", OpJal: "jal", OpSltu: "sltu", OpRem: "rem",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q, want to contain 200", got)
	}
}

func TestHasDest(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: OpAdd, Rd: 3}, true},
		{Inst{Op: OpAdd, Rd: 0}, false}, // writes to r0 are discarded
		{Inst{Op: OpLw, Rd: 5}, true},
		{Inst{Op: OpSw, Rs1: 1, Rs2: 2}, false},
		{Inst{Op: OpBeq}, false},
		{Inst{Op: OpJ}, false},
		{Inst{Op: OpJal, Rd: 31}, true},
		{Inst{Op: OpJr, Rs1: 31}, false},
		{Inst{Op: OpHalt}, false},
		{Inst{Op: OpLi, Rd: 9}, true},
		{Inst{Op: OpNop}, false},
	}
	for _, c := range cases {
		if got := c.in.HasDest(); got != c.want {
			t.Errorf("%v.HasDest() = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !(Inst{Op: OpLw}).IsLoad() || !(Inst{Op: OpLb}).IsLoad() {
		t.Error("lw/lb must be loads")
	}
	if (Inst{Op: OpSw}).IsLoad() {
		t.Error("sw is not a load")
	}
	if !(Inst{Op: OpSw}).IsStore() || !(Inst{Op: OpSb}).IsStore() {
		t.Error("sw/sb must be stores")
	}
	if !(Inst{Op: OpLw}).IsMem() || !(Inst{Op: OpSb}).IsMem() {
		t.Error("mem predicate broken")
	}
	for _, op := range []Op{OpBeq, OpBne, OpBlt, OpBge, OpBltz, OpBgez} {
		if !(Inst{Op: op}).IsCondBranch() {
			t.Errorf("%v must be a conditional branch", op)
		}
		if (Inst{Op: op}).IsJump() {
			t.Errorf("%v must not be a jump", op)
		}
	}
	for _, op := range []Op{OpJ, OpJal, OpJr} {
		if !(Inst{Op: op}).IsJump() || !(Inst{Op: op}).IsControl() {
			t.Errorf("%v must be jump/control", op)
		}
	}
	if (Inst{Op: OpAdd}).IsControl() {
		t.Error("add is not control")
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, []Reg{2, 3}},
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2}, []Reg{2}},
		{Inst{Op: OpLi, Rd: 1}, nil},
		{Inst{Op: OpLw, Rd: 1, Rs1: 7}, []Reg{7}},
		{Inst{Op: OpSw, Rs1: 7, Rs2: 8}, []Reg{7, 8}},
		{Inst{Op: OpBeq, Rs1: 4, Rs2: 5}, []Reg{4, 5}},
		{Inst{Op: OpBltz, Rs1: 4}, []Reg{4}},
		{Inst{Op: OpJ}, nil},
		{Inst{Op: OpJr, Rs1: 31}, []Reg{31}},
		{Inst{Op: OpHalt}, nil},
	}
	for _, c := range cases {
		got := c.in.SrcRegs(nil)
		if len(got) != len(c.want) {
			t.Errorf("%v.SrcRegs() = %v, want %v", c.in, got, c.want)
			continue
		}
		for k := range got {
			if got[k] != c.want[k] {
				t.Errorf("%v.SrcRegs() = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestSrcRegsAppends(t *testing.T) {
	buf := []Reg{9}
	got := (Inst{Op: OpAdd, Rs1: 1, Rs2: 2}).SrcRegs(buf)
	if len(got) != 3 || got[0] != 9 || got[1] != 1 || got[2] != 2 {
		t.Errorf("SrcRegs should append, got %v", got)
	}
}

func TestFUClass(t *testing.T) {
	if (Inst{Op: OpMul}).FU() != FUIntMul || (Inst{Op: OpDiv}).FU() != FUIntMul {
		t.Error("mul/div must use FUIntMul")
	}
	if (Inst{Op: OpLw}).FU() != FUMem || (Inst{Op: OpSw}).FU() != FUMem {
		t.Error("mem ops must use FUMem")
	}
	if (Inst{Op: OpAdd}).FU() != FUIntALU || (Inst{Op: OpBeq}).FU() != FUIntALU {
		t.Error("alu/branch must use FUIntALU")
	}
}

func TestExecLatency(t *testing.T) {
	if (Inst{Op: OpMul}).ExecLatency() <= 1 {
		t.Error("mul must be multi-cycle")
	}
	if (Inst{Op: OpDiv}).ExecLatency() <= (Inst{Op: OpMul}).ExecLatency() {
		t.Error("div must be slower than mul")
	}
	if (Inst{Op: OpAdd}).ExecLatency() != 1 {
		t.Error("add must be single-cycle")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -5}, "addi r1, r2, -5"},
		{Inst{Op: OpLi, Rd: 4, Imm: 100}, "li r4, 100"},
		{Inst{Op: OpLw, Rd: 1, Rs1: 2, Imm: 16}, "lw r1, 16(r2)"},
		{Inst{Op: OpSw, Rs1: 2, Rs2: 3, Imm: 8}, "sw r3, 8(r2)"},
		{Inst{Op: OpBeq, Rs1: 1, Rs2: 0, Imm: 42}, "beq r1, r0, 42"},
		{Inst{Op: OpBltz, Rs1: 6, Imm: 7}, "bltz r6, 7"},
		{Inst{Op: OpJ, Imm: 3}, "j 3"},
		{Inst{Op: OpJal, Rd: 31, Imm: 3}, "jal r31, 3"},
		{Inst{Op: OpJr, Rs1: 31}, "jr r31"},
		{Inst{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}).Validate(); err != nil {
		t.Errorf("valid inst rejected: %v", err)
	}
	if err := (Inst{Op: Op(250)}).Validate(); err == nil {
		t.Error("undefined opcode accepted")
	}
	if err := (Inst{Op: OpAdd, Rd: 40}).Validate(); err == nil {
		t.Error("out-of-range register accepted")
	}
}

// Property: every defined opcode has a non-placeholder mnemonic and every
// instruction built from defined parts validates.
func TestQuickAllOpsWellFormed(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	f := func(op uint8, rd, rs1, rs2 uint8) bool {
		in := Inst{Op: Op(op % uint8(NumOps)), Rd: Reg(rd % 32), Rs1: Reg(rs1 % 32), Rs2: Reg(rs2 % 32)}
		return in.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: source registers never exceed two, and stores/branches never
// claim a destination.
func TestQuickSrcDestInvariants(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int64) bool {
		in := Inst{Op: Op(op % uint8(NumOps)), Rd: Reg(rd % 32), Rs1: Reg(rs1 % 32), Rs2: Reg(rs2 % 32), Imm: imm}
		srcs := in.SrcRegs(nil)
		if len(srcs) > 2 {
			return false
		}
		if (in.IsStore() || in.IsCondBranch()) && in.HasDest() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package vpred

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/vm"
)

// Predictor predicts the result value of an instruction at a PC.
type Predictor interface {
	// Predict returns the predicted value and whether the predictor is
	// confident enough to use it.
	Predict(pc uint64) (int64, bool)
	// Update trains the predictor with the actual result.
	Update(pc uint64, value int64)
	// Name identifies the predictor.
	Name() string
}

// LastValue predicts that an instruction produces the same value as last
// time, guarded by a saturating confidence counter.
type LastValue struct {
	vals []int64
	conf []uint8
	mask uint64
	min  uint8
}

// NewLastValue builds a last-value predictor with entries (power of two)
// and the given confidence threshold.
func NewLastValue(entries int, confMin uint8) (*LastValue, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("vpred: entries %d not a power of two", entries)
	}
	return &LastValue{
		vals: make([]int64, entries),
		conf: make([]uint8, entries),
		mask: uint64(entries - 1),
		min:  confMin,
	}, nil
}

// Predict implements Predictor.
func (p *LastValue) Predict(pc uint64) (int64, bool) {
	i := pc & p.mask
	return p.vals[i], p.conf[i] >= p.min
}

// Update implements Predictor.
func (p *LastValue) Update(pc uint64, value int64) {
	i := pc & p.mask
	if p.vals[i] == value {
		if p.conf[i] < 15 {
			p.conf[i]++
		}
		return
	}
	p.vals[i] = value
	p.conf[i] = 0
}

// Name implements Predictor.
func (p *LastValue) Name() string { return "last-value" }

// Stride predicts v + stride, learning the stride from consecutive values.
type Stride struct {
	vals    []int64
	strides []int64
	conf    []uint8
	mask    uint64
	min     uint8
}

// NewStride builds a stride predictor.
func NewStride(entries int, confMin uint8) (*Stride, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("vpred: entries %d not a power of two", entries)
	}
	return &Stride{
		vals:    make([]int64, entries),
		strides: make([]int64, entries),
		conf:    make([]uint8, entries),
		mask:    uint64(entries - 1),
		min:     confMin,
	}, nil
}

// Predict implements Predictor.
func (p *Stride) Predict(pc uint64) (int64, bool) {
	i := pc & p.mask
	return p.vals[i] + p.strides[i], p.conf[i] >= p.min
}

// Update implements Predictor.
func (p *Stride) Update(pc uint64, value int64) {
	i := pc & p.mask
	stride := value - p.vals[i]
	if stride == p.strides[i] {
		if p.conf[i] < 15 {
			p.conf[i]++
		}
	} else {
		p.strides[i] = stride
		p.conf[i] = 0
	}
	p.vals[i] = value
}

// Name implements Predictor.
func (p *Stride) Name() string { return "stride" }

// Result summarises a selective value-prediction evaluation.
type Result struct {
	Insts       int64 // dynamic value-producing instructions observed
	Candidates  int64 // instructions selected by the criticality filter
	Predictions int64 // confident predictions issued
	Correct     int64
}

// Coverage is predictions / value-producing instructions.
func (r Result) Coverage() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.Predictions) / float64(r.Insts)
}

// Accuracy is correct / predictions.
func (r Result) Accuracy() float64 {
	if r.Predictions == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Predictions)
}

// EvaluateSelective runs the program functionally for up to maxInsts and
// measures the value predictor restricted to DDT-critical instructions:
// only instructions whose entry has accumulated at least depThreshold
// trailing dependents by the time the window retires them are candidates.
// A depThreshold of 0 disables selection (predict everything).
//
// The DDT is maintained over a sliding window of windowSize instructions
// (the in-flight set of an idealized machine); predictions are scored when
// the window retires an instruction, at which point its final dependent
// count is known.
func EvaluateSelective(p *prog.Program, pred Predictor, maxInsts int64,
	windowSize, depThreshold int) (Result, error) {
	ddt, err := core.NewDDT(core.Config{
		Entries:        windowSize,
		PhysRegs:       isa.NumRegs + windowSize + 1,
		TrackDepCounts: true,
	})
	if err != nil {
		return Result{}, err
	}

	var mapTable [isa.NumRegs]core.PhysReg
	for i := range mapTable {
		mapTable[i] = core.PhysReg(i)
	}
	freeList := make([]core.PhysReg, 0, windowSize+1)
	for i := isa.NumRegs; i < isa.NumRegs+windowSize+1; i++ {
		freeList = append(freeList, core.PhysReg(i))
	}

	type slot struct {
		pc        uint64
		val       int64
		displaced core.PhysReg
		hasDest   bool
	}
	window := make([]slot, 0, windowSize)
	var res Result

	retire := func() {
		s := window[0]
		window = window[1:]
		e, err2 := ddt.Commit()
		if err2 != nil {
			panic("vpred: window desync: " + err2.Error())
		}
		_ = e
		if s.displaced != core.NoPReg {
			freeList = append(freeList, s.displaced)
		}
	}

	machine := vm.New(p)
	var ev vm.Event
	var srcBuf [2]isa.Reg
	var srcPregs []core.PhysReg
	var executed int64
	for maxInsts <= 0 || executed < maxInsts {
		executed++
		if err := machine.Step(&ev); err != nil {
			if err == vm.ErrHalted {
				break
			}
			return res, err
		}
		in := ev.Inst
		if ddt.Full() {
			retire()
		}
		srcs := in.SrcRegs(srcBuf[:0])
		srcPregs = srcPregs[:0]
		for _, r := range srcs {
			srcPregs = append(srcPregs, mapTable[r])
		}
		dest := core.NoPReg
		displaced := core.NoPReg
		if in.HasDest() {
			dest = freeList[0]
			freeList = freeList[1:]
			displaced = mapTable[in.Rd]
			mapTable[in.Rd] = dest
		}
		entry, err := ddt.Insert(dest, srcPregs, in.IsLoad())
		if err != nil {
			return res, err
		}
		window = append(window, slot{
			pc: uint64(ev.PC), val: ev.Val,
			displaced: displaced, hasDest: in.HasDest(),
		})

		// Score the instruction once its dependent count has matured
		// (window half full keeps counts meaningful without draining).
		if len(window) == windowSize {
			s := window[0]
			if s.hasDest {
				res.Insts++
				// The retiring instruction sits at the tail entry.
				dc := ddt.DepCount(ddt.Tail())
				if dc >= depThreshold {
					res.Candidates++
					if v, confident := pred.Predict(s.pc); confident {
						res.Predictions++
						if v == s.val {
							res.Correct++
						}
					}
					pred.Update(s.pc, s.val)
				}
			}
			retire()
		}
		_ = entry
		if machine.Halt {
			break
		}
	}
	return res, nil
}

// Package vpred implements the value-prediction substrate for the paper's
// Section 3 "selected value prediction" application: last-value and stride
// predictors with confidence counters, and a selective driver that uses the
// DDT's dependent-count extension to restrict prediction to instructions
// with long dependence chains waiting on them (Calder's criticality
// heuristic, for which the paper's DDT supplies the missing mechanism).
//
// Main entry points: NewLastValue and NewStride build the two predictor
// families behind the Predictor interface; EvaluateSelective runs one
// benchmark through a predictor with a DDT-dependent-count criticality
// cut (threshold 0 = predict every value-producing instruction) and
// returns a Result (candidates, predictions, correct — from which
// Coverage and Accuracy derive). The experiment harness wraps this
// package as sim.VPredStudy (cells of `experiments -only vpred` and the
// service's POST /v1/study/vpred); the expected shape is that selection
// raises accuracy while deliberately lowering coverage.
package vpred

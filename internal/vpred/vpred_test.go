package vpred

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	if _, err := NewLastValue(1000, 4); err == nil {
		t.Error("bad last-value size accepted")
	}
	if _, err := NewStride(0, 4); err == nil {
		t.Error("bad stride size accepted")
	}
}

func TestLastValueLearnsConstants(t *testing.T) {
	p, _ := NewLastValue(256, 2)
	pc := uint64(10)
	if _, conf := p.Predict(pc); conf {
		t.Error("cold predictor must not be confident")
	}
	for i := 0; i < 3; i++ {
		p.Update(pc, 42)
	}
	v, conf := p.Predict(pc)
	if !conf || v != 42 {
		t.Errorf("predict = %d, %v", v, conf)
	}
	// A value change resets confidence.
	p.Update(pc, 7)
	if _, conf := p.Predict(pc); conf {
		t.Error("confidence must reset on a change")
	}
}

func TestStrideLearnsSequences(t *testing.T) {
	p, _ := NewStride(256, 2)
	pc := uint64(20)
	for v := int64(0); v < 5; v++ {
		p.Update(pc, v*8)
	}
	v, conf := p.Predict(pc)
	if !conf || v != 40 {
		t.Errorf("stride predict = %d, %v; want 40, true", v, conf)
	}
	// Stride predictors also capture constants (stride 0).
	pc2 := uint64(21)
	for i := 0; i < 4; i++ {
		p.Update(pc2, 99)
	}
	if v, conf := p.Predict(pc2); !conf || v != 99 {
		t.Errorf("constant via stride = %d, %v", v, conf)
	}
	if p.Name() == "" || (&LastValue{}).Name() == "" {
		t.Error("names missing")
	}
}

func TestEvaluateSelectiveOnStridedLoop(t *testing.T) {
	// An induction variable is perfectly stride predictable; selection at
	// threshold 0 predicts everything.
	src := `
main:
    li  r1, 0
    li  r2, 4000
loop:
    addi r1, r1, 1
    add  r3, r1, r1
    bne  r1, r2, loop
    halt
`
	prog := asm.MustAssemble("loop", src)
	pred, _ := NewStride(1024, 2)
	res, err := EvaluateSelective(prog, pred, 0, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts == 0 || res.Predictions == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Accuracy() < 0.95 {
		t.Errorf("stride accuracy on induction loop = %.3f", res.Accuracy())
	}
}

func TestSelectionReducesPredictionsRaisesCriticality(t *testing.T) {
	b := workload.ByName("m88ksim")
	all, err := EvaluateSelective(b.Prog, mustStride(t), 60_000, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := EvaluateSelective(b.Prog, mustStride(t), 60_000, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Candidates >= all.Candidates {
		t.Errorf("selection did not filter: %d vs %d candidates", sel.Candidates, all.Candidates)
	}
	if sel.Candidates == 0 {
		t.Error("selection filtered everything")
	}
	if sel.Predictions > all.Predictions {
		t.Error("selected predictions exceed unrestricted predictions")
	}
	if all.Coverage() <= 0 || all.Coverage() > 1 {
		t.Errorf("coverage out of range: %v", all.Coverage())
	}
}

// TestSelectiveAccountingInvariants pins the driver's counting contract on
// real workloads: every correct prediction was issued, every issued
// prediction had a selected candidate, every candidate was a
// value-producing instruction, and disabling selection (threshold 0)
// makes every scored instruction a candidate.
func TestSelectiveAccountingInvariants(t *testing.T) {
	for _, bench := range []string{"m88ksim", "gcc", "li"} {
		b := workload.ByName(bench)
		for _, threshold := range []int{0, 2, 5} {
			res, err := EvaluateSelective(b.Prog, mustStride(t), 40_000, 64, threshold)
			if err != nil {
				t.Fatal(err)
			}
			if res.Correct > res.Predictions {
				t.Errorf("%s thr=%d: correct %d > predictions %d", bench, threshold, res.Correct, res.Predictions)
			}
			if res.Predictions > res.Candidates {
				t.Errorf("%s thr=%d: predictions %d > candidates %d", bench, threshold, res.Predictions, res.Candidates)
			}
			if res.Candidates > res.Insts {
				t.Errorf("%s thr=%d: candidates %d > scored insts %d", bench, threshold, res.Candidates, res.Insts)
			}
			if threshold == 0 && res.Candidates != res.Insts {
				t.Errorf("%s: threshold 0 must select everything: %d of %d", bench, res.Candidates, res.Insts)
			}
			if a := res.Accuracy(); a < 0 || a > 1 {
				t.Errorf("%s thr=%d: accuracy %v out of range", bench, threshold, a)
			}
			if c := res.Coverage(); c < 0 || c > 1 {
				t.Errorf("%s thr=%d: coverage %v out of range", bench, threshold, c)
			}
		}
	}
}

func mustStride(t *testing.T) *Stride {
	t.Helper()
	p, err := NewStride(4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestResultHelpers(t *testing.T) {
	var z Result
	if z.Coverage() != 0 || z.Accuracy() != 0 {
		t.Error("zero-result helpers wrong")
	}
	r := Result{Insts: 10, Predictions: 5, Correct: 4}
	if r.Coverage() != 0.5 || r.Accuracy() != 0.8 {
		t.Errorf("helpers: %v %v", r.Coverage(), r.Accuracy())
	}
}

package prog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"maps"
	"slices"

	"repro/internal/isa"
)

// progMagic identifies the serialized program format (version 1).
const progMagic = "DDTPROG1"

// WriteTo serializes the program in a stable little-endian binary format:
// magic, name, entry, data base, text (2 words per instruction), data
// bytes, and the symbol table.
//
//arvi:det
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	writeStr := func(s string) error {
		if err := write(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if _, err := bw.WriteString(progMagic); err != nil {
		return cw.n, err
	}
	if err := writeStr(p.Name); err != nil {
		return cw.n, err
	}
	if err := write(uint32(p.Entry)); err != nil {
		return cw.n, err
	}
	if err := write(p.DataBase); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(p.Text))); err != nil {
		return cw.n, err
	}
	for _, in := range p.Text {
		h, m := in.Encode()
		if err := write(h); err != nil {
			return cw.n, err
		}
		if err := write(m); err != nil {
			return cw.n, err
		}
	}
	if err := write(uint32(len(p.Data))); err != nil {
		return cw.n, err
	}
	if _, err := bw.Write(p.Data); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(p.Symbols))); err != nil {
		return cw.n, err
	}
	for _, name := range slices.Sorted(maps.Keys(p.Symbols)) {
		if err := writeStr(name); err != nil {
			return cw.n, err
		}
		if err := write(p.Symbols[name]); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read deserializes a program written by WriteTo and validates it.
func Read(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	readStr := func() (string, error) {
		var n uint32
		if err := read(&n); err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("prog: unreasonable string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	magic := make([]byte, len(progMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("prog: reading magic: %w", err)
	}
	if string(magic) != progMagic {
		return nil, fmt.Errorf("prog: bad magic %q", magic)
	}
	p := &Program{Symbols: map[string]uint64{}}
	var err error
	if p.Name, err = readStr(); err != nil {
		return nil, err
	}
	var entry, nText, nData, nSyms uint32
	if err := read(&entry); err != nil {
		return nil, err
	}
	if err := read(&p.DataBase); err != nil {
		return nil, err
	}
	p.Entry = int(entry)
	if err := read(&nText); err != nil {
		return nil, err
	}
	if nText > 1<<24 {
		return nil, fmt.Errorf("prog: unreasonable text size %d", nText)
	}
	p.Text = make([]isa.Inst, nText)
	for i := range p.Text {
		var h, m uint64
		if err := read(&h); err != nil {
			return nil, err
		}
		if err := read(&m); err != nil {
			return nil, err
		}
		if p.Text[i], err = isa.Decode(h, m); err != nil {
			return nil, fmt.Errorf("prog: instruction %d: %w", i, err)
		}
	}
	if err := read(&nData); err != nil {
		return nil, err
	}
	if nData > 1<<28 {
		return nil, fmt.Errorf("prog: unreasonable data size %d", nData)
	}
	p.Data = make([]byte, nData)
	if _, err := io.ReadFull(br, p.Data); err != nil {
		return nil, err
	}
	if err := read(&nSyms); err != nil {
		return nil, err
	}
	if nSyms > 1<<20 {
		return nil, fmt.Errorf("prog: unreasonable symbol count %d", nSyms)
	}
	for i := uint32(0); i < nSyms; i++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		var val uint64
		if err := read(&val); err != nil {
			return nil, err
		}
		p.Symbols[name] = val
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n += int64(n)
	return n, err
}

package prog

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a stable content hash of everything that affects
// execution: the program name, entry point, data base, instruction text and
// data image. The symbol table is deliberately excluded — symbols are debug
// metadata and their map order is not deterministic. Two programs with equal
// fingerprints produce identical dynamic traces, which is the contract the
// trace format and the simulation trace store key on.
//
//arvi:det
func (p *Program) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	writeU64(uint64(len(p.Name)))
	h.Write([]byte(p.Name))
	writeU64(uint64(p.Entry))
	writeU64(p.DataBase)
	writeU64(uint64(len(p.Text)))
	for _, in := range p.Text {
		hi, lo := in.Encode()
		writeU64(hi)
		writeU64(lo)
	}
	writeU64(uint64(len(p.Data)))
	h.Write(p.Data)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// FingerprintHex returns Fingerprint as a hex string, convenient for cache
// keys and file names.
//
//arvi:det
func (p *Program) FingerprintHex() string {
	fp := p.Fingerprint()
	return hex.EncodeToString(fp[:])
}

package prog

import (
	"testing"

	"repro/internal/isa"
)

func fpProg() *Program {
	return &Program{
		Name:     "fp",
		Text:     []isa.Inst{{Op: isa.OpLi, Rd: 1, Imm: 7}, {Op: isa.OpHalt}},
		Data:     []byte{1, 2, 3},
		DataBase: DefaultDataBase,
		Symbols:  map[string]uint64{"a": 1, "b": 2, "c": 3},
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := fpProg(), fpProg()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical programs produced different fingerprints")
	}
	if a.FingerprintHex() != b.FingerprintHex() {
		t.Error("hex fingerprints differ")
	}
	if len(a.FingerprintHex()) != 64 {
		t.Errorf("hex fingerprint length %d", len(a.FingerprintHex()))
	}
}

func TestFingerprintCoversExecutionState(t *testing.T) {
	base := fpProg().Fingerprint()
	mut := fpProg()
	mut.Text[0].Imm = 8
	if mut.Fingerprint() == base {
		t.Error("text change did not change the fingerprint")
	}
	mut = fpProg()
	mut.Data[0] = 9
	if mut.Fingerprint() == base {
		t.Error("data change did not change the fingerprint")
	}
	mut = fpProg()
	mut.Entry = 1
	if mut.Fingerprint() == base {
		t.Error("entry change did not change the fingerprint")
	}
	mut = fpProg()
	mut.DataBase++
	if mut.Fingerprint() == base {
		t.Error("data base change did not change the fingerprint")
	}
	// Symbols are debug metadata: they must NOT perturb the fingerprint
	// (and being a map, they could not be hashed deterministically anyway).
	mut = fpProg()
	mut.Symbols["zzz"] = 99
	if mut.Fingerprint() != base {
		t.Error("symbol change altered the fingerprint")
	}
}

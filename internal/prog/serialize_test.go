package prog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
)

func sample() *Program {
	return &Program{
		Name:     "sample",
		Text:     []isa.Inst{{Op: isa.OpLi, Rd: 1, Imm: -5}, {Op: isa.OpHalt}},
		Data:     []byte{1, 2, 3, 4, 5},
		DataBase: DefaultDataBase,
		Entry:    0,
		Symbols:  map[string]uint64{"main": 0, "tab": DefaultDataBase},
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	p := sample()
	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo count = %d, buffer has %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Entry != p.Entry || got.DataBase != p.DataBase {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Text) != len(p.Text) || got.Text[0] != p.Text[0] {
		t.Errorf("text mismatch: %v", got.Text)
	}
	if !bytes.Equal(got.Data, p.Data) {
		t.Errorf("data mismatch: %v", got.Data)
	}
	if got.Symbols["tab"] != DefaultDataBase {
		t.Errorf("symbols mismatch: %v", got.Symbols)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTAPROG????????")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated stream: valid header then EOF.
	var buf bytes.Buffer
	if _, err := sample().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestValidateCatchesCorruptTargets(t *testing.T) {
	p := sample()
	p.Text[0] = isa.Inst{Op: isa.OpJ, Imm: 99}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("out-of-range jump target accepted on read")
	}
}

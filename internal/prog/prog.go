// Package prog defines the executable program image produced by the
// assembler and consumed by the functional VM and the timing simulator.
package prog

import (
	"fmt"

	"repro/internal/isa"
)

// DefaultDataBase is the byte address at which the data segment is loaded
// when the assembler is not told otherwise. Program text lives in its own
// index space (instruction indices), so the data segment may start anywhere
// above address 0; a non-zero base catches null-pointer style bugs in
// workloads.
const DefaultDataBase = 0x10000

// DefaultStackTop is the conventional initial stack pointer. Stacks grow
// down from here; the region is backed lazily by the sparse memory.
const DefaultStackTop = 0x7ff000

// Program is a fully assembled executable image.
type Program struct {
	Name     string     // human-readable name (workload id)
	Text     []isa.Inst // instruction memory, indexed by instruction index
	Data     []byte     // initialised data segment
	DataBase uint64     // load address of Data
	Entry    int        // instruction index where execution starts
	Symbols  map[string]uint64
}

// Validate checks that every control-flow target lands inside the text
// segment and that every instruction is structurally well formed.
func (p *Program) Validate() error {
	n := int64(len(p.Text))
	if n == 0 {
		return fmt.Errorf("prog %q: empty text segment", p.Name)
	}
	if p.Entry < 0 || int64(p.Entry) >= n {
		return fmt.Errorf("prog %q: entry %d outside text [0,%d)", p.Name, p.Entry, n)
	}
	for idx, in := range p.Text {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("prog %q: inst %d: %w", p.Name, idx, err)
		}
		switch in.Op {
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltz, isa.OpBgez,
			isa.OpJ, isa.OpJal:
			if in.Imm < 0 || in.Imm >= n {
				return fmt.Errorf("prog %q: inst %d (%v): target %d outside text [0,%d)",
					p.Name, idx, in, in.Imm, n)
			}
		}
	}
	return nil
}

// Stats summarises the static composition of the program.
type Stats struct {
	Insts        int
	CondBranches int
	Jumps        int
	Loads        int
	Stores       int
	DataBytes    int
}

// StaticStats computes the static instruction-mix summary.
func (p *Program) StaticStats() Stats {
	s := Stats{Insts: len(p.Text), DataBytes: len(p.Data)}
	for _, in := range p.Text {
		switch {
		case in.IsCondBranch():
			s.CondBranches++
		case in.IsJump():
			s.Jumps++
		case in.IsLoad():
			s.Loads++
		case in.IsStore():
			s.Stores++
		}
	}
	return s
}

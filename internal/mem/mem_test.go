package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheGeometryErrors(t *testing.T) {
	if _, err := NewCache("bad", 0, 4, 32, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewCache("bad", 100, 4, 32, 1); err == nil {
		t.Error("non-divisible size accepted")
	}
	if _, err := NewCache("bad", 3*32*4, 4, 32, 1); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := NewCache("ok", 1<<10, 4, 32, 1); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := MustNewCache("t", 1<<10, 2, 32, 1) // 16 sets
	if c.Access(0) {
		t.Error("cold access must miss")
	}
	if !c.Access(0) || !c.Access(31) {
		t.Error("same line must hit")
	}
	if c.Access(32) {
		t.Error("next line must miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := MustNewCache("t", 2*32*2, 2, 32, 1) // 2 sets, 2 ways
	// Three lines mapping to set 0: addresses 0, 128, 256 (set stride 64).
	c.Access(0)
	c.Access(128)
	c.Access(0)   // 0 is MRU, 128 LRU
	c.Access(256) // evicts 128
	if !c.Access(0) {
		t.Error("0 must survive")
	}
	if c.Access(128) {
		t.Error("128 must have been evicted")
	}
}

func TestCacheReset(t *testing.T) {
	c := MustNewCache("t", 1<<10, 2, 32, 1)
	c.Access(0)
	c.Reset()
	if c.Accesses() != 0 {
		t.Error("stats not reset")
	}
	if c.Access(0) {
		t.Error("contents not reset")
	}
}

func TestTLB(t *testing.T) {
	tl := MustNewTLB("t", 4, 2, 8<<10, 30)
	if got := tl.Access(0); got != 30 {
		t.Errorf("cold tlb = %d, want 30", got)
	}
	if got := tl.Access(8191); got != 0 {
		t.Errorf("same page = %d, want 0", got)
	}
	if got := tl.Access(8192); got != 30 {
		t.Errorf("next page = %d, want 30", got)
	}
	if tl.Hits() != 1 || tl.Misses() != 2 {
		t.Errorf("hits=%d misses=%d", tl.Hits(), tl.Misses())
	}
}

func TestLatenciesForDepth(t *testing.T) {
	l20, l40, l60 := LatenciesForDepth(20), LatenciesForDepth(40), LatenciesForDepth(60)
	if !(l20.L1Hit < l40.L1Hit && l40.L1Hit < l60.L1Hit) {
		t.Error("L1 latency must grow with depth")
	}
	if !(l20.Mem < l40.Mem && l40.Mem < l60.Mem) {
		t.Error("memory latency must grow with depth")
	}
}

func TestHierarchyDataAccess(t *testing.T) {
	h := NewHierarchy(Latencies{L1Hit: 2, L2Hit: 12, Mem: 80, TLBMis: 30})
	// Cold: TLB miss + L1 miss + L2 miss + memory.
	if got := h.DataAccess(1 << 20); got != 30+2+12+80 {
		t.Errorf("cold access = %d, want 124", got)
	}
	// Warm: L1 hit, TLB hit.
	if got := h.DataAccess(1 << 20); got != 2 {
		t.Errorf("warm access = %d, want 2", got)
	}
	// Same page, different L1 line, L2 now holds it? No: a new line is
	// cold everywhere except TLB.
	if got := h.DataAccess(1<<20 + 64); got != 2+12+80 {
		t.Errorf("new-line access = %d, want 94", got)
	}
}

func TestHierarchyFetch(t *testing.T) {
	h := NewHierarchy(Latencies{L1Hit: 2, L2Hit: 12, Mem: 80, TLBMis: 30})
	if got := h.FetchAccess(0); got != 30+12+80 {
		t.Errorf("cold fetch = %d, want 122", got)
	}
	if got := h.FetchAccess(1); got != 0 {
		t.Errorf("warm fetch = %d, want 0", got)
	}
	h.Reset()
	if h.L1I.Accesses() != 0 || h.ITLB.Misses() != 0 {
		t.Error("reset failed")
	}
}

// Property: hits + misses == accesses and a second access to the same
// address always hits (with a cache big enough not to self-evict within
// one pair).
func TestQuickCacheCoherentCounts(t *testing.T) {
	c := MustNewCache("q", 1<<14, 4, 32, 1)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false
			}
		}
		return c.Accesses() == c.Hits+c.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package mem models the memory hierarchy of Table 2: split 4-way L1
// instruction and data caches, a unified L2, instruction and data TLBs, and
// a flat main memory latency. Caches are set-associative with true-LRU
// replacement and are used purely for timing: data values live in the
// functional VM.
package mem

import "fmt"

// Cache is a set-associative cache with LRU replacement. It tracks hit and
// miss counts; Access returns whether the access hit.
type Cache struct {
	Name     string
	SizeB    int // total bytes
	Ways     int
	LineB    int // line size in bytes
	HitLat   int // hit latency in cycles
	sets     int
	lineBits uint
	setMask  uint64
	//arvi:len setways
	tags []uint64 // sets × ways
	//arvi:len setways
	lru []uint8 // sets × ways, 0 = MRU
	//arvi:len setways
	valid []bool

	Hits, Misses int64
}

// NewCache builds a cache. Size, ways and line size must be powers of two
// and consistent (size = sets × ways × line).
func NewCache(name string, sizeB, ways, lineB, hitLat int) (*Cache, error) {
	if sizeB <= 0 || ways <= 0 || lineB <= 0 {
		return nil, fmt.Errorf("mem: non-positive cache geometry %s", name)
	}
	if sizeB%(ways*lineB) != 0 {
		return nil, fmt.Errorf("mem: %s: size %d not divisible by ways*line %d", name, sizeB, ways*lineB)
	}
	sets := sizeB / (ways * lineB)
	if sets&(sets-1) != 0 || lineB&(lineB-1) != 0 {
		return nil, fmt.Errorf("mem: %s: sets (%d) and line (%d) must be powers of two", name, sets, lineB)
	}
	c := &Cache{
		Name: name, SizeB: sizeB, Ways: ways, LineB: lineB, HitLat: hitLat,
		sets:  sets,
		tags:  make([]uint64, sets*ways),
		lru:   make([]uint8, sets*ways),
		valid: make([]bool, sets*ways),
	}
	for lineB > 1 {
		lineB >>= 1
		c.lineBits++
	}
	c.setMask = uint64(sets - 1)
	return c, nil
}

// MustNewCache is NewCache but panics on configuration errors.
func MustNewCache(name string, sizeB, ways, lineB, hitLat int) *Cache {
	c, err := NewCache(name, sizeB, ways, lineB, hitLat)
	if err != nil {
		panic(err)
	}
	return c
}

// Access looks up addr, updating LRU state and filling the line on a miss.
// It returns true on a hit.
//
//arvi:hotpath
//arvi:panicfree set is masked below c.sets and w, victim below c.Ways, so base+w < c.sets*c.Ways == len(tags|lru|valid)
func (c *Cache) Access(addr uint64) bool {
	set := int((addr >> c.lineBits) & c.setMask)
	tag := addr >> c.lineBits
	base := set * c.Ways
	for w := 0; w < c.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.touch(base, w)
			c.Hits++
			return true
		}
	}
	c.Misses++
	// Victim: invalid way first, else true LRU (highest age).
	victim := 0
	var worst uint8
	for w := 0; w < c.Ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] >= worst {
			worst = c.lru[base+w]
			victim = w
		}
	}
	c.valid[base+victim] = true
	c.tags[base+victim] = tag
	c.touch(base, victim)
	return false
}

//arvi:hotpath
//arvi:panicfree callers pass base = set*c.Ways with set < c.sets and way < c.Ways, so base+w stays below len(lru)
func (c *Cache) touch(base, way int) {
	old := c.lru[base+way]
	for w := 0; w < c.Ways; w++ {
		if c.lru[base+w] < old {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// Install fills the line containing addr without touching hit/miss
// statistics. It is used by the front end's next-line prefetcher.
//
//arvi:hotpath
//arvi:panicfree set is masked below c.sets and w, victim below c.Ways, so base+w < c.sets*c.Ways == len(tags|lru|valid)
func (c *Cache) Install(addr uint64) {
	set := int((addr >> c.lineBits) & c.setMask)
	tag := addr >> c.lineBits
	base := set * c.Ways
	for w := 0; w < c.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return // already present; leave LRU untouched
		}
	}
	victim := 0
	var worst uint8
	for w := 0; w < c.Ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] >= worst {
			worst = c.lru[base+w]
			victim = w
		}
	}
	c.valid[base+victim] = true
	c.tags[base+victim] = tag
	c.touch(base, victim)
}

// Accesses returns the total access count.
//
//arvi:hotpath
func (c *Cache) Accesses() int64 { return c.Hits + c.Misses }

// MissRate returns misses/accesses (0 when unused).
//
//arvi:hotpath
func (c *Cache) MissRate() float64 {
	if t := c.Accesses(); t > 0 {
		return float64(c.Misses) / float64(t)
	}
	return 0
}

// Reset clears contents and statistics.
//
//arvi:hotpath
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
		c.tags[i] = 0
	}
	c.Hits, c.Misses = 0, 0
}

// TLB is a set-associative translation lookaside buffer over fixed-size
// pages; structurally a Cache keyed by page number.
type TLB struct {
	cache    *Cache
	pageBits uint
	MissLat  int
}

// NewTLB builds a TLB with the given number of entries, associativity,
// page size and miss penalty.
func NewTLB(name string, entries, ways int, pageB, missLat int) (*TLB, error) {
	if pageB <= 0 || pageB&(pageB-1) != 0 {
		return nil, fmt.Errorf("mem: %s: page size must be a power of two", name)
	}
	// Reuse Cache with "line" = one entry (8 bytes nominal).
	c, err := NewCache(name, entries*8, ways, 8, 0)
	if err != nil {
		return nil, err
	}
	t := &TLB{cache: c, MissLat: missLat}
	for pageB > 1 {
		pageB >>= 1
		t.pageBits++
	}
	return t, nil
}

// MustNewTLB is NewTLB but panics on configuration errors.
func MustNewTLB(name string, entries, ways int, pageB, missLat int) *TLB {
	t, err := NewTLB(name, entries, ways, pageB, missLat)
	if err != nil {
		panic(err)
	}
	return t
}

// Access translates addr, returning the added latency (0 on hit, MissLat on
// a TLB miss).
//
//arvi:hotpath
func (t *TLB) Access(addr uint64) int {
	if t.cache.Access((addr >> t.pageBits) << 3) {
		return 0
	}
	return t.MissLat
}

// Hits and Misses expose the underlying counters.
//
//arvi:hotpath
func (t *TLB) Hits() int64 { return t.cache.Hits }

//arvi:hotpath
func (t *TLB) Misses() int64 { return t.cache.Misses }

// Reset clears contents and statistics.
//
//arvi:hotpath
func (t *TLB) Reset() { t.cache.Reset() }

// Hierarchy bundles the full Table 2 memory system.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	ITLB, DTLB   *TLB
	MemLat       int // main-memory latency in cycles
}

// Latencies groups the pipeline-depth-dependent latency knobs; see Table 2
// (the scanned values are partly garbled; DESIGN.md documents our choice).
type Latencies struct {
	L1Hit  int
	L2Hit  int
	Mem    int
	TLBMis int
}

// LatenciesForDepth returns the latency set for a 20/40/60-stage pipeline.
func LatenciesForDepth(depth int) Latencies {
	switch {
	case depth <= 20:
		return Latencies{L1Hit: 2, L2Hit: 12, Mem: 80, TLBMis: 30}
	case depth <= 40:
		return Latencies{L1Hit: 4, L2Hit: 24, Mem: 160, TLBMis: 30}
	default:
		return Latencies{L1Hit: 6, L2Hit: 36, Mem: 240, TLBMis: 30}
	}
}

// NewHierarchy builds the Table 2 configuration: 64 KB 4-way 32 B-line L1s,
// a 512 KB 4-way 64 B-line unified L2, 64-entry (16x4) ITLB and 128-entry
// (32x4) DTLB over 8 KB pages.
func NewHierarchy(lat Latencies) *Hierarchy {
	return &Hierarchy{
		L1I:    MustNewCache("l1i", 64<<10, 4, 32, lat.L1Hit),
		L1D:    MustNewCache("l1d", 64<<10, 4, 32, lat.L1Hit),
		L2:     MustNewCache("l2", 512<<10, 4, 64, lat.L2Hit),
		ITLB:   MustNewTLB("itlb", 64, 4, 8<<10, lat.TLBMis),
		DTLB:   MustNewTLB("dtlb", 128, 4, 8<<10, lat.TLBMis),
		MemLat: lat.Mem,
	}
}

// DataAccess returns the total latency of a data reference to addr
// (load or store timing), walking DTLB, L1D, L2 and memory.
//
//arvi:hotpath
func (h *Hierarchy) DataAccess(addr uint64) int {
	lat := h.DTLB.Access(addr)
	if h.L1D.Access(addr) {
		return lat + h.L1D.HitLat
	}
	if h.L2.Access(addr) {
		return lat + h.L1D.HitLat + h.L2.HitLat
	}
	return lat + h.L1D.HitLat + h.L2.HitLat + h.MemLat
}

// FetchAccess returns the added fetch latency for the instruction line
// containing pc (0 when the fetch hits the L1I with its pipelined port).
// pc is an instruction index; instructions are modelled 8 bytes each.
// A next-line prefetcher installs the sequentially following line so that
// straight-line code pays the miss latency only on fetch redirects.
//
//arvi:hotpath
func (h *Hierarchy) FetchAccess(pc int) int {
	addr := uint64(pc) << 3
	lat := h.ITLB.Access(addr)
	h.L1I.Install(addr + uint64(h.L1I.LineB)) // next-line prefetch
	if h.L1I.Access(addr) {
		return lat // L1I hit latency is pipelined into the front end
	}
	if h.L2.Access(addr) {
		return lat + h.L2.HitLat
	}
	return lat + h.L2.HitLat + h.MemLat
}

// Reset clears every structure and its statistics.
//
//arvi:hotpath
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
}

package workload

import (
	"fmt"
	"strings"
)

// GCC models the compiler's front-end dispatch: a Markov-generated token
// stream is classified through a compare ladder (the dense switch statements
// of cc1), with per-class actions. Branch outcomes are biased by token
// frequency and correlated through the token bigram structure — a mix that
// history predictors handle moderately well, as with gcc95.
func GCC() Benchmark {
	const (
		tokens = 6144
		passes = 24
	)
	// Markov chain over 8 token classes with skewed transitions.
	g := &lcg{s: 0x6cc}
	trans := [8][8]int{}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			trans[i][j] = g.intn(10)
		}
		trans[i][(i+1)%8] += 18 // strong bigram signal
		trans[i][0] += 8        // class 0 (identifiers) is common
	}
	stream := make([]byte, tokens)
	cur := 0
	for i := range stream {
		total := 0
		for j := 0; j < 8; j++ {
			total += trans[cur][j]
		}
		r := g.intn(total)
		for j := 0; j < 8; j++ {
			r -= trans[cur][j]
			if r < 0 {
				cur = j
				break
			}
		}
		stream[i] = byte(cur)
	}

	var src strings.Builder
	src.WriteString("    .data\nstream:\n")
	src.WriteString(byteList(stream))
	src.WriteString("    .align 8\ncounts: .space 64\n")
	fmt.Fprintf(&src, `
    .text
main:
    li  r20, 0
    li  r21, %d          # passes
pass:
    li  r10, 0
    li  r11, %d          # tokens
loop:
    la  r1, stream
    add r1, r1, r10
    lb  r2, 0(r1)        # token class
    # compare ladder (switch dispatch)
    beq r2, r0, tok0
    li  r3, 1
    beq r2, r3, tok1
    li  r3, 2
    beq r2, r3, tok2
    li  r3, 3
    beq r2, r3, tok3
    li  r3, 4
    beq r2, r3, tok4
    li  r3, 5
    beq r2, r3, tok5
    li  r3, 6
    beq r2, r3, tok6
    # class 7: punctuation
    addi r15, r15, 7
    j   bump
tok0:
    addi r15, r15, 1     # identifier: symbol-table touch
    slli r4, r2, 3
    lw  r5, counts(r4)
    addi r5, r5, 1
    sw  r5, counts(r4)
    j   bump
tok1:
    addi r16, r16, 1
    j   bump
tok2:
    add r16, r16, r15
    j   bump
tok3:
    xor r15, r15, r16
    j   bump
tok4:
    addi r17, r17, 1
    j   bump
tok5:
    sub r17, r17, r16
    j   bump
tok6:
    addi r18, r18, 1
bump:
    addi r10, r10, 1
    bne r10, r11, loop
    addi r20, r20, 1
    bne r20, r21, pass
    halt
`, passes, tokens)
	return mustBench("gcc", "Markov token-stream switch dispatch", src.String())
}

package workload

import (
	"fmt"
	"strings"

	"repro/internal/prog"
)

// M88ksim reproduces the paper's Figure 7 kernel: lookupdisasm hashes a key
// into a fixed table of linked lists and walks the list until the matching
// opcode is found. Because the table contents never change, the while-loop
// trip count is fully determined by the key value — the branch instance the
// hybrid predictor cannot learn and ARVI predicts via the key value plus
// the chain-depth tag.
//
// m88ksim is an instruction-set simulator executing a fixed 88100 program,
// so the sequence of lookup keys is a deterministic, looping trace — not an
// i.i.d. random stream. We model that with a stored key trace containing
// loop-like repeated segments, cycled over; the straight-line "simulator
// work" block between fetching a key and the lookup mirrors the decode work
// that separates them in the real code.
func M88ksim() Benchmark {
	const (
		buckets  = 16
		keys     = 64 // keys 0..63; chain position of key k = 4 - k/16
		traceLen = 512
		iters    = 120000
		padOps   = 48
	)
	base := int64(prog.DefaultDataBase)
	// Layout: keytrace, then hashtab, then nodes.
	hashtabOff := int64(traceLen * 8)
	nodeBase := base + hashtabOff + buckets*8
	nodeAddr := func(k int) int64 { return nodeBase + int64(k)*16 }

	// Key trace: segments of straight-line "code" plus tight loops that
	// re-execute the same short key sequence several times.
	g := &lcg{s: 0x88100}
	trace := make([]int64, 0, traceLen)
	for len(trace) < traceLen {
		if g.intn(3) == 0 { // a simulated loop: repeat a short body
			body := make([]int64, 2+g.intn(4))
			for i := range body {
				body[i] = int64(g.intn(keys))
			}
			reps := 2 + g.intn(6)
			for r := 0; r < reps && len(trace) < traceLen; r++ {
				trace = append(trace, body...)
			}
		} else { // straight-line segment
			for i := 0; i < 4+g.intn(8) && len(trace) < traceLen; i++ {
				trace = append(trace, int64(g.intn(keys)))
			}
		}
	}
	trace = trace[:traceLen]

	heads := make([]int64, buckets)
	next := make([]int64, keys)
	for k := 0; k < keys; k++ {
		b := k % buckets
		next[k] = heads[b]
		heads[b] = nodeAddr(k)
	}
	nodes := make([]int64, 0, keys*2)
	for k := 0; k < keys; k++ {
		nodes = append(nodes, int64(k), next[k])
	}

	var src strings.Builder
	src.WriteString("    .data\nkeytrace:\n")
	src.WriteString(wordList(trace))
	src.WriteString("hashtab:\n")
	src.WriteString(wordList(heads))
	src.WriteString("nodes:\n")
	src.WriteString(wordList(nodes))
	fmt.Fprintf(&src, `
    .text
main:
    li  r10, 0          # iteration counter
    li  r11, %d         # iterations
    li  r14, 0          # trace position
outer:
    slli r1, r14, 3
    lw  r1, keytrace(r1) # key = trace[pos]
    addi r14, r14, 1
    andi r14, r14, %d    # pos = (pos + 1) %% traceLen
`, iters, traceLen-1)
	// Straight-line simulator work between key fetch and lookup.
	for i := 0; i < padOps; i++ {
		fmt.Fprintf(&src, "    addi r%d, r%d, %d\n", 20+i%4, 20+i%4, 1+i%3)
	}
	fmt.Fprintf(&src, `
    andi r2, r1, 15     # key %% HASHVAL
    slli r2, r2, 3
    lw  r3, hashtab(r2) # ptr = hashtab[key %% HASHVAL]
while:
    beq r3, r0, miss    # ptr == NULL
    lw  r4, 0(r3)       # ptr->opcode
    beq r4, r1, hit     # ptr->opcode == key: exit loop
    lw  r3, 8(r3)       # ptr = ptr->next
    j   while
hit:
    addi r15, r15, 1
    j   cont
miss:
    addi r16, r16, 1
cont:
    addi r10, r10, 1
    bne r10, r11, outer
    halt
`)
	return mustBench("m88ksim", "hash-table linked-list lookup (Figure 7)", src.String())
}

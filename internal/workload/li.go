package workload

import (
	"fmt"
	"strings"

	"repro/internal/prog"
)

// Li models the Lisp interpreter: traversal of cons-cell lists with a
// type-tag dispatch per cell. The tag branch depends on a value loaded one
// instruction earlier (pointer-chase load branches), and list lengths vary
// so loop exits carry little history signal.
func Li() Benchmark {
	const (
		lists  = 64
		maxLen = 24
		passes = 110
	)
	// Cell layout: {tag, val, next} = 24 bytes. Cells for all lists are
	// interleaved to defeat trivial spatial locality.
	base := int64(prog.DefaultDataBase)
	headsAddr := base
	cellBase := base + lists*8

	g := &lcg{s: 0x11557}
	type cell struct{ tag, val, next int64 }
	var cells []cell
	heads := make([]int64, lists)
	addrOf := func(i int) int64 { return cellBase + int64(i)*24 }
	for l := 0; l < lists; l++ {
		n := 1 + g.intn(maxLen)
		head := int64(0)
		for j := 0; j < n; j++ {
			tag := int64(0)
			if g.intn(3) == 0 {
				tag = 1 // "pair" tag on a third of the cells
			}
			cells = append(cells, cell{tag: tag, val: int64(g.intn(1000)), next: head})
			head = addrOf(len(cells) - 1)
		}
		heads[l] = head
	}
	words := make([]int64, 0, len(cells)*3)
	for _, c := range cells {
		words = append(words, c.tag, c.val, c.next)
	}
	_ = headsAddr

	var src strings.Builder
	src.WriteString("    .data\nheads:\n")
	src.WriteString(wordList(heads))
	src.WriteString("cells:\n")
	src.WriteString(wordList(words))
	fmt.Fprintf(&src, `
    .text
main:
    li  r20, 0
    li  r21, %d          # passes
pass:
    li  r10, 0           # list index
    li  r11, %d          # lists
lists:
    slli r1, r10, 3
    lw  r2, heads(r1)    # ptr = heads[i]
walk:
    beq r2, r0, endlist  # NULL: end of list (length varies per list)
    lw  r3, 0(r2)        # tag
    lw  r4, 8(r2)        # val
    bne r3, r0, pair     # type dispatch on loaded tag
    add r15, r15, r4     # atom: accumulate
    j   step
pair:
    xor r16, r16, r4     # pair: fold
step:
    lw  r2, 16(r2)       # ptr = ptr->next
    j   walk
endlist:
    addi r10, r10, 1
    bne r10, r11, lists
    addi r20, r20, 1
    bne r20, r21, pass
    halt
`, passes, lists)
	return mustBench("li", "cons-cell traversal with type-tag dispatch", src.String())
}

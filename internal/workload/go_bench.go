package workload

import "fmt"

// Go models go95's notorious branch behaviour: positional evaluation over a
// 19x19 board whose cell values are refreshed from a PRNG every pass, so
// the comparison branches carry almost no history signal. A fraction of the
// branches compare freshly stored/loaded values (load branches); the rest
// are register-register comparisons along short arithmetic chains.
func Go() Benchmark {
	const (
		cells  = 361 // 19x19
		passes = 90
	)
	src := fmt.Sprintf(`
    .data
board: .space %d
    .text
main:
    li  r20, 0          # pass
    li  r21, %d         # passes
    li  r12, 6364136223846793005
    li  r13, 1442695040888963407
    li  r14, 424243     # lcg state
pass:
    # refresh the board with fresh pseudo-random stone strengths
    li  r1, 0
    li  r2, %d
    la  r3, board
fill:
    mul r14, r14, r12
    add r14, r14, r13
    srli r4, r14, 40
    andi r4, r4, 1023
    sw  r4, 0(r3)
    addi r3, r3, 8
    addi r1, r1, 1
    bne r1, r2, fill

    # evaluate: compare each cell with its right neighbour and a noise
    # threshold; the outcomes are essentially random per pass.
    li  r1, 0
    li  r2, %d          # cells - 1
    la  r3, board
eval:
    lw  r4, 0(r3)
    lw  r5, 8(r3)
    blt r4, r5, weaker      # ~50/50, value dependent
    addi r15, r15, 1
    j   e1
weaker:
    addi r16, r16, 1
e1:
    andi r6, r4, 3
    bne r6, r0, e2          # 25/75 value branch
    add r17, r17, r4
e2:
    add r7, r4, r5
    slti r8, r7, 1024
    beq r8, r0, e3          # sum threshold branch
    addi r18, r18, 1
e3:
    addi r3, r3, 8
    addi r1, r1, 1
    bne r1, r2, eval

    addi r20, r20, 1
    bne r20, r21, pass
    halt
`, cells*8, passes, cells, cells-1)
	return mustBench("go", "board evaluation with value-noise branches", src)
}

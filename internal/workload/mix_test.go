package workload

import "testing"

func TestMixLookup(t *testing.T) {
	for _, name := range MixNames {
		m, ok := LookupMix(name)
		if !ok {
			t.Fatalf("canonical mix %q not found", name)
		}
		if m.Name != name {
			t.Errorf("mix %q reports name %q", name, m.Name)
		}
		if len(m.Benches) < 2 {
			t.Errorf("mix %q has %d members; SMT needs at least 2", name, len(m.Benches))
		}
		progs, err := m.Programs()
		if err != nil {
			t.Fatalf("mix %q: %v", name, err)
		}
		if len(progs) != len(m.Benches) {
			t.Errorf("mix %q resolved %d of %d programs", name, len(progs), len(m.Benches))
		}
		for i, b := range progs {
			if b.Name != m.Benches[i] || b.Prog == nil {
				t.Errorf("mix %q member %d resolved to %q", name, i, b.Name)
			}
		}
	}
	if _, ok := LookupMix("nosuch"); ok {
		t.Error("unknown mix reported found")
	}
}

func TestMixByNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MixByName on unknown mix must panic")
		}
	}()
	MixByName("nosuch")
}

func TestMixesCoverCanonicalOrder(t *testing.T) {
	ms := Mixes()
	if len(ms) != len(MixNames) {
		t.Fatalf("Mixes() = %d entries, want %d", len(ms), len(MixNames))
	}
	for i, m := range ms {
		if m.Name != MixNames[i] {
			t.Errorf("mix %d = %q, want %q", i, m.Name, MixNames[i])
		}
	}
	// A mix member outside the suite must surface as an error, not a panic.
	bad := Mix{Name: "bad", Benches: []string{"gcc", "nosuch"}}
	if _, err := bad.Programs(); err == nil {
		t.Error("mix with unknown member resolved without error")
	}
}

package workload

import "fmt"

// Mix is a named multi-program SMT workload built from the benchmark
// suite. The Section 3 fetch-policy study runs each mix's programs as
// simultaneous threads; the interesting mixes pair serial, load-bound
// programs (which clog a shared window) with parallel, regular ones
// (which exploit it).
type Mix struct {
	Name    string
	Desc    string
	Benches []string
}

// MixNames lists the canonical SMT mixes in presentation order.
var MixNames = []string{"ijpeg+li", "gcc+m88ksim", "compress+vortex", "quad"}

// LookupMix builds the named mix, reporting whether the name is part of
// the canonical set. Use it when the name comes from user input.
func LookupMix(name string) (Mix, bool) {
	switch name {
	case "ijpeg+li":
		return Mix{
			Name:    "ijpeg+li",
			Desc:    "parallel block transform vs serial cons-cell chasing",
			Benches: []string{"ijpeg", "li"},
		}, true
	case "gcc+m88ksim":
		return Mix{
			Name:    "gcc+m88ksim",
			Desc:    "compare-ladder dispatch vs linked-list hash lookup",
			Benches: []string{"gcc", "m88ksim"},
		}, true
	case "compress+vortex":
		return Mix{
			Name:    "compress+vortex",
			Desc:    "dictionary probing vs biased record validation",
			Benches: []string{"compress", "vortex"},
		}, true
	case "quad":
		return Mix{
			Name:    "quad",
			Desc:    "four-way mix across the suite's branch characters",
			Benches: []string{"gcc", "ijpeg", "m88ksim", "perl"},
		}, true
	}
	return Mix{}, false
}

// MixByName builds the named mix. It panics on an unknown name (the set
// is closed and compiled in).
func MixByName(name string) Mix {
	m, ok := LookupMix(name)
	if !ok {
		panic("workload: unknown mix " + name)
	}
	return m
}

// Mixes builds the full canonical mix set in presentation order.
func Mixes() []Mix {
	out := make([]Mix, 0, len(MixNames))
	for _, n := range MixNames {
		out = append(out, MixByName(n))
	}
	return out
}

// Programs resolves the mix's member benchmarks to their programs.
func (m Mix) Programs() ([]Benchmark, error) {
	out := make([]Benchmark, 0, len(m.Benches))
	for _, n := range m.Benches {
		b, ok := Lookup(n)
		if !ok {
			return nil, fmt.Errorf("workload: mix %s: unknown benchmark %q", m.Name, n)
		}
		out = append(out, b)
	}
	return out, nil
}

package workload

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/prog"
)

// Benchmark pairs a program with its provenance.
type Benchmark struct {
	Name string
	Desc string
	Prog *prog.Program
}

// Names lists the suite in the paper's presentation order.
var Names = []string{"gcc", "compress", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"}

// Lookup builds the named benchmark, reporting whether the name is part of
// the suite. Use it when the name comes from user input.
func Lookup(name string) (Benchmark, bool) {
	switch name {
	case "gcc":
		return GCC(), true
	case "compress":
		return Compress(), true
	case "go":
		return Go(), true
	case "ijpeg":
		return IJPEG(), true
	case "li":
		return Li(), true
	case "m88ksim":
		return M88ksim(), true
	case "perl":
		return Perl(), true
	case "vortex":
		return Vortex(), true
	}
	return Benchmark{}, false
}

// ByName builds the named benchmark. It panics on an unknown name (the set
// is closed and compiled in).
func ByName(name string) Benchmark {
	b, ok := Lookup(name)
	if !ok {
		panic("workload: unknown benchmark " + name)
	}
	return b
}

// All builds the full suite in paper order.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(Names))
	for _, n := range Names {
		out = append(out, ByName(n))
	}
	return out
}

// lcg is the deterministic generator used by the Go-side data builders.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 17
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// wordList renders values as .word directives, 8 per line.
func wordList(vals []int64) string {
	var b strings.Builder
	for i := 0; i < len(vals); i += 8 {
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		b.WriteString("    .word ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", vals[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// byteList renders values as .byte directives, 16 per line.
func byteList(vals []byte) string {
	var b strings.Builder
	for i := 0; i < len(vals); i += 16 {
		end := i + 16
		if end > len(vals) {
			end = len(vals)
		}
		b.WriteString("    .byte ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", vals[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func mustBench(name, desc, src string) Benchmark {
	return Benchmark{Name: name, Desc: desc, Prog: asm.MustAssemble(name, src)}
}

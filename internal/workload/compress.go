package workload

import (
	"fmt"
	"strings"
)

// Compress is an LZW-style dictionary kernel: for each input byte it probes
// an open-addressed hash table for the (prefix, char) pair, extending the
// match on a hit and inserting a new code on a miss. The hit/miss branch
// and the probe-collision branch are data dependent on loaded table state —
// the load-evaluate-branch pattern that dominates compress95.
func Compress() Benchmark {
	const (
		inputLen = 2048
		tabSize  = 4096
		passes   = 14
	)
	// Skewed pseudo-text input: English-like letter frequencies collapse
	// to a 32-symbol alphabet with repeating digraphs.
	g := &lcg{s: 0xc0ffee}
	input := make([]byte, inputLen)
	prev := 0
	for i := range input {
		var c int
		switch g.intn(10) {
		case 0, 1, 2, 3:
			c = g.intn(6) // very common symbols
		case 4, 5, 6:
			c = 6 + g.intn(10)
		case 7, 8:
			c = (prev + 1) % 32 // digraph structure
		default:
			c = 16 + g.intn(16)
		}
		input[i] = byte(c)
		prev = c
	}

	var src strings.Builder
	src.WriteString("    .data\ninput:\n")
	src.WriteString(byteList(input))
	src.WriteString("    .align 8\n")
	fmt.Fprintf(&src, "htab:  .space %d\n", tabSize*8)
	fmt.Fprintf(&src, "codes: .space %d\n", tabSize*8)
	fmt.Fprintf(&src, `
    .text
main:
    li  r20, 0          # pass counter
    li  r21, %d         # passes
pass:
    # clear the dictionary
    li  r1, 0
    li  r2, %d
    la  r3, htab
clear:
    sw  r0, 0(r3)
    addi r3, r3, 8
    addi r1, r1, 1
    bne r1, r2, clear

    li  r10, 0          # input index
    li  r11, %d         # input length
    li  r15, 0          # prefix code
    li  r16, 256        # next free code
loop:
    la  r1, input
    add r1, r1, r10
    lb  r2, 0(r1)       # ch
    andi r2, r2, 255
    slli r3, r15, 4     # h = (prefix << 4) ^ ch
    xor r3, r3, r2
    andi r3, r3, 4095
    slli r4, r15, 9     # key = prefix<<9 | ch | marker
    or  r4, r4, r2
    ori r4, r4, 1048576
probe:
    slli r5, r3, 3
    lw  r6, htab(r5)
    beq r6, r0, insert  # empty slot: miss
    beq r6, r4, found   # dictionary hit
    addi r3, r3, 1      # linear probe on collision
    andi r3, r3, 4095
    j   probe
found:
    lw  r15, codes(r5)  # prefix = stored code
    addi r17, r17, 1    # matches
    j   next
insert:
    sw  r4, htab(r5)
    sw  r16, codes(r5)
    addi r16, r16, 1
    add r15, r2, r0     # restart match with ch
    addi r18, r18, 1    # emitted codes
next:
    addi r10, r10, 1
    bne r10, r11, loop

    addi r20, r20, 1
    bne r20, r21, pass
    halt
`, passes, tabSize, inputLen)
	return mustBench("compress", "LZW-style dictionary probe", src.String())
}

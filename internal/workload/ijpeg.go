package workload

import (
	"fmt"
	"strings"
)

// IJPEG is a DSP-style kernel: 8x8 blocks of an image are scaled by a
// quantisation table with saturating clamps, then accumulated. Loop
// branches are highly regular; the clamp branches depend on loaded pixel
// data (the load-back candidate the paper highlights for ijpeg).
func IJPEG() Benchmark {
	const (
		dim    = 64 // 64x64 image
		passes = 26
	)
	g := &lcg{s: 0xbeef}
	img := make([]byte, dim*dim)
	for i := range img {
		// Smooth gradient plus noise: clamps trigger on a data-dependent
		// minority of pixels.
		v := (i%dim)*3 + g.intn(64)
		if v > 255 {
			v = 255
		}
		img[i] = byte(v)
	}
	quant := make([]int64, 64)
	for i := range quant {
		quant[i] = int64(1 + (i*7)%5)
	}

	var src strings.Builder
	src.WriteString("    .data\nimage:\n")
	src.WriteString(byteList(img))
	src.WriteString("    .align 8\nquant:\n")
	src.WriteString(wordList(quant))
	fmt.Fprintf(&src, "out: .space %d\n", dim*dim*8)
	fmt.Fprintf(&src, `
    .text
main:
    li  r20, 0
    li  r21, %d         # passes
pass:
    li  r10, 0          # pixel index
    li  r11, %d         # pixels
loop:
    la  r1, image
    add r1, r1, r10
    lb  r2, 0(r1)       # pixel
    andi r2, r2, 255
    andi r3, r10, 63    # position within 8x8 block
    slli r4, r3, 3
    lw  r5, quant(r4)   # quantiser
    mul r6, r2, r5
    addi r6, r6, -384   # centre
    # clamp to [0, 255]
    bgez r6, noneg      # clamp-low branch (data dependent)
    li  r6, 0
noneg:
    slti r7, r6, 256
    bne r7, r0, nohigh  # clamp-high branch (data dependent)
    li  r6, 255
nohigh:
    add r22, r22, r6    # accumulate
    slli r8, r10, 3
    la  r9, out
    add r9, r9, r8
    sw  r6, 0(r9)
    addi r10, r10, 1
    bne r10, r11, loop
    addi r20, r20, 1
    bne r20, r21, pass
    halt
`, passes, dim*dim)
	return mustBench("ijpeg", "block quantisation with saturating clamps", src.String())
}

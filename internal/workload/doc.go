// Package workload provides the eight benchmark programs standing in for
// the SPEC95 integer suite of Table 3, plus the multi-program mixes the
// Section 3 SMT study runs. Each program is written in the simulator's
// assembly language with Go-side generators for its data segment, and is
// designed to reproduce the *branch character* of its SPEC95 counterpart
// (see DESIGN.md for the substitution argument):
//
//	gcc      — Markov token-stream dispatch through a compare ladder
//	compress — LZW-style dictionary probe with data-dependent hit/miss
//	go       — board evaluation with value-noise branches, hard for history
//	ijpeg    — 8x8 block transform with clamp branches, load heavy
//	li       — cons-cell traversal with type-tag dispatch
//	m88ksim  — hash-table linked-list lookup (Figure 7's lookupdisasm)
//	perl     — character-class scanning and word hashing
//	vortex   — record-chain validation with highly biased branches
//
// All generators are deterministic; programs halt on their own after a
// bounded amount of work and are sized so that a few hundred thousand
// dynamic instructions exercise their steady state.
//
// Main entry points: Names lists the suite in the paper's presentation
// order; Lookup resolves a user-supplied name (ByName panics instead, for
// the compiled-in callers); All builds the whole suite. For the SMT study,
// MixNames / LookupMix / Mixes provide the canonical multi-program mixes
// and Mix.Programs resolves a mix's members. Benchmark.Prog carries the
// assembled program whose content fingerprint (prog.Fingerprint) keys the
// trace store and every study cache identity.
package workload

package workload

import (
	"testing"

	"repro/internal/vm"
)

// runToHalt executes the benchmark functionally and returns dynamic counts.
func runToHalt(t *testing.T, b Benchmark, max int64) (insts, branches, taken, loads int64) {
	t.Helper()
	machine := vm.New(b.Prog)
	n, err := machine.Run(max, func(e *vm.Event) {
		if e.Inst.IsCondBranch() {
			branches++
			if e.Taken {
				taken++
			}
		}
		if e.Inst.IsLoad() {
			loads++
		}
	})
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return n, branches, taken, loads
}

func TestAllBenchmarksAssembleAndValidate(t *testing.T) {
	for _, b := range All() {
		if err := b.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if b.Desc == "" {
			t.Errorf("%s: missing description", b.Name)
		}
	}
}

func TestSuiteOrderMatchesPaper(t *testing.T) {
	want := []string{"gcc", "compress", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"}
	if len(Names) != len(want) {
		t.Fatalf("suite size = %d", len(Names))
	}
	for i, n := range want {
		if Names[i] != n {
			t.Errorf("Names[%d] = %s, want %s", i, Names[i], n)
		}
	}
}

// TestLookup pins Lookup's non-panicking contract for user-supplied names:
// every suite member resolves to a built benchmark, everything else — the
// empty string, case variants, whitespace, near-misses — reports !ok.
func TestLookup(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
	}{
		{"gcc", true},
		{"compress", true},
		{"go", true},
		{"ijpeg", true},
		{"li", true},
		{"m88ksim", true},
		{"perl", true},
		{"vortex", true},
		{"", false},
		{"nosuch", false},
		{"GCC", false},  // lookups are case-sensitive
		{"gcc ", false}, // no trimming
		{" li", false},
		{"m88k", false}, // prefixes are not names
		{"vortexx", false},
		{"spec95", false},
	}
	for _, c := range cases {
		b, ok := Lookup(c.name)
		if ok != c.ok {
			t.Errorf("Lookup(%q) ok = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if !c.ok {
			if b.Prog != nil || b.Name != "" {
				t.Errorf("Lookup(%q) returned a non-zero benchmark on miss: %+v", c.name, b)
			}
			continue
		}
		if b.Name != c.name {
			t.Errorf("Lookup(%q).Name = %q", c.name, b.Name)
		}
		if b.Prog == nil {
			t.Errorf("Lookup(%q) returned nil program", c.name)
		} else if err := b.Prog.Validate(); err != nil {
			t.Errorf("Lookup(%q) program invalid: %v", c.name, err)
		}
	}
}

// TestLookupCoversNames keeps Lookup and the Names list in sync: a
// benchmark added to one but not the other breaks sweeps silently.
func TestLookupCoversNames(t *testing.T) {
	for _, n := range Names {
		if _, ok := Lookup(n); !ok {
			t.Errorf("suite name %q not resolvable via Lookup", n)
		}
	}
}

func TestByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ByName on unknown benchmark must panic")
		}
	}()
	ByName("nosuch")
}

func TestBenchmarksHaltWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full functional runs are not short")
	}
	for _, b := range All() {
		machine := vm.New(b.Prog)
		n, err := machine.Run(12_000_000, nil)
		if err != nil {
			t.Errorf("%s: fault after %d insts: %v", b.Name, n, err)
			continue
		}
		if !machine.Halt {
			t.Errorf("%s: did not halt within 12M instructions", b.Name)
		}
		if n < 200_000 {
			t.Errorf("%s: only %d dynamic instructions; too short for steady state", b.Name, n)
		}
	}
}

func TestBranchAndLoadMix(t *testing.T) {
	// Every workload must exercise conditional branches (>= 5% of the
	// dynamic mix) and loads, since the paper's study is about
	// load-evaluate-branch behaviour.
	for _, b := range All() {
		insts, branches, taken, loads := runToHalt(t, b, 400_000)
		if insts == 0 {
			t.Fatalf("%s: no instructions", b.Name)
		}
		if f := float64(branches) / float64(insts); f < 0.05 {
			t.Errorf("%s: conditional-branch fraction %.3f too low", b.Name, f)
		}
		if loads == 0 {
			t.Errorf("%s: no loads executed", b.Name)
		}
		if taken == 0 || taken == branches {
			t.Errorf("%s: degenerate branch outcomes (%d/%d taken)", b.Name, taken, branches)
		}
	}
}

func TestM88ksimLookupAlwaysHits(t *testing.T) {
	// Every key 0..255 is present, so the miss path must never trigger:
	// r16 stays 0 while hits (r15) accumulate.
	b := M88ksim()
	machine := vm.New(b.Prog)
	if _, err := machine.Run(2_000_000, nil); err != nil {
		t.Fatal(err)
	}
	if machine.Regs[16] != 0 {
		t.Errorf("misses = %d, want 0", machine.Regs[16])
	}
	if machine.Regs[15] == 0 {
		t.Error("no hits recorded")
	}
}

func TestCompressDictionaryActivity(t *testing.T) {
	b := Compress()
	machine := vm.New(b.Prog)
	if _, err := machine.Run(3_000_000, nil); err != nil {
		t.Fatal(err)
	}
	// Both matches (r17) and inserts (r18) must occur.
	if machine.Regs[17] == 0 || machine.Regs[18] == 0 {
		t.Errorf("matches=%d inserts=%d; both must be nonzero",
			machine.Regs[17], machine.Regs[18])
	}
}

func TestVortexRarePaths(t *testing.T) {
	b := Vortex()
	machine := vm.New(b.Prog)
	if _, err := machine.Run(3_000_000, nil); err != nil {
		t.Fatal(err)
	}
	valid, special, invalid := machine.Regs[15], machine.Regs[16], machine.Regs[17]
	if valid == 0 || special == 0 || invalid == 0 {
		t.Errorf("paths: valid=%d special=%d invalid=%d; all must trigger",
			valid, special, invalid)
	}
	if special > valid/4 || invalid > valid/4 {
		t.Errorf("rare paths not rare: valid=%d special=%d invalid=%d",
			valid, special, invalid)
	}
}

func TestDeterminism(t *testing.T) {
	// Two builds of the same benchmark must execute identically.
	a, b := Compress(), Compress()
	ma, mb := vm.New(a.Prog), vm.New(b.Prog)
	na, _ := ma.Run(100_000, nil)
	nb, _ := mb.Run(100_000, nil)
	if na != nb || ma.Regs != mb.Regs {
		t.Error("benchmark construction is not deterministic")
	}
}

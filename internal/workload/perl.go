package workload

import (
	"fmt"
	"strings"
)

// Perl models the interpreter's string scanner: classify each character of
// a synthetic text (letters/digits/spaces/punctuation), accumulate word
// lengths and hash completed words into a bucket table. Character-class
// branches are value dependent on loaded bytes with moderate bias.
func Perl() Benchmark {
	const (
		textLen = 5120
		passes  = 22
	)
	g := &lcg{s: 0x9e71}
	text := make([]byte, textLen)
	for i := 0; i < textLen; {
		// Emit a word of random length, then a separator.
		wl := 1 + g.intn(9)
		for j := 0; j < wl && i < textLen; j++ {
			if g.intn(8) == 0 {
				text[i] = byte('0' + g.intn(10))
			} else {
				text[i] = byte('a' + g.intn(26))
			}
			i++
		}
		if i < textLen {
			if g.intn(5) == 0 {
				text[i] = ','
			} else {
				text[i] = ' '
			}
			i++
		}
	}

	var src strings.Builder
	src.WriteString("    .data\ntext:\n")
	src.WriteString(byteList(text))
	src.WriteString("    .align 8\nbuckets: .space 512\n")
	fmt.Fprintf(&src, `
    .text
main:
    li  r20, 0
    li  r21, %d          # passes
pass:
    li  r10, 0
    li  r11, %d          # text length
    li  r15, 0           # current word hash
    li  r16, 0           # current word length
loop:
    la  r1, text
    add r1, r1, r10
    lb  r2, 0(r1)        # ch
    andi r2, r2, 255
    # is lowercase letter?
    slti r3, r2, 97
    bne r3, r0, notlower # ch < 'a'
    slti r3, r2, 123
    beq r3, r0, notlower # ch > 'z'
    # letter: extend word
    slli r15, r15, 1
    add r15, r15, r2
    addi r16, r16, 1
    j   next
notlower:
    slti r3, r2, 48
    bne r3, r0, sep      # below '0': separator/punct
    slti r3, r2, 58
    beq r3, r0, sep      # above '9'
    # digit: numeric token
    addi r17, r17, 1
    addi r16, r16, 1
    j   next
sep:
    beq r16, r0, next    # empty word: consecutive separators
    # hash completed word into a bucket
    andi r4, r15, 63
    slli r4, r4, 3
    lw  r5, buckets(r4)
    addi r5, r5, 1
    sw  r5, buckets(r4)
    # long-word branch: value dependent on word length
    slti r6, r16, 6
    bne r6, r0, short
    addi r18, r18, 1
short:
    li  r15, 0
    li  r16, 0
next:
    addi r10, r10, 1
    bne r10, r11, loop
    addi r20, r20, 1
    bne r20, r21, pass
    halt
`, passes, textLen)
	return mustBench("perl", "character-class scanning and word hashing", src.String())
}

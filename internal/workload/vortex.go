package workload

import (
	"fmt"
	"strings"

	"repro/internal/prog"
)

// Vortex models the object database: chains of records are traversed and
// validated. Nearly every record is well-formed, so the validation branches
// are highly biased (vortex95 is among the most predictable SPEC95int
// codes), with occasional data-dependent exceptions.
func Vortex() Benchmark {
	const (
		records = 512
		passes  = 55
	)
	// Record layout: {type, status, value, link} = 32 bytes.
	base := int64(prog.DefaultDataBase)
	recAddr := func(i int) int64 { return base + int64(i)*32 }

	g := &lcg{s: 0x707e}
	words := make([]int64, 0, records*4)
	for i := 0; i < records; i++ {
		typ := int64(1)
		if g.intn(16) == 0 {
			typ = int64(g.intn(4))
		}
		status := int64(1)
		if g.intn(32) == 0 {
			status = 0 // rare invalid record
		}
		val := int64(g.intn(4096))
		// Mostly-sequential chain with occasional skips; last record
		// links to 0 (NULL).
		var link int64
		if i < records-1 {
			nxt := i + 1
			if g.intn(8) == 0 {
				nxt = i + 1 + g.intn(4)
				if nxt >= records {
					nxt = records - 1
				}
			}
			link = recAddr(nxt)
		}
		words = append(words, typ, status, val, link)
	}

	var src strings.Builder
	src.WriteString("    .data\nrecs:\n")
	src.WriteString(wordList(words))
	fmt.Fprintf(&src, `
    .text
main:
    li  r20, 0
    li  r21, %d          # passes
pass:
    la  r2, recs         # ptr = first record
walk:
    beq r2, r0, done     # end of chain
    lw  r3, 8(r2)        # status
    beq r3, r0, invalid  # rare: invalid record
    lw  r4, 0(r2)        # type
    li  r5, 1
    bne r4, r5, special  # rare: non-default type
    lw  r6, 16(r2)       # value
    add r15, r15, r6
    j   step
special:
    addi r16, r16, 1
    j   step
invalid:
    addi r17, r17, 1
step:
    lw  r2, 24(r2)       # ptr = ptr->link
    j   walk
done:
    addi r20, r20, 1
    bne r20, r21, pass
    halt
`, passes)
	return mustBench("vortex", "record-chain validation, highly biased", src.String())
}

package bpred

import "testing"

// BenchmarkGskewPredictUpdate measures the 2Bc-gskew hot path at the
// level-2 size (8K-entry banks).
func BenchmarkGskewPredictUpdate(b *testing.B) {
	p, err := NewGskew2Bc(32768)
	if err != nil {
		b.Fatal(err)
	}
	var h History
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i % 509)
		taken := i%3 != 0
		p.Predict(pc, h.Bits)
		p.Update(pc, h.Bits, taken)
		h.Push(taken)
	}
}

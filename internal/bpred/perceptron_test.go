package bpred

import (
	"math/rand"
	"testing"
)

func TestPerceptronConfigValidation(t *testing.T) {
	if _, err := NewPerceptron(100, 16); err == nil {
		t.Error("bad entries accepted")
	}
	if _, err := NewPerceptron(128, 0); err == nil {
		t.Error("zero history accepted")
	}
	if _, err := NewPerceptron(128, 63); err == nil {
		t.Error("overlong history accepted")
	}
}

func TestPerceptronLearnsBias(t *testing.T) {
	p, _ := NewPerceptron(512, 16)
	acc := trainAccuracy(p, 4000, func(i int, _ uint64) (uint64, bool) { return 9, true })
	if acc < 0.99 {
		t.Errorf("biased accuracy = %v", acc)
	}
}

func TestPerceptronLearnsLinearCorrelation(t *testing.T) {
	// Outcome = XOR of two history bits: linearly inseparable for a single
	// counter, but a perceptron handles single-bit correlations; use a
	// plain copy correlation here (outcome = history bit 3).
	p, _ := NewPerceptron(512, 16)
	var outcomes []bool
	rng := rand.New(rand.NewSource(5))
	acc := trainAccuracy(p, 20000, func(i int, _ uint64) (uint64, bool) {
		var taken bool
		if len(outcomes) >= 4 {
			taken = outcomes[len(outcomes)-4]
		} else {
			taken = rng.Intn(2) == 0
		}
		if i%2 == 0 {
			taken = rng.Intn(2) == 0 // interleaved noise branch
		}
		outcomes = append(outcomes, taken)
		return uint64(10 + i%2), taken
	})
	// Noise branch ~50%, correlated branch near-perfect: > 70% overall.
	if acc < 0.7 {
		t.Errorf("correlated accuracy = %v", acc)
	}
}

func TestPerceptronWeightsSaturate(t *testing.T) {
	p, _ := NewPerceptron(64, 8)
	for i := 0; i < 10000; i++ {
		p.Update(1, 0xff, true)
	}
	// No panic, still predicts taken, weights bounded by int8.
	if !p.Predict(1, 0xff) {
		t.Error("saturated perceptron flipped")
	}
	if p.SizeBytes() != 64*9 {
		t.Errorf("size = %d", p.SizeBytes())
	}
}

func TestSatAdd8(t *testing.T) {
	if satAdd8(127, 1) != 127 || satAdd8(-128, -1) != -128 {
		t.Error("saturation broken")
	}
	if satAdd8(5, -3) != 2 {
		t.Error("plain add broken")
	}
}

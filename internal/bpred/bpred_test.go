package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounter2(t *testing.T) {
	c := Counter2(0)
	if c.Predict() {
		t.Error("0 must predict not-taken")
	}
	c = c.Bump(true).Bump(true)
	if !c.Predict() || c != 2 {
		t.Errorf("counter = %d after two taken", c)
	}
	c = c.Bump(true).Bump(true)
	if c != 3 {
		t.Errorf("counter must saturate at 3, got %d", c)
	}
	c = c.Bump(false)
	if !c.Predict() {
		t.Error("3->2 must still predict taken (hysteresis)")
	}
	for i := 0; i < 5; i++ {
		c = c.Bump(false)
	}
	if c != 0 {
		t.Errorf("counter must saturate at 0, got %d", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b, err := NewBimodal(1024)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(100)
	for i := 0; i < 10; i++ {
		b.Update(pc, 0, true)
	}
	if !b.Predict(pc, 0) {
		t.Error("bimodal failed to learn all-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, 0, false)
	}
	if b.Predict(pc, 0) {
		t.Error("bimodal failed to relearn all-not-taken")
	}
	if b.SizeBytes() != 256 {
		t.Errorf("size = %d, want 256", b.SizeBytes())
	}
}

func TestBimodalBadConfig(t *testing.T) {
	if _, err := NewBimodal(1000); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewGShare(0, 8); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := NewGskew2Bc(48); err == nil {
		t.Error("non-power-of-two gskew accepted")
	}
	if _, err := NewConfidence(7, 8); err == nil {
		t.Error("non-power-of-two confidence accepted")
	}
}

// TestConfidenceThresholdRange pins the fix for silently-unreachable JRS
// thresholds: a threshold above the 4-bit counter max of 15 would make
// High permanently false, so NewConfidence must reject it.
func TestConfidenceThresholdRange(t *testing.T) {
	if _, err := NewConfidence(1024, 16); err == nil {
		t.Error("threshold 16 exceeds the 4-bit counter max and must be rejected")
	}
	if _, err := NewConfidence(1024, 255); err == nil {
		t.Error("threshold 255 must be rejected")
	}
	c, err := NewConfidence(1024, 15)
	if err != nil {
		t.Fatalf("threshold 15 is reachable and must be accepted: %v", err)
	}
	// The max threshold is actually attainable: 15 correct predictions
	// saturate the counter and flip High.
	for i := 0; i < 15; i++ {
		if c.High(3, 0) {
			t.Fatalf("high-confidence after only %d updates", i)
		}
		c.Update(3, 0, true)
	}
	if !c.High(3, 0) {
		t.Error("saturated counter must reach the max threshold")
	}
}

// trainAccuracy trains p on the pattern generator for n branches and
// returns the accuracy over the final quarter.
func trainAccuracy(p Predictor, n int, next func(i int, hist uint64) (pc uint64, taken bool)) float64 {
	var h History
	correct, total := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := next(i, h.Bits)
		pred := p.Predict(pc, h.Bits)
		if i >= 3*n/4 {
			total++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, h.Bits, taken)
		h.Push(taken)
	}
	return float64(correct) / float64(total)
}

func TestGShareLearnsAlternating(t *testing.T) {
	g, _ := NewGShare(4096, 12)
	// A single branch alternating T/N is perfectly predictable from
	// history, impossible for bimodal hysteresis to track cleanly.
	acc := trainAccuracy(g, 4000, func(i int, _ uint64) (uint64, bool) {
		return 7, i%2 == 0
	})
	if acc < 0.98 {
		t.Errorf("gshare accuracy on alternating = %v, want > 0.98", acc)
	}
}

func TestGskewLearnsPatterns(t *testing.T) {
	p, _ := NewGskew2Bc(2048)
	// Period-3 pattern on one branch; history-based banks must catch it.
	acc := trainAccuracy(p, 6000, func(i int, _ uint64) (uint64, bool) {
		return 13, i%3 != 0
	})
	if acc < 0.95 {
		t.Errorf("2bc-gskew accuracy on period-3 = %v, want > 0.95", acc)
	}
	// Strongly biased branch: meta should settle on bimodal and stay
	// near-perfect.
	p2, _ := NewGskew2Bc(2048)
	acc = trainAccuracy(p2, 4000, func(i int, _ uint64) (uint64, bool) {
		return 21, true
	})
	if acc < 0.99 {
		t.Errorf("2bc-gskew accuracy on biased = %v, want > 0.99", acc)
	}
}

func TestGskewBeatsBimodalOnCorrelated(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: pure global
	// correlation.
	rng := rand.New(rand.NewSource(1))
	gen := func() func(i int, hist uint64) (uint64, bool) {
		var lastA bool
		return func(i int, _ uint64) (uint64, bool) {
			if i%2 == 0 {
				lastA = rng.Intn(2) == 0
				return 100, lastA
			}
			return 200, lastA
		}
	}
	g, _ := NewGskew2Bc(4096)
	b, _ := NewBimodal(4096 * 4)
	accG := trainAccuracy(g, 20000, gen())
	rng = rand.New(rand.NewSource(1))
	accB := trainAccuracy(b, 20000, gen())
	// gskew should get branch B right nearly always; bimodal ~50% on both
	// halves of B.
	if accG <= accB+0.1 {
		t.Errorf("gskew (%v) must clearly beat bimodal (%v) on correlated stream", accG, accB)
	}
}

func TestGskewSizing(t *testing.T) {
	// L1 config: 1 KB per bank => 4096 counters per bank.
	p, _ := NewGskew2Bc(4096)
	if p.SizeBytes() != 4096 {
		t.Errorf("per-config size = %d bytes, want 4096", p.SizeBytes())
	}
}

func TestConfidence(t *testing.T) {
	c, _ := NewConfidence(1024, 8)
	pc, hist := uint64(5), uint64(0)
	if c.High(pc, hist) {
		t.Error("fresh estimator must be low confidence")
	}
	for i := 0; i < 8; i++ {
		c.Update(pc, hist, true)
	}
	if !c.High(pc, hist) {
		t.Error("8 correct must reach threshold 8")
	}
	c.Update(pc, hist, false)
	if c.High(pc, hist) {
		t.Error("a miss must reset confidence")
	}
	for i := 0; i < 100; i++ {
		c.Update(pc, hist, true)
	}
	if !c.High(pc, hist) {
		t.Error("counter must saturate high")
	}
	if c.SizeBytes() != 512 {
		t.Errorf("size = %d, want 512", c.SizeBytes())
	}
}

func TestHistory(t *testing.T) {
	var h History
	h.Push(true)
	h.Push(false)
	h.Push(true)
	if h.Bits != 0b101 {
		t.Errorf("history = %b, want 101", h.Bits)
	}
}

// Property: Bump never leaves [0,3] and moves monotonically toward the
// outcome.
func TestQuickCounterBounds(t *testing.T) {
	f := func(start uint8, taken bool) bool {
		c := Counter2(start % 4)
		n := c.Bump(taken)
		if n > 3 {
			return false
		}
		if taken && n < c {
			return false
		}
		if !taken && n > c {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: predictors are deterministic — same inputs, same outputs.
func TestQuickDeterminism(t *testing.T) {
	g1, _ := NewGskew2Bc(256)
	g2, _ := NewGskew2Bc(256)
	f := func(pcs []uint16, outcomes []bool) bool {
		var h1, h2 History
		n := len(pcs)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		for i := 0; i < n; i++ {
			pc := uint64(pcs[i])
			p1 := g1.Predict(pc, h1.Bits)
			p2 := g2.Predict(pc, h2.Bits)
			if p1 != p2 {
				return false
			}
			g1.Update(pc, h1.Bits, outcomes[i])
			g2.Update(pc, h2.Bits, outcomes[i])
			h1.Push(outcomes[i])
			h2.Push(outcomes[i])
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

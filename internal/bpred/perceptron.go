package bpred

import "fmt"

// Perceptron is Jiménez's perceptron branch predictor, included as a
// contemporary (2001) alternative baseline: a table of weight vectors dotted
// with the global history. It captures long linear correlations that
// counter-based schemes miss, at a higher per-entry cost — a useful foil
// when comparing against value-based correlation (ARVI captures non-linear,
// value-determined behaviour neither scheme can).
type Perceptron struct {
	weights [][]int8 // entries × (histLen + 1), index 0 is the bias
	mask    uint64
	histLen uint
	theta   int32 // training threshold (1.93*h + 14, per the paper)
	name    string
}

// NewPerceptron builds a perceptron predictor with the given table entries
// (power of two) and history length (1..62).
func NewPerceptron(entries int, histLen uint) (*Perceptron, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: perceptron entries %d not a power of two", entries)
	}
	if histLen == 0 || histLen > 62 {
		return nil, fmt.Errorf("bpred: perceptron history %d out of range", histLen)
	}
	w := make([][]int8, entries)
	for i := range w {
		w[i] = make([]int8, histLen+1)
	}
	return &Perceptron{
		weights: w,
		mask:    uint64(entries - 1),
		histLen: histLen,
		theta:   int32(1.93*float64(histLen) + 14),
		name:    fmt.Sprintf("perceptron-%dx%d", entries, histLen),
	}, nil
}

func (p *Perceptron) output(pc, hist uint64) int32 {
	w := p.weights[pc&p.mask]
	y := int32(w[0])
	for i := uint(0); i < p.histLen; i++ {
		if hist>>i&1 != 0 {
			y += int32(w[i+1])
		} else {
			y -= int32(w[i+1])
		}
	}
	return y
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc, hist uint64) bool { return p.output(pc, hist) >= 0 }

// Update implements Predictor: train on a misprediction or when the output
// magnitude is below theta.
func (p *Perceptron) Update(pc, hist uint64, taken bool) {
	y := p.output(pc, hist)
	pred := y >= 0
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if pred == taken && mag > p.theta {
		return
	}
	w := p.weights[pc&p.mask]
	t := int8(-1)
	if taken {
		t = 1
	}
	w[0] = satAdd8(w[0], t)
	for i := uint(0); i < p.histLen; i++ {
		x := int8(-1)
		if hist>>i&1 != 0 {
			x = 1
		}
		w[i+1] = satAdd8(w[i+1], t*x)
	}
}

func satAdd8(a, b int8) int8 {
	s := int16(a) + int16(b)
	if s > 127 {
		return 127
	}
	if s < -128 {
		return -128
	}
	return int8(s)
}

// SizeBytes implements Predictor (one byte per weight).
func (p *Perceptron) SizeBytes() int { return len(p.weights) * int(p.histLen+1) }

// Name implements Predictor.
func (p *Perceptron) Name() string { return p.name }

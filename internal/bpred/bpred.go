// Package bpred implements the paper's baseline branch-prediction stack:
// two-bit counter tables (bimodal), gshare, the Alpha EV8-style 2Bc-gskew
// hybrid [Seznec et al., ISCA 2002] used as both the level-1 predictor and
// the level-2 baseline, a JRS-style confidence estimator, and the
// two-level override composition of Section 5.
//
// All predictors operate on the branch PC (an instruction index) and a
// global history register maintained by the caller via Update. Because the
// timing core replays the correct path only, speculative and committed
// history are identical; predictors therefore update history at Update time
// in program order.
package bpred

import "fmt"

// Counter2 is a 2-bit saturating counter. Values 0..1 predict not-taken,
// 2..3 predict taken.
type Counter2 uint8

// Predict returns the counter's direction.
//
//arvi:hotpath
func (c Counter2) Predict() bool { return c >= 2 }

// Bump moves the counter toward the outcome and returns the new value.
//
//arvi:hotpath
func (c Counter2) Bump(taken bool) Counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// WeaklyTaken is the conventional counter initialisation.
const WeaklyTaken = Counter2(2)

// Predictor is a direction predictor for conditional branches.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc given
	// the current global history.
	Predict(pc uint64, hist uint64) bool
	// Update trains the predictor with the resolved outcome.
	Update(pc uint64, hist uint64, taken bool)
	// SizeBytes reports the hardware budget of the predictor state.
	SizeBytes() int
	// Name identifies the predictor in reports.
	Name() string
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	//arvi:len bim
	table []Counter2
	//arvi:mask bim
	mask uint64
	name string
}

// NewBimodal builds a bimodal predictor with the given number of entries
// (power of two).
func NewBimodal(entries int) (*Bimodal, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: bimodal entries %d not a power of two", entries)
	}
	t := make([]Counter2, entries)
	for i := range t {
		t[i] = WeaklyTaken
	}
	return &Bimodal{table: t, mask: uint64(entries - 1), name: fmt.Sprintf("bimodal-%d", entries)}, nil
}

// Predict implements Predictor.
//
//arvi:hotpath
func (b *Bimodal) Predict(pc uint64, _ uint64) bool {
	return b.table[pc&b.mask].Predict()
}

// Update implements Predictor.
//
//arvi:hotpath
func (b *Bimodal) Update(pc uint64, _ uint64, taken bool) {
	i := pc & b.mask
	b.table[i] = b.table[i].Bump(taken)
}

// SizeBytes implements Predictor (2 bits per entry).
func (b *Bimodal) SizeBytes() int { return len(b.table) / 4 }

// Name implements Predictor.
func (b *Bimodal) Name() string { return b.name }

// GShare xors global history into the table index.
type GShare struct {
	//arvi:len gs
	table []Counter2
	//arvi:mask gs
	mask     uint64
	histBits uint
	name     string
}

// NewGShare builds a gshare predictor with the given table size (power of
// two) folding in histBits of global history.
func NewGShare(entries int, histBits uint) (*GShare, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: gshare entries %d not a power of two", entries)
	}
	t := make([]Counter2, entries)
	for i := range t {
		t[i] = WeaklyTaken
	}
	return &GShare{
		table: t, mask: uint64(entries - 1), histBits: histBits,
		name: fmt.Sprintf("gshare-%d", entries),
	}, nil
}

//arvi:hotpath
//arvi:mask gs
func (g *GShare) index(pc, hist uint64) uint64 {
	h := hist & ((1 << g.histBits) - 1)
	return (pc ^ h) & g.mask
}

// Predict implements Predictor.
//
//arvi:hotpath
func (g *GShare) Predict(pc, hist uint64) bool {
	return g.table[g.index(pc, hist)].Predict()
}

// Update implements Predictor.
//
//arvi:hotpath
func (g *GShare) Update(pc, hist uint64, taken bool) {
	i := g.index(pc, hist)
	g.table[i] = g.table[i].Bump(taken)
}

// SizeBytes implements Predictor.
func (g *GShare) SizeBytes() int { return len(g.table) / 4 }

// Name implements Predictor.
func (g *GShare) Name() string { return g.name }

// Gskew2Bc is the 2Bc-gskew hybrid of the Alpha EV8 [26]: a bimodal bank
// (BIM), two history-skewed banks (G0, G1) and a meta bank choosing between
// the bimodal prediction and the e-gskew majority vote. Each bank holds
// 2-bit counters; the four equally sized banks match the paper's "three
// predictor tables and one table that controls which table provides the
// prediction", 1 KB each for the L1 (4 KB total) and 8 KB each for the L2
// baseline (32 KB total).
type Gskew2Bc struct {
	//arvi:len bank
	bim, g0, g1, meta []Counter2
	//arvi:mask bank
	mask   uint64
	h0, h1 uint // history lengths for the skewed banks
	name   string
}

// NewGskew2Bc builds a 2Bc-gskew hybrid with the given per-bank entry count
// (power of two).
func NewGskew2Bc(entriesPerBank int) (*Gskew2Bc, error) {
	if entriesPerBank <= 0 || entriesPerBank&(entriesPerBank-1) != 0 {
		return nil, fmt.Errorf("bpred: gskew entries %d not a power of two", entriesPerBank)
	}
	mk := func() []Counter2 {
		t := make([]Counter2, entriesPerBank)
		for i := range t {
			t[i] = WeaklyTaken
		}
		return t
	}
	bits := uint(0)
	for e := entriesPerBank; e > 1; e >>= 1 {
		bits++
	}
	h1 := bits + 2
	if h1 > 24 {
		h1 = 24
	}
	return &Gskew2Bc{
		bim: mk(), g0: mk(), g1: mk(), meta: mk(),
		mask: uint64(entriesPerBank - 1),
		h0:   bits / 2, h1: h1,
		name: fmt.Sprintf("2bc-gskew-%dx4", entriesPerBank),
	}, nil
}

// skew implements the inter-bank skewing functions: a lightweight version
// of the EV8 H/H^-1 functions (distinct odd multipliers per bank) that
// decorrelates conflict aliasing between banks.
//
//arvi:hotpath
func skew(x uint64, bank uint64) uint64 {
	x ^= x >> 17
	x *= 0x9e3779b97f4a7c15 + 2*bank // distinct odd constant per bank
	x ^= x >> 29
	return x
}

//arvi:hotpath
//arvi:mask bank
func (p *Gskew2Bc) idxBim(pc uint64) uint64 { return pc & p.mask }

//arvi:hotpath
//arvi:mask bank
func (p *Gskew2Bc) idxG0(pc, hist uint64) uint64 {
	h := hist & ((1 << p.h0) - 1)
	return skew(pc^(h<<1), 1) & p.mask
}

//arvi:hotpath
//arvi:mask bank
func (p *Gskew2Bc) idxG1(pc, hist uint64) uint64 {
	h := hist & ((1 << p.h1) - 1)
	return skew(pc^(h<<1), 2) & p.mask
}

//arvi:hotpath
//arvi:mask bank
func (p *Gskew2Bc) idxMeta(pc, hist uint64) uint64 {
	h := hist & ((1 << p.h0) - 1)
	return skew(pc^(h<<1), 3) & p.mask
}

// Predict implements Predictor: meta chooses between the bimodal direction
// and the majority of {BIM, G0, G1} (e-gskew vote).
//
//arvi:hotpath
func (p *Gskew2Bc) Predict(pc, hist uint64) bool {
	bim := p.bim[p.idxBim(pc)].Predict()
	if !p.meta[p.idxMeta(pc, hist)].Predict() {
		return bim
	}
	g0 := p.g0[p.idxG0(pc, hist)].Predict()
	g1 := p.g1[p.idxG1(pc, hist)].Predict()
	return majority(bim, g0, g1)
}

//arvi:hotpath
func majority(a, b, c bool) bool {
	n := 0
	if a {
		n++
	}
	if b {
		n++
	}
	if c {
		n++
	}
	return n >= 2
}

// Update implements Predictor with the EV8 partial-update policy: the meta
// counter trains toward whichever component was correct; the voting banks
// update only when the overall prediction was wrong or when they
// participated in a correct majority (strengthening).
//
//arvi:hotpath
func (p *Gskew2Bc) Update(pc, hist uint64, taken bool) {
	iB, i0, i1, iM := p.idxBim(pc), p.idxG0(pc, hist), p.idxG1(pc, hist), p.idxMeta(pc, hist)
	bim := p.bim[iB].Predict()
	g0 := p.g0[i0].Predict()
	g1 := p.g1[i1].Predict()
	vote := majority(bim, g0, g1)
	useSkew := p.meta[iM].Predict()
	overall := bim
	if useSkew {
		overall = vote
	}

	// Meta trains when the two components disagree.
	if bim != vote {
		p.meta[iM] = p.meta[iM].Bump(vote == taken)
	}

	if overall == taken {
		// Strengthen the banks that agreed with the outcome.
		if useSkew {
			if bim == taken {
				p.bim[iB] = p.bim[iB].Bump(taken)
			}
			if g0 == taken {
				p.g0[i0] = p.g0[i0].Bump(taken)
			}
			if g1 == taken {
				p.g1[i1] = p.g1[i1].Bump(taken)
			}
		} else {
			p.bim[iB] = p.bim[iB].Bump(taken)
		}
		return
	}
	// Mispredicted: retrain everything toward the outcome.
	p.bim[iB] = p.bim[iB].Bump(taken)
	p.g0[i0] = p.g0[i0].Bump(taken)
	p.g1[i1] = p.g1[i1].Bump(taken)
}

// SizeBytes implements Predictor: four banks of 2-bit counters.
func (p *Gskew2Bc) SizeBytes() int { return len(p.bim) }

// Name implements Predictor.
func (p *Gskew2Bc) Name() string { return p.name }

// Reset returns every bank to the weakly-taken initial state, exactly as
// NewGskew2Bc builds it, so a pooled engine can reuse the tables instead of
// re-allocating them.
//
//arvi:hotpath
func (p *Gskew2Bc) Reset() {
	for _, bank := range [4][]Counter2{p.bim, p.g0, p.g1, p.meta} {
		for i := range bank {
			bank[i] = WeaklyTaken
		}
	}
}

// Confidence is a JRS-style miss-distance confidence estimator [14]: a
// table of resetting counters indexed by pc^history. A correct prediction
// increments the counter; a misprediction resets it. A branch is
// high-confidence when its counter is at or above the threshold.
type Confidence struct {
	//arvi:len conf
	table []uint8
	//arvi:mask conf
	mask      uint64
	max       uint8
	Threshold uint8
}

// confidenceMax is the saturation value of the 4-bit JRS counters. A
// threshold above it could never be reached, making High permanently
// false — the estimator would silently veto every override.
const confidenceMax = 15

// NewConfidence builds a confidence estimator with entries (power of two),
// 4-bit counters and the given high-confidence threshold. The threshold
// must be reachable by the counters (at most 15); out-of-range values are
// rejected instead of silently disabling high confidence.
func NewConfidence(entries int, threshold uint8) (*Confidence, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: confidence entries %d not a power of two", entries)
	}
	if threshold > confidenceMax {
		return nil, fmt.Errorf("bpred: confidence threshold %d exceeds the 4-bit counter max %d",
			threshold, confidenceMax)
	}
	return &Confidence{
		table: make([]uint8, entries), mask: uint64(entries - 1),
		max: confidenceMax, Threshold: threshold,
	}, nil
}

//arvi:hotpath
//arvi:mask conf
func (c *Confidence) index(pc, hist uint64) uint64 { return (pc ^ hist) & c.mask }

// High reports whether the branch is currently high-confidence.
//
//arvi:hotpath
func (c *Confidence) High(pc, hist uint64) bool {
	return c.table[c.index(pc, hist)] >= c.Threshold
}

// Update trains the estimator with the level-1 predictor's correctness.
//
//arvi:hotpath
func (c *Confidence) Update(pc, hist uint64, correct bool) {
	i := c.index(pc, hist)
	if correct {
		if c.table[i] < c.max {
			c.table[i]++
		}
	} else {
		c.table[i] = 0
	}
}

// SizeBytes reports the estimator's state budget (4 bits per entry).
func (c *Confidence) SizeBytes() int { return len(c.table) / 2 }

// Reset clears every counter to the freshly built state.
//
//arvi:hotpath
func (c *Confidence) Reset() {
	clear(c.table)
}

// History maintains the global branch history register.
type History struct {
	Bits uint64
}

// Push shifts the outcome into the history.
//
//arvi:hotpath
func (h *History) Push(taken bool) {
	h.Bits <<= 1
	if taken {
		h.Bits |= 1
	}
}

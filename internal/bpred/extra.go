package bpred

import "fmt"

// YAGS is the Eden/Mudge YAGS predictor [9 in the paper]: a bimodal choice
// table backed by two small tagged direction caches that record only the
// instances that disagree with the bias. It is included as an additional
// aliasing-resistant baseline for predictor comparisons.
type YAGS struct {
	choice []Counter2
	// Direction caches: taken-cache holds branches that are taken when
	// the bias says not-taken, and vice versa.
	tTags, nTags []uint16
	tCtr, nCtr   []Counter2
	tValid       []bool
	nValid       []bool
	mask         uint64
	cacheMask    uint64
	histBits     uint
	name         string
}

// NewYAGS builds a YAGS predictor with the given choice-table entries and
// direction-cache entries (both powers of two).
func NewYAGS(choiceEntries, cacheEntries int, histBits uint) (*YAGS, error) {
	if choiceEntries <= 0 || choiceEntries&(choiceEntries-1) != 0 {
		return nil, fmt.Errorf("bpred: yags choice entries %d not a power of two", choiceEntries)
	}
	if cacheEntries <= 0 || cacheEntries&(cacheEntries-1) != 0 {
		return nil, fmt.Errorf("bpred: yags cache entries %d not a power of two", cacheEntries)
	}
	y := &YAGS{
		choice:    make([]Counter2, choiceEntries),
		tTags:     make([]uint16, cacheEntries),
		nTags:     make([]uint16, cacheEntries),
		tCtr:      make([]Counter2, cacheEntries),
		nCtr:      make([]Counter2, cacheEntries),
		tValid:    make([]bool, cacheEntries),
		nValid:    make([]bool, cacheEntries),
		mask:      uint64(choiceEntries - 1),
		cacheMask: uint64(cacheEntries - 1),
		histBits:  histBits,
		name:      fmt.Sprintf("yags-%d+%dx2", choiceEntries, cacheEntries),
	}
	for i := range y.choice {
		y.choice[i] = WeaklyTaken
	}
	return y, nil
}

func (y *YAGS) cacheIndex(pc, hist uint64) uint64 {
	h := hist & ((1 << y.histBits) - 1)
	return (pc ^ h) & y.cacheMask
}

func (y *YAGS) tag(pc uint64) uint16 { return uint16(pc & 0xff) }

// Predict implements Predictor.
func (y *YAGS) Predict(pc, hist uint64) bool {
	bias := y.choice[pc&y.mask].Predict()
	i := y.cacheIndex(pc, hist)
	if bias {
		// Bias taken: consult the not-taken cache for exceptions.
		if y.nValid[i] && y.nTags[i] == y.tag(pc) {
			return y.nCtr[i].Predict()
		}
		return true
	}
	if y.tValid[i] && y.tTags[i] == y.tag(pc) {
		return y.tCtr[i].Predict()
	}
	return false
}

// Update implements Predictor with the YAGS insertion policy: a direction
// cache allocates only when the bias mispredicts.
func (y *YAGS) Update(pc, hist uint64, taken bool) {
	ci := pc & y.mask
	bias := y.choice[ci].Predict()
	i := y.cacheIndex(pc, hist)
	tg := y.tag(pc)

	if bias {
		if y.nValid[i] && y.nTags[i] == tg {
			y.nCtr[i] = y.nCtr[i].Bump(taken)
		} else if !taken {
			y.nValid[i] = true
			y.nTags[i] = tg
			y.nCtr[i] = 1 // weakly not-taken exception
		}
	} else {
		if y.tValid[i] && y.tTags[i] == tg {
			y.tCtr[i] = y.tCtr[i].Bump(taken)
		} else if taken {
			y.tValid[i] = true
			y.tTags[i] = tg
			y.tCtr[i] = 2 // weakly taken exception
		}
	}
	// The choice table trains unless an exception entry handled the case
	// correctly against the bias.
	exceptionCorrect := (bias && !taken && y.nValid[i] && y.nTags[i] == tg) ||
		(!bias && taken && y.tValid[i] && y.tTags[i] == tg)
	if !exceptionCorrect || bias == taken {
		y.choice[ci] = y.choice[ci].Bump(taken)
	}
}

// SizeBytes implements Predictor.
func (y *YAGS) SizeBytes() int {
	choice := len(y.choice) / 4
	cache := len(y.tTags) * (2 + 1) / 1 // tag byte + counters, per cache
	return choice + 2*cache
}

// Name implements Predictor.
func (y *YAGS) Name() string { return y.name }

// PAg is a local-history two-level predictor [36]: a table of per-branch
// history registers indexing a shared pattern table of 2-bit counters.
type PAg struct {
	local    []uint16
	pattern  []Counter2
	lmask    uint64
	pmask    uint64
	histBits uint
	name     string
}

// NewPAg builds a PAg with the given number of local-history entries and
// pattern-table entries (powers of two).
func NewPAg(localEntries, patternEntries int, histBits uint) (*PAg, error) {
	if localEntries <= 0 || localEntries&(localEntries-1) != 0 {
		return nil, fmt.Errorf("bpred: pag local entries %d not a power of two", localEntries)
	}
	if patternEntries <= 0 || patternEntries&(patternEntries-1) != 0 {
		return nil, fmt.Errorf("bpred: pag pattern entries %d not a power of two", patternEntries)
	}
	if histBits > 16 {
		return nil, fmt.Errorf("bpred: pag history %d too long", histBits)
	}
	p := &PAg{
		local:    make([]uint16, localEntries),
		pattern:  make([]Counter2, patternEntries),
		lmask:    uint64(localEntries - 1),
		pmask:    uint64(patternEntries - 1),
		histBits: histBits,
		name:     fmt.Sprintf("pag-%dx%d", localEntries, patternEntries),
	}
	for i := range p.pattern {
		p.pattern[i] = WeaklyTaken
	}
	return p, nil
}

func (p *PAg) pindex(pc uint64) uint64 {
	h := uint64(p.local[pc&p.lmask]) & ((1 << p.histBits) - 1)
	return (h ^ pc<<p.histBits) & p.pmask
}

// Predict implements Predictor (the global history argument is unused —
// PAg correlates on per-branch local history).
func (p *PAg) Predict(pc uint64, _ uint64) bool {
	return p.pattern[p.pindex(pc)].Predict()
}

// Update implements Predictor.
func (p *PAg) Update(pc uint64, _ uint64, taken bool) {
	i := p.pindex(pc)
	p.pattern[i] = p.pattern[i].Bump(taken)
	li := pc & p.lmask
	p.local[li] <<= 1
	if taken {
		p.local[li] |= 1
	}
}

// SizeBytes implements Predictor.
func (p *PAg) SizeBytes() int { return len(p.local)*2 + len(p.pattern)/4 }

// Name implements Predictor.
func (p *PAg) Name() string { return p.name }

package bpred

import (
	"math/rand"
	"testing"
)

func TestYAGSConfigValidation(t *testing.T) {
	if _, err := NewYAGS(1000, 256, 8); err == nil {
		t.Error("bad choice size accepted")
	}
	if _, err := NewYAGS(1024, 100, 8); err == nil {
		t.Error("bad cache size accepted")
	}
	if _, err := NewYAGS(1024, 256, 8); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestYAGSLearnsBiasAndExceptions(t *testing.T) {
	y, _ := NewYAGS(4096, 1024, 8)
	// A branch taken except every 4th occurrence in a fixed history
	// context: the bias learns taken, the not-taken cache learns the
	// exception contexts.
	acc := trainAccuracy(y, 8000, func(i int, _ uint64) (uint64, bool) {
		return 42, i%4 != 3
	})
	if acc < 0.9 {
		t.Errorf("yags accuracy on biased-with-exceptions = %v", acc)
	}
	if y.SizeBytes() <= 0 || y.Name() == "" {
		t.Error("metadata broken")
	}
}

func TestYAGSInterference(t *testing.T) {
	// Two branches with opposite biases must not destroy each other.
	y, _ := NewYAGS(4096, 1024, 8)
	acc := trainAccuracy(y, 8000, func(i int, _ uint64) (uint64, bool) {
		if i%2 == 0 {
			return 100, true
		}
		return 200, false
	})
	if acc < 0.98 {
		t.Errorf("yags accuracy on opposite biases = %v", acc)
	}
}

func TestPAgConfigValidation(t *testing.T) {
	if _, err := NewPAg(100, 1024, 10); err == nil {
		t.Error("bad local size accepted")
	}
	if _, err := NewPAg(1024, 100, 10); err == nil {
		t.Error("bad pattern size accepted")
	}
	if _, err := NewPAg(1024, 1024, 30); err == nil {
		t.Error("overlong history accepted")
	}
}

func TestPAgLearnsLocalPatterns(t *testing.T) {
	p, _ := NewPAg(1024, 16384, 10)
	// Period-7 local pattern: global-history predictors see interference
	// from other branches; PAg keys on the branch's own history.
	rng := rand.New(rand.NewSource(3))
	acc := trainAccuracy(p, 30000, func(i int, _ uint64) (uint64, bool) {
		if i%2 == 0 {
			// Noise branch with random outcomes.
			return 77, rng.Intn(2) == 0
		}
		return 55, (i/2)%7 != 6
	})
	// The noise branch is unpredictable (~50%); the patterned branch
	// should be near-perfect, giving ~75% overall.
	if acc < 0.7 {
		t.Errorf("pag accuracy = %v, want > 0.7", acc)
	}
	if p.SizeBytes() <= 0 || p.Name() == "" {
		t.Error("metadata broken")
	}
}

func TestPAgBeatsGShareOnNoisyLocal(t *testing.T) {
	gen := func(rng *rand.Rand) func(i int, hist uint64) (uint64, bool) {
		return func(i int, _ uint64) (uint64, bool) {
			switch i % 4 {
			case 0, 1, 2: // three noise branches scramble global history
				return uint64(300 + i%4), rng.Intn(2) == 0
			default:
				return 55, (i/4)%3 != 2 // clean local period-3
			}
		}
	}
	p, _ := NewPAg(1024, 16384, 10)
	g, _ := NewGShare(16384, 14)
	accP := trainAccuracy(p, 40000, gen(rand.New(rand.NewSource(9))))
	accG := trainAccuracy(g, 40000, gen(rand.New(rand.NewSource(9))))
	if accP <= accG {
		t.Errorf("pag (%v) should beat gshare (%v) when global history is noise", accP, accG)
	}
}

package core

import "testing"

// The steady-state Insert/LeafSet microbenchmarks live in
// internal/benchkit (shared with cmd/benchjson, which records them into
// the BENCH_*.json perf trajectory). This file keeps the core-local
// benchmarks and allocation guards that need package-internal
// configurations.

// BenchmarkRollback measures misprediction recovery cost.
func BenchmarkRollback(b *testing.B) {
	d := MustNewDDT(Config{Entries: 256, PhysRegs: 296})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			if _, err := d.Insert(PhysReg(32+k), nil, false); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Rollback(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertDepCounts measures the Section 3 dependent-counter
// extension (the selective value prediction study's configuration).
func BenchmarkInsertDepCounts(b *testing.B) {
	d := MustNewDDT(Config{Entries: 80, PhysRegs: 256, TrackDepCounts: true})
	srcs := []PhysReg{3, 7}
	for i := 0; i < 40; i++ {
		if _, err := d.Insert(PhysReg(32+i), srcs, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Insert(PhysReg(32+(i%200)), srcs, false); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSteadyStateAllocFree pins the zero-allocation contract of the
// per-instruction DDT path for every configuration variant, including the
// ones benchkit's guard does not cover (dep counts, cut-at-loads,
// rollback).
func TestSteadyStateAllocFree(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 80, PhysRegs: 256},
		{Entries: 80, PhysRegs: 256, TrackDepCounts: true},
		{Entries: 80, PhysRegs: 256, CutAtLoads: true},
	} {
		d := MustNewDDT(cfg)
		srcs := []PhysReg{3, 7}
		for i := 0; i < 40; i++ {
			if _, err := d.Insert(PhysReg(32+i), srcs, false); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		avg := testing.AllocsPerRun(200, func() {
			if _, err := d.Insert(PhysReg(32+(i%200)), srcs, i%5 == 0); err != nil {
				t.Fatal(err)
			}
			if _, _, depth := d.LeafSet(srcs); depth < 0 {
				t.Fatal("negative depth")
			}
			if i%17 == 0 && d.Len() > 2 {
				if err := d.Rollback(1); err != nil {
					t.Fatal(err)
				}
			} else if _, err := d.Commit(); err != nil {
				t.Fatal(err)
			}
			i++
		})
		if avg != 0 {
			t.Errorf("%+v: steady state allocates %.2f/op, want 0", cfg, avg)
		}
	}
}

package core

import "testing"

// BenchmarkInsertCommit measures the steady-state cost of the DDT's
// per-instruction work at the paper's 256-entry, 296-register geometry.
func BenchmarkInsertCommit(b *testing.B) {
	d := MustNewDDT(Config{Entries: 256, PhysRegs: 296})
	srcs := []PhysReg{3, 7}
	// Fill half the window so commits interleave with inserts.
	for i := 0; i < 128; i++ {
		if _, err := d.Insert(PhysReg(32+i), srcs, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Insert(PhysReg(32+(i%200)), srcs, i%5 == 0); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeafSet measures the ARVI front-end read (chain + RSE extract +
// depth) on a window with a long dependence chain.
func BenchmarkLeafSet(b *testing.B) {
	d := MustNewDDT(Config{Entries: 256, PhysRegs: 296})
	prev := PhysReg(32)
	d.Insert(prev, nil, false)
	for i := 1; i < 200; i++ {
		tgt := PhysReg(32 + i)
		if _, err := d.Insert(tgt, []PhysReg{prev}, i%7 == 0); err != nil {
			b.Fatal(err)
		}
		prev = tgt
	}
	srcs := []PhysReg{prev}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, set, depth := d.LeafSet(srcs)
		if depth == 0 || set == nil {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkRollback measures misprediction recovery cost.
func BenchmarkRollback(b *testing.B) {
	d := MustNewDDT(Config{Entries: 256, PhysRegs: 296})
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			if _, err := d.Insert(PhysReg(32+k), nil, false); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Rollback(16); err != nil {
			b.Fatal(err)
		}
	}
}

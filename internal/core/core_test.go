package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
)

func newDDT(t *testing.T, cfg Config) *DDT {
	t.Helper()
	d, err := NewDDT(cfg)
	if err != nil {
		t.Fatalf("NewDDT: %v", err)
	}
	return d
}

func mustInsert(t *testing.T, d *DDT, tgt PhysReg, srcs []PhysReg, isLoad bool) int {
	t.Helper()
	e, err := d.Insert(tgt, srcs, isLoad)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	return e
}

func setOf(v bitvec.Vec) map[int]bool {
	m := map[int]bool{}
	v.ForEach(func(i int) { m[i] = true })
	return m
}

func wantSet(t *testing.T, got bitvec.Vec, want ...int) {
	t.Helper()
	g := setOf(got)
	if len(g) != len(want) {
		t.Fatalf("set = %v, want %v", keys(g), want)
	}
	for _, w := range want {
		if !g[w] {
			t.Fatalf("set = %v, want %v", keys(g), want)
		}
	}
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestPaperFigure1And3 replays the worked example from the paper's Figures 1
// and 3 (0-based entries, physical registers p1..p8):
//
//	e0: load p1, (p2)
//	e1: add  p4 <- p1 + p3
//	e2: or   p5 <- p4 | p1
//	e3: sub  p6 <- p5 - p4
//	e4: add  p7 <- p1 + 1
//	e5: add  p8 <- p4 + p7
//	    beq  p8, 0
func TestPaperFigure1And3(t *testing.T) {
	d := newDDT(t, Config{Entries: 9, PhysRegs: 10})
	p := func(n int) PhysReg { return PhysReg(n) }

	mustInsert(t, d, p(1), []PhysReg{p(2)}, true)        // e0 load
	mustInsert(t, d, p(4), []PhysReg{p(1), p(3)}, false) // e1
	mustInsert(t, d, p(5), []PhysReg{p(4), p(1)}, false) // e2
	mustInsert(t, d, p(6), []PhysReg{p(5), p(4)}, false) // e3
	mustInsert(t, d, p(7), []PhysReg{p(1)}, false)       // e4

	// Figure 1 top state.
	wantSet(t, d.Chain(p(1)), 0)
	wantSet(t, d.Chain(p(4)), 0, 1)
	wantSet(t, d.Chain(p(5)), 0, 1, 2)
	wantSet(t, d.Chain(p(6)), 0, 1, 2, 3)
	wantSet(t, d.Chain(p(7)), 0, 4)

	// Figure 1 bottom: inserting "add p8 <- p4 + p7" yields chain
	// {load, add, add, own} = entries 0, 1, 4, 5.
	e5 := mustInsert(t, d, p(8), []PhysReg{p(4), p(7)}, false)
	if e5 != 5 {
		t.Fatalf("entry = %d, want 5", e5)
	}
	wantSet(t, d.Chain(p(8)), 0, 1, 4, 5)

	// Figure 3: the branch reads p8; the leaf register set is {p1, p3}.
	// p4 and p7 are eliminated (produced within the chain); p1 survives
	// because loads are chain terminators; p3 survives because its
	// producer already committed.
	chain, set, depth := d.LeafSet([]PhysReg{p(8)})
	wantSet(t, chain, 0, 1, 4, 5)
	wantSet(t, set, 1, 3)
	// Furthest-back chain member is the load at entry 0; head is 6.
	if depth != 6 {
		t.Errorf("depth = %d, want 6", depth)
	}
}

func TestSelfDependence(t *testing.T) {
	d := newDDT(t, Config{Entries: 4, PhysRegs: 8})
	e := mustInsert(t, d, 3, nil, false)
	wantSet(t, d.Chain(3), e)
}

func TestCommitRemovesFromChains(t *testing.T) {
	d := newDDT(t, Config{Entries: 8, PhysRegs: 8})
	mustInsert(t, d, 1, nil, false)             // e0
	mustInsert(t, d, 2, []PhysReg{1}, false)    // e1
	mustInsert(t, d, 3, []PhysReg{2, 1}, false) // e2
	wantSet(t, d.Chain(3), 0, 1, 2)

	if e, err := d.Commit(); err != nil || e != 0 {
		t.Fatalf("Commit = %d, %v", e, err)
	}
	wantSet(t, d.Chain(3), 1, 2)
	d.Commit()
	wantSet(t, d.Chain(3), 2)
	d.Commit()
	wantSet(t, d.Chain(3)) // empty: its own producer committed
	if d.Len() != 0 {
		t.Errorf("len = %d, want 0", d.Len())
	}
	if _, err := d.Commit(); err == nil {
		t.Error("commit on empty DDT must fail")
	}
}

func TestFullAndWraparoundReuse(t *testing.T) {
	const n = 4
	d := newDDT(t, Config{Entries: n, PhysRegs: 16})
	// Fill the table with a chain 1 <- 2 <- 3 <- 4.
	for i := 0; i < n; i++ {
		var srcs []PhysReg
		if i > 0 {
			srcs = []PhysReg{PhysReg(i)}
		}
		mustInsert(t, d, PhysReg(i+1), srcs, false)
	}
	if !d.Full() {
		t.Fatal("table must be full")
	}
	if _, err := d.Insert(9, nil, false); err == nil {
		t.Fatal("insert into full table must fail")
	}
	// Retire the two oldest, then insert two more that reuse entries 0,1.
	d.Commit()
	d.Commit()
	e, _ := d.Insert(5, []PhysReg{4}, false) // reuses entry 0
	if e != 0 {
		t.Fatalf("reused entry = %d, want 0", e)
	}
	// p4's row had bit 0 (stale from committed p1's chain). The chain of
	// p5 must not contain the *old* instruction: it contains entry 0 only
	// as p5's own new producer plus live parts of p4's chain (2, 3).
	wantSet(t, d.Chain(5), 0, 2, 3)
	// p2's row still references committed entries only; chain must hide
	// them. p2 itself committed, so its chain is empty.
	wantSet(t, d.Chain(2))
	// Crucially: the stale bit for old entry 1 must have been wiped from
	// p4's row once entry 1 is reused; otherwise p4's chain would alias
	// the new instruction.
	e2, _ := d.Insert(6, nil, false) // reuses entry 1
	if e2 != 1 {
		t.Fatalf("reused entry = %d, want 1", e2)
	}
	wantSet(t, d.Chain(4), 2, 3)
}

func TestRollback(t *testing.T) {
	d := newDDT(t, Config{Entries: 8, PhysRegs: 8})
	mustInsert(t, d, 1, nil, false)          // e0
	mustInsert(t, d, 2, []PhysReg{1}, false) // e1 branch shadow: these two squash
	mustInsert(t, d, 3, []PhysReg{2}, false) // e2
	if err := d.Rollback(2); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if d.Len() != 1 || d.Head() != 1 {
		t.Fatalf("len=%d head=%d after rollback", d.Len(), d.Head())
	}
	// Chains of live registers must not include squashed entries. (Rows of
	// squashed *targets* like p2/p3 are dead until their registers are
	// re-allocated by the renamer, so they are not read.)
	wantSet(t, d.Chain(1), 0)
	// Re-insert along the other path, reusing entry 1.
	e := mustInsert(t, d, 4, []PhysReg{1}, false)
	if e != 1 {
		t.Fatalf("entry after rollback = %d, want 1", e)
	}
	wantSet(t, d.Chain(4), 0, 1)
	if err := d.Rollback(5); err == nil {
		t.Error("rollback beyond in-flight count must fail")
	}
}

func TestLoadsTerminateRSEButNotDDT(t *testing.T) {
	d := newDDT(t, Config{Entries: 8, PhysRegs: 16})
	// addr producer -> load -> consumer -> branch
	mustInsert(t, d, 1, nil, false)          // e0: addr = ...
	mustInsert(t, d, 2, []PhysReg{1}, true)  // e1: load p2, (p1)
	mustInsert(t, d, 3, []PhysReg{2}, false) // e2: p3 = f(p2)
	// Literal circuit semantics: the DDT chain flows through the load to
	// the address producer.
	wantSet(t, d.Chain(3), 0, 1, 2)
	// The RSE set contains the load's target (terminator, never marked T)
	// and the address producer's leaf... the address producer e0 has no
	// sources, so only its own target p1 is marked T, removing nothing.
	_, set, _ := d.LeafSet([]PhysReg{3})
	wantSet(t, set, 2) // p2 is a leaf; p1 is killed by e0's T mark
}

func TestCutAtLoadsAblation(t *testing.T) {
	d := newDDT(t, Config{Entries: 8, PhysRegs: 16, CutAtLoads: true})
	mustInsert(t, d, 1, nil, false)          // e0
	mustInsert(t, d, 2, []PhysReg{1}, true)  // e1: load
	mustInsert(t, d, 3, []PhysReg{2}, false) // e2
	// The load's row holds only its own bit: chains stop at loads.
	wantSet(t, d.Chain(2), 1)
	wantSet(t, d.Chain(3), 1, 2)
	_, set, _ := d.LeafSet([]PhysReg{3})
	wantSet(t, set, 2)
}

func TestExtractSetBranchOwnSources(t *testing.T) {
	d := newDDT(t, Config{Entries: 8, PhysRegs: 16})
	// Branch whose source has a committed producer: empty chain, the set
	// is just the branch's own source registers.
	chain, set, depth := d.LeafSet([]PhysReg{5, 7})
	if chain.Any() || depth != 0 {
		t.Errorf("chain=%v depth=%d, want empty/0", setOf(chain), depth)
	}
	wantSet(t, set, 5, 7)
}

func TestDepthWraparound(t *testing.T) {
	d := newDDT(t, Config{Entries: 4, PhysRegs: 8})
	mustInsert(t, d, 1, nil, false)          // e0
	mustInsert(t, d, 2, nil, false)          // e1
	mustInsert(t, d, 3, nil, false)          // e2
	d.Commit()                               // retire e0
	d.Commit()                               // retire e1
	mustInsert(t, d, 4, []PhysReg{3}, false) // e3
	mustInsert(t, d, 5, []PhysReg{4}, false) // e0 (wrapped)
	// head is now 1. Chain of p5 = {2, 3, 0}. Ages: e2 -> (1-2+4)=3,
	// e3 -> 2, e0 -> 1. Depth = 3, despite e0 having wrapped past head.
	chain := d.Chain(5)
	wantSet(t, chain, 0, 2, 3)
	if got := d.Depth(chain); got != 3 {
		t.Errorf("depth = %d, want 3", got)
	}
}

func TestDepCounts(t *testing.T) {
	d := newDDT(t, Config{Entries: 8, PhysRegs: 8, TrackDepCounts: true})
	e0 := mustInsert(t, d, 1, nil, false)
	e1 := mustInsert(t, d, 2, []PhysReg{1}, false)
	mustInsert(t, d, 3, []PhysReg{2}, false)
	mustInsert(t, d, 4, []PhysReg{1}, false)
	// e0 is in the chains of e1, e2 (via p2) and e3: count 3.
	if got := d.DepCount(e0); got != 3 {
		t.Errorf("DepCount(e0) = %d, want 3", got)
	}
	if got := d.DepCount(e1); got != 1 {
		t.Errorf("DepCount(e1) = %d, want 1", got)
	}
}

func TestDepCountPanicsWhenDisabled(t *testing.T) {
	d := newDDT(t, Config{Entries: 4, PhysRegs: 4})
	defer func() {
		if recover() == nil {
			t.Error("DepCount without TrackDepCounts must panic")
		}
	}()
	d.DepCount(0)
}

func TestOwnerAndFlags(t *testing.T) {
	d := newDDT(t, Config{Entries: 4, PhysRegs: 8})
	e := mustInsert(t, d, 6, nil, true)
	if d.Owner(e) != 6 || !d.EntryIsLoad(e) || !d.InFlight(e) {
		t.Error("owner/load/inflight bookkeeping wrong")
	}
	b := mustInsert(t, d, NoPReg, []PhysReg{6}, false)
	if d.Owner(b) != NoPReg || d.EntryIsLoad(b) {
		t.Error("branch entry bookkeeping wrong")
	}
	d.Commit()
	if d.InFlight(e) || d.Owner(e) != NoPReg {
		t.Error("commit must clear owner/valid")
	}
}

func TestBitsAndConfig(t *testing.T) {
	// The paper's Alpha 21264 sizing: 80 entries x 72 physical registers
	// = 5760 matrix bits (730 bytes) + 80 valid bits.
	d := newDDT(t, Config{Entries: 80, PhysRegs: 72})
	if got := d.Bits(); got != 5760+80 {
		t.Errorf("Bits = %d, want 5840", got)
	}
	if d.Config().Entries != 80 {
		t.Error("config not preserved")
	}
	if _, err := NewDDT(Config{Entries: 0, PhysRegs: 4}); err == nil {
		t.Error("zero-entry config accepted")
	}
}

// refModel is an executable specification of the DDT used by the random
// property test: chains are kept as explicit sets with the same
// insert/commit semantics.
type refModel struct {
	chains   map[PhysReg]map[int]bool
	inflight map[int]bool
}

func newRefModel() *refModel {
	return &refModel{chains: map[PhysReg]map[int]bool{}, inflight: map[int]bool{}}
}

func (r *refModel) insert(e int, tgt PhysReg, srcs []PhysReg) {
	// Column clear on reuse: stale references to a previous occupant of
	// entry e must not alias the new instruction.
	for _, c := range r.chains {
		delete(c, e)
	}
	r.inflight[e] = true
	if tgt == NoPReg {
		return
	}
	nc := map[int]bool{e: true}
	for _, s := range srcs {
		for x := range r.chains[s] {
			if r.inflight[x] {
				nc[x] = true
			}
		}
	}
	r.chains[tgt] = nc
}

func (r *refModel) commit(e int) { delete(r.inflight, e) }

func (r *refModel) chain(p PhysReg) map[int]bool {
	out := map[int]bool{}
	for x := range r.chains[p] {
		if r.inflight[x] {
			out[x] = true
		}
	}
	return out
}

// TestRandomAgainstReference drives the DDT with a renamed random
// instruction stream and checks every chain read against the reference
// model, including entry reuse after wraparound.
func TestRandomAgainstReference(t *testing.T) {
	const (
		entries  = 16
		physRegs = 48
		logical  = 8
		steps    = 20000
	)
	rng := rand.New(rand.NewSource(42))
	d := newDDT(t, Config{Entries: entries, PhysRegs: physRegs})
	ref := newRefModel()

	// Miniature renamer.
	var mapTable [logical]PhysReg
	freeList := []PhysReg{}
	for p := logical; p < physRegs; p++ {
		freeList = append(freeList, PhysReg(p))
	}
	for l := 0; l < logical; l++ {
		mapTable[l] = PhysReg(l)
	}
	type inflight struct{ oldMapping PhysReg }
	var window []inflight

	for i := 0; i < steps; i++ {
		if d.Len() > 0 && (d.Full() || rng.Intn(3) == 0) {
			e, err := d.Commit()
			if err != nil {
				t.Fatal(err)
			}
			ref.commit(e)
			old := window[0].oldMapping
			window = window[1:]
			if old != NoPReg {
				freeList = append(freeList, old)
			}
			continue
		}
		nsrc := rng.Intn(3)
		var srcs []PhysReg
		for k := 0; k < nsrc; k++ {
			srcs = append(srcs, mapTable[rng.Intn(logical)])
		}
		isLoad := rng.Intn(5) == 0
		tgt := NoPReg
		old := NoPReg
		if rng.Intn(10) != 0 { // most instructions have a destination
			l := rng.Intn(logical)
			tgt = freeList[0]
			freeList = freeList[1:]
			old = mapTable[l]
			mapTable[l] = tgt
		}
		e, err := d.Insert(tgt, srcs, isLoad)
		if err != nil {
			t.Fatal(err)
		}
		ref.insert(e, tgt, srcs)
		window = append(window, inflight{oldMapping: old})

		// Verify the chain of every current mapping.
		for l := 0; l < logical; l++ {
			p := mapTable[l]
			got := setOf(d.Chain(p))
			want := ref.chain(p)
			if len(got) != len(want) {
				t.Fatalf("step %d: chain(p%d) = %v, want %v", i, p, keys(got), keys(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("step %d: chain(p%d) = %v, want %v", i, p, keys(got), keys(want))
				}
			}
		}
	}
}

func TestChainInto(t *testing.T) {
	d := newDDT(t, Config{Entries: 8, PhysRegs: 16})
	mustInsert(t, d, 1, nil, false)
	mustInsert(t, d, 2, []PhysReg{1}, false)
	mustInsert(t, d, 3, []PhysReg{2}, false)
	dst := bitvec.New(8)
	d.ChainInto(dst, []PhysReg{3})
	if !dst.Equal(d.Chain(3)) {
		t.Errorf("ChainInto = %v, Chain = %v", setOf(dst), setOf(d.Chain(3)))
	}
	// The buffer is caller-owned: a second read overwrites it completely.
	d.ChainInto(dst, []PhysReg{1})
	wantSet(t, dst, 0)
}

func TestReset(t *testing.T) {
	d := newDDT(t, Config{Entries: 8, PhysRegs: 16, TrackDepCounts: true})
	mustInsert(t, d, 1, nil, false)
	mustInsert(t, d, 2, []PhysReg{1}, true)
	d.Commit()
	d.Reset()
	if d.Len() != 0 || d.Head() != 0 || d.Tail() != 0 {
		t.Fatalf("len=%d head=%d tail=%d after reset", d.Len(), d.Head(), d.Tail())
	}
	// Dirty rows from the previous run must be unreadable (stamp masking).
	wantSet(t, d.Chain(1))
	wantSet(t, d.Chain(2))
	e := mustInsert(t, d, 2, []PhysReg{1}, false)
	if e != 0 {
		t.Fatalf("entry after reset = %d, want 0", e)
	}
	wantSet(t, d.Chain(2), 0)
	if d.DepCount(0) != 0 {
		t.Errorf("DepCount after reset = %d", d.DepCount(0))
	}
}

// fuzzRef extends refModel into a full executable specification: chains,
// RSE marks, dependent counters, cut-at-loads semantics and rollback. It is
// the oracle that pins the epoch/stamp-based lazy column invalidation to
// the paper's eager-clear semantics.
type fuzzRef struct {
	cut      bool
	chains   map[PhysReg]map[int]bool
	inflight map[int]bool
	src, tgt map[int][]PhysReg // live RSE marks per entry ([] for loads)
	depCount map[int]int
}

func newFuzzRef(cut bool) *fuzzRef {
	return &fuzzRef{
		cut:      cut,
		chains:   map[PhysReg]map[int]bool{},
		inflight: map[int]bool{},
		src:      map[int][]PhysReg{},
		tgt:      map[int][]PhysReg{},
		depCount: map[int]int{},
	}
}

func (r *fuzzRef) chain(p PhysReg) map[int]bool {
	out := map[int]bool{}
	for x := range r.chains[p] {
		if r.inflight[x] {
			out[x] = true
		}
	}
	return out
}

func (r *fuzzRef) gather(srcs []PhysReg) map[int]bool {
	out := map[int]bool{}
	for _, s := range srcs {
		for x := range r.chain(s) {
			out[x] = true
		}
	}
	return out
}

func (r *fuzzRef) insert(e int, tgt PhysReg, srcs []PhysReg, isLoad bool) {
	for _, c := range r.chains {
		delete(c, e) // column clear on reuse
	}
	r.inflight[e] = true
	r.depCount[e] = 0
	if isLoad {
		r.src[e], r.tgt[e] = nil, nil
	} else {
		r.src[e] = append([]PhysReg(nil), srcs...)
		if tgt != NoPReg {
			r.tgt[e] = []PhysReg{tgt}
		} else {
			r.tgt[e] = nil
		}
	}
	if tgt == NoPReg {
		return
	}
	if isLoad && r.cut {
		r.chains[tgt] = map[int]bool{e: true}
		return
	}
	nc := r.gather(srcs)
	for x := range nc {
		r.depCount[x]++
	}
	nc[e] = true
	r.chains[tgt] = nc
}

func (r *fuzzRef) commit(e int)   { delete(r.inflight, e); r.depCount[e] = 0 }
func (r *fuzzRef) rollback(e int) { delete(r.inflight, e); r.depCount[e] = 0 }

// leafSet computes the RSE read over a chain: S & ^T plus the branch's own
// sources.
func (r *fuzzRef) leafSet(chain map[int]bool, branchSrcs []PhysReg) map[PhysReg]bool {
	s := map[PhysReg]bool{}
	t := map[PhysReg]bool{}
	for e := range chain {
		for _, x := range r.src[e] {
			s[x] = true
		}
		for _, x := range r.tgt[e] {
			t[x] = true
		}
	}
	for _, x := range branchSrcs {
		s[x] = true
	}
	for x := range t {
		delete(s, x)
	}
	return s
}

// TestRandomizedProgramFuzz drives the DDT with a renamed random program —
// inserts, commits, misprediction rollbacks with rename-map restore, loads,
// several full wraparounds past Entries — across the config matrix
// (TrackDepCounts × CutAtLoads), checking every chain, the dependent
// counters, the depth key, the full LeafSet read and the incremental RSE
// aggregate invariants against the executable reference model after every
// mutation, then Resets the table and runs a second program on the pooled
// instance (the engine-pool reuse path). This is the safety net for the
// lazy-invalidation and incremental-aggregate rewrites: any stale-bit
// aliasing the stamp masking misses, and any counter drift the delta
// updates accumulate, shows up here.
func TestRandomizedProgramFuzz(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 16, PhysRegs: 48},
		{Entries: 16, PhysRegs: 48, TrackDepCounts: true},
		{Entries: 16, PhysRegs: 48, CutAtLoads: true},
		{Entries: 16, PhysRegs: 48, TrackDepCounts: true, CutAtLoads: true},
		{Entries: 64, PhysRegs: 100, TrackDepCounts: true},
	} {
		cfg := cfg
		name := fmt.Sprintf("e%d_dep%v_cut%v", cfg.Entries, cfg.TrackDepCounts, cfg.CutAtLoads)
		t.Run(name, func(t *testing.T) {
			const logical = 8
			rng := rand.New(rand.NewSource(7))
			d := newDDT(t, cfg)
			runProgram(t, d, rng, cfg, logical, 20000)
			// Pooled-engine path: Reset must leave no reachable stale
			// state — matrix, summaries, marks or aggregates.
			d.Reset()
			runProgram(t, d, rng, cfg, logical, 10000)
		})
	}
}

// runProgram drives one random renamed program against d, checking the
// table against the reference model after every mutation.
func runProgram(t *testing.T, d *DDT, rng *rand.Rand, cfg Config, logical, steps int) {
	t.Helper()
	ref := newFuzzRef(cfg.CutAtLoads)

	// Miniature renamer with rollback checkpoints.
	mapTable := make([]PhysReg, logical)
	var freeList []PhysReg
	for p := logical; p < cfg.PhysRegs; p++ {
		freeList = append(freeList, PhysReg(p))
	}
	for l := 0; l < logical; l++ {
		mapTable[l] = PhysReg(l)
	}
	type slot struct {
		entry      int
		logicalDst int // -1 if none
		newMapping PhysReg
		oldMapping PhysReg
	}
	var window []slot
	inserts := 0

	for i := 0; i < steps; i++ {
		switch op := rng.Intn(10); {
		case d.Len() > 0 && (d.Full() || op < 3):
			// Commit the oldest.
			e, err := d.Commit()
			if err != nil {
				t.Fatal(err)
			}
			ref.commit(e)
			old := window[0].oldMapping
			window = window[1:]
			if old != NoPReg {
				freeList = append(freeList, old)
			}
		case d.Len() > 1 && op < 4:
			// Misprediction rollback of 1..Len-1 youngest, with
			// rename checkpoint restore (youngest first).
			n := 1 + rng.Intn(d.Len()-1)
			if err := d.Rollback(n); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < n; k++ {
				s := window[len(window)-1]
				window = window[:len(window)-1]
				ref.rollback(s.entry)
				if s.logicalDst >= 0 {
					mapTable[s.logicalDst] = s.oldMapping
					freeList = append([]PhysReg{s.newMapping}, freeList...)
				}
			}
		default:
			nsrc := rng.Intn(3)
			var srcs []PhysReg
			for k := 0; k < nsrc; k++ {
				srcs = append(srcs, mapTable[rng.Intn(logical)])
			}
			isLoad := rng.Intn(5) == 0
			tgt, old := NoPReg, NoPReg
			ldst := -1
			if rng.Intn(10) != 0 {
				ldst = rng.Intn(logical)
				tgt = freeList[0]
				freeList = freeList[1:]
				old = mapTable[ldst]
				mapTable[ldst] = tgt
			}
			e, err := d.Insert(tgt, srcs, isLoad)
			if err != nil {
				t.Fatal(err)
			}
			inserts++
			ref.insert(e, tgt, srcs, isLoad)
			window = append(window, slot{entry: e, logicalDst: ldst, newMapping: tgt, oldMapping: old})
		}

		// Verify every live mapping's chain, plus depth/leaf reads.
		for l := 0; l < logical; l++ {
			p := mapTable[l]
			chain := d.Chain(p)
			got := setOf(chain)
			want := ref.chain(p)
			if len(got) != len(want) {
				t.Fatalf("step %d: chain(p%d) = %v, want %v", i, p, keys(got), keys(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("step %d: chain(p%d) = %v, want %v", i, p, keys(got), keys(want))
				}
			}
			// Depth must equal the max circular age over members.
			wantDepth := 0
			for e := range want {
				if a := d.Age(e); a > wantDepth {
					wantDepth = a
				}
			}
			if got := d.Depth(chain); got != wantDepth {
				t.Fatalf("step %d: depth(p%d) = %d, want %d", i, p, got, wantDepth)
			}
		}

		if cfg.TrackDepCounts {
			for _, s := range window {
				if got, want := d.DepCount(s.entry), ref.depCount[s.entry]; got != want {
					t.Fatalf("step %d: depCount(e%d) = %d, want %d", i, s.entry, got, want)
				}
			}
		}

		// Full ARVI front-end read on a random branch after every
		// mutation: the incremental leaf set and depth key against
		// the from-scratch reference recompute.
		branchSrcs := []PhysReg{mapTable[rng.Intn(logical)], mapTable[rng.Intn(logical)]}
		chain, set, depth := d.LeafSet(branchSrcs)
		wantLeaves := ref.leafSet(setOf(chain), branchSrcs)
		gotLeaves := setOf(set)
		if len(gotLeaves) != len(wantLeaves) {
			t.Fatalf("step %d: leafSet = %v, want %v", i, keys(gotLeaves), wantLeaves)
		}
		for r := range wantLeaves {
			if !gotLeaves[int(r)] {
				t.Fatalf("step %d: leafSet = %v, want %v", i, keys(gotLeaves), wantLeaves)
			}
		}
		wantDepth := 0
		for e := range setOf(chain) {
			if a := d.Age(e); a > wantDepth {
				wantDepth = a
			}
		}
		if depth != wantDepth {
			t.Fatalf("step %d: LeafSet depth = %d, want %d", i, depth, wantDepth)
		}
		// The running aggregate counters must match a from-scratch
		// recompute over the tracked chain and sparse marks.
		if err := d.VerifyRSEAggregates(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if inserts < 4*cfg.Entries {
		t.Fatalf("fuzz wrapped the table only %d/%d inserts", inserts, 4*cfg.Entries)
	}
}

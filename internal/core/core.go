// Package core implements the paper's primary contribution: the Data
// Dependence Table (DDT) of Section 2 and the Register Set Extractor (RSE)
// of Section 4.2.
//
// The DDT is a RAM with one row per physical register and one column per
// in-flight instruction (ROB entry). Bit (r, e) means "the current value of
// physical register r is data dependent on the in-flight instruction in
// entry e". On insertion of an instruction with target register t and
// sources s1, s2 the hardware computes
//
//	DDT[t] = (DDT[s1] | DDT[s2]) & ValidVector | ownBit
//
// Entries are allocated in circular FIFO order with head/tail pointers, like
// the ROB. Commit clears the instruction's valid bit, which removes it from
// every chain on subsequent reads; misprediction rollback rewinds the head
// pointer. Before an entry is reused its column is cleared in every row.
//
// The RSE is a parallel matrix holding a 2-bit Source/Target code per
// (register, entry) cell. Loads leave their cells unset — they terminate
// dependence chains for ARVI. Reading the RSE with a chain bit vector as the
// column enable yields the branch's leaf register set: registers used as a
// source by some enabled instruction and produced by none.
package core

import (
	"fmt"

	"repro/internal/bitvec"
)

// PhysReg names a physical register (a DDT row).
type PhysReg uint16

// NoPReg marks the absence of a target register (branches, stores, NOPs).
const NoPReg = PhysReg(0xffff)

// Config sizes the DDT and selects optional behaviours.
type Config struct {
	// Entries is the number of instruction columns; it must equal the
	// processor's in-flight instruction window (ROB size).
	Entries int
	// PhysRegs is the number of physical registers (rows).
	PhysRegs int
	// CutAtLoads, when set, stores only the load's own bit in its target
	// row instead of also inheriting the address-computation chain. This
	// is the ablation discussed in DESIGN.md: the paper's circuit ORs the
	// address chain into the row and only stops *marking* at loads.
	CutAtLoads bool
	// TrackDepCounts enables the Section 3 extension: a per-entry counter
	// of how many subsequently inserted instructions depend on the entry,
	// usable for issue prioritisation and selective value prediction.
	TrackDepCounts bool
}

func (c Config) validate() error {
	if c.Entries <= 0 || c.PhysRegs <= 0 {
		return fmt.Errorf("core: non-positive DDT dimensions %+v", c)
	}
	return nil
}

// DDT is the Data Dependence Table together with its companion RSE planes.
type DDT struct {
	cfg   Config
	words int // words per row

	rows  []uint64   // PhysRegs rows × words, flat
	valid bitvec.Vec // over entries

	// RSE mark planes, transposed for software efficiency: per entry, the
	// set of registers it reads (srcMarks) and writes (tgtMarks). The
	// hardware stores the same information as 2-bit cells per
	// (register, entry); the transposition is an exact representation
	// change, verified against the paper's worked example.
	srcMarks []uint64 // Entries × regWords
	tgtMarks []uint64
	regWords int

	owner  []PhysReg // entry -> target register (NoPReg if none)
	isLoad bitvec.Vec

	head, tail, count int

	depCount []int32 // optional Section 3 extension

	// scratch buffers reused across calls
	chainBuf bitvec.Vec
	setBuf   bitvec.Vec
	tmpBuf   bitvec.Vec
}

// NewDDT allocates a DDT.
func NewDDT(cfg Config) (*DDT, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &DDT{
		cfg:      cfg,
		words:    bitvec.WordsFor(cfg.Entries),
		valid:    bitvec.New(cfg.Entries),
		owner:    make([]PhysReg, cfg.Entries),
		isLoad:   bitvec.New(cfg.Entries),
		regWords: bitvec.WordsFor(cfg.PhysRegs),
	}
	d.rows = make([]uint64, cfg.PhysRegs*d.words)
	d.srcMarks = make([]uint64, cfg.Entries*d.regWords)
	d.tgtMarks = make([]uint64, cfg.Entries*d.regWords)
	for i := range d.owner {
		d.owner[i] = NoPReg
	}
	if cfg.TrackDepCounts {
		d.depCount = make([]int32, cfg.Entries)
	}
	d.chainBuf = bitvec.New(cfg.Entries)
	d.setBuf = bitvec.New(cfg.PhysRegs)
	d.tmpBuf = bitvec.New(cfg.PhysRegs)
	return d, nil
}

// MustNewDDT is NewDDT but panics on configuration errors.
func MustNewDDT(cfg Config) *DDT {
	d, err := NewDDT(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the table's configuration.
func (d *DDT) Config() Config { return d.cfg }

// Len returns the number of in-flight (valid) entries.
func (d *DDT) Len() int { return d.count }

// Full reports whether every entry is occupied.
func (d *DDT) Full() bool { return d.count == d.cfg.Entries }

// Head returns the entry index that the next Insert will use.
func (d *DDT) Head() int { return d.head }

// Tail returns the oldest in-flight entry index.
func (d *DDT) Tail() int { return d.tail }

func (d *DDT) row(r PhysReg) bitvec.Vec {
	off := int(r) * d.words
	return bitvec.Vec(d.rows[off : off+d.words])
}

func (d *DDT) srcRow(e int) bitvec.Vec {
	off := e * d.regWords
	return bitvec.Vec(d.srcMarks[off : off+d.regWords])
}

func (d *DDT) tgtRow(e int) bitvec.Vec {
	off := e * d.regWords
	return bitvec.Vec(d.tgtMarks[off : off+d.regWords])
}

// clearColumn removes entry e from every register row (the paper's
// "all bits in the instruction entry must be cleared" before reuse).
func (d *DDT) clearColumn(e int) {
	wi := e >> 6
	mask := ^(uint64(1) << (uint(e) & 63))
	for off := wi; off < len(d.rows); off += d.words {
		d.rows[off] &= mask
	}
}

// Insert allocates the next instruction entry and updates the target row.
// tgt is NoPReg for instructions without a register destination (branches,
// stores); srcs are the source physical registers (duplicates allowed).
// isLoad marks chain terminators for the RSE. It returns the allocated
// entry index, or an error when the table is full.
func (d *DDT) Insert(tgt PhysReg, srcs []PhysReg, isLoad bool) (int, error) {
	if d.Full() {
		return 0, fmt.Errorf("core: DDT full (%d entries)", d.cfg.Entries)
	}
	e := d.head
	d.clearColumn(e)

	// RSE marks: loads intentionally leave both planes unset (chain
	// terminators, Figure 3's '*' cells).
	sm, tm := d.srcRow(e), d.tgtRow(e)
	sm.Reset()
	tm.Reset()
	if !isLoad {
		for _, s := range srcs {
			if s != NoPReg {
				sm.Set(int(s))
			}
		}
		if tgt != NoPReg {
			tm.Set(int(tgt))
		}
	}

	if tgt != NoPReg {
		row := d.row(tgt)
		if isLoad && d.cfg.CutAtLoads {
			row.Reset()
		} else {
			d.combineInto(row, srcs)
		}
		row.Set(e)
	}

	if d.depCount != nil {
		d.depCount[e] = 0
		if tgt != NoPReg && !(isLoad && d.cfg.CutAtLoads) {
			// Every chain entry gains one more trailing dependent.
			d.chainInto(d.chainBuf, srcs)
			d.chainBuf.ForEach(func(i int) { d.depCount[i]++ })
		}
	}

	d.valid.Set(e)
	d.owner[e] = tgt
	if isLoad {
		d.isLoad.Set(e)
	} else {
		d.isLoad.Clear(e)
	}
	d.head = d.next(e)
	d.count++
	return e, nil
}

func (d *DDT) next(e int) int {
	e++
	if e == d.cfg.Entries {
		return 0
	}
	return e
}

func (d *DDT) prev(e int) int {
	if e == 0 {
		return d.cfg.Entries - 1
	}
	return e - 1
}

// combineInto writes (OR of source rows) & valid into dst.
func (d *DDT) combineInto(dst bitvec.Vec, srcs []PhysReg) {
	dst.Reset()
	for _, s := range srcs {
		if s != NoPReg {
			dst.Or(d.row(s))
		}
	}
	dst.And(d.valid)
}

// chainInto writes the dependence chain (valid-masked OR of source rows)
// into dst, which must have Entries bits.
func (d *DDT) chainInto(dst bitvec.Vec, srcs []PhysReg) {
	d.combineInto(dst, srcs)
}

// Chain returns a copy of the dependence chain for the given source
// registers: the set of in-flight instruction entries the registers'
// current values transitively depend on.
func (d *DDT) Chain(srcs ...PhysReg) bitvec.Vec {
	out := bitvec.New(d.cfg.Entries)
	d.chainInto(out, srcs)
	return out
}

// Commit retires the oldest entry: its valid bit is cleared (removing it
// from all future chain reads) and the tail pointer advances. It returns
// the retired entry index.
func (d *DDT) Commit() (int, error) {
	if d.count == 0 {
		return 0, fmt.Errorf("core: commit on empty DDT")
	}
	e := d.tail
	d.valid.Clear(e)
	d.owner[e] = NoPReg
	if d.depCount != nil {
		d.depCount[e] = 0
	}
	d.tail = d.next(e)
	d.count--
	return e, nil
}

// Rollback squashes all entries younger than or equal to the given count of
// squashed instructions: it rewinds the head pointer by n entries, clearing
// their valid bits, exactly as the ROB pointer rewind the paper describes.
func (d *DDT) Rollback(n int) error {
	if n < 0 || n > d.count {
		return fmt.Errorf("core: rollback %d of %d in-flight", n, d.count)
	}
	for i := 0; i < n; i++ {
		d.head = d.prev(d.head)
		d.valid.Clear(d.head)
		d.owner[d.head] = NoPReg
		if d.depCount != nil {
			d.depCount[d.head] = 0
		}
	}
	d.count -= n
	return nil
}

// InFlight reports whether entry e currently holds a live instruction.
func (d *DDT) InFlight(e int) bool { return d.valid.Get(e) }

// Owner returns the target register of the instruction at entry e
// (NoPReg if the entry is free or targetless).
func (d *DDT) Owner(e int) PhysReg { return d.owner[e] }

// EntryIsLoad reports whether the live entry e holds a load.
func (d *DDT) EntryIsLoad(e int) bool { return d.valid.Get(e) && d.isLoad.Get(e) }

// DepCount returns the number of instructions inserted after entry e whose
// dependence chains include e (the Section 3 counter extension). The DDT
// must have been configured with TrackDepCounts.
func (d *DDT) DepCount(e int) int {
	if d.depCount == nil {
		panic("core: DepCount requires Config.TrackDepCounts")
	}
	return int(d.depCount[e])
}

// Age returns how many allocations ago entry e was inserted, relative to
// the current head (1 = the most recently inserted entry). This is the
// circular head-to-entry distance used for the chain depth key.
func (d *DDT) Age(e int) int {
	diff := d.head - e
	if diff <= 0 {
		diff += d.cfg.Entries
	}
	return diff
}

// Depth returns the paper's dependence-chain depth key for a chain bit
// vector: the maximum number of instructions spanned, i.e. the age of the
// furthest-back member of the chain, handling circular wrap exactly like
// the two-priority-encoder scheme in Section 4.5. An empty chain has
// depth 0.
func (d *DDT) Depth(chain bitvec.Vec) int {
	max := 0
	chain.ForEach(func(e int) {
		if a := d.Age(e); a > max {
			max = a
		}
	})
	return max
}

// ExtractSet implements the RSE read: given a chain bit vector (the column
// enables), plus the predicted instruction's own source marks, it returns
// the leaf register set as a bit vector over physical registers. A register
// is in the set iff some enabled instruction reads it and no enabled
// instruction writes it: included = S & ^T per Section 4.2.
//
// extraSrcs lets the caller include the branch's own source registers as S
// marks before the branch itself has been inserted (the branch's column is
// part of the enable in hardware).
func (d *DDT) ExtractSet(chain bitvec.Vec, extraSrcs []PhysReg) bitvec.Vec {
	s, tmp := d.setBuf, d.tmpBuf
	s.Reset()
	tmp.Reset()
	chain.ForEach(func(e int) {
		s.Or(d.srcRow(e))
		tmp.Or(d.tgtRow(e))
	})
	for _, r := range extraSrcs {
		if r != NoPReg {
			s.Set(int(r))
		}
	}
	s.AndNot(tmp)
	return s
}

// LeafSet is the full ARVI front-end read: the dependence chain for the
// branch's source registers, the extracted leaf register set, and the depth
// key, computed in one call. The returned vectors alias internal scratch
// buffers and are valid until the next DDT mutation or LeafSet call.
func (d *DDT) LeafSet(branchSrcs []PhysReg) (chain bitvec.Vec, set bitvec.Vec, depth int) {
	d.chainInto(d.chainBuf, branchSrcs)
	set = d.ExtractSet(d.chainBuf, branchSrcs)
	return d.chainBuf, set, d.Depth(d.chainBuf)
}

// Bits returns the total storage the configured DDT would need in hardware,
// in bits: the dependence matrix plus the valid vector (the paper's 730
// bytes for 80x72 corresponds to the matrix alone).
func (d *DDT) Bits() int { return d.cfg.Entries*d.cfg.PhysRegs + d.cfg.Entries }

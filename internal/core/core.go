// Package core implements the paper's primary contribution: the Data
// Dependence Table (DDT) of Section 2 and the Register Set Extractor (RSE)
// of Section 4.2.
//
// The DDT is a RAM with one row per physical register and one column per
// in-flight instruction (ROB entry). Bit (r, e) means "the current value of
// physical register r is data dependent on the in-flight instruction in
// entry e". On insertion of an instruction with target register t and
// sources s1, s2 the hardware computes
//
//	DDT[t] = (DDT[s1] | DDT[s2]) & ValidVector | ownBit
//
// Entries are allocated in circular FIFO order with head/tail pointers, like
// the ROB. Commit clears the instruction's valid bit, which removes it from
// every chain on subsequent reads; misprediction rollback rewinds the head
// pointer.
//
// # Lazy column invalidation
//
// The hardware clears an entry's column in every row before reuse (a wired
// columnwise clear, free in silicon). Software emulating that literally
// pays an O(PhysRegs) cache-hostile strided walk on every insert — it was
// 40% of total simulation time. This implementation instead stamps work
// with a monotone 64-bit allocation counter: every row records the count at
// which it was last written (rowStamp) and every entry records the count at
// which its current occupant arrived (allocSeq). A bit (r, e) is stale
// exactly when entry e was re-allocated after row r was written, i.e.
// allocSeq[e] > rowStamp[r]. Because entries are allocated in FIFO order,
// allocSeq is monotone over the live window, so the stale bits of a row
// form one circular range ending at the head — found with an O(log Entries)
// binary search and masked with an O(Entries/64) fused pass. Insert cost
// therefore tracks the live chain width, not the table height, and the
// 63-bit counter cannot wrap in any feasible run (2^63 inserts), so no
// amortized restamping sweep is ever needed.
//
// The RSE is a parallel matrix holding a 2-bit Source/Target code per
// (register, entry) cell. Loads leave their cells unset — they terminate
// dependence chains for ARVI. Reading the RSE with a chain bit vector as the
// column enable yields the branch's leaf register set: registers used as a
// source by some enabled instruction and produced by none. The hardware
// OR-reduces the enabled columns combinationally every cycle; software
// paying that reduction per branch made ExtractSet the dominant kernel, so
// this implementation maintains the reduction incrementally instead. Each
// entry stores its marks sparsely (at most maxEntryMarks distinct source
// registers plus one target — the ISA carries at most two sources), and the
// table keeps running aggregates over the most recently extracted chain:
// per-register multiset counters (srcCnt/tgtCnt) and their nonzero-bit
// projections (aggS/aggT). ExtractSet diffs the requested chain against the
// previous one word by word, retracting departed entries and adopting new
// ones, so a read costs O(chain delta) instead of O(chain × registers);
// insert evicts the reused slot from the tracked chain before overwriting
// its marks, and commit/rollback need no bookkeeping at all because chains
// are always masked by the valid vector before extraction. The invariant,
// delta rules and rollback argument are spelled out in
// DESIGN.md's incremental RSE maintenance section.
//
// Dependence rows additionally carry a 64-bit word summary (rowSum, bit w
// set when row word w may be nonzero) so chain gathering on wide machines
// skips dead words; the summary is exact at row-write time and a superset
// forever after, which is all the sparse bitvec kernels require.
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
)

// PhysReg names a physical register (a DDT row).
type PhysReg uint16

// NoPReg marks the absence of a target register (branches, stores, NOPs).
const NoPReg = PhysReg(0xffff)

// Config sizes the DDT and selects optional behaviours.
type Config struct {
	// Entries is the number of instruction columns; it must equal the
	// processor's in-flight instruction window (ROB size).
	Entries int
	// PhysRegs is the number of physical registers (rows).
	PhysRegs int
	// CutAtLoads, when set, stores only the load's own bit in its target
	// row instead of also inheriting the address-computation chain. This
	// is the ablation discussed in DESIGN.md: the paper's circuit ORs the
	// address chain into the row and only stops *marking* at loads.
	CutAtLoads bool
	// TrackDepCounts enables the Section 3 extension: a per-entry counter
	// of how many subsequently inserted instructions depend on the entry,
	// usable for issue prioritisation and selective value prediction.
	TrackDepCounts bool
}

// maxEntryMarks bounds the distinct source registers one entry can mark in
// the RSE. The ISA encodes at most two sources per instruction; four leaves
// slack for synthetic tests while keeping per-entry mark storage fixed.
const maxEntryMarks = 4

func (c Config) validate() error {
	if c.Entries <= 0 || c.PhysRegs <= 0 {
		return fmt.Errorf("core: non-positive DDT dimensions %+v", c)
	}
	if c.Entries > 4096 {
		// The per-row word summary is a single uint64: 64 words, 4096 bits.
		return fmt.Errorf("core: %d entries exceeds the 4096 row-summary limit", c.Entries)
	}
	return nil
}

// DDT is the Data Dependence Table together with its companion RSE planes.
type DDT struct {
	cfg   Config
	words int // words per row

	rows []uint64 // PhysRegs rows × words, flat
	//arvi:len entries
	valid bitvec.Vec

	// Lazy column invalidation (see the package comment).
	seq      int64   // monotone allocation counter; 0 = nothing inserted
	rowStamp []int64 // per register: seq when its row was last written
	//arvi:len entries
	allocSeq []int64 // per entry: seq when its current occupant arrived

	// rowSum[r] bit w is set when word w of register r's row may be
	// nonzero: exact when the row is written, a superset afterwards (bits
	// in the row can only go stale, never appear). Guides the sparse chain
	// gather so wide mostly-empty rows skip dead words.
	rowSum []uint64

	// RSE marks, stored sparsely per entry: up to maxEntryMarks distinct
	// source registers (markSrcs/markLen) and one target (markTgt; NoPReg
	// when targetless). Loads store no marks — they terminate chains. The
	// hardware stores the same information as 2-bit cells per (register,
	// entry); the representation change is exact.
	markSrcs []PhysReg // Entries × maxEntryMarks
	//arvi:len entries
	markLen []uint8 // per entry: live prefix of its markSrcs block
	//arvi:len entries
	markTgt []PhysReg // per entry

	// Incremental RSE aggregates over lastChain, the chain most recently
	// passed to ExtractSet: srcCnt[r]/tgtCnt[r] count the lastChain entries
	// marking register r, and aggS/aggT hold their nonzero bits, so the
	// leaf set is aggS &^ aggT with no per-entry reduction at read time.
	srcCnt, tgtCnt []uint16
	//arvi:len physregs
	aggS bitvec.Vec
	//arvi:len physregs
	aggT bitvec.Vec
	//arvi:len entries
	lastChain bitvec.Vec

	//arvi:len entries
	owner []PhysReg // entry -> target register (NoPReg if none)
	//arvi:len entries
	isLoad bitvec.Vec

	// head is the entry the next Insert will use; tail is the oldest
	// in-flight entry. Both are maintained in [0, Entries) by the ring
	// arithmetic of next/prev — count alone may reach Entries.
	//arvi:idx entries
	head int
	//arvi:idx entries
	tail  int
	count int

	depCount []int32 // optional Section 3 extension

	// scratch buffers reused across calls

	//arvi:scratch
	//arvi:len entries
	chainBuf bitvec.Vec
	//arvi:scratch
	//arvi:len entries
	keepBuf bitvec.Vec
	//arvi:scratch
	//arvi:len physregs
	setBuf bitvec.Vec
}

// NewDDT allocates a DDT.
func NewDDT(cfg Config) (*DDT, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &DDT{
		cfg:       cfg,
		words:     bitvec.WordsFor(cfg.Entries),
		valid:     bitvec.New(cfg.Entries),
		rowStamp:  make([]int64, cfg.PhysRegs),
		allocSeq:  make([]int64, cfg.Entries),
		rowSum:    make([]uint64, cfg.PhysRegs),
		markSrcs:  make([]PhysReg, cfg.Entries*maxEntryMarks),
		markLen:   make([]uint8, cfg.Entries),
		markTgt:   make([]PhysReg, cfg.Entries),
		srcCnt:    make([]uint16, cfg.PhysRegs),
		tgtCnt:    make([]uint16, cfg.PhysRegs),
		aggS:      bitvec.New(cfg.PhysRegs),
		aggT:      bitvec.New(cfg.PhysRegs),
		lastChain: bitvec.New(cfg.Entries),
		owner:     make([]PhysReg, cfg.Entries),
		isLoad:    bitvec.New(cfg.Entries),
	}
	d.rows = make([]uint64, cfg.PhysRegs*d.words)
	for i := range d.owner {
		d.owner[i] = NoPReg
	}
	for i := range d.markTgt {
		d.markTgt[i] = NoPReg
	}
	if cfg.TrackDepCounts {
		d.depCount = make([]int32, cfg.Entries)
	}
	d.chainBuf = bitvec.New(cfg.Entries)
	d.keepBuf = bitvec.New(cfg.Entries)
	d.setBuf = bitvec.New(cfg.PhysRegs)
	return d, nil
}

// MustNewDDT is NewDDT but panics on configuration errors.
func MustNewDDT(cfg Config) *DDT {
	d, err := NewDDT(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Reset returns the table to its freshly constructed state without
// re-allocating. The dependence matrix, its word summaries and the sparse
// marks are deliberately left dirty: a row is only ever read through its
// stamp (stamp zero masks every live entry, so stale matrix content and its
// summary are unreachable), and marks are only ever read through lastChain,
// which Reset empties — the reset cost is O(Entries + PhysRegs), not
// O(Entries × PhysRegs).
//
//arvi:hotpath
func (d *DDT) Reset() {
	d.seq = 0
	clear(d.rowStamp)
	clear(d.allocSeq)
	d.valid.Reset()
	d.isLoad.Reset()
	for i := range d.owner {
		d.owner[i] = NoPReg
	}
	d.head, d.tail, d.count = 0, 0, 0
	if d.depCount != nil {
		clear(d.depCount)
	}
	clear(d.srcCnt)
	clear(d.tgtCnt)
	d.aggS.Reset()
	d.aggT.Reset()
	d.lastChain.Reset()
}

// Config returns the table's configuration.
func (d *DDT) Config() Config { return d.cfg }

// Len returns the number of in-flight (valid) entries.
//
//arvi:hotpath
func (d *DDT) Len() int { return d.count }

// Full reports whether every entry is occupied.
//
//arvi:hotpath
func (d *DDT) Full() bool { return d.count == d.cfg.Entries }

// Head returns the entry index that the next Insert will use.
//
//arvi:hotpath
func (d *DDT) Head() int { return d.head }

// Tail returns the oldest in-flight entry index.
//
//arvi:hotpath
func (d *DDT) Tail() int { return d.tail }

// row returns the Entries-wide dependence row of register r, aliasing the
// flat matrix.
//
//arvi:hotpath
//arvi:len entries
//arvi:panicfree r is a live physical register below cfg.PhysRegs (rename contract) and rows holds PhysRegs*words words, so the window fits
func (d *DDT) row(r PhysReg) bitvec.Vec {
	off := int(r) * d.words
	return bitvec.Vec(d.rows[off : off+d.words])
}

// entryAt returns the entry index of the live instruction with the given
// age (1 = most recently inserted). Callers pass 1 <= age <= count, so the
// single wrap lands the result back in [0, Entries).
//
//arvi:hotpath
//arvi:idx entries
func (d *DDT) entryAt(age int) int {
	e := d.head - age
	if e < 0 {
		e += d.cfg.Entries
	}
	return e
}

// staleWidth returns how many of the youngest live entries were allocated
// after a row written at the given stamp — the width of the circular range
// below the head whose bits in that row are stale aliases and must be
// masked on read. allocSeq is monotone over the live window (FIFO
// allocation), so a binary search over ages suffices.
//
//arvi:hotpath
func (d *DDT) staleWidth(stamp int64) int {
	n := d.count
	if n == 0 || d.allocSeq[d.entryAt(1)] <= stamp {
		return 0 // row written at or after the youngest live allocation
	}
	if d.allocSeq[d.entryAt(n)] > stamp {
		return n // row predates every live allocation
	}
	// Invariant: allocSeq[entryAt(lo)] > stamp >= allocSeq[entryAt(hi)].
	lo, hi := 1, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if d.allocSeq[d.entryAt(mid)] > stamp {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// gatherChain writes (OR of valid source-row bits) & valid into dst and
// returns its exact word summary: the reset-then-accumulate order matches
// the hardware read, so dst may alias a source row (the aliased source then
// contributes nothing, exactly like the wired read-modify-write). Stale row
// bits — entries re-allocated since the row was written — are masked per
// source via staleWidth. Row reads are summary-guided: only words rowSum
// flags are touched, so wide mostly-empty rows cost their live words.
//
//arvi:hotpath
//arvi:panicfree srcs hold live physical registers below cfg.PhysRegs (rename contract), which sizes rowStamp and rowSum
func (d *DDT) gatherChain(dst bitvec.Vec, srcs []PhysReg) uint64 {
	dst.Reset()
	var sum uint64
	for _, s := range srcs {
		if s == NoPReg {
			continue
		}
		k := d.staleWidth(d.rowStamp[s])
		switch {
		case k == 0:
			//arvi:lencheck dst is Entries-wide by ChainInto's documented contract
			sum |= dst.OrSparse(d.row(s), d.rowSum[s])
		case k == d.count:
			// Every live entry is younger than the row: nothing genuine
			// can survive the valid mask, skip the row read entirely.
		default:
			keep := d.keepBuf
			keep.Fill()
			if start := d.head - k; start >= 0 {
				keep.ClearRange(start, d.head)
			} else {
				keep.ClearRange(start+d.cfg.Entries, d.cfg.Entries)
				keep.ClearRange(0, d.head)
			}
			//arvi:lencheck dst is Entries-wide by ChainInto's documented contract
			sum |= dst.OrAndSparse(d.row(s), keep, d.rowSum[s])
		}
	}
	//arvi:lencheck dst is Entries-wide by ChainInto's documented contract
	return dst.AndSparse(d.valid, sum)
}

// Insert allocates the next instruction entry and updates the target row.
// tgt is NoPReg for instructions without a register destination (branches,
// stores); srcs are the source physical registers (duplicates allowed, at
// most maxEntryMarks distinct for a non-load). isLoad marks chain
// terminators for the RSE. It returns the allocated entry index, or an
// error when the table is full.
//
//arvi:hotpath
func (d *DDT) Insert(tgt PhysReg, srcs []PhysReg, isLoad bool) (int, error) {
	if d.Full() {
		//arvi:cold callers check Full before inserting; this is the misuse path
		return 0, fmt.Errorf("core: DDT full (%d entries)", d.cfg.Entries)
	}
	if len(srcs) > maxEntryMarks && !isLoad && tooManyDistinct(srcs) {
		//arvi:cold the ISA carries at most two sources; this is the misuse path
		return 0, fmt.Errorf("core: more than %d distinct source registers", maxEntryMarks)
	}
	e := d.head
	d.seq++
	d.allocSeq[e] = d.seq

	// The slot being reused may still be counted in the tracked chain's
	// aggregates; retract it while its old marks are still readable.
	if d.lastChain.Get(e) {
		d.lastChain.Clear(e)
		d.retractEntry(e)
	}

	// RSE marks, stored sparsely and deduplicated so each live (entry,
	// register) pair counts once in the aggregates; loads intentionally
	// store none (chain terminators, Figure 3's '*' cells).
	n := 0
	if !isLoad {
		//arvi:panicfree e < Entries and markSrcs is Entries*maxEntryMarks long, so entry e's window fits
		ms := d.markSrcs[e*maxEntryMarks : e*maxEntryMarks+maxEntryMarks]
		for _, s := range srcs {
			if s == NoPReg {
				continue
			}
			dup := false
			for i := 0; i < n; i++ {
				//arvi:panicfree n counts writes into ms, so i < n stays below the window length
				if ms[i] == s {
					dup = true
					break
				}
			}
			if !dup {
				//arvi:panicfree the tooManyDistinct guard bounds the distinct-source count, so n < maxEntryMarks == len(ms) here
				ms[n] = s
				n++
			}
		}
	}
	d.markLen[e] = uint8(n)
	if !isLoad && tgt != NoPReg {
		d.markTgt[e] = tgt
	} else {
		d.markTgt[e] = NoPReg
	}

	if tgt != NoPReg {
		row := d.row(tgt)
		var sum uint64
		if isLoad && d.cfg.CutAtLoads {
			row.Reset()
		} else {
			sum = d.gatherChain(row, srcs)
		}
		row.Set(e)
		//arvi:panicfree tgt is a live physical register below cfg.PhysRegs (rename contract), which sizes rowSum
		d.rowSum[tgt] = sum | 1<<uint(e>>6)
		//arvi:panicfree same rename contract: tgt < cfg.PhysRegs == len(rowStamp)
		d.rowStamp[tgt] = d.seq
	}

	if d.depCount != nil {
		//arvi:panicfree depCount is Entries-long whenever construction allocated it
		d.depCount[e] = 0
		if tgt != NoPReg && !(isLoad && d.cfg.CutAtLoads) {
			// Every chain entry gains one more trailing dependent.
			d.gatherChain(d.chainBuf, srcs)
			for wi, w := range d.chainBuf {
				base := wi << 6
				for w != 0 {
					//arvi:panicfree chainBuf is Entries bits wide, so every set bit position is below Entries == len(depCount)
					d.depCount[base+bits.TrailingZeros64(w)]++
					w &= w - 1
				}
			}
		}
	}

	d.valid.Set(e)
	d.owner[e] = tgt
	if isLoad {
		d.isLoad.Set(e)
	} else {
		d.isLoad.Clear(e)
	}
	d.head = d.next(e)
	d.count++
	return e, nil
}

// tooManyDistinct reports whether srcs names more than maxEntryMarks
// distinct physical registers. Only reached when len(srcs) exceeds the
// bound, which the ISA's two-source limit makes a misuse path; still
// allocation-free since Insert's guard condition evaluates it inline.
//
//arvi:hotpath
func tooManyDistinct(srcs []PhysReg) bool {
	distinct := 0
	for i, s := range srcs {
		if s == NoPReg {
			continue
		}
		seen := false
		for _, p := range srcs[:i] {
			if p == s {
				seen = true
				break
			}
		}
		if !seen {
			distinct++
		}
	}
	return distinct > maxEntryMarks
}

// retractEntry removes entry e's marks from the aggregate counters; the
// caller clears its lastChain bit. Must run against the same mark contents
// adoptEntry counted — Insert therefore evicts a slot before rewriting it.
//
//arvi:hotpath
//arvi:panicfree e is a chain bit index below Entries (chains are Entries bits wide), so its mark window fits, and marks hold registers below cfg.PhysRegs
func (d *DDT) retractEntry(e int) {
	off := e * maxEntryMarks
	for i := 0; i < int(d.markLen[e]); i++ {
		s := d.markSrcs[off+i]
		d.srcCnt[s]--
		if d.srcCnt[s] == 0 {
			d.aggS.Clear(int(s))
		}
	}
	if t := d.markTgt[e]; t != NoPReg {
		d.tgtCnt[t]--
		if d.tgtCnt[t] == 0 {
			d.aggT.Clear(int(t))
		}
	}
}

// adoptEntry adds entry e's marks to the aggregate counters; the caller
// sets its lastChain bit.
//
//arvi:hotpath
//arvi:panicfree e is a chain bit index below Entries (chains are Entries bits wide), so its mark window fits, and marks hold registers below cfg.PhysRegs
func (d *DDT) adoptEntry(e int) {
	off := e * maxEntryMarks
	for i := 0; i < int(d.markLen[e]); i++ {
		s := d.markSrcs[off+i]
		d.srcCnt[s]++
		if d.srcCnt[s] == 1 {
			d.aggS.Set(int(s))
		}
	}
	if t := d.markTgt[e]; t != NoPReg {
		d.tgtCnt[t]++
		if d.tgtCnt[t] == 1 {
			d.aggT.Set(int(t))
		}
	}
}

//arvi:hotpath
//arvi:idx entries
func (d *DDT) next(e int) int {
	e++
	if e == d.cfg.Entries {
		return 0
	}
	return e
}

//arvi:hotpath
//arvi:idx entries
func (d *DDT) prev(e int) int {
	if e == 0 {
		return d.cfg.Entries - 1
	}
	return e - 1
}

// ChainInto writes the dependence chain for the given source registers —
// the set of in-flight instruction entries the registers' current values
// transitively depend on — into dst, which must be sized for
// Config().Entries bits. It is the allocation-free form of Chain for
// callers reading chains per instruction (the timing engine, the SMT
// study, ddtviz).
//
//arvi:hotpath
func (d *DDT) ChainInto(dst bitvec.Vec, srcs []PhysReg) {
	d.gatherChain(dst, srcs)
}

// Chain returns a copy of the dependence chain for the given source
// registers. It allocates; per-instruction readers should use ChainInto
// with a reused buffer.
func (d *DDT) Chain(srcs ...PhysReg) bitvec.Vec {
	out := bitvec.New(d.cfg.Entries)
	d.gatherChain(out, srcs)
	return out
}

// Commit retires the oldest entry: its valid bit is cleared (removing it
// from all future chain reads) and the tail pointer advances. It returns
// the retired entry index.
//
//arvi:hotpath
func (d *DDT) Commit() (int, error) {
	if d.count == 0 {
		//arvi:cold commit on an empty table is a caller bug, not a steady state
		return 0, fmt.Errorf("core: commit on empty DDT")
	}
	e := d.tail
	d.valid.Clear(e)
	d.owner[e] = NoPReg
	if d.depCount != nil {
		//arvi:panicfree depCount is Entries-long whenever construction allocated it, and e = d.tail is a ring index
		d.depCount[e] = 0
	}
	d.tail = d.next(e)
	d.count--
	return e, nil
}

// Rollback squashes all entries younger than or equal to the given count of
// squashed instructions: it rewinds the head pointer by n entries, clearing
// their valid bits, exactly as the ROB pointer rewind the paper describes.
//
//arvi:hotpath
func (d *DDT) Rollback(n int) error {
	if n < 0 || n > d.count {
		//arvi:cold out-of-range rollback is a caller bug, not a steady state
		return fmt.Errorf("core: rollback %d of %d in-flight", n, d.count)
	}
	for i := 0; i < n; i++ {
		d.head = d.prev(d.head)
		d.valid.Clear(d.head)
		d.owner[d.head] = NoPReg
		if d.depCount != nil {
			//arvi:panicfree depCount is Entries-long whenever construction allocated it, and d.head is a ring index
			d.depCount[d.head] = 0
		}
	}
	d.count -= n
	return nil
}

// InFlight reports whether entry e currently holds a live instruction.
//
//arvi:hotpath
func (d *DDT) InFlight(e int) bool { return d.valid.Get(e) }

// Owner returns the target register of the instruction at entry e
// (NoPReg if the entry is free or targetless).
//
//arvi:hotpath
//arvi:panicfree e is an entry index the caller got from Head, Tail, Commit or a chain bit, all below Entries by the ring invariant
func (d *DDT) Owner(e int) PhysReg { return d.owner[e] }

// EntryIsLoad reports whether the live entry e holds a load.
//
//arvi:hotpath
func (d *DDT) EntryIsLoad(e int) bool { return d.valid.Get(e) && d.isLoad.Get(e) }

// DepCount returns the number of instructions inserted after entry e whose
// dependence chains include e (the Section 3 counter extension). The DDT
// must have been configured with TrackDepCounts.
//
//arvi:hotpath
//arvi:panicfree e is an entry index below Entries by the ring invariant, and depCount is Entries-long once the nil guard passes
func (d *DDT) DepCount(e int) int {
	if d.depCount == nil {
		//arvi:cold misconfiguration trap, unreachable once construction succeeds
		panic("core: DepCount requires Config.TrackDepCounts")
	}
	return int(d.depCount[e])
}

// Age returns how many allocations ago entry e was inserted, relative to
// the current head (1 = the most recently inserted entry). This is the
// circular head-to-entry distance used for the chain depth key.
//
//arvi:hotpath
func (d *DDT) Age(e int) int {
	diff := d.head - e
	if diff <= 0 {
		diff += d.cfg.Entries
	}
	return diff
}

// Depth returns the paper's dependence-chain depth key for a chain bit
// vector: the maximum number of instructions spanned, i.e. the age of the
// furthest-back member of the chain. It is the software form of the
// Section 4.5 two-priority-encoder scheme: entries at or above the head
// wrapped past it and are older than every entry below it, so the
// furthest-back member is the lowest set bit >= head when one exists, else
// the lowest set bit overall. An empty chain has depth 0.
//
//arvi:hotpath
func (d *DDT) Depth(chain bitvec.Vec) int {
	if e := chain.FirstBitFrom(d.head); e >= 0 {
		return d.head - e + d.cfg.Entries
	}
	if e := chain.FirstBitFrom(0); e >= 0 {
		return d.head - e
	}
	return 0
}

// ExtractSet implements the RSE read: given a chain bit vector (the column
// enables, Config().Entries bits wide), plus the predicted instruction's
// own source marks, it returns the leaf register set as a bit vector over
// physical registers. A register is in the set iff some enabled instruction
// reads it and no enabled instruction writes it: included = S & ^T per
// Section 4.2.
//
// The read is incremental: the chain is diffed word by word against the
// previously extracted one, retracting departed entries from the running
// aggregates and adopting new ones, so the cost scales with the chain delta
// since the last read rather than with the chain or window size (see
// DESIGN.md's incremental RSE maintenance section).
//
// extraSrcs lets the caller include the branch's own source registers as S
// marks before the branch itself has been inserted (the branch's column is
// part of the enable in hardware). The returned vector aliases internal
// scratch and is valid until the next DDT mutation or extraction.
//
//arvi:hotpath
//arvi:panicfree chain and d.lastChain are both Config().Entries-bit vectors (documented contract), so chain's word indexes fit last, and extraSrcs hold registers below cfg.PhysRegs
func (d *DDT) ExtractSet(chain bitvec.Vec, extraSrcs []PhysReg) bitvec.Vec {
	last := d.lastChain
	for wi, cw := range chain {
		lw := last[wi]
		if cw == lw {
			continue
		}
		last[wi] = cw
		base := wi << 6
		for rm := lw &^ cw; rm != 0; rm &= rm - 1 {
			d.retractEntry(base + bits.TrailingZeros64(rm))
		}
		for ad := cw &^ lw; ad != 0; ad &= ad - 1 {
			d.adoptEntry(base + bits.TrailingZeros64(ad))
		}
	}
	set := d.setBuf
	set.CopyFrom(d.aggS)
	for _, r := range extraSrcs {
		if r != NoPReg {
			set.Set(int(r))
		}
	}
	set.AndNot(d.aggT)
	return set
}

// VerifyRSEAggregates recomputes the incremental aggregate state — the
// per-register mark counters and their nonzero projections — from scratch
// out of lastChain and the sparse marks, and checks the row summaries
// against the rows they guard. It is the differential oracle for the
// incremental ExtractSet path; test/debug use only, not a hot path.
func (d *DDT) VerifyRSEAggregates() error {
	srcCnt := make([]uint16, d.cfg.PhysRegs)
	tgtCnt := make([]uint16, d.cfg.PhysRegs)
	for wi, w := range d.lastChain {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			e := base + bits.TrailingZeros64(w)
			off := e * maxEntryMarks
			for i := 0; i < int(d.markLen[e]); i++ {
				srcCnt[d.markSrcs[off+i]]++
			}
			if t := d.markTgt[e]; t != NoPReg {
				tgtCnt[t]++
			}
		}
	}
	for r := 0; r < d.cfg.PhysRegs; r++ {
		if srcCnt[r] != d.srcCnt[r] {
			return fmt.Errorf("core: srcCnt[%d] = %d, recompute says %d", r, d.srcCnt[r], srcCnt[r])
		}
		if tgtCnt[r] != d.tgtCnt[r] {
			return fmt.Errorf("core: tgtCnt[%d] = %d, recompute says %d", r, d.tgtCnt[r], tgtCnt[r])
		}
		if d.aggS.Get(r) != (srcCnt[r] > 0) {
			return fmt.Errorf("core: aggS bit %d disagrees with count %d", r, srcCnt[r])
		}
		if d.aggT.Get(r) != (tgtCnt[r] > 0) {
			return fmt.Errorf("core: aggT bit %d disagrees with count %d", r, tgtCnt[r])
		}
		if d.rowStamp[r] > 0 {
			for wi, w := range d.row(PhysReg(r)) {
				if w != 0 && d.rowSum[r]&(1<<uint(wi)) == 0 {
					return fmt.Errorf("core: rowSum[%d] misses nonzero word %d", r, wi)
				}
			}
		}
	}
	return nil
}

// LeafSet is the full ARVI front-end read: the dependence chain for the
// branch's source registers, the extracted leaf register set, and the depth
// key, computed in one call. The returned vectors alias internal scratch
// buffers and are valid until the next DDT mutation or LeafSet call.
//
//arvi:hotpath
func (d *DDT) LeafSet(branchSrcs []PhysReg) (chain bitvec.Vec, set bitvec.Vec, depth int) {
	d.gatherChain(d.chainBuf, branchSrcs)
	set = d.ExtractSet(d.chainBuf, branchSrcs)
	return d.chainBuf, set, d.Depth(d.chainBuf)
}

// Bits returns the total storage the configured DDT would need in hardware,
// in bits: the dependence matrix plus the valid vector (the paper's 730
// bytes for 80x72 corresponds to the matrix alone).
func (d *DDT) Bits() int { return d.cfg.Entries*d.cfg.PhysRegs + d.cfg.Entries }

// Package storage is the filesystem seam under the simulation caches
// (internal/sim's result Cache and TraceStore). The persistence layers
// used to call the os package directly, which made two things
// impossible: injecting disk faults deterministically in tests, and
// degrading to memory-only operation when a real disk misbehaves.
//
// The package has three parts:
//
//   - FS, the five-operation filesystem interface the caches consume,
//     with OS as the obvious real implementation.
//   - FaultFS, a deterministic fault-injecting decorator (fail-Nth-op,
//     ENOSPC, torn write, bit-corrupt read) powering the chaos suites in
//     internal/sim and internal/server. Schedules are pure data, so a
//     failing chaos run reproduces from its seed.
//   - Breaker, the circuit breaker the caches use to stop hammering a
//     persistently failing disk: after a run of consecutive failures the
//     breaker opens and the cache serves memory-only, with backoff-timed
//     probe operations re-enabling disk once it recovers. See
//     DESIGN.md's failure domains section for the thresholds and the
//     probation rule.
package storage

import (
	"errors"
	"io/fs"
	"os"
)

// FS is the filesystem surface the persistence layers need. The contract
// matches the os package functions of the same names; implementations
// must be safe for concurrent use.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm os.FileMode) error
	Remove(name string) error
}

// OS is the real filesystem.
type OS struct{}

// ReadFile implements FS via os.ReadFile.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS via os.WriteFile.
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// Rename implements FS via os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// MkdirAll implements FS via os.MkdirAll.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Remove implements FS via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// IsNotExist reports whether err means the file does not exist. The
// caches use it to tell an ordinary miss from a disk *fault*: only the
// latter feeds the circuit breaker.
func IsNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}

package storage

import (
	"fmt"
	"os"
	"sync"
	"syscall"
)

// Op classifies filesystem operations for fault matching.
type Op uint8

// The operation classes a Fault can target, one per FS method.
const (
	OpRead Op = iota
	OpWrite
	OpRename
	OpMkdir
	OpRemove
	opCount
)

// String names the class for error messages.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRename:
		return "rename"
	case OpMkdir:
		return "mkdir"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// FaultMode selects how a matched operation misbehaves.
type FaultMode uint8

const (
	// FaultErr fails the operation with ErrInjected and no side effect.
	FaultErr FaultMode = iota
	// FaultENOSPC writes the first half of the data, then fails with an
	// ENOSPC-wrapped error — the classic disk-full mid-write shape. On
	// non-write operations it behaves like FaultErr.
	FaultENOSPC
	// FaultTorn writes only the first half of the data and reports
	// success: a torn write the caller cannot see until something reads
	// the file back. On non-write operations it behaves like FaultErr.
	FaultTorn
	// FaultBitFlip lets the read succeed but flips one bit of the
	// returned data — silent media corruption. On non-read operations it
	// behaves like FaultErr.
	FaultBitFlip
)

// String names the mode for error messages and test logs.
func (m FaultMode) String() string {
	switch m {
	case FaultErr:
		return "err"
	case FaultENOSPC:
		return "enospc"
	case FaultTorn:
		return "torn"
	case FaultBitFlip:
		return "bitflip"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ErrInjected is the root of every error a FaultFS fabricates; chaos
// suites use errors.Is against it to tell injected faults from real
// ones.
var ErrInjected = fmt.Errorf("storage: injected fault")

// Fault schedules one injection: the Nth (1-based) operation of class Op
// misbehaves per Mode. A schedule is plain data — two FaultFS instances
// built from equal schedules inject identically, which is what makes
// chaos runs reproducible from a seed.
type Fault struct {
	Op   Op
	N    int64
	Mode FaultMode
}

// FaultFS wraps an inner FS and injects the scheduled faults. It also
// supports persistently breaking whole operation classes (Break/Heal)
// to model a disk that stays bad until an operator intervenes — the
// scenario the circuit breaker exists for.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	counts   [opCount]int64
	broken   [opCount]bool
	faults   []Fault
	injected int64
}

// NewFaultFS builds a fault-injecting filesystem over inner with the
// given schedule.
func NewFaultFS(inner FS, faults ...Fault) *FaultFS {
	return &FaultFS{inner: inner, faults: faults}
}

// Break makes every future operation of the given classes fail with
// ErrInjected until Heal. With no arguments it breaks the mutating
// classes (write, rename, mkdir) — an unwritable disk that still reads.
func (f *FaultFS) Break(ops ...Op) {
	if len(ops) == 0 {
		ops = []Op{OpWrite, OpRename, OpMkdir}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, o := range ops {
		f.broken[o] = true
	}
}

// Heal clears every Break, restoring the inner filesystem.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.broken = [opCount]bool{}
}

// Injected reports how many faults actually fired.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Count reports how many operations of the class have been attempted.
func (f *FaultFS) Count(op Op) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// next advances the class counter and reports the matched fault mode, if
// any. The bool distinguishes "no fault" from a matched FaultErr.
func (f *FaultFS) next(op Op) (FaultMode, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	if f.broken[op] {
		f.injected++
		return FaultErr, true, fmt.Errorf("%w: %s while class is broken", ErrInjected, op)
	}
	for _, ft := range f.faults {
		if ft.Op == op && ft.N == f.counts[op] {
			f.injected++
			return ft.Mode, true, fmt.Errorf("%w: %s #%d (%s)", ErrInjected, op, ft.N, ft.Mode)
		}
	}
	return 0, false, nil
}

// ReadFile implements FS with read faults.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	mode, hit, ierr := f.next(OpRead)
	if hit && mode != FaultBitFlip {
		return nil, ierr
	}
	b, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if hit && len(b) > 0 {
		// Deterministic single-bit corruption in the middle of the file.
		c := append([]byte(nil), b...)
		c[len(c)/2] ^= 0x10
		return c, nil
	}
	return b, nil
}

// WriteFile implements FS with write faults.
func (f *FaultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	mode, hit, ierr := f.next(OpWrite)
	if !hit {
		return f.inner.WriteFile(name, data, perm)
	}
	switch mode {
	case FaultENOSPC:
		_ = f.inner.WriteFile(name, data[:len(data)/2], perm)
		return fmt.Errorf("%w: %w", ierr, syscall.ENOSPC)
	case FaultTorn:
		// The torn half lands and the caller is told all is well.
		return f.inner.WriteFile(name, data[:len(data)/2], perm)
	default:
		return ierr
	}
}

// Rename implements FS with rename faults.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, hit, ierr := f.next(OpRename); hit {
		return ierr
	}
	return f.inner.Rename(oldpath, newpath)
}

// MkdirAll implements FS with mkdir faults.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, hit, ierr := f.next(OpMkdir); hit {
		return ierr
	}
	return f.inner.MkdirAll(path, perm)
}

// Remove implements FS with remove faults.
func (f *FaultFS) Remove(name string) error {
	if _, hit, ierr := f.next(OpRemove); hit {
		return ierr
	}
	return f.inner.Remove(name)
}

// RandomSchedule derives a deterministic fault schedule from a seed: n
// faults spread over roughly the first horizon operations of each class.
// The generator is an inline splitmix64, not math/rand, so schedules are
// reproducible across Go versions and never trip the nondet analyzer.
func RandomSchedule(seed uint64, n int, horizon int64) []Fault {
	if horizon < 1 {
		horizon = 1
	}
	s := seed
	next := func() uint64 {
		// splitmix64 step.
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		faults = append(faults, Fault{
			Op:   Op(next() % uint64(opCount)),
			N:    int64(next()%uint64(horizon)) + 1,
			Mode: FaultMode(next() % 4),
		})
	}
	return faults
}

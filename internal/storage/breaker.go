package storage

import (
	"sync"
	"time"
)

// Circuit-breaker defaults shared by the result cache and the trace
// store. Three consecutive faults on a local filesystem is already a
// strong signal of a broken disk (transient errors on local disks are
// rare; the caches retry across requests anyway), and a five-second
// probation keeps a broken disk from adding failed-syscall latency to
// every request while still recovering promptly once it heals.
const (
	DefaultBreakThreshold = 3
	DefaultProbation      = 5 * time.Second
)

// Breaker is a circuit breaker over a failure-prone resource (for the
// caches: the disk). It is closed until Threshold consecutive failures
// are recorded, then opens; while open, Allow denies access except for
// one probe per probation interval. A successful probe closes the
// breaker again; a failed probe restarts the probation clock.
//
// The zero value is not usable; build with NewBreaker. All methods are
// safe for concurrent use.
type Breaker struct {
	// Clock supplies the current time; tests inject a fake. Set it
	// before first use (it is read without the lock).
	Clock func() time.Time

	threshold int
	probation time.Duration

	mu        sync.Mutex
	fails     int
	open      bool
	lastDeny  time.Time // start of the current probation window
	openCount int64
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and probes every probation interval (<= 0 select the
// defaults).
func NewBreaker(threshold int, probation time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakThreshold
	}
	if probation <= 0 {
		probation = DefaultProbation
	}
	return &Breaker{Clock: time.Now, threshold: threshold, probation: probation}
}

// Allow reports whether the caller may attempt the guarded operation.
// Closed: always. Open: only as the probe, once per probation interval —
// the caller that gets true MUST report the outcome via Success or
// Failure, or the next probe waits a full interval.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	now := b.Clock()
	if now.Sub(b.lastDeny) >= b.probation {
		// Grant the probe and restart the window, so a second caller
		// arriving before the probe's outcome does not pile on.
		b.lastDeny = now
		return true
	}
	return false
}

// Success records a successful operation: the failure run ends and the
// breaker closes (a successful probe is how a recovered disk comes
// back).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.open = false
}

// Failure records a failed operation; after the threshold-th consecutive
// failure the breaker opens. While open (a failed probe) it restarts the
// probation window.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.Clock()
	if b.open {
		b.lastDeny = now
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.open = true
		b.lastDeny = now
		b.openCount++
	}
}

// Open reports whether the breaker is currently open (the guarded
// resource is considered down; callers should use their fallback).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// Trips reports how many times the breaker has opened over its lifetime.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openCount
}

package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	if err := fs.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "a/b/x")
	if err := fs.WriteFile(p, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	q := filepath.Join(dir, "a/b/y")
	if err := fs.Rename(p, q); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(q)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
	if err := fs.Remove(q); err != nil {
		t.Fatal(err)
	}
	_, err = fs.ReadFile(q)
	if !IsNotExist(err) {
		t.Fatalf("IsNotExist(%v) = false after Remove", err)
	}
}

func TestFaultFSFailNth(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, Fault{Op: OpWrite, N: 2, Mode: FaultErr})
	p := filepath.Join(dir, "f")
	if err := ffs.WriteFile(p, []byte("one"), 0o644); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	err := ffs.WriteFile(p, []byte("two"), 0o644)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: %v, want ErrInjected", err)
	}
	if b, _ := os.ReadFile(p); string(b) != "one" {
		t.Fatalf("FaultErr write must have no side effect; file holds %q", b)
	}
	if err := ffs.WriteFile(p, []byte("three"), 0o644); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if got := ffs.Injected(); got != 1 {
		t.Fatalf("injected %d, want 1", got)
	}
}

func TestFaultFSENOSPCAndTorn(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{},
		Fault{Op: OpWrite, N: 1, Mode: FaultENOSPC},
		Fault{Op: OpWrite, N: 2, Mode: FaultTorn},
	)
	p := filepath.Join(dir, "f")
	err := ffs.WriteFile(p, []byte("0123456789"), 0o644)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC write: %v", err)
	}
	if b, _ := os.ReadFile(p); string(b) != "01234" {
		t.Fatalf("ENOSPC should leave the half-written prefix, got %q", b)
	}
	if err := ffs.WriteFile(p, []byte("abcdefghij"), 0o644); err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	if b, _ := os.ReadFile(p); string(b) != "abcde" {
		t.Fatalf("torn write should persist half, got %q", b)
	}
}

func TestFaultFSBitFlipRead(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	if err := os.WriteFile(p, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS{}, Fault{Op: OpRead, N: 2, Mode: FaultBitFlip})
	clean, err := ffs.ReadFile(p)
	if err != nil || string(clean) != "0123456789" {
		t.Fatalf("read 1: %q, %v", clean, err)
	}
	flipped, err := ffs.ReadFile(p)
	if err != nil {
		t.Fatalf("bit-flip read must succeed, got %v", err)
	}
	if bytes.Equal(flipped, clean) {
		t.Fatal("bit-flip read returned clean data")
	}
	diff := 0
	for i := range clean {
		if clean[i] != flipped[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d corrupted bytes, want exactly 1", diff)
	}
	if b, _ := os.ReadFile(p); string(b) != "0123456789" {
		t.Fatal("bit flip must corrupt the returned copy, not the file")
	}
}

func TestFaultFSBreakHeal(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{})
	p := filepath.Join(dir, "f")
	ffs.Break()
	if err := ffs.WriteFile(p, []byte("x"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("broken write: %v", err)
	}
	if err := ffs.Rename(p, p+"2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("broken rename: %v", err)
	}
	// Break() without args leaves reads working (unwritable disk shape).
	if _, err := ffs.ReadFile(p); !IsNotExist(err) {
		t.Fatalf("read while write-broken: %v, want plain not-exist", err)
	}
	ffs.Heal()
	if err := ffs.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatalf("healed write: %v", err)
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(42, 8, 100)
	b := RandomSchedule(42, 8, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c := RandomSchedule(43, 8, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	for _, f := range a {
		if f.N < 1 || f.N > 100 {
			t.Fatalf("fault N %d outside [1,100]", f.N)
		}
		if f.Op >= opCount {
			t.Fatalf("fault op %d out of range", f.Op)
		}
	}
}

func TestBreakerTripProbeRecover(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 10*time.Second)
	b.Clock = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied op %d", i)
		}
		b.Failure()
	}
	if b.Open() {
		t.Fatal("breaker opened below threshold")
	}
	// A success resets the consecutive-failure run.
	b.Success()
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if !b.Open() {
		t.Fatal("breaker did not open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an op inside probation")
	}
	// Probation elapses: exactly one probe is granted per window.
	now = now.Add(10 * time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after probation")
	}
	if b.Allow() {
		t.Fatal("second probe granted in the same window")
	}
	// Failed probe: stays open, window restarts.
	b.Failure()
	if !b.Open() {
		t.Fatal("breaker closed on failed probe")
	}
	now = now.Add(10 * time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after failed-probe probation")
	}
	b.Success()
	if b.Open() {
		t.Fatal("breaker still open after successful probe")
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied")
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
}

package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"path/filepath"
	"strings"
	"time"
)

// KV is the content-addressed entry backend the result cache stores its
// records through. Keys are hex content hashes (the cache's own
// canonical-JSON + SHA-256 identities), values are the self-describing
// entry bytes; a backend never interprets the payload beyond moving it.
//
// Get reports a missing key with an error satisfying IsNotExist, so a
// caller can tell an ordinary miss from a backend *fault* (only the
// latter should feed a circuit breaker). Implementations must be safe
// for concurrent use.
//
// Two backends exist today: DirKV (local disk, one file per key — the
// durable tier every cache has) and PeerKV (the HTTP cache-peer
// protocol, through which worker daemons warm each other; see
// DESIGN.md's distributed execution section for the wire contract).
type KV interface {
	Get(key string) ([]byte, error)
	Put(key string, data []byte) error
	Delete(key string) error
}

// DirKV is the local-disk backend: one file per key under Dir, written
// atomically (temp file + rename) so a crash mid-write leaves either the
// old entry or none — never a torn file a later Get would half-trust.
// The temp name is derived from the key, not randomized: entries are
// content-addressed, so concurrent writers of one key write identical
// bytes and the last rename wins harmlessly.
type DirKV struct {
	Dir string
	FS  FS
	// Ext is appended to the key to form the file name; the result cache
	// uses ".json" so its directories keep auditable names.
	Ext string
}

// NewDirKV builds a disk backend over fsys (nil means the real
// filesystem), creating dir if needed.
func NewDirKV(dir string, fsys FS, ext string) (*DirKV, error) {
	if dir == "" {
		return nil, fmt.Errorf("storage: empty backend directory")
	}
	if fsys == nil {
		fsys = OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open dir backend: %w", err)
	}
	return &DirKV{Dir: dir, FS: fsys, Ext: ext}, nil
}

func (d *DirKV) path(key string) string {
	return filepath.Join(d.Dir, key+d.Ext)
}

// Get implements KV. A missing file surfaces as the fs.ErrNotExist the
// read reported, so IsNotExist distinguishes miss from fault.
func (d *DirKV) Get(key string) ([]byte, error) {
	return d.FS.ReadFile(d.path(key))
}

// Put implements KV with the atomic temp+rename contract. On any
// failure the temp file is removed — an injected rename fault must not
// leave *.tmp orphans in the directory.
func (d *DirKV) Put(key string, data []byte) error {
	tmp := d.path(key) + ".tmp"
	if err := d.FS.WriteFile(tmp, data, 0o644); err != nil {
		_ = d.FS.Remove(tmp) // a half-written (ENOSPC) temp must not linger
		return err
	}
	if err := d.FS.Rename(tmp, d.path(key)); err != nil {
		_ = d.FS.Remove(tmp)
		return err
	}
	return nil
}

// Delete implements KV.
func (d *DirKV) Delete(key string) error {
	return d.FS.Remove(d.path(key))
}

// MaxPeerEntry caps how many bytes a peer response (or request) may
// carry: a confused or hostile peer must not balloon memory. Cache
// entries are a few KB of JSON; a megabyte is generous headroom.
const MaxPeerEntry = 1 << 20

// PeerKV speaks the HTTP cache-peer protocol against one or more peer
// daemons: GET {base}/v1/cache/{key} fetches an entry's bytes (200 with
// the payload, 404 for a miss), PUT stores them (204; the receiver
// validates the self-describing envelope before accepting). Fetches try
// the peers in order and return the first hit; pushes go to every peer,
// best-effort. An unreachable or misbehaving peer is never fatal — the
// caller degrades to local compute, which is the protocol's whole
// safety story: peers accelerate, they cannot corrupt or block.
type PeerKV struct {
	// Bases are the peers' base URLs (e.g. "http://10.0.0.2:8744").
	Bases []string
	// Client issues the requests; nil means a client with a conservative
	// 10-second timeout, so one hung peer cannot stall a sweep.
	Client *http.Client
}

// NewPeerKV builds a peer backend over the base URLs (trailing slashes
// trimmed). A nil client gets a 10-second timeout.
func NewPeerKV(bases []string, client *http.Client) *PeerKV {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	trimmed := make([]string, len(bases))
	for i, b := range bases {
		trimmed[i] = strings.TrimRight(b, "/")
	}
	return &PeerKV{Bases: trimmed, Client: client}
}

func (p *PeerKV) url(base, key string) string {
	return base + "/v1/cache/" + key
}

// Get implements KV: the peers are tried in order and the first 200 wins.
// When every peer misses (404) the error satisfies IsNotExist; transport
// failures and unexpected statuses are folded into the returned error
// but a later peer can still satisfy the fetch.
func (p *PeerKV) Get(key string) ([]byte, error) {
	var errs []error
	for _, base := range p.Bases {
		resp, err := p.Client.Get(p.url(base, key))
		if err != nil {
			errs = append(errs, fmt.Errorf("peer %s: %w", base, err))
			continue
		}
		b, err := readCapped(resp.Body)
		_ = resp.Body.Close() // body already consumed; a close error cannot change the fetch
		switch {
		case err != nil:
			errs = append(errs, fmt.Errorf("peer %s: %w", base, err))
		case resp.StatusCode == http.StatusOK:
			return b, nil
		case resp.StatusCode == http.StatusNotFound:
			// An ordinary miss; keep asking the remaining peers.
		default:
			errs = append(errs, fmt.Errorf("peer %s: status %d", base, resp.StatusCode))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return nil, fmt.Errorf("peer miss %s: %w", key, fs.ErrNotExist)
}

// Put implements KV by pushing the entry to every peer. Failures are
// joined and reported, but a push is advisory by design — the caller's
// durable tier is its own disk, and a peer that refused an entry will
// simply fetch it on demand later.
func (p *PeerKV) Put(key string, data []byte) error {
	var errs []error
	for _, base := range p.Bases {
		req, err := http.NewRequest(http.MethodPut, p.url(base, key), bytes.NewReader(data))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := p.Client.Do(req)
		if err != nil {
			errs = append(errs, fmt.Errorf("peer %s: %w", base, err))
			continue
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, MaxPeerEntry)) // drain for keep-alive reuse
		_ = resp.Body.Close()                                               // push is advisory; the status check below is the real verdict
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			errs = append(errs, fmt.Errorf("peer %s: status %d", base, resp.StatusCode))
		}
	}
	return errors.Join(errs...)
}

// Delete implements KV. Peers own their stores; remote deletion is not
// part of the protocol (a stale peer entry fails the reader's checksum
// validation and heals there), so Delete is a no-op.
func (p *PeerKV) Delete(string) error { return nil }

// readCapped reads a response body up to MaxPeerEntry, erroring when the
// payload exceeds the cap instead of truncating it into a plausible-
// looking entry.
func readCapped(r io.Reader) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, MaxPeerEntry+1))
	if err != nil {
		return nil, err
	}
	if len(b) > MaxPeerEntry {
		return nil, fmt.Errorf("storage: peer entry exceeds %d bytes", MaxPeerEntry)
	}
	return b, nil
}

// ValidKey reports whether key has the shape of a cache content hash —
// lowercase hex SHA-256. The cache-peer HTTP handlers use it to reject
// path traversal and junk keys before touching any backend.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

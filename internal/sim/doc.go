// Package sim is the experiment harness for all of the paper's
// applications: the ARVI branch-prediction matrix ((benchmark × pipeline
// depth × predictor mode) cells, Section 5), the SMT fetch-policy study
// ((mix × policy) cells, Section 3), and the selective value-prediction
// ablation ((benchmark × predictor × selection) cells, Section 3). It
// runs the cells in parallel and renders the paper's tables and figures
// from the results.
//
// The package is organised around Engine, a cache-backed worker-pool
// runner. An Engine bounds goroutine spawn to a fixed worker count, keeps
// every completed result even when sibling runs fail (partial results plus
// a joined error), and — when given a Cache — persists each cell's
// statistics on disk keyed by a content hash of the cell's full identity,
// so an interrupted or enlarged sweep only simulates the cells it has not
// seen before. Branch-prediction cells are identified by Spec (whose
// identity is the derived cpu.Config fingerprint); the other applications
// implement the Study interface and run through RunStudies.
//
// Main entry points:
//
//   - Spec / Simulate / Engine.Run / Engine.RunMatrix — the Section 5
//     branch-prediction cells and grids; Matrix holds a (possibly
//     partial) grid and Fig5a/Fig5b/Fig6Accuracy/Fig6IPC/Table2/Table4
//     render the paper's artifacts from it.
//   - Study / RunStudies — the generic cache-keyed cell contract;
//     Engine.RunSMTGrid and Engine.RunVPredGrid wire the two Section 3
//     studies through it.
//   - Engine.RunConfThresholdSweep / Engine.RunCutAtLoadsSweep — the
//     ablation sweeps (DESIGN.md ablation A1 and the JRS threshold).
//   - OpenCache / OpenTraceStore — the two persistence tiers (per-cell
//     results; record-once/replay-many traces), shared by every front
//     end: cmd/experiments, cmd/arvisim and the HTTP service
//     (internal/server via cmd/arvid).
//   - ParseMode / ValidateSpec and friends (validate.go) — the shared
//     user-input rules, so every front end rejects a bad value with the
//     same message.
package sim

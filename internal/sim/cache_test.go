package sim

import (
	"context"

	"os"
	"path/filepath"
	"testing"

	"repro/internal/cpu"
)

var cacheSpec = Spec{Bench: "compress", Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: 5000}

func openCache(t *testing.T) *Cache {
	t.Helper()
	c, err := OpenCache(filepath.Join(t.TempDir(), "simcache"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheHitMiss(t *testing.T) {
	c := openCache(t)
	if _, ok := c.Get(cacheSpec); ok {
		t.Fatal("empty cache reported a hit")
	}
	eng := &Engine{Cache: c}
	first, err := eng.Run(context.Background(), []Spec{cacheSpec})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Simulated() != 1 || eng.CacheHits() != 0 {
		t.Errorf("cold run: simulated %d, hits %d", eng.Simulated(), eng.CacheHits())
	}
	second, err := eng.Run(context.Background(), []Spec{cacheSpec})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Simulated() != 1 || eng.CacheHits() != 1 {
		t.Errorf("warm run: simulated %d, hits %d", eng.Simulated(), eng.CacheHits())
	}
	if first[0].Stats != second[0].Stats {
		t.Errorf("cache returned different stats:\n%+v\n%+v", first[0].Stats, second[0].Stats)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Errorf("cache entries = %d, err %v", n, err)
	}
}

func TestCacheCorruptEntryRecovers(t *testing.T) {
	c := openCache(t)
	eng := &Engine{Cache: c}
	if _, err := eng.Run(context.Background(), []Spec{cacheSpec}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), c.Key(cacheSpec)+".json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(cacheSpec); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry not removed")
	}
	// The engine heals the cache: re-simulates, re-persists, then hits.
	if _, err := eng.Run(context.Background(), []Spec{cacheSpec}); err != nil {
		t.Fatal(err)
	}
	if eng.Simulated() != 2 {
		t.Errorf("corrupt entry should force a re-simulation, simulated = %d", eng.Simulated())
	}
	if _, ok := c.Get(cacheSpec); !ok {
		t.Error("cache not repaired after corrupt entry")
	}
}

func TestCacheRejectsMismatchedContent(t *testing.T) {
	c := openCache(t)
	eng := &Engine{Cache: c}
	other := cacheSpec
	other.ConfThreshold = 12
	if _, err := eng.Run(context.Background(), []Spec{other}); err != nil {
		t.Fatal(err)
	}
	// Copy the other spec's entry over cacheSpec's slot: the embedded key
	// no longer matches the file name, so Get must refuse it.
	b, err := os.ReadFile(filepath.Join(c.Dir(), c.Key(other)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), c.Key(cacheSpec)+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(cacheSpec); ok {
		t.Error("entry with mismatched key served as a hit")
	}
}

func TestResumedRunSimulatesOnlyMissingCells(t *testing.T) {
	c := openCache(t)
	cold := &Engine{Cache: c}
	if _, err := cold.RunMatrix(context.Background(), []string{"gcc"}, []int{20}, Modes[:2], 5000); err != nil {
		t.Fatal(err)
	}
	if cold.Simulated() != 2 {
		t.Fatalf("cold run simulated %d cells, want 2", cold.Simulated())
	}
	// A fresh engine over the same cache, asked for an enlarged grid,
	// must only simulate the cells the cold run never produced.
	warm := &Engine{Cache: c}
	mx, err := warm.RunMatrix(context.Background(), []string{"gcc"}, []int{20}, Modes, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated() != 2 || warm.CacheHits() != 2 {
		t.Errorf("resumed run: simulated %d (want 2), hits %d (want 2)",
			warm.Simulated(), warm.CacheHits())
	}
	if mx.Len() != 4 {
		t.Errorf("resumed matrix holds %d cells, want 4", mx.Len())
	}
}

func TestCacheKeySeparatesConfigurations(t *testing.T) {
	base := cacheSpec
	variants := []Spec{
		{Bench: "gcc", Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: 5000},
		{Bench: "compress", Depth: 40, Mode: cpu.PredARVICurrent, MaxInsts: 5000},
		{Bench: "compress", Depth: 20, Mode: cpu.PredBaseline2Lvl, MaxInsts: 5000},
		{Bench: "compress", Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: 9000},
		{Bench: "compress", Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: 5000, CutAtLoads: true},
		{Bench: "compress", Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: 5000, ConfThreshold: 3},
	}
	baseKey := CacheKey(base, base.Config())
	if baseKey != CacheKey(base, base.Config()) {
		t.Fatal("cache key not deterministic")
	}
	seen := map[string]Spec{baseKey: base}
	for _, v := range variants {
		k := CacheKey(v, v.Config())
		if k == baseKey {
			t.Errorf("spec %+v collides with base key", v)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("specs %+v and %+v share a key", prev, v)
		}
		seen[k] = v
	}
}

func TestCacheKeyUnifiesSpecAliases(t *testing.T) {
	// ConfThreshold 0 means "paper default", which is 8: the two specs
	// derive identical configs and must share one cache entry.
	implicit := cacheSpec
	explicit := cacheSpec
	explicit.ConfThreshold = 8
	if implicit.Config() != explicit.Config() {
		t.Fatal("test premise broken: default ConfThreshold is no longer 8")
	}
	if CacheKey(implicit, implicit.Config()) != CacheKey(explicit, explicit.Config()) {
		t.Error("spec aliases with identical configs must share a cache key")
	}
}

func TestCachePutFailureKeepsResult(t *testing.T) {
	c := openCache(t)
	// Break the cache between open and put (as a vanished mount or
	// deleted directory would): Put's temp-file creation must fail while
	// the simulation itself succeeds. A regular file in the directory's
	// place fails for root too, unlike permission bits.
	if err := os.Remove(c.Dir()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.Dir(), []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Cache: c}
	res, err := eng.Run(context.Background(), []Spec{cacheSpec})
	if err == nil {
		t.Error("cache persistence failure must surface in the joined error")
	}
	if len(res) != 1 || res[0].Stats.Insts == 0 {
		t.Fatalf("completed simulation discarded on cache failure: %v", res)
	}
	if eng.Simulated() != 1 {
		t.Errorf("simulated = %d", eng.Simulated())
	}
}

func TestOpenCacheRejectsEmptyDir(t *testing.T) {
	if _, err := OpenCache(""); err == nil {
		t.Error("OpenCache(\"\") must fail")
	}
}

package sim

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/vpred"
	"repro/internal/workload"
)

// VPredPredictors lists the evaluated value-predictor families in
// presentation order.
var VPredPredictors = []string{"last-value", "stride"}

// VPredParams bundles the knobs shared by every cell of a selective
// value-prediction ablation.
type VPredParams struct {
	// Entries sizes the predictor table (power of two).
	Entries int `json:"entries"`
	// ConfMin is the predictor's confidence threshold.
	ConfMin uint8 `json:"conf_min"`
	// MaxInsts bounds the functional run (<= 0: run to halt).
	MaxInsts int64 `json:"max_insts"`
	// Window is the idealised in-flight window the DDT tracks.
	Window int `json:"window"`
	// DepThreshold is the criticality cut for the *selective* cells: an
	// instruction is a candidate only when at least this many dependents
	// accumulated on its DDT entry. The all-instructions cells use 0.
	DepThreshold int `json:"dep_threshold"`
}

// DefaultVPredParams mirrors the Section 3 sketch: a 4K-entry predictor,
// a 64-entry window, and prediction restricted to instructions with a
// non-trivial dependence tail.
func DefaultVPredParams(maxInsts int64) VPredParams {
	return VPredParams{Entries: 4096, ConfMin: 2, MaxInsts: maxInsts, Window: 64, DepThreshold: 4}
}

// VPredStudy is one cell of the Section 3 selective value-prediction
// ablation: one benchmark, one predictor family, predicting either every
// value-producing instruction (Selective false) or only the DDT-critical
// ones (Selective true, threshold Params.DepThreshold).
type VPredStudy struct {
	Bench     string
	Predictor string
	Selective bool
	Params    VPredParams

	// bench holds the pre-resolved benchmark (RunVPredGrid resolves each
	// benchmark once and shares it across its predictor × selection
	// cells). Nil means resolve on use, so hand-constructed studies stay
	// valid.
	bench *workload.Benchmark
}

// resolve returns the study's benchmark, preferring the pre-resolved one.
func (s VPredStudy) resolve() (workload.Benchmark, bool) {
	if s.bench != nil {
		return *s.bench, true
	}
	return workload.Lookup(s.Bench)
}

// Kind implements Study.
func (s VPredStudy) Kind() string { return "vpred" }

// String implements Study.
func (s VPredStudy) String() string {
	sel := "all"
	if s.Selective {
		sel = fmt.Sprintf("dep>=%d", s.Params.DepThreshold)
	}
	return fmt.Sprintf("%s/%s/%s", s.Bench, s.Predictor, sel)
}

// depThreshold resolves the cell's effective criticality cut.
func (s VPredStudy) depThreshold() int {
	if !s.Selective {
		return 0
	}
	return s.Params.DepThreshold
}

// Identity implements Study. It covers the benchmark's program content
// fingerprint, so a workload-generator change invalidates stale entries
// instead of serving them.
func (s VPredStudy) Identity() any {
	type id struct {
		Bench        string `json:"bench"`
		Program      string `json:"program,omitempty"`
		Predictor    string `json:"predictor"`
		Entries      int    `json:"entries"`
		ConfMin      uint8  `json:"conf_min"`
		MaxInsts     int64  `json:"max_insts"`
		Window       int    `json:"window"`
		DepThreshold int    `json:"dep_threshold"`
	}
	fp := ""
	if b, ok := s.resolve(); ok {
		fp = b.Prog.FingerprintHex()
	}
	return id{
		Bench: s.Bench, Program: fp, Predictor: s.Predictor,
		Entries: s.Params.Entries, ConfMin: s.Params.ConfMin,
		MaxInsts: s.Params.MaxInsts, Window: s.Params.Window,
		DepThreshold: s.depThreshold(),
	}
}

// newPredictor builds the cell's predictor.
func (s VPredStudy) newPredictor() (vpred.Predictor, error) {
	switch s.Predictor {
	case "last-value":
		return vpred.NewLastValue(s.Params.Entries, s.Params.ConfMin)
	case "stride":
		return vpred.NewStride(s.Params.Entries, s.Params.ConfMin)
	}
	return nil, fmt.Errorf("sim: unknown value predictor %q", s.Predictor)
}

// Simulate implements Study.
func (s VPredStudy) Simulate() (any, error) {
	b, ok := s.resolve()
	if !ok {
		return nil, fmt.Errorf("sim: unknown benchmark %q", s.Bench)
	}
	pred, err := s.newPredictor()
	if err != nil {
		return nil, err
	}
	res, err := vpred.EvaluateSelective(b.Prog, pred, s.Params.MaxInsts, s.Params.Window, s.depThreshold())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// vpredKey indexes a value-prediction result grid.
type vpredKey struct {
	bench     string
	predictor string
	selective bool
}

// VPredGrid holds a (benchmark × predictor × selection) ablation grid.
// Like Matrix it may be partial; renderers go through Lookup.
type VPredGrid struct {
	Benches    []string
	Predictors []string
	Params     VPredParams
	m          map[vpredKey]vpred.Result
}

// Lookup returns one cell and whether it is populated.
func (g *VPredGrid) Lookup(bench, predictor string, selective bool) (vpred.Result, bool) {
	st, ok := g.m[vpredKey{bench, predictor, selective}]
	return st, ok
}

// Len reports the number of populated cells.
func (g *VPredGrid) Len() int { return len(g.m) }

// RunVPredGrid evaluates the all-vs-selective ablation for every
// (benchmark × predictor) through the engine's worker pool and cache,
// with the usual partial-result contract.
func (e *Engine) RunVPredGrid(ctx context.Context, benches []string, predictors []string, params VPredParams) (*VPredGrid, error) {
	var studies []VPredStudy
	for _, b := range benches {
		// Resolve each benchmark once for all its predictor × selection
		// cells; an unknown name stays nil so the per-cell Simulate
		// surfaces it through the usual partial-result contract.
		var resolved *workload.Benchmark
		if wb, ok := workload.Lookup(b); ok {
			resolved = &wb
		}
		for _, p := range predictors {
			for _, sel := range []bool{false, true} {
				studies = append(studies, VPredStudy{
					Bench: b, Predictor: p, Selective: sel, Params: params, bench: resolved,
				})
			}
		}
	}
	res, err := RunStudies[VPredStudy, vpred.Result](ctx, e, studies)
	g := &VPredGrid{
		Benches:    benches,
		Predictors: predictors,
		Params:     params,
		m:          make(map[vpredKey]vpred.Result, len(res)),
	}
	for _, r := range res {
		g.m[vpredKey{r.Study.Bench, r.Study.Predictor, r.Study.Selective}] = r.Stats
	}
	return g, err
}

// vpredTable renders one metric across the grid's predictor × selection
// columns, marking unpopulated cells n/a.
//
//arvi:det
func vpredTable(g *VPredGrid, metric string, cell func(vpred.Result) string) Table {
	t := Table{
		Title: fmt.Sprintf("Selective value prediction: %s (DDT dependents >= %d vs all instructions)",
			metric, g.Params.DepThreshold),
		Note:   "Section 3: the DDT dependent counter supplies Calder's criticality filter",
		Header: []string{"benchmark"},
	}
	for _, p := range g.Predictors {
		t.Header = append(t.Header, p+"/all", p+"/sel")
	}
	for _, b := range g.Benches {
		row := []string{b}
		for _, p := range g.Predictors {
			for _, sel := range []bool{false, true} {
				if st, ok := g.Lookup(b, p, sel); ok {
					row = append(row, cell(st))
				} else {
					row = append(row, na)
				}
			}
		}
		t.AddRow(row...)
	}
	return t
}

// VPredAccuracyTable renders prediction accuracy per cell — selection
// should raise it.
func VPredAccuracyTable(g *VPredGrid) Table {
	return vpredTable(g, "accuracy", func(r vpred.Result) string { return pct(r.Accuracy()) })
}

// VPredCoverageTable renders coverage (predictions per value-producing
// instruction) per cell — selection deliberately lowers it.
func VPredCoverageTable(g *VPredGrid) Table {
	return vpredTable(g, "coverage", func(r vpred.Result) string { return pct(r.Coverage()) })
}

// VPredRecord is one exported grid cell with its derived metrics.
type VPredRecord struct {
	Bench       string  `json:"bench"`
	Predictor   string  `json:"predictor"`
	Selective   bool    `json:"selective"`
	Insts       int64   `json:"insts"`
	Candidates  int64   `json:"candidates"`
	Predictions int64   `json:"predictions"`
	Correct     int64   `json:"correct"`
	Coverage    float64 `json:"coverage"`
	Accuracy    float64 `json:"accuracy"`
}

// Records flattens the populated cells into tidy rows (bench-major).
// Missing cells are skipped.
//
//arvi:det
func (g *VPredGrid) Records() []VPredRecord {
	var out []VPredRecord
	for _, b := range g.Benches {
		for _, p := range g.Predictors {
			for _, sel := range []bool{false, true} {
				st, ok := g.Lookup(b, p, sel)
				if !ok {
					continue
				}
				out = append(out, VPredRecord{
					Bench: b, Predictor: p, Selective: sel,
					Insts: st.Insts, Candidates: st.Candidates,
					Predictions: st.Predictions, Correct: st.Correct,
					Coverage: st.Coverage(), Accuracy: st.Accuracy(),
				})
			}
		}
	}
	return out
}

// WriteCSV exports the populated grid as tidy CSV for external plotting.
//
//arvi:det
func (g *VPredGrid) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"bench", "predictor", "selective", "insts", "candidates", "predictions", "correct", "coverage", "accuracy"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range g.Records() {
		rec := []string{
			r.Bench, r.Predictor, fmt.Sprintf("%t", r.Selective),
			fmt.Sprintf("%d", r.Insts),
			fmt.Sprintf("%d", r.Candidates),
			fmt.Sprintf("%d", r.Predictions),
			fmt.Sprintf("%d", r.Correct),
			fmt.Sprintf("%.4f", r.Coverage),
			fmt.Sprintf("%.4f", r.Accuracy),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON exports the populated grid cells as indented JSON.
//
//arvi:det
func (g *VPredGrid) WriteJSON(w io.Writer) error {
	cells := g.Records()
	if cells == nil {
		cells = []VPredRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Params VPredParams   `json:"params"`
		Cells  []VPredRecord `json:"cells"`
	}{g.Params, cells})
}

package sim

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/storage"
)

// cacheVersion invalidates every existing entry when the on-disk format
// (not the simulated configuration — that is covered by the fingerprint)
// changes.
const cacheVersion = 1

// Cache is a persistent, concurrency-safe store of simulation results,
// one JSON file per cell under a directory. Entries are keyed by a
// SHA-256 content hash of the Spec together with the fingerprint of the
// full cpu.Config the spec derives, so any change to the simulated
// machine — a new default, an ablation knob, a different instruction
// budget — misses cleanly instead of serving stale statistics.
//
// Corrupt or unreadable entries (truncated writes, hand-edited files,
// format drift) are treated as misses and removed, so a damaged cache
// heals itself on the next run.
//
// Disk access goes through a storage.KV backend (storage.DirKV over a
// storage.FS) behind a circuit breaker: after a run of consecutive disk
// faults the cache degrades to a memory-only overlay instead of erroring
// every request, probing the disk on later writes and flushing the
// overlay back once a probe succeeds. Entries are keyed by content hash,
// so an overlay entry is exactly the bytes the disk would have held —
// degraded mode changes durability, never results.
//
// A cache may additionally be given a *peer* backend (SetPeers) — in a
// worker cluster, the other daemons' caches reachable over the HTTP
// cache-peer protocol. A local miss then asks the peers before
// simulating, and a fetched entry is validated exactly like a local one
// (envelope key, version, payload checksum) before it is trusted or
// replicated to local disk, so a malformed or corrupt peer response
// degrades to a miss — it can never poison the cache. The protocol is
// documented in DESIGN.md's distributed execution section.
type Cache struct {
	dir   string
	local *storage.DirKV
	brk   *storage.Breaker

	peersMu sync.RWMutex
	peers   storage.KV // nil: no peer tier
	push    bool       // replicate fresh entries to peers on Put

	peerHits   atomic.Int64
	peerPushes atomic.Int64

	mu  sync.Mutex
	mem map[string][]byte // overlay of entries the disk refused
}

// OpenCache opens (creating if needed) a cache rooted at dir on the real
// filesystem with default circuit-breaker settings.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheFS(dir, storage.OS{}, nil)
}

// OpenCacheFS opens a cache over an explicit filesystem and breaker
// (nil selects a default breaker). Chaos tests use it to run the cache
// against a fault-injecting FS; production callers use OpenCache.
func OpenCacheFS(dir string, fsys storage.FS, brk *storage.Breaker) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sim: empty cache directory")
	}
	if brk == nil {
		brk = storage.NewBreaker(0, 0)
	}
	local, err := storage.NewDirKV(dir, fsys, ".json")
	if err != nil {
		return nil, fmt.Errorf("sim: open cache: %w", err)
	}
	return &Cache{dir: dir, local: local, brk: brk, mem: make(map[string][]byte)}, nil
}

// SetPeers attaches a peer backend consulted on local misses (typically
// a storage.PeerKV over the other workers' daemons). When push is true,
// every freshly computed entry is additionally replicated to the peers,
// best-effort, so a cluster warms proactively instead of on demand.
// Call before serving; concurrent calls are safe.
func (c *Cache) SetPeers(peers storage.KV, push bool) {
	c.peersMu.Lock()
	c.peers = peers
	c.push = push
	c.peersMu.Unlock()
}

// PeerHits reports how many entries were served from the peer tier over
// the cache's lifetime.
func (c *Cache) PeerHits() int64 { return c.peerHits.Load() }

// PeerPushes reports how many fresh entries were successfully replicated
// to the peer tier.
func (c *Cache) PeerPushes() int64 { return c.peerPushes.Load() }

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Degraded reports whether the circuit breaker is open and the cache is
// serving memory-only.
func (c *Cache) Degraded() bool { return c.brk.Open() }

// Breaker exposes the cache's circuit breaker (for health reporting and
// tests).
func (c *Cache) Breaker() *storage.Breaker { return c.brk }

// MemEntries reports how many entries currently live only in the
// degraded-mode overlay.
func (c *Cache) MemEntries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Key returns the cache key for a spec: a hex SHA-256 over the spec's
// identity and the fingerprint of its derived configuration.
//
//arvi:det
func (c *Cache) Key(spec Spec) string { return CacheKey(spec, spec.Config()) }

// CacheKey computes the content-hash key for an explicit (spec, config)
// pair. The hash covers the benchmark name and the config fingerprint —
// every other Spec field flows into the derived cpu.Config, so two specs
// that describe the same run (e.g. ConfThreshold 0 versus an explicit
// paper-default 8) share one entry instead of simulating twice. Exposed
// for tests and external tooling that wants to locate or invalidate
// specific cells.
//
//arvi:det
func CacheKey(spec Spec, cfg cpu.Config) string {
	return hashKey(struct {
		Version     int
		Bench       string
		Fingerprint string
	}{cacheVersion, spec.Bench, cfg.Fingerprint()})
}

// hashKey hashes a plain identity value into a hex cache key.
//
//arvi:det
func hashKey(id any) string {
	b, err := json.Marshal(id)
	if err != nil {
		panic(fmt.Sprintf("sim: cache key: %v", err)) // plain value struct
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// entry is the on-disk record. Spec and Key are stored redundantly so a
// cache directory is self-describing (and auditable with jq), and so Get
// can reject a file whose content does not match its name. Sum is a
// checksum of the canonical stats encoding: the key only proves *which*
// cell the file claims to be, the sum proves the payload was not bit-
// corrupted in storage (entries predating the field fail the check and
// self-heal like any other corruption).
type entry struct {
	Version int       `json:"version"`
	Key     string    `json:"key"`
	Sum     string    `json:"sum"`
	Spec    Spec      `json:"spec"`
	Stats   cpu.Stats `json:"stats"`
}

// statsSum checksums a stats payload by its canonical JSON encoding, so
// the same check works at write time (over the value being stored) and at
// read time (over the value decoded back out of the file).
//
//arvi:det
func statsSum(stats any) string {
	b, err := json.Marshal(stats)
	if err != nil {
		panic(fmt.Sprintf("sim: cache sum: %v", err)) // plain value struct
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// load fetches an entry's bytes: the degraded overlay first, then disk.
// Disk is skipped entirely while the breaker is open (memory-only mode),
// and a disk *fault* — any read error other than plain not-exist — feeds
// the breaker.
func (c *Cache) load(key string) ([]byte, bool) {
	c.mu.Lock()
	b, ok := c.mem[key]
	c.mu.Unlock()
	if ok {
		return b, true
	}
	if c.brk.Open() {
		return nil, false
	}
	b, err := c.local.Get(key)
	if err != nil {
		if !storage.IsNotExist(err) {
			c.brk.Failure()
		}
		return nil, false
	}
	return b, true
}

// fetchPeer asks the peer tier for an entry's bytes. Any peer failure —
// unreachable, wrong status, oversized payload — is an ordinary miss:
// peers accelerate, they never block.
func (c *Cache) fetchPeer(key string) ([]byte, bool) {
	c.peersMu.RLock()
	peers := c.peers
	c.peersMu.RUnlock()
	if peers == nil {
		return nil, false
	}
	b, err := peers.Get(key)
	if err != nil {
		return nil, false
	}
	return b, true
}

// pushPeer replicates a freshly stored entry to the peer tier when push
// replication is on. Best-effort by contract: the local tier is the
// durable one, and a peer that missed the push simply fetches on demand.
func (c *Cache) pushPeer(key string, b []byte) {
	c.peersMu.RLock()
	peers, push := c.peers, c.push
	c.peersMu.RUnlock()
	if peers == nil || !push {
		return
	}
	if err := peers.Put(key, b); err == nil {
		c.peerPushes.Add(1)
	}
}

// discard drops a corrupt or stale entry from the overlay and (when the
// disk is believed healthy) from disk, so the next Put rewrites it.
func (c *Cache) discard(key string) {
	c.mu.Lock()
	delete(c.mem, key)
	c.mu.Unlock()
	if !c.brk.Open() {
		_ = c.local.Delete(key) // best-effort; a leftover entry re-heals on next read
	}
}

// decodeEntry validates an entry's bytes against the key they claim to
// answer: envelope shape, format version, self-described key, and the
// payload checksum. It is the one gate every entry passes on its way to
// a caller, whether the bytes came from local disk, the degraded
// overlay, or a cache peer — which is why a malformed peer response can
// never be served or replicated.
func decodeEntry(key string, b []byte) (cpu.Stats, bool) {
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Version != cacheVersion || e.Key != key {
		return cpu.Stats{}, false
	}
	// A bit-corrupted read can survive JSON parsing (a flipped byte inside
	// a number or a field name still decodes); the checksum catches it so
	// the entry heals instead of serving wrong statistics.
	if e.Sum != statsSum(e.Stats) {
		return cpu.Stats{}, false
	}
	return e.Stats, true
}

// Get returns the cached stats for spec, if present and intact — served
// from the local tier first, then fetched (and validated, and replicated
// locally) from the cache peers.
func (c *Cache) Get(spec Spec) (cpu.Stats, bool) {
	key := c.Key(spec)
	if b, ok := c.load(key); ok {
		if st, ok := decodeEntry(key, b); ok {
			return st, true
		}
		c.discard(key)
	}
	if b, ok := c.fetchPeer(key); ok {
		if st, ok := decodeEntry(key, b); ok {
			// Replicate the validated bytes locally so the next hit is
			// local; a store failure parks them in the overlay via the
			// usual breaker path and is deliberately not surfaced here.
			_ = c.store(key, b)
			c.peerHits.Add(1)
			return st, true
		}
	}
	return cpu.Stats{}, false
}

// Put stores the stats for spec. The write is atomic (temp file + rename)
// so a crash mid-write leaves either the old entry or none — never a
// torn file that a later Get would half-trust. While the circuit breaker
// is open the entry lands in the memory overlay instead and Put reports
// success: degraded mode trades durability for availability.
func (c *Cache) Put(spec Spec, st cpu.Stats) error {
	key := c.Key(spec)
	b, err := json.MarshalIndent(entry{
		Version: cacheVersion, Key: key, Sum: statsSum(st), Spec: spec, Stats: st,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("sim: cache put: %w", err)
	}
	err = c.store(key, b)
	// Fresh computes (and only those — peer-fetched entries came from the
	// cluster and are not echoed back) replicate to the peers when push
	// mode is on, regardless of local durability: a broken local disk is
	// exactly when the cluster copy matters most.
	c.pushPeer(key, b)
	return err
}

// store lands an entry's bytes, routing around a broken disk:
//
//   - breaker closed: write through; a failure feeds the breaker, parks
//     the bytes in the overlay (the result itself is not lost) and is
//     reported to the caller.
//   - breaker open, no probe due: overlay only, silently.
//   - breaker open, probe granted: attempt the disk write; on success the
//     breaker closes and the whole overlay flushes back to disk.
func (c *Cache) store(key string, b []byte) error {
	if !c.brk.Open() {
		if err := c.writeAtomic(key, b); err != nil {
			c.brk.Failure()
			c.putMem(key, b)
			return err
		}
		c.brk.Success()
		return nil
	}
	if !c.brk.Allow() {
		c.putMem(key, b)
		return nil
	}
	if err := c.writeAtomic(key, b); err != nil {
		c.brk.Failure()
		c.putMem(key, b)
		return nil
	}
	c.brk.Success()
	c.mu.Lock()
	delete(c.mem, key)
	c.mu.Unlock()
	c.flush()
	return nil
}

// putMem parks an entry in the degraded-mode overlay.
func (c *Cache) putMem(key string, b []byte) {
	c.mu.Lock()
	c.mem[key] = b
	c.mu.Unlock()
}

// flush writes every overlay entry back to disk (in sorted key order, so
// recovery is deterministic), dropping each from the overlay as it
// lands. A failure mid-flush feeds the breaker and leaves the remainder
// parked for the next successful probe.
func (c *Cache) flush() {
	c.mu.Lock()
	keys := make([]string, 0, len(c.mem))
	//arvi:unordered keys are sorted before use
	for k := range c.mem {
		keys = append(keys, k)
	}
	pending := make(map[string][]byte, len(keys))
	for _, k := range keys {
		pending[k] = c.mem[k]
	}
	c.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		if err := c.writeAtomic(k, pending[k]); err != nil {
			c.brk.Failure()
			return
		}
		c.mu.Lock()
		delete(c.mem, k)
		c.mu.Unlock()
	}
}

// writeAtomic lands an entry's bytes under its key through the local
// backend's atomic temp+rename contract (see storage.DirKV.Put: no torn
// files, no *.tmp orphans on failure).
func (c *Cache) writeAtomic(key string, b []byte) error {
	if err := c.local.Put(key, b); err != nil {
		return fmt.Errorf("sim: cache put: %w", err)
	}
	return nil
}

// studyEntry is the on-disk record of a non-bpred study cell. Like entry
// it is self-describing: the kind, key and the study's full identity are
// stored alongside the stats so a cache directory can be audited with jq
// and Get can reject a file whose content does not match its name.
type studyEntry struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Kind    string          `json:"kind"`
	Study   json.RawMessage `json:"study"`
	Stats   json.RawMessage `json:"stats"`
}

// GetStudy decodes the cached stats for the study into out, reporting
// whether an intact entry was present. Corrupt or mismatched entries are
// removed and reported as misses, matching Get's self-healing contract.
// The error return covers key computation only (a study whose identity
// cannot be marshalled), never disk state.
func (c *Cache) GetStudy(s Study, out any) (bool, error) {
	key, _, err := studyKey(s)
	if err != nil {
		return false, err
	}
	return c.getStudy(key, s.Kind(), out), nil
}

// decodeStudyEntry is decodeEntry's study-record sibling: it validates a
// study entry's bytes (envelope, version, key, kind, payload checksum)
// and decodes the stats into out on success. Like decodeEntry it gates
// every source of bytes — disk, overlay, and cache peers alike.
func decodeStudyEntry(key, kind string, b []byte, out any) bool {
	var e studyEntry
	if err := json.Unmarshal(b, &e); err != nil ||
		e.Version != cacheVersion || e.Key != key || e.Kind != kind {
		return false
	}
	if err := json.Unmarshal(e.Stats, out); err != nil {
		return false
	}
	// Checksum the decoded value's canonical encoding (not the raw field,
	// whose whitespace the indented container reshapes): a bit-corrupted
	// stat that still parses must heal, not be served.
	return e.Sum == statsSum(out)
}

// getStudy is GetStudy with the key precomputed; like Get it falls back
// to the validated peer tier on a local miss.
func (c *Cache) getStudy(key, kind string, out any) bool {
	if b, ok := c.load(key); ok {
		if decodeStudyEntry(key, kind, b, out) {
			return true
		}
		c.discard(key)
	}
	if b, ok := c.fetchPeer(key); ok {
		if decodeStudyEntry(key, kind, b, out) {
			_ = c.store(key, b) // replicate locally, best-effort (overlay on failure)
			c.peerHits.Add(1)
			return true
		}
	}
	return false
}

// PutStudy stores the study's stats with the same atomic-write guarantee
// as Put.
func (c *Cache) PutStudy(s Study, stats any) error {
	key, id, err := studyKey(s)
	if err != nil {
		return err
	}
	return c.putStudy(key, s.Kind(), id, stats)
}

// putStudy is PutStudy with the key and marshalled identity precomputed.
func (c *Cache) putStudy(key, kind string, id []byte, stats any) error {
	st, err := json.Marshal(stats)
	if err != nil {
		return fmt.Errorf("sim: cache put %s: %w", kind, err)
	}
	b, err := json.MarshalIndent(studyEntry{
		Version: cacheVersion, Key: key, Sum: statsSum(stats), Kind: kind, Study: id, Stats: st,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("sim: cache put %s: %w", kind, err)
	}
	err = c.store(key, b)
	c.pushPeer(key, b) // fresh study computes replicate like Put's
	return err
}

// Raw returns the stored entry bytes for a key — overlay first, then the
// local backend — without interpreting them. It is the read side of the
// HTTP cache-peer protocol: the requester validates what it fetched, so
// serving raw bytes is safe by construction.
func (c *Cache) Raw(key string) ([]byte, bool) {
	return c.load(key)
}

// rawEnvelope is the part of an entry a peer-supplied payload must get
// right before PutRaw will store it: the format version and the
// self-described key. The payload checksum is deliberately not
// re-verified here — it is computed over the *typed* canonical encoding,
// which only the reader knows — so the read path (decodeEntry /
// decodeStudyEntry) stays the final gate and a corrupt accepted entry
// heals there instead of being served.
type rawEnvelope struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
}

// PutRaw validates and stores entry bytes received over the cache-peer
// protocol. The bytes must be a JSON entry whose envelope matches the
// key they were pushed under; anything else is rejected so a confused or
// malicious peer cannot plant entries under foreign keys.
func (c *Cache) PutRaw(key string, b []byte) error {
	var env rawEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return fmt.Errorf("sim: cache peer put: not an entry: %v", err)
	}
	if env.Version != cacheVersion {
		return fmt.Errorf("sim: cache peer put: entry version %d, want %d", env.Version, cacheVersion)
	}
	if env.Key != key {
		return fmt.Errorf("sim: cache peer put: entry describes key %.16s..., pushed under %.16s...", env.Key, key)
	}
	return c.store(key, b)
}

// Len counts the entries currently on disk.
func (c *Cache) Len() (int, error) {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(matches), nil
}

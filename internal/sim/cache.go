package sim

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cpu"
)

// cacheVersion invalidates every existing entry when the on-disk format
// (not the simulated configuration — that is covered by the fingerprint)
// changes.
const cacheVersion = 1

// Cache is a persistent, concurrency-safe store of simulation results,
// one JSON file per cell under a directory. Entries are keyed by a
// SHA-256 content hash of the Spec together with the fingerprint of the
// full cpu.Config the spec derives, so any change to the simulated
// machine — a new default, an ablation knob, a different instruction
// budget — misses cleanly instead of serving stale statistics.
//
// Corrupt or unreadable entries (truncated writes, hand-edited files,
// format drift) are treated as misses and removed, so a damaged cache
// heals itself on the next run.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sim: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sim: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Key returns the cache key for a spec: a hex SHA-256 over the spec's
// identity and the fingerprint of its derived configuration.
//
//arvi:det
func (c *Cache) Key(spec Spec) string { return CacheKey(spec, spec.Config()) }

// CacheKey computes the content-hash key for an explicit (spec, config)
// pair. The hash covers the benchmark name and the config fingerprint —
// every other Spec field flows into the derived cpu.Config, so two specs
// that describe the same run (e.g. ConfThreshold 0 versus an explicit
// paper-default 8) share one entry instead of simulating twice. Exposed
// for tests and external tooling that wants to locate or invalidate
// specific cells.
//
//arvi:det
func CacheKey(spec Spec, cfg cpu.Config) string {
	return hashKey(struct {
		Version     int
		Bench       string
		Fingerprint string
	}{cacheVersion, spec.Bench, cfg.Fingerprint()})
}

// hashKey hashes a plain identity value into a hex cache key.
//
//arvi:det
func hashKey(id any) string {
	b, err := json.Marshal(id)
	if err != nil {
		panic(fmt.Sprintf("sim: cache key: %v", err)) // plain value struct
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// entry is the on-disk record. Spec and Key are stored redundantly so a
// cache directory is self-describing (and auditable with jq), and so Get
// can reject a file whose content does not match its name.
type entry struct {
	Version int       `json:"version"`
	Key     string    `json:"key"`
	Spec    Spec      `json:"spec"`
	Stats   cpu.Stats `json:"stats"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached stats for spec, if present and intact.
func (c *Cache) Get(spec Spec) (cpu.Stats, bool) {
	key := c.Key(spec)
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return cpu.Stats{}, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Version != cacheVersion || e.Key != key {
		// Corrupt or stale-format entry: drop it so the next Put rewrites it.
		_ = os.Remove(c.path(key))
		return cpu.Stats{}, false
	}
	return e.Stats, true
}

// Put stores the stats for spec. The write is atomic (temp file + rename)
// so a crash mid-write leaves either the old entry or none — never a
// torn file that a later Get would half-trust.
func (c *Cache) Put(spec Spec, st cpu.Stats) error {
	key := c.Key(spec)
	b, err := json.MarshalIndent(entry{Version: cacheVersion, Key: key, Spec: spec, Stats: st}, "", " ")
	if err != nil {
		return fmt.Errorf("sim: cache put: %w", err)
	}
	return c.writeAtomic(key, b)
}

// writeAtomic lands an entry's bytes under its key via temp file + rename.
func (c *Cache) writeAtomic(key string, b []byte) error {
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("sim: cache put: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("sim: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("sim: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("sim: cache put: %w", err)
	}
	return nil
}

// studyEntry is the on-disk record of a non-bpred study cell. Like entry
// it is self-describing: the kind, key and the study's full identity are
// stored alongside the stats so a cache directory can be audited with jq
// and Get can reject a file whose content does not match its name.
type studyEntry struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Kind    string          `json:"kind"`
	Study   json.RawMessage `json:"study"`
	Stats   json.RawMessage `json:"stats"`
}

// GetStudy decodes the cached stats for the study into out, reporting
// whether an intact entry was present. Corrupt or mismatched entries are
// removed and reported as misses, matching Get's self-healing contract.
// The error return covers key computation only (a study whose identity
// cannot be marshalled), never disk state.
func (c *Cache) GetStudy(s Study, out any) (bool, error) {
	key, _, err := studyKey(s)
	if err != nil {
		return false, err
	}
	return c.getStudy(key, s.Kind(), out), nil
}

// getStudy is GetStudy with the key precomputed.
func (c *Cache) getStudy(key, kind string, out any) bool {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return false
	}
	var e studyEntry
	if err := json.Unmarshal(b, &e); err != nil ||
		e.Version != cacheVersion || e.Key != key || e.Kind != kind {
		// Corrupt or stale-format entry: drop it so the next Put rewrites it.
		_ = os.Remove(c.path(key))
		return false
	}
	if err := json.Unmarshal(e.Stats, out); err != nil {
		_ = os.Remove(c.path(key))
		return false
	}
	return true
}

// PutStudy stores the study's stats with the same atomic-write guarantee
// as Put.
func (c *Cache) PutStudy(s Study, stats any) error {
	key, id, err := studyKey(s)
	if err != nil {
		return err
	}
	return c.putStudy(key, s.Kind(), id, stats)
}

// putStudy is PutStudy with the key and marshalled identity precomputed.
func (c *Cache) putStudy(key, kind string, id []byte, stats any) error {
	st, err := json.Marshal(stats)
	if err != nil {
		return fmt.Errorf("sim: cache put %s: %w", kind, err)
	}
	b, err := json.MarshalIndent(studyEntry{
		Version: cacheVersion, Key: key, Kind: kind, Study: id, Stats: st,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("sim: cache put %s: %w", kind, err)
	}
	return c.writeAtomic(key, b)
}

// Len counts the entries currently on disk.
func (c *Cache) Len() (int, error) {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(matches), nil
}

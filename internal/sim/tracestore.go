package sim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/prog"
	"repro/internal/storage"
	"repro/internal/trace"
)

// DefaultTraceMemBudget bounds the decoded traces a TraceStore keeps
// resident: 256 MiB ≈ 8M decoded events, comfortably the full suite at the
// default instruction budget.
const DefaultTraceMemBudget = 256 << 20

// TraceStore records each program's correct-path dynamic stream once and
// serves it to every simulation that asks, so a (bench × depth × mode)
// sweep runs the functional VM once per benchmark instead of once per
// cell. It is the trace-tier sibling of the result Cache:
//
//   - Entries are keyed by program fingerprint + instruction budget, the
//     two inputs that fully determine a correct-path trace.
//   - The first Get for a key records (or loads from disk) under a
//     per-key singleflight; concurrent requesters block on that one
//     recording instead of racing their own.
//   - Decoded traces are immutable in memory; any number of worker
//     goroutines replay one concurrently through private cursors.
//   - Resident decoded traces are bounded by a memory budget with LRU
//     eviction, so sweeps over many distinct programs or budgets do not
//     grow without bound. Evicted traces stay valid for replayers already
//     holding them (they hold the slice; the store merely drops its ref).
//   - With a backing directory, recorded traces persist on disk
//     (atomically, checksummed, self-healing on corruption) and later
//     runs — or other processes — reload them instead of re-executing
//     the VM.
//   - Disk access goes through a storage.FS behind a circuit breaker:
//     after consecutive disk faults the store stops touching the disk and
//     serves recordings memory-only, probing on later persists until the
//     disk recovers. Degraded mode affects durability only — the trace
//     bytes served are identical either way.
type TraceStore struct {
	dir       string // "" = memory-only
	fs        storage.FS
	brk       *storage.Breaker
	memBudget int64

	mu      sync.Mutex
	entries map[traceKey]*traceEntry
	memUsed int64
	tick    int64

	recorded    atomic.Int64
	memHits     atomic.Int64
	diskHits    atomic.Int64
	persistErrs atomic.Int64
}

// traceKey identifies one recorded stream: the program's content
// fingerprint and the instruction budget it was recorded to.
type traceKey struct {
	fp     string
	budget int64
}

// traceEntry is one resident (or in-flight) decoded trace. dec and err are
// published by closing ready; bytes, lastUse and done are guarded by the
// store mutex.
type traceEntry struct {
	ready   chan struct{}
	dec     *trace.Decoded
	err     error
	bytes   int64
	lastUse int64
	done    bool
}

// OpenTraceStore opens a trace store backed by dir (created if needed;
// empty for a memory-only store) holding at most memBudget bytes of
// decoded trace resident (<= 0 selects DefaultTraceMemBudget).
func OpenTraceStore(dir string, memBudget int64) (*TraceStore, error) {
	return OpenTraceStoreFS(dir, memBudget, storage.OS{}, nil)
}

// OpenTraceStoreFS opens a trace store over an explicit filesystem and
// breaker (nil selects a default breaker). Chaos tests use it to run the
// store against a fault-injecting FS; production callers use
// OpenTraceStore.
func OpenTraceStoreFS(dir string, memBudget int64, fsys storage.FS, brk *storage.Breaker) (*TraceStore, error) {
	if memBudget <= 0 {
		memBudget = DefaultTraceMemBudget
	}
	if fsys == nil {
		fsys = storage.OS{}
	}
	if brk == nil {
		brk = storage.NewBreaker(0, 0)
	}
	if dir != "" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("sim: open trace store: %w", err)
		}
	}
	return &TraceStore{
		dir:       dir,
		fs:        fsys,
		brk:       brk,
		memBudget: memBudget,
		entries:   make(map[traceKey]*traceEntry),
	}, nil
}

// Dir returns the backing directory ("" for a memory-only store).
func (s *TraceStore) Dir() string { return s.dir }

// Degraded reports whether the circuit breaker is open and the store is
// serving memory-only despite having a backing directory.
func (s *TraceStore) Degraded() bool { return s.dir != "" && s.brk.Open() }

// Breaker exposes the store's circuit breaker (for health reporting and
// tests).
func (s *TraceStore) Breaker() *storage.Breaker { return s.brk }

// Recorded reports how many times the store actually executed the
// functional VM — the number every other request amortises away.
func (s *TraceStore) Recorded() int64 { return s.recorded.Load() }

// MemHits reports requests served from a resident decoded trace
// (including waiters coalesced onto an in-flight recording).
func (s *TraceStore) MemHits() int64 { return s.memHits.Load() }

// DiskHits reports requests served by decoding a previously persisted
// trace file.
func (s *TraceStore) DiskHits() int64 { return s.diskHits.Load() }

// PersistErrs reports best-effort disk writes that failed; the traces
// stayed served from memory.
func (s *TraceStore) PersistErrs() int64 { return s.persistErrs.Load() }

// Entries reports how many decoded traces are currently resident.
func (s *TraceStore) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// MemUsed reports the bytes of decoded trace currently resident.
func (s *TraceStore) MemUsed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memUsed
}

// Path returns the on-disk location for a program/budget pair (even when
// the store is memory-only and will never write it).
//
//arvi:det
func (s *TraceStore) Path(p *prog.Program, budget int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%d.trc", p.FingerprintHex(), budget))
}

// Get returns the decoded correct-path trace of p at the given instruction
// budget (0 = to halt), recording it on first request. The returned
// Decoded is shared and read-only: replay it through Decoded.Cursor.
//
// A waiter coalesced onto another goroutine's in-flight recording gives
// up when ctx is canceled; the recording itself runs to completion —
// it is a shared resource other requesters (and the disk cache) still
// want, and a single recording is short relative to a sweep.
func (s *TraceStore) Get(ctx context.Context, p *prog.Program, budget int64) (*trace.Decoded, error) {
	key := traceKey{fp: p.FingerprintHex(), budget: budget}

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.tick++
		e.lastUse = s.tick
		s.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			return nil, e.err
		}
		s.memHits.Add(1)
		return e.dec, nil
	}
	e := &traceEntry{ready: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	e.dec, e.err = s.acquire(p, budget)
	close(e.ready)

	s.mu.Lock()
	if e.err != nil {
		// Do not poison the key: a transient failure (unreadable disk,
		// VM fault in a since-fixed program) retries on the next Get.
		delete(s.entries, key)
	} else {
		e.bytes = e.dec.MemBytes()
		e.done = true
		s.tick++
		e.lastUse = s.tick
		s.memUsed += e.bytes
		s.evictLocked(key)
	}
	s.mu.Unlock()
	return e.dec, e.err
}

// acquire produces the decoded trace from disk if possible, else by
// running the functional VM once (persisting the result best-effort).
// Disk is skipped entirely while the circuit breaker is open, except for
// one persist probe per probation window.
func (s *TraceStore) acquire(p *prog.Program, budget int64) (*trace.Decoded, error) {
	path := s.Path(p, budget)
	if s.dir != "" && !s.brk.Open() {
		if b, err := s.fs.ReadFile(path); err == nil {
			if payload, ok := checkSummed(b); ok {
				dec, derr := trace.Decode(p, bytes.NewReader(payload))
				if derr == nil {
					s.diskHits.Add(1)
					return dec, nil
				}
			}
			// Corrupt, truncated or foreign file under our name — including
			// a bit-corrupted read the trace format itself cannot detect
			// (event payloads carry no per-record redundancy), which is why
			// store files are checksummed: remove it and fall through to a
			// fresh recording (self-heal, like the result cache).
			_ = s.fs.Remove(path)
		} else if !storage.IsNotExist(err) {
			s.brk.Failure() // a disk fault, not an ordinary miss
		}
	}
	s.recorded.Add(1)
	dec, err := trace.RecordAll(p, budget)
	if err != nil {
		// No "sim:" prefix: Engine.simulate wraps this with the full spec.
		return nil, fmt.Errorf("recording trace of %q: %w", p.Name, err)
	}
	if s.dir != "" {
		if s.brk.Open() && !s.brk.Allow() {
			// Degraded and no probe due: serve from memory, skip the disk.
			return dec, nil
		}
		if err := s.persist(dec, path); err != nil {
			s.persistErrs.Add(1) // non-fatal: the trace serves from memory
			s.brk.Failure()
		} else {
			s.brk.Success()
		}
	}
	return dec, nil
}

// checkSummed splits a store file into its payload, verifying the leading
// whole-payload checksum. The trace format's own header authenticates the
// program and record count but not the event payload, so the store wraps
// each file in a SHA-256 of the trace bytes; anything that fails the
// check — truncation, bit rot, a pre-checksum store file — reads as
// corrupt and re-records.
func checkSummed(b []byte) ([]byte, bool) {
	if len(b) < sha256.Size {
		return nil, false
	}
	sum := sha256.Sum256(b[sha256.Size:])
	if !bytes.Equal(sum[:], b[:sha256.Size]) {
		return nil, false
	}
	return b[sha256.Size:], true
}

// persist writes the checksummed trace atomically (temp file + rename),
// so a crash leaves either a complete file or none. The temp name is
// derived from the target path: trace files are content-addressed, so
// concurrent writers of the same path write identical bytes. On any
// failure the temp file is removed — an injected rename fault must not
// leave *.tmp orphans in the trace directory.
func (s *TraceStore) persist(dec *trace.Decoded, path string) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, sha256.Size)) // checksum slot, filled below
	if _, err := dec.WriteTo(&buf); err != nil {
		return err
	}
	b := buf.Bytes()
	sum := sha256.Sum256(b[sha256.Size:])
	copy(b, sum[:])
	tmp := path + ".tmp"
	if err := s.fs.WriteFile(tmp, b, 0o644); err != nil {
		_ = s.fs.Remove(tmp) // a half-written (ENOSPC) temp must not linger
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	return nil
}

// evictLocked drops least-recently-used completed traces until the
// resident set fits the budget. The just-finished key is exempt — evicting
// what the caller is about to use would thrash. Callers already holding an
// evicted Decoded are unaffected; the store only forgets its own
// reference. Must be called with s.mu held.
func (s *TraceStore) evictLocked(keep traceKey) {
	for s.memUsed > s.memBudget {
		var victimKey traceKey
		var victim *traceEntry
		//arvi:unordered min-scan over unique lastUse ticks; the victim is order-independent
		for k, e := range s.entries {
			if !e.done || k == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return // nothing evictable (only in-flight entries or keep)
		}
		delete(s.entries, victimKey)
		s.memUsed -= victim.bytes
	}
}

package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
)

// Study is one cache-keyable experiment cell of any of the paper's
// applications. The branch-prediction Spec predates this interface and
// keeps its dedicated path (it additionally threads through the trace
// store); the SMT fetch-policy and selective value-prediction studies run
// through RunStudies, sharing the Engine's worker pool, result cache, and
// partial-result contract.
//
// A Study is a pure value: two studies with equal identities must simulate
// to equal stats (the determinism contract the cache relies on).
type Study interface {
	// Kind names the study family (e.g. "smt", "vpred") and namespaces
	// its cache entries, so two families can never alias a key.
	Kind() string
	// String names the run for error messages and logs.
	String() string
	// Identity returns a plain JSON-marshalable value that fully
	// determines the study's output. It is hashed into the cache key, so
	// it must cover every knob that could change the stats — including
	// the content identity of the programs simulated.
	Identity() any
	// Simulate executes the study and returns its stats. The value must
	// JSON round-trip losslessly: a cache hit returns the decoded form
	// and warm re-runs must render byte-identical artifacts.
	Simulate() (any, error)
}

// StudyResult pairs a study with its (simulated or cache-decoded) stats.
type StudyResult[S Study, R any] struct {
	Study S
	Stats R
}

// RunStudies executes the studies on the engine's worker pool with the
// same partial-result contract as Engine.Run: every study that completed
// is returned, in study order, and per-study failures are joined with
// errors.Join. When the engine has a cache, a study whose entry is present
// decodes it instead of simulating, and every fresh result is persisted; a
// persistence failure joins the error but never discards the computed
// result. R is the concrete stats type the studies' Simulate returns.
//
// Cancellation is checked between studies, not inside Study.Simulate:
// study cells are short (a handful of bounded engine runs), so keeping
// the interface context-free costs at most one cell of latency while
// sparing every implementation the plumbing.
func RunStudies[S Study, R any](ctx context.Context, e *Engine, studies []S) ([]StudyResult[S, R], error) {
	results := make([]StudyResult[S, R], len(studies))
	simErrs := make([]error, len(studies))
	cacheErrs := make([]error, len(studies))
	e.pool(ctx, len(studies), func(i int) {
		results[i].Study = studies[i]
		results[i].Stats, simErrs[i], cacheErrs[i] = runStudy[R](ctx, e, studies[i])
	})
	done := results[:0]
	for i := range results {
		if simErrs[i] == nil {
			done = append(done, results[i])
		}
	}
	return done, errors.Join(append(simErrs, cacheErrs...)...)
}

// runStudy executes one study through the cache. Mirrors Engine.run: a
// cache persistence failure is reported separately because the simulated
// result is still valid. The study's identity is marshalled and hashed
// exactly once per cell; the lookup and the write-back reuse it.
func runStudy[R any](ctx context.Context, e *Engine, s Study) (stats R, simErr, cacheErr error) {
	if err := ctx.Err(); err != nil {
		simErr = fmt.Errorf("sim: %s %s: %w", s.Kind(), s, err)
		return
	}
	var key string
	var id []byte
	if e.Cache != nil {
		var err error
		key, id, err = studyKey(s)
		if err != nil {
			simErr = err
			return
		}
		if e.Cache.getStudy(key, s.Kind(), &stats) {
			e.cacheHits.Add(1)
			return
		}
	}
	v, err := s.Simulate()
	if err != nil {
		simErr = fmt.Errorf("sim: %s %s: %w", s.Kind(), s, err)
		return
	}
	r, ok := v.(R)
	if !ok {
		simErr = fmt.Errorf("sim: %s %s: Simulate returned %T, runner expects %T", s.Kind(), s, v, stats)
		return
	}
	stats = r
	e.simulated.Add(1)
	if e.Cache != nil {
		if err := e.Cache.putStudy(key, s.Kind(), id, stats); err != nil {
			cacheErr = fmt.Errorf("sim: cache %s %s (result kept): %w", s.Kind(), s, err)
		}
	}
	return stats, nil, cacheErr
}

// studyKey computes a study's cache key and returns the marshalled
// identity alongside it, so callers that need both (the lookup/write-back
// cycle) marshal the identity once.
//
//arvi:det
func studyKey(s Study) (key string, id []byte, err error) {
	id, err = json.Marshal(s.Identity())
	if err != nil {
		return "", nil, fmt.Errorf("sim: study key %s %s: %w", s.Kind(), s, err)
	}
	return hashKey(struct {
		Version  int
		Kind     string
		Identity json.RawMessage
	}{cacheVersion, s.Kind(), id}), id, nil
}

// StudyKey computes the content-hash cache key for a study: a hex SHA-256
// over the cache format version, the study kind, and the JSON encoding of
// the study's identity. Exposed for tests and external tooling that wants
// to locate or invalidate specific cells.
//
//arvi:det
func StudyKey(s Study) (string, error) {
	key, _, err := studyKey(s)
	return key, err
}

package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// DefaultConfThresholds is the JRS confidence-threshold grid swept by the
// ablation driver. The paper's operating point is 8; the grid brackets it
// on both sides. Zero is not sweepable (Spec treats it as "keep default").
var DefaultConfThresholds = []uint8{1, 4, 8, 12, 15}

// SweepPoint is one column of an ablation sweep: a short name and the spec
// mutation that realises the point.
type SweepPoint struct {
	Name   string
	Mutate func(*Spec)
}

// SweepResult holds a (benchmark × point) ablation grid at one pipeline
// depth. Like Matrix it may be partial; renderers go through Lookup.
type SweepResult struct {
	// Label names the swept parameter (table titles).
	Label string
	Depth int
	Mode  cpu.PredMode
	// Points lists the column names in sweep order.
	Points []string
	m      map[sweepKey]cpu.Stats
}

type sweepKey struct {
	bench string
	point string
}

// Lookup returns one cell and whether it is populated.
func (s *SweepResult) Lookup(bench, point string) (cpu.Stats, bool) {
	st, ok := s.m[sweepKey{bench, point}]
	return st, ok
}

// RunSweep evaluates every (bench × point) cell at the given depth and
// predictor mode. Completed cells survive sibling failures: the returned
// SweepResult holds everything that finished and the error joins the
// per-cell failures (see Engine.Run).
func (e *Engine) RunSweep(ctx context.Context, label string, benches []string, depth int, mode cpu.PredMode, maxInsts int64, points []SweepPoint) (*SweepResult, error) {
	if len(points) == 0 {
		return nil, errors.New("sim: sweep with no points")
	}
	sr := &SweepResult{
		Label: label,
		Depth: depth,
		Mode:  mode,
		m:     make(map[sweepKey]cpu.Stats, len(benches)*len(points)),
	}
	var specs []Spec
	var keys []sweepKey
	for _, p := range points {
		sr.Points = append(sr.Points, p.Name)
		for _, b := range benches {
			s := Spec{Bench: b, Depth: depth, Mode: mode, MaxInsts: maxInsts}
			p.Mutate(&s)
			specs = append(specs, s)
			keys = append(keys, sweepKey{bench: b, point: p.Name})
		}
	}
	// Map surviving results back to their sweep cells by spec identity;
	// points whose mutations coincide share the same simulation.
	bySpec := make(map[Spec][]sweepKey, len(specs))
	for i, s := range specs {
		bySpec[s] = append(bySpec[s], keys[i])
	}
	res, err := e.Run(ctx, specs)
	for _, r := range res {
		for _, k := range bySpec[r.Spec] {
			sr.m[k] = r.Stats
		}
	}
	return sr, err
}

// RunConfThresholdSweep sweeps the JRS confidence threshold gating ARVI
// use (Section 4.3 machinery) under ARVI current-value at one depth.
func (e *Engine) RunConfThresholdSweep(ctx context.Context, benches []string, depth int, thresholds []uint8, maxInsts int64) (*SweepResult, error) {
	var points []SweepPoint
	for _, th := range thresholds {
		th := th
		points = append(points, SweepPoint{
			Name:   fmt.Sprintf("conf=%d", th),
			Mutate: func(s *Spec) { s.ConfThreshold = th },
		})
	}
	return e.RunSweep(ctx, "JRS confidence threshold", benches, depth, cpu.PredARVICurrent, maxInsts, points)
}

// RunCutAtLoadsSweep compares the paper's full dependence-chain semantics
// against the cut-at-loads DDT ablation under ARVI current-value.
func (e *Engine) RunCutAtLoadsSweep(ctx context.Context, benches []string, depth int, maxInsts int64) (*SweepResult, error) {
	points := []SweepPoint{
		{Name: "full-chain", Mutate: func(s *Spec) { s.CutAtLoads = false }},
		{Name: "cut-at-loads", Mutate: func(s *Spec) { s.CutAtLoads = true }},
	}
	return e.RunSweep(ctx, "DDT chain semantics", benches, depth, cpu.PredARVICurrent, maxInsts, points)
}

// sweepTable renders one metric of a sweep grid, marking unpopulated cells
// "n/a" so partially completed (or partially failed) sweeps still render.
//
//arvi:det
func sweepTable(s *SweepResult, metric string, cell func(cpu.Stats) string) Table {
	t := Table{
		Title:  fmt.Sprintf("Ablation: %s — %s, %d-cycle pipeline (%s)", s.Label, metric, s.Depth, s.Mode),
		Header: append([]string{"benchmark"}, s.Points...),
	}
	for _, b := range sweepBenches(s) {
		row := []string{b}
		for _, p := range s.Points {
			if st, ok := s.Lookup(b, p); ok {
				row = append(row, cell(st))
			} else {
				row = append(row, "n/a")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// sweepBenches recovers the benchmark rows present in the grid, in the
// canonical suite order first and any extras after.
//
//arvi:det
func sweepBenches(s *SweepResult) []string {
	seen := make(map[string]bool)
	//arvi:unordered builds a set; membership is order-independent
	for k := range s.m {
		seen[k.bench] = true
	}
	var out []string
	for _, b := range workload.Names {
		if seen[b] {
			out = append(out, b)
			delete(seen, b)
		}
	}
	extras := make([]string, 0, len(seen))
	//arvi:unordered collected into extras and sorted below
	for b := range seen {
		extras = append(extras, b)
	}
	sort.Strings(extras)
	return append(out, extras...)
}

// SweepAccuracyTable renders final prediction accuracy per cell.
func SweepAccuracyTable(s *SweepResult) Table {
	return sweepTable(s, "prediction accuracy", func(st cpu.Stats) string { return pct(st.PredAccuracy()) })
}

// SweepIPCTable renders IPC per cell.
func SweepIPCTable(s *SweepResult) Table {
	return sweepTable(s, "IPC", func(st cpu.Stats) string { return f3(st.IPC()) })
}

// SweepARVIUseTable renders the fraction of conditional branches where the
// ARVI prediction steered fetch — the quantity the confidence threshold
// and the chain ablation directly move.
func SweepARVIUseTable(s *SweepResult) Table {
	return sweepTable(s, "ARVI steer fraction", func(st cpu.Stats) string {
		if st.CondBranches == 0 {
			return "n/a"
		}
		return pct(float64(st.ARVIUsed) / float64(st.CondBranches))
	})
}

package sim

// The chaos suite drives the engine's storage tier through injected disk
// faults (see internal/storage.FaultFS) and asserts the robustness
// contract end to end: under every fault schedule a sweep either produces
// results byte-identical to a fault-free run or fails with a clean joined
// error — never a hang, a panic, a leaked goroutine, or a poisoned cache
// entry that a later run would trust.
//
// Every test here matches `go test -run Chaos`, which CI runs with the
// race detector enabled.

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/storage"
	"repro/internal/workload"
)

var (
	chaosBenches = []string{"li", "compress"}
	chaosDepths  = []int{20}
	chaosModes   = []cpu.PredMode{cpu.PredBaseline2Lvl, cpu.PredARVICurrent}
)

const chaosBudget = 2000

// chaosBaseline simulates the chaos grid with no storage at all — the
// ground truth every faulted run must reproduce bit for bit.
func chaosBaseline(t *testing.T) *Matrix {
	t.Helper()
	eng := &Engine{}
	mx, err := eng.RunMatrix(context.Background(), chaosBenches, chaosDepths, chaosModes, chaosBudget)
	if err != nil {
		t.Fatal(err)
	}
	return mx
}

// assertMatrixMatches checks every populated cell of got against the
// fault-free baseline; complete additionally requires every cell to be
// populated.
func assertMatrixMatches(t *testing.T, label string, got, want *Matrix, complete bool) {
	t.Helper()
	for _, b := range chaosBenches {
		for _, d := range chaosDepths {
			for _, m := range chaosModes {
				wantSt, ok := want.Lookup(b, d, m)
				if !ok {
					t.Fatalf("%s: baseline missing %s/%d/%v", label, b, d, m)
				}
				gotSt, ok := got.Lookup(b, d, m)
				if !ok {
					if complete {
						t.Errorf("%s: cell %s/%d/%v missing", label, b, d, m)
					}
					continue
				}
				if gotSt != wantSt {
					t.Errorf("%s: cell %s/%d/%v diverged from fault-free run:\nfaulted  %+v\nbaseline %+v",
						label, b, d, m, gotSt, wantSt)
				}
			}
		}
	}
}

// assertNoTmpOrphans pins the temp-file cleanup contract: no fault
// schedule may leave *.tmp files behind in a storage directory.
func assertNoTmpOrphans(t *testing.T, label string, dirs ...string) {
	t.Helper()
	for _, dir := range dirs {
		orphans, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
		if err != nil {
			t.Fatal(err)
		}
		if len(orphans) != 0 {
			t.Errorf("%s: %d orphaned temp files in %s: %v", label, len(orphans), dir, orphans)
		}
	}
}

// TestChaosMatrixByteIdenticalUnderFaultSchedules is the headline chaos
// property: a matrix sweep run over a fault-injecting filesystem either
// matches the fault-free baseline exactly (in the completed cells) or
// fails with a clean error — and after the disk heals, a fresh engine
// over the surviving directories reproduces the baseline in full, proving
// no fault schedule can poison the persisted state.
func TestChaosMatrixByteIdenticalUnderFaultSchedules(t *testing.T) {
	baseline := chaosBaseline(t)
	schedules := []struct {
		name   string
		faults []storage.Fault
	}{
		{"first-write-fails", []storage.Fault{{Op: storage.OpWrite, N: 1, Mode: storage.FaultErr}}},
		{"rename-fails", []storage.Fault{{Op: storage.OpRename, N: 1, Mode: storage.FaultErr}, {Op: storage.OpRename, N: 3, Mode: storage.FaultErr}}},
		{"enospc", []storage.Fault{{Op: storage.OpWrite, N: 1, Mode: storage.FaultENOSPC}, {Op: storage.OpWrite, N: 2, Mode: storage.FaultENOSPC}}},
		{"torn-write", []storage.Fault{{Op: storage.OpWrite, N: 1, Mode: storage.FaultTorn}, {Op: storage.OpWrite, N: 3, Mode: storage.FaultTorn}}},
		{"bitflip-read", []storage.Fault{{Op: storage.OpRead, N: 1, Mode: storage.FaultBitFlip}, {Op: storage.OpRead, N: 2, Mode: storage.FaultBitFlip}}},
		{"seeded-1", storage.RandomSchedule(1, 6, 30)},
		{"seeded-2", storage.RandomSchedule(2, 6, 30)},
		{"seeded-3", storage.RandomSchedule(3, 8, 30)},
	}
	for _, sched := range schedules {
		sched := sched
		t.Run(sched.name, func(t *testing.T) {
			cacheDir := filepath.Join(t.TempDir(), "cache")
			traceDir := filepath.Join(t.TempDir(), "traces")
			cfs := storage.NewFaultFS(storage.OS{}, sched.faults...)
			tfs := storage.NewFaultFS(storage.OS{}, sched.faults...)
			c, err := OpenCacheFS(cacheDir, cfs, nil)
			if err != nil {
				t.Fatalf("open under faults must fail cleanly or succeed: %v", err)
			}
			ts, err := OpenTraceStoreFS(traceDir, 0, tfs, nil)
			if err != nil {
				t.Fatalf("open under faults must fail cleanly or succeed: %v", err)
			}
			eng := &Engine{Cache: c, Traces: ts}
			mx, err := eng.RunMatrix(context.Background(), chaosBenches, chaosDepths, chaosModes, chaosBudget)
			// A fault schedule may surface as a joined per-cell error, but
			// the cells that did complete must match the baseline exactly,
			// and no run may strand temp files.
			assertMatrixMatches(t, sched.name+"/faulted", mx, baseline, err == nil)
			assertNoTmpOrphans(t, sched.name+"/faulted", cacheDir, traceDir)

			// Heal the disk: whatever the faulted run persisted (including
			// torn and half-written files) must self-heal, never serve wrong
			// results. A fresh engine over the same directories is the
			// "next process" reading the survivors.
			cfs.Heal()
			tfs.Heal()
			c2, err := OpenCacheFS(cacheDir, storage.OS{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			ts2, err := OpenTraceStoreFS(traceDir, 0, storage.OS{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			warm := &Engine{Cache: c2, Traces: ts2}
			mx2, err := warm.RunMatrix(context.Background(), chaosBenches, chaosDepths, chaosModes, chaosBudget)
			if err != nil {
				t.Fatalf("healed run failed: %v", err)
			}
			assertMatrixMatches(t, sched.name+"/healed", mx2, baseline, true)
			assertNoTmpOrphans(t, sched.name+"/healed", cacheDir, traceDir)
		})
	}
}

// TestChaosTmpCleanupAndRetryAfterRenameFault pins the temp-file leak fix
// at the unit level: a failed rename removes its temp file, the failure
// is reported, and the very next attempt heals the entry.
func TestChaosTmpCleanupAndRetryAfterRenameFault(t *testing.T) {
	t.Run("cache", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "cache")
		ffs := storage.NewFaultFS(storage.OS{}, storage.Fault{Op: storage.OpRename, N: 1, Mode: storage.FaultErr})
		c, err := OpenCacheFS(dir, ffs, nil)
		if err != nil {
			t.Fatal(err)
		}
		st := cpu.Stats{Insts: 42, Cycles: 99}
		if err := c.Put(cacheSpec, st); err == nil {
			t.Fatal("rename fault must surface from Put")
		}
		assertNoTmpOrphans(t, "after failed put", dir)
		// The result was parked in the overlay, so it still serves...
		if got, ok := c.Get(cacheSpec); !ok || got != st {
			t.Fatalf("failed put lost the result: %+v, %v", got, ok)
		}
		// ...and the next Put lands it on disk (the entry self-heals).
		if err := c.Put(cacheSpec, st); err != nil {
			t.Fatalf("retry after healed rename: %v", err)
		}
		c2, err := OpenCacheFS(dir, storage.OS{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := c2.Get(cacheSpec); !ok || got != st {
			t.Fatalf("retried put not persisted: %+v, %v", got, ok)
		}
	})
	t.Run("tracestore", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "traces")
		ffs := storage.NewFaultFS(storage.OS{}, storage.Fault{Op: storage.OpRename, N: 1, Mode: storage.FaultErr})
		s, err := OpenTraceStoreFS(dir, 0, ffs, nil)
		if err != nil {
			t.Fatal(err)
		}
		b := workload.ByName("li").Prog
		dec, err := s.Get(context.Background(), b, 500)
		if err != nil {
			t.Fatalf("persist failure must not fail the Get: %v", err)
		}
		if dec.Len() != 500 || s.PersistErrs() != 1 {
			t.Fatalf("len = %d, persistErrs = %d", dec.Len(), s.PersistErrs())
		}
		assertNoTmpOrphans(t, "after failed persist", dir)
		// A fresh store re-records and the persist retry succeeds.
		s2, err := OpenTraceStoreFS(dir, 0, ffs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Get(context.Background(), b, 500); err != nil {
			t.Fatal(err)
		}
		if s2.PersistErrs() != 0 || s2.Recorded() != 1 {
			t.Errorf("retry: persistErrs = %d, recorded = %d", s2.PersistErrs(), s2.Recorded())
		}
		s3, err := OpenTraceStoreFS(dir, 0, storage.OS{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s3.Get(context.Background(), b, 500); err != nil || s3.DiskHits() != 1 {
			t.Errorf("healed file not served from disk: %v (diskHits %d)", err, s3.DiskHits())
		}
	})
}

// TestChaosCacheDegradedModeTripsProbesAndRecovers walks the cache's
// circuit breaker through its whole life cycle on a fake clock: writes
// fail and are reported (pre-trip), the breaker opens and Puts silently
// go memory-only while Gets keep serving the overlay byte-identically,
// a probe inside probation is suppressed, and after the disk heals one
// granted probe closes the breaker and flushes the overlay back out.
func TestChaosCacheDegradedModeTripsProbesAndRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ffs := storage.NewFaultFS(storage.OS{})
	now := time.Unix(1000, 0)
	brk := storage.NewBreaker(3, time.Minute)
	brk.Clock = func() time.Time { return now }
	c, err := OpenCacheFS(dir, ffs, brk)
	if err != nil {
		t.Fatal(err)
	}
	ffs.Break() // the disk goes read-only under us

	specAt := func(i int) Spec {
		s := cacheSpec
		s.MaxInsts = int64(1000 + i)
		return s
	}
	stats := func(i int) cpu.Stats { return cpu.Stats{Insts: int64(i), Cycles: int64(10 * i)} }

	// Three consecutive write failures: each is reported (the joined-error
	// contract holds before the breaker trips) and trips the breaker.
	for i := 1; i <= 3; i++ {
		if err := c.Put(specAt(i), stats(i)); err == nil {
			t.Fatalf("put %d: broken disk must error before the breaker trips", i)
		}
	}
	if !c.Degraded() || brk.Trips() != 1 {
		t.Fatalf("degraded = %v, trips = %d; want true, 1", c.Degraded(), brk.Trips())
	}
	// Degraded mode: Put succeeds silently, results stay correct.
	if err := c.Put(specAt(4), stats(4)); err != nil {
		t.Fatalf("degraded put must not error: %v", err)
	}
	if c.MemEntries() != 4 {
		t.Fatalf("overlay entries = %d, want 4", c.MemEntries())
	}
	for i := 1; i <= 4; i++ {
		if got, ok := c.Get(specAt(i)); !ok || got != stats(i) {
			t.Fatalf("degraded get %d: %+v, %v", i, got, ok)
		}
	}
	writesBefore := ffs.Count(storage.OpWrite)
	if err := c.Put(specAt(5), stats(5)); err != nil { // probe not yet due
		t.Fatal(err)
	}
	if ffs.Count(storage.OpWrite) != writesBefore {
		t.Error("put inside the probation window touched the disk")
	}

	// Disk recovers; the first probe after probation flushes everything.
	ffs.Heal()
	now = now.Add(2 * time.Minute)
	if err := c.Put(specAt(6), stats(6)); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() || c.MemEntries() != 0 {
		t.Fatalf("after recovery: degraded = %v, overlay = %d", c.Degraded(), c.MemEntries())
	}
	if n, err := c.Len(); err != nil || n != 6 {
		t.Fatalf("entries on disk after flush = %d (err %v), want 6", n, err)
	}
	// The flushed entries are intact for a fresh process.
	c2, err := OpenCacheFS(dir, storage.OS{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if got, ok := c2.Get(specAt(i)); !ok || got != stats(i) {
			t.Errorf("flushed entry %d: %+v, %v", i, got, ok)
		}
	}
}

// TestChaosTraceStoreDegradedModeRecovers drives the trace store's
// breaker open on a write-broken disk and verifies it stops touching the
// disk entirely until a post-probation probe succeeds.
func TestChaosTraceStoreDegradedModeRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	ffs := storage.NewFaultFS(storage.OS{})
	now := time.Unix(1000, 0)
	brk := storage.NewBreaker(3, time.Minute)
	brk.Clock = func() time.Time { return now }
	s, err := OpenTraceStoreFS(dir, 0, ffs, brk)
	if err != nil {
		t.Fatal(err)
	}
	ffs.Break()
	b := workload.ByName("li").Prog
	for i := 1; i <= 3; i++ {
		if _, err := s.Get(context.Background(), b, int64(500+i)); err != nil {
			t.Fatalf("get %d: persist failures must stay non-fatal: %v", i, err)
		}
	}
	if !s.Degraded() || s.PersistErrs() != 3 {
		t.Fatalf("degraded = %v, persistErrs = %d", s.Degraded(), s.PersistErrs())
	}
	ops := ffs.Count(storage.OpRead) + ffs.Count(storage.OpWrite)
	if _, err := s.Get(context.Background(), b, 600); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Count(storage.OpRead) + ffs.Count(storage.OpWrite); got != ops {
		t.Error("degraded store touched the disk inside the probation window")
	}

	ffs.Heal()
	now = now.Add(2 * time.Minute)
	if _, err := s.Get(context.Background(), b, 700); err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("breaker still open after a successful probe")
	}
	// The probe's trace really landed: a fresh store disk-hits it.
	s2, err := OpenTraceStoreFS(dir, 0, storage.OS{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(context.Background(), b, 700); err != nil || s2.DiskHits() != 1 {
		t.Errorf("probe trace unreadable: %v (diskHits %d)", err, s2.DiskHits())
	}
	assertNoTmpOrphans(t, "degraded tracestore", dir)
}

// TestChaosDegradedEngineEndToEnd is the acceptance scenario: the cache
// directory becomes unwritable mid-run, the sweep still completes with
// correct results, subsequent runs serve from the memory overlay, and a
// healed disk gets the overlay flushed back.
func TestChaosDegradedEngineEndToEnd(t *testing.T) {
	baseline := chaosBaseline(t)
	dir := filepath.Join(t.TempDir(), "cache")
	ffs := storage.NewFaultFS(storage.OS{})
	now := time.Unix(1000, 0)
	brk := storage.NewBreaker(2, time.Minute)
	brk.Clock = func() time.Time { return now }
	c, err := OpenCacheFS(dir, ffs, brk)
	if err != nil {
		t.Fatal(err)
	}
	ffs.Break() // disk gone before the first write

	eng := &Engine{Cache: c}
	mx, err := eng.RunMatrix(context.Background(), chaosBenches, chaosDepths, chaosModes, chaosBudget)
	// The first two Puts fail loudly (joined error); the rest go memory-
	// only. Either way every cell must be present and correct.
	if err == nil {
		t.Fatal("pre-trip put failures must surface in the joined error")
	}
	assertMatrixMatches(t, "degraded run", mx, baseline, true)
	if !c.Degraded() {
		t.Fatal("breaker not open after a run on a broken disk")
	}

	// A second engine over the same (still broken) cache: the overlay
	// serves every cell without re-simulating or touching the disk.
	warm := &Engine{Cache: c}
	mx2, err := warm.RunMatrix(context.Background(), chaosBenches, chaosDepths, chaosModes, chaosBudget)
	if err != nil {
		t.Fatalf("degraded warm run must succeed silently: %v", err)
	}
	assertMatrixMatches(t, "degraded warm run", mx2, baseline, true)
	if warm.Simulated() != 0 || warm.CacheHits() == 0 {
		t.Errorf("warm run: simulated %d, hits %d", warm.Simulated(), warm.CacheHits())
	}

	// Recovery: heal the disk, pass probation, and run once more — the
	// probe write flushes the whole overlay back out.
	ffs.Heal()
	now = now.Add(2 * time.Minute)
	extra := cacheSpec
	extra.MaxInsts = 777
	if err := c.Put(extra, cpu.Stats{Insts: 777}); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() || c.MemEntries() != 0 {
		t.Fatalf("after recovery: degraded = %v, overlay = %d", c.Degraded(), c.MemEntries())
	}
	c2, err := OpenCacheFS(dir, storage.OS{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold := &Engine{Cache: c2}
	mx3, err := cold.RunMatrix(context.Background(), chaosBenches, chaosDepths, chaosModes, chaosBudget)
	if err != nil {
		t.Fatal(err)
	}
	assertMatrixMatches(t, "post-recovery run", mx3, baseline, true)
	if cold.Simulated() != 0 {
		t.Errorf("flushed entries missed: simulated %d", cold.Simulated())
	}
}

// TestChaosCancellationGoroutineHygiene cancels a sweep mid-flight and
// asserts the three cancellation invariants: the error reports the
// cancellation cleanly, the goroutine count returns to its baseline
// (no leaked workers), and a subsequent warm run over the same storage
// is byte-identical to an uncanceled cold run.
func TestChaosCancellationGoroutineHygiene(t *testing.T) {
	baseline := chaosBaseline(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	c, err := OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the sweep: every cell must fail cleanly
	eng := &Engine{Cache: c}
	mx, err := eng.RunMatrix(ctx, chaosBenches, chaosDepths, chaosModes, chaosBudget)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep error = %v, want context.Canceled", err)
	}
	if mx.Len() != 0 {
		t.Errorf("canceled-before-start sweep produced %d cells", mx.Len())
	}

	// Cancel mid-run: a large budget crosses several checkpoint chunks.
	ctx2, cancel2 := context.WithCancel(context.Background())
	timer := time.AfterFunc(5*time.Millisecond, cancel2)
	defer timer.Stop()
	defer cancel2()
	_, err = eng.RunMatrix(ctx2, chaosBenches, chaosDepths, chaosModes, 50_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel error = %v, want context.Canceled", err)
	}

	// Bounded wait for the pool to wind down, then compare the count.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked by canceled runs: %d -> %d", before, after)
	}

	// The canceled runs must not have poisoned the cache: a warm run over
	// the same directory reproduces the uncanceled baseline exactly.
	warm := &Engine{Cache: c}
	mx3, err := warm.RunMatrix(context.Background(), chaosBenches, chaosDepths, chaosModes, chaosBudget)
	if err != nil {
		t.Fatal(err)
	}
	assertMatrixMatches(t, "warm after cancel", mx3, baseline, true)
	assertNoTmpOrphans(t, "after canceled runs", cacheDir)
}

// TestChaosOpenFailuresAreClean pins the open-time story: when even
// MkdirAll faults, opening reports a clean error instead of limping into
// undefined state.
func TestChaosOpenFailuresAreClean(t *testing.T) {
	ffs := storage.NewFaultFS(storage.OS{}, storage.Fault{Op: storage.OpMkdir, N: 1, Mode: storage.FaultErr})
	if _, err := OpenCacheFS(filepath.Join(t.TempDir(), "c"), ffs, nil); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("cache open error = %v, want ErrInjected", err)
	}
	ffs2 := storage.NewFaultFS(storage.OS{}, storage.Fault{Op: storage.OpMkdir, N: 1, Mode: storage.FaultErr})
	if _, err := OpenTraceStoreFS(filepath.Join(t.TempDir(), "t"), 0, ffs2, nil); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("trace store open error = %v, want ErrInjected", err)
	}
}

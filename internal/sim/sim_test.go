package sim

import (
	"context"

	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/workload"
)

func smallMatrix(t *testing.T, benches []string, depths []int, modes []cpu.PredMode) *Matrix {
	t.Helper()
	mx, err := RunMatrix(context.Background(), benches, depths, modes, 8000)
	if err != nil {
		t.Fatal(err)
	}
	return mx
}

func TestSimulateSingle(t *testing.T) {
	r, err := Simulate(Spec{Bench: "compress", Depth: 20, Mode: cpu.PredBaseline2Lvl, MaxInsts: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Insts != 5000 {
		t.Errorf("insts = %d", r.Stats.Insts)
	}
	if r.Stats.Cycles <= 0 || r.Stats.CondBranches == 0 {
		t.Errorf("degenerate stats: %+v", r.Stats)
	}
	if got := r.Spec.String(); !strings.Contains(got, "compress") || !strings.Contains(got, "20") {
		t.Errorf("spec string = %q", got)
	}
}

func TestRunAllOrderAndParallel(t *testing.T) {
	specs := []Spec{
		{Bench: "gcc", Depth: 20, Mode: cpu.PredBaseline2Lvl, MaxInsts: 4000},
		{Bench: "li", Depth: 40, Mode: cpu.PredARVICurrent, MaxInsts: 4000},
		{Bench: "perl", Depth: 60, Mode: cpu.PredARVIPerfect, MaxInsts: 4000},
	}
	res, err := RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if res[i].Spec != specs[i] {
			t.Errorf("result %d out of order: %v", i, res[i].Spec)
		}
		if res[i].Stats.Insts == 0 {
			t.Errorf("result %d empty", i)
		}
	}
}

func TestRunAllPartialResults(t *testing.T) {
	specs := []Spec{
		{Bench: "gcc", Depth: 20, Mode: cpu.PredBaseline2Lvl, MaxInsts: 4000},
		{Bench: "nosuch", Depth: 20, Mode: cpu.PredBaseline2Lvl, MaxInsts: 4000},
		{Bench: "li", Depth: 0, Mode: cpu.PredARVICurrent, MaxInsts: 4000}, // invalid depth
		{Bench: "perl", Depth: 40, Mode: cpu.PredARVIPerfect, MaxInsts: 4000},
	}
	res, err := RunAll(context.Background(), specs)
	if err == nil {
		t.Fatal("expected a joined error from the injected failures")
	}
	if len(res) != 2 {
		t.Fatalf("completed results = %d, want 2 (%v)", len(res), res)
	}
	if res[0].Spec != specs[0] || res[1].Spec != specs[3] {
		t.Errorf("surviving results out of order: %v, %v", res[0].Spec, res[1].Spec)
	}
	msg := err.Error()
	for _, want := range []string{"nosuch", "depth"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error %q missing %q", msg, want)
		}
	}
}

func TestSimulateUnknownBenchErrors(t *testing.T) {
	if _, err := Simulate(Spec{Bench: "nosuch", Depth: 20}); err == nil {
		t.Error("unknown benchmark must error, not panic")
	}
}

// TestMatrixLookup pins Lookup's behaviour on a deliberately partial grid:
// only (gcc, 20, baseline) and (li, 40, arvi-current) are populated, and
// every other combination of known and unknown coordinates must miss
// without panicking.
func TestMatrixLookup(t *testing.T) {
	var mx Matrix
	for _, s := range []Spec{
		{Bench: "gcc", Depth: 20, Mode: cpu.PredBaseline2Lvl, MaxInsts: 2000},
		{Bench: "li", Depth: 40, Mode: cpu.PredARVICurrent, MaxInsts: 2000},
	} {
		r, err := Simulate(s)
		if err != nil {
			t.Fatal(err)
		}
		mx.Add(r)
	}
	if mx.Len() != 2 {
		t.Fatalf("Len = %d", mx.Len())
	}
	cases := []struct {
		name  string
		bench string
		depth int
		mode  cpu.PredMode
		ok    bool
	}{
		{"populated cell", "gcc", 20, cpu.PredBaseline2Lvl, true},
		{"second populated cell", "li", 40, cpu.PredARVICurrent, true},
		{"right bench, wrong depth", "gcc", 40, cpu.PredBaseline2Lvl, false},
		{"right bench, wrong mode", "gcc", 20, cpu.PredARVICurrent, false},
		{"cross of two populated cells", "li", 20, cpu.PredBaseline2Lvl, false},
		{"bench absent from grid", "perl", 20, cpu.PredBaseline2Lvl, false},
		{"unknown bench", "nosuch", 20, cpu.PredBaseline2Lvl, false},
		{"empty bench", "", 20, cpu.PredBaseline2Lvl, false},
		{"depth never simulated", "gcc", 60, cpu.PredBaseline2Lvl, false},
		{"nonsense depth", "gcc", -1, cpu.PredBaseline2Lvl, false},
		{"nonsense mode", "gcc", 20, cpu.PredMode(99), false},
	}
	for _, c := range cases {
		st, ok := mx.Lookup(c.bench, c.depth, c.mode)
		if ok != c.ok {
			t.Errorf("%s: Lookup(%q, %d, %v) ok = %v, want %v",
				c.name, c.bench, c.depth, c.mode, ok, c.ok)
			continue
		}
		if ok && st.Insts == 0 {
			t.Errorf("%s: populated cell has empty stats", c.name)
		}
		if !ok && st != (cpu.Stats{}) {
			t.Errorf("%s: miss returned non-zero stats %+v", c.name, st)
		}
	}
}

// TestMatrixAblationCellsDoNotCollide pins the fix for the silent
// result-collision bug: adding an ablated result (CutAtLoads, or an
// explicit ConfThreshold) at the same (bench, depth, mode) coordinates as
// a baseline result must not overwrite the baseline cell.
func TestMatrixAblationCellsDoNotCollide(t *testing.T) {
	base := Spec{Bench: "gcc", Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: 2000}
	cut := base
	cut.CutAtLoads = true
	conf := base
	conf.ConfThreshold = 12

	var mx Matrix
	stats := make(map[string]cpu.Stats, 3)
	for name, s := range map[string]Spec{"base": base, "cut": cut, "conf": conf} {
		r, err := Simulate(s)
		if err != nil {
			t.Fatal(err)
		}
		stats[name] = r.Stats
		mx.Add(r)
	}
	if mx.Len() != 3 {
		t.Fatalf("Len = %d, want 3 distinct cells (ablation runs collided)", mx.Len())
	}
	got, ok := mx.Lookup("gcc", 20, cpu.PredARVICurrent)
	if !ok {
		t.Fatal("baseline cell missing")
	}
	if got != stats["base"] {
		t.Errorf("Lookup returned an ablated cell's stats:\nwant %+v\ngot  %+v", stats["base"], got)
	}
	for name, s := range map[string]Spec{"base": base, "cut": cut, "conf": conf} {
		st, ok := mx.LookupSpec(s)
		if !ok {
			t.Errorf("%s: LookupSpec missed its own cell", name)
			continue
		}
		if st != stats[name] {
			t.Errorf("%s: LookupSpec returned wrong stats", name)
		}
	}
	// The matrix agrees with the cache on spec identity: an explicit
	// ConfThreshold equal to the paper default is the same run (and the
	// same cache entry) as the baseline, so it is the same matrix cell.
	alias := base
	alias.ConfThreshold = base.Config().ConfThreshold
	if alias.Config() != base.Config() {
		t.Fatal("test premise broken: explicit default threshold derives a different config")
	}
	if st, ok := mx.LookupSpec(alias); !ok || st != stats["base"] {
		t.Errorf("explicit-default-threshold alias did not resolve to the baseline cell (ok=%v)", ok)
	}
}

// TestMatrixLookupZeroValue: the zero Matrix (no Add ever called, nil map)
// must miss cleanly, matching the partial-grid contract.
func TestMatrixLookupZeroValue(t *testing.T) {
	var mx Matrix
	if _, ok := mx.Lookup("gcc", 20, cpu.PredBaseline2Lvl); ok {
		t.Error("zero-value matrix reported a populated cell")
	}
	if mx.Len() != 0 {
		t.Errorf("Len = %d", mx.Len())
	}
}

// TestFigureTablesPartialGrid renders every figure against a grid holding
// a single benchmark at a single depth: every other cell must degrade to
// n/a instead of panicking.
func TestFigureTablesPartialGrid(t *testing.T) {
	mx := smallMatrix(t, []string{"gcc"}, []int{20}, Modes)
	for _, tb := range []Table{Fig5a(mx), Fig5b(mx, 20), Fig6Accuracy(mx, 40)} {
		var sb strings.Builder
		if err := tb.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	tb, summ := Fig6IPC(mx, 60) // depth entirely absent from the grid
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n/a") {
		t.Errorf("missing cells not marked:\n%s", sb.String())
	}
	if len(summ.Normalized[cpu.PredARVICurrent]) != 0 {
		t.Error("summary invented values for missing cells")
	}
	// The populated depth normalises exactly as before.
	_, s20 := Fig6IPC(mx, 20)
	if n := s20.Normalized[cpu.PredBaseline2Lvl]["gcc"]; n != 1 {
		t.Errorf("baseline normalised IPC = %v", n)
	}
}

func TestRunBoundsGoroutineSpawn(t *testing.T) {
	eng := &Engine{Workers: 2}
	var specs []Spec
	for _, b := range []string{"gcc", "li", "perl", "compress"} {
		specs = append(specs, Spec{Bench: b, Depth: 20, Mode: cpu.PredBaseline2Lvl, MaxInsts: 2000})
	}
	res, err := eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) || eng.Simulated() != int64(len(specs)) {
		t.Errorf("results = %d, simulated = %d", len(res), eng.Simulated())
	}
}

func TestMatrixGetPanicsOnMissing(t *testing.T) {
	mx := smallMatrix(t, []string{"gcc"}, []int{20}, []cpu.PredMode{cpu.PredBaseline2Lvl})
	defer func() {
		if recover() == nil {
			t.Error("Get on missing cell must panic")
		}
	}()
	mx.Get("li", 20, cpu.PredBaseline2Lvl)
}

func TestDeterministicRuns(t *testing.T) {
	s := Spec{Bench: "vortex", Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: 6000}
	a, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("same spec produced different stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestFigureTables(t *testing.T) {
	mx := smallMatrix(t, workload.Names, Depths, Modes)

	f5a := Fig5a(mx)
	if len(f5a.Rows) != len(workload.Names) || len(f5a.Header) != 4 {
		t.Errorf("fig5a shape: %d rows, %d cols", len(f5a.Rows), len(f5a.Header))
	}
	f5b := Fig5b(mx, 20)
	if len(f5b.Rows) != len(workload.Names) {
		t.Errorf("fig5b rows = %d", len(f5b.Rows))
	}
	f6a := Fig6Accuracy(mx, 20)
	if len(f6a.Rows) != len(workload.Names) || len(f6a.Header) != 5 {
		t.Errorf("fig6 accuracy shape wrong")
	}
	f6b, summ := Fig6IPC(mx, 20)
	if len(f6b.Rows) != len(workload.Names)+1 { // + average row
		t.Errorf("fig6 ipc rows = %d", len(f6b.Rows))
	}
	// The baseline column must be exactly 1.000 for every benchmark.
	for _, b := range workload.Names {
		if n := summ.Normalized[cpu.PredBaseline2Lvl][b]; n != 1 {
			t.Errorf("baseline normalised IPC for %s = %v", b, n)
		}
	}
	var sb strings.Builder
	if err := f6b.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "average") || !strings.Contains(out, "m88ksim") {
		t.Errorf("rendered table missing rows:\n%s", out)
	}
}

func TestStaticTables(t *testing.T) {
	t2 := Table2()
	if len(t2.Rows) < 8 {
		t.Errorf("table2 rows = %d", len(t2.Rows))
	}
	t4 := Table4()
	if len(t4.Rows) != 3 {
		t.Errorf("table4 rows = %d", len(t4.Rows))
	}
	// Table 4 ARVI row must show 6/12/18.
	got := strings.Join(t4.Rows[2], " ")
	for _, want := range []string{"6", "12", "18"} {
		if !strings.Contains(got, want) {
			t.Errorf("ARVI latency row %q missing %s", got, want)
		}
	}
}

func TestRenderAlignment(t *testing.T) {
	tb := Table{Title: "T", Note: "n", Header: []string{"a", "bb"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "2")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	// Title, note, header, rule, two rows.
	if len(lines) != 6 {
		t.Errorf("rendered %d lines:\n%s", len(lines), sb.String())
	}
}

// TestHeadlineShape verifies the paper's headline claims on a reduced
// budget: ARVI current-value beats the two-level baseline on average, and
// the advantage does not shrink from 20 to 60 stages.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shape needs a non-trivial instruction budget")
	}
	mx, err := RunMatrix(context.Background(), workload.Names, []int{20, 60}, Modes, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	_, s20 := Fig6IPC(mx, 20)
	_, s60 := Fig6IPC(mx, 60)
	if s20.AvgImprovement[cpu.PredARVICurrent] < 0.03 {
		t.Errorf("20-stage ARVI improvement = %+.3f, want >= +3%%",
			s20.AvgImprovement[cpu.PredARVICurrent])
	}
	if s60.AvgImprovement[cpu.PredARVICurrent] <= s20.AvgImprovement[cpu.PredARVICurrent] {
		t.Errorf("improvement must grow with depth: 20-stage %+.3f vs 60-stage %+.3f",
			s20.AvgImprovement[cpu.PredARVICurrent],
			s60.AvgImprovement[cpu.PredARVICurrent])
	}
	// m88ksim is the outlier winner at 20 stages.
	m, base := mx.Get("m88ksim", 20, cpu.PredARVICurrent), mx.Get("m88ksim", 20, cpu.PredBaseline2Lvl)
	if m.IPC() <= base.IPC()*1.05 {
		t.Errorf("m88ksim ARVI IPC %.3f must clearly beat baseline %.3f", m.IPC(), base.IPC())
	}
	// Perfect value is an upper bound on current value, on average.
	if s20.AvgImprovement[cpu.PredARVIPerfect] < s20.AvgImprovement[cpu.PredARVICurrent]-0.02 {
		t.Errorf("perfect (%+.3f) must not trail current (%+.3f)",
			s20.AvgImprovement[cpu.PredARVIPerfect], s20.AvgImprovement[cpu.PredARVICurrent])
	}
}

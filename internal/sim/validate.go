package sim

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// This file is the single home of the user-input validation rules shared
// by every front end — cmd/arvisim, cmd/experiments and the HTTP service
// (internal/server). The front ends differ in how a bad value arrives (a
// flag, a JSON field) and in how the rejection is delivered (exit status
// 2, a 4xx response), but the rule and the message text must not drift
// between them: internal/server's tests pin that an HTTP rejection carries
// exactly the message the CLI prints for the same bad value.

// ModeNames lists the accepted predictor-mode names in presentation
// order: the CLI aliases first. ParseMode additionally accepts each
// mode's cpu.PredMode.String() report name.
var ModeNames = []string{"baseline", "arvi-current", "arvi-loadback", "arvi-perfect"}

// ParseMode resolves a user-supplied predictor-mode name. It accepts the
// CLI alias "baseline" as well as the report name "2lvl-2bc-gskew" for
// the two-level baseline; the ARVI modes use their report names.
func ParseMode(name string) (cpu.PredMode, error) {
	switch name {
	case "baseline", cpu.PredBaseline2Lvl.String():
		return cpu.PredBaseline2Lvl, nil
	case cpu.PredARVICurrent.String():
		return cpu.PredARVICurrent, nil
	case cpu.PredARVILoadBack.String():
		return cpu.PredARVILoadBack, nil
	case cpu.PredARVIPerfect.String():
		return cpu.PredARVIPerfect, nil
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

// ValidateDepth rejects a non-positive pipeline depth. Depths other
// than the paper's 20/40/60 are deliberately allowed (LatenciesForDepth
// buckets them), but a zero or negative depth has no machine meaning.
func ValidateDepth(depth int) error {
	if depth <= 0 {
		return fmt.Errorf("depth %d out of range (need >= 1)", depth)
	}
	return nil
}

// ValidateBench rejects a benchmark name outside the compiled-in suite.
func ValidateBench(name string) error {
	if _, ok := workload.Lookup(name); !ok {
		return fmt.Errorf("unknown benchmark %q", name)
	}
	return nil
}

// ValidateConfThreshold rejects a JRS confidence-threshold override that
// a 4-bit counter could never reach (such a threshold would silently veto
// every ARVI override). Zero is valid and means "paper default", not
// "threshold 0"; see Spec.ConfThreshold. The parameter is uint so callers
// can validate raw flag/JSON values before narrowing to uint8.
func ValidateConfThreshold(v uint) error {
	if v > 15 {
		return fmt.Errorf("conf-threshold %d out of range (counters saturate at 15)", v)
	}
	return nil
}

// ValidateSpec applies every per-run rule to a spec built from user
// input: the benchmark must exist, the depth must be positive, and the
// threshold override must be reachable.
func ValidateSpec(s Spec) error {
	if err := ValidateBench(s.Bench); err != nil {
		return err
	}
	if err := ValidateDepth(s.Depth); err != nil {
		return err
	}
	return ValidateConfThreshold(uint(s.ConfThreshold))
}

// ValidateSMTCycles rejects a non-positive SMT cycle budget.
func ValidateSMTCycles(cycles int64) error {
	if cycles <= 0 {
		return fmt.Errorf("-smt-cycles %d out of range (need >= 1)", cycles)
	}
	return nil
}

// ValidateDepThreshold rejects a non-positive criticality cut: threshold
// 0 would make the "selective" value-prediction cells identical to the
// all-instructions cells, silently collapsing the ablation.
func ValidateDepThreshold(th int) error {
	if th <= 0 {
		return fmt.Errorf("-dep-threshold %d out of range (need >= 1)", th)
	}
	return nil
}

// ValidateMix rejects a mix name outside the canonical SMT mix set.
func ValidateMix(name string) error {
	if _, ok := workload.LookupMix(name); !ok {
		return fmt.Errorf("unknown mix %q", name)
	}
	return nil
}

// ValidatePredictor rejects a value-predictor family name that
// VPredStudy could not instantiate.
func ValidatePredictor(name string) error {
	for _, p := range VPredPredictors {
		if p == name {
			return nil
		}
	}
	return fmt.Errorf("unknown value predictor %q", name)
}

package sim

import (
	"context"

	"os"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/workload"
)

const storeLoopSrc = `
    .data
tab: .word 4, 7, 1, 9
    .text
main:
    li  r1, 0
    li  r2, 600
loop:
    andi r3, r1, 3
    slli r3, r3, 3
    lw  r4, tab(r3)
    add r5, r5, r4
    addi r1, r1, 1
    bne r1, r2, loop
    halt
`

const storeLoop2Src = `
    .text
main:
    li  r1, 0
    li  r2, 600
loop:
    addi r1, r1, 1
    xori r6, r1, 5
    add r5, r5, r6
    bne r1, r2, loop
    halt
`

func memStore(t *testing.T, budget int64) *TraceStore {
	t.Helper()
	s, err := OpenTraceStore("", budget)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTraceStoreMatchesLiveSimulation is the determinism contract of the
// whole trace tier: for every workload, simulating through a recorded
// trace must produce statistics identical to a live functional-VM run.
func TestTraceStoreMatchesLiveSimulation(t *testing.T) {
	store := memStore(t, 0)
	eng := &Engine{Traces: store}
	const budget = 4000
	for _, name := range workload.Names {
		spec := Spec{Bench: name, Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: budget}
		live, err := Simulate(spec)
		if err != nil {
			t.Fatalf("%s: live: %v", name, err)
		}
		traced, err := eng.simulate(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: traced: %v", name, err)
		}
		if live.Stats != traced.Stats {
			t.Errorf("%s: replayed stats diverged from live:\nlive   %+v\nreplay %+v",
				name, live.Stats, traced.Stats)
		}
	}
	if got := store.Recorded(); got != int64(len(workload.Names)) {
		t.Errorf("recorded %d traces, want %d", got, len(workload.Names))
	}
}

// TestRunMatrixExecutesEachBenchmarkOnce is the acceptance criterion for
// the trace tier: a sweep with several predictor modes per benchmark runs
// the functional VM exactly once per benchmark, and every replayed cell
// matches a live simulation bit for bit.
func TestRunMatrixExecutesEachBenchmarkOnce(t *testing.T) {
	store := memStore(t, 0)
	eng := &Engine{Traces: store}
	benches := []string{"gcc", "li"}
	depths := []int{20, 40}
	modes := []cpu.PredMode{cpu.PredBaseline2Lvl, cpu.PredARVICurrent, cpu.PredARVIPerfect}
	const budget = 3000

	mx, err := eng.RunMatrix(context.Background(), benches, depths, modes, budget)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Len() != len(benches)*len(depths)*len(modes) {
		t.Fatalf("matrix cells = %d", mx.Len())
	}
	if got := store.Recorded(); got != int64(len(benches)) {
		t.Errorf("functional VM executed %d times for %d benchmarks", got, len(benches))
	}
	for _, b := range benches {
		for _, d := range depths {
			for _, m := range modes {
				live, err := Simulate(Spec{Bench: b, Depth: d, Mode: m, MaxInsts: budget})
				if err != nil {
					t.Fatal(err)
				}
				got, ok := mx.Lookup(b, d, m)
				if !ok {
					t.Fatalf("missing cell %s/%d/%v", b, d, m)
				}
				if got != live.Stats {
					t.Errorf("%s/%d/%v: replay != live", b, d, m)
				}
			}
		}
	}
}

func TestTraceStoreSingleflight(t *testing.T) {
	store := memStore(t, 0)
	p := asm.MustAssemble("sf", storeLoopSrc)
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := store.Get(context.Background(), p, 2000); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if store.Recorded() != 1 {
		t.Errorf("recorded %d times under concurrent demand, want 1", store.Recorded())
	}
	if store.Entries() != 1 {
		t.Errorf("entries = %d", store.Entries())
	}
}

func TestTraceStoreKeyedByBudgetAndProgram(t *testing.T) {
	store := memStore(t, 0)
	a := asm.MustAssemble("a", storeLoopSrc)
	b := asm.MustAssemble("b", storeLoop2Src)
	da, err := store.Get(context.Background(), a, 1000)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Get(context.Background(), b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if da == db {
		t.Error("different programs shared one trace")
	}
	d2, err := store.Get(context.Background(), a, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if d2 == da {
		t.Error("different budgets shared one trace")
	}
	if d2.Len() != 2000 || da.Len() != 1000 {
		t.Errorf("lens = %d, %d", d2.Len(), da.Len())
	}
	if store.Recorded() != 3 {
		t.Errorf("recorded = %d, want 3", store.Recorded())
	}
	// Same program re-assembled (new pointer, same content) is a hit.
	again, err := store.Get(context.Background(), asm.MustAssemble("a", storeLoopSrc), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if again != da {
		t.Error("content-identical program missed the store")
	}
	if store.MemHits() == 0 {
		t.Error("no memory hits counted")
	}
}

func TestTraceStoreLRUEviction(t *testing.T) {
	// Budget fits one 1000-event trace but not two.
	store := memStore(t, 40_000)
	a := asm.MustAssemble("a", storeLoopSrc)
	b := asm.MustAssemble("b", storeLoop2Src)
	da, err := store.Get(context.Background(), a, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(context.Background(), b, 1000); err != nil {
		t.Fatal(err)
	}
	if store.Entries() != 1 {
		t.Errorf("entries after eviction = %d, want 1", store.Entries())
	}
	if store.MemUsed() > 40_000 {
		t.Errorf("resident %d bytes over budget", store.MemUsed())
	}
	// The evicted trace is still fully usable by its holder.
	if da.Len() != 1000 {
		t.Errorf("evicted trace lost events: %d", da.Len())
	}
	// Re-requesting the evicted program re-records (memory-only store).
	if _, err := store.Get(context.Background(), a, 1000); err != nil {
		t.Fatal(err)
	}
	if store.Recorded() != 3 {
		t.Errorf("recorded = %d, want 3 (a, b, a-again)", store.Recorded())
	}
}

func TestTraceStoreDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	p := asm.MustAssemble("disk", storeLoopSrc)

	s1, err := OpenTraceStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s1.Get(context.Background(), p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Recorded() != 1 || s1.PersistErrs() != 0 {
		t.Fatalf("recorded = %d, persistErrs = %d", s1.Recorded(), s1.PersistErrs())
	}
	if _, err := os.Stat(s1.Path(p, 1500)); err != nil {
		t.Fatalf("trace file not persisted: %v", err)
	}

	// A fresh store (fresh process) loads from disk without running the VM.
	s2, err := OpenTraceStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s2.Get(context.Background(), p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Recorded() != 0 || s2.DiskHits() != 1 {
		t.Errorf("recorded = %d, diskHits = %d; want 0, 1", s2.Recorded(), s2.DiskHits())
	}
	if d1.Len() != d2.Len() {
		t.Errorf("disk round trip changed length: %d != %d", d1.Len(), d2.Len())
	}
}

func TestTraceStoreSelfHealsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	p := asm.MustAssemble("heal", storeLoopSrc)
	s, err := OpenTraceStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(p, 1000), []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	dec, err := s.Get(context.Background(), p, 1000)
	if err != nil {
		t.Fatalf("corrupt file not healed: %v", err)
	}
	if dec.Len() != 1000 || s.Recorded() != 1 {
		t.Errorf("len = %d, recorded = %d", dec.Len(), s.Recorded())
	}
	// The healed file now round-trips.
	s2, _ := OpenTraceStore(dir, 0)
	if _, err := s2.Get(context.Background(), p, 1000); err != nil || s2.DiskHits() != 1 {
		t.Errorf("healed file unreadable: %v (diskHits %d)", err, s2.DiskHits())
	}

	// Corrupt the count field of the (valid) persisted file: the store
	// must also re-record through that, not crash or serve a short trace.
	path := s2.Path(p, 1000)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		raw[32+8+32+i] = 0xff // count field sits after store sum+magic+fingerprint
	}
	raw[32+8+32] = 0xfe // not the unknown-count sentinel
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, _ := OpenTraceStore(dir, 0)
	dec3, err := s3.Get(context.Background(), p, 1000)
	if err != nil {
		t.Fatalf("corrupt count not healed: %v", err)
	}
	if dec3.Len() != 1000 || s3.Recorded() != 1 {
		t.Errorf("after count corruption: len = %d, recorded = %d", dec3.Len(), s3.Recorded())
	}
}

func TestEngineWithCacheAndTraces(t *testing.T) {
	// The two tiers compose: first run records once and simulates every
	// cell; second run (fresh engine, same cache) touches neither the VM
	// nor the timing model.
	cacheDir := t.TempDir()
	c, err := OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	store := memStore(t, 0)
	modes := []cpu.PredMode{cpu.PredBaseline2Lvl, cpu.PredARVICurrent, cpu.PredARVIPerfect}

	e1 := &Engine{Cache: c, Traces: store}
	if _, err := e1.RunMatrix(context.Background(), []string{"compress"}, []int{20}, modes, 2500); err != nil {
		t.Fatal(err)
	}
	if store.Recorded() != 1 || e1.Simulated() != int64(len(modes)) {
		t.Errorf("cold run: recorded = %d, simulated = %d", store.Recorded(), e1.Simulated())
	}

	e2 := &Engine{Cache: c, Traces: memStore(t, 0)}
	if _, err := e2.RunMatrix(context.Background(), []string{"compress"}, []int{20}, modes, 2500); err != nil {
		t.Fatal(err)
	}
	if e2.Traces.Recorded() != 0 || e2.Simulated() != 0 || e2.CacheHits() != int64(len(modes)) {
		t.Errorf("warm run: recorded = %d, simulated = %d, cacheHits = %d",
			e2.Traces.Recorded(), e2.Simulated(), e2.CacheHits())
	}
}

func TestTraceStoreUnknownBenchStillErrors(t *testing.T) {
	eng := &Engine{Traces: memStore(t, 0)}
	if _, err := eng.simulate(context.Background(), Spec{Bench: "nosuch", Depth: 20}); err == nil {
		t.Error("unknown benchmark must error through the trace path too")
	}
}

// Package sim is the experiment harness: it runs (benchmark × pipeline
// depth × predictor mode) simulations, in parallel, and renders the paper's
// tables and figures from the results.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// DefaultMaxInsts is the per-run dynamic instruction budget used by the
// experiment drivers. The workloads reach steady state well within it.
const DefaultMaxInsts = 250_000

// Spec identifies one simulation run.
type Spec struct {
	Bench    string
	Depth    int
	Mode     cpu.PredMode
	MaxInsts int64
	// CutAtLoads selects the DDT chain-semantics ablation.
	CutAtLoads bool
	// ConfThreshold overrides the JRS threshold when non-zero.
	ConfThreshold uint8
}

// String names the run.
func (s Spec) String() string {
	return fmt.Sprintf("%s/%dstage/%s", s.Bench, s.Depth, s.Mode)
}

// Result pairs a spec with its statistics.
type Result struct {
	Spec  Spec
	Stats cpu.Stats
}

// Simulate executes one run.
func Simulate(spec Spec) (Result, error) {
	b := workload.ByName(spec.Bench)
	cfg := cpu.DefaultConfig(spec.Depth, spec.Mode)
	cfg.MaxInsts = spec.MaxInsts
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = DefaultMaxInsts
	}
	cfg.CutAtLoads = spec.CutAtLoads
	if spec.ConfThreshold != 0 {
		cfg.ConfThreshold = spec.ConfThreshold
	}
	st, err := cpu.Run(b.Prog, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", spec, err)
	}
	return Result{Spec: spec, Stats: st}, nil
}

// RunAll executes the given specs concurrently (bounded by GOMAXPROCS) and
// returns results in spec order.
func RunAll(specs []Spec) ([]Result, error) {
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Simulate(s)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Modes lists the four Section 5 configurations in presentation order.
var Modes = []cpu.PredMode{
	cpu.PredBaseline2Lvl,
	cpu.PredARVICurrent,
	cpu.PredARVILoadBack,
	cpu.PredARVIPerfect,
}

// Depths lists the evaluated pipeline depths.
var Depths = []int{20, 40, 60}

// matrixKey indexes a result grid.
type matrixKey struct {
	bench string
	depth int
	mode  cpu.PredMode
}

// Matrix holds a grid of results addressable by (bench, depth, mode).
type Matrix struct {
	m        map[matrixKey]cpu.Stats
	MaxInsts int64
}

// RunMatrix runs every (bench × depth × mode) combination requested.
func RunMatrix(benches []string, depths []int, modes []cpu.PredMode, maxInsts int64) (*Matrix, error) {
	var specs []Spec
	for _, b := range benches {
		for _, d := range depths {
			for _, md := range modes {
				specs = append(specs, Spec{Bench: b, Depth: d, Mode: md, MaxInsts: maxInsts})
			}
		}
	}
	res, err := RunAll(specs)
	if err != nil {
		return nil, err
	}
	mx := &Matrix{m: make(map[matrixKey]cpu.Stats, len(res)), MaxInsts: maxInsts}
	for _, r := range res {
		mx.m[matrixKey{r.Spec.Bench, r.Spec.Depth, r.Spec.Mode}] = r.Stats
	}
	return mx, nil
}

// Get returns the stats for one cell; it panics on a missing cell (caller
// bug: the cell was not part of the requested grid).
func (m *Matrix) Get(bench string, depth int, mode cpu.PredMode) cpu.Stats {
	st, ok := m.m[matrixKey{bench, depth, mode}]
	if !ok {
		panic(fmt.Sprintf("sim: no result for %s/%d/%v", bench, depth, mode))
	}
	return st
}

package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultMaxInsts is the per-run dynamic instruction budget used by the
// experiment drivers. The workloads reach steady state well within it.
const DefaultMaxInsts = 250_000

// Spec identifies one simulation run.
type Spec struct {
	Bench    string
	Depth    int
	Mode     cpu.PredMode
	MaxInsts int64
	// CutAtLoads selects the DDT chain-semantics ablation.
	CutAtLoads bool
	// ConfThreshold overrides the JRS threshold when non-zero. Zero means
	// "use the paper default" (cpu.DefaultConfig's 8), NOT "threshold 0";
	// there is no way to request a literal threshold of zero, which would
	// make every branch permanently high-confidence. Valid overrides are
	// 1..15 (the 4-bit JRS counter maximum); larger values are rejected by
	// the simulator (bpred.NewConfidence).
	ConfThreshold uint8
}

// String names the run.
func (s Spec) String() string {
	return fmt.Sprintf("%s/%dstage/%s", s.Bench, s.Depth, s.Mode)
}

// Config derives the full machine configuration the spec simulates. It is
// the single source of truth shared by Simulate and the result cache, so a
// cache entry can never be served for a run that would have used different
// timing parameters.
func (s Spec) Config() cpu.Config {
	cfg := cpu.DefaultConfig(s.Depth, s.Mode)
	cfg.MaxInsts = s.MaxInsts
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = DefaultMaxInsts
	}
	cfg.CutAtLoads = s.CutAtLoads
	if s.ConfThreshold != 0 {
		cfg.ConfThreshold = s.ConfThreshold
	}
	return cfg
}

// Result pairs a spec with its statistics.
type Result struct {
	Spec  Spec
	Stats cpu.Stats
}

// Simulate executes one run.
func Simulate(spec Spec) (Result, error) {
	b, ok := workload.Lookup(spec.Bench)
	if !ok {
		return Result{}, fmt.Errorf("sim: %s: unknown benchmark %q", spec, spec.Bench)
	}
	st, err := cpu.Run(b.Prog, spec.Config())
	if err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", spec, err)
	}
	return Result{Spec: spec, Stats: st}, nil
}

// Engine runs batches of specs on a bounded worker pool, optionally backed
// by a persistent result cache and a record-once/replay-many trace store.
// The zero value is usable: GOMAXPROCS workers, no cache, live-VM
// execution.
type Engine struct {
	// Workers bounds concurrent simulations (and goroutine spawn);
	// <= 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, is consulted before simulating and updated
	// after every successful run.
	Cache *Cache
	// Traces, when non-nil, supplies each benchmark's correct-path
	// dynamic stream from a shared recorded trace instead of a private
	// functional-VM run, so N configurations of one benchmark cost one VM
	// execution plus N timing replays. Replayed statistics are identical
	// to live-VM statistics (the determinism contract the result cache
	// already relies on; see TestTraceStoreMatchesLiveSimulation).
	Traces *TraceStore

	simulated atomic.Int64
	cacheHits atomic.Int64

	// enginePools recycles cpu.Engines per configuration fingerprint:
	// a sweep resets and reuses an engine for every cell that shares a
	// machine configuration instead of re-allocating its tables, rings
	// and DDT matrix per cell (cpu.Engine.Reset is pinned bit-identical
	// to a fresh engine by TestEngineResetDeterminism).
	enginePools sync.Map // string -> *sync.Pool of *cpu.Engine
}

// engineFor returns a reusable engine for the configuration, freshly reset.
// Return it with putEngine after the run.
func (e *Engine) engineFor(cfg cpu.Config) (*cpu.Engine, *sync.Pool, error) {
	pi, _ := e.enginePools.LoadOrStore(cfg.Fingerprint(), &sync.Pool{})
	pool := pi.(*sync.Pool)
	if v := pool.Get(); v != nil {
		eng := v.(*cpu.Engine)
		eng.Reset()
		return eng, pool, nil
	}
	eng, err := cpu.NewEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	return eng, pool, nil
}

// Simulated reports how many cells this engine actually simulated (cache
// misses) over its lifetime.
func (e *Engine) Simulated() int64 { return e.simulated.Load() }

// CacheHits reports how many cells were served from the cache.
func (e *Engine) CacheHits() int64 { return e.cacheHits.Load() }

// run executes one spec through the cache. A cache persistence failure is
// reported separately from a simulation failure: the simulated result is
// still valid and must not be discarded just because it could not be
// written back. Cancellation is checked here, between specs, and again at
// trace-replay chunk boundaries inside the engine — never inside the
// per-instruction hot loop.
func (e *Engine) run(ctx context.Context, spec Spec) (res Result, simErr, cacheErr error) {
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", spec, err), nil
	}
	if e.Cache != nil {
		if st, ok := e.Cache.Get(spec); ok {
			e.cacheHits.Add(1)
			return Result{Spec: spec, Stats: st}, nil, nil
		}
	}
	res, simErr = e.simulate(ctx, spec)
	if simErr != nil {
		return Result{}, simErr, nil
	}
	e.simulated.Add(1)
	if e.Cache != nil {
		if err := e.Cache.Put(spec, res.Stats); err != nil {
			cacheErr = fmt.Errorf("sim: cache %s (result kept): %w", spec, err)
		}
	}
	return res, nil, cacheErr
}

// simulate executes one spec on a pooled engine, through the trace store
// when the engine has one: the store yields the benchmark's shared decoded
// trace (recording it on first request) and only the timing model runs per
// spec.
func (e *Engine) simulate(ctx context.Context, spec Spec) (Result, error) {
	b, ok := workload.Lookup(spec.Bench)
	if !ok {
		return Result{}, fmt.Errorf("sim: %s: unknown benchmark %q", spec, spec.Bench)
	}
	cfg := spec.Config()
	eng, pool, err := e.engineFor(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", spec, err)
	}
	// Return the engine on every path, including failures: engineFor
	// resets on reuse, so a dirty engine is safe to pool.
	defer pool.Put(eng)
	var st cpu.Stats
	if e.Traces == nil {
		st, err = eng.RunContext(ctx, b.Prog)
	} else {
		var dec *trace.Decoded
		dec, err = e.Traces.Get(ctx, b.Prog, cfg.MaxInsts)
		if err != nil {
			return Result{}, fmt.Errorf("sim: %s: %w", spec, err)
		}
		// Replay against the trace's own program instance so the cursor's
		// decoded instructions and the engine's wrong-path text agree.
		st, err = eng.RunSourceContext(ctx, dec.Prog(), dec.Cursor())
	}
	if err != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", spec, err)
	}
	return Result{Spec: spec, Stats: st}, nil
}

// pool executes n independent jobs on the engine's bounded worker pool.
// A worker slot is acquired *before* each goroutine is spawned, so a batch
// of N jobs with W workers never holds more than W live goroutines. Every
// study family (branch prediction, SMT, value prediction) funnels through
// this one pool, so -workers bounds the whole process's concurrency.
//
// Once ctx is canceled the remaining jobs run inline instead of being
// spawned: each job still executes (it must record its ctx error so the
// caller's per-spec error slots are filled), but it takes the fast
// cancellation path and no new goroutines are created. pool always
// returns with every spawned goroutine finished — cancellation can never
// leak workers.
func (e *Engine) pool(ctx context.Context, n int, job func(i int)) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			job(i) // fast-fail path: records the cancellation error
			continue
		}
		sem <- struct{}{} // bound spawn, not just execution
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			job(i)
		}(i)
	}
	wg.Wait()
}

// Run executes the given specs on the worker pool and returns the results
// of every spec that completed, in spec order. Unlike a fail-fast runner it
// never discards finished work: when some specs fail, the completed
// results are returned alongside the per-spec errors joined with
// errors.Join. Cache persistence failures are joined into the error too,
// but their results are completed simulations and stay in the result set.
//
// Cancellation follows the same partial-result contract: cells finished
// before ctx was canceled are returned, the rest contribute joined
// context errors.
func (e *Engine) Run(ctx context.Context, specs []Spec) ([]Result, error) {
	return e.RunEach(ctx, specs, nil)
}

// RunEach is Run with a completion hook: done (when non-nil) is invoked
// once per spec as that spec settles, from the worker goroutine that ran
// it, so callers can stream incremental cell results while the sweep is
// still in flight. done receives the spec's index alongside the outcome;
// a spec that failed reports its simErr and a zero Result. done must be
// safe for concurrent use. The returned slice and joined error follow
// Run's partial-result contract exactly.
func (e *Engine) RunEach(ctx context.Context, specs []Spec, done func(i int, r Result, simErr, cacheErr error)) ([]Result, error) {
	results := make([]Result, len(specs))
	simErrs := make([]error, len(specs))
	cacheErrs := make([]error, len(specs))
	e.pool(ctx, len(specs), func(i int) {
		results[i], simErrs[i], cacheErrs[i] = e.run(ctx, specs[i])
		if done != nil {
			done(i, results[i], simErrs[i], cacheErrs[i])
		}
	})
	finished := results[:0]
	for i := range results {
		if simErrs[i] == nil {
			finished = append(finished, results[i])
		}
	}
	return finished, errors.Join(append(simErrs, cacheErrs...)...)
}

// MatrixSpecs enumerates the (bench × depth × mode) grid in the canonical
// bench-major order RunMatrix simulates. It is the shared cell-extraction
// step between the local runner and the distributed coordinator: both
// must decompose a matrix request into exactly these specs, in exactly
// this order, for their merged renderings to agree byte for byte.
func MatrixSpecs(benches []string, depths []int, modes []cpu.PredMode, maxInsts int64) []Spec {
	specs := make([]Spec, 0, len(benches)*len(depths)*len(modes))
	for _, b := range benches {
		for _, d := range depths {
			for _, md := range modes {
				specs = append(specs, Spec{Bench: b, Depth: d, Mode: md, MaxInsts: maxInsts})
			}
		}
	}
	return specs
}

// RunMatrix runs every (bench × depth × mode) combination requested and
// collects the completed cells into a Matrix. On partial failure the
// matrix holds every completed cell and the error joins the per-cell
// failures; renderers that go through Matrix.Lookup degrade gracefully.
func (e *Engine) RunMatrix(ctx context.Context, benches []string, depths []int, modes []cpu.PredMode, maxInsts int64) (*Matrix, error) {
	res, err := e.Run(ctx, MatrixSpecs(benches, depths, modes, maxInsts))
	mx := &Matrix{m: make(map[matrixKey]cpu.Stats, len(res)), MaxInsts: maxInsts}
	for _, r := range res {
		mx.Add(r)
	}
	if err != nil {
		return mx, err
	}
	return mx, nil
}

// RunAll executes the given specs concurrently (bounded by GOMAXPROCS) on
// a throwaway uncached Engine. See Engine.Run for the partial-result
// contract.
func RunAll(ctx context.Context, specs []Spec) ([]Result, error) {
	var e Engine
	return e.Run(ctx, specs)
}

// RunMatrix runs the grid on a throwaway uncached Engine.
func RunMatrix(ctx context.Context, benches []string, depths []int, modes []cpu.PredMode, maxInsts int64) (*Matrix, error) {
	var e Engine
	return e.RunMatrix(ctx, benches, depths, modes, maxInsts)
}

// Modes lists the four Section 5 configurations in presentation order.
var Modes = []cpu.PredMode{
	cpu.PredBaseline2Lvl,
	cpu.PredARVICurrent,
	cpu.PredARVILoadBack,
	cpu.PredARVIPerfect,
}

// Depths lists the evaluated pipeline depths.
var Depths = []int{20, 40, 60}

// matrixKey indexes a result grid by the full spec identity (minus the
// instruction budget, which is a per-matrix property). The ablation knobs
// are part of the key: an ablated run (CutAtLoads, or an explicit
// ConfThreshold override) occupies its own cell instead of silently
// overwriting the baseline result at the same (bench, depth, mode)
// coordinates.
type matrixKey struct {
	bench         string
	depth         int
	mode          cpu.PredMode
	cutAtLoads    bool
	confThreshold uint8
}

// specKey normalises a spec into its matrix cell identity. The threshold
// is the *effective* one the run uses (Spec.Config resolves the 0-means-
// default alias), so the matrix agrees with the cache on spec identity:
// an explicit ConfThreshold equal to the paper default lands in the same
// cell as the baseline spec, exactly as it shares the baseline's cache
// entry.
func specKey(s Spec) matrixKey {
	return matrixKey{s.Bench, s.Depth, s.Mode, s.CutAtLoads, s.Config().ConfThreshold}
}

// Matrix holds a grid of results addressable by (bench, depth, mode). A
// matrix may be partial: renderers should use Lookup and skip or mark
// missing cells.
type Matrix struct {
	m        map[matrixKey]cpu.Stats
	MaxInsts int64
}

// Add inserts one completed result into the grid, keyed by the result's
// full spec identity; ablation cells coexist with their baseline siblings.
func (m *Matrix) Add(r Result) {
	if m.m == nil {
		m.m = make(map[matrixKey]cpu.Stats)
	}
	m.m[specKey(r.Spec)] = r.Stats
}

// Len reports the number of populated cells.
func (m *Matrix) Len() int { return len(m.m) }

// Lookup returns the stats for one non-ablated cell (CutAtLoads false,
// default ConfThreshold) and whether it is populated. Renderers use it so
// that partial grids (crashed or still-resuming sweeps) degrade to "n/a"
// cells instead of panicking. Ablation cells are addressed with
// LookupSpec.
func (m *Matrix) Lookup(bench string, depth int, mode cpu.PredMode) (cpu.Stats, bool) {
	st, ok := m.m[specKey(Spec{Bench: bench, Depth: depth, Mode: mode})]
	return st, ok
}

// LookupSpec returns the stats for the cell with the spec's exact
// identity, including the ablation knobs.
func (m *Matrix) LookupSpec(s Spec) (cpu.Stats, bool) {
	st, ok := m.m[specKey(s)]
	return st, ok
}

// Get returns the stats for one cell; it panics on a missing cell (caller
// bug: the cell was not part of the requested grid). Prefer Lookup
// anywhere a partial grid is possible.
func (m *Matrix) Get(bench string, depth int, mode cpu.PredMode) cpu.Stats {
	st, ok := m.Lookup(bench, depth, mode)
	if !ok {
		panic(fmt.Sprintf("sim: no result for %s/%d/%v", bench, depth, mode))
	}
	return st
}

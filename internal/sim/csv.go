package sim

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/workload"
)

// WriteCSV exports the full result matrix as tidy CSV (one row per
// benchmark × depth × mode) for external plotting: IPC, normalized IPC,
// accuracy, class accuracies and load-branch fraction.
func (m *Matrix) WriteCSV(w io.Writer, depths []int) error {
	cw := csv.NewWriter(w)
	header := []string{
		"bench", "depth", "mode", "ipc", "norm_ipc", "accuracy",
		"calc_acc", "load_acc", "load_frac", "mispredicts", "cond_branches",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, b := range workload.Names {
		for _, d := range depths {
			base := m.Get(b, d, Modes[0]).IPC()
			for _, md := range Modes {
				st := m.Get(b, d, md)
				rec := []string{
					b,
					fmt.Sprintf("%d", d),
					md.String(),
					fmt.Sprintf("%.4f", st.IPC()),
					fmt.Sprintf("%.4f", st.IPC()/base),
					fmt.Sprintf("%.4f", st.PredAccuracy()),
					fmt.Sprintf("%.4f", st.ClassAccuracy(0)),
					fmt.Sprintf("%.4f", st.ClassAccuracy(1)),
					fmt.Sprintf("%.4f", st.LoadBranchFraction()),
					fmt.Sprintf("%d", st.Mispredicts),
					fmt.Sprintf("%d", st.CondBranches),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

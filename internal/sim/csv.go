package sim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// Record is one exported matrix cell with its derived metrics and the
// full raw stats. NormIPC is nil when the cell's baseline sibling is
// missing (partial grid): JSON consumers see null, CSV an empty field.
type Record struct {
	Bench        string    `json:"bench"`
	Depth        int       `json:"depth"`
	Mode         string    `json:"mode"`
	IPC          float64   `json:"ipc"`
	NormIPC      *float64  `json:"norm_ipc"`
	Accuracy     float64   `json:"accuracy"`
	CalcAcc      float64   `json:"calc_acc"`
	LoadAcc      float64   `json:"load_acc"`
	LoadFrac     float64   `json:"load_frac"`
	Mispredicts  int64     `json:"mispredicts"`
	CondBranches int64     `json:"cond_branches"`
	Stats        cpu.Stats `json:"stats"`
}

// Records flattens the populated cells of the matrix into tidy rows (one
// per benchmark × depth × mode, suite order). Missing cells are skipped,
// so a partial grid exports exactly what completed.
//
//arvi:det
func (m *Matrix) Records(depths []int) []Record {
	var out []Record
	for _, b := range workload.Names {
		for _, d := range depths {
			base, baseOK := m.Lookup(b, d, Modes[0])
			for _, md := range Modes {
				st, ok := m.Lookup(b, d, md)
				if !ok {
					continue
				}
				var norm *float64
				if baseOK && base.IPC() != 0 {
					n := st.IPC() / base.IPC()
					norm = &n
				}
				out = append(out, Record{
					Bench:        b,
					Depth:        d,
					Mode:         md.String(),
					IPC:          st.IPC(),
					NormIPC:      norm,
					Accuracy:     st.PredAccuracy(),
					CalcAcc:      st.ClassAccuracy(cpu.ClassCalculated),
					LoadAcc:      st.ClassAccuracy(cpu.ClassLoad),
					LoadFrac:     st.LoadBranchFraction(),
					Mispredicts:  st.Mispredicts,
					CondBranches: st.CondBranches,
					Stats:        st,
				})
			}
		}
	}
	return out
}

// WriteCSV exports the populated result matrix as tidy CSV (one row per
// benchmark × depth × mode) for external plotting: IPC, normalized IPC,
// accuracy, class accuracies and load-branch fraction.
//
//arvi:det
func (m *Matrix) WriteCSV(w io.Writer, depths []int) error {
	cw := csv.NewWriter(w)
	header := []string{
		"bench", "depth", "mode", "ipc", "norm_ipc", "accuracy",
		"calc_acc", "load_acc", "load_frac", "mispredicts", "cond_branches",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range m.Records(depths) {
		norm := ""
		if r.NormIPC != nil {
			norm = fmt.Sprintf("%.4f", *r.NormIPC)
		}
		rec := []string{
			r.Bench,
			fmt.Sprintf("%d", r.Depth),
			r.Mode,
			fmt.Sprintf("%.4f", r.IPC),
			norm,
			fmt.Sprintf("%.4f", r.Accuracy),
			fmt.Sprintf("%.4f", r.CalcAcc),
			fmt.Sprintf("%.4f", r.LoadAcc),
			fmt.Sprintf("%.4f", r.LoadFrac),
			fmt.Sprintf("%d", r.Mispredicts),
			fmt.Sprintf("%d", r.CondBranches),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonExport is the envelope WriteJSON emits: the run parameters plus one
// object per populated cell, with the full raw Stats alongside the
// derived metrics.
type jsonExport struct {
	MaxInsts int64    `json:"max_insts"`
	Cells    []Record `json:"cells"`
}

// WriteJSON exports the populated matrix cells as indented JSON, raw
// Stats included, for downstream tooling that wants more than the CSV's
// derived metrics.
//
//arvi:det
func (m *Matrix) WriteJSON(w io.Writer, depths []int) error {
	cells := m.Records(depths)
	if cells == nil {
		cells = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jsonExport{MaxInsts: m.MaxInsts, Cells: cells})
}

package sim

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/prog"
	"repro/internal/smt"
	"repro/internal/workload"
)

// SMTPolicies lists the compared fetch policies in presentation order:
// the paper's dependence-length proposal against Tullsen's ICOUNT and
// blind round-robin.
var SMTPolicies = []smt.Policy{smt.RoundRobin, smt.ICOUNT, smt.DepLength}

// SMTStats is the serialisable result of one SMT study cell.
type SMTStats struct {
	Cycles     int64   `json:"cycles"`
	TotalInsts int64   `json:"total_insts"`
	PerThread  []int64 `json:"per_thread"`
	PeakWindow int     `json:"peak_window"`
}

// Throughput is combined instructions per cycle.
func (s SMTStats) Throughput() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalInsts) / float64(s.Cycles)
}

// SMTStudy is one (mix × policy) cell of the Section 3 fetch-priority
// study: the mix's programs run as simultaneous threads under one fetch
// policy.
type SMTStudy struct {
	Mix    workload.Mix
	Policy smt.Policy
	Config smt.Config

	// benches holds the pre-resolved mix members (RunSMTGrid resolves a
	// mix once and shares it across its policy cells, since building a
	// benchmark regenerates and reassembles its program). Nil means
	// resolve on use, so hand-constructed studies stay valid.
	benches []workload.Benchmark
}

// resolve returns the mix's member benchmarks, preferring the
// pre-resolved set.
func (s SMTStudy) resolve() ([]workload.Benchmark, error) {
	if s.benches != nil {
		return s.benches, nil
	}
	return s.Mix.Programs()
}

// Kind implements Study.
func (s SMTStudy) Kind() string { return "smt" }

// String implements Study.
func (s SMTStudy) String() string {
	return fmt.Sprintf("%s/%s", s.Mix.Name, s.Policy)
}

// Identity implements Study. It covers the mix membership, the content
// fingerprints of the member programs (so a workload-generator change
// invalidates stale entries instead of serving them), the policy, and the
// full model configuration.
func (s SMTStudy) Identity() any {
	type id struct {
		Mix      string     `json:"mix"`
		Benches  []string   `json:"benches"`
		Programs []string   `json:"programs,omitempty"`
		Policy   string     `json:"policy"`
		Config   smt.Config `json:"config"`
	}
	var fps []string
	if benches, err := s.resolve(); err == nil {
		for _, b := range benches {
			fps = append(fps, b.Prog.FingerprintHex())
		}
	}
	return id{
		Mix: s.Mix.Name, Benches: s.Mix.Benches, Programs: fps,
		Policy: s.Policy.String(), Config: s.Config,
	}
}

// Simulate implements Study.
func (s SMTStudy) Simulate() (any, error) {
	benches, err := s.resolve()
	if err != nil {
		return nil, err
	}
	progs := make([]*prog.Program, len(benches))
	for i, b := range benches {
		progs[i] = b.Prog
	}
	res, err := smt.Run(progs, s.Policy, s.Config)
	if err != nil {
		return nil, err
	}
	return SMTStats{
		Cycles:     res.Cycles,
		TotalInsts: res.TotalInsts,
		PerThread:  res.PerThread,
		PeakWindow: res.PeakWindow,
	}, nil
}

// smtKey indexes an SMT result grid.
type smtKey struct {
	mix    string
	policy smt.Policy
}

// SMTGrid holds a (mix × policy) result grid. Like Matrix it may be
// partial; renderers go through Lookup and mark missing cells n/a.
type SMTGrid struct {
	Mixes    []workload.Mix
	Policies []smt.Policy
	Config   smt.Config
	m        map[smtKey]SMTStats
}

// Lookup returns one cell and whether it is populated.
func (g *SMTGrid) Lookup(mix string, p smt.Policy) (SMTStats, bool) {
	st, ok := g.m[smtKey{mix, p}]
	return st, ok
}

// Len reports the number of populated cells.
func (g *SMTGrid) Len() int { return len(g.m) }

// RunSMTGrid evaluates every (mix × policy) cell through the engine's
// worker pool and cache, with the usual partial-result contract: the grid
// holds everything that completed and the error joins per-cell failures.
func (e *Engine) RunSMTGrid(ctx context.Context, mixes []workload.Mix, policies []smt.Policy, cfg smt.Config) (*SMTGrid, error) {
	var studies []SMTStudy
	for _, m := range mixes {
		// Resolve each mix once for all its policy cells; a failure stays
		// nil so the per-cell Simulate surfaces it through the usual
		// partial-result contract.
		benches, _ := m.Programs()
		for _, p := range policies {
			studies = append(studies, SMTStudy{Mix: m, Policy: p, Config: cfg, benches: benches})
		}
	}
	res, err := RunStudies[SMTStudy, SMTStats](ctx, e, studies)
	g := &SMTGrid{
		Mixes:    mixes,
		Policies: policies,
		Config:   cfg,
		m:        make(map[smtKey]SMTStats, len(res)),
	}
	for _, r := range res {
		g.m[smtKey{r.Study.Mix.Name, r.Study.Policy}] = r.Stats
	}
	return g, err
}

// SMTThroughputTable renders the study's headline: combined IPC per mix
// under each policy, with the smart policies' speedup over round-robin.
//
//arvi:det
func SMTThroughputTable(g *SMTGrid) Table {
	t := Table{
		Title: fmt.Sprintf("SMT fetch policies: combined throughput (IPC), %d-wide fetch, %d-entry shared window",
			g.Config.FetchWidth, g.Config.Window),
		Note:   "Section 3: per-thread DDT chain length as the fetch-priority signal",
		Header: []string{"mix"},
	}
	for _, p := range g.Policies {
		t.Header = append(t.Header, p.String())
	}
	for _, p := range g.Policies {
		if p != smt.RoundRobin {
			t.Header = append(t.Header, p.String()+"/rr")
		}
	}
	for _, m := range g.Mixes {
		row := []string{m.Name}
		rr, rrOK := g.Lookup(m.Name, smt.RoundRobin)
		for _, p := range g.Policies {
			if st, ok := g.Lookup(m.Name, p); ok {
				row = append(row, f3(st.Throughput()))
			} else {
				row = append(row, na)
			}
		}
		for _, p := range g.Policies {
			if p == smt.RoundRobin {
				continue
			}
			st, ok := g.Lookup(m.Name, p)
			if !ok || !rrOK || rr.Throughput() == 0 {
				row = append(row, na)
				continue
			}
			row = append(row, ratio(st.Throughput()/rr.Throughput()))
		}
		t.AddRow(row...)
	}
	return t
}

// SMTBalanceTable renders per-thread retired instructions per mix and
// policy — the starvation view the throughput headline hides.
//
//arvi:det
func SMTBalanceTable(g *SMTGrid) Table {
	t := Table{
		Title:  "SMT fetch policies: per-thread retired instructions",
		Header: []string{"mix", "policy", "per-thread", "peak window"},
	}
	for _, m := range g.Mixes {
		for _, p := range g.Policies {
			st, ok := g.Lookup(m.Name, p)
			if !ok {
				t.AddRow(m.Name, p.String(), na, na)
				continue
			}
			per := ""
			for i, n := range st.PerThread {
				if i > 0 {
					per += " / "
				}
				per += fmt.Sprintf("%d", n)
			}
			t.AddRow(m.Name, p.String(), per, fmt.Sprintf("%d", st.PeakWindow))
		}
	}
	return t
}

// SMTRecord is one exported SMT grid cell with its derived metrics.
type SMTRecord struct {
	Mix        string   `json:"mix"`
	Benches    []string `json:"benches"`
	Policy     string   `json:"policy"`
	IPC        float64  `json:"ipc"`
	Cycles     int64    `json:"cycles"`
	TotalInsts int64    `json:"total_insts"`
	PerThread  []int64  `json:"per_thread"`
	PeakWindow int      `json:"peak_window"`
}

// Records flattens the populated cells into tidy rows (mix-major, policy
// order). Missing cells are skipped.
//
//arvi:det
func (g *SMTGrid) Records() []SMTRecord {
	var out []SMTRecord
	for _, m := range g.Mixes {
		for _, p := range g.Policies {
			st, ok := g.Lookup(m.Name, p)
			if !ok {
				continue
			}
			out = append(out, SMTRecord{
				Mix: m.Name, Benches: m.Benches, Policy: p.String(),
				IPC: st.Throughput(), Cycles: st.Cycles,
				TotalInsts: st.TotalInsts, PerThread: st.PerThread,
				PeakWindow: st.PeakWindow,
			})
		}
	}
	return out
}

// WriteCSV exports the populated grid as tidy CSV for external plotting.
//
//arvi:det
func (g *SMTGrid) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"mix", "policy", "ipc", "cycles", "total_insts", "peak_window"}); err != nil {
		return err
	}
	for _, r := range g.Records() {
		rec := []string{
			r.Mix, r.Policy,
			fmt.Sprintf("%.4f", r.IPC),
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%d", r.TotalInsts),
			fmt.Sprintf("%d", r.PeakWindow),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON exports the populated grid cells as indented JSON.
//
//arvi:det
func (g *SMTGrid) WriteJSON(w io.Writer) error {
	cells := g.Records()
	if cells == nil {
		cells = []SMTRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Config smt.Config  `json:"config"`
		Cells  []SMTRecord `json:"cells"`
	}{g.Config, cells})
}

package sim

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/workload"
)

// na marks a cell whose simulation has not completed (partial grid).
const na = "n/a"

// Fig5a renders Figure 5(a): the fraction of dynamic conditional branches
// classified as load branches, per benchmark and pipeline depth, under the
// ARVI current-value configuration. Missing cells render as n/a.
func Fig5a(m *Matrix) Table {
	t := Table{
		Title:  "Figure 5(a): Load branch fraction (ARVI current value)",
		Header: []string{"benchmark", "20-cycle", "40-cycle", "60-cycle"},
	}
	for _, b := range workload.Names {
		row := []string{b}
		for _, d := range Depths {
			if st, ok := m.Lookup(b, d, cpu.PredARVICurrent); ok {
				row = append(row, f3(st.LoadBranchFraction()))
			} else {
				row = append(row, na)
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig5b renders Figure 5(b): prediction accuracy of calculated versus load
// branches at the given depth under ARVI current value.
func Fig5b(m *Matrix, depth int) Table {
	t := Table{
		Title:  fmt.Sprintf("Figure 5(b): Prediction accuracy by class, %d-cycle (ARVI current value)", depth),
		Header: []string{"benchmark", "calc branch", "load branch", "calc frac"},
	}
	for _, b := range workload.Names {
		st, ok := m.Lookup(b, depth, cpu.PredARVICurrent)
		if !ok {
			t.AddRow(b, na, na, na)
			continue
		}
		t.AddRow(b,
			pct(st.ClassAccuracy(cpu.ClassCalculated)),
			pct(st.ClassAccuracy(cpu.ClassLoad)),
			f3(1-st.LoadBranchFraction()))
	}
	return t
}

// Fig6Accuracy renders the prediction-accuracy panel of Figure 6 for one
// pipeline depth across the four predictor configurations.
func Fig6Accuracy(m *Matrix, depth int) Table {
	t := Table{
		Title:  fmt.Sprintf("Figure 6: Prediction rates, %d-cycle pipeline", depth),
		Header: []string{"benchmark", "2lvl-gskew", "arvi-current", "arvi-loadback", "arvi-perfect"},
	}
	for _, b := range workload.Names {
		row := []string{b}
		for _, md := range Modes {
			if st, ok := m.Lookup(b, depth, md); ok {
				row = append(row, pct(st.PredAccuracy()))
			} else {
				row = append(row, na)
			}
		}
		t.AddRow(row...)
	}
	return t
}

// IPCSummary holds the Figure 6 IPC panel for one depth.
type IPCSummary struct {
	Depth int
	// Normalised[mode][bench] = IPC(mode)/IPC(baseline).
	Normalized map[cpu.PredMode]map[string]float64
	// AvgImprovement[mode] is the arithmetic-mean normalised IPC minus 1
	// (the paper's "overall IPC improvement").
	AvgImprovement map[cpu.PredMode]float64
}

// Fig6IPC computes the normalised-IPC panel of Figure 6 for one depth.
func Fig6IPC(m *Matrix, depth int) (Table, IPCSummary) {
	sum := IPCSummary{
		Depth:          depth,
		Normalized:     make(map[cpu.PredMode]map[string]float64),
		AvgImprovement: make(map[cpu.PredMode]float64),
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 6: Normalized IPC, %d-cycle pipeline (baseline = two-level 2Bc-gskew)", depth),
		Header: []string{"benchmark", "2lvl-gskew", "arvi-current", "arvi-loadback", "arvi-perfect"},
	}
	for _, md := range Modes {
		sum.Normalized[md] = make(map[string]float64)
	}
	for _, b := range workload.Names {
		row := []string{b}
		baseSt, baseOK := m.Lookup(b, depth, cpu.PredBaseline2Lvl)
		for _, md := range Modes {
			st, ok := m.Lookup(b, depth, md)
			if !ok || !baseOK || baseSt.IPC() == 0 {
				row = append(row, na)
				continue
			}
			n := st.IPC() / baseSt.IPC()
			sum.Normalized[md][b] = n
			row = append(row, ratio(n))
		}
		t.AddRow(row...)
	}
	// The average covers only benchmarks whose cells completed, so a
	// partial grid yields a partial (but well-defined) summary.
	avgRow := []string{"average"}
	for _, md := range Modes {
		total, count := 0.0, 0
		for _, b := range workload.Names {
			if n, ok := sum.Normalized[md][b]; ok {
				total += n
				count++
			}
		}
		if count == 0 {
			avgRow = append(avgRow, na)
			continue
		}
		avg := total / float64(count)
		sum.AvgImprovement[md] = avg - 1
		avgRow = append(avgRow, ratio(avg))
	}
	t.AddRow(avgRow...)
	return t, sum
}

// Table2 echoes the architectural parameters of the simulated machine.
func Table2() Table {
	cfg := cpu.DefaultConfig(20, cpu.PredBaseline2Lvl)
	t := Table{
		Title:  "Table 2: Architectural parameters",
		Header: []string{"parameter", "value"},
	}
	t.AddRow("fetch/decode/commit width", fmt.Sprintf("%d", cfg.FetchWidth))
	t.AddRow("ROB entries", fmt.Sprintf("%d", cfg.ROB))
	t.AddRow("load/store queue", fmt.Sprintf("%d", cfg.LSQ))
	t.AddRow("integer ALUs", fmt.Sprintf("%d", cfg.IntALU))
	t.AddRow("integer mult/div", fmt.Sprintf("%d", cfg.IntMul))
	t.AddRow("memory ports", fmt.Sprintf("%d", cfg.MemPorts))
	t.AddRow("L1 I-cache", "64 KB 4-way, 32 B lines")
	t.AddRow("L1 D-cache", "64 KB 4-way, 32 B lines")
	t.AddRow("L2 unified", "512 KB 4-way, 64 B lines")
	t.AddRow("ITLB / DTLB", "64 / 128 entries, 4-way, 8 KB pages, 30-cycle miss")
	for _, d := range Depths {
		l := mem.LatenciesForDepth(d)
		t.AddRow(fmt.Sprintf("latencies @%d stages", d),
			fmt.Sprintf("L1 %d / L2 %d / mem %d cycles", l.L1Hit, l.L2Hit, l.Mem))
	}
	return t
}

// Table4 echoes the predictor access latencies.
func Table4() Table {
	t := Table{
		Title:  "Table 4: Predictor access latencies (cycles)",
		Header: []string{"predictor", "size", "20-cycle", "40-cycle", "60-cycle"},
	}
	row := func(name, size string, mode cpu.PredMode, level1 bool) {
		cells := []string{name, size}
		for _, d := range Depths {
			if level1 {
				cells = append(cells, "1")
				continue
			}
			cells = append(cells, fmt.Sprintf("%d", cpu.DefaultConfig(d, mode).L2Latency()))
		}
		t.AddRow(cells...)
	}
	row("Level-1 hybrid (2Bc-gskew)", "4 KB", cpu.PredBaseline2Lvl, true)
	row("Level-2 hybrid (2Bc-gskew)", "32 KB", cpu.PredBaseline2Lvl, false)
	row("Level-2 ARVI", "32 KB", cpu.PredARVICurrent, false)
	return t
}

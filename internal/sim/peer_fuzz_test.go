package sim

// Fuzz over the cache-peer wire format: whatever bytes a peer serves
// (or PUTs at us), the typed read path is the gate — the cache must
// never panic, never serve garbage as stats, and never let a malformed
// entry shadow or replace a real one. This is the never-poison half of
// the distributed-cache contract; internal/dist's stream fuzz covers
// the other wire format.

import (
	"bytes"
	"io/fs"
	"path/filepath"
	"testing"

	"repro/internal/cpu"
)

// fuzzPeerKV is an in-memory peer backend serving exactly the bytes the
// fuzzer chose — the moral equivalent of a confused or hostile peer
// daemon, without an HTTP server per fuzz iteration.
type fuzzPeerKV struct{ data map[string][]byte }

func (p *fuzzPeerKV) Get(key string) ([]byte, error) {
	if b, ok := p.data[key]; ok {
		return b, nil
	}
	return nil, fs.ErrNotExist
}
func (p *fuzzPeerKV) Put(key string, b []byte) error {
	p.data[key] = append([]byte(nil), b...)
	return nil
}
func (p *fuzzPeerKV) Delete(key string) error { delete(p.data, key); return nil }

var fuzzStats = cpu.Stats{Insts: 5000, Cycles: 7001, CondBranches: 900, Mispredicts: 41}

// validPeerEntry renders the canonical entry bytes for (cacheSpec,
// fuzzStats) — the one input the peer path must accept.
func validPeerEntry(tb testing.TB) []byte {
	tb.Helper()
	c, err := OpenCache(filepath.Join(tb.TempDir(), "seed"))
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.Put(cacheSpec, fuzzStats); err != nil {
		tb.Fatal(err)
	}
	b, ok := c.Raw(c.Key(cacheSpec))
	if !ok {
		tb.Fatal("freshly put entry not readable back")
	}
	return b
}

func FuzzPeerEntry(f *testing.F) {
	valid := validPeerEntry(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(bytes.Replace(valid, []byte(`"version"`), []byte(`"verzion"`), 1))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"key":"0000000000000000000000000000000000000000000000000000000000000000"}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		c, err := OpenCache(filepath.Join(t.TempDir(), "simcache"))
		if err != nil {
			t.Fatal(err)
		}
		key := c.Key(cacheSpec)

		// A peer serving these bytes: Get must return either a miss or the
		// genuine stats — never garbage, never a panic.
		c.SetPeers(&fuzzPeerKV{data: map[string][]byte{key: raw}}, false)
		if st, ok := c.Get(cacheSpec); ok {
			if st != fuzzStats {
				t.Fatalf("peer bytes decoded to stats %+v that are not the entry's %+v", st, fuzzStats)
			}
			// A served entry was replicated locally; the replica must decode
			// identically (a valid-looking entry must not corrupt the store).
			if st2, ok2 := c.Get(cacheSpec); !ok2 || st2 != st {
				t.Fatalf("replicated entry drifted: ok=%v %+v", ok2, st2)
			}
		}

		// The same bytes PUT at us: either rejected outright, or admitted
		// and then still subject to the typed gate on read.
		if err := c.PutRaw(key, raw); err == nil {
			if st, ok := c.Get(cacheSpec); ok && st != fuzzStats {
				t.Fatalf("PutRaw bytes served as stats %+v", st)
			}
		}

		// Whatever the peer did, a real computation still lands and wins.
		if err := c.Put(cacheSpec, fuzzStats); err != nil {
			t.Fatalf("Put after peer traffic: %v", err)
		}
		st, ok := c.Get(cacheSpec)
		if !ok || st != fuzzStats {
			t.Fatalf("real entry not served after peer traffic: ok=%v %+v", ok, st)
		}
	})
}

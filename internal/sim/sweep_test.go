package sim

import (
	"context"

	"strings"
	"testing"

	"repro/internal/cpu"
)

func TestConfThresholdSweep(t *testing.T) {
	var eng Engine
	benches := []string{"li", "compress"}
	thresholds := []uint8{1, 15}
	sr, err := eng.RunConfThresholdSweep(context.Background(), benches, 20, thresholds, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != len(thresholds) {
		t.Fatalf("points = %v", sr.Points)
	}
	for _, b := range benches {
		for _, p := range sr.Points {
			st, ok := sr.Lookup(b, p)
			if !ok || st.Insts == 0 {
				t.Errorf("cell %s/%s missing or degenerate", b, p)
			}
		}
	}
	// ARVI is consulted only when the L1 prediction is *not*
	// high-confidence, so raising the threshold (fewer branches reach
	// high confidence) must not shrink ARVI usage.
	var loose, strict int64
	for _, b := range benches {
		l, _ := sr.Lookup(b, "conf=1")
		s, _ := sr.Lookup(b, "conf=15")
		loose += l.ARVIUsed
		strict += s.ARVIUsed
	}
	if strict < loose {
		t.Errorf("threshold inverted ARVI usage: conf=1 used %d, conf=15 used %d", loose, strict)
	}
	for _, tb := range []Table{SweepAccuracyTable(sr), SweepIPCTable(sr), SweepARVIUseTable(sr)} {
		if len(tb.Rows) != len(benches) || len(tb.Header) != 1+len(thresholds) {
			t.Errorf("table %q shape: %d rows, %d cols", tb.Title, len(tb.Rows), len(tb.Header))
		}
	}
}

func TestCutAtLoadsSweep(t *testing.T) {
	var eng Engine
	sr, err := eng.RunCutAtLoadsSweep(context.Background(), []string{"m88ksim"}, 20, 5000)
	if err != nil {
		t.Fatal(err)
	}
	full, ok1 := sr.Lookup("m88ksim", "full-chain")
	cut, ok2 := sr.Lookup("m88ksim", "cut-at-loads")
	if !ok1 || !ok2 {
		t.Fatal("sweep cells missing")
	}
	if full.Insts != cut.Insts || full.Insts == 0 {
		t.Errorf("ablation runs diverged: %d vs %d insts", full.Insts, cut.Insts)
	}
}

func TestSweepPartialGridRenders(t *testing.T) {
	sr := &SweepResult{
		Label:  "test",
		Depth:  20,
		Mode:   cpu.PredARVICurrent,
		Points: []string{"a", "b"},
		m: map[sweepKey]cpu.Stats{
			{bench: "gcc", point: "a"}: {Insts: 100, Cycles: 50, CondBranches: 10},
		},
	}
	tb := SweepAccuracyTable(sr)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n/a") {
		t.Errorf("missing cell not marked n/a:\n%s", sb.String())
	}
}

func TestSweepPartialFailureKeepsCompletedCells(t *testing.T) {
	var eng Engine
	points := []SweepPoint{
		{Name: "ok", Mutate: func(s *Spec) {}},
		{Name: "broken", Mutate: func(s *Spec) { s.Bench = "nosuch" }},
	}
	sr, err := eng.RunSweep(context.Background(), "inject", []string{"gcc"}, 20, cpu.PredARVICurrent, 4000, points)
	if err == nil {
		t.Fatal("expected a joined error from the broken point")
	}
	if _, ok := sr.Lookup("gcc", "ok"); !ok {
		t.Error("completed cell discarded on sibling failure")
	}
	if _, ok := sr.Lookup("gcc", "broken"); ok {
		t.Error("failed cell reported as populated")
	}
}

func TestRunSweepRejectsEmptyPoints(t *testing.T) {
	var eng Engine
	if _, err := eng.RunSweep(context.Background(), "empty", []string{"gcc"}, 20, cpu.PredARVICurrent, 1000, nil); err == nil {
		t.Error("empty sweep must fail")
	}
}

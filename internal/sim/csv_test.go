package sim

import (
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestWriteCSV(t *testing.T) {
	mx := smallMatrix(t, workload.Names, []int{20}, Modes)
	var sb strings.Builder
	if err := mx.WriteCSV(&sb, []int{20}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(workload.Names)*len(Modes)
	if len(recs) != want {
		t.Fatalf("rows = %d, want %d", len(recs), want)
	}
	if recs[0][0] != "bench" || len(recs[0]) != 11 {
		t.Errorf("header = %v", recs[0])
	}
	// Baseline rows must have norm_ipc exactly 1.0000.
	for _, r := range recs[1:] {
		if r[2] == "2lvl-2bc-gskew" && r[4] != "1.0000" {
			t.Errorf("baseline norm = %s", r[4])
		}
	}
}

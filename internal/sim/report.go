package sim

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid of cells.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
//
//arvi:det
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "  (%s)\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintf(w, "  %s\n", line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if _, err := fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "  %s\n", line(r)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pct(x float64) string   { return fmt.Sprintf("%.2f%%", 100*x) }
func f3(x float64) string    { return fmt.Sprintf("%.3f", x) }
func ratio(x float64) string { return fmt.Sprintf("%.3f", x) }

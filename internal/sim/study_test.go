package sim

import (
	"context"

	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/smt"
	"repro/internal/vpred"
	"repro/internal/workload"
)

// testSMTConfig keeps study tests fast: a few thousand cycles is enough to
// exercise the whole path.
func testSMTConfig() smt.Config {
	cfg := smt.DefaultConfig()
	cfg.MaxCycles = 5000
	return cfg
}

func testVPredParams() VPredParams {
	p := DefaultVPredParams(20_000)
	return p
}

func TestSMTGridColdWarm(t *testing.T) {
	c := openCache(t)
	mixes := workload.Mixes()[:2]
	cold := &Engine{Cache: c}
	g1, err := cold.RunSMTGrid(context.Background(), mixes, SMTPolicies, testSMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(mixes) * len(SMTPolicies)
	if g1.Len() != wantCells {
		t.Fatalf("cold grid has %d cells, want %d", g1.Len(), wantCells)
	}
	if cold.Simulated() != int64(wantCells) || cold.CacheHits() != 0 {
		t.Errorf("cold run: simulated %d, hits %d", cold.Simulated(), cold.CacheHits())
	}

	warm := &Engine{Cache: c}
	g2, err := warm.RunSMTGrid(context.Background(), mixes, SMTPolicies, testSMTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated() != 0 || warm.CacheHits() != int64(wantCells) {
		t.Errorf("warm run must be cache-only: simulated %d, hits %d",
			warm.Simulated(), warm.CacheHits())
	}
	for _, m := range mixes {
		for _, p := range SMTPolicies {
			a, _ := g1.Lookup(m.Name, p)
			b, ok := g2.Lookup(m.Name, p)
			if !ok {
				t.Fatalf("%s/%s missing from warm grid", m.Name, p)
			}
			if a.Cycles != b.Cycles || a.TotalInsts != b.TotalInsts ||
				a.PeakWindow != b.PeakWindow || len(a.PerThread) != len(b.PerThread) {
				t.Errorf("%s/%s: cached stats differ:\nlive   %+v\ncached %+v", m.Name, p, a, b)
			}
			if b.PeakWindow > testSMTConfig().Window {
				t.Errorf("%s/%s: peak window %d exceeds budget", m.Name, p, b.PeakWindow)
			}
		}
	}
	// Warm tables render byte-identically to cold ones.
	var sb1, sb2 strings.Builder
	if err := renderAll(&sb1, SMTThroughputTable(g1), SMTBalanceTable(g1)); err != nil {
		t.Fatal(err)
	}
	if err := renderAll(&sb2, SMTThroughputTable(g2), SMTBalanceTable(g2)); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Errorf("warm render differs from cold:\n%s\nvs\n%s", sb1.String(), sb2.String())
	}
}

func renderAll(sb *strings.Builder, tables ...Table) error {
	for _, t := range tables {
		if err := t.Render(sb); err != nil {
			return err
		}
	}
	return nil
}

func TestVPredGridColdWarm(t *testing.T) {
	c := openCache(t)
	benches := []string{"m88ksim", "gcc"}
	cold := &Engine{Cache: c}
	g1, err := cold.RunVPredGrid(context.Background(), benches, VPredPredictors, testVPredParams())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(benches) * len(VPredPredictors) * 2
	if g1.Len() != wantCells {
		t.Fatalf("cold grid has %d cells, want %d", g1.Len(), wantCells)
	}
	warm := &Engine{Cache: c}
	g2, err := warm.RunVPredGrid(context.Background(), benches, VPredPredictors, testVPredParams())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated() != 0 || warm.CacheHits() != int64(wantCells) {
		t.Errorf("warm run must be cache-only: simulated %d, hits %d",
			warm.Simulated(), warm.CacheHits())
	}
	for _, b := range benches {
		for _, p := range VPredPredictors {
			for _, sel := range []bool{false, true} {
				a, _ := g1.Lookup(b, p, sel)
				got, ok := g2.Lookup(b, p, sel)
				if !ok {
					t.Fatalf("%s/%s/%t missing from warm grid", b, p, sel)
				}
				if a != got {
					t.Errorf("%s/%s/%t: cached stats differ: %+v vs %+v", b, p, sel, a, got)
				}
			}
		}
	}
	// The ablation moves in the documented direction: selection filters
	// candidates. (Prediction counts are not comparable across the two
	// cells — the selective predictor trains on a different stream.)
	for _, b := range benches {
		for _, p := range VPredPredictors {
			all, _ := g1.Lookup(b, p, false)
			sel, _ := g1.Lookup(b, p, true)
			if sel.Candidates >= all.Candidates {
				t.Errorf("%s/%s: selection did not filter (%d vs %d candidates)",
					b, p, sel.Candidates, all.Candidates)
			}
			if sel.Predictions > sel.Candidates {
				t.Errorf("%s/%s: predictions %d exceed candidates %d",
					b, p, sel.Predictions, sel.Candidates)
			}
		}
	}
}

// TestStudyPartialResults pins the errors.Join contract on the study path:
// cells that completed survive a sibling's failure.
func TestStudyPartialResults(t *testing.T) {
	eng := &Engine{}
	studies := []VPredStudy{
		{Bench: "gcc", Predictor: "stride", Params: testVPredParams()},
		{Bench: "nosuch", Predictor: "stride", Params: testVPredParams()},
		{Bench: "li", Predictor: "nosuchpred", Params: testVPredParams()},
		{Bench: "li", Predictor: "last-value", Params: testVPredParams()},
	}
	res, err := RunStudies[VPredStudy, vpred.Result](context.Background(), eng, studies)
	if err == nil {
		t.Fatal("expected a joined error from the injected failures")
	}
	if len(res) != 2 {
		t.Fatalf("completed results = %d, want 2", len(res))
	}
	if res[0].Study.Bench != "gcc" || res[1].Study.Bench != "li" {
		t.Errorf("surviving results out of order: %v, %v", res[0].Study, res[1].Study)
	}
	msg := err.Error()
	for _, want := range []string{"nosuch", "nosuchpred"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error %q missing %q", msg, want)
		}
	}
}

// TestStudyCacheCorruptEntryRecovers: the study tier inherits the
// self-healing contract of the bpred tier.
func TestStudyCacheCorruptEntryRecovers(t *testing.T) {
	c := openCache(t)
	study := SMTStudy{Mix: workload.MixByName("ijpeg+li"), Policy: smt.ICOUNT, Config: testSMTConfig()}
	eng := &Engine{Cache: c}
	if _, err := RunStudies[SMTStudy, SMTStats](context.Background(), eng, []SMTStudy{study}); err != nil {
		t.Fatal(err)
	}
	key, err := StudyKey(study)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), key+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("study entry not persisted: %v", err)
	}
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out SMTStats
	if ok, err := c.GetStudy(study, &out); err != nil || ok {
		t.Fatalf("corrupt entry served as a hit (ok=%v err=%v)", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry not removed")
	}
	// Re-running heals the cache.
	if _, err := RunStudies[SMTStudy, SMTStats](context.Background(), eng, []SMTStudy{study}); err != nil {
		t.Fatal(err)
	}
	if eng.Simulated() != 2 {
		t.Errorf("corrupt entry should force a re-simulation, simulated = %d", eng.Simulated())
	}
	if ok, _ := c.GetStudy(study, &out); !ok {
		t.Error("cache not repaired after corrupt entry")
	}
}

// TestStudyKeysNamespaceByKindAndIdentity: distinct studies get distinct
// keys, identical studies get identical keys, and the SMT identity covers
// program content (mix membership) and the model config.
func TestStudyKeysNamespaceByKindAndIdentity(t *testing.T) {
	base := SMTStudy{Mix: workload.MixByName("ijpeg+li"), Policy: smt.ICOUNT, Config: testSMTConfig()}
	k1, err := StudyKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if k2, _ := StudyKey(base); k2 != k1 {
		t.Fatal("study key not deterministic")
	}
	otherPolicy := base
	otherPolicy.Policy = smt.DepLength
	otherMix := base
	otherMix.Mix = workload.MixByName("quad")
	otherCfg := base
	otherCfg.Config.Window = 32
	vp := VPredStudy{Bench: "gcc", Predictor: "stride", Params: testVPredParams()}
	vpSel := vp
	vpSel.Selective = true
	seen := map[string]string{k1: base.String()}
	for _, s := range []Study{otherPolicy, otherMix, otherCfg, vp, vpSel} {
		k, err := StudyKey(s)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("studies %s and %s/%s share a key", prev, s.Kind(), s)
		}
		seen[k] = s.Kind() + "/" + s.String()
	}
}

// TestStudyAndSpecShareOneCacheDirectory: both tiers coexist in one cache
// without aliasing, and Len counts entries of both.
func TestStudyAndSpecShareOneCacheDirectory(t *testing.T) {
	c := openCache(t)
	eng := &Engine{Cache: c}
	if _, err := eng.Run(context.Background(), []Spec{cacheSpec}); err != nil {
		t.Fatal(err)
	}
	study := SMTStudy{Mix: workload.MixByName("gcc+m88ksim"), Policy: smt.RoundRobin, Config: testSMTConfig()}
	if _, err := RunStudies[SMTStudy, SMTStats](context.Background(), eng, []SMTStudy{study}); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Len(); err != nil || n != 2 {
		t.Errorf("cache entries = %d (err %v), want 2", n, err)
	}
	// Both still hit.
	if _, ok := c.Get(cacheSpec); !ok {
		t.Error("spec entry lost after study put")
	}
	var out SMTStats
	if ok, _ := c.GetStudy(study, &out); !ok {
		t.Error("study entry lost after spec put")
	}
}

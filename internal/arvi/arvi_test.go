package arvi

import (
	"testing"
	"testing/quick"
)

func newP(t *testing.T) *Predictor {
	t.Helper()
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 4, ValueBits: 11},
		{Sets: 100, Ways: 4, ValueBits: 11},
		{Sets: 64, Ways: 0, ValueBits: 11},
		{Sets: 64, Ways: 4, ValueBits: 0},
		{Sets: 64, Ways: 4, ValueBits: 20},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestKeyDependsOnValues(t *testing.T) {
	p := newP(t)
	leavesA := []LeafValue{{Logical: 3, Value: 100}, {Logical: 5, Value: 7}}
	leavesB := []LeafValue{{Logical: 3, Value: 101}, {Logical: 5, Value: 7}}
	kA := p.MakeKey(42, leavesA, 6)
	kB := p.MakeKey(42, leavesB, 6)
	if kA.Set == kB.Set {
		t.Error("different values must generally select different sets")
	}
	if kA.IDTag != kB.IDTag || kA.DepthTag != kB.DepthTag {
		t.Error("tags must not depend on values")
	}
}

func TestKeyTagFormation(t *testing.T) {
	p := newP(t)
	leaves := []LeafValue{{Logical: 6, Value: 0}, {Logical: 5, Value: 0}}
	k := p.MakeKey(0, leaves, 37)
	// ID tag: (6&7 + 5&7) & 7 = 11 & 7 = 3.
	if k.IDTag != 3 {
		t.Errorf("id tag = %d, want 3", k.IDTag)
	}
	// Depth tag: 37 mod 32 = 5.
	if k.DepthTag != 5 {
		t.Errorf("depth tag = %d, want 5", k.DepthTag)
	}
}

func TestKeyDependsOnRegisterSet(t *testing.T) {
	p := newP(t)
	// Same values, different logical registers: same index (values equal)
	// but different ID tag — the paper's path differentiator.
	kA := p.MakeKey(42, []LeafValue{{Logical: 1, Value: 9}}, 2)
	kB := p.MakeKey(42, []LeafValue{{Logical: 2, Value: 9}}, 2)
	if kA.IDTag == kB.IDTag {
		t.Error("ID tag must distinguish register sets")
	}
}

func TestLookupMissThenLearn(t *testing.T) {
	p := newP(t)
	k := p.MakeKey(10, []LeafValue{{Logical: 4, Value: 77}}, 3)
	if _, hit := p.Lookup(k); hit {
		t.Fatal("cold lookup must miss")
	}
	p.Update(k, true, false) // allocate
	pred, hit := p.Lookup(k)
	if !hit || !pred {
		t.Fatalf("after taken alloc: pred=%v hit=%v", pred, hit)
	}
	// Same situation recurs: ARVI predicts taken with certainty.
	for i := 0; i < 10; i++ {
		p.Update(k, true, true)
		if pred, hit := p.Lookup(k); !hit || !pred {
			t.Fatal("stable value pattern must stay predicted taken")
		}
	}
	st := p.Stats()
	if st.Correct != 10 || st.Wrong != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestValueChangesDisambiguate(t *testing.T) {
	// The core ARVI property: the same branch with different generating
	// values uses different BVIT entries, so a value-determined branch is
	// perfectly predicted even when its outcome alternates.
	p := newP(t)
	pc := uint64(99)
	outcomeOf := func(v uint16) bool { return v%2 == 0 }
	// Train on values 0..15.
	for round := 0; round < 3; round++ {
		for v := uint16(0); v < 16; v++ {
			k := p.MakeKey(pc, []LeafValue{{Logical: 7, Value: v}}, 4)
			p.Update(k, outcomeOf(v), true)
		}
	}
	// Now every value must predict its own outcome.
	for v := uint16(0); v < 16; v++ {
		k := p.MakeKey(pc, []LeafValue{{Logical: 7, Value: v}}, 4)
		pred, hit := p.Lookup(k)
		if !hit {
			t.Fatalf("value %d: miss", v)
		}
		if pred != outcomeOf(v) {
			t.Errorf("value %d: pred %v, want %v", v, pred, outcomeOf(v))
		}
	}
}

func TestDepthDisambiguatesIterations(t *testing.T) {
	// Loop iterations with identical register sets and values but
	// different chain depths must map to different entries (Section 4.5).
	p := newP(t)
	leaves := []LeafValue{{Logical: 2, Value: 5}}
	kExit := p.MakeKey(7, leaves, 9)
	kLoop := p.MakeKey(7, leaves, 3)
	if kExit == kLoop {
		t.Fatal("depth must differentiate keys")
	}
	for i := 0; i < 4; i++ {
		p.Update(kLoop, true, true)
		p.Update(kExit, false, true)
	}
	if pred, hit := p.Lookup(kLoop); !hit || !pred {
		t.Error("loop-back instance must predict taken")
	}
	if pred, hit := p.Lookup(kExit); !hit || pred {
		t.Error("exit instance must predict not-taken")
	}
}

func TestReplacementPrefersLowPerf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sets = 1 // force all keys into one set
	cfg.Ways = 2
	p := MustNew(cfg)
	// Two entries with distinct tags; give the first a high perf count.
	kGood := Key{Set: 0, IDTag: 1, DepthTag: 1}
	kWeak := Key{Set: 0, IDTag: 2, DepthTag: 2}
	p.Update(kGood, true, false)
	p.Update(kWeak, true, false)
	for i := 0; i < 6; i++ {
		p.Update(kGood, true, true) // perf rises
	}
	// A third key must evict the weak entry, not the good one.
	kNew := Key{Set: 0, IDTag: 3, DepthTag: 3}
	p.Update(kNew, false, false)
	if _, hit := p.Lookup(kGood); !hit {
		t.Error("high-performance entry was evicted")
	}
	if _, hit := p.Lookup(kWeak); hit {
		t.Error("weak entry survived")
	}
	if p.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", p.Stats().Evictions)
	}
}

func TestCounterHysteresis(t *testing.T) {
	p := newP(t)
	k := p.MakeKey(3, []LeafValue{{Logical: 1, Value: 1}}, 1)
	p.Update(k, true, false)
	p.Update(k, true, false) // ctr = 3
	p.Update(k, false, true) // ctr = 2, still predicts taken
	if pred, hit := p.Lookup(k); !hit || !pred {
		t.Error("single contrary outcome must not flip a strong entry")
	}
	p.Update(k, false, true)
	if pred, _ := p.Lookup(k); pred {
		t.Error("two contrary outcomes must flip the entry")
	}
}

func TestSizeBytes(t *testing.T) {
	p := newP(t)
	// 2048 sets x 4 ways x 14 bits = 14336 bytes: within the 32 KB L2
	// budget once the DDT (9 KB for 256x288), RSE and shadow structures
	// are added.
	if got := p.SizeBytes(); got != 2048*4*14/8 {
		t.Errorf("size = %d", got)
	}
	if p.Name() == "" {
		t.Error("name empty")
	}
}

func TestReset(t *testing.T) {
	p := newP(t)
	k := p.MakeKey(1, nil, 0)
	p.Update(k, true, false)
	p.Reset()
	if _, hit := p.Lookup(k); hit {
		t.Error("reset must clear entries")
	}
	if p.Stats().Lookups != 1 {
		t.Error("reset must clear stats (then count the probe above)")
	}
}

// Property: MakeKey is order-insensitive in its leaves (XOR and sum are
// commutative) — the hardware gathers the set from a bit vector with no
// defined order.
func TestQuickKeyOrderInsensitive(t *testing.T) {
	p := newP(t)
	f := func(pc uint64, l1, l2, l3 uint8, v1, v2, v3 uint16, depth uint8) bool {
		a := []LeafValue{{l1, v1}, {l2, v2}, {l3, v3}}
		b := []LeafValue{{l3, v3}, {l1, v1}, {l2, v2}}
		return p.MakeKey(pc, a, int(depth)) == p.MakeKey(pc, b, int(depth))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lookups never mutate predictor state visible to lookups.
func TestQuickLookupPure(t *testing.T) {
	p := newP(t)
	k := p.MakeKey(5, []LeafValue{{Logical: 3, Value: 3}}, 2)
	p.Update(k, true, false)
	f := func(n uint8) bool {
		before, _ := p.Lookup(k)
		for i := uint8(0); i < n%16; i++ {
			p.Lookup(k)
		}
		after, _ := p.Lookup(k)
		return before == after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

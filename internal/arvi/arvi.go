// Package arvi implements the paper's Section 4 contribution: the ARVI
// (Available Register Value Information) branch predictor.
//
// ARVI predicts a branch from the *values* of the leaf registers of its
// data-dependence chain (extracted from the DDT by the RSE, package core).
// The Branch Value Information Table (BVIT) is indexed by an XOR hash of
// the low 11 bits of each leaf register value together with branch PC bits,
// and disambiguated by two tags: a 3-bit sum of the leaf registers'
// *logical* ids (a path signature, Section 4.4) and a 5-bit
// dependence-chain depth (loop-iteration disambiguation, Section 4.5).
// Entries hold a 2-bit direction counter and a 3-bit performance counter
// (Heil-style) that drives set replacement.
//
// The package is deliberately decoupled from the pipeline: the timing core
// resolves each leaf physical register to (logical id, 11-bit value)
// according to the value-availability mode (current value / load back /
// perfect value) and passes the resolved leaves here.
package arvi

import "fmt"

// Config sizes the BVIT.
type Config struct {
	Sets      int   // number of sets (paper: 2K, 11 index bits)
	Ways      int   // associativity (paper: 4)
	ValueBits uint  // low value bits hashed into the index (paper: 11)
	IDTagBits uint  // register-id-sum tag width (paper: 3)
	DepthBits uint  // chain-depth tag width (paper: 5)
	PerfMax   uint8 // performance counter saturation (3 bits: 7)
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{Sets: 2048, Ways: 4, ValueBits: 11, IDTagBits: 3, DepthBits: 5, PerfMax: 7}
}

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("arvi: sets %d not a power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("arvi: non-positive ways")
	}
	if c.ValueBits == 0 || c.ValueBits > 16 {
		return fmt.Errorf("arvi: value bits %d out of range", c.ValueBits)
	}
	return nil
}

// LeafValue is one resolved leaf register of a branch's dependence chain.
type LeafValue struct {
	Logical uint8  // architectural register id (for the ID-sum tag)
	Value   uint16 // low ValueBits of the register value used for the hash
}

// Key identifies a BVIT entry for one dynamic branch instance. It is
// computed at prediction time and must be retained by the caller for the
// update at branch resolution, because register state changes in between.
type Key struct {
	Set      uint32
	IDTag    uint8
	DepthTag uint8
}

type entry struct {
	valid    bool
	idTag    uint8
	depthTag uint8
	ctr      uint8 // 2-bit direction counter
	perf     uint8 // 3-bit Heil performance counter
}

// Stats counts predictor events.
type Stats struct {
	Lookups   int64
	Hits      int64
	Correct   int64 // correct predictions among hits that were used
	Wrong     int64
	Allocs    int64
	Evictions int64
}

// Predictor is the ARVI BVIT.
type Predictor struct {
	cfg     Config
	sets    []entry // Sets × Ways
	setMask uint32
	stats   Stats
}

// New builds an ARVI predictor.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Predictor{
		cfg:     cfg,
		sets:    make([]entry, cfg.Sets*cfg.Ways),
		setMask: uint32(cfg.Sets - 1),
	}, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Stats returns a copy of the event counters.
//
//arvi:hotpath
func (p *Predictor) Stats() Stats { return p.stats }

// MakeKey computes the BVIT set index and the two tags for a branch at pc
// with the given resolved leaf registers and chain depth (Figure 4).
// The index is the XOR of the low ValueBits of every leaf value and the
// branch PC bits; the ID tag is the IDTagBits-wide sum of the leaves'
// logical register ids; the depth tag is the chain depth truncated to
// DepthBits.
//
//arvi:hotpath
func (p *Predictor) MakeKey(pc uint64, leaves []LeafValue, depth int) Key {
	vmask := uint32(1)<<p.cfg.ValueBits - 1
	// PC[13:3]-style slice: fold two pc fields so nearby branches spread.
	h := (uint32(pc) ^ uint32(pc>>p.cfg.ValueBits)) & vmask
	var idSum uint32
	for _, l := range leaves {
		h ^= uint32(l.Value) & vmask
		idSum += uint32(l.Logical) & (1<<p.cfg.IDTagBits - 1)
	}
	return Key{
		Set:      h & p.setMask,
		IDTag:    uint8(idSum & (1<<p.cfg.IDTagBits - 1)),
		DepthTag: uint8(uint32(depth) & (1<<p.cfg.DepthBits - 1)),
	}
}

//arvi:hotpath
//arvi:panicfree k.Set is masked by setMask (< cfg.Sets) and len(p.sets) == cfg.Sets*cfg.Ways, so the window fits
func (p *Predictor) set(k Key) []entry {
	base := int(k.Set) * p.cfg.Ways
	return p.sets[base : base+p.cfg.Ways]
}

// Lookup probes the BVIT. On a tag match it returns the stored direction
// and hit=true; otherwise hit=false and the caller should fall back to the
// level-1 prediction.
//
//arvi:hotpath
func (p *Predictor) Lookup(k Key) (pred, hit bool) {
	pred, hit, _, _ = p.LookupEx(k)
	return pred, hit
}

// LookupEx is Lookup but also returns the entry's Heil performance counter
// and whether the direction counter is saturated (a "strong" entry). The
// two-level composition uses these to decide whether the ARVI output should
// actually steer fetch: entries that have proven ineffective, or that are
// still oscillating, keep training but do not override the level-1
// prediction.
//
//arvi:hotpath
func (p *Predictor) LookupEx(k Key) (pred, hit bool, perf uint8, strong bool) {
	p.stats.Lookups++
	s := p.set(k)
	for i := range s {
		e := &s[i]
		if e.valid && e.idTag == k.IDTag && e.depthTag == k.DepthTag {
			p.stats.Hits++
			return e.ctr >= 2, true, e.perf, e.ctr == 0 || e.ctr == 3
		}
	}
	return false, false, 0, false
}

// Update trains the entry for k with the resolved outcome, allocating a
// replacement victim on a miss. usedForPrediction tells the predictor
// whether its output actually steered fetch, which drives the Heil
// performance counters.
//
//arvi:hotpath
//arvi:panicfree victim is 0 or a previously verified loop index, both below len(s); proving it needs induction
func (p *Predictor) Update(k Key, taken, usedForPrediction bool) {
	s := p.set(k)
	for i := range s {
		e := &s[i]
		if e.valid && e.idTag == k.IDTag && e.depthTag == k.DepthTag {
			wasCorrect := (e.ctr >= 2) == taken
			if taken {
				if e.ctr < 3 {
					e.ctr++
				}
			} else if e.ctr > 0 {
				e.ctr--
			}
			if usedForPrediction {
				if wasCorrect {
					p.stats.Correct++
					if e.perf < p.cfg.PerfMax {
						e.perf++
					}
				} else {
					p.stats.Wrong++
					if e.perf > 0 {
						e.perf--
					}
				}
			} else if wasCorrect && e.perf < p.cfg.PerfMax {
				// Entries that would have been right still gain standing.
				e.perf++
			}
			return
		}
	}
	// Miss: allocate, evicting the way with the lowest performance count.
	victim := 0
	for i := 1; i < len(s); i++ {
		if !s[i].valid {
			victim = i
			break
		}
		if s[i].perf < s[victim].perf {
			victim = i
		}
	}
	if s[victim].valid {
		p.stats.Evictions++
	}
	p.stats.Allocs++
	ctr := uint8(1)
	if taken {
		ctr = 2
	}
	s[victim] = entry{valid: true, idTag: k.IDTag, depthTag: k.DepthTag, ctr: ctr, perf: 1}
}

// SizeBytes reports the BVIT hardware budget: per entry a 2-bit counter,
// 3-bit performance counter, the two tags and a valid bit.
func (p *Predictor) SizeBytes() int {
	bitsPerEntry := 2 + 3 + int(p.cfg.IDTagBits) + int(p.cfg.DepthBits) + 1
	return p.cfg.Sets * p.cfg.Ways * bitsPerEntry / 8
}

// Name identifies the predictor in reports.
func (p *Predictor) Name() string {
	return fmt.Sprintf("arvi-%dx%d", p.cfg.Sets, p.cfg.Ways)
}

// Reset clears table contents and statistics.
//
//arvi:hotpath
func (p *Predictor) Reset() {
	for i := range p.sets {
		p.sets[i] = entry{}
	}
	p.stats = Stats{}
}

package arvi

import "testing"

// BenchmarkMakeKeyLookup measures the predictor's per-branch front-end
// cost: hashing the leaf set and probing the BVIT.
func BenchmarkMakeKeyLookup(b *testing.B) {
	p := MustNew(DefaultConfig())
	leaves := []LeafValue{{Logical: 3, Value: 101}, {Logical: 7, Value: 44}, {Logical: 9, Value: 2000}}
	k := p.MakeKey(1234, leaves, 17)
	p.Update(k, true, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := p.MakeKey(1234, leaves, 17)
		p.Lookup(k)
	}
}

// BenchmarkUpdate measures the training path including replacement.
func BenchmarkUpdate(b *testing.B) {
	p := MustNew(DefaultConfig())
	leaves := []LeafValue{{Logical: 3, Value: 0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaves[0].Value = uint16(i)
		k := p.MakeKey(uint64(i), leaves, i%32)
		p.Update(k, i%3 == 0, true)
	}
}

// Package benchkit holds the canonical hot-path benchmark bodies shared by
// the `go test -bench` wrappers and cmd/benchjson, so the interactive
// benchmarks and the recorded BENCH_*.json trajectory measure exactly the
// same code. Each body has the standard func(*testing.B) signature and can
// therefore be driven either by the test harness or by testing.Benchmark.
//
// The trajectory format (see cmd/benchjson) records ns/op, allocs/op,
// bytes/op and every custom metric a body reports; future PRs append a new
// BENCH_<pr>.json rather than editing old ones, so the files form a
// perf history.
package benchkit

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DDTInsertConfig is the default geometry the headline DDTInsert number is
// quoted at: the paper's 80-entry window over a 256-register file.
var DDTInsertConfig = core.Config{Entries: 80, PhysRegs: 256}

// DDTInsert measures the steady-state per-instruction DDT cost — one
// Insert plus one Commit with the window half full — at the default
// 80-entry/256-preg geometry. This is the kernel every simulated
// instruction pays.
func DDTInsert(b *testing.B) {
	ddtInsert(b, DDTInsertConfig)
}

// DDTInsertROB256 is DDTInsert at the Table 2 machine geometry (256-entry
// ROB, 296 physical registers), the configuration the timing engine
// actually runs.
func DDTInsertROB256(b *testing.B) {
	ddtInsert(b, core.Config{Entries: 256, PhysRegs: 296})
}

func ddtInsert(b *testing.B, cfg core.Config) {
	d := core.MustNewDDT(cfg)
	srcs := []core.PhysReg{3, 7}
	for i := 0; i < cfg.Entries/2; i++ {
		if _, err := d.Insert(core.PhysReg(32+i), srcs, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Insert(core.PhysReg(32+(i%200)), srcs, i%5 == 0); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// WideROB512Config and WideROB1024Config are the wide-machine geometries
// the trajectory tracks: ROB 512/1024 with an engine-style register file
// (ROB + architectural + slack). They pin the incremental RSE's O(active
// chain) claim — the read cost at these windows must match the Table 2
// geometry, not scale with the window.
var (
	WideROB512Config  = core.Config{Entries: 512, PhysRegs: 552}
	WideROB1024Config = core.Config{Entries: 1024, PhysRegs: 1064}
)

// LeafSet measures the ARVI front-end read (chain gather + RSE extract +
// depth key) over a long dependence chain at the Table 2 geometry.
func LeafSet(b *testing.B) {
	leafSetChain(b, core.Config{Entries: 256, PhysRegs: 296})
}

// LeafSetROB512 is LeafSet at the 512-entry wide-machine geometry: the same
// 200-instruction chain, so any window-size term in the read cost shows up
// as a delta against LeafSet.
func LeafSetROB512(b *testing.B) {
	leafSetChain(b, WideROB512Config)
}

// LeafSetROB1024 is LeafSet at the 1024-entry wide-machine geometry.
func LeafSetROB1024(b *testing.B) {
	leafSetChain(b, WideROB1024Config)
}

func leafSetChain(b *testing.B, cfg core.Config) {
	d := core.MustNewDDT(cfg)
	prev := core.PhysReg(32)
	if _, err := d.Insert(prev, nil, false); err != nil {
		b.Fatal(err)
	}
	for i := 1; i < 200; i++ {
		tgt := core.PhysReg(32 + i)
		if _, err := d.Insert(tgt, []core.PhysReg{prev}, i%7 == 0); err != nil {
			b.Fatal(err)
		}
		prev = tgt
	}
	srcs := []core.PhysReg{prev}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, set, depth := d.LeafSet(srcs)
		if depth == 0 || set == nil {
			b.Fatal("empty result")
		}
	}
}

// LeafSetWrapped measures the front-end read in the wrapped steady state
// the plain LeafSet body never reaches: a full sliding window (one Insert
// and one Commit per read) whose head cycles past the table boundary, so
// Depth's wrap branch (FirstBitFrom(head) hit), the circular stale-mask
// keep build and the incremental chain delta are all on the timed path. The
// second branch source is the register written 200 inserts earlier, forcing
// the partial stale-width branch rather than the all-fresh fast path.
func LeafSetWrapped(b *testing.B) {
	const (
		window  = 200
		regs    = 260 // target recycle period, longer than the window
		regBase = 32
	)
	d := core.MustNewDDT(core.Config{Entries: 256, PhysRegs: 296})
	var hist [window]core.PhysReg
	prev := core.PhysReg(regBase)
	if _, err := d.Insert(prev, nil, false); err != nil {
		b.Fatal(err)
	}
	hist[0] = prev
	srcs := make([]core.PhysReg, 1)
	branch := make([]core.PhysReg, 2)
	for i := 1; i < window; i++ {
		tgt := core.PhysReg(regBase + i%regs)
		srcs[0] = prev
		if _, err := d.Insert(tgt, srcs, i%7 == 0); err != nil {
			b.Fatal(err)
		}
		hist[i%window] = tgt
		prev = tgt
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := window + i
		tgt := core.PhysReg(regBase + j%regs)
		srcs[0] = prev
		if _, err := d.Insert(tgt, srcs, j%7 == 0); err != nil {
			b.Fatal(err)
		}
		hist[j%window] = tgt
		prev = tgt
		if _, err := d.Commit(); err != nil {
			b.Fatal(err)
		}
		branch[0] = prev
		branch[1] = hist[(j+1)%window] // target written ~200 inserts ago
		_, set, depth := d.LeafSet(branch)
		if depth == 0 || set == nil {
			b.Fatal("empty result")
		}
	}
}

// BitvecKernels measures the fused bit-vector kernels (OrAnd, OrAndInto,
// Fill+ClearRange mask build, FirstBitFrom priority encoding) at the
// 256-entry row width the DDT uses.
func BitvecKernels(b *testing.B) {
	const bits = 256
	dst := bitvec.New(bits)
	row := bitvec.New(bits)
	mask := bitvec.New(bits)
	valid := bitvec.New(bits)
	for i := 0; i < bits; i += 3 {
		row.Set(i)
	}
	for i := 0; i < bits; i += 2 {
		valid.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		mask.Fill()
		mask.ClearRange(i%200, i%200+40)
		dst.Reset()
		dst.OrAnd(row, mask)
		dst.And(valid)
		dst.OrAndInto(row, valid, mask)
		sink += dst.FirstBitFrom(i & 63)
	}
	if sink == -b.N {
		b.Fatal("impossible")
	}
}

// EngineThroughput measures end-to-end simulator speed on the full ARVI
// configuration, replaying a pre-recorded gcc trace through a pooled
// (Reset) engine. It reports ns per simulated instruction and the headline
// simulated-MIPS figure.
func EngineThroughput(b *testing.B) {
	p := workload.ByName("gcc").Prog
	cfg := cpu.DefaultConfig(20, cpu.PredARVICurrent)
	cfg.MaxInsts = 50_000
	dec, err := trace.RecordAll(p, cfg.MaxInsts)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cpu.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		eng.Reset()
		st, err := eng.RunSource(dec.Prog(), dec.Cursor())
		if err != nil {
			b.Fatal(err)
		}
		insts += st.Insts
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 && insts > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
		b.ReportMetric(float64(insts)/secs/1e6, "sim_MIPS")
	}
}

// InsertLeafSetAllocs returns the average allocations of one steady-state
// Insert+Commit+LeafSet round at the default geometry — the regression
// guard value that must stay at zero (also enforced by
// TestSteadyStateDDTPathAllocFree and by cmd/benchjson in CI).
func InsertLeafSetAllocs() float64 {
	return InsertLeafSetAllocsAt(DDTInsertConfig)
}

// InsertLeafSetAllocsAt is InsertLeafSetAllocs at an arbitrary geometry;
// cmd/benchjson guards the wide-machine configurations through it.
func InsertLeafSetAllocsAt(cfg core.Config) float64 {
	d := core.MustNewDDT(cfg)
	srcs := []core.PhysReg{3, 7}
	for i := 0; i < 40; i++ {
		if _, err := d.Insert(core.PhysReg(32+i), srcs, false); err != nil {
			panic(err)
		}
	}
	i := 0
	return testing.AllocsPerRun(200, func() {
		if _, err := d.Insert(core.PhysReg(32+(i%200)), srcs, i%5 == 0); err != nil {
			panic(err)
		}
		if _, err := d.Commit(); err != nil {
			panic(err)
		}
		if _, _, depth := d.LeafSet(srcs); depth < 0 {
			panic("negative depth")
		}
		i++
	})
}

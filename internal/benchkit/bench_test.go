package benchkit_test

import (
	"testing"

	"repro/internal/benchkit"
)

// The wrappers expose the shared bodies to `go test -bench`; cmd/benchjson
// drives the same bodies through testing.Benchmark, so the interactive and
// recorded numbers can never diverge.

func BenchmarkDDTInsert(b *testing.B)       { benchkit.DDTInsert(b) }
func BenchmarkDDTInsertROB256(b *testing.B) { benchkit.DDTInsertROB256(b) }
func BenchmarkLeafSet(b *testing.B)         { benchkit.LeafSet(b) }
func BenchmarkLeafSetWrapped(b *testing.B)  { benchkit.LeafSetWrapped(b) }
func BenchmarkLeafSetROB512(b *testing.B)   { benchkit.LeafSetROB512(b) }
func BenchmarkLeafSetROB1024(b *testing.B)  { benchkit.LeafSetROB1024(b) }
func BenchmarkBitvecKernels(b *testing.B)   { benchkit.BitvecKernels(b) }
func BenchmarkEngineMIPS(b *testing.B)      { benchkit.EngineThroughput(b) }

// TestSteadyStateDDTPathAllocFree is the allocation regression guard for
// the steady-state Insert+Commit+LeafSet path: it must not allocate at
// all, at the default or the wide-machine geometries. cmd/benchjson
// enforces the same invariant in CI before emitting the trajectory file.
func TestSteadyStateDDTPathAllocFree(t *testing.T) {
	if avg := benchkit.InsertLeafSetAllocs(); avg != 0 {
		t.Errorf("steady-state Insert+Commit+LeafSet allocates %.2f/op, want 0", avg)
	}
	if avg := benchkit.InsertLeafSetAllocsAt(benchkit.WideROB512Config); avg != 0 {
		t.Errorf("ROB-512 Insert+Commit+LeafSet allocates %.2f/op, want 0", avg)
	}
	if avg := benchkit.InsertLeafSetAllocsAt(benchkit.WideROB1024Config); avg != 0 {
		t.Errorf("ROB-1024 Insert+Commit+LeafSet allocates %.2f/op, want 0", avg)
	}
}

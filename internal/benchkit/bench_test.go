package benchkit_test

import (
	"testing"

	"repro/internal/benchkit"
)

// The wrappers expose the shared bodies to `go test -bench`; cmd/benchjson
// drives the same bodies through testing.Benchmark, so the interactive and
// recorded numbers can never diverge.

func BenchmarkDDTInsert(b *testing.B)       { benchkit.DDTInsert(b) }
func BenchmarkDDTInsertROB256(b *testing.B) { benchkit.DDTInsertROB256(b) }
func BenchmarkLeafSet(b *testing.B)         { benchkit.LeafSet(b) }
func BenchmarkBitvecKernels(b *testing.B)   { benchkit.BitvecKernels(b) }
func BenchmarkEngineMIPS(b *testing.B)      { benchkit.EngineThroughput(b) }

// TestSteadyStateDDTPathAllocFree is the allocation regression guard for
// the steady-state Insert+Commit+LeafSet path: it must not allocate at
// all. cmd/benchjson enforces the same invariant in CI before emitting the
// trajectory file.
func TestSteadyStateDDTPathAllocFree(t *testing.T) {
	if avg := benchkit.InsertLeafSetAllocs(); avg != 0 {
		t.Errorf("steady-state Insert+Commit+LeafSet allocates %.2f/op, want 0", avg)
	}
}

package wtrace

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/workload"
)

func TestWalkBasics(t *testing.T) {
	p := asm.MustAssemble("w", `
main:
    li   r1, 0
    li   r2, 100
loop:
    addi r1, r1, 1
    add  r3, r1, r1
    bne  r1, r2, loop
    halt
`)
	var steps, branches int
	err := Walk(p, 0, 16, false, func(s *Step) error {
		steps++
		if s.Event.Inst.IsCondBranch() {
			branches++
			// The branch's sources must rename to live registers whose
			// chains are visible.
			if len(s.SrcPregs) != 2 {
				t.Fatalf("branch srcs = %v", s.SrcPregs)
			}
			if !s.DDT.Chain(s.SrcPregs[0]).Any() {
				t.Fatal("counter chain empty at branch")
			}
		}
		if s.Window >= 16 {
			t.Fatalf("window exceeded: %d", s.Window)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if branches != 100 || steps < 300 {
		t.Errorf("steps=%d branches=%d", steps, branches)
	}
}

func TestWalkRespectsMaxInsts(t *testing.T) {
	p := asm.MustAssemble("inf", "main:\n  j main\n")
	var n int
	if err := Walk(p, 500, 8, false, func(*Step) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("steps = %d, want 500", n)
	}
}

func TestWalkPropagatesCallbackError(t *testing.T) {
	p := workload.ByName("gcc").Prog
	sentinel := errors.New("stop")
	err := Walk(p, 0, 32, false, func(*Step) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestWalkValidatesWindow(t *testing.T) {
	p := workload.ByName("gcc").Prog
	if err := Walk(p, 10, 0, false, func(*Step) error { return nil }); err == nil {
		t.Error("zero window accepted")
	}
}

func TestWalkLongRunOverWorkload(t *testing.T) {
	// Window management (commit, free list, reuse) must survive a real
	// workload for many times the window size.
	p := workload.ByName("compress").Prog
	var n int
	if err := Walk(p, 50_000, 64, true, func(s *Step) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 50_000 {
		t.Errorf("steps = %d", n)
	}
}

// Package wtrace walks a program's dynamic trace while maintaining the
// idealized in-flight window the paper's analyses assume: a sliding window
// of the last W instructions, renamed onto physical registers, with a DDT
// tracking their dependence chains. Analyses (branch-slice studies,
// criticality measurements) subscribe via a callback that sees the DDT
// state exactly as the hardware would at that instruction's rename.
package wtrace

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/vm"
)

// Step is the per-instruction view handed to the callback, valid only for
// the duration of the call.
type Step struct {
	Event *vm.Event
	// DDT is the window's dependence table *before* this instruction is
	// inserted (the state a predictor reading at rename would see).
	DDT *core.DDT
	// SrcPregs are the instruction's renamed source registers.
	SrcPregs []core.PhysReg
	// Window is the current number of in-flight instructions.
	Window int
}

// Walk runs the program functionally for up to maxInsts instructions
// (0 = to halt) with an in-flight window of size window, invoking fn before
// each instruction is inserted. TrackDepCounts controls the DDT extension.
func Walk(p *prog.Program, maxInsts int64, window int, trackDeps bool,
	fn func(*Step) error) error {
	if window <= 0 {
		return fmt.Errorf("wtrace: non-positive window %d", window)
	}
	physRegs := isa.NumRegs + window + 1
	ddt, err := core.NewDDT(core.Config{
		Entries: window, PhysRegs: physRegs, TrackDepCounts: trackDeps,
	})
	if err != nil {
		return err
	}
	var mapTable [isa.NumRegs]core.PhysReg
	for i := range mapTable {
		mapTable[i] = core.PhysReg(i)
	}
	freeList := make([]core.PhysReg, 0, window+1)
	for i := isa.NumRegs; i < physRegs; i++ {
		freeList = append(freeList, core.PhysReg(i))
	}
	displacedRing := make([]core.PhysReg, window)

	machine := vm.New(p)
	var ev vm.Event
	var srcBuf [2]isa.Reg
	step := Step{Event: &ev, DDT: ddt}
	var n int64
	for maxInsts <= 0 || n < maxInsts {
		if err := machine.Step(&ev); err != nil {
			if err == vm.ErrHalted {
				return nil
			}
			return err
		}
		n++
		if ddt.Full() {
			e, err := ddt.Commit()
			if err != nil {
				return err
			}
			if old := displacedRing[e]; old != core.NoPReg {
				freeList = append(freeList, old)
			}
		}
		in := ev.Inst
		srcs := in.SrcRegs(srcBuf[:0])
		step.SrcPregs = step.SrcPregs[:0]
		for _, r := range srcs {
			step.SrcPregs = append(step.SrcPregs, mapTable[r])
		}
		step.Window = ddt.Len()
		if err := fn(&step); err != nil {
			return err
		}
		dest := core.NoPReg
		displaced := core.NoPReg
		if in.HasDest() {
			dest = freeList[0]
			freeList = freeList[1:]
			displaced = mapTable[in.Rd]
			mapTable[in.Rd] = dest
		}
		e, err := ddt.Insert(dest, step.SrcPregs, in.IsLoad())
		if err != nil {
			return err
		}
		displacedRing[e] = displaced
		if machine.Halt {
			return nil
		}
	}
	return nil
}

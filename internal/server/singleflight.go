package server

import "sync"

// response is one fully rendered HTTP reply: everything a coalesced
// waiter needs to answer its request without recomputing anything. The
// body bytes are shared verbatim between the leader and every waiter, so
// coalesced responses are byte-identical by construction.
type response struct {
	status      int
	contentType string
	body        []byte
}

// flight is one in-progress computation. Waiters block on done; the
// leader fills resp before closing it.
type flight struct {
	done    chan struct{}
	resp    *response
	waiters int
}

// flightGroup coalesces duplicate in-flight computations: the first
// request for a key becomes the leader and runs fn; every request for the
// same key that arrives before the leader finishes blocks and shares the
// leader's response. Unlike a cache, a finished flight is forgotten
// immediately — the result *cache* (internal/sim) is the durable tier;
// the flight group only prevents concurrent duplicate work.
//
// The stdlib-only implementation mirrors golang.org/x/sync/singleflight,
// which the container does not carry.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do returns fn's response for key, computing it at most once among
// concurrent callers. shared reports whether this caller was a waiter on
// another caller's computation.
func (g *flightGroup) do(key string, fn func() *response) (resp *response, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		f.waiters++
		g.mu.Unlock()
		<-f.done
		return f.resp, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	// Deregister and release the waiters even if fn panics: a wedged
	// flight would hang every waiter forever and block the key for the
	// daemon's lifetime. On panic f.resp stays nil (waiters and the
	// recovered leader path must treat a nil response as an internal
	// error) and the panic propagates to the leader's handler.
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.resp = fn()
	return f.resp, false
}

// waiters reports how many callers are currently blocked on the key's
// flight (0 when no flight is active). Tests use it to hold a leader
// until the coalescing it wants to pin has actually formed.
func (g *flightGroup) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.waiters
	}
	return 0
}

package server

// In-process cluster harness: one coordinator daemon plus N worker
// daemons, each a full Server over its own temp cache, wired together
// exactly as `arvid -role coordinator -workers-list ...` would. The
// suites here pin the distribution tentpole's headline contract — a
// distributed sweep's merged JSON is byte-identical to the single-node
// rendering, cold and warm — plus worker registration, streaming, and
// the cache-peer protocol. TestChaosDist* (chaos_dist_test.go) reuses
// the same harness for the failure-mode half of the story.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/storage"
)

// clusterNode is one daemon (coordinator or worker) in the harness.
type clusterNode struct {
	srv *Server
	ts  *httptest.Server
	eng *sim.Engine
}

// cluster is a coordinator with its worker set.
type cluster struct {
	coord   clusterNode
	co      *dist.Coordinator
	workers []clusterNode
}

// newCluster builds nWorkers worker daemons and a coordinator pointed at
// them. tune (optional) adjusts the coordinator before any job runs.
// Retry backoff and cooldown are shrunk so chaos tests converge fast.
func newCluster(t *testing.T, nWorkers int, tune func(*dist.Coordinator)) *cluster {
	t.Helper()
	cl := &cluster{}
	urls := make([]string, nWorkers)
	for i := 0; i < nWorkers; i++ {
		s, ts, eng := newTestServer(t, nil)
		cl.workers = append(cl.workers, clusterNode{srv: s, ts: ts, eng: eng})
		urls[i] = ts.URL
	}
	cl.co = &dist.Coordinator{
		Backoff:  time.Millisecond,
		Cooldown: 100 * time.Millisecond,
		// One conn pool per cluster, torn down with the test, so the
		// goroutine-hygiene assertions see their own transport only.
		Client: &http.Client{Timeout: 30 * time.Second, Transport: &http.Transport{}},
	}
	cl.co.SetWorkers(urls)
	if tune != nil {
		tune(cl.co)
	}
	s, ts, eng := newTestServer(t, func(c *Config) {
		c.Coordinator = cl.co
		cl.co.Local = c.Engine
	})
	cl.coord = clusterNode{srv: s, ts: ts, eng: eng}
	t.Cleanup(cl.close)
	return cl
}

// close tears the cluster down: transport first (so no new conns form),
// then every daemon. Idempotent, so tests may close early for goroutine
// accounting and still let the cleanup run.
func (cl *cluster) close() {
	if tr, ok := cl.co.Client.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	cl.coord.ts.Close()
	for _, w := range cl.workers {
		w.ts.Close()
	}
}

// totalSimulated sums actual simulations across every engine in the
// cluster — the compute-count the distribution contract bounds.
func (cl *cluster) totalSimulated() int64 {
	n := cl.coord.eng.Simulated()
	for _, w := range cl.workers {
		n += w.eng.Simulated()
	}
	return n
}

// singleNodeBaseline computes the golden single-node response bytes for
// one endpoint+body on a fresh solo server.
func singleNodeBaseline(t *testing.T, path, body string) []byte {
	t.Helper()
	_, ts, _ := newTestServer(t, nil)
	resp, b := post(t, ts.URL+path, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node %s: status %d: %s", path, resp.StatusCode, b)
	}
	return b
}

// matrixCellCoords extracts (bench, depth, mode) coordinates from a
// matrix response body, for duplicate detection.
func matrixCellCoords(t *testing.T, body []byte) []string {
	t.Helper()
	var mr matrixResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("matrix body: %v (%s)", err, body)
	}
	coords := make([]string, len(mr.Cells))
	for i, c := range mr.Cells {
		coords[i] = fmt.Sprintf("%s/%d/%s", c.Bench, c.Depth, c.Mode)
	}
	return coords
}

// assertNoDuplicateCells pins the never-double-counts contract on a
// merged matrix body.
func assertNoDuplicateCells(t *testing.T, label string, body []byte) {
	t.Helper()
	seen := make(map[string]bool)
	for _, c := range matrixCellCoords(t, body) {
		if seen[c] {
			t.Errorf("%s: cell %s appears twice in the merged response", label, c)
		}
		seen[c] = true
	}
}

// fullMatrixBody requests the full 96-cell grid (all benches × depths ×
// modes default in) at the test budget.
const fullMatrixBody = `{"max_insts":5000}`

// TestClusterMatrixByteIdenticalColdWarm is the tentpole's headline
// assertion: the full 96-cell matrix distributed over three workers is
// byte-identical to the single-node rendering, cold and warm, each cell
// is computed exactly once cluster-wide, and a warm repeat computes
// nothing anywhere.
func TestClusterMatrixByteIdenticalColdWarm(t *testing.T) {
	want := singleNodeBaseline(t, "/v1/matrix", fullMatrixBody)
	cl := newCluster(t, 3, nil)

	resp, got := post(t, cl.coord.ts.URL+"/v1/matrix", fullMatrixBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed matrix: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed matrix not byte-identical to single-node:\n got %d bytes\nwant %d bytes\n got: %.400s\nwant: %.400s", len(got), len(want), got, want)
	}
	assertNoDuplicateCells(t, "cold", got)
	if n := cl.totalSimulated(); n != 96 {
		t.Errorf("cold sweep simulated %d cells cluster-wide, want exactly 96", n)
	}
	if n := cl.coord.eng.Simulated(); n != 0 {
		t.Errorf("coordinator simulated %d cells itself with healthy workers, want 0", n)
	}
	for i, w := range cl.workers {
		if w.eng.Simulated() == 0 {
			t.Errorf("worker %d simulated nothing; rendezvous placement should spread 96 cells over 3 workers", i)
		}
	}
	if r := cl.co.RetriedJobs(); r != 0 {
		t.Errorf("healthy cluster retried %d jobs, want 0", r)
	}

	// Warm: byte-identical again, and nothing re-simulates — rendezvous
	// routes each cell back to the worker whose cache holds it.
	cold := cl.totalSimulated()
	resp, warm := post(t, cl.coord.ts.URL+"/v1/matrix", fullMatrixBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm distributed matrix: status %d", resp.StatusCode)
	}
	if !bytes.Equal(warm, want) {
		t.Fatal("warm distributed matrix not byte-identical to single-node")
	}
	if n := cl.totalSimulated(); n != cold {
		t.Errorf("warm sweep re-simulated %d cells", n-cold)
	}
}

// TestClusterStudiesByteIdentical pins byte-identity for both study
// grids, cold and warm, against single-node output.
func TestClusterStudiesByteIdentical(t *testing.T) {
	cases := []struct {
		name, path, body string
	}{
		{"smt", "/v1/study/smt", `{"max_cycles":3000}`},
		{"vpred", "/v1/study/vpred", `{"max_insts":5000}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := singleNodeBaseline(t, tc.path, tc.body)
			cl := newCluster(t, 2, nil)
			resp, got := post(t, cl.coord.ts.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("distributed %s: status %d: %s", tc.name, resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("distributed %s not byte-identical to single-node:\n got: %.400s\nwant: %.400s", tc.name, got, want)
			}
			if n := cl.coord.eng.Simulated(); n != 0 {
				t.Errorf("coordinator simulated %d cells itself with healthy workers, want 0", n)
			}
			resp, warmB := post(t, cl.coord.ts.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusOK || !bytes.Equal(warmB, want) {
				t.Fatalf("warm distributed %s drifted (status %d)", tc.name, resp.StatusCode)
			}
		})
	}
}

// TestClusterStreamMatchesBlocking pins the streaming contract on both a
// solo daemon and a coordinator: the reassembled stream reproduces the
// blocking response's cells exactly and the trailer carries the totals.
func TestClusterStreamMatchesBlocking(t *testing.T) {
	body := `{"benches":["li","gcc"],"depths":[20],"max_insts":5000}`
	run := func(t *testing.T, baseURL string) {
		resp, blocking := post(t, baseURL+"/v1/matrix", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("blocking matrix: status %d: %s", resp.StatusCode, blocking)
		}
		var mr matrixResponse
		if err := json.Unmarshal(blocking, &mr); err != nil {
			t.Fatal(err)
		}

		sresp, err := http.Post(baseURL+"/v1/matrix?stream=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer sresp.Body.Close()
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("stream: status %d", sresp.StatusCode)
		}
		if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("stream content type %q", ct)
		}
		results, trailer, err := dist.DecodeMatrixStream(sresp.Body)
		if err != nil {
			t.Fatalf("decode stream: %v", err)
		}
		if trailer.Cells != len(results) || trailer.Error != "" || trailer.MaxInsts != 5000 {
			t.Fatalf("trailer %+v for %d streamed cells", trailer, len(results))
		}
		// Completion order is nondeterministic; reassemble through the same
		// Matrix + Records path the blocking response used and compare the
		// rendered cells byte-for-byte.
		mx := &sim.Matrix{MaxInsts: 5000}
		for _, r := range results {
			mx.Add(r)
		}
		got, err := json.Marshal(mx.Records([]int{20}))
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(mr.Cells)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("reassembled stream differs from blocking response:\n got %s\nwant %s", got, want)
		}
	}
	t.Run("solo", func(t *testing.T) {
		_, ts, _ := newTestServer(t, nil)
		run(t, ts.URL)
	})
	t.Run("coordinator", func(t *testing.T) {
		cl := newCluster(t, 2, nil)
		run(t, cl.coord.ts.URL)
	})
}

// TestClusterSharedCacheDir runs two workers over one cache directory
// (the NFS-mount deployment DirKV's atomic writes exist for): the cold
// sweep is byte-identical, and on the warm repeat either worker serves
// any cell straight from the shared store — zero recompute, even where
// rendezvous placement moved.
func TestClusterSharedCacheDir(t *testing.T) {
	want := singleNodeBaseline(t, "/v1/matrix", fullMatrixBody)
	shared := t.TempDir()
	var urls []string
	var engines []*sim.Engine
	for i := 0; i < 2; i++ {
		cache, err := sim.OpenCache(shared)
		if err != nil {
			t.Fatal(err)
		}
		traces, err := sim.OpenTraceStore("", 0)
		if err != nil {
			t.Fatal(err)
		}
		eng := &sim.Engine{Cache: cache, Traces: traces}
		ts := httptest.NewServer(New(Config{Engine: eng, DefaultInsts: testInsts}))
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		engines = append(engines, eng)
	}
	co := &dist.Coordinator{Backoff: time.Millisecond}
	co.SetWorkers(urls)
	_, coordTS, coordEng := newTestServer(t, func(c *Config) {
		c.Coordinator = co
		co.Local = c.Engine
	})

	resp, got := post(t, coordTS.URL+"/v1/matrix", fullMatrixBody)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("shared-dir sweep drifted (status %d)", resp.StatusCode)
	}
	cold := engines[0].Simulated() + engines[1].Simulated() + coordEng.Simulated()
	if cold != 96 {
		t.Errorf("cold shared-dir sweep simulated %d cells, want 96", cold)
	}
	resp, warm := post(t, coordTS.URL+"/v1/matrix", fullMatrixBody)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(warm, want) {
		t.Fatalf("warm shared-dir sweep drifted (status %d)", resp.StatusCode)
	}
	if n := engines[0].Simulated() + engines[1].Simulated() + coordEng.Simulated(); n != cold {
		t.Errorf("warm shared-dir sweep re-simulated %d cells", n-cold)
	}
}

// TestClusterWorkerRegistration pins the /v1/workers endpoints: GET
// lists, POST joins (idempotently), solo daemons refuse, and /healthz
// grows the dist section only in the coordinator role.
func TestClusterWorkerRegistration(t *testing.T) {
	cl := newCluster(t, 1, nil)
	_, extraTS, extraEng := newTestServer(t, nil)

	resp, b := get(t, cl.coord.ts.URL+"/v1/workers")
	var wr workersResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(b, &wr) != nil || len(wr.Workers) != 1 {
		t.Fatalf("initial workers: %d %s", resp.StatusCode, b)
	}

	// Join the new worker, twice — registration is idempotent.
	regBody := fmt.Sprintf(`{"url":%q}`, extraTS.URL)
	for i := 0; i < 2; i++ {
		resp, b = post(t, cl.coord.ts.URL+"/v1/workers", regBody)
		if resp.StatusCode != http.StatusOK || json.Unmarshal(b, &wr) != nil || len(wr.Workers) != 2 {
			t.Fatalf("register attempt %d: %d %s", i, resp.StatusCode, b)
		}
	}
	resp, b = post(t, cl.coord.ts.URL+"/v1/workers", `{"url":"not a url"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk worker url accepted: %d %s", resp.StatusCode, b)
	}

	// The joined worker actually receives jobs.
	want := singleNodeBaseline(t, "/v1/matrix", fullMatrixBody)
	resp, got := post(t, cl.coord.ts.URL+"/v1/matrix", fullMatrixBody)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("post-registration sweep drifted (status %d)", resp.StatusCode)
	}
	if extraEng.Simulated() == 0 {
		t.Error("registered worker never received a job")
	}

	// healthz: coordinator reports the dist section, solo daemons don't.
	_, hb := get(t, cl.coord.ts.URL+"/healthz")
	var h struct {
		Dist *distHealth `json:"dist"`
	}
	if err := json.Unmarshal(hb, &h); err != nil || h.Dist == nil {
		t.Fatalf("coordinator healthz has no dist section: %s", hb)
	}
	if len(h.Dist.Workers) != 2 || h.Dist.RemoteJobs == 0 {
		t.Errorf("dist health: %+v", h.Dist)
	}
	_, hb = get(t, extraTS.URL+"/healthz")
	if bytes.Contains(hb, []byte(`"dist"`)) {
		t.Errorf("solo healthz grew a dist section: %s", hb)
	}
	resp, _ = get(t, extraTS.URL+"/v1/workers")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("solo /v1/workers: status %d, want 404", resp.StatusCode)
	}
}

// TestClusterCachePeerProtocol pins the /v1/cache endpoints and the peer
// tier end to end: a cell computed on daemon A is served by daemon B
// from A's cache without simulating, junk keys and junk payloads are
// rejected, and a rejected payload never poisons the store.
func TestClusterCachePeerProtocol(t *testing.T) {
	_, tsA, engA := newTestServer(t, nil)
	_, tsB, engB := newTestServer(t, nil)
	engB.Cache.SetPeers(storage.NewPeerKV([]string{tsA.URL}, nil), false)

	body := `{"bench":"m88ksim","depth":20,"mode":"arvi-current","max_insts":5000}`
	resp, want := post(t, tsA.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime run: status %d: %s", resp.StatusCode, want)
	}

	// B misses locally, fetches A's entry through the peer tier, and
	// serves the byte-identical result without simulating.
	resp, got := post(t, tsB.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-warmed run: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("peer-warmed run not byte-identical:\n got %s\nwant %s", got, want)
	}
	if n := engB.Simulated(); n != 0 {
		t.Errorf("peer-warmed daemon simulated %d cells, want 0", n)
	}
	if engB.Cache.PeerHits() != 1 {
		t.Errorf("peer hits = %d, want 1", engB.Cache.PeerHits())
	}

	// Raw endpoint behaviour: junk key shapes are rejected before any
	// backend is touched; a real miss is a JSON 404.
	resp, _ = get(t, tsA.URL+"/v1/cache/nothex")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk key: status %d, want 400", resp.StatusCode)
	}
	missKey := strings.Repeat("ab", 32)
	resp, _ = get(t, tsA.URL+"/v1/cache/"+missKey)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("miss: status %d, want 404", resp.StatusCode)
	}

	// PUT validation: a payload whose envelope does not describe the key
	// it is pushed under is refused, and the store stays clean.
	req, err := http.NewRequest(http.MethodPut, tsA.URL+"/v1/cache/"+missKey, strings.NewReader(`{"version":99}`))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk entry accepted: status %d", presp.StatusCode)
	}
	if _, ok := engA.Cache.Raw(missKey); ok {
		t.Error("rejected peer payload reached the store")
	}
}

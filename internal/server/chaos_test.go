package server

// Chaos tests for the service's failure domains: request deadlines,
// drain, panic containment and degraded-storage reporting. Every test
// matches `go test -run Chaos`, which CI runs with the race detector.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/storage"
)

// TestChaosRequestTimeoutReturns504 pins the -request-timeout contract:
// simulation work past the deadline is canceled at its next checkpoint
// and the request fails as a gateway timeout, not a generic 500.
func TestChaosRequestTimeoutReturns504(t *testing.T) {
	_, ts, _ := newTestServer(t, func(c *Config) {
		c.RequestTimeout = time.Nanosecond // expires before the first checkpoint
	})
	resp, body := post(t, ts.URL+"/v1/run", `{"bench":"li","depth":20,"mode":"arvi-current"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("504 body is not the error envelope: %s", body)
	}
	// The matrix endpoint keeps its partial-result envelope on timeout.
	resp, body = post(t, ts.URL+"/v1/matrix", `{"benches":["li"],"depths":[20]}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("matrix status = %d, want 504; body %s", resp.StatusCode, body)
	}
	var mr struct {
		Cells []sim.Record `json:"cells"`
		Error string       `json:"error"`
	}
	if err := json.Unmarshal(body, &mr); err != nil || mr.Error == "" || mr.Cells == nil {
		t.Fatalf("timeout matrix response lost the partial-result envelope: %s", body)
	}
}

// TestChaosDrainRefusesNewAndCancelsInflight pins the SIGTERM drain
// sequence: once StartDrain is called, new requests get 503 with a
// Retry-After hint, and requests already computing are canceled at their
// next checkpoint instead of holding Shutdown hostage.
func TestChaosDrainRefusesNewAndCancelsInflight(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)
	started := make(chan struct{})
	s.testGate = func(string) {
		close(started)
		// Hold the computation long enough for the drain to land; the
		// canceled context then fails the cells at their first checkpoint.
		time.Sleep(50 * time.Millisecond)
	}
	type result struct {
		status int
		body   string
	}
	done := make(chan result, 1)
	go func() {
		// A budget big enough (but within -max-insts) that an uncanceled
		// run would take far longer than this test is willing to wait.
		resp, body := post(t, ts.URL+"/v1/matrix",
			`{"benches":["gcc"],"depths":[20],"modes":["arvi-current"],"max_insts":30000000}`)
		done <- result{resp.StatusCode, string(body)}
	}()
	select {
	case <-started:
	case r := <-done:
		t.Fatalf("request finished before entering the flight: %d %s", r.status, r.body)
	}
	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}

	// New work is turned away immediately with a retry hint.
	resp, body := post(t, ts.URL+"/v1/run", `{"bench":"li","depth":20,"mode":"arvi-current"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}

	// The in-flight request fails promptly with the cancellation surfaced.
	select {
	case r := <-done:
		if r.status != http.StatusInternalServerError {
			t.Errorf("drained in-flight status = %d, want 500", r.status)
		}
		if !strings.Contains(r.body, "context canceled") {
			t.Errorf("drained in-flight body does not surface the cancellation: %s", r.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request not canceled by drain")
	}
}

// TestChaosPanicMiddlewareContainsHandlerPanics registers a deliberately
// panicking route and asserts the outermost middleware converts the panic
// into a JSON 500, counts it, and leaves the server serving.
func TestChaosPanicMiddlewareContainsHandlerPanics(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)
	s.mux.HandleFunc("GET /test/panic", func(http.ResponseWriter, *http.Request) {
		panic("deliberate test panic")
	})
	resp, body := get(t, ts.URL+"/test/panic")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "panicked") {
		t.Fatalf("panic response is not the JSON envelope: %s", body)
	}
	if s.Panics() != 1 {
		t.Errorf("panic counter = %d, want 1", s.Panics())
	}
	// The server survives: real work still computes and healthz reports
	// the contained panic.
	resp, _ = post(t, ts.URL+"/v1/run", `{"bench":"li","depth":20,"mode":"arvi-current"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic run status = %d", resp.StatusCode)
	}
	_, hb := get(t, ts.URL+"/healthz")
	var h struct {
		Status string `json:"status"`
		Panics int64  `json:"panics"`
	}
	if err := json.Unmarshal(hb, &h); err != nil || h.Panics != 1 || h.Status != "ok" {
		t.Errorf("healthz after panic: %s", hb)
	}
	// net/http's own abort sentinel passes through untouched (and is not
	// counted as a contained panic).
	s.mux.HandleFunc("GET /test/abort", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ErrAbortHandler swallowed instead of re-panicked")
			}
		}()
		req := httptest.NewRequest("GET", "/test/abort", nil)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	if s.Panics() != 1 {
		t.Errorf("ErrAbortHandler counted as a contained panic: %d", s.Panics())
	}
}

// TestChaosHealthzReportsDegradedStorage trips the cache's circuit
// breaker on a write-broken disk and asserts /healthz switches to
// "degraded" with the storage detail, then back to "ok" after recovery.
func TestChaosHealthzReportsDegradedStorage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ffs := storage.NewFaultFS(storage.OS{})
	now := time.Unix(1000, 0)
	brk := storage.NewBreaker(2, time.Minute)
	brk.Clock = func() time.Time { return now }
	cache, err := sim.OpenCacheFS(dir, ffs, brk)
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{Cache: cache}
	ts := httptest.NewServer(New(Config{Engine: eng, DefaultInsts: testInsts}))
	t.Cleanup(ts.Close)

	type health struct {
		Status  string `json:"status"`
		Storage struct {
			CacheDegraded   bool  `json:"cache_degraded"`
			CacheMemEntries int   `json:"cache_mem_entries"`
			CacheTrips      int64 `json:"cache_trips"`
		} `json:"storage"`
	}
	readHealth := func() health {
		t.Helper()
		_, b := get(t, ts.URL+"/healthz")
		var h health
		if err := json.Unmarshal(b, &h); err != nil {
			t.Fatalf("healthz: %v (%s)", err, b)
		}
		return h
	}
	if h := readHealth(); h.Status != "ok" || h.Storage.CacheDegraded {
		t.Fatalf("healthy server reports %+v", h)
	}

	// The disk breaks; a run trips the breaker (its first writes fail
	// loudly, then the cache degrades) but still answers correctly.
	ffs.Break()
	resp, body := post(t, ts.URL+"/v1/run", `{"bench":"li","depth":20,"mode":"arvi-current"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("pre-trip run status = %d (cache failure must surface); body %s", resp.StatusCode, body)
	}
	for cache.Breaker().Open() == false {
		if err := cache.Put(sim.Spec{Bench: "li", Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: 123}, cpu.Stats{Insts: 1}); err == nil {
			break
		}
	}
	h := readHealth()
	if h.Status != "degraded" || !h.Storage.CacheDegraded || h.Storage.CacheTrips != 1 {
		t.Fatalf("broken-disk healthz: %+v", h)
	}
	// Degraded-mode requests succeed (memory overlay), results correct.
	resp, body = post(t, ts.URL+"/v1/run", `{"bench":"compress","depth":20,"mode":"arvi-current"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded run status = %d; body %s", resp.StatusCode, body)
	}

	// Recovery: heal the disk, pass probation, and let a write probe
	// close the breaker — healthz returns to "ok".
	ffs.Heal()
	now = now.Add(2 * time.Minute)
	if err := cache.Put(sim.Spec{Bench: "li", Depth: 20, Mode: cpu.PredARVICurrent, MaxInsts: 456}, cpu.Stats{Insts: 2}); err != nil {
		t.Fatal(err)
	}
	if h := readHealth(); h.Status != "ok" || h.Storage.CacheDegraded || h.Storage.CacheMemEntries != 0 {
		t.Fatalf("post-recovery healthz: %+v", h)
	}
}

package server

// Chaos suites for the distributed tier, over the cluster harness in
// cluster_test.go. Each test injects one failure — a worker dead before
// the sweep, a worker killed mid-sweep, a worker whose cache disk is
// broken, every worker gone, a coordinator deadline expiring — and pins
// the recovery contract: the merged response is either byte-identical
// to single-node output or a clean joined error, no cell is ever
// double-counted, worker loss costs at most the lost cells' recompute,
// and no goroutines leak.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// chaosMatrixBody is a 16-cell grid (2 benches x 2 depths x 4 modes):
// big enough that both workers get jobs, small enough to re-run under
// -race in every chaos scenario.
const chaosMatrixBody = `{"benches":["li","gcc"],"depths":[20,40],"max_insts":5000}`

const chaosMatrixCells = 16

// TestChaosDistDeadWorkerFromStart points a coordinator at one live and
// one never-started worker. Every job placed on the corpse must retry
// onto the survivor: the sweep stays byte-identical, each cell is
// computed exactly once, and the retry counter shows the reroutes.
func TestChaosDistDeadWorkerFromStart(t *testing.T) {
	want := singleNodeBaseline(t, "/v1/matrix", chaosMatrixBody)
	cl := newCluster(t, 2, nil)
	cl.workers[0].ts.Close() // dead before the first job

	resp, got := post(t, cl.coord.ts.URL+"/v1/matrix", chaosMatrixBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep with a dead worker: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sweep with a dead worker not byte-identical to single-node")
	}
	assertNoDuplicateCells(t, "dead worker", got)
	// The dead worker computed nothing, so rerouting must cost zero extra
	// compute: exactly one simulation per cell, all on the survivor.
	if n := cl.totalSimulated(); n != chaosMatrixCells {
		t.Errorf("cluster simulated %d cells, want exactly %d", n, chaosMatrixCells)
	}
	if n := cl.workers[1].eng.Simulated(); n != chaosMatrixCells {
		t.Errorf("surviving worker simulated %d cells, want %d", n, chaosMatrixCells)
	}
	if cl.co.RetriedJobs() == 0 {
		t.Error("no jobs recorded as retried despite a dead worker")
	}
}

// TestChaosDistWorkerKilledMidSweep severs a worker's connections while
// its jobs are in flight. The coordinator must reroute exactly those
// jobs: the response is byte-identical, no cell appears twice, and any
// extra compute is bounded by the retry count (a cell that finished
// right as its connection died is recomputed once elsewhere, nothing
// more). Ends with a goroutine-hygiene check over the whole episode.
func TestChaosDistWorkerKilledMidSweep(t *testing.T) {
	want := singleNodeBaseline(t, "/v1/matrix", chaosMatrixBody)
	http.DefaultClient.CloseIdleConnections()
	before := runtime.NumGoroutine()

	cl := newCluster(t, 2, nil)
	victim := cl.workers[0]
	gateHit := make(chan struct{})
	killed := make(chan struct{})
	var once sync.Once
	victim.srv.testGate = func(string) {
		once.Do(func() { close(gateHit) })
		<-killed
	}

	swept := make(chan []byte, 1)
	status := make(chan int, 1)
	go func() {
		resp, b := post(t, cl.coord.ts.URL+"/v1/matrix", chaosMatrixBody)
		status <- resp.StatusCode
		swept <- b
	}()

	select {
	case <-gateHit:
	case <-time.After(10 * time.Second):
		t.Fatal("no job ever reached the victim worker")
	}
	// Sever every in-flight connection, then release the gated handlers
	// into their already-dead requests. The worker process itself stays
	// up — a crashed-and-restarted node the coordinator may reuse.
	victim.ts.CloseClientConnections()
	close(killed)

	if st := <-status; st != http.StatusOK {
		t.Fatalf("sweep across a mid-sweep kill: status %d", st)
	}
	got := <-swept
	if !bytes.Equal(got, want) {
		t.Fatal("sweep across a mid-sweep kill not byte-identical to single-node")
	}
	assertNoDuplicateCells(t, "mid-sweep kill", got)
	if cl.co.RetriedJobs() == 0 {
		t.Error("no jobs recorded as retried despite severed connections")
	}
	// Worker loss costs only the lost cells' recompute: every simulation
	// beyond one-per-cell must be accounted for by a rerouted job.
	extra := cl.totalSimulated() - chaosMatrixCells
	if extra < 0 {
		t.Errorf("cluster simulated %d cells, fewer than the %d in the grid", cl.totalSimulated(), chaosMatrixCells)
	}
	if extra > cl.co.RetriedJobs() {
		t.Errorf("%d extra simulations exceed %d retried jobs: a cell was double-computed without a failure", extra, cl.co.RetriedJobs())
	}

	// Hygiene: tear the cluster down and insist the goroutine count
	// settles back, so severed connections and rerouted jobs leaked
	// nothing.
	cl.close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked across the kill: %d before, %d after teardown", before, n)
	}
}

// TestChaosDistFaultyWorkerCache breaks one worker's cache disk (every
// write fails) and sweeps. Cache trouble is soft by contract: the
// degraded worker still computes and answers, the sweep stays
// byte-identical with no double-counted cells, and a warm repeat is
// byte-identical too even though the broken disk retained nothing.
func TestChaosDistFaultyWorkerCache(t *testing.T) {
	want := singleNodeBaseline(t, "/v1/matrix", chaosMatrixBody)

	ffs := storage.NewFaultFS(storage.OS{})
	cache, err := sim.OpenCacheFS(filepath.Join(t.TempDir(), "cache"), ffs, storage.NewBreaker(2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	traces, err := sim.OpenTraceStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	faultyEng := &sim.Engine{Cache: cache, Traces: traces}
	faultyTS := httptest.NewServer(New(Config{Engine: faultyEng, DefaultInsts: testInsts}))
	t.Cleanup(faultyTS.Close)
	ffs.Break() // writes, renames and mkdirs now fail; reads still work

	cl := newCluster(t, 1, nil)
	cl.co.AddWorker(faultyTS.URL)

	resp, got := post(t, cl.coord.ts.URL+"/v1/matrix", chaosMatrixBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep with a write-broken worker cache: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sweep with a write-broken worker cache not byte-identical")
	}
	assertNoDuplicateCells(t, "faulty cache", got)
	// Until the worker's circuit breaker trips, a failed write-back
	// surfaces as a request error (the single-node contract), so the
	// coordinator reroutes that job: extra compute is allowed but must
	// be accounted for by retries, never by double-counting.
	total := cl.totalSimulated() + faultyEng.Simulated()
	if total < chaosMatrixCells {
		t.Errorf("cluster simulated %d cells, fewer than the %d in the grid", total, chaosMatrixCells)
	}
	if extra := total - chaosMatrixCells; extra > cl.co.RetriedJobs() {
		t.Errorf("%d extra simulations exceed %d retried jobs", extra, cl.co.RetriedJobs())
	}
	if faultyEng.Simulated() == 0 {
		t.Error("degraded worker received no jobs; the fault never exercised the contract")
	}
	if ffs.Injected() == 0 {
		t.Error("fault filesystem injected nothing; the cache never touched the broken disk")
	}

	resp, warm := post(t, cl.coord.ts.URL+"/v1/matrix", chaosMatrixBody)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(warm, want) {
		t.Fatalf("warm sweep over the degraded cluster drifted (status %d)", resp.StatusCode)
	}
}

// TestChaosDistAllWorkersDown closes every worker. The coordinator must
// finish the sweep itself — byte-identical, every job recorded as a
// local fallback — rather than fail it.
func TestChaosDistAllWorkersDown(t *testing.T) {
	want := singleNodeBaseline(t, "/v1/matrix", chaosMatrixBody)
	cl := newCluster(t, 2, nil)
	cl.workers[0].ts.Close()
	cl.workers[1].ts.Close()

	resp, got := post(t, cl.coord.ts.URL+"/v1/matrix", chaosMatrixBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep with every worker down: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("local-fallback sweep not byte-identical to single-node")
	}
	if n := cl.coord.eng.Simulated(); n != chaosMatrixCells {
		t.Errorf("coordinator simulated %d cells locally, want all %d", n, chaosMatrixCells)
	}
	if n := cl.co.LocalJobs(); n != chaosMatrixCells {
		t.Errorf("local-fallback jobs = %d, want %d", n, chaosMatrixCells)
	}
}

// TestChaosDistCoordinatorDeadline stalls a worker past the
// coordinator's request deadline and asserts the distributed sweep
// fails the same way a local one does: a clean 504 with a JSON error
// envelope, never a hung request — and the cluster still serves once
// the stall clears.
func TestChaosDistCoordinatorDeadline(t *testing.T) {
	release := make(chan struct{})
	cl := newCluster(t, 2, nil)
	// Same package: tune the deadline directly before any traffic.
	cl.coord.srv.cfg.RequestTimeout = 200 * time.Millisecond
	for _, w := range cl.workers {
		w.srv.testGate = func(string) { <-release }
	}

	resp, body := post(t, cl.coord.ts.URL+"/v1/matrix", chaosMatrixBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled distributed sweep: status %d: %s", resp.StatusCode, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("stalled sweep did not return a JSON error envelope: %s", body)
	}
	close(release)

	// The deadline killed the request, not the cluster: the same grid
	// sweeps clean afterwards. No coordinator request is in flight here,
	// so resetting the deadline is race-free.
	cl.coord.srv.cfg.RequestTimeout = 0
	resp, got := post(t, cl.coord.ts.URL+"/v1/matrix", chaosMatrixBody)
	want := singleNodeBaseline(t, "/v1/matrix", chaosMatrixBody)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("cluster did not recover after the deadline episode (status %d)", resp.StatusCode)
	}
}

package server

// The distribution-facing endpoints: the streaming matrix variant, the
// cache-peer protocol, and worker registration. See internal/dist's
// package comment and DESIGN.md's distributed execution section.

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"repro/internal/cpu"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/storage"
)

// --- POST /v1/matrix?stream=1 ---------------------------------------------

// streamMatrix serves the incremental variant of /v1/matrix: completed
// cells as chunked JSON lines in completion order, then a trailer with
// the totals and the joined partial-failure error (dist.StreamLine is
// the wire format; dist.DecodeMatrixStream the client-side decoder).
//
// Streaming claims an in-flight computation slot like any other request
// but bypasses singleflight: a stream's value is watching *this* sweep's
// progression, and two identical streams sharing one body would tangle
// their chunk timing for a micro-optimisation nobody asked for.
func (s *Server) streamMatrix(w http.ResponseWriter, r *http.Request, key string, benches []string, depths []int, modes []cpu.PredMode, maxInsts int64) {
	select {
	case s.inflight <- struct{}{}:
	default:
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("server at capacity (%d computations in flight; see -max-inflight)", cap(s.inflight)))
		return
	}
	defer func() { <-s.inflight }()
	if s.testGate != nil {
		s.testGate(key)
	}
	s.computes.Add(1)
	ctx, cancel := s.requestContext(r)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var mu sync.Mutex
	emit := func(line dist.StreamLine) {
		mu.Lock()
		defer mu.Unlock()
		// A short write means the client went away; the sweep still runs to
		// completion (or cancellation via the request context) either way.
		_, _ = w.Write(dist.EncodeStreamLine(line))
		if fl != nil {
			fl.Flush()
		}
	}

	specs := sim.MatrixSpecs(benches, depths, modes, maxInsts)
	var results []sim.Result
	var err error
	if s.cfg.Coordinator != nil {
		results, err = s.cfg.Coordinator.RunSpecs(ctx, specs, func(i int, res sim.Result, jobErr error) {
			if jobErr == nil {
				emit(dist.StreamLine{Result: &res})
			}
		})
	} else {
		results, err = s.cfg.Engine.RunEach(ctx, specs, func(i int, res sim.Result, simErr, cacheErr error) {
			if simErr == nil {
				emit(dist.StreamLine{Result: &res})
			}
		})
	}
	emit(dist.StreamLine{Done: &dist.StreamTrailer{
		MaxInsts: maxInsts, Cells: len(results), Error: errString(err, ""),
	}})
}

// --- GET/PUT /v1/cache/{key} ----------------------------------------------

// cacheFor returns the result cache the peer endpoints serve, or writes
// the reason there is none.
func (s *Server) cacheFor(w http.ResponseWriter) (*sim.Cache, bool) {
	c := s.cfg.Engine.Cache
	if c == nil {
		writeError(w, http.StatusNotFound, "this daemon runs without a result cache")
		return nil, false
	}
	return c, true
}

// handleCacheGet serves one raw cache entry to a peer. The payload is
// the entry's self-describing bytes; the requesting peer validates them
// (version, key, checksum) before trusting anything, so this endpoint
// can stay a dumb byte server.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !storage.ValidKey(key) {
		writeError(w, http.StatusBadRequest, "cache key must be 64 lowercase hex digits")
		return
	}
	c, ok := s.cacheFor(w)
	if !ok {
		return
	}
	b, ok := c.Raw(key)
	if !ok {
		writeError(w, http.StatusNotFound, "cache miss")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// A short write means the peer went away; it will retry or recompute.
	_, _ = w.Write(b)
}

// handleCachePut accepts one entry pushed by a peer. The entry's
// envelope must describe the key it was pushed under (sim.Cache.PutRaw's
// validation); a malformed or mislabelled payload is rejected before it
// can touch the store, and even an accepted entry is re-validated by the
// typed read path before it is ever served.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !storage.ValidKey(key) {
		writeError(w, http.StatusBadRequest, "cache key must be 64 lowercase hex digits")
		return
	}
	c, ok := s.cacheFor(w)
	if !ok {
		return
	}
	b, err := io.ReadAll(io.LimitReader(r.Body, storage.MaxPeerEntry+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read entry: %v", err))
		return
	}
	if len(b) > storage.MaxPeerEntry {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("cache entry exceeds %d bytes", storage.MaxPeerEntry))
		return
	}
	if err := c.PutRaw(key, b); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- GET/POST /v1/workers -------------------------------------------------

type workersResponse struct {
	Workers []dist.WorkerStatus `json:"workers"`
}

type registerRequest struct {
	URL string `json:"url"`
}

// coordinatorFor returns the coordinator these endpoints manage, or
// writes why the daemon has none (solo and worker roles).
func (s *Server) coordinatorFor(w http.ResponseWriter) (*dist.Coordinator, bool) {
	c := s.cfg.Coordinator
	if c == nil {
		writeError(w, http.StatusNotFound, "this daemon is not a coordinator (see -role)")
		return nil, false
	}
	return c, true
}

func (s *Server) handleWorkersGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.coordinatorFor(w)
	if !ok {
		return
	}
	writeResponse(w, jsonResponse(http.StatusOK, workersResponse{Workers: c.Workers()}), false)
}

// handleWorkersPost registers a worker base URL with the coordinator, so
// a worker (or an operator) can join a running cluster without a
// coordinator restart. Registration is idempotent.
func (s *Server) handleWorkersPost(w http.ResponseWriter, r *http.Request) {
	c, ok := s.coordinatorFor(w)
	if !ok {
		return
	}
	var req registerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("worker url must be absolute (http://host:port), got %q", req.URL))
		return
	}
	c.AddWorker(req.URL)
	writeResponse(w, jsonResponse(http.StatusOK, workersResponse{Workers: c.Workers()}), false)
}

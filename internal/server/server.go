// Package server exposes the experiment engine (internal/sim) as a
// long-running HTTP/JSON simulation service. Where the CLIs pay process
// startup, cache open and trace decode on every invocation, a Server
// keeps the hot state resident across requests: one shared trace store,
// one on-disk result cache, and one engine whose per-configuration
// sync.Pool of reset-able cpu.Engines survives between queries — so a
// repeated query is a cache hit in microseconds instead of a cold process
// in seconds.
//
// Endpoints (see the README's "Serving" section for the full table):
//
//	POST /v1/run            one (bench × depth × predictor) cell -> JSON result
//	POST /v1/matrix         a branch-prediction grid -> JSON cells
//	POST /v1/matrix?stream=1   the same grid as chunked JSON lines
//	POST /v1/study/smt      the Section 3 SMT fetch-policy grid
//	POST /v1/study/vpred    the Section 3 selective value-prediction grid
//	GET  /v1/artifacts/{name}  a rendered paper artifact (text tables)
//	GET  /v1/bench          the benchmark / mix / mode catalog
//	GET  /healthz           liveness + engine counters
//	GET/PUT /v1/cache/{key}    the cache-peer protocol (raw entries)
//	GET/POST /v1/workers    coordinator worker registration
//
// Three properties keep the daemon well-behaved and its answers
// trustworthy:
//
//   - Determinism: every simulation is deterministic and every response
//     is rendered through deterministic encoders, so warm cache hits are
//     byte-identical across requests — a client may diff responses.
//   - Coalescing: duplicate in-flight requests collapse onto one
//     computation (singleflight keyed by the same Spec/Config and Study
//     content fingerprints the result cache uses), so a thundering herd
//     of identical queries costs one simulation.
//   - Bounds: Config.MaxInflight caps concurrent computations (excess
//     requests get 429 immediately) and Config.MaxTotalInsts caps the
//     total instruction budget a single request may demand (400).
//
// Validation reuses internal/sim's shared rules, so a bad value is
// rejected with exactly the message the CLIs print for the same mistake.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cpu"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/smt"
	"repro/internal/workload"
)

// DefaultMaxTotalInsts is the default per-request cap on the *total*
// instruction budget (per-cell budget × cells): enough for a full
// 96-cell matrix at twice the default per-run budget, small enough that
// one request cannot monopolise the daemon for minutes.
const DefaultMaxTotalInsts = 64_000_000

// Config parameterises a Server.
type Config struct {
	// Engine runs every simulation. It must be non-nil; give it a Cache
	// and a TraceStore to get the warm-hit behaviour the service exists
	// for.
	Engine *sim.Engine
	// MaxInflight bounds concurrently *computing* requests (validation
	// and coalesced waiters are not counted). <= 0 means twice
	// GOMAXPROCS.
	MaxInflight int
	// MaxTotalInsts caps the total instruction budget of one request
	// (per-cell budget × number of cells; the SMT study counts its cycle
	// budget the same way). <= 0 means DefaultMaxTotalInsts.
	MaxTotalInsts int64
	// DefaultInsts is the per-cell budget used when a request omits
	// max_insts. <= 0 means sim.DefaultMaxInsts.
	DefaultInsts int64
	// RequestTimeout bounds each request's simulation work; past the
	// deadline in-flight cells are canceled at their next checkpoint and
	// the request fails with 504 (completed cells preserved under the
	// partial-result contract). <= 0 means no timeout.
	RequestTimeout time.Duration
	// Coordinator, when non-nil, puts the daemon in the coordinator role:
	// matrix and study sweeps are decomposed into per-cell jobs and
	// fanned out to the coordinator's registered workers (falling back to
	// Engine for cells no worker could answer), and /v1/workers accepts
	// registrations. Single-cell /v1/run requests always execute locally
	// — they *are* the unit of distribution. See internal/dist.
	Coordinator *dist.Coordinator
}

// Server is the HTTP handler. Create it with New; the zero value is not
// usable.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	flights  flightGroup
	inflight chan struct{}

	// drainCtx is canceled by StartDrain; every request context is linked
	// to it so in-flight engine work stops when the daemon begins
	// shutting down.
	drainCtx    context.Context
	cancelDrain context.CancelFunc
	draining    atomic.Bool

	computes  atomic.Int64 // responses actually computed
	coalesced atomic.Int64 // responses served as singleflight waiters
	panics    atomic.Int64 // handler panics contained by ServeHTTP

	// testGate, when non-nil, runs inside the flight leader after the
	// in-flight slot is held and before the computation starts. Tests
	// use it to hold a computation open while concurrent duplicates
	// pile onto the flight.
	testGate func(key string)
}

// New builds a Server around the engine.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is nil")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxTotalInsts <= 0 {
		cfg.MaxTotalInsts = DefaultMaxTotalInsts
	}
	if cfg.DefaultInsts <= 0 {
		cfg.DefaultInsts = sim.DefaultMaxInsts
	}
	drainCtx, cancelDrain := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		inflight:    make(chan struct{}, cfg.MaxInflight),
		drainCtx:    drainCtx,
		cancelDrain: cancelDrain,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/bench", s.handleCatalog)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	s.mux.HandleFunc("POST /v1/study/smt", s.handleSMT)
	s.mux.HandleFunc("POST /v1/study/vpred", s.handleVPred)
	s.mux.HandleFunc("GET /v1/artifacts/{name}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	s.mux.HandleFunc("GET /v1/workers", s.handleWorkersGet)
	s.mux.HandleFunc("POST /v1/workers", s.handleWorkersPost)
	return s
}

// ServeHTTP implements http.Handler. It is also the server's outermost
// middleware: once draining, new requests are turned away with 503 +
// Retry-After instead of racing the listener shutdown, and a panicking
// handler is contained to a JSON 500 (stack to stderr, counter on
// /healthz) instead of killing the connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server is draining; retry")
		return
	}
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if v == http.ErrAbortHandler { //nolint:errorlint // sentinel, by contract
			panic(v) // net/http's own "client is gone" signal; let it through
		}
		s.panics.Add(1)
		fmt.Fprintf(os.Stderr, "server: panic in %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
		// If the handler already wrote headers this is a no-op write on a
		// broken response; the client sees a truncated body either way.
		writeError(w, http.StatusInternalServerError, "internal error (handler panicked; see server log)")
	}()
	s.mux.ServeHTTP(w, r)
}

// StartDrain moves the server into drain mode: subsequent requests are
// refused with 503 + Retry-After and every in-flight request's context
// is canceled so engine work stops at the next checkpoint. Call it
// before http.Server.Shutdown; it is idempotent.
func (s *Server) StartDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.cancelDrain()
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// requestContext derives the context simulation work for r runs under:
// the request's own context (client disconnect), bounded by the
// configured request timeout, and linked to drain so StartDrain cancels
// in-flight work. The returned cancel must be called when the handler
// finishes.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	var ctx context.Context
	var cancel context.CancelFunc
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	} else {
		ctx, cancel = context.WithCancel(r.Context())
	}
	stop := context.AfterFunc(s.drainCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// Computes reports how many responses were actually computed (flight
// leaders), Coalesced how many were served as waiters on another
// request's computation, Panics how many handler panics ServeHTTP
// contained.
func (s *Server) Computes() int64  { return s.computes.Load() }
func (s *Server) Coalesced() int64 { return s.coalesced.Load() }
func (s *Server) Panics() int64    { return s.panics.Load() }

// --- response plumbing ---------------------------------------------------

//arvi:det
func jsonBody(v any) []byte {
	// MarshalIndent with a one-space indent plus trailing newline matches
	// the CLI exporters' json.Encoder(SetIndent("", " ")) byte for byte,
	// so a service response diffs cleanly against `arvisim -json` /
	// `experiments -json` output.
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		// Every payload is a plain value struct; this is a programming
		// error, not an input error.
		panic(fmt.Sprintf("server: marshal response: %v", err))
	}
	return append(b, '\n')
}

func jsonResponse(status int, v any) *response {
	return &response{status: status, contentType: "application/json", body: jsonBody(v)}
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func errResponse(status int, msg string) *response {
	return jsonResponse(status, errorBody{Error: msg})
}

func writeResponse(w http.ResponseWriter, resp *response, shared bool) {
	w.Header().Set("Content-Type", resp.contentType)
	if shared {
		// Purely diagnostic: lets a client (and the coalescing test) see
		// that its response was shared with a concurrent duplicate.
		w.Header().Set("X-Coalesced", "1")
	}
	w.WriteHeader(resp.status)
	// A short write means the client went away; there is no channel left
	// to report that on.
	_, _ = w.Write(resp.body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeResponse(w, errResponse(status, msg), false)
}

// coalesce funnels a computation through the singleflight group and the
// in-flight bound, then writes the (possibly shared) response.
func (s *Server) coalesce(w http.ResponseWriter, key string, compute func() *response) {
	resp, shared := s.flights.do(key, func() *response {
		select {
		case s.inflight <- struct{}{}:
		default:
			return errResponse(http.StatusTooManyRequests,
				fmt.Sprintf("server at capacity (%d computations in flight; see -max-inflight)", cap(s.inflight)))
		}
		defer func() { <-s.inflight }()
		if s.testGate != nil {
			s.testGate(key)
		}
		s.computes.Add(1)
		return compute()
	})
	if shared {
		s.coalesced.Add(1)
	}
	if resp == nil {
		// The flight leader panicked before producing a response (its own
		// connection got net/http's recovery); fail the waiters cleanly.
		resp = errResponse(http.StatusInternalServerError, "concurrent identical request failed; retry")
	}
	writeResponse(w, resp, shared)
}

// decodeBody strictly decodes a JSON request body (unknown fields are
// errors: a typoed knob must not silently fall back to a default).
func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

// checkBudget enforces the per-request total-instruction cap. The
// comparison is phrased as a division so a huge per-cell budget cannot
// overflow the multiplication and slip under the cap.
func (s *Server) checkBudget(perCell int64, cells int) error {
	if cells == 0 {
		return nil
	}
	if perCell > s.cfg.MaxTotalInsts/int64(cells) {
		return fmt.Errorf("request instruction budget (%d cells x %d) exceeds -max-insts %d",
			cells, perCell, s.cfg.MaxTotalInsts)
	}
	return nil
}

// hashParts reduces an ordered list of identity strings to one flight
// key. The parts are the same content identities the result cache uses
// (Spec/Config cache keys, study keys), so two requests coalesce exactly
// when they would hit the same cache entries in the same order.
//
//arvi:det
func hashParts(kind string, parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%s|%x", kind, h.Sum(nil))
}

// --- /healthz and /v1/bench ----------------------------------------------

type storageHealth struct {
	CacheDegraded   bool  `json:"cache_degraded"`
	CacheMemEntries int   `json:"cache_mem_entries"`
	CacheTrips      int64 `json:"cache_trips"`
	TraceDegraded   bool  `json:"trace_degraded"`
	TraceTrips      int64 `json:"trace_trips"`
}

// distHealth is the coordinator-role section of /healthz: the worker
// set's health and the job counters the chaos suite pins loss cost with.
type distHealth struct {
	Workers     []dist.WorkerStatus `json:"workers"`
	RemoteJobs  int64               `json:"remote_jobs"`
	RetriedJobs int64               `json:"retried_jobs"`
	LocalJobs   int64               `json:"local_jobs"`
}

type healthResponse struct {
	Status    string        `json:"status"`
	Simulated int64         `json:"simulated"`
	CacheHits int64         `json:"cache_hits"`
	Computes  int64         `json:"computes"`
	Coalesced int64         `json:"coalesced"`
	Panics    int64         `json:"panics"`
	Storage   storageHealth `json:"storage"`
	// Dist is present only in the coordinator role, so solo and worker
	// daemons keep their pre-distribution /healthz bytes.
	Dist *distHealth `json:"dist,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var st storageHealth
	if c := s.cfg.Engine.Cache; c != nil {
		st.CacheDegraded = c.Degraded()
		st.CacheMemEntries = c.MemEntries()
		st.CacheTrips = c.Breaker().Trips()
	}
	if t := s.cfg.Engine.Traces; t != nil {
		st.TraceDegraded = t.Degraded()
		st.TraceTrips = t.Breaker().Trips()
	}
	status := "ok"
	if st.CacheDegraded || st.TraceDegraded {
		// The daemon still serves correct results (memory-only), but an
		// operator should look at the disk.
		status = "degraded"
	}
	var dh *distHealth
	if c := s.cfg.Coordinator; c != nil {
		dh = &distHealth{
			Workers:     c.Workers(),
			RemoteJobs:  c.RemoteJobs(),
			RetriedJobs: c.RetriedJobs(),
			LocalJobs:   c.LocalJobs(),
		}
	}
	writeResponse(w, jsonResponse(http.StatusOK, healthResponse{
		Status:    status,
		Simulated: s.cfg.Engine.Simulated(),
		CacheHits: s.cfg.Engine.CacheHits(),
		Computes:  s.Computes(),
		Coalesced: s.Coalesced(),
		Panics:    s.Panics(),
		Storage:   st,
		Dist:      dh,
	}), false)
}

type catalogEntry struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

type catalogMix struct {
	Name    string   `json:"name"`
	Desc    string   `json:"desc"`
	Benches []string `json:"benches"`
}

type catalogResponse struct {
	Benches    []catalogEntry `json:"benches"`
	Mixes      []catalogMix   `json:"mixes"`
	Modes      []string       `json:"modes"`
	Depths     []int          `json:"depths"`
	Policies   []string       `json:"policies"`
	Predictors []string       `json:"predictors"`
	Artifacts  []string       `json:"artifacts"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	var c catalogResponse
	for _, n := range workload.Names {
		b, _ := workload.Lookup(n)
		c.Benches = append(c.Benches, catalogEntry{Name: n, Desc: b.Desc})
	}
	for _, n := range workload.MixNames {
		m := workload.MixByName(n)
		c.Mixes = append(c.Mixes, catalogMix{Name: m.Name, Desc: m.Desc, Benches: m.Benches})
	}
	c.Modes = append(c.Modes, sim.ModeNames...)
	c.Depths = append(c.Depths, sim.Depths...)
	for _, p := range sim.SMTPolicies {
		c.Policies = append(c.Policies, p.String())
	}
	c.Predictors = append(c.Predictors, sim.VPredPredictors...)
	c.Artifacts = append(c.Artifacts, artifactNames...)
	writeResponse(w, jsonResponse(http.StatusOK, c), false)
}

// --- POST /v1/run ---------------------------------------------------------

type runRequest struct {
	Bench         string `json:"bench"`
	Depth         int    `json:"depth"`
	Mode          string `json:"mode"`
	MaxInsts      int64  `json:"max_insts"`
	CutAtLoads    bool   `json:"cut_at_loads"`
	ConfThreshold uint   `json:"conf_threshold"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req := runRequest{Bench: "m88ksim", Depth: 20, Mode: "arvi-current"}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.MaxInsts <= 0 {
		req.MaxInsts = s.cfg.DefaultInsts
	}
	md, err := sim.ParseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Validate the threshold before narrowing to the spec's uint8 (a
	// huge JSON value must be rejected, not silently wrapped).
	if err := sim.ValidateConfThreshold(req.ConfThreshold); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec := sim.Spec{
		Bench: req.Bench, Depth: req.Depth, Mode: md, MaxInsts: req.MaxInsts,
		CutAtLoads: req.CutAtLoads, ConfThreshold: uint8(req.ConfThreshold),
	}
	if err := sim.ValidateSpec(spec); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.checkBudget(spec.MaxInsts, 1); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := hashParts("run", sim.CacheKey(spec, spec.Config()))
	ctx, cancel := s.requestContext(r)
	defer cancel()
	s.coalesce(w, key, func() *response {
		results, err := s.cfg.Engine.Run(ctx, []sim.Spec{spec})
		if err != nil || len(results) == 0 {
			status := http.StatusInternalServerError
			if err != nil {
				status = errStatus(err)
			}
			return errResponse(status, errString(err, "simulation produced no result"))
		}
		// The payload is exactly `arvisim -json`'s: a sim.Result.
		return jsonResponse(http.StatusOK, results[0])
	})
}

// --- POST /v1/matrix ------------------------------------------------------

type matrixRequest struct {
	Benches  []string `json:"benches"`
	Depths   []int    `json:"depths"`
	Modes    []string `json:"modes"`
	MaxInsts int64    `json:"max_insts"`
}

// matrixResponse mirrors Matrix.WriteJSON's envelope with an optional
// error field for the partial-result contract: when some cells fail, the
// completed cells are still returned alongside the joined error.
type matrixResponse struct {
	MaxInsts int64        `json:"max_insts"`
	Cells    []sim.Record `json:"cells"`
	Error    string       `json:"error,omitempty"`
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req matrixRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Benches) == 0 {
		req.Benches = workload.Names
	}
	if len(req.Depths) == 0 {
		req.Depths = sim.Depths
	}
	if len(req.Modes) == 0 {
		req.Modes = sim.ModeNames
	}
	if req.MaxInsts <= 0 {
		req.MaxInsts = s.cfg.DefaultInsts
	}
	var modes []cpu.PredMode
	for _, m := range req.Modes {
		md, err := sim.ParseMode(m)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		modes = append(modes, md)
	}
	for _, b := range req.Benches {
		if err := sim.ValidateBench(b); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	for _, d := range req.Depths {
		if err := sim.ValidateDepth(d); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	cells := len(req.Benches) * len(req.Depths) * len(modes)
	if err := s.checkBudget(req.MaxInsts, cells); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The flight key is the ordered list of the cells' cache keys — the
	// same content identities the result cache uses.
	parts := make([]string, 0, cells)
	for _, b := range req.Benches {
		for _, d := range req.Depths {
			for _, md := range modes {
				spec := sim.Spec{Bench: b, Depth: d, Mode: md, MaxInsts: req.MaxInsts}
				parts = append(parts, sim.CacheKey(spec, spec.Config()))
			}
		}
	}
	depths := req.Depths
	if r.URL.Query().Get("stream") == "1" {
		s.streamMatrix(w, r, hashParts("stream", parts...), req.Benches, depths, modes, req.MaxInsts)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	s.coalesce(w, hashParts("matrix", parts...), func() *response {
		mx, err := s.runMatrix(ctx, req.Benches, depths, modes, req.MaxInsts)
		body := matrixResponse{MaxInsts: req.MaxInsts, Cells: mx.Records(depths), Error: errString(err, "")}
		if body.Cells == nil {
			body.Cells = []sim.Record{}
		}
		return jsonResponse(errStatus(err), body)
	})
}

// runMatrix runs the grid through the coordinator when this daemon has
// one, locally otherwise. Both paths populate an identical sim.Matrix,
// and the caller renders it through the same Records path either way —
// that shared tail is the byte-identity contract's enforcement point.
func (s *Server) runMatrix(ctx context.Context, benches []string, depths []int, modes []cpu.PredMode, maxInsts int64) (*sim.Matrix, error) {
	if s.cfg.Coordinator != nil {
		return s.cfg.Coordinator.Matrix(ctx, benches, depths, modes, maxInsts)
	}
	return s.cfg.Engine.RunMatrix(ctx, benches, depths, modes, maxInsts)
}

// --- POST /v1/study/{smt,vpred} -------------------------------------------

type smtRequest struct {
	Mixes     []string `json:"mixes"`
	MaxCycles int64    `json:"max_cycles"`
}

type smtResponse struct {
	Config smt.Config      `json:"config"`
	Cells  []sim.SMTRecord `json:"cells"`
	Error  string          `json:"error,omitempty"`
}

func (s *Server) handleSMT(w http.ResponseWriter, r *http.Request) {
	var req smtRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg := smt.DefaultConfig()
	if req.MaxCycles != 0 {
		cfg.MaxCycles = req.MaxCycles
	}
	if err := sim.ValidateSMTCycles(cfg.MaxCycles); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var mixes []workload.Mix
	if len(req.Mixes) == 0 {
		mixes = workload.Mixes()
	} else {
		for _, name := range req.Mixes {
			if err := sim.ValidateMix(name); err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			mixes = append(mixes, workload.MixByName(name))
		}
	}
	// The cycle budget is the closest analogue of an instruction budget
	// for this study; cap cycles × cells the same way.
	if err := s.checkBudget(cfg.MaxCycles, len(mixes)*len(sim.SMTPolicies)); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	parts := make([]string, 0, len(mixes)*len(sim.SMTPolicies))
	for _, m := range mixes {
		for _, p := range sim.SMTPolicies {
			key, err := sim.StudyKey(sim.SMTStudy{Mix: m, Policy: p, Config: cfg})
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			parts = append(parts, key)
		}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	s.coalesce(w, hashParts("smt", parts...), func() *response {
		var cells []sim.SMTRecord
		var err error
		if s.cfg.Coordinator != nil {
			cells, err = s.cfg.Coordinator.SMTGrid(ctx, mixes, cfg)
		} else {
			var g *sim.SMTGrid
			g, err = s.cfg.Engine.RunSMTGrid(ctx, mixes, sim.SMTPolicies, cfg)
			cells = g.Records()
		}
		body := smtResponse{Config: cfg, Cells: cells, Error: errString(err, "")}
		if body.Cells == nil {
			body.Cells = []sim.SMTRecord{}
		}
		return jsonResponse(errStatus(err), body)
	})
}

type vpredRequest struct {
	Benches      []string `json:"benches"`
	Predictors   []string `json:"predictors"`
	MaxInsts     int64    `json:"max_insts"`
	DepThreshold int      `json:"dep_threshold"`
}

type vpredResponse struct {
	Params sim.VPredParams   `json:"params"`
	Cells  []sim.VPredRecord `json:"cells"`
	Error  string            `json:"error,omitempty"`
}

func (s *Server) handleVPred(w http.ResponseWriter, r *http.Request) {
	var req vpredRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Benches) == 0 {
		req.Benches = workload.Names
	}
	if len(req.Predictors) == 0 {
		req.Predictors = sim.VPredPredictors
	}
	if req.MaxInsts <= 0 {
		req.MaxInsts = s.cfg.DefaultInsts
	}
	params := sim.DefaultVPredParams(req.MaxInsts)
	if req.DepThreshold != 0 {
		params.DepThreshold = req.DepThreshold
	}
	if err := sim.ValidateDepThreshold(params.DepThreshold); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, b := range req.Benches {
		if err := sim.ValidateBench(b); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	for _, p := range req.Predictors {
		if err := sim.ValidatePredictor(p); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	cells := len(req.Benches) * len(req.Predictors) * 2 // all + selective
	if err := s.checkBudget(req.MaxInsts, cells); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	parts := make([]string, 0, cells)
	for _, b := range req.Benches {
		for _, p := range req.Predictors {
			for _, sel := range []bool{false, true} {
				key, err := sim.StudyKey(sim.VPredStudy{Bench: b, Predictor: p, Selective: sel, Params: params})
				if err != nil {
					writeError(w, http.StatusInternalServerError, err.Error())
					return
				}
				parts = append(parts, key)
			}
		}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	s.coalesce(w, hashParts("vpred", parts...), func() *response {
		var cells []sim.VPredRecord
		var err error
		if s.cfg.Coordinator != nil {
			cells, err = s.cfg.Coordinator.VPredGrid(ctx, req.Benches, req.Predictors, params)
		} else {
			var g *sim.VPredGrid
			g, err = s.cfg.Engine.RunVPredGrid(ctx, req.Benches, req.Predictors, params)
			cells = g.Records()
		}
		body := vpredResponse{Params: params, Cells: cells, Error: errString(err, "")}
		if body.Cells == nil {
			body.Cells = []sim.VPredRecord{}
		}
		return jsonResponse(errStatus(err), body)
	})
}

// --- GET /v1/artifacts/{name} ---------------------------------------------

// artifactNames lists the artifacts the service renders. The studies
// with structured grids (smt, vpred) live on their own endpoints; these
// are the text tables cmd/experiments prints.
var artifactNames = []string{"table2", "table4", "fig5a", "fig5b", "fig6", "sweep-conf", "sweep-cut"}

func validArtifact(name string) bool {
	for _, a := range artifactNames {
		if a == name {
			return true
		}
	}
	return false
}

// artifactCells reports how many matrix cells the artifact simulates, for
// the budget cap (0 = renders without simulating).
func artifactCells(name string) int {
	switch name {
	case "table2", "table4":
		return 0
	case "fig5a":
		return len(workload.Names) * len(sim.Depths)
	case "fig5b":
		return len(workload.Names)
	case "fig6":
		return len(workload.Names) * len(sim.Depths) * len(sim.Modes)
	case "sweep-conf":
		return len(workload.Names) * len(sim.DefaultConfThresholds)
	case "sweep-cut":
		return len(workload.Names) * 2
	}
	return 0
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validArtifact(name) {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown artifact %q (valid: %v)", name, artifactNames))
		return
	}
	budget := s.cfg.DefaultInsts
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad instruction budget %q", v))
			return
		}
		budget = n
	}
	depth := 20
	if v := r.URL.Query().Get("depth"); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad depth %q", v))
			return
		}
		depth = d
	}
	if err := s.checkBudget(budget, artifactCells(name)); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := hashParts("artifact", name, strconv.FormatInt(budget, 10), strconv.Itoa(depth))
	ctx, cancel := s.requestContext(r)
	defer cancel()
	s.coalesce(w, key, func() *response {
		body, err := s.renderArtifact(ctx, name, budget, depth)
		if err != nil {
			return errResponse(errStatus(err), err.Error())
		}
		return &response{status: http.StatusOK, contentType: "text/plain; charset=utf-8", body: body}
	})
}

// renderArtifact produces the artifact's text tables, simulating (through
// the engine's cache and trace store) whatever cells it needs.
//
//arvi:det
func (s *Server) renderArtifact(ctx context.Context, name string, budget int64, depth int) ([]byte, error) {
	var out strings.Builder
	emit := func(t sim.Table) error { return t.Render(&out) }
	switch name {
	case "table2":
		if err := emit(sim.Table2()); err != nil {
			return nil, err
		}
	case "table4":
		if err := emit(sim.Table4()); err != nil {
			return nil, err
		}
	case "fig5a":
		mx, err := s.cfg.Engine.RunMatrix(ctx, workload.Names, sim.Depths, []cpu.PredMode{cpu.PredARVICurrent}, budget)
		if err != nil {
			return nil, err
		}
		if err := emit(sim.Fig5a(mx)); err != nil {
			return nil, err
		}
	case "fig5b":
		mx, err := s.cfg.Engine.RunMatrix(ctx, workload.Names, []int{depth}, []cpu.PredMode{cpu.PredARVICurrent}, budget)
		if err != nil {
			return nil, err
		}
		if err := emit(sim.Fig5b(mx, depth)); err != nil {
			return nil, err
		}
	case "fig6":
		mx, err := s.cfg.Engine.RunMatrix(ctx, workload.Names, sim.Depths, sim.Modes, budget)
		if err != nil {
			return nil, err
		}
		for _, d := range sim.Depths {
			if err := emit(sim.Fig6Accuracy(mx, d)); err != nil {
				return nil, err
			}
			t, _ := sim.Fig6IPC(mx, d)
			if err := emit(t); err != nil {
				return nil, err
			}
		}
	case "sweep-conf":
		sw, err := s.cfg.Engine.RunConfThresholdSweep(ctx, workload.Names, depth, sim.DefaultConfThresholds, budget)
		if err != nil {
			return nil, err
		}
		for _, t := range []sim.Table{sim.SweepAccuracyTable(sw), sim.SweepARVIUseTable(sw), sim.SweepIPCTable(sw)} {
			if err := emit(t); err != nil {
				return nil, err
			}
		}
	case "sweep-cut":
		sw, err := s.cfg.Engine.RunCutAtLoadsSweep(ctx, workload.Names, depth, budget)
		if err != nil {
			return nil, err
		}
		for _, t := range []sim.Table{sim.SweepAccuracyTable(sw), sim.SweepIPCTable(sw)} {
			if err := emit(t); err != nil {
				return nil, err
			}
		}
	}
	return []byte(out.String()), nil
}

// errString renders a possibly-nil error; fallback covers the "no error
// but also no result" edge some callers need to report.
func errString(err error, fallback string) string {
	if err == nil {
		return fallback
	}
	return err.Error()
}

// errStatus maps a simulation error to its HTTP status: a request that
// ran out of its deadline is the gateway-timeout story (the work was
// canceled, not wrong), everything else is an internal error. Joined
// partial-failure errors match through errors.Is.
func errStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

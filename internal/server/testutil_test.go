package server

// Shared httptest plumbing for the server's suites (behaviour, chaos,
// cluster). Keeping the helpers in one file stops each new suite from
// growing its own copy of post/get.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sim"
)

// testInsts keeps per-cell simulations around a millisecond.
const testInsts = 5000

// newTestServer builds a server around a fresh cached engine (result
// cache in a temp dir, trace store memory-only).
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server, *sim.Engine) {
	t.Helper()
	cache, err := sim.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	traces, err := sim.OpenTraceStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{Cache: cache, Traces: traces}
	cfg := Config{Engine: eng, DefaultInsts: testInsts}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, eng
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func mustErr(t *testing.T, fn func() error) string {
	t.Helper()
	err := fn()
	if err == nil {
		t.Fatal("expected an error")
	}
	return err.Error()
}

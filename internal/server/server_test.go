package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestRunWarmHitByteStable pins the service's core promise: a repeated
// /v1/run renders byte-identical JSON, and the second request is a result
// cache hit (no re-simulation).
func TestRunWarmHitByteStable(t *testing.T) {
	_, ts, eng := newTestServer(t, nil)
	body := `{"bench":"m88ksim","depth":20,"mode":"arvi-current","max_insts":5000}`
	resp1, b1 := post(t, ts.URL+"/v1/run", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp1.StatusCode, b1)
	}
	resp2, b2 := post(t, ts.URL+"/v1/run", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d: %s", resp2.StatusCode, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("warm hit not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
	if sims := eng.Simulated(); sims != 1 {
		t.Fatalf("simulated %d cells, want 1 (second request must hit the cache)", sims)
	}
	if hits := eng.CacheHits(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	// The payload decodes as a sim.Result, same shape as `arvisim -json`.
	var res sim.Result
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatalf("response is not a sim.Result: %v", err)
	}
	if res.Spec.Bench != "m88ksim" || res.Stats.Insts == 0 {
		t.Fatalf("implausible result: %+v", res.Spec)
	}
}

// TestMatrixWarmHitByteStable repeats a small grid request and pins
// byte-stability plus the per-cell cache behaviour.
func TestMatrixWarmHitByteStable(t *testing.T) {
	_, ts, eng := newTestServer(t, nil)
	body := `{"benches":["li"],"depths":[20],"modes":["baseline","arvi-current"],"max_insts":5000}`
	resp1, b1 := post(t, ts.URL+"/v1/matrix", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first matrix: status %d: %s", resp1.StatusCode, b1)
	}
	resp2, b2 := post(t, ts.URL+"/v1/matrix", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second matrix: status %d: %s", resp2.StatusCode, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("warm matrix not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
	if sims := eng.Simulated(); sims != 2 {
		t.Fatalf("simulated %d cells, want 2", sims)
	}
	var mr matrixResponse
	if err := json.Unmarshal(b1, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Cells) != 2 || mr.Error != "" {
		t.Fatalf("matrix response: %d cells, error %q", len(mr.Cells), mr.Error)
	}
}

// TestStudyWarmHitByteStable covers the two Section 3 study endpoints.
func TestStudyWarmHitByteStable(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	for _, tc := range []struct {
		path, body string
		cells      int
	}{
		{"/v1/study/smt", `{"mixes":["ijpeg+li"],"max_cycles":3000}`, 3},
		{"/v1/study/vpred", `{"benches":["li"],"predictors":["stride"],"max_insts":5000}`, 2},
	} {
		resp1, b1 := post(t, ts.URL+tc.path, tc.body)
		if resp1.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.path, resp1.StatusCode, b1)
		}
		resp2, b2 := post(t, ts.URL+tc.path, tc.body)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("%s warm: status %d: %s", tc.path, resp2.StatusCode, b2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s warm hit not byte-stable", tc.path)
		}
		var env struct {
			Cells []json.RawMessage `json:"cells"`
			Error string            `json:"error"`
		}
		if err := json.Unmarshal(b1, &env); err != nil {
			t.Fatal(err)
		}
		if len(env.Cells) != tc.cells || env.Error != "" {
			t.Fatalf("%s: %d cells (want %d), error %q", tc.path, len(env.Cells), tc.cells, env.Error)
		}
	}
}

// TestConcurrentIdenticalRequestsCoalesce pins the singleflight contract:
// N concurrent identical /v1/run requests cost one computation and one
// simulation, and every response is byte-identical.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	const dupes = 4
	s, ts, eng := newTestServer(t, nil)
	// Hold the flight leader until the other dupes-1 requests have joined
	// its flight, so the coalescing we want to pin deterministically forms.
	s.testGate = func(key string) {
		deadline := time.Now().Add(10 * time.Second)
		for s.flights.waiters(key) < dupes-1 {
			if time.Now().After(deadline) {
				t.Error("gate: duplicates never joined the flight")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	body := `{"bench":"gcc","depth":20,"mode":"arvi-current","max_insts":5000}`
	var wg sync.WaitGroup
	bodies := make([][]byte, dupes)
	statuses := make([]int, dupes)
	coalesced := make([]bool, dupes)
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			bodies[i], statuses[i] = b, resp.StatusCode
			coalesced[i] = resp.Header.Get("X-Coalesced") == "1"
		}(i)
	}
	wg.Wait()
	nCoalesced := 0
	for i := 0; i < dupes; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("coalesced responses differ:\n%s\nvs\n%s", bodies[0], bodies[i])
		}
		if coalesced[i] {
			nCoalesced++
		}
	}
	if got := s.Computes(); got != 1 {
		t.Fatalf("computed %d responses for %d identical requests, want 1", got, dupes)
	}
	if sims := eng.Simulated(); sims != 1 {
		t.Fatalf("simulated %d cells for %d identical requests, want 1", sims, dupes)
	}
	if nCoalesced != dupes-1 {
		t.Fatalf("%d responses marked coalesced, want %d", nCoalesced, dupes-1)
	}
}

// TestValidationErrorsMatchCLI pins that the service rejects bad input
// with exactly the messages the CLIs print for the same mistakes: the
// expectations are computed from the shared internal/sim validators, so
// the two front ends cannot drift apart.
func TestValidationErrorsMatchCLI(t *testing.T) {
	_, ts, eng := newTestServer(t, func(c *Config) { c.MaxTotalInsts = 1_000_000 })
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantMsg          string
	}{
		{
			name: "unknown benchmark", path: "/v1/run",
			body:       `{"bench":"nope","depth":20,"mode":"arvi-current"}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    sim.ValidateBench("nope").Error(),
		},
		{
			name: "unknown mode", path: "/v1/run",
			body:       `{"bench":"li","depth":20,"mode":"oracle"}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    mustErr(t, func() error { _, err := sim.ParseMode("oracle"); return err }),
		},
		{
			name: "JRS threshold above the 4-bit counter max", path: "/v1/run",
			body:       `{"bench":"li","depth":20,"mode":"arvi-current","conf_threshold":16}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    sim.ValidateConfThreshold(16).Error(),
		},
		{
			name: "over-budget run", path: "/v1/run",
			body:       `{"bench":"li","depth":20,"mode":"arvi-current","max_insts":2000000}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    "request instruction budget (1 cells x 2000000) exceeds -max-insts 1000000",
		},
		{
			name: "over-budget matrix", path: "/v1/matrix",
			body:       `{"benches":["li"],"depths":[20],"modes":["baseline","arvi-current"],"max_insts":600000}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    "request instruction budget (2 cells x 600000) exceeds -max-insts 1000000",
		},
		{
			// 4 default modes x (1<<62) would overflow an int64 multiply;
			// the cap must still reject it.
			name: "overflowing matrix budget", path: "/v1/matrix",
			body:       `{"benches":["li"],"depths":[20],"max_insts":4611686018427387904}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    "request instruction budget (4 cells x 4611686018427387904) exceeds -max-insts 1000000",
		},
		{
			name: "non-positive depth", path: "/v1/run",
			body:       `{"bench":"li","depth":-3,"mode":"arvi-current"}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    sim.ValidateDepth(-3).Error(),
		},
		{
			name: "matrix unknown benchmark", path: "/v1/matrix",
			body:       `{"benches":["spice"],"depths":[20]}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    sim.ValidateBench("spice").Error(),
		},
		{
			name: "smt cycle budget", path: "/v1/study/smt",
			body:       `{"mixes":["quad"],"max_cycles":-5}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    sim.ValidateSMTCycles(-5).Error(),
		},
		{
			name: "smt unknown mix", path: "/v1/study/smt",
			body:       `{"mixes":["li+li"]}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    sim.ValidateMix("li+li").Error(),
		},
		{
			name: "vpred dep threshold", path: "/v1/study/vpred",
			body:       `{"benches":["li"],"dep_threshold":-1}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    sim.ValidateDepThreshold(-1).Error(),
		},
		{
			name: "vpred unknown predictor", path: "/v1/study/vpred",
			body:       `{"benches":["li"],"predictors":["context"]}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    sim.ValidatePredictor("context").Error(),
		},
		{
			name: "unknown request field", path: "/v1/run",
			body:       `{"benchh":"li"}`,
			wantStatus: http.StatusBadRequest,
			wantMsg:    `bad request body: json: unknown field "benchh"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, b := post(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.wantStatus, b)
			}
			var eb errorBody
			if err := json.Unmarshal(b, &eb); err != nil {
				t.Fatalf("error body not JSON: %v (%s)", err, b)
			}
			if eb.Error != tc.wantMsg {
				t.Fatalf("error message drifted from the CLI's:\n got %q\nwant %q", eb.Error, tc.wantMsg)
			}
		})
	}
	if sims := eng.Simulated(); sims != 0 {
		t.Fatalf("validation errors must not reach the engine; simulated %d", sims)
	}
}

// TestMaxInflightBound pins the 429 behaviour: while one computation is
// in flight at capacity 1, a different request is turned away.
func TestMaxInflightBound(t *testing.T) {
	s, ts, _ := newTestServer(t, func(c *Config) { c.MaxInflight = 1 })
	inCompute := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testGate = func(string) {
		once.Do(func() { close(inCompute) })
		<-release
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, body := post(t, ts.URL+"/v1/run", `{"bench":"li","depth":20,"mode":"baseline","max_insts":5000}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held request: status %d: %s", resp.StatusCode, body)
		}
	}()
	<-inCompute
	// A *different* spec cannot coalesce, must claim a slot, and the only
	// slot is held.
	resp, b := post(t, ts.URL+"/v1/run", `{"bench":"gcc","depth":20,"mode":"baseline","max_insts":5000}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "max-inflight") {
		t.Fatalf("429 body should point at -max-inflight: %s", b)
	}
	close(release)
	<-done
}

// TestArtifactsCatalogHealth exercises the read-only endpoints.
func TestArtifactsCatalogHealth(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)

	resp, b := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"status": "ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}

	resp, b = get(t, ts.URL+"/v1/bench")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog: %d %s", resp.StatusCode, b)
	}
	var cat catalogResponse
	if err := json.Unmarshal(b, &cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Benches) != 8 || len(cat.Mixes) != 4 || len(cat.Modes) != 4 {
		t.Fatalf("catalog shape: %d benches, %d mixes, %d modes", len(cat.Benches), len(cat.Mixes), len(cat.Modes))
	}

	resp, b = get(t, ts.URL+"/v1/artifacts/table2")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "Table 2") {
		t.Fatalf("table2 artifact: %d %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("artifact content type %q", ct)
	}

	resp, b = get(t, ts.URL+"/v1/artifacts/fig7")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown artifact: %d %s", resp.StatusCode, b)
	}
	want := fmt.Sprintf("unknown artifact %q (valid: %v)", "fig7", artifactNames)
	var eb errorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Error != want {
		t.Fatalf("unknown-artifact message %q, want %q", eb.Error, want)
	}

	// A simulated artifact renders — and renders byte-identically warm.
	resp, b1 := get(t, ts.URL+"/v1/artifacts/fig5b?n=5000")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b1), "Figure 5(b)") {
		t.Fatalf("fig5b artifact: %d %s", resp.StatusCode, b1)
	}
	_, b2 := get(t, ts.URL+"/v1/artifacts/fig5b?n=5000")
	if !bytes.Equal(b1, b2) {
		t.Fatal("warm artifact not byte-stable")
	}
}

// TestFlightGroup unit-tests the coalescing primitive itself: concurrent
// callers of one key share one fn invocation; a later caller recomputes.
func TestFlightGroup(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	leaderDone := make(chan *response, 1)
	go func() {
		resp, shared := g.do("k", func() *response {
			calls++
			close(started)
			<-release
			return &response{status: 200, body: []byte("x")}
		})
		if shared {
			t.Error("leader reported shared")
		}
		leaderDone <- resp
	}()
	<-started
	const waiters = 3
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, shared := g.do("k", func() *response {
				t.Error("waiter ran fn")
				return nil
			})
			if !shared {
				t.Error("waiter not marked shared")
			}
			if string(resp.body) != "x" {
				t.Errorf("waiter got %q", resp.body)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.waiters("k") < waiters {
		if time.Now().After(deadline) {
			t.Fatal("waiters never registered")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if resp := <-leaderDone; string(resp.body) != "x" {
		t.Fatalf("leader got %q", resp.body)
	}
	// The flight is forgotten: a fresh call recomputes.
	resp, shared := g.do("k", func() *response {
		calls++
		return &response{status: 200, body: []byte("y")}
	})
	if shared || string(resp.body) != "y" || calls != 2 {
		t.Fatalf("post-flight call: shared=%v body=%q calls=%d", shared, resp.body, calls)
	}
}

// TestFlightGroupLeaderPanic pins that a panicking leader cannot wedge
// the key: waiters are released (with a nil response), the panic
// propagates to the leader, and the key is reusable afterwards.
func TestFlightGroupLeaderPanic(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	waiterDone := make(chan *response, 1)
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		g.do("k", func() *response {
			close(started)
			<-release
			panic("compute exploded")
		})
	}()
	<-started
	go func() {
		resp, shared := g.do("k", func() *response {
			t.Error("waiter ran fn")
			return nil
		})
		if !shared {
			t.Error("waiter not marked shared")
		}
		waiterDone <- resp
	}()
	deadline := time.Now().Add(10 * time.Second)
	for g.waiters("k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case resp := <-waiterDone:
		if resp != nil {
			t.Fatalf("waiter got %+v from a panicked leader, want nil", resp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter hung on a panicked leader")
	}
	// The key recomputes cleanly after the wreckage.
	resp, shared := g.do("k", func() *response {
		return &response{status: 200, body: []byte("recovered")}
	})
	if shared || string(resp.body) != "recovered" {
		t.Fatalf("post-panic call: shared=%v body=%q", shared, resp.body)
	}
}

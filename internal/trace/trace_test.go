package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/vm"
	"repro/internal/workload"
)

const loopSrc = `
    .data
tab: .word 5, 3, 9
    .text
main:
    li  r1, 0
    li  r2, 200
loop:
    andi r3, r1, 1
    slli r3, r3, 3
    lw  r4, tab(r3)
    add r5, r5, r4
    addi r1, r1, 1
    bne r1, r2, loop
    halt
`

func TestRecordReplayMatchesLive(t *testing.T) {
	p := asm.MustAssemble("loop", loopSrc)
	var buf bytes.Buffer
	n, err := Record(p, 0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}

	// Replaying the trace must yield event-for-event identity with a live
	// functional run.
	rd, err := NewReader(p, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(p)
	var live, replay vm.Event
	for i := int64(0); ; i++ {
		rerr := rd.Next(&replay)
		lerr := machine.Step(&live)
		if rerr == io.EOF {
			if lerr == nil && !machine.Halt {
				// Step after halt should error; the trace ends with halt.
				t.Fatalf("trace ended early at %d", i)
			}
			break
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
		if lerr != nil {
			t.Fatal(lerr)
		}
		if replay.PC != live.PC || replay.NextPC != live.NextPC ||
			replay.Taken != live.Taken || replay.Addr != live.Addr ||
			replay.Val != live.Val || replay.Seq != live.Seq {
			t.Fatalf("event %d mismatch:\nreplay %+v\nlive   %+v", i, replay, live)
		}
		if machine.Halt {
			if err := rd.Next(&replay); err != io.EOF {
				t.Fatalf("expected EOF after halt, got %v", err)
			}
			break
		}
	}
}

func TestTimingFromTraceMatchesLive(t *testing.T) {
	// The whole point of the trace: feeding it to the timing model must
	// reproduce the live run's statistics exactly.
	b := workload.ByName("perl")
	var buf bytes.Buffer
	if _, err := Record(b.Prog, 30_000, &buf); err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig(20, cpu.PredARVICurrent)
	cfg.MaxInsts = 30_000

	live, err := cpu.Run(b.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cpu.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(b.Prog, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := eng.RunSource(b.Prog, rd)
	if err != nil {
		t.Fatal(err)
	}
	if live != replayed {
		t.Errorf("trace replay diverged:\nlive   %+v\nreplay %+v", live, replayed)
	}
}

// TestTimingFromTraceWithWrongPathInject pins the RunSource/Run parity
// contract for the full pipeline: the wrong-path rename/rollback machinery
// needs only the program text plus the correct-path events, so a trace
// replay must drive it identically to a live run.
func TestTimingFromTraceWithWrongPathInject(t *testing.T) {
	b := workload.ByName("li")
	dec, err := RecordAll(b.Prog, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig(20, cpu.PredARVICurrent)
	cfg.MaxInsts = 20_000
	cfg.WrongPathInject = true

	live, err := cpu.Run(b.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cpu.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := eng.RunSource(b.Prog, dec.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	if live != replayed {
		t.Errorf("wrong-path replay diverged:\nlive   %+v\nreplay %+v", live, replayed)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	p := asm.MustAssemble("x", "main:\n  halt\n")
	if _, err := NewReader(p, strings.NewReader("BADMAGIC")); err == nil {
		t.Error("bad magic accepted")
	}
	// A record pointing outside the text segment.
	var buf bytes.Buffer
	w, err := NewWriter(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&vm.Event{PC: 99}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(p, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ev vm.Event
	if err := rd.Next(&ev); err == nil {
		t.Error("out-of-range pc accepted")
	}
}

func TestReaderRejectsTruncatedHeader(t *testing.T) {
	p := asm.MustAssemble("x", "main:\n  halt\n")
	var buf bytes.Buffer
	if _, err := Record(p, 0, &buf); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, len(magic), headerSize - 1} {
		if _, err := NewReader(p, bytes.NewReader(buf.Bytes()[:n])); err == nil {
			t.Errorf("header truncated to %d bytes accepted", n)
		}
	}
}

func TestReaderRejectsWrongProgram(t *testing.T) {
	// Two programs of identical text length: without the fingerprint check
	// a cross-replay would silently decode garbage instructions.
	a := asm.MustAssemble("a", "main:\n  li r1, 1\n  halt\n")
	b := asm.MustAssemble("b", "main:\n  li r1, 2\n  halt\n")
	var buf bytes.Buffer
	if _, err := Record(a, 0, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(b, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("trace of program a accepted for program b")
	}
	if _, err := NewReader(a, bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("trace rejected for its own program: %v", err)
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	prg := asm.MustAssemble("loop", loopSrc)
	path := filepath.Join(t.TempDir(), "loop.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Record(prg, 100, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := headerSize + int(n)*recordSize; len(raw) != want {
		t.Fatalf("trace file is %d bytes, want %d", len(raw), want)
	}

	drain := func(b []byte) (int64, error) {
		rd, err := NewReader(prg, bytes.NewReader(b))
		if err != nil {
			return 0, err
		}
		var ev vm.Event
		var got int64
		for {
			if err := rd.Next(&ev); err != nil {
				if err == io.EOF {
					return got, nil
				}
				return got, err
			}
			got++
		}
	}

	// Intact file: all declared records, clean EOF.
	if got, err := drain(raw); err != nil || got != n {
		t.Fatalf("intact drain = (%d, %v), want (%d, nil)", got, err, n)
	}
	// Cut at a record boundary: silent-shortening must be detected.
	cut := raw[:headerSize+10*recordSize]
	if _, err := drain(cut); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("boundary truncation: err = %v, want truncation error", err)
	}
	// Cut mid-record.
	mid := raw[:headerSize+10*recordSize+7]
	if _, err := drain(mid); err == nil {
		t.Error("mid-record truncation accepted")
	}
	// Trailing garbage after the declared records.
	trailing := append(append([]byte(nil), raw...), 0xAB)
	if _, err := drain(trailing); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing data: err = %v, want trailing-data error", err)
	}
}

// TestReaderRejectsCorruptCount: a flipped count field must fail the
// header check, never size an allocation (a count of 2^40 once drove
// Decode into an unrecoverable out-of-memory fatal before the self-heal
// path could remove the file).
func TestReaderRejectsCorruptCount(t *testing.T) {
	prg := asm.MustAssemble("loop", loopSrc)
	var buf bytes.Buffer
	if _, err := Record(prg, 100, &buf); err != nil {
		t.Fatal(err)
	}
	for _, count := range []uint64{1 << 40, 1<<64 - 2} {
		raw := append([]byte(nil), buf.Bytes()...)
		for i := 0; i < 8; i++ {
			raw[int(countOffset)+i] = byte(count >> (8 * i))
		}
		if _, err := NewReader(prg, bytes.NewReader(raw)); err == nil {
			t.Errorf("count %d accepted", count)
		}
		if _, err := Decode(prg, bytes.NewReader(raw)); err == nil {
			t.Errorf("count %d decoded", count)
		}
	}
	// A lying-but-plausible count must surface as truncation, not OOM.
	raw := append([]byte(nil), buf.Bytes()...)
	lie := uint64(1 << 24)
	for i := 0; i < 8; i++ {
		raw[int(countOffset)+i] = byte(lie >> (8 * i))
	}
	if _, err := Decode(prg, bytes.NewReader(raw)); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Errorf("plausible lying count: err = %v, want truncation error", err)
	}
}

func TestReaderLenFromHeader(t *testing.T) {
	prg := asm.MustAssemble("loop", loopSrc)

	// Seekable sink: exact count in the header.
	path := filepath.Join(t.TempDir(), "loop.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Record(prg, 50, f)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, _ := os.ReadFile(path)
	rd, err := NewReader(prg, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Len() != n {
		t.Errorf("Len = %d, want %d", rd.Len(), n)
	}

	// Pure stream: unknown count.
	var buf bytes.Buffer
	if _, err := Record(prg, 50, &buf); err != nil {
		t.Fatal(err)
	}
	rd2, err := NewReader(prg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd2.Len() != -1 {
		t.Errorf("streamed Len = %d, want -1", rd2.Len())
	}
}

func TestWriterLen(t *testing.T) {
	p := asm.MustAssemble("x", "main:\n  halt\n")
	var buf bytes.Buffer
	w, err := NewWriter(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(&vm.Event{PC: i}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 5 {
		t.Errorf("len = %d", w.Len())
	}
}

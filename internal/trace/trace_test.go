package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/vm"
	"repro/internal/workload"
)

const loopSrc = `
    .data
tab: .word 5, 3, 9
    .text
main:
    li  r1, 0
    li  r2, 200
loop:
    andi r3, r1, 1
    slli r3, r3, 3
    lw  r4, tab(r3)
    add r5, r5, r4
    addi r1, r1, 1
    bne r1, r2, loop
    halt
`

func TestRecordReplayMatchesLive(t *testing.T) {
	p := asm.MustAssemble("loop", loopSrc)
	var buf bytes.Buffer
	n, err := Record(p, 0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}

	// Replaying the trace must yield event-for-event identity with a live
	// functional run.
	rd, err := NewReader(p, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(p)
	var live, replay vm.Event
	for i := int64(0); ; i++ {
		rerr := rd.Next(&replay)
		lerr := machine.Step(&live)
		if rerr == io.EOF {
			if lerr == nil && !machine.Halt {
				// Step after halt should error; the trace ends with halt.
				t.Fatalf("trace ended early at %d", i)
			}
			break
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
		if lerr != nil {
			t.Fatal(lerr)
		}
		if replay.PC != live.PC || replay.NextPC != live.NextPC ||
			replay.Taken != live.Taken || replay.Addr != live.Addr ||
			replay.Val != live.Val || replay.Seq != live.Seq {
			t.Fatalf("event %d mismatch:\nreplay %+v\nlive   %+v", i, replay, live)
		}
		if machine.Halt {
			if err := rd.Next(&replay); err != io.EOF {
				t.Fatalf("expected EOF after halt, got %v", err)
			}
			break
		}
	}
}

func TestTimingFromTraceMatchesLive(t *testing.T) {
	// The whole point of the trace: feeding it to the timing model must
	// reproduce the live run's statistics exactly.
	b := workload.ByName("perl")
	var buf bytes.Buffer
	if _, err := Record(b.Prog, 30_000, &buf); err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig(20, cpu.PredARVICurrent)
	cfg.MaxInsts = 30_000

	live, err := cpu.Run(b.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cpu.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(b.Prog, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := eng.RunSource(b.Prog, rd)
	if err != nil {
		t.Fatal(err)
	}
	if live != replayed {
		t.Errorf("trace replay diverged:\nlive   %+v\nreplay %+v", live, replayed)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	p := asm.MustAssemble("x", "main:\n  halt\n")
	if _, err := NewReader(p, strings.NewReader("BADMAGIC")); err == nil {
		t.Error("bad magic accepted")
	}
	// A record pointing outside the text segment.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&vm.Event{PC: 99}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(p, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ev vm.Event
	if err := rd.Next(&ev); err == nil {
		t.Error("out-of-range pc accepted")
	}
}

func TestWriterLen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(&vm.Event{PC: i}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 5 {
		t.Errorf("len = %d", w.Len())
	}
}

package trace

import (
	"bufio"
	"io"
	"unsafe"

	"repro/internal/prog"
	"repro/internal/vm"
)

// rec is the in-memory decoded form of one trace record. Static
// instruction bits are not stored — they are recovered from the program
// text when a cursor materialises the event — so a decoded trace costs
// ~32 bytes per dynamic instruction.
type rec struct {
	addr  uint64
	val   int64
	pc    uint32
	next  uint32
	taken bool
}

// recBytes is the in-memory footprint of one decoded record.
const recBytes = int64(unsafe.Sizeof(rec{}))

// Decoded is a fully decoded trace held in memory. The record slice is
// immutable after construction, so any number of goroutines may replay the
// same Decoded concurrently, each through its own Cursor, without locks or
// re-decoding.
type Decoded struct {
	prog *prog.Program
	recs []rec
}

// preallocCap bounds speculative record-slice preallocation (4M records =
// 128 MiB): budgets and header counts are hints, not trusted sizes, and a
// program may halt long before its budget.
const preallocCap = 4 << 20

// RecordAll runs the program on a fresh VM for up to max instructions
// (0 = to halt) and returns the decoded correct-path trace.
func RecordAll(p *prog.Program, max int64) (*Decoded, error) {
	d := &Decoded{prog: p}
	if max > 0 {
		n := max
		if n > preallocCap {
			n = preallocCap
		}
		d.recs = make([]rec, 0, n)
	}
	machine := vm.New(p)
	if _, err := machine.Run(max, func(ev *vm.Event) {
		d.recs = append(d.recs, rec{
			addr: ev.Addr, val: ev.Val,
			pc: uint32(ev.PC), next: uint32(ev.NextPC), taken: ev.Taken,
		})
	}); err != nil {
		return nil, err
	}
	return d, nil
}

// Decode reads an entire trace into memory; p must be the program the
// trace was recorded from. Every record is validated once here, so cursor
// replay needs no per-event checks.
func Decode(p *prog.Program, r io.Reader) (*Decoded, error) {
	rd, err := NewReader(p, r)
	if err != nil {
		return nil, err
	}
	d := &Decoded{prog: p}
	// Preallocate from the declared count, but never trust it with more
	// than a modest allocation up front: a count that lies about a short
	// file must surface as a truncation error from Next, not as an
	// out-of-memory condition here.
	if n := rd.Len(); n > 0 {
		if n > preallocCap {
			n = preallocCap
		}
		d.recs = make([]rec, 0, n)
	}
	var ev vm.Event
	for {
		if err := rd.Next(&ev); err != nil {
			if err == io.EOF {
				return d, nil
			}
			return nil, err
		}
		d.recs = append(d.recs, rec{
			addr: ev.Addr, val: ev.Val,
			pc: uint32(ev.PC), next: uint32(ev.NextPC), taken: ev.Taken,
		})
	}
}

// Len returns the number of recorded events.
//
//arvi:hotpath
func (d *Decoded) Len() int64 { return int64(len(d.recs)) }

// Prog returns the program the trace was recorded from.
//
//arvi:hotpath
func (d *Decoded) Prog() *prog.Program { return d.prog }

// MemBytes estimates the resident size of the decoded record store; the
// trace store's memory budget is accounted in these units.
func (d *Decoded) MemBytes() int64 { return int64(len(d.recs)) * recBytes }

// WriteTo serialises the trace in the on-disk format. The record count is
// known up front, so the header carries it even when w is not seekable.
func (d *Decoded) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, d.prog, uint64(len(d.recs))); err != nil {
		return 0, err
	}
	n := int64(headerSize)
	var buf [recordSize]byte
	var ev vm.Event
	for i := range d.recs {
		r := &d.recs[i]
		// putRecord only reads the five persisted fields; no need to
		// materialise the static instruction.
		ev = vm.Event{
			PC: int(r.pc), NextPC: int(r.next), Taken: r.taken,
			Addr: r.addr, Val: r.val,
		}
		putRecord(&buf, &ev)
		if _, err := bw.Write(buf[:]); err != nil {
			return n, err
		}
		n += recordSize
	}
	return n, bw.Flush()
}

// Cursor iterates a Decoded trace as a cpu.EventSource. Cursors are cheap;
// create one per replaying goroutine.
type Cursor struct {
	d *Decoded
	i int64
}

// Cursor returns a fresh iterator positioned at the first event.
func (d *Decoded) Cursor() *Cursor { return &Cursor{d: d} }

// Next fills ev with the next event, returning io.EOF at the end of the
// trace. It implements cpu.EventSource.
//
//arvi:hotpath
//arvi:panicfree c.i starts at 0 and only increments, and record pcs were validated against len(prog.Text) at decode time
func (c *Cursor) Next(ev *vm.Event) error {
	if c.i >= int64(len(c.d.recs)) {
		return io.EOF
	}
	r := &c.d.recs[c.i]
	*ev = vm.Event{
		Seq:    c.i,
		PC:     int(r.pc),
		Inst:   c.d.prog.Text[r.pc],
		NextPC: int(r.next),
		Taken:  r.taken,
		Addr:   r.addr,
		Val:    r.val,
	}
	c.i++
	return nil
}

package trace

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/vm"
	"repro/internal/workload"
)

func TestRecordAllMatchesStreamedRecord(t *testing.T) {
	p := asm.MustAssemble("loop", loopSrc)
	dec, err := RecordAll(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Record(p, 0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != n {
		t.Fatalf("decoded %d events, streamed %d", dec.Len(), n)
	}
	rd, err := NewReader(p, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cur := dec.Cursor()
	var a, b vm.Event
	for {
		ea, eb := cur.Next(&a), rd.Next(&b)
		if ea == io.EOF && eb == io.EOF {
			break
		}
		if ea != nil || eb != nil {
			t.Fatalf("cursor err %v, reader err %v", ea, eb)
		}
		if a != b {
			t.Fatalf("event mismatch:\ncursor %+v\nreader %+v", a, b)
		}
	}
}

func TestDecodedWriteToRoundTrip(t *testing.T) {
	p := asm.MustAssemble("loop", loopSrc)
	dec, err := RecordAll(p, 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := dec.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(headerSize) + dec.Len()*recordSize; n != want {
		t.Errorf("WriteTo wrote %d bytes, want %d", n, want)
	}

	// The serialised form carries the exact count even though bytes.Buffer
	// is not seekable.
	rd, err := NewReader(p, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Len() != dec.Len() {
		t.Errorf("header count %d, want %d", rd.Len(), dec.Len())
	}

	back, err := Decode(p, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != dec.Len() {
		t.Fatalf("round trip lost events: %d != %d", back.Len(), dec.Len())
	}
	ca, cb := dec.Cursor(), back.Cursor()
	var a, b vm.Event
	for {
		ea, eb := ca.Next(&a), cb.Next(&b)
		if ea == io.EOF && eb == io.EOF {
			break
		}
		if ea != nil || eb != nil || a != b {
			t.Fatalf("round-trip divergence: %v %v\n%+v\n%+v", ea, eb, a, b)
		}
	}
}

func TestDecodeRejectsWrongProgram(t *testing.T) {
	a := asm.MustAssemble("a", "main:\n  li r1, 1\n  halt\n")
	b := asm.MustAssemble("b", "main:\n  li r1, 2\n  halt\n")
	var buf bytes.Buffer
	if _, err := Record(a, 0, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(b, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Decode accepted a trace of a different program")
	}
}

// TestConcurrentCursorReplay drives many timing engines off one shared
// Decoded simultaneously — the sharing model the sim trace store relies
// on. Run under -race, this is the proof that replay is data-race free.
func TestConcurrentCursorReplay(t *testing.T) {
	b := workload.ByName("compress")
	const budget = 8_000
	dec, err := RecordAll(b.Prog, budget)
	if err != nil {
		t.Fatal(err)
	}

	cfg := cpu.DefaultConfig(20, cpu.PredARVICurrent)
	cfg.MaxInsts = budget
	want, err := cpu.Run(b.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const replayers = 8
	var wg sync.WaitGroup
	got := make([]cpu.Stats, replayers)
	errs := make([]error, replayers)
	for i := 0; i < replayers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng, err := cpu.NewEngine(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			got[i], errs[i] = eng.RunSource(b.Prog, dec.Cursor())
		}(i)
	}
	wg.Wait()
	for i := 0; i < replayers; i++ {
		if errs[i] != nil {
			t.Fatalf("replayer %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("replayer %d diverged from live stats", i)
		}
	}
}

func TestDecodedMemBytes(t *testing.T) {
	p := asm.MustAssemble("loop", loopSrc)
	dec, err := RecordAll(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dec.MemBytes() != dec.Len()*recBytes {
		t.Errorf("MemBytes = %d, want %d", dec.MemBytes(), dec.Len()*recBytes)
	}
	if dec.Prog() != p {
		t.Error("Prog identity lost")
	}
}

// Package trace records and replays the correct-path dynamic instruction
// stream consumed by the timing model. A trace file stores, per retired
// instruction, the PC, the architectural next PC, the branch outcome, the
// effective address and the result value — everything cpu.EventSource
// needs; the static instruction is recovered from the program text at read
// time, so traces stay compact and a trace is only valid together with the
// program that produced it.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/prog"
	"repro/internal/vm"
)

// magic identifies the trace format (version 1).
const magic = "DDTTRC01"

// recordSize is the fixed on-disk size of one event record.
const recordSize = 4 + 4 + 1 + 8 + 8

// Writer streams events into a trace.
type Writer struct {
	bw    *bufio.Writer
	n     int64
	wrote bool
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Append records one event.
func (t *Writer) Append(ev *vm.Event) error {
	var rec [recordSize]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(ev.PC))
	binary.LittleEndian.PutUint32(rec[4:], uint32(ev.NextPC))
	if ev.Taken {
		rec[8] = 1
	}
	binary.LittleEndian.PutUint64(rec[9:], ev.Addr)
	binary.LittleEndian.PutUint64(rec[17:], uint64(ev.Val))
	if _, err := t.bw.Write(rec[:]); err != nil {
		return err
	}
	t.n++
	return nil
}

// Len returns the number of events appended so far.
func (t *Writer) Len() int64 { return t.n }

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error { return t.bw.Flush() }

// Record runs the program on a fresh VM for up to max instructions
// (0 = to halt), streaming the trace into w. It returns the number of
// instructions recorded.
func Record(p *prog.Program, max int64, w io.Writer) (int64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	machine := vm.New(p)
	var werr error
	n, err := machine.Run(max, func(ev *vm.Event) {
		if werr == nil {
			werr = tw.Append(ev)
		}
	})
	if err != nil {
		return n, err
	}
	if werr != nil {
		return n, werr
	}
	return n, tw.Flush()
}

// Reader replays a recorded trace as a cpu.EventSource.
type Reader struct {
	br   *bufio.Reader
	prog *prog.Program
	seq  int64
}

// NewReader opens a trace over r; p must be the program the trace was
// recorded from (its text supplies the static instructions).
func NewReader(p *prog.Program, r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	return &Reader{br: br, prog: p}, nil
}

// Next fills ev with the next trace record, returning io.EOF at the end.
// It implements cpu.EventSource.
func (t *Reader) Next(ev *vm.Event) error {
	var rec [recordSize]byte
	if _, err := io.ReadFull(t.br, rec[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: record %d: %w", t.seq, err)
	}
	pc := int(binary.LittleEndian.Uint32(rec[0:]))
	if pc < 0 || pc >= len(t.prog.Text) {
		return fmt.Errorf("trace: record %d: pc %d outside program text", t.seq, pc)
	}
	*ev = vm.Event{
		Seq:    t.seq,
		PC:     pc,
		Inst:   t.prog.Text[pc],
		NextPC: int(binary.LittleEndian.Uint32(rec[4:])),
		Taken:  rec[8] != 0,
		Addr:   binary.LittleEndian.Uint64(rec[9:]),
		Val:    int64(binary.LittleEndian.Uint64(rec[17:])),
	}
	t.seq++
	return nil
}

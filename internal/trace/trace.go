package trace

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/prog"
	"repro/internal/vm"
)

// magic identifies the trace format (version 2: fingerprint + count header).
const magic = "DDTTRC02"

// countUnknown is the header count for traces streamed to a non-seekable
// sink, whose length is only discovered at EOF.
const countUnknown = ^uint64(0)

// maxDeclaredRecords bounds the header count a reader will believe
// (2^32 records ≈ a 100 GiB file). A corrupted count field must fail the
// header check, not size an allocation.
const maxDeclaredRecords = uint64(1) << 32

// headerSize is the fixed on-disk header: magic, program fingerprint,
// record count.
const headerSize = len(magic) + sha256.Size + 8

// countOffset is where the record count lives inside the header.
const countOffset = int64(len(magic) + sha256.Size)

// recordSize is the fixed on-disk size of one event record.
const recordSize = 4 + 4 + 1 + 8 + 8

// putRecord encodes one event into a fixed-size record.
func putRecord(rec *[recordSize]byte, ev *vm.Event) {
	binary.LittleEndian.PutUint32(rec[0:], uint32(ev.PC))
	binary.LittleEndian.PutUint32(rec[4:], uint32(ev.NextPC))
	if ev.Taken {
		rec[8] = 1
	} else {
		rec[8] = 0
	}
	binary.LittleEndian.PutUint64(rec[9:], ev.Addr)
	binary.LittleEndian.PutUint64(rec[17:], uint64(ev.Val))
}

// Writer streams events into a trace.
type Writer struct {
	w  io.Writer
	bw *bufio.Writer
	n  int64
}

// writeHeader emits the trace header: magic, program fingerprint, record
// count (countUnknown when the length is not yet known).
func writeHeader(bw *bufio.Writer, p *prog.Program, count uint64) error {
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	fp := p.Fingerprint()
	if _, err := bw.Write(fp[:]); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], count)
	_, err := bw.Write(cnt[:])
	return err
}

// NewWriter starts a trace of program p on w. If w is an io.WriteSeeker
// (e.g. a file), Flush patches the exact record count into the header so
// readers can detect truncation; on a pure stream the count stays unknown
// and the trace is EOF-terminated.
func NewWriter(p *prog.Program, w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, p, countUnknown); err != nil {
		return nil, err
	}
	return &Writer{w: w, bw: bw}, nil
}

// Append records one event.
func (t *Writer) Append(ev *vm.Event) error {
	var rec [recordSize]byte
	putRecord(&rec, ev)
	if _, err := t.bw.Write(rec[:]); err != nil {
		return err
	}
	t.n++
	return nil
}

// Len returns the number of events appended so far.
func (t *Writer) Len() int64 { return t.n }

// Flush drains buffered records to the underlying writer and, when the
// sink is seekable, stamps the final record count into the header.
func (t *Writer) Flush() error {
	if err := t.bw.Flush(); err != nil {
		return err
	}
	ws, ok := t.w.(io.WriteSeeker)
	if !ok {
		return nil
	}
	if _, err := ws.Seek(countOffset, io.SeekStart); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(t.n))
	if _, err := ws.Write(cnt[:]); err != nil {
		return err
	}
	_, err := ws.Seek(0, io.SeekEnd)
	return err
}

// Record runs the program on a fresh VM for up to max instructions
// (0 = to halt), streaming the trace into w. It returns the number of
// instructions recorded.
func Record(p *prog.Program, max int64, w io.Writer) (int64, error) {
	tw, err := NewWriter(p, w)
	if err != nil {
		return 0, err
	}
	machine := vm.New(p)
	var werr error
	n, err := machine.Run(max, func(ev *vm.Event) {
		if werr == nil {
			werr = tw.Append(ev)
		}
	})
	if err != nil {
		return n, err
	}
	if werr != nil {
		return n, werr
	}
	return n, tw.Flush()
}

// Reader replays a recorded trace as a cpu.EventSource.
type Reader struct {
	br    *bufio.Reader
	prog  *prog.Program
	seq   int64
	count uint64 // countUnknown when the trace is EOF-terminated
}

// NewReader opens a trace over r; p must be the program the trace was
// recorded from (its text supplies the static instructions). A trace
// recorded from a different program — even one of the same length — is
// rejected by fingerprint.
func NewReader(p *prog.Program, r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:len(magic)])
	}
	fp := p.Fingerprint()
	if !bytes.Equal(hdr[len(magic):len(magic)+sha256.Size], fp[:]) {
		return nil, fmt.Errorf("trace: program mismatch: trace was not recorded from %q", p.Name)
	}
	count := binary.LittleEndian.Uint64(hdr[countOffset:])
	if count != countUnknown && count > maxDeclaredRecords {
		return nil, fmt.Errorf("trace: unreasonable record count %d in header", count)
	}
	return &Reader{br: br, prog: p, count: count}, nil
}

// Len returns the record count declared in the header, or -1 when the
// trace is EOF-terminated (recorded to a non-seekable sink).
func (t *Reader) Len() int64 {
	if t.count == countUnknown {
		return -1
	}
	return int64(t.count)
}

// Next fills ev with the next trace record, returning io.EOF at the end.
// It implements cpu.EventSource. A file that ends before the declared
// record count — or mid-record — is reported as an error, not as a clean
// end of trace.
func (t *Reader) Next(ev *vm.Event) error {
	if t.count != countUnknown && uint64(t.seq) >= t.count {
		// All declared records consumed; anything further is corruption.
		if _, err := t.br.ReadByte(); err == nil {
			return fmt.Errorf("trace: trailing data after %d declared records", t.count)
		}
		return io.EOF
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(t.br, rec[:]); err != nil {
		if err == io.EOF {
			if t.count != countUnknown {
				return fmt.Errorf("trace: truncated: %d of %d declared records", t.seq, t.count)
			}
			return io.EOF
		}
		return fmt.Errorf("trace: record %d: %w", t.seq, err)
	}
	pc := int(binary.LittleEndian.Uint32(rec[0:]))
	if pc < 0 || pc >= len(t.prog.Text) {
		return fmt.Errorf("trace: record %d: pc %d outside program text", t.seq, pc)
	}
	*ev = vm.Event{
		Seq:    t.seq,
		PC:     pc,
		Inst:   t.prog.Text[pc],
		NextPC: int(binary.LittleEndian.Uint32(rec[4:])),
		Taken:  rec[8] != 0,
		Addr:   binary.LittleEndian.Uint64(rec[9:]),
		Val:    int64(binary.LittleEndian.Uint64(rec[17:])),
	}
	t.seq++
	return nil
}

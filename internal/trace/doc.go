// Package trace records and replays the correct-path dynamic instruction
// stream consumed by the timing model — the mechanism behind the
// record-once/replay-many tier that lets every (depth × predictor)
// configuration of one benchmark share a single functional-VM execution
// (the property the paper's own SimpleScalar-style methodology relies
// on: all Section 5 configurations see the same dynamic stream).
//
// A trace file stores, per retired instruction, the PC, the architectural
// next PC, the branch outcome, the effective address and the result
// value — everything cpu.EventSource needs; the static instruction is
// recovered from the program text at read time, so traces stay compact
// and a trace is only valid together with the program that produced it.
//
// The header binds a trace to its program: it carries the program's
// content fingerprint (prog.Fingerprint), so replaying against the wrong
// program is an error rather than a silent garbage run, and — when the
// trace was written to a seekable sink — the exact record count, so a
// truncated file is detected even when it was cut at a record boundary.
//
// Main entry points: Record executes a program on the functional VM and
// streams its events to a sink; NewReader replays a trace file as a
// cpu.EventSource; Decode (and RecordAll, which skips the file) loads a
// whole trace into a Decoded, whose Cursor values are independent
// lock-free replay positions — the form sim.TraceStore keeps resident so
// concurrent timing runs share one immutable decoded trace.
package trace

//go:build bitvecdebug

package bitvec

import (
	"strings"
	"testing"
)

// TestLengthContractAssertion verifies the bitvecdebug build turns an
// equal-length contract violation into an immediate, labelled panic —
// instead of the release build's confusing interior index-out-of-range
// (short operand) or silent truncation (long operand). Run with:
//
//	go test -tags bitvecdebug ./internal/bitvec/
func TestLengthContractAssertion(t *testing.T) {
	short := New(64)
	long := New(192)
	ops := map[string]func(){
		"Or":         func() { long.Or(short) },
		"And":        func() { long.And(short) },
		"AndNot":     func() { long.AndNot(short) },
		"OrOf":       func() { long.OrOf(short, long) },
		"OrAnd":      func() { long.OrAnd(long, short) },
		"OrAndInto":  func() { long.OrAndInto(long, long, short) },
		"OrOfAndNot": func() { long.OrOfAndNot(short, long, long) },
		"CopyFrom":   func() { long.CopyFrom(short) },
		// The silent-truncation direction must be caught too: a short
		// receiver would otherwise just ignore the operand's tail.
		"short-recv": func() { short.Or(long) },
	}
	for name, op := range ops {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: mismatched lengths did not panic under bitvecdebug", name)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "equal-length contract") {
					t.Errorf("%s: panic %v lacks the contract message", name, r)
				}
			}()
			op()
		}()
	}
}

// TestEqualLengthsPass ensures the assertion is transparent for correct
// callers.
func TestEqualLengthsPass(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	b.Or(a)
	if !b.Get(3) {
		t.Error("Or lost a bit under bitvecdebug")
	}
}

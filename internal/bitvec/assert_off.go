//go:build !bitvecdebug

package bitvec

// assertSameLen is compiled away in release builds; the equal-length
// contract is documented in the package comment and enforced only under
// the bitvecdebug build tag.
//
//arvi:hotpath
func assertSameLen(a, b Vec) {}

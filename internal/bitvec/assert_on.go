//go:build bitvecdebug

package bitvec

import "fmt"

// assertSameLen enforces the package's equal-length contract under the
// bitvecdebug build tag: a mismatch panics immediately with both lengths,
// instead of the confusing interior index-out-of-range (short operand) or
// silent truncation (long operand) the release build produces.
func assertSameLen(a, b Vec) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bitvec: operand word lengths differ: %d vs %d (equal-length contract violated)",
			len(a), len(b)))
	}
}

package bitvec

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	v := New(130)
	if len(v) != 3 {
		t.Fatalf("words = %d, want 3", len(v))
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if v.Get(i) {
			t.Errorf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := v.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	v.Clear(64)
	if v.Get(64) || v.Count() != 5 {
		t.Error("clear failed")
	}
}

func TestWordsFor(t *testing.T) {
	cases := [][2]int{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}
	for _, c := range cases {
		if got := WordsFor(c[0]); got != c[1] {
			t.Errorf("WordsFor(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestBinaryOps(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)

	v := a.Clone()
	v.Or(b)
	if !(v.Get(1) && v.Get(70) && v.Get(99)) || v.Count() != 3 {
		t.Errorf("or wrong: %v", v)
	}
	v = a.Clone()
	v.And(b)
	if !v.Get(70) || v.Count() != 1 {
		t.Errorf("and wrong: %v", v)
	}
	v = a.Clone()
	v.AndNot(b)
	if !v.Get(1) || v.Count() != 1 {
		t.Errorf("andnot wrong: %v", v)
	}
	v = New(100)
	v.OrOf(a, b)
	if v.Count() != 3 {
		t.Errorf("orof wrong: %v", v)
	}
}

func TestAnyResetEqual(t *testing.T) {
	v := New(80)
	if v.Any() {
		t.Error("fresh vector must be empty")
	}
	v.Set(79)
	if !v.Any() {
		t.Error("any failed")
	}
	c := v.Clone()
	if !v.Equal(c) {
		t.Error("clone not equal")
	}
	c.Reset()
	if c.Any() || v.Equal(c) {
		t.Error("reset failed")
	}
	if v.Equal(New(144)) {
		t.Error("different lengths must not be equal")
	}
}

func TestForEachOrder(t *testing.T) {
	v := New(200)
	want := []int{3, 64, 65, 190}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ForEach order: got %v, want %v", got, want)
			break
		}
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesSets(t *testing.T) {
	f := func(idxs []uint16) bool {
		v := New(1 << 16)
		seen := map[uint16]bool{}
		for _, i := range idxs {
			v.Set(int(i))
			seen[i] = true
		}
		return v.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identity a&^b == a & (a^(a&b)) on our ops.
func TestQuickAndNotConsistency(t *testing.T) {
	f := func(aw, bw [4]uint64) bool {
		a, b := Vec(aw[:]).Clone(), Vec(bw[:]).Clone()
		x := a.Clone()
		x.AndNot(b)
		y := a.Clone()
		ab := a.Clone()
		ab.And(b)
		y.AndNot(ab)
		return x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

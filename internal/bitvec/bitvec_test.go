package bitvec

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	v := New(130)
	if len(v) != 3 {
		t.Fatalf("words = %d, want 3", len(v))
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if v.Get(i) {
			t.Errorf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := v.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	v.Clear(64)
	if v.Get(64) || v.Count() != 5 {
		t.Error("clear failed")
	}
}

func TestWordsFor(t *testing.T) {
	cases := [][2]int{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}
	for _, c := range cases {
		if got := WordsFor(c[0]); got != c[1] {
			t.Errorf("WordsFor(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestBinaryOps(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)

	v := a.Clone()
	v.Or(b)
	if !(v.Get(1) && v.Get(70) && v.Get(99)) || v.Count() != 3 {
		t.Errorf("or wrong: %v", v)
	}
	v = a.Clone()
	v.And(b)
	if !v.Get(70) || v.Count() != 1 {
		t.Errorf("and wrong: %v", v)
	}
	v = a.Clone()
	v.AndNot(b)
	if !v.Get(1) || v.Count() != 1 {
		t.Errorf("andnot wrong: %v", v)
	}
	v = New(100)
	v.OrOf(a, b)
	if v.Count() != 3 {
		t.Errorf("orof wrong: %v", v)
	}
}

func TestAnyResetEqual(t *testing.T) {
	v := New(80)
	if v.Any() {
		t.Error("fresh vector must be empty")
	}
	v.Set(79)
	if !v.Any() {
		t.Error("any failed")
	}
	c := v.Clone()
	if !v.Equal(c) {
		t.Error("clone not equal")
	}
	c.Reset()
	if c.Any() || v.Equal(c) {
		t.Error("reset failed")
	}
	if v.Equal(New(144)) {
		t.Error("different lengths must not be equal")
	}
}

func TestForEachOrder(t *testing.T) {
	v := New(200)
	want := []int{3, 64, 65, 190}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ForEach order: got %v, want %v", got, want)
			break
		}
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesSets(t *testing.T) {
	f := func(idxs []uint16) bool {
		v := New(1 << 16)
		seen := map[uint16]bool{}
		for _, i := range idxs {
			v.Set(int(i))
			seen[i] = true
		}
		return v.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identity a&^b == a & (a^(a&b)) on our ops.
func TestQuickAndNotConsistency(t *testing.T) {
	f := func(aw, bw [4]uint64) bool {
		a, b := Vec(aw[:]).Clone(), Vec(bw[:]).Clone()
		x := a.Clone()
		x.AndNot(b)
		y := a.Clone()
		ab := a.Clone()
		ab.And(b)
		y.AndNot(ab)
		return x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFusedKernels(t *testing.T) {
	const n = 200
	mk := func(bits ...int) Vec {
		v := New(n)
		for _, b := range bits {
			v.Set(b)
		}
		return v
	}
	a := mk(1, 64, 130, 199)
	b := mk(2, 64, 131)
	m := mk(1, 2, 64, 199)

	v := New(n)
	v.Set(5)
	v.OrAnd(a, m) // v |= a & m
	want := mk(5, 1, 64, 199)
	if !v.Equal(want) {
		t.Errorf("OrAnd wrong")
	}

	v = New(n)
	v.OrAndInto(a, b, m) // v = (a|b) & m
	if !v.Equal(mk(1, 2, 64, 199)) {
		t.Errorf("OrAndInto wrong")
	}
	// Aliasing: v as both dst and operand.
	v = a.Clone()
	v.OrAndInto(v, b, m)
	if !v.Equal(mk(1, 2, 64, 199)) {
		t.Errorf("aliased OrAndInto wrong")
	}

	v = New(n)
	v.OrOfAndNot(a, b, m) // v = a | (b &^ m)
	if !v.Equal(mk(1, 64, 130, 131, 199)) {
		t.Errorf("OrOfAndNot wrong")
	}
}

func TestFillAndRanges(t *testing.T) {
	const n = 200
	v := New(n)
	v.Fill()
	for _, i := range []int{0, 63, 64, 199} {
		if !v.Get(i) {
			t.Fatalf("Fill left bit %d clear", i)
		}
	}
	v.ClearRange(60, 140)
	for i := 0; i < n; i++ {
		want := i < 60 || i >= 140
		if v.Get(i) != want {
			t.Fatalf("after ClearRange(60,140): bit %d = %v", i, v.Get(i))
		}
	}
	v.Reset()
	v.SetRange(3, 5)
	v.SetRange(62, 130)
	for i := 0; i < n; i++ {
		want := (i >= 3 && i < 5) || (i >= 62 && i < 130)
		if v.Get(i) != want {
			t.Fatalf("after SetRange: bit %d = %v", i, v.Get(i))
		}
	}
	// Degenerate ranges are no-ops.
	before := v.Clone()
	v.SetRange(10, 10)
	v.ClearRange(90, 4)
	if !v.Equal(before) {
		t.Error("empty range mutated the vector")
	}
}

func TestPriorityEncoders(t *testing.T) {
	const n = 256
	v := New(n)
	if v.FirstBitFrom(0) != -1 || v.MaxBitBelow(n) != -1 {
		t.Fatal("empty vector must encode to -1")
	}
	for _, b := range []int{3, 64, 130, 255} {
		v.Set(b)
	}
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130}, {131, 255}, {255, 255},
	}
	for _, c := range cases {
		if got := v.FirstBitFrom(c.from); got != c.want {
			t.Errorf("FirstBitFrom(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := v.FirstBitFrom(256); got != -1 {
		t.Errorf("FirstBitFrom past the end = %d, want -1", got)
	}
	below := []struct{ limit, want int }{
		{256, 255}, {255, 130}, {131, 130}, {130, 64}, {65, 64}, {64, 3}, {4, 3}, {3, -1}, {0, -1},
	}
	for _, c := range below {
		if got := v.MaxBitBelow(c.limit); got != c.want {
			t.Errorf("MaxBitBelow(%d) = %d, want %d", c.limit, got, c.want)
		}
	}
	// Exhaustive cross-check against ForEach on random-ish patterns.
	v = New(130)
	for i := 0; i < 130; i += 7 {
		v.Set(i)
	}
	for from := 0; from <= 130; from++ {
		want := -1
		for i := from; i < 130; i++ {
			if v.Get(i) {
				want = i
				break
			}
		}
		if got := v.FirstBitFrom(from); got != want {
			t.Fatalf("FirstBitFrom(%d) = %d, want %d", from, got, want)
		}
		want = -1
		for i := from - 1; i >= 0; i-- {
			if v.Get(i) {
				want = i
				break
			}
		}
		if got := v.MaxBitBelow(from); got != want {
			t.Fatalf("MaxBitBelow(%d) = %d, want %d", from, got, want)
		}
	}
}

func TestClearColumn(t *testing.T) {
	const rows, bits = 5, 100
	words := WordsFor(bits)
	m := make([]uint64, rows*words)
	for r := 0; r < rows; r++ {
		row := Vec(m[r*words : (r+1)*words])
		row.Set(17)
		row.Set(r)
		row.Set(99)
	}
	ClearColumn(m, words, 17)
	for r := 0; r < rows; r++ {
		row := Vec(m[r*words : (r+1)*words])
		if row.Get(17) {
			t.Fatalf("row %d still has column 17", r)
		}
		if !row.Get(r) || !row.Get(99) {
			t.Fatalf("row %d lost unrelated bits", r)
		}
	}
}

// summaryOf computes the exact word summary of v: bit w set iff word w is
// nonzero. The reference the sparse kernels are checked against.
func summaryOf(v Vec) uint64 {
	var sum uint64
	for i, w := range v {
		if w != 0 {
			sum |= 1 << uint(i)
		}
	}
	return sum
}

// TestSparseKernelsAgainstDense drives OrSparse/OrAndSparse/AndSparse with
// randomized vectors and both exact and overapproximate summaries, checking
// bit-for-bit equivalence with the dense kernels plus the returned-summary
// contract (a superset of the nonzero words; exact for AndSparse).
func TestSparseKernelsAgainstDense(t *testing.T) {
	const bits = 6 * 64 // 6 words: spans sparse and dense-fallback paths
	rng := func(seed uint64) func() uint64 {
		s := seed
		return func() uint64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return s
		}
	}
	next := rng(0x9e3779b97f4a7c15)
	for iter := 0; iter < 2000; iter++ {
		a, m, base := New(bits), New(bits), New(bits)
		// Random density per word so some iterations hit the dense
		// fallback (most words live) and some the per-flag loop.
		liveWords := int(next() % 7)
		for w := 0; w < liveWords; w++ {
			a[int(next()%uint64(len(a)))] = next()
		}
		for i := range m {
			m[i] = next()
		}
		for i := range base {
			if next()%3 == 0 {
				base[i] = next()
			}
		}
		sum := summaryOf(a)
		if iter%2 == 1 {
			sum |= next() & next() // overapproximate: extra flags over zero words
		}

		// OrSparse == Or when a's summary invariant holds.
		gotV, wantV := base.Clone(), base.Clone()
		nz := gotV.OrSparse(a, sum)
		wantV.Or(a)
		if !gotV.Equal(wantV) {
			t.Fatalf("iter %d: OrSparse diverged from Or", iter)
		}
		// The returned flags never mark a zero word, and every summary-
		// flagged word left nonzero is marked (both paths visit all of
		// sum's words; the dense fallback may legitimately flag nonzero
		// base words outside sum).
		for i := range gotV {
			if nz&(1<<uint(i)) != 0 && gotV[i] == 0 {
				t.Fatalf("iter %d: OrSparse flagged zero word %d", iter, i)
			}
			if sum&(1<<uint(i)) != 0 && gotV[i] != 0 && nz&(1<<uint(i)) == 0 {
				t.Fatalf("iter %d: OrSparse missed nonzero word %d", iter, i)
			}
		}

		// OrAndSparse == OrAnd.
		gotV, wantV = base.Clone(), base.Clone()
		nz = gotV.OrAndSparse(a, m, sum)
		wantV.OrAnd(a, m)
		if !gotV.Equal(wantV) {
			t.Fatalf("iter %d: OrAndSparse diverged from OrAnd", iter)
		}
		for i := range gotV {
			if nz&(1<<uint(i)) != 0 && gotV[i] == 0 {
				t.Fatalf("iter %d: OrAndSparse flagged zero word %d", iter, i)
			}
		}

		// AndSparse == And given the receiver's summary invariant
		// (unflagged receiver words are zero); returned summary is exact.
		got2 := a.Clone() // a's nonzero words are exactly flagged by summaryOf(a)
		want2 := a.Clone()
		out := got2.AndSparse(m, summaryOf(a))
		want2.And(m)
		if !got2.Equal(want2) {
			t.Fatalf("iter %d: AndSparse diverged from And", iter)
		}
		if out != summaryOf(got2) {
			t.Fatalf("iter %d: AndSparse summary %b, want exact %b", iter, out, summaryOf(got2))
		}
	}
}

// Package bitvec provides the fixed-width bit-vector kernel underlying the
// DDT rows, the valid vector and the RSE mark planes. Vectors are plain
// []uint64 slices so rows of a larger matrix can alias a flat backing array
// without copies.
package bitvec

import "math/bits"

// Vec is a bit vector. Its length in bits is fixed by its creator; all
// binary operations require operands of equal word length.
type Vec []uint64

// WordsFor returns the number of 64-bit words needed for n bits.
func WordsFor(n int) int { return (n + 63) / 64 }

// New returns a zeroed vector capable of holding n bits.
func New(n int) Vec { return make(Vec, WordsFor(n)) }

// Set sets bit i.
func (v Vec) Set(i int) { v[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (v Vec) Clear(i int) { v[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool { return v[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset zeroes the vector.
func (v Vec) Reset() {
	for i := range v {
		v[i] = 0
	}
}

// CopyFrom overwrites v with src.
func (v Vec) CopyFrom(src Vec) { copy(v, src) }

// Or sets v |= a.
func (v Vec) Or(a Vec) {
	for i := range v {
		v[i] |= a[i]
	}
}

// And sets v &= a.
func (v Vec) And(a Vec) {
	for i := range v {
		v[i] &= a[i]
	}
}

// AndNot sets v &^= a.
func (v Vec) AndNot(a Vec) {
	for i := range v {
		v[i] &^= a[i]
	}
}

// OrOf sets v = a | b (v may alias a or b).
func (v Vec) OrOf(a, b Vec) {
	for i := range v {
		v[i] = a[i] | b[i]
	}
}

// Any reports whether any bit is set.
func (v Vec) Any() bool {
	for _, w := range v {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (v Vec) Count() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for each set bit index in ascending order.
func (v Vec) ForEach(fn func(i int)) {
	for wi, w := range v {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Equal reports whether v and a hold identical bits.
func (v Vec) Equal(a Vec) bool {
	if len(v) != len(a) {
		return false
	}
	for i := range v {
		if v[i] != a[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Package bitvec provides the fixed-width bit-vector kernel underlying the
// DDT rows, the valid vector and the RSE mark planes. Vectors are plain
// []uint64 slices so rows of a larger matrix can alias a flat backing array
// without copies.
//
// # Equal-length contract
//
// A Vec does not carry its bit length; all binary operations (Or, And,
// AndNot, OrOf, OrAnd, OrAndInto, OrSparse, OrAndSparse, AndSparse,
// CopyFrom, Equal-by-content users) require operands of equal word length. Operands of different lengths are a caller
// bug: the release build indexes by the receiver's length, so a short
// operand panics with an index-out-of-range at some interior word and a
// long operand is silently truncated. Build with
//
//	go test -tags bitvecdebug ./...
//
// to turn every length mismatch into an immediate, clearly labelled panic
// at the offending call site (see assert_on.go).
package bitvec

import "math/bits"

// Vec is a bit vector. Its length in bits is fixed by its creator; all
// binary operations require operands of equal word length (see the package
// comment for the contract and the bitvecdebug assertion build).
type Vec []uint64

// WordsFor returns the number of 64-bit words needed for n bits.
//
//arvi:hotpath
func WordsFor(n int) int { return (n + 63) / 64 }

// New returns a zeroed vector capable of holding n bits.
func New(n int) Vec { return make(Vec, WordsFor(n)) }

// Set sets bit i.
//
//arvi:hotpath
//arvi:panicfree the bit-length contract (package comment) gives 0 <= i < 64*len(v), so i>>6 is in range
func (v Vec) Set(i int) { v[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
//
//arvi:hotpath
//arvi:panicfree the bit-length contract (package comment) gives 0 <= i < 64*len(v), so i>>6 is in range
func (v Vec) Clear(i int) { v[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
//
//arvi:hotpath
//arvi:panicfree the bit-length contract (package comment) gives 0 <= i < 64*len(v), so i>>6 is in range
func (v Vec) Get(i int) bool { return v[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset zeroes the vector.
//
//arvi:hotpath
func (v Vec) Reset() {
	clear(v)
}

// Fill sets every bit, including any padding bits past the creator's
// nominal length (callers that AND against a Filled mask never see the
// padding, because real operands keep their padding clear).
//
//arvi:hotpath
func (v Vec) Fill() {
	for i := range v {
		v[i] = ^uint64(0)
	}
}

// CopyFrom overwrites v with src.
//
//arvi:hotpath
func (v Vec) CopyFrom(src Vec) {
	assertSameLen(v, src)
	copy(v, src)
}

// Or sets v |= a.
//
//arvi:hotpath
func (v Vec) Or(a Vec) {
	assertSameLen(v, a)
	for i := range v {
		v[i] |= a[i]
	}
}

// And sets v &= a.
//
//arvi:hotpath
func (v Vec) And(a Vec) {
	assertSameLen(v, a)
	for i := range v {
		v[i] &= a[i]
	}
}

// AndNot sets v &^= a.
//
//arvi:hotpath
func (v Vec) AndNot(a Vec) {
	assertSameLen(v, a)
	for i := range v {
		v[i] &^= a[i]
	}
}

// OrOf sets v = a | b (v may alias a or b).
//
//arvi:hotpath
func (v Vec) OrOf(a, b Vec) {
	assertSameLen(v, a)
	assertSameLen(v, b)
	for i := range v {
		v[i] = a[i] | b[i]
	}
}

// OrAnd sets v |= a & m in one fused pass — the masked-accumulate kernel of
// the DDT's lazy column invalidation (a is a matrix row, m the keep mask).
//
//arvi:hotpath
func (v Vec) OrAnd(a, m Vec) {
	assertSameLen(v, a)
	assertSameLen(v, m)
	for i := range v {
		v[i] |= a[i] & m[i]
	}
}

// OrAndInto sets v = (a | b) & m in one fused pass (v may alias any
// operand): the two-source dependence-chain combine with a validity mask.
//
//arvi:hotpath
func (v Vec) OrAndInto(a, b, m Vec) {
	assertSameLen(v, a)
	assertSameLen(v, b)
	assertSameLen(v, m)
	for i := range v {
		v[i] = (a[i] | b[i]) & m[i]
	}
}

// Word summaries — the sparse/dense hybrid row representation.
//
// A summary is a uint64 with bit w set when word w of the vector may be
// nonzero (a superset of the truly nonzero words: a set flag over a zero
// word wastes one word read, a clear flag over a nonzero word loses bits).
// Wide machines keep mostly-empty dependence rows; the *Sparse kernels
// take the row's summary and skip the dead words, falling back to a plain
// dense pass when the summary says most words are live. One uint64 covers
// 64 words = 4096 bits, which bounds the vectors it can summarise;
// core.Config.validate enforces the bound for DDT rows.

// OrSparse sets v |= a for the words flagged in sum, skipping words the
// summary proves zero, and returns the flags of words of v that are
// nonzero after the pass (a summary delta for the caller to accumulate).
// Words of a outside sum must be zero — the caller's summary invariant.
//
//arvi:hotpath
//arvi:panicfree the summary invariant flags only word indices below len(v), and s iterates a subset of sum's bits
func (v Vec) OrSparse(a Vec, sum uint64) uint64 {
	assertSameLen(v, a)
	var nz uint64
	if bits.OnesCount64(sum) >= len(v)-(len(v)>>2) {
		// Dense fallback: unflagged words of a are zero, so a full pass
		// is equivalent and avoids the per-word decode.
		for i := range v {
			v[i] |= a[i]
			if v[i] != 0 {
				nz |= 1 << uint(i)
			}
		}
		return nz
	}
	for s := sum; s != 0; s &= s - 1 {
		i := bits.TrailingZeros64(s)
		v[i] |= a[i]
		if v[i] != 0 {
			nz |= 1 << uint(i)
		}
	}
	return nz
}

// OrAndSparse sets v |= a & m for the words flagged in sum — the
// masked-accumulate kernel of the DDT's lazy column invalidation, guided
// by the row's word summary — and returns the flags of words of v that
// are nonzero after the pass. Words of a outside sum must be zero.
//
//arvi:hotpath
//arvi:panicfree the summary invariant flags only word indices below len(v), and s iterates a subset of sum's bits
func (v Vec) OrAndSparse(a, m Vec, sum uint64) uint64 {
	assertSameLen(v, a)
	assertSameLen(v, m)
	var nz uint64
	if bits.OnesCount64(sum) >= len(v)-(len(v)>>2) {
		for i := range v {
			v[i] |= a[i] & m[i]
			if v[i] != 0 {
				nz |= 1 << uint(i)
			}
		}
		return nz
	}
	for s := sum; s != 0; s &= s - 1 {
		i := bits.TrailingZeros64(s)
		v[i] |= a[i] & m[i]
		if v[i] != 0 {
			nz |= 1 << uint(i)
		}
	}
	return nz
}

// AndSparse sets v &= a for the words flagged in sum and returns sum with
// the flags of words that became zero cleared — the exact new summary of
// v, provided v's words outside sum were already zero (the caller's
// summary invariant; gatherChain guarantees it by building v from a full
// clear plus summary-guided ORs only).
//
//arvi:hotpath
//arvi:panicfree the summary invariant flags only word indices below len(v), and s iterates a subset of sum's bits
func (v Vec) AndSparse(a Vec, sum uint64) uint64 {
	assertSameLen(v, a)
	for s := sum; s != 0; s &= s - 1 {
		i := bits.TrailingZeros64(s)
		v[i] &= a[i]
		if v[i] == 0 {
			sum &^= 1 << uint(i)
		}
	}
	return sum
}

// OrOfAndNot sets v = a | (b &^ m) in one fused pass (v may alias any
// operand). No hot path uses it yet; it rounds out the fused-kernel set
// for callers composing masked chain merges.
//
//arvi:hotpath
func (v Vec) OrOfAndNot(a, b, m Vec) {
	assertSameLen(v, a)
	assertSameLen(v, b)
	assertSameLen(v, m)
	for i := range v {
		v[i] = a[i] | (b[i] &^ m[i])
	}
}

// SetRange sets bits [lo, hi). An empty range is a no-op.
//
//arvi:hotpath
//arvi:panicfree callers pass bit positions inside the vector: 0 <= lo < hi <= 64*len(v) bounds loW and hiW
func (v Vec) SetRange(lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		v[loW] |= loMask & hiMask
		return
	}
	v[loW] |= loMask
	for i := loW + 1; i < hiW; i++ {
		v[i] = ^uint64(0)
	}
	v[hiW] |= hiMask
}

// ClearRange clears bits [lo, hi). An empty range is a no-op.
//
//arvi:hotpath
//arvi:panicfree callers pass bit positions inside the vector: 0 <= lo < hi <= 64*len(v) bounds loW and hiW
func (v Vec) ClearRange(lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		v[loW] &^= loMask & hiMask
		return
	}
	v[loW] &^= loMask
	for i := loW + 1; i < hiW; i++ {
		v[i] = 0
	}
	v[hiW] &^= hiMask
}

// Any reports whether any bit is set.
//
//arvi:hotpath
func (v Vec) Any() bool {
	for _, w := range v {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
//
//arvi:hotpath
func (v Vec) Count() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// FirstBitFrom returns the lowest set bit index >= from, or -1 when no such
// bit exists. It is the software form of a priority encoder with a start
// enable: one trailing-zeros scan per word, no per-bit iteration.
//
//arvi:hotpath
func (v Vec) FirstBitFrom(from int) int {
	if from < 0 {
		from = 0
	}
	wi := from >> 6
	if wi >= len(v) {
		return -1
	}
	if w := v[wi] >> (uint(from) & 63); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v); wi++ {
		if w := v[wi]; w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// MaxBitBelow returns the highest set bit index < limit, or -1 when no such
// bit exists: the complementary priority encoder (leading-zeros scan
// downward). core.DDT.Depth needs only the FirstBitFrom direction and the
// incremental leaf scan iterates summary-guided words, so nothing on the
// per-instruction closure calls this; it is deliberately NOT //arvi:hotpath.
// It exists for offline tools, and demoting it keeps the hotalloc proof
// surface honest — a future hot caller must either re-annotate it (pulling
// it back under the allocation-free contract) or stay off it.
func (v Vec) MaxBitBelow(limit int) int {
	if limit <= 0 {
		return -1
	}
	if max := len(v) << 6; limit > max {
		limit = max
	}
	wi := (limit - 1) >> 6
	r := int(uint(limit-1) & 63)
	if w := v[wi] << (63 - uint(r)); w != 0 {
		return wi<<6 + r - bits.LeadingZeros64(w)
	}
	for wi--; wi >= 0; wi-- {
		if w := v[wi]; w != 0 {
			return wi<<6 + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// ForEach calls fn for each set bit index in ascending order.
//
// The closure generally does not inline; hot paths should iterate the
// words directly (Vec is a plain []uint64) the way core.ExtractSet does.
func (v Vec) ForEach(fn func(i int)) {
	for wi, w := range v {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Equal reports whether v and a hold identical bits.
//
//arvi:hotpath
func (v Vec) Equal(a Vec) bool {
	if len(v) != len(a) {
		return false
	}
	for i := range v {
		if v[i] != a[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// ClearColumn clears bit `bit` in every row of the flat row-major matrix
// `m` whose rows are `words` words wide: the columnwise kernel hardware
// implements as a wired column clear. The DDT no longer calls it anywhere
// — lazy generation-stamped invalidation replaced the per-insert walk, and
// DDT.Reset leaves dirty rows unreadable via stamps — so this exists only
// as the reference form of the eager semantics the stamp scheme must match
// (the differential fuzz pins the equivalence).
func ClearColumn(m []uint64, words, bit int) {
	wi := bit >> 6
	mask := ^(uint64(1) << (uint(bit) & 63))
	for off := wi; off < len(m); off += words {
		m[off] &= mask
	}
}

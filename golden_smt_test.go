package repro

import (
	"context"

	"encoding/json"
	"os"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/smt"
	"repro/internal/workload"
)

const goldenSMTPath = "testdata/golden_smt.json"

// goldenSMTFile pins the SMT fetch-policy study at a fixed small cycle
// budget, per (mix × policy) cell. Any silent drift in the SMT model, the
// DDT, or the workload generators fails tier-1 before it can poison
// cached study results. Regenerate intentional changes with:
//
//	go test -run TestGoldenSMT -update .
type goldenSMTFile struct {
	Note      string                             `json:"note"`
	MaxCycles int64                              `json:"maxCycles"`
	Stats     map[string]map[string]sim.SMTStats `json:"stats"` // mix → policy → stats
}

func computeGoldenSMT(t *testing.T) goldenSMTFile {
	t.Helper()
	cfg := smt.DefaultConfig()
	cfg.MaxCycles = 20_000
	g := goldenSMTFile{
		Note:      "regenerate with: go test -run TestGoldenSMT -update .",
		MaxCycles: cfg.MaxCycles,
		Stats:     make(map[string]map[string]sim.SMTStats, len(workload.MixNames)),
	}
	eng := &sim.Engine{}
	grid, err := eng.RunSMTGrid(context.Background(), workload.Mixes(), sim.SMTPolicies, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range workload.Mixes() {
		g.Stats[m.Name] = make(map[string]sim.SMTStats, len(sim.SMTPolicies))
		for _, p := range sim.SMTPolicies {
			st, ok := grid.Lookup(m.Name, p)
			if !ok {
				t.Fatalf("%s/%s: missing cell", m.Name, p)
			}
			g.Stats[m.Name][p.String()] = st
		}
	}
	return g
}

func TestGoldenSMT(t *testing.T) {
	got := computeGoldenSMT(t)

	if *updateGolden {
		writeGoldenFile(t, goldenSMTPath, got)
		return
	}

	raw, err := os.ReadFile(goldenSMTPath)
	if err != nil {
		t.Fatalf("%v (generate it with: go test -run TestGoldenSMT -update .)", err)
	}
	var want goldenSMTFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if want.MaxCycles != got.MaxCycles {
		t.Fatalf("golden config drifted: file budget %d vs test %d; -update after verifying",
			want.MaxCycles, got.MaxCycles)
	}
	for mix, policies := range got.Stats {
		for pol, g := range policies {
			w, ok := want.Stats[mix][pol]
			if !ok {
				t.Errorf("%s/%s: missing from golden file; -update after verifying", mix, pol)
				continue
			}
			if !reflect.DeepEqual(g, w) {
				t.Errorf("%s/%s: stats drifted from golden corpus:\ngolden  %+v\ncurrent %+v\n"+
					"If this change is intentional, regenerate with: go test -run TestGoldenSMT -update .",
					mix, pol, w, g)
			}
		}
	}
	for mix, policies := range want.Stats {
		for pol := range policies {
			if _, ok := got.Stats[mix][pol]; !ok {
				t.Errorf("golden file has unknown cell %s/%s", mix, pol)
			}
		}
	}
}

// writeGoldenFile is the shared -update writer for the golden corpora.
func writeGoldenFile(t *testing.T, path string, v any) {
	t.Helper()
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

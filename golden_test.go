package repro

import (
	"context"

	"encoding/json"
	"flag"
	"os"
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// updateGolden rewrites the golden corpora from the current simulator:
//
//	go test -run TestGolden -update .        # all three corpora
//	go test -run TestGoldenStats -update .   # branch prediction only
//	go test -run TestGoldenSMT -update .     # SMT fetch policies only
//	go test -run TestGoldenVPred -update .   # selective value prediction
//
// Do this only when a model change is intentional; the diff of the
// testdata/*.json corpus then documents exactly what moved.
var updateGolden = flag.Bool("update", false, "rewrite the testdata/ golden corpora")

const goldenPath = "testdata/golden_stats.json"

// goldenFile pins per-benchmark statistics at a fixed small configuration.
// Any silent drift in the timing model, the predictors, the workload
// generators or the VM shows up here as a tier-1 failure instead of as
// stale-but-trusted entries in people's result caches.
type goldenFile struct {
	Note     string               `json:"note"`
	Depth    int                  `json:"depth"`
	Mode     string               `json:"mode"`
	MaxInsts int64                `json:"maxInsts"`
	Stats    map[string]cpu.Stats `json:"stats"`
}

func computeGolden(t *testing.T) goldenFile {
	t.Helper()
	g := goldenFile{
		Note:     "regenerate with: go test -run TestGoldenStats -update .",
		Depth:    20,
		Mode:     cpu.PredARVICurrent.String(),
		MaxInsts: 20_000,
		Stats:    make(map[string]cpu.Stats, len(workload.Names)),
	}
	for _, name := range workload.Names {
		r, err := sim.Simulate(sim.Spec{
			Bench: name, Depth: g.Depth, Mode: cpu.PredARVICurrent, MaxInsts: g.MaxInsts,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g.Stats[name] = r.Stats
	}
	return g
}

func TestGoldenStats(t *testing.T) {
	got := computeGolden(t)

	if *updateGolden {
		writeGoldenFile(t, goldenPath, got)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (generate it with: go test -run TestGoldenStats -update .)", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if want.Depth != got.Depth || want.Mode != got.Mode || want.MaxInsts != got.MaxInsts {
		t.Fatalf("golden config drifted: file (%d, %s, %d) vs test (%d, %s, %d); -update after verifying",
			want.Depth, want.Mode, want.MaxInsts, got.Depth, got.Mode, got.MaxInsts)
	}
	for _, name := range workload.Names {
		w, ok := want.Stats[name]
		if !ok {
			t.Errorf("%s: missing from golden file; -update after verifying", name)
			continue
		}
		if g := got.Stats[name]; g != w {
			t.Errorf("%s: stats drifted from golden corpus:\ngolden  %+v\ncurrent %+v\n"+
				"If this change is intentional, regenerate with: go test -run TestGoldenStats -update .",
				name, w, g)
		}
	}
	for name := range want.Stats {
		if _, ok := got.Stats[name]; !ok {
			t.Errorf("golden file has unknown benchmark %q", name)
		}
	}
}

// TestGoldenStatsReplayIdentical closes the loop between the two caching
// tiers at the golden configuration: stats computed through the shared
// trace store must equal the live-VM stats pinned in the corpus check
// above. If this fails while TestGoldenStats passes, the trace replay path
// — not the timing model — has drifted.
func TestGoldenStatsReplayIdentical(t *testing.T) {
	store, err := sim.OpenTraceStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{Traces: store}
	live := computeGolden(t)
	mx, err := eng.RunMatrix(context.Background(), workload.Names, []int{live.Depth},
		[]cpu.PredMode{cpu.PredARVICurrent}, live.MaxInsts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workload.Names {
		replayed, ok := mx.Lookup(name, live.Depth, cpu.PredARVICurrent)
		if !ok {
			t.Fatalf("%s: missing cell", name)
		}
		if replayed != live.Stats[name] {
			t.Errorf("%s: trace replay diverged from live VM:\nlive   %+v\nreplay %+v",
				name, live.Stats[name], replayed)
		}
	}
	if store.Recorded() != int64(len(workload.Names)) {
		t.Errorf("recorded %d traces, want %d", store.Recorded(), len(workload.Names))
	}
}

// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (see DESIGN.md's per-experiment index) and runs
// the ablations it calls out. Each benchmark executes the simulations its
// artifact needs and reports the headline numbers as custom metrics, so
// `go test -bench=.` reproduces the paper's results end to end.
//
// The instruction budget per simulation is reduced relative to
// cmd/experiments to keep benchmark runtime reasonable; cmd/experiments
// regenerates the full-budget artifacts.
package repro

import (
	"context"
	"testing"

	"repro/internal/arvi"
	"repro/internal/benchkit"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

const benchInsts = 80_000

func runSpec(b *testing.B, spec sim.Spec) cpu.Stats {
	b.Helper()
	if spec.MaxInsts == 0 {
		spec.MaxInsts = benchInsts
	}
	r, err := sim.Simulate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return r.Stats
}

func runCfg(b *testing.B, bench string, cfg cpu.Config) cpu.Stats {
	b.Helper()
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = benchInsts
	}
	st, err := cpu.Run(workload.ByName(bench).Prog, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkTable2Echo regenerates Table 2 (architectural parameters).
func BenchmarkTable2Echo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Table2()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4Latencies regenerates Table 4 (predictor access latencies).
func BenchmarkTable4Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.Table4()
		if len(t.Rows) != 3 {
			b.Fatal("table4 shape")
		}
	}
}

// BenchmarkFig5a regenerates Figure 5(a): load-branch fraction per
// benchmark and depth under ARVI current value. It reports the suite
// average fraction at each depth.
func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx, err := sim.RunMatrix(context.Background(), workload.Names, sim.Depths,
			[]cpu.PredMode{cpu.PredARVICurrent}, benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		_ = sim.Fig5a(mx)
		for _, d := range sim.Depths {
			total := 0.0
			for _, w := range workload.Names {
				total += mx.Get(w, d, cpu.PredARVICurrent).LoadBranchFraction()
			}
			b.ReportMetric(total/float64(len(workload.Names)),
				map[int]string{20: "loadfrac20", 40: "loadfrac40", 60: "loadfrac60"}[d])
		}
	}
}

// BenchmarkFig5b regenerates Figure 5(b): accuracy of calculated versus
// load branches at 20 stages. It reports the suite-average accuracies.
func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mx, err := sim.RunMatrix(context.Background(), workload.Names, []int{20},
			[]cpu.PredMode{cpu.PredARVICurrent}, benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		_ = sim.Fig5b(mx, 20)
		var calc, load float64
		for _, w := range workload.Names {
			st := mx.Get(w, 20, cpu.PredARVICurrent)
			calc += st.ClassAccuracy(cpu.ClassCalculated)
			load += st.ClassAccuracy(cpu.ClassLoad)
		}
		n := float64(len(workload.Names))
		b.ReportMetric(calc/n, "calcacc")
		b.ReportMetric(load/n, "loadacc")
	}
}

func benchFig6(b *testing.B, depth int) {
	for i := 0; i < b.N; i++ {
		mx, err := sim.RunMatrix(context.Background(), workload.Names, []int{depth}, sim.Modes, benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		_ = sim.Fig6Accuracy(mx, depth)
		_, summ := sim.Fig6IPC(mx, depth)
		b.ReportMetric(100*summ.AvgImprovement[cpu.PredARVICurrent], "cur_ipc_%")
		b.ReportMetric(100*summ.AvgImprovement[cpu.PredARVILoadBack], "lb_ipc_%")
		b.ReportMetric(100*summ.AvgImprovement[cpu.PredARVIPerfect], "perf_ipc_%")
	}
}

// BenchmarkFig6Depth20 regenerates Figure 6(a)(b): 20-stage accuracy and
// normalised IPC (paper headline: +12.6% for ARVI current value).
func BenchmarkFig6Depth20(b *testing.B) { benchFig6(b, 20) }

// BenchmarkFig6Depth40 regenerates Figure 6(c)(d).
func BenchmarkFig6Depth40(b *testing.B) { benchFig6(b, 40) }

// BenchmarkFig6Depth60 regenerates Figure 6(e)(f) (paper: +15.6%).
func BenchmarkFig6Depth60(b *testing.B) { benchFig6(b, 60) }

// BenchmarkAblationChainSemantics compares the literal DDT chain semantics
// (address chains flow through loads) against CutAtLoads on the benchmarks
// most sensitive to chain shape (DESIGN.md ablation A1).
func BenchmarkAblationChainSemantics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"m88ksim", "li"} {
			lit := runSpec(b, sim.Spec{Bench: w, Depth: 20, Mode: cpu.PredARVICurrent})
			cut := runSpec(b, sim.Spec{Bench: w, Depth: 20, Mode: cpu.PredARVICurrent, CutAtLoads: true})
			b.ReportMetric(lit.PredAccuracy(), w+"_literal")
			b.ReportMetric(cut.PredAccuracy(), w+"_cut")
		}
	}
}

// BenchmarkAblationStalePolicy compares the three stale-value policies for
// unavailable leaves (DESIGN.md: StalePhysical is the paper-literal default).
func BenchmarkAblationStalePolicy(b *testing.B) {
	pols := []struct {
		name string
		p    cpu.StalePolicy
	}{{"phys", cpu.StalePhysical}, {"mask", cpu.StaleMask}, {"arch", cpu.StaleArchValue}}
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"m88ksim", "li"} {
			for _, pol := range pols {
				cfg := cpu.DefaultConfig(20, cpu.PredARVICurrent)
				cfg.StalePolicy = pol.p
				st := runCfg(b, w, cfg)
				b.ReportMetric(st.PredAccuracy(), w+"_"+pol.name)
			}
		}
	}
}

// BenchmarkAblationGating compares the ARVI-use gates: the plain Heil
// performance-counter threshold against the saturated-counter requirement.
func BenchmarkAblationGating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"go", "li"} {
			plain := cpu.DefaultConfig(20, cpu.PredARVICurrent)
			strong := plain
			strong.ARVIRequireStrong = true
			b.ReportMetric(runCfg(b, w, plain).PredAccuracy(), w+"_plain")
			b.ReportMetric(runCfg(b, w, strong).PredAccuracy(), w+"_strong")
		}
	}
}

// BenchmarkAblationBVIT sweeps the BVIT geometry (DESIGN.md ablation A2):
// a quarter-size table and a direct-mapped variant against the paper's
// 2K-set 4-way configuration, on the value-sensitive benchmarks.
func BenchmarkAblationBVIT(b *testing.B) {
	geoms := []struct {
		name string
		cfg  arvi.Config
	}{
		{"2kx4", arvi.DefaultConfig()},
		{"512x4", func() arvi.Config { c := arvi.DefaultConfig(); c.Sets = 512; return c }()},
		{"2kx1", func() arvi.Config { c := arvi.DefaultConfig(); c.Ways = 1; return c }()},
	}
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"m88ksim", "perl"} {
			for _, g := range geoms {
				cfg := cpu.DefaultConfig(20, cpu.PredARVICurrent)
				cfg.ARVI = g.cfg
				st := runCfg(b, w, cfg)
				b.ReportMetric(st.PredAccuracy(), w+"_"+g.name)
			}
		}
	}
}

// BenchmarkEngineThroughput measures simulator speed (ns per simulated
// instruction) on the full ARVI configuration.
func BenchmarkEngineThroughput(b *testing.B) {
	p := workload.ByName("gcc").Prog
	cfg := cpu.DefaultConfig(20, cpu.PredARVICurrent)
	cfg.MaxInsts = 50_000
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		st, err := cpu.Run(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		insts += st.Insts
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
}

// BenchmarkReplayThroughput measures the same configuration fed from a
// pre-recorded decoded trace instead of a live functional VM, reusing one
// engine via Reset — the hot path of trace-store sweeps (sim pools engines
// per configuration the same way). It delegates to the shared benchkit
// body, the same one cmd/benchjson records into the BENCH_*.json
// trajectory, so the interactive and recorded numbers cannot diverge. The
// gap to BenchmarkEngineThroughput is the per-configuration VM cost the
// trace tier amortises away.
func BenchmarkReplayThroughput(b *testing.B) {
	benchkit.EngineThroughput(b)
}

// BenchmarkMatrixTraceStore runs a full-suite single-depth matrix through
// the record-once trace store, the configuration cold sweeps actually use.
// It reports how many functional-VM executions the sweep needed (one per
// benchmark) against the matrix cells it filled.
func BenchmarkMatrixTraceStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store, err := sim.OpenTraceStore("", 0)
		if err != nil {
			b.Fatal(err)
		}
		eng := &sim.Engine{Traces: store}
		mx, err := eng.RunMatrix(context.Background(), workload.Names, []int{20}, sim.Modes, benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		if mx.Len() != len(workload.Names)*len(sim.Modes) {
			b.Fatalf("cells = %d", mx.Len())
		}
		if store.Recorded() != int64(len(workload.Names)) {
			b.Fatalf("recorded = %d, want one VM run per benchmark", store.Recorded())
		}
		b.ReportMetric(float64(store.Recorded()), "vmruns")
		b.ReportMetric(float64(mx.Len()), "cells")
	}
}

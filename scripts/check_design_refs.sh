#!/bin/sh
# check_design_refs.sh — fail if any DESIGN.md citation in the tree does
# not resolve to a real section of DESIGN.md.
#
# The code cites DESIGN.md for specific modelling choices ("DESIGN.md
# ablation A1", "see DESIGN.md for the substitution argument", ...).
# This script keeps those citations honest in two passes:
#
#   1. Topic resolution: every known citation *topic* found in the tree
#      must have its answering section heading in DESIGN.md. The topic
#      table below maps the grep pattern a citation uses to the heading
#      that answers it; a new citation style should add a row here.
#   2. Coverage: every file that mentions DESIGN.md at all must match at
#      least one known topic (or be a documentation file), so a new
#      citation cannot silently bypass pass 1.
#
# Run from the repository root: scripts/check_design_refs.sh
set -u

fail=0
err() { echo "check_design_refs: $*" >&2; fail=1; }

# Pass 2's per-line loop runs in a pipe subshell, so it reports failure
# through a marker file instead of a variable.
unknown_marker="${TMPDIR:-/tmp}/check_design_refs.$$"
rm -f "$unknown_marker"
trap 'rm -f "$unknown_marker"' EXIT

[ -f DESIGN.md ] || { err "DESIGN.md does not exist but the tree cites it"; exit 1; }

# cite <topic-regex> <heading-regex> <description>
# If any tracked file matches topic-regex, DESIGN.md must contain a line
# matching heading-regex.
cite() {
    topic=$1; heading=$2; desc=$3
    files=$(grep -rliE --include='*.go' --include='*.md' -e "$topic" . \
        --exclude-dir=.git --exclude=DESIGN.md 2>/dev/null)
    [ -n "$files" ] || return 0
    if ! grep -qE "$heading" DESIGN.md; then
        err "cited topic '$desc' has no section matching /$heading/ in DESIGN.md"
        echo "  cited from:" >&2
        echo "$files" | sed 's/^/    /' >&2
    fi
}

cite 'DESIGN\.md.s per-experiment index' \
     '^## Per-experiment index' \
     'per-experiment index'
cite 'DESIGN\.md ablation A1|ablation discussed in DESIGN\.md|CutAtLoads selects the DDT chain ablation' \
     '^### Ablation A1' \
     'ablation A1 (DDT chain semantics / cut-at-loads)'
cite 'DESIGN\.md ablation A2' \
     '^### Ablation A2' \
     'ablation A2 (BVIT geometry)'
cite 'DESIGN\.md: StalePhysical' \
     '^## Stale-value policy' \
     'StalePhysical default rationale'
cite 'see DESIGN\.md for the substitution argument' \
     '^## Workload substitution' \
     'SPEC95 stand-in substitution argument'
cite 'DESIGN\.md documents our choice' \
     '^## Memory latencies' \
     'garbled Table 2 latency choice'
cite 'no wrong-path pollution.*see DESIGN\.md|wrong-path pollution' \
     '^## Wrong-path modelling' \
     'wrong-path modelling'
cite 'as the paper sizes it; see DESIGN\.md' \
     '^## Architectural value shadow' \
     'architectural value shadow'
cite "DESIGN\\.md.s static contracts section" \
     '^## Static contracts' \
     'static contracts (arvivet annotation grammar)'
cite "DESIGN\\.md.s flow-sensitive contracts section" \
     '^## Flow-sensitive contracts' \
     'flow-sensitive contracts (CFG, dataflow solver, nilness, hotpanic proof rules)'
cite "DESIGN\\.md.s incremental RSE maintenance section" \
     '^## Incremental RSE maintenance' \
     'incremental RSE maintenance (aggregate invariant, delta rules, rollback coherence)'
cite "DESIGN\\.md.s failure domains section" \
     '^## Failure domains & degraded modes' \
     'failure domains & degraded modes (cancellation points, circuit breakers, chaos suite)'
cite "DESIGN\\.md.s distributed execution section" \
     '^## Distributed execution' \
     'distributed execution (coordinator/worker tier, cache peers, streaming)'

# Pass 2: every *line* citing DESIGN.md must be accounted for by a known
# topic (a citation may continue the sentence begun on the previous
# line, so the preceding line is consulted too), so new citation styles
# get a row in the table above instead of silently passing — even in a
# file that already carries a recognised citation.
known='per-experiment index|ablation A1|ablation A2|ablation discussed in DESIGN|DESIGN\.md: StalePhysical|substitution argument|documents our choice|wrong-path pollution|as the paper sizes it; see DESIGN|CutAtLoads selects the DDT chain ablation|static contracts section|flow-sensitive contracts section|incremental RSE maintenance section|failure domains section|distributed execution section|DESIGN\.md references|resolve to a real section|resolves to an existing section|cited anchor|missing DESIGN\.md'
grep -rlE --include='*.go' --include='*.md' 'DESIGN\.md' . \
        --exclude-dir=.git --exclude=DESIGN.md 2>/dev/null |
while IFS= read -r f; do
    case "$f" in
        ./README.md|./CHANGES.md|./ISSUE.md|./PAPER.md|./ROADMAP.md) continue ;;
    esac
    grep -nE 'DESIGN\.md' "$f" | while IFS=: read -r ln _rest; do
        # The citation sentence may span two lines; give the matcher the
        # cited line plus its predecessor.
        ctx=$(sed -n "$((ln > 1 ? ln - 1 : ln)),${ln}p" "$f" | tr '\n' ' ')
        if ! printf '%s\n' "$ctx" | grep -qE "$known"; then
            echo "check_design_refs: $f:$ln cites DESIGN.md with an unrecognised topic; add it to scripts/check_design_refs.sh" >&2
            printf '    %s\n' "$ctx" >&2
            touch "$unknown_marker"
        fi
    done
done
[ -e "$unknown_marker" ] && fail=1

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_design_refs: all DESIGN.md citations resolve"

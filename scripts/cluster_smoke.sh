#!/bin/sh
# cluster_smoke.sh — boot a real cluster (one coordinator, two workers)
# plus a solo daemon from the built arvid binary, sweep the same small
# matrix through both paths, and assert the distributed response is
# byte-identical to the single-node one. The in-process cluster suite
# (internal/server's TestCluster*) covers the behaviour matrix; this
# script proves the wiring holds for real processes over real sockets.
#
# Run from the repository root: scripts/cluster_smoke.sh
set -eu

tmp=$(mktemp -d)
go build -o "$tmp/arvid" ./cmd/arvid

pids=""
cleanup() {
    for p in $pids; do kill "$p" 2> /dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

start() { # start <name> <flags...>
    name=$1
    shift
    "$tmp/arvid" "$@" 2> "$tmp/$name.log" &
    pids="$pids $!"
}

wait_healthy() { # wait_healthy <port>
    i=0
    while [ "$i" -lt 50 ]; do
        if curl -sf "http://127.0.0.1:$1/healthz" > /dev/null; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.2
    done
    echo "cluster_smoke: daemon on :$1 never became healthy" >&2
    return 1
}

start solo -addr 127.0.0.1:8750 -cache "$tmp/solo-cache" -trace-dir "$tmp/solo-traces"
start w1 -role worker -addr 127.0.0.1:8751 -cache "$tmp/w1-cache" -trace-dir "$tmp/w1-traces"
start w2 -role worker -addr 127.0.0.1:8752 -cache "$tmp/w2-cache" -trace-dir "$tmp/w2-traces"
start coord -role coordinator -addr 127.0.0.1:8753 \
    -workers-list http://127.0.0.1:8751,http://127.0.0.1:8752 \
    -cache "$tmp/coord-cache" -trace-dir "$tmp/coord-traces"
for port in 8750 8751 8752 8753; do
    wait_healthy "$port"
done

# A 16-cell grid: 2 benches x 2 depths x the full mode set.
body='{"benches":["li","gcc"],"depths":[20,40],"max_insts":20000}'

curl -sf -d "$body" http://127.0.0.1:8750/v1/matrix > "$tmp/single.json"
curl -sf -d "$body" http://127.0.0.1:8753/v1/matrix > "$tmp/dist.json"
cmp "$tmp/single.json" "$tmp/dist.json"
echo "cluster_smoke: distributed matrix byte-identical to single-node"

# Warm repeat: still byte-identical, now served from the workers' caches.
curl -sf -d "$body" http://127.0.0.1:8753/v1/matrix > "$tmp/dist-warm.json"
cmp "$tmp/single.json" "$tmp/dist-warm.json"

# The coordinator really fanned out (its health reports remote jobs) and
# never had to fall back to computing locally.
curl -sf http://127.0.0.1:8753/healthz > "$tmp/health.json"
if grep -q '"remote_jobs": 0,' "$tmp/health.json"; then
    echo "cluster_smoke: coordinator reports zero remote jobs" >&2
    cat "$tmp/health.json" >&2
    exit 1
fi
if ! grep -q '"local_jobs": 0' "$tmp/health.json"; then
    echo "cluster_smoke: coordinator fell back to local compute with healthy workers" >&2
    cat "$tmp/health.json" >&2
    exit 1
fi

# Streaming: 16 cell lines plus the mandatory trailer.
curl -sf -d "$body" 'http://127.0.0.1:8753/v1/matrix?stream=1' > "$tmp/stream.ndjson"
lines=$(wc -l < "$tmp/stream.ndjson")
if [ "$lines" -ne 17 ]; then
    echo "cluster_smoke: stream has $lines lines, want 17 (16 cells + trailer)" >&2
    exit 1
fi
tail -n 1 "$tmp/stream.ndjson" | grep -q '"done"'

echo "cluster_smoke: ok"

// Compare the baseline predictor stack (bimodal, gshare, 2Bc-gskew) on
// characteristic synthetic branch streams, standalone — no pipeline, just
// the predictors of internal/bpred.
//
// Run with: go run ./examples/predictor_compare
//
//	-n 50000      branches per stream
//	-csv out.csv  additionally export the accuracy grid as CSV
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/bpred"
)

type stream struct {
	name string
	gen  func(i int) (pc uint64, taken bool)
}

func main() {
	n := flag.Int("n", 20000, "branches per stream")
	csvPath := flag.String("csv", "", "export the accuracy grid as CSV")
	flag.Parse()

	rng := rand.New(rand.NewSource(7))
	var corr bool
	streams := []stream{
		{"biased-90/10", func(i int) (uint64, bool) { return 11, rng.Intn(10) != 0 }},
		{"alternating", func(i int) (uint64, bool) { return 22, i%2 == 0 }},
		{"period-5-loop", func(i int) (uint64, bool) { return 33, i%5 != 4 }},
		{"correlated-pair", func(i int) (uint64, bool) {
			if i%2 == 0 {
				corr = rng.Intn(2) == 0
				return 44, corr
			}
			return 55, corr
		}},
		{"random", func(i int) (uint64, bool) { return 66, rng.Intn(2) == 0 }},
	}

	mk := func() []bpred.Predictor {
		bim, err := bpred.NewBimodal(4096)
		if err != nil {
			log.Fatal(err)
		}
		gsh, err := bpred.NewGShare(4096, 12)
		if err != nil {
			log.Fatal(err)
		}
		skew, err := bpred.NewGskew2Bc(4096)
		if err != nil {
			log.Fatal(err)
		}
		yags, err := bpred.NewYAGS(4096, 1024, 10)
		if err != nil {
			log.Fatal(err)
		}
		pag, err := bpred.NewPAg(1024, 16384, 10)
		if err != nil {
			log.Fatal(err)
		}
		perc, err := bpred.NewPerceptron(512, 24)
		if err != nil {
			log.Fatal(err)
		}
		return []bpred.Predictor{bim, gsh, skew, yags, pag, perc}
	}

	names := []string{"stream"}
	for _, p := range mk() {
		names = append(names, p.Name())
	}
	fmt.Printf("%-16s", names[0])
	for _, name := range names[1:] {
		fmt.Printf("  %-14s", name)
	}
	fmt.Println()
	grid := [][]string{names}
	for _, s := range streams {
		preds := mk()
		correct := make([]int, len(preds))
		var hist bpred.History
		for i := 0; i < *n; i++ {
			pc, taken := s.gen(i)
			for k, p := range preds {
				if p.Predict(pc, hist.Bits) == taken {
					correct[k]++
				}
				p.Update(pc, hist.Bits, taken)
			}
			hist.Push(taken)
		}
		fmt.Printf("%-16s", s.name)
		row := []string{s.name}
		for _, c := range correct {
			acc := 100 * float64(c) / float64(*n)
			fmt.Printf("  %-14s", fmt.Sprintf("%.1f%%", acc))
			row = append(row, fmt.Sprintf("%.4f", acc/100))
		}
		grid = append(grid, row)
		fmt.Println()
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		w := csv.NewWriter(f)
		if err := w.WriteAll(grid); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\n2Bc-gskew matches the best component on every stream: the meta")
	fmt.Println("table chooses bimodal for biased branches and the skewed history")
	fmt.Println("banks for patterned ones — which is why the paper uses it at both")
	fmt.Println("predictor levels of the baseline.")
}

// The paper's Figure 7 case study: m88ksim's lookupdisasm walks a fixed
// hash-table chain, so the while-loop exit is fully determined by the key
// value. This example runs the m88ksim workload under all four predictor
// configurations at each pipeline depth and prints the per-depth story.
//
// Run with: go run ./examples/m88ksim_case
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/sim"
)

func main() {
	fmt.Println("m88ksim / lookupdisasm (paper Figure 7)")
	fmt.Println()
	fmt.Println("  INSTAB *lookupdisasm(UINT key) {")
	fmt.Println("      INSTAB *ptr = hashtab[key % HASHVAL];")
	fmt.Println("      while (ptr != NULL && ptr->opcode != key)")
	fmt.Println("          ptr = ptr->next;")
	fmt.Println()

	for _, depth := range sim.Depths {
		var base, cur cpu.Stats
		for _, mode := range []cpu.PredMode{cpu.PredBaseline2Lvl, cpu.PredARVICurrent} {
			res, err := sim.Simulate(sim.Spec{
				Bench: "m88ksim", Depth: depth, Mode: mode, MaxInsts: 400_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			if mode == cpu.PredBaseline2Lvl {
				base = res.Stats
			} else {
				cur = res.Stats
			}
		}
		fmt.Printf("%d-stage pipeline:\n", depth)
		fmt.Printf("  two-level 2Bc-gskew  accuracy %.4f  IPC %.3f\n",
			base.PredAccuracy(), base.IPC())
		fmt.Printf("  ARVI current value   accuracy %.4f  IPC %.3f  (%+.1f%% IPC)\n",
			cur.PredAccuracy(), cur.IPC(), 100*(cur.IPC()/base.IPC()-1))
		fmt.Printf("  load-branch fraction %.2f, ARVI used on %d of %d branches\n\n",
			cur.LoadBranchFraction(), cur.ARVIUsed, cur.CondBranches)
	}
	fmt.Println("The hash table never changes, so (key value, chain depth) fully")
	fmt.Println("determines each while-iteration's outcome — ARVI's BVIT learns the")
	fmt.Println("mapping, while outcome history alone cannot separate the instances.")
}

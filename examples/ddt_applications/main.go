// Demonstrate the Section 3 applications of the DDT beyond branch
// prediction: dependence-aware issue priority, selective value-prediction
// candidates, branch-slice extraction for decoupled execution, and a
// window-parallelism estimate.
//
// Run with: go run ./examples/ddt_applications
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/smt"
	"repro/internal/vpred"
	"repro/internal/workload"
)

func main() {
	// A small in-flight window:
	//
	//   e0: lw  p1, (p9)       long dependence tail hangs off this load
	//   e1: add p2 <- p1 + p8
	//   e2: mul p3 <- p2 * p2
	//   e3: sub p4 <- p3 - p1
	//   e4: add p5 <- p7 + p7  independent
	//   e5: beq p4, 0          the branch under study
	d := core.MustNewDDT(core.Config{Entries: 16, PhysRegs: 16, TrackDepCounts: true})
	must := func(tgt core.PhysReg, srcs []core.PhysReg, isLoad bool) int {
		e, err := d.Insert(tgt, srcs, isLoad)
		if err != nil {
			log.Fatal("ddt_applications: ", err)
		}
		return e
	}
	must(1, []core.PhysReg{9}, true)
	must(2, []core.PhysReg{1, 8}, false)
	must(3, []core.PhysReg{2, 2}, false)
	must(4, []core.PhysReg{3, 1}, false)
	must(5, []core.PhysReg{7, 7}, false)

	sched := apps.NewPriorityScheduler(d)
	fmt.Println("1. Dependence-aware issue priority")
	fmt.Println("   ready set {e0, e4} ordered:", sched.Order([]int{4, 0}))
	fmt.Println("   (the load e0 issues first: three instructions wait on it)")

	fmt.Println("\n2. Selective value prediction candidates (dependents >= 2)")
	for _, e := range sched.CriticalEntries(2) {
		fmt.Printf("   entry %d: %d trailing dependents\n", e, d.DepCount(e))
	}

	x := apps.NewChainExtractor(d)
	fmt.Println("\n3. Branch slice for a decoupled branch-execution unit")
	fmt.Println("   instructions feeding 'beq p4, 0':", x.BranchSlice(4))
	fmt.Printf("   slice fraction of the window: %.2f\n", x.SliceFraction(4))

	fmt.Println("\n4. Window parallelism estimate")
	fmt.Printf("   ILP estimate over live registers: %.2f\n",
		apps.ParallelismEstimate(d, []core.PhysReg{4, 5}))
	fmt.Println("   (a gating policy would shrink the issue queue at low estimates)")

	fmt.Println("\n5. Selective value prediction on m88ksim (Calder via DDT dep counts)")
	for _, threshold := range []int{0, 3} {
		pred, err := vpred.NewStride(4096, 2)
		if err != nil {
			log.Fatal(err)
		}
		res, err := vpred.EvaluateSelective(workload.ByName("m88ksim").Prog, pred, 120_000, 64, threshold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   dep threshold %d: %5d candidates, coverage %.3f, accuracy %.3f\n",
			threshold, res.Candidates, res.Coverage(), res.Accuracy())
	}
	fmt.Println("   (the DDT counter supplies the criticality filter Calder assumed)")

	fmt.Println("\n6. SMT fetch policies: ICOUNT vs dependence-chain length")
	progs := []*prog.Program{
		workload.ByName("ijpeg").Prog, // parallel, regular
		workload.ByName("li").Prog,    // serial pointer chasing
	}
	cfg := smt.DefaultConfig()
	cfg.MaxCycles = 30_000
	for _, pol := range []smt.Policy{smt.RoundRobin, smt.ICOUNT, smt.DepLength} {
		res, err := smt.Run(progs, pol, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-12s combined throughput %.3f IPC (per thread: %v)\n",
			pol, res.Throughput(), res.PerThread)
	}
}

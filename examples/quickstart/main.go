// Quickstart: assemble a program, execute it functionally, then compare the
// two-level baseline predictor against ARVI on the timing simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/vm"
)

// A loop whose inner trip count is determined by a value computed well in
// advance: exactly the branch class ARVI exists for.
const source = `
    .data
trips: .word 3, 1, 4, 1, 5, 2, 6, 5
    .text
main:
    li  r10, 0          # outer counter
    li  r11, 6000       # outer iterations
outer:
    andi r1, r10, 7
    slli r1, r1, 3
    lw  r2, trips(r1)   # n = trips[i & 7]
    # ... unrelated work, so n is committed before the loop ...
    addi r20, r20, 1
    addi r21, r21, 2
    addi r22, r22, 3
    addi r23, r23, 4
    addi r20, r20, 1
    addi r21, r21, 2
    addi r22, r22, 3
    addi r23, r23, 4
    li  r3, 0
inner:
    beq r3, r2, done    # exit after n iterations (value determined)
    addi r3, r3, 1
    j   inner
done:
    addi r10, r10, 1
    bne r10, r11, outer
    halt
`

func main() {
	prog, err := asm.Assemble("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Functional execution: the architectural result.
	machine := vm.New(prog)
	n, err := machine.Run(0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional run: %d instructions, r20 = %d\n\n", n, machine.Regs[20])

	// 2. Timing simulation under both predictor configurations.
	for _, mode := range []cpu.PredMode{cpu.PredBaseline2Lvl, cpu.PredARVICurrent} {
		st, err := cpu.Run(prog, cpu.DefaultConfig(20, mode))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s IPC %.3f   branch accuracy %.4f   mispredicts %d\n",
			mode, st.IPC(), st.PredAccuracy(), st.Mispredicts)
	}
	fmt.Println("\nARVI predicts the inner-loop exit from the committed trip count")
	fmt.Println("and the dependence-chain depth; history predictors cannot.")
}

// Command benchjson runs the hot-path microbenchmarks (internal/benchkit)
// plus the end-to-end engine throughput benchmark and emits the results as
// a machine-readable perf-trajectory record, BENCH_<pr>.json. It also
// enforces the steady-state allocation guards and exits non-zero on any
// regression, so CI fails before an allocation creeps back into the
// per-instruction path.
//
// Usage:
//
//	benchjson                          # 1s per benchmark, writes BENCH_pr4.json
//	benchjson -benchtime 100x          # fixed iteration count (CI smoke)
//	benchjson -out BENCH_pr5.json -pr pr5
//
// The trajectory convention: every perf-focused PR appends a new
// BENCH_<pr>.json generated at its head rather than editing older files,
// so the repository accumulates a comparable history of ns/op, allocs/op
// and simulated-MIPS headline numbers (see README "Performance").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchkit"
)

type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	Schema        string             `json:"schema"`
	PR            string             `json:"pr"`
	GoVersion     string             `json:"go_version"`
	GOARCH        string             `json:"goarch"`
	GeneratedUnix int64              `json:"generated_unix"`
	Benchtime     string             `json:"benchtime"`
	AllocGuards   map[string]float64 `json:"alloc_guards"`
	Benchmarks    []benchResult      `json:"benchmarks"`
	Headline      map[string]float64 `json:"headline"`
}

func main() {
	out := flag.String("out", "BENCH_pr4.json", "output path for the trajectory record")
	pr := flag.String("pr", "pr4", "PR label recorded in the file")
	benchtime := flag.String("benchtime", "", `per-benchmark budget ("2s" or "100x"; empty = testing default)`)
	testing.Init()
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
	}

	// Allocation regression guards run first: a trajectory file must never
	// record a state where the steady-state DDT path allocates.
	guards := map[string]float64{
		"ddt_insert_commit_leafset_allocs_per_op": benchkit.InsertLeafSetAllocs(),
	}
	failed := false
	for name, v := range guards {
		if v != 0 {
			fmt.Fprintf(os.Stderr, "benchjson: ALLOC REGRESSION: %s = %.2f, want 0\n", name, v)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"DDTInsert", benchkit.DDTInsert},
		{"DDTInsertROB256", benchkit.DDTInsertROB256},
		{"LeafSet", benchkit.LeafSet},
		{"BitvecKernels", benchkit.BitvecKernels},
		{"EngineMIPS", benchkit.EngineThroughput},
	}

	file := benchFile{
		Schema:        "repro-bench/v1",
		PR:            *pr,
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		GeneratedUnix: time.Now().Unix(),
		Benchtime:     *benchtime,
		AllocGuards:   guards,
		Headline:      map[string]float64{},
	}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s did not run (failed benchmark body?)\n", bm.name)
			os.Exit(1)
		}
		res := benchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = map[string]float64{}
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		file.Benchmarks = append(file.Benchmarks, res)
		if mips, ok := r.Extra["sim_MIPS"]; ok {
			file.Headline["sim_MIPS"] = mips
		}
		if nsInst, ok := r.Extra["ns/inst"]; ok {
			file.Headline["ns_per_inst"] = nsInst
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(file.Benchmarks))
}

// Command benchjson runs the hot-path microbenchmarks (internal/benchkit)
// plus the end-to-end engine throughput benchmark and emits the results as
// a machine-readable perf-trajectory record, BENCH_<pr>.json. It also
// enforces the steady-state allocation guards and exits non-zero on any
// regression, so CI fails before an allocation creeps back into the
// per-instruction path.
//
// Usage:
//
//	benchjson                          # 1s per benchmark, writes BENCH_pr7.json
//	benchjson -benchtime 100x          # fixed iteration count (CI smoke)
//	benchjson -out BENCH_pr8.json -pr pr8
//	benchjson -baseline BENCH_pr6.json # fail if ns/inst regresses >10%
//	benchjson -samples 5               # best-of-5 per benchmark
//
// The trajectory convention: every perf-focused PR appends a new
// BENCH_<pr>.json generated at its head rather than editing older files,
// so the repository accumulates a comparable history of ns/op, allocs/op
// and simulated-MIPS headline numbers (see README "Performance").
//
// Each benchmark is run -samples times (default 3) and the fastest sample
// by ns/op is recorded — one testing.Benchmark run in a noisy container
// showed ~13% run-to-run variance, enough for the trajectory gate to flag
// noise as regression, and the minimum is the standard robust estimator
// for a lower-bounded timing distribution.
//
// With -baseline, the freshly measured ns_per_inst headline is compared
// against the baseline file's and the run fails when it regressed by more
// than -max-regress (default 10%). An improvement or an in-tolerance jitter
// passes; a missing headline on either side fails loudly rather than
// silently skipping the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"maps"
	"os"
	"runtime"
	"slices"
	"testing"
	"time"

	"repro/internal/benchkit"
)

type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Samples     int                `json:"samples,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	Schema        string             `json:"schema"`
	PR            string             `json:"pr"`
	GoVersion     string             `json:"go_version"`
	GOARCH        string             `json:"goarch"`
	GeneratedUnix int64              `json:"generated_unix"`
	Benchtime     string             `json:"benchtime"`
	Note          string             `json:"note,omitempty"`
	AllocGuards   map[string]float64 `json:"alloc_guards"`
	Benchmarks    []benchResult      `json:"benchmarks"`
	Headline      map[string]float64 `json:"headline"`
}

func main() {
	out := flag.String("out", "BENCH_pr7.json", "output path for the trajectory record")
	pr := flag.String("pr", "pr7", "PR label recorded in the file")
	benchtime := flag.String("benchtime", "", `per-benchmark budget ("2s" or "100x"; empty = testing default)`)
	baseline := flag.String("baseline", "", "previous BENCH_*.json to gate the ns/inst headline against (empty = no gate)")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional ns/inst regression vs -baseline")
	samples := flag.Int("samples", 3, "runs per benchmark; the fastest by ns/op is recorded")
	note := flag.String("note", "", "free-form measurement context recorded in the file (machine load, caveats)")
	testing.Init()
	flag.Parse()
	if *samples < 1 {
		fmt.Fprintln(os.Stderr, "benchjson: -samples must be at least 1")
		os.Exit(2)
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
	}

	// Allocation regression guards run first: a trajectory file must never
	// record a state where the steady-state DDT path allocates.
	guards := map[string]float64{
		"ddt_insert_commit_leafset_allocs_per_op":         benchkit.InsertLeafSetAllocs(),
		"ddt_rob512_insert_commit_leafset_allocs_per_op":  benchkit.InsertLeafSetAllocsAt(benchkit.WideROB512Config),
		"ddt_rob1024_insert_commit_leafset_allocs_per_op": benchkit.InsertLeafSetAllocsAt(benchkit.WideROB1024Config),
	}
	failed := false
	for _, name := range slices.Sorted(maps.Keys(guards)) {
		if v := guards[name]; v != 0 {
			fmt.Fprintf(os.Stderr, "benchjson: ALLOC REGRESSION: %s = %.2f, want 0\n", name, v)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"DDTInsert", benchkit.DDTInsert},
		{"DDTInsertROB256", benchkit.DDTInsertROB256},
		{"LeafSet", benchkit.LeafSet},
		{"LeafSetWrapped", benchkit.LeafSetWrapped},
		{"LeafSetROB512", benchkit.LeafSetROB512},
		{"LeafSetROB1024", benchkit.LeafSetROB1024},
		{"BitvecKernels", benchkit.BitvecKernels},
		{"EngineMIPS", benchkit.EngineThroughput},
	}

	file := benchFile{
		Schema:        "repro-bench/v1",
		PR:            *pr,
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		GeneratedUnix: time.Now().Unix(),
		Benchtime:     *benchtime,
		Note:          *note,
		AllocGuards:   guards,
		Headline:      map[string]float64{},
	}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "benchjson: running %s (best of %d)...\n", bm.name, *samples)
		// Best-of-N: the fastest sample by ns/op, with its own metrics, so
		// run-to-run container noise cannot trip the trajectory gate.
		var best testing.BenchmarkResult
		bestNs := 0.0
		for s := 0; s < *samples; s++ {
			r := testing.Benchmark(bm.fn)
			if r.N == 0 {
				fmt.Fprintf(os.Stderr, "benchjson: %s did not run (failed benchmark body?)\n", bm.name)
				os.Exit(1)
			}
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if s == 0 || ns < bestNs {
				best, bestNs = r, ns
			}
		}
		res := benchResult{
			Name:        bm.name,
			Iterations:  best.N,
			NsPerOp:     bestNs,
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
			Samples:     *samples,
		}
		if len(best.Extra) > 0 {
			res.Metrics = map[string]float64{}
			for k, v := range best.Extra {
				res.Metrics[k] = v
			}
		}
		file.Benchmarks = append(file.Benchmarks, res)
		if mips, ok := best.Extra["sim_MIPS"]; ok {
			file.Headline["sim_MIPS"] = mips
		}
		if nsInst, ok := best.Extra["ns/inst"]; ok {
			file.Headline["ns_per_inst"] = nsInst
		}
	}

	if *baseline != "" {
		if err := gateHeadline(*baseline, file.Headline, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: TRAJECTORY REGRESSION:", err)
			os.Exit(1)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		_ = f.Close()
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(file.Benchmarks))
}

// gateHeadline compares the fresh ns_per_inst headline against the baseline
// trajectory file and returns an error when it regressed beyond the allowed
// fraction. Headlines missing on either side are an error: a gate that can
// silently skip itself guards nothing.
func gateHeadline(baselinePath string, headline map[string]float64, maxRegress float64) error {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	old, ok := base.Headline["ns_per_inst"]
	if !ok || old <= 0 {
		return fmt.Errorf("%s has no ns_per_inst headline to gate against", baselinePath)
	}
	cur, ok := headline["ns_per_inst"]
	if !ok || cur <= 0 {
		return fmt.Errorf("this run produced no ns_per_inst headline (EngineMIPS did not report it)")
	}
	ratio := cur / old
	fmt.Fprintf(os.Stderr, "benchjson: ns/inst %.1f vs %s (%s) %.1f: %+.1f%%\n",
		cur, base.PR, baselinePath, old, (ratio-1)*100)
	if ratio > 1+maxRegress {
		return fmt.Errorf("ns_per_inst %.1f is %.1f%% worse than %s's %.1f (allowed %.0f%%)",
			cur, (ratio-1)*100, base.PR, old, maxRegress*100)
	}
	return nil
}

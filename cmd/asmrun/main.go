// Command asmrun assembles a source file and executes it — functionally by
// default, or through the timing simulator with -time. It can also record
// the dynamic trace (-trace) or save the assembled image (-o) for later
// runs.
//
// Usage:
//
//	asmrun prog.s                 # assemble + run functionally
//	asmrun -time -depth 40 prog.s # run through the timing model
//	asmrun -o prog.bin prog.s     # save the assembled program image
//	asmrun -trace prog.trc prog.s # record the dynamic trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

func main() {
	timing := flag.Bool("time", false, "run through the out-of-order timing model")
	depth := flag.Int("depth", 20, "pipeline depth for -time")
	mode := flag.String("mode", "arvi-current", "predictor for -time: baseline arvi-current arvi-loadback arvi-perfect")
	n := flag.Int64("n", 0, "instruction budget (0 = run to halt)")
	out := flag.String("o", "", "write the assembled program image here")
	trc := flag.String("trace", "", "record the dynamic trace here")
	regs := flag.Bool("regs", false, "dump architectural registers after a functional run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmrun [flags] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	name := strings.TrimSuffix(flag.Arg(0), ".s")
	p, err := asm.Assemble(name, string(src))
	if err != nil {
		fatal(err)
	}
	st := p.StaticStats()
	fmt.Printf("assembled %s: %d instructions, %d data bytes, entry %d\n",
		p.Name, st.Insts, st.DataBytes, p.Entry)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if _, err := p.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote image to %s\n", *out)
	}

	if *trc != "" {
		f, err := os.Create(*trc)
		if err != nil {
			fatal(err)
		}
		recorded, err := trace.Record(p, *n, f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d events to %s\n", recorded, *trc)
		return
	}

	if *timing {
		modes := map[string]cpu.PredMode{
			"baseline": cpu.PredBaseline2Lvl, "arvi-current": cpu.PredARVICurrent,
			"arvi-loadback": cpu.PredARVILoadBack, "arvi-perfect": cpu.PredARVIPerfect,
		}
		md, ok := modes[*mode]
		if !ok {
			fatal(fmt.Errorf("unknown mode %q", *mode))
		}
		cfg := cpu.DefaultConfig(*depth, md)
		cfg.MaxInsts = *n
		stats, err := cpu.Run(p, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("timing: %d instructions, %d cycles, IPC %.4f, branch accuracy %.4f\n",
			stats.Insts, stats.Cycles, stats.IPC(), stats.PredAccuracy())
		return
	}

	machine := vm.New(p)
	ran, err := machine.Run(*n, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("functional: %d instructions retired, halted=%v\n", ran, machine.Halt)
	if *regs {
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if v := machine.Regs[r]; v != 0 {
				fmt.Printf("  r%-2d = %d\n", r, v)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asmrun:", err)
	os.Exit(1)
}

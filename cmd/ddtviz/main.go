// Command ddtviz replays the paper's Figure 1 / Figure 3 worked example on
// the real DDT implementation, printing the dependence matrix, the valid
// vector and the RSE extraction after every step.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/core"
)

type step struct {
	asm    string
	tgt    core.PhysReg
	srcs   []core.PhysReg
	isLoad bool
}

func main() {
	d := core.MustNewDDT(core.Config{Entries: 9, PhysRegs: 10})
	steps := []step{
		{"load p1, (p2)", 1, []core.PhysReg{2}, true},
		{"add  p4 <- p1 + p3", 4, []core.PhysReg{1, 3}, false},
		{"or   p5 <- p4 | p1", 5, []core.PhysReg{4, 1}, false},
		{"sub  p6 <- p5 - p4", 6, []core.PhysReg{5, 4}, false},
		{"add  p7 <- p1 + 1", 7, []core.PhysReg{1}, false},
		{"add  p8 <- p4 + p7", 8, []core.PhysReg{4, 7}, false},
	}
	fmt.Println("DDT/RSE walkthrough of the paper's Figures 1 and 3")
	fmt.Println(strings.Repeat("=", 52))
	for _, s := range steps {
		e, err := d.Insert(s.tgt, s.srcs, s.isLoad)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddtviz:", err)
			os.Exit(1)
		}
		fmt.Printf("\ninsert entry %d: %s\n", e, s.asm)
		dump(d)
	}

	fmt.Println("\nbranch: beq p8, 0")
	chain, set, depth := d.LeafSet([]core.PhysReg{8})
	fmt.Printf("  dependence chain entries: %s\n", bits(chain.Count(), chain.ForEach))
	fmt.Printf("  RSE leaf register set:    %s\n", regs(set.ForEach))
	fmt.Printf("  chain depth key:          %d\n", depth)
	fmt.Println("\n(the paper's Figure 3 result: registers {p1, p3} — p4 and p7 are")
	fmt.Println(" produced inside the chain, p1 survives because loads terminate")
	fmt.Println(" chains, p3 survives because its producer already committed)")
}

func dump(d *core.DDT) {
	cfg := d.Config()
	fmt.Print("          entry ")
	for e := 0; e < cfg.Entries; e++ {
		fmt.Printf("%d ", e)
	}
	fmt.Println()
	// One reused chain buffer for the whole matrix dump (core.ChainInto is
	// the allocation-free read; Chain would allocate per row).
	chain := bitvec.New(cfg.Entries)
	for p := core.PhysReg(1); int(p) < cfg.PhysRegs; p++ {
		d.ChainInto(chain, []core.PhysReg{p})
		if !chain.Any() {
			continue
		}
		row := make([]byte, cfg.Entries)
		for i := range row {
			row[i] = '.'
		}
		chain.ForEach(func(e int) { row[e] = 'x' })
		fmt.Printf("  p%-2d chain     %s\n", p, spaced(row))
	}
	valid := make([]byte, cfg.Entries)
	for e := 0; e < cfg.Entries; e++ {
		if d.InFlight(e) {
			valid[e] = '1'
		} else {
			valid[e] = '0'
		}
	}
	fmt.Printf("  valid vector  %s\n", spaced(valid))
}

func spaced(b []byte) string {
	parts := make([]string, len(b))
	for i, c := range b {
		parts[i] = string(c)
	}
	return strings.Join(parts, " ")
}

func bits(n int, forEach func(func(int))) string {
	out := make([]string, 0, n)
	forEach(func(i int) { out = append(out, fmt.Sprintf("%d", i)) })
	return "{" + strings.Join(out, ", ") + "}"
}

func regs(forEach func(func(int))) string {
	var out []string
	forEach(func(i int) { out = append(out, fmt.Sprintf("p%d", i)) })
	return "{" + strings.Join(out, ", ") + "}"
}

// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 2 and 4, Figures 5 and 6) plus the headline summary,
// writing aligned text tables to stdout (or -out).
//
// Usage:
//
//	experiments                 # everything, default budget
//	experiments -n 500000       # bigger per-run instruction budget
//	experiments -only fig6      # one artifact: table2 table4 fig5a fig5b fig6
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	n := flag.Int64("n", sim.DefaultMaxInsts, "dynamic instruction budget per run")
	only := flag.String("only", "", "render one artifact: table2 table4 fig5a fig5b fig6")
	outPath := flag.String("out", "", "write to this file instead of stdout")
	csvPath := flag.String("csv", "", "additionally export the raw matrix as CSV")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	emit := func(t sim.Table) {
		if err := t.Render(out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if *only == "table2" || *only == "" {
		emit(sim.Table2())
	}
	if *only == "table4" || *only == "" {
		emit(sim.Table4())
	}
	if *only == "table2" || *only == "table4" {
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "experiments: running %d simulations (%d insts each)...\n",
		len(workload.Names)*len(sim.Depths)*len(sim.Modes), *n)
	mx, err := sim.RunMatrix(workload.Names, sim.Depths, sim.Modes, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "experiments: done in %v\n", time.Since(start).Round(time.Millisecond))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := mx.WriteCSV(f, sim.Depths); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if *only == "fig5a" || *only == "" {
		emit(sim.Fig5a(mx))
	}
	if *only == "fig5b" || *only == "" {
		emit(sim.Fig5b(mx, 20))
	}
	if *only == "fig6" || *only == "" {
		for _, d := range sim.Depths {
			emit(sim.Fig6Accuracy(mx, d))
			t, _ := sim.Fig6IPC(mx, d)
			emit(t)
		}
		head := sim.Table{
			Title:  "Headline: average IPC improvement over the two-level 2Bc-gskew baseline",
			Note:   "paper: +12.6% at 20 stages, +15.6% at 60 stages (ARVI current value)",
			Header: []string{"depth", "arvi-current", "arvi-loadback", "arvi-perfect"},
		}
		for _, d := range sim.Depths {
			_, s := sim.Fig6IPC(mx, d)
			head.AddRow(fmt.Sprintf("%d", d),
				fmt.Sprintf("%+.1f%%", 100*s.AvgImprovement[cpu.PredARVICurrent]),
				fmt.Sprintf("%+.1f%%", 100*s.AvgImprovement[cpu.PredARVILoadBack]),
				fmt.Sprintf("%+.1f%%", 100*s.AvgImprovement[cpu.PredARVIPerfect]))
		}
		emit(head)
	}
}

// Command experiments regenerates every artifact of the paper's
// evaluation: the Section 5 branch-prediction study (Tables 2 and 4,
// Figures 5 and 6, ablation sweeps, headline summary) and the Section 3
// applications — the SMT fetch-policy comparison over multi-program mixes
// and the selective value-prediction ablation — writing aligned text
// tables to stdout (or -out).
//
// Runs are resumable: results are cached on disk keyed by a content hash
// of each cell's full identity, so a second invocation — after a crash, or
// with a larger grid — only simulates missing cells, and a warm re-run
// renders byte-identical output without simulating at all.
//
// Usage:
//
//	experiments                 # everything, default budget, cache in .simcache
//	experiments -n 500000       # bigger per-run instruction budget
//	experiments -only fig6      # one artifact: table2 table4 fig5a fig5b fig6
//	                            #   sweep-conf sweep-cut smt vpred
//	experiments -only smt       # Section 3 SMT fetch-policy study
//	experiments -only vpred     # Section 3 selective value prediction
//	experiments -cache ""       # disable the result cache
//	experiments -trace-dir ""   # keep traces in memory only (no .simtraces)
//	experiments -no-traces      # one functional-VM run per cell (old behaviour)
//	experiments -json out.json  # raw export of the selected study (also -csv)
//
// Each benchmark's correct-path stream is recorded once into the trace
// store and replayed by every (depth × predictor) configuration, so a cold
// full sweep executes the functional VM eight times instead of once per
// cell; recorded traces persist under -trace-dir and later runs skip even
// those executions.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cpu"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/smt"
	"repro/internal/workload"
)

// flushProfiles is profiling.Setup's flush once configured; fail routes
// through it so error exits still produce usable profiles (the flush is
// idempotent, so the deferred call after a fail-free run is harmless).
var flushProfiles = func() {}

func fail(err error) {
	flushProfiles()
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// artifacts lists every -only value, in the order the default run renders
// them.
var artifacts = []string{
	"table2", "table4", "fig5a", "fig5b", "fig6",
	"sweep-conf", "sweep-cut", "smt", "vpred",
}

func validArtifact(name string) bool {
	if name == "" {
		return true
	}
	for _, a := range artifacts {
		if a == name {
			return true
		}
	}
	return false
}

func main() {
	n := flag.Int64("n", sim.DefaultMaxInsts, "dynamic instruction budget per run")
	only := flag.String("only", "", "render one artifact: table2 table4 fig5a fig5b fig6 sweep-conf sweep-cut smt vpred")
	outPath := flag.String("out", "", "write to this file instead of stdout")
	csvPath := flag.String("csv", "", "additionally export the selected study's raw grid as CSV")
	jsonPath := flag.String("json", "", "additionally export the selected study's raw grid (full stats) as JSON")
	cacheDir := flag.String("cache", ".simcache", "result cache directory (empty = no cache)")
	traceDir := flag.String("trace-dir", ".simtraces", "trace store directory (empty = record+replay in memory only)")
	noTraces := flag.Bool("no-traces", false, "disable the trace store: every cell runs its own functional VM")
	traceMem := flag.Int64("trace-mem", 0, "resident decoded-trace budget in MiB (0 = default)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	sweepDepth := flag.Int("sweep-depth", 20, "pipeline depth for the ablation sweeps")
	smtCycles := flag.Int64("smt-cycles", smt.DefaultConfig().MaxCycles, "cycle budget per SMT fetch-policy run (>= 1)")
	depThreshold := flag.Int("dep-threshold", sim.DefaultVPredParams(0).DepThreshold,
		"DDT dependent-count cut for the selective value-prediction cells (>= 1)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if !validArtifact(*only) {
		fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q (valid: %v)\n", *only, artifacts)
		os.Exit(2)
	}
	// The validation rules (and their message text) are shared with
	// cmd/arvisim and the HTTP service; see internal/sim/validate.go.
	if err := sim.ValidateSMTCycles(*smtCycles); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if err := sim.ValidateDepThreshold(*depThreshold); err != nil {
		// Threshold 0 would make the "selective" cells identical to the
		// all-instructions cells, silently collapsing the ablation.
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	// Profiling starts only after argument validation (a usage error must
	// not leave a truncated profile behind); fail() flushes the profiles
	// too, because os.Exit skips the defer.
	flush, err := profiling.Setup(*cpuProfile, *memProfile, "experiments")
	if err != nil {
		fail(err)
	}
	flushProfiles = flush
	defer flush()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}

	emit := func(t sim.Table) {
		if err := t.Render(out); err != nil {
			fail(err)
		}
	}
	// want reports whether the artifact is part of this invocation.
	want := func(name string) bool { return *only == "" || *only == name }

	if want("table2") {
		emit(sim.Table2())
	}
	if want("table4") {
		emit(sim.Table4())
	}
	if *only == "table2" || *only == "table4" {
		if *csvPath != "" || *jsonPath != "" {
			fmt.Fprintln(os.Stderr, "experiments: -csv/-json export a study grid; nothing to export with -only", *only)
		}
		return
	}

	eng := &sim.Engine{Workers: *workers}
	if *cacheDir != "" {
		c, err := sim.OpenCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		eng.Cache = c
	}
	if !*noTraces {
		ts, err := sim.OpenTraceStore(*traceDir, *traceMem<<20)
		if err != nil {
			fail(err)
		}
		eng.Traces = ts
	}

	// Ctrl-C cancels in-flight cells at their next checkpoint; completed
	// cells are already in the cache, so an interrupted sweep resumes
	// where it stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	wantMatrix := want("fig5a") || want("fig5b") || want("fig6")

	var mx *sim.Matrix
	if wantMatrix {
		fmt.Fprintf(os.Stderr, "experiments: running %d matrix cells (%d insts each)...\n",
			len(workload.Names)*len(sim.Depths)*len(sim.Modes), *n)
		var err error
		mx, err = eng.RunMatrix(ctx, workload.Names, sim.Depths, sim.Modes, *n)
		if err != nil {
			// Partial grids still render (missing cells show n/a); report
			// the failures and degrade rather than discarding the run.
			reportCellErr(ctx, "some cells failed", err)
		}
	}

	var confSweep, cutSweep *sim.SweepResult
	if want("sweep-conf") {
		s, err := eng.RunConfThresholdSweep(ctx, workload.Names, *sweepDepth, sim.DefaultConfThresholds, *n)
		if err != nil {
			reportCellErr(ctx, "some sweep cells failed", err)
		}
		confSweep = s
	}
	if want("sweep-cut") {
		s, err := eng.RunCutAtLoadsSweep(ctx, workload.Names, *sweepDepth, *n)
		if err != nil {
			reportCellErr(ctx, "some sweep cells failed", err)
		}
		cutSweep = s
	}

	var smtGrid *sim.SMTGrid
	if want("smt") {
		cfg := smt.DefaultConfig()
		cfg.MaxCycles = *smtCycles
		g, err := eng.RunSMTGrid(ctx, workload.Mixes(), sim.SMTPolicies, cfg)
		if err != nil {
			reportCellErr(ctx, "some SMT cells failed", err)
		}
		smtGrid = g
	}
	var vpredGrid *sim.VPredGrid
	if want("vpred") {
		params := sim.DefaultVPredParams(*n)
		params.DepThreshold = *depThreshold
		g, err := eng.RunVPredGrid(ctx, workload.Names, sim.VPredPredictors, params)
		if err != nil {
			reportCellErr(ctx, "some value-prediction cells failed", err)
		}
		vpredGrid = g
	}

	fmt.Fprintf(os.Stderr, "experiments: done in %v (%d simulated, %d from cache)\n",
		time.Since(start).Round(time.Millisecond), eng.Simulated(), eng.CacheHits())
	if ts := eng.Traces; ts != nil {
		fmt.Fprintf(os.Stderr, "experiments: traces: %d VM runs, %d memory hits, %d disk hits\n",
			ts.Recorded(), ts.MemHits(), ts.DiskHits())
		if n := ts.PersistErrs(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: warning: %d trace files could not be persisted\n", n)
		}
	}

	// -csv/-json export the grid of the selected study: the SMT or vpred
	// grid under -only smt/vpred, the branch-prediction matrix otherwise.
	if *csvPath != "" || *jsonPath != "" {
		var csvFn, jsonFn func(io.Writer) error
		switch {
		case *only == "smt":
			csvFn = smtGrid.WriteCSV
			jsonFn = smtGrid.WriteJSON
		case *only == "vpred":
			csvFn = vpredGrid.WriteCSV
			jsonFn = vpredGrid.WriteJSON
		case mx != nil:
			csvFn = func(w io.Writer) error { return mx.WriteCSV(w, sim.Depths) }
			jsonFn = func(w io.Writer) error { return mx.WriteJSON(w, sim.Depths) }
		default:
			fmt.Fprintln(os.Stderr, "experiments: -csv/-json export a study grid; nothing to export with -only", *only)
		}
		if csvFn != nil && *csvPath != "" {
			if err := writeFile(*csvPath, csvFn); err != nil {
				fail(err)
			}
		}
		if jsonFn != nil && *jsonPath != "" {
			if err := writeFile(*jsonPath, jsonFn); err != nil {
				fail(err)
			}
		}
	}

	if want("fig5a") {
		emit(sim.Fig5a(mx))
	}
	if want("fig5b") {
		emit(sim.Fig5b(mx, 20))
	}
	if want("fig6") {
		for _, d := range sim.Depths {
			emit(sim.Fig6Accuracy(mx, d))
			t, _ := sim.Fig6IPC(mx, d)
			emit(t)
		}
		head := sim.Table{
			Title:  "Headline: average IPC improvement over the two-level 2Bc-gskew baseline",
			Note:   "paper: +12.6% at 20 stages, +15.6% at 60 stages (ARVI current value)",
			Header: []string{"depth", "arvi-current", "arvi-loadback", "arvi-perfect"},
		}
		improvement := func(s sim.IPCSummary, md cpu.PredMode) string {
			v, ok := s.AvgImprovement[md]
			if !ok {
				return "n/a" // every cell of this mode is missing at this depth
			}
			return fmt.Sprintf("%+.1f%%", 100*v)
		}
		for _, d := range sim.Depths {
			_, s := sim.Fig6IPC(mx, d)
			head.AddRow(fmt.Sprintf("%d", d),
				improvement(s, cpu.PredARVICurrent),
				improvement(s, cpu.PredARVILoadBack),
				improvement(s, cpu.PredARVIPerfect))
		}
		emit(head)
	}
	if confSweep != nil {
		emit(sim.SweepAccuracyTable(confSweep))
		emit(sim.SweepARVIUseTable(confSweep))
		emit(sim.SweepIPCTable(confSweep))
	}
	if cutSweep != nil {
		emit(sim.SweepAccuracyTable(cutSweep))
		emit(sim.SweepIPCTable(cutSweep))
	}
	if smtGrid != nil {
		emit(sim.SMTThroughputTable(smtGrid))
		emit(sim.SMTBalanceTable(smtGrid))
	}
	if vpredGrid != nil {
		emit(sim.VPredAccuracyTable(vpredGrid))
		emit(sim.VPredCoverageTable(vpredGrid))
	}
}

// reportCellErr prints a partial-failure report, collapsing the joined
// per-cell context errors of an interrupted run into one line instead of
// one error per canceled cell.
func reportCellErr(ctx context.Context, what string, err error) {
	if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		fmt.Fprintf(os.Stderr, "experiments: interrupted; %s: %v (completed cells are cached)\n", what, ctx.Err())
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", what, err)
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
